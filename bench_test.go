package tmedb

// Benchmark harness: one benchmark per figure panel of §VII plus the
// ablations DESIGN.md calls out. Each figure benchmark regenerates its
// panel's data series end-to-end (trace synthesis → scheduling →
// evaluation) and logs the data table on the first iteration, so
//
//	go test -bench=Fig -benchmem -v
//
// both times the pipeline and prints the regenerated rows. The full
// paper-scale sweep lives in cmd/figures; the benchmarks use a config
// with a single source to keep iterations meaningful.

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/auxgraph"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/dts"
	"repro/internal/nlp"
)

// benchConfig is the figure configuration used by the benchmarks: the
// paper's parameter grid with a single source per data point.
func benchConfig() ExperimentConfig {
	cfg := DefaultConfig()
	cfg.Sources = []NodeID{0}
	cfg.Trials = 200
	return cfg
}

func logOnce(b *testing.B, i int, res ...FigureResult) {
	if i != 0 {
		return
	}
	for _, r := range res {
		b.Log("\n" + r.String())
	}
}

func BenchmarkFig4aEEDCBDelaySweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, Fig4(cfg, Static))
	}
}

func BenchmarkFig4bFREEDCBDelaySweep(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, Fig4(cfg, Rayleigh))
	}
}

// Fig. 5 is the headline solver benchmark, so it doubles as the
// parallel-speedup regression check: the serial pools against a
// GOMAXPROCS-wide pool on the identical sweep (the output tables are
// byte-identical by the determinism contract; only the wall clock moves).
func BenchmarkFig5aStaticAlgorithms(b *testing.B) {
	cfg := benchConfig()
	for _, workers := range fig5WorkerGrid() {
		cfg.Workers = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				logOnce(b, i, Fig5(cfg, Static))
			}
		})
	}
}

func BenchmarkFig5bFadingAlgorithms(b *testing.B) {
	cfg := benchConfig()
	for _, workers := range fig5WorkerGrid() {
		cfg.Workers = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				logOnce(b, i, Fig5(cfg, Rayleigh))
			}
		})
	}
}

// fig5WorkerGrid is {1, GOMAXPROCS}, collapsed on single-CPU machines.
func fig5WorkerGrid() []int {
	if p := runtime.GOMAXPROCS(0); p > 1 {
		return []int{1, p}
	}
	return []int{1}
}

func BenchmarkFig6aEnergyVsN(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		e, _ := Fig6(cfg)
		logOnce(b, i, e)
	}
}

func BenchmarkFig6bDeliveryVsN(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, d := Fig6(cfg)
		logOnce(b, i, d)
	}
}

func BenchmarkFig7aEnergyOverTime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, Fig7(cfg, Static))
	}
}

func BenchmarkFig7bEnergyOverTimeFading(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, Fig7(cfg, Rayleigh))
	}
}

// --- Ablations -----------------------------------------------------------

// benchGraph builds the default 20-node experiment graph.
func benchGraph(model Model) *Graph {
	cfg := benchConfig()
	return cfg.graphFor(20, model)
}

// BenchmarkAblationSteinerLevel compares the recursive-greedy level ℓ:
// level 1 (shortest-path tree) vs level 2 (density greedy) on the same
// instance, reporting the energy each achieves.
func BenchmarkAblationSteinerLevel(b *testing.B) {
	g := benchGraph(Static)
	for _, level := range []int{1, 2} {
		b.Run(fmt.Sprintf("level=%d", level), func(b *testing.B) {
			var energy float64
			for i := 0; i < b.N; i++ {
				s, err := (EEDCB{Level: level}).Schedule(g, 0, 9000, 11000)
				if err != nil {
					b.Fatal(err)
				}
				energy = s.NormalizedCost(g.Params.GammaTh)
			}
			b.ReportMetric(energy*1e18, "attoJ/γth")
		})
	}
}

// BenchmarkAblationDTSTau compares the τ→0 fast path against the full
// τ-propagation closure (§V complexity discussion), reporting DTS sizes.
func BenchmarkAblationDTSTau(b *testing.B) {
	cfg := benchConfig()
	for _, tau := range []float64{0, 1} {
		b.Run(fmt.Sprintf("tau=%g", tau), func(b *testing.B) {
			tr := GenerateTrace(cfg.TraceOpts, cfg.TraceSeed).Restrict(20)
			g := tr.ToTVEG(tau, cfg.Params, Static)
			var points int
			for i := 0; i < b.N; i++ {
				d, _ := dts.Build(g.Graph, 9000, 11000, dts.Options{})
				points = d.TotalPoints()
			}
			b.ReportMetric(float64(points), "DTSpoints")
		})
	}
}

// BenchmarkAblationDTSPruning compares the pruned DTS against the full
// per-node point set.
func BenchmarkAblationDTSPruning(b *testing.B) {
	cfg := benchConfig()
	tr := GenerateTrace(cfg.TraceOpts, cfg.TraceSeed).Restrict(20)
	g := tr.ToTVEG(0, cfg.Params, Static)
	for _, noPrune := range []bool{false, true} {
		b.Run(fmt.Sprintf("noPrune=%v", noPrune), func(b *testing.B) {
			var points int
			for i := 0; i < b.N; i++ {
				d, _ := dts.Build(g.Graph, 9000, 11000, dts.Options{NoPrune: noPrune})
				points = d.TotalPoints()
			}
			b.ReportMetric(float64(points), "DTSpoints")
		})
	}
}

// BenchmarkAblationNLPSolver compares the three energy allocators
// (greedy constraint-fixing, penalty/projected-gradient, Lagrangian
// dual) on FR-EEDCB instances.
func BenchmarkAblationNLPSolver(b *testing.B) {
	g := benchGraph(Rayleigh)
	for _, alloc := range []core.Allocator{core.AllocGreedy, core.AllocPenalty, core.AllocDual} {
		b.Run(alloc.String(), func(b *testing.B) {
			var energy float64
			for i := 0; i < b.N; i++ {
				s, err := (FREEDCB{Allocator: alloc}).Schedule(g, 0, 9000, 11000)
				if err != nil {
					b.Fatal(err)
				}
				energy = s.NormalizedCost(g.Params.GammaTh)
			}
			b.ReportMetric(energy*1e18, "attoJ/γth")
		})
	}
}

// BenchmarkAblationBroadcastAdvantage compares the power-vertex
// expansion against independent unicast edges in the auxiliary graph.
func BenchmarkAblationBroadcastAdvantage(b *testing.B) {
	g := benchGraph(Static)
	for _, unicast := range []bool{false, true} {
		name := "advantage"
		if unicast {
			name = "unicast"
		}
		b.Run(name, func(b *testing.B) {
			var energy float64
			for i := 0; i < b.N; i++ {
				alg := EEDCB{AuxOpts: auxgraph.Options{NoBroadcastAdvantage: unicast}}
				s, err := alg.Schedule(g, 0, 9000, 11000)
				if err != nil {
					b.Fatal(err)
				}
				energy = s.NormalizedCost(g.Params.GammaTh)
			}
			b.ReportMetric(energy*1e18, "attoJ/γth")
		})
	}
}

// --- Microbenchmarks of the substrates -----------------------------------

func BenchmarkDTSBuild(b *testing.B) {
	cfg := benchConfig()
	tr := GenerateTrace(cfg.TraceOpts, cfg.TraceSeed).Restrict(20)
	g := tr.ToTVEG(0, cfg.Params, Static)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = dts.Build(g.Graph, 9000, 11000, dts.Options{})
	}
}

func BenchmarkAuxGraphBuild(b *testing.B) {
	cfg := benchConfig()
	tr := GenerateTrace(cfg.TraceOpts, cfg.TraceSeed).Restrict(20)
	g := tr.ToTVEG(0, cfg.Params, Static)
	d, _ := dts.Build(g.Graph, 9000, 11000, dts.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = auxgraph.Build(g, d, auxgraph.Options{})
	}
}

func BenchmarkEEDCBSchedule(b *testing.B) {
	g := benchGraph(Static)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (EEDCB{}).Schedule(g, 0, 9000, 11000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFREEDCBSchedule(b *testing.B) {
	g := benchGraph(Rayleigh)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (FREEDCB{}).Schedule(g, 0, 9000, 11000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedySchedule(b *testing.B) {
	g := benchGraph(Static)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Greedy{}).Schedule(g, 0, 9000, 11000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarloEvaluate(b *testing.B) {
	g := benchGraph(Rayleigh)
	s, err := (FREEDCB{}).Schedule(g, 0, 9000, 11000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(g, s, 0, 100, 1)
	}
}

func BenchmarkRayleighEDFunction(b *testing.B) {
	ed := channel.Rayleigh{Beta: 1e-18}
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += ed.FailureProb(1e-18 * float64(1+i%7))
	}
	_ = acc
}

func BenchmarkNLPGreedySolve(b *testing.B) {
	build := func() *nlp.Problem {
		p := nlp.NewProblem(10, 0, math.Inf(1))
		for c := 0; c < 20; c++ {
			p.AddConstraint(0.01,
				nlp.Term{Var: c % 10, ED: channel.Rayleigh{Beta: 1 + float64(c)}},
				nlp.Term{Var: (c + 3) % 10, ED: channel.Rayleigh{Beta: 2 + float64(c)}},
			)
		}
		return p
	}
	p := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nlp.SolveGreedy(p); err != nil {
			b.Fatal(err)
		}
	}
}

// Silence unused-import lint if core aliases change.
var _ core.Scheduler = EEDCB{}

// --- Extension benchmarks -------------------------------------------------

func BenchmarkEvaluateSequentialVsParallel(b *testing.B) {
	g := benchGraph(Rayleigh)
	s, err := (FREEDCB{}).Schedule(g, 0, 9000, 11000)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				EvaluateParallel(g, s, 0, 2000, 1, workers)
			}
		})
	}
}

func BenchmarkExactSolver(b *testing.B) {
	cfg := benchConfig()
	tr := GenerateTrace(cfg.TraceOpts, cfg.TraceSeed).Restrict(8)
	g := tr.ToTVEG(0, cfg.Params, Static)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimalSchedule(g, 0, 9000, 11000); err != nil {
			b.Skip(err) // window may be infeasible for tiny N
		}
	}
}

func BenchmarkMulticastVsBroadcast(b *testing.B) {
	g := benchGraph(Static)
	targets := []NodeID{3, 9, 15}
	b.Run("multicast3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (EEDCB{}).Multicast(g, 0, targets, 9000, 11000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("broadcast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (EEDCB{}).Schedule(g, 0, 9000, 11000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkInterferenceSerialize(b *testing.B) {
	g := benchGraph(Static)
	s, err := (EEDCB{}).Schedule(g, 0, 9000, 11000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SerializeSchedule(g, s, 0.008); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRobustEvaluation(b *testing.B) {
	cfg := benchConfig()
	tr := GenerateTrace(cfg.TraceOpts, cfg.TraceSeed).Restrict(12)
	nd := NDFromTrace(tr, 0, cfg.Params, Static, 0.5, 1.0, 3)
	view := nd.LikelyView(0)
	s, err := (EEDCB{}).Schedule(view, 0, 9000, 11000)
	if onlyRealErr(err) != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvaluateRobust(nd, s, 0, 100, 1, 5)
	}
}

func BenchmarkJourneyQueries(b *testing.B) {
	cfg := benchConfig()
	tr := GenerateTrace(cfg.TraceOpts, cfg.TraceSeed).Restrict(20)
	g := tr.ToTVEG(0, cfg.Params, Static)
	b.Run("foremost", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Foremost(g, 0, NodeID(1+i%19), 0)
		}
	})
	b.Run("reachability-matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Reachable(g, 5000, 9000)
		}
	})
}

// onlyRealErr treats IncompleteError as success for bench setup.
func onlyRealErr(err error) error {
	var ie *IncompleteError
	if err == nil || errors.As(err, &ie) {
		return nil
	}
	return err
}

func BenchmarkComplexityTable(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, ComplexityTable(cfg))
	}
}

func BenchmarkGapTable(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, GapTable(cfg))
	}
}

func BenchmarkEditChurnTable(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		logOnce(b, i, EditChurnTable(cfg))
	}
}

// TestEditChurnTableAllRoundsPatch pins the edit-churn workload's
// contract at the experiments layer: the cumulative patch-hit series
// must count every round — round r's re-solve derived its DTS from
// round r-1's memo entry — otherwise the perf gate's dts.patch.hit_rate
// is measuring a workload that silently stopped exercising the
// incremental path.
func TestEditChurnTableAllRoundsPatch(t *testing.T) {
	res := EditChurnTable(benchConfig())
	var patched *Series
	for _, s := range res.Series {
		if s.Label == "patch-hits" {
			patched = s
		}
	}
	if patched == nil {
		t.Fatal("edit-churn table has no patch-hits series")
	}
	for i, y := range patched.Y {
		if want := float64(i + 1); y != want {
			t.Errorf("round %d: cumulative patch hits = %g, want %g (a round fell back to a cold rebuild)", i+1, y, want)
		}
	}
}

// BenchmarkIncrementalEditSolve is the single-edit replan comparison:
// after one contact edit, "cold" rebuilds the graph from the trace and
// solves from scratch (fresh graph identity, so no memoized artifact is
// reusable), while "incremental" applies the edit to the live graph and
// solves it — the DTS and auxgraph cores derive from the previous
// version's memo entries (the dts.patch path). The incremental variant
// alternates add/remove so the graph stays bounded while every
// iteration's version is fresh.
func BenchmarkIncrementalEditSolve(b *testing.B) {
	tr := GenerateTrace(TraceOptions{N: 20}, 1)
	alg := EEDCB{Level: 2}
	t0, deadline := 9000.0, 11000.0
	iv := Interval{Start: 9100, End: 9500}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := tr.ToTVEG(0, DefaultParams(), Static).EnableCostCache()
			if i%2 == 0 {
				g.AddContact(0, 9, iv, 8)
			}
			_, err := alg.Schedule(g, 0, t0, deadline)
			if err := onlyRealErr(err); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		g := tr.ToTVEG(0, DefaultParams(), Static).EnableCostCache()
		_, err := alg.Schedule(g, 0, t0, deadline)
		if err := onlyRealErr(err); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				g.AddContact(0, 9, iv, 8)
			} else {
				g.RemoveContact(0, 9, iv)
			}
			_, err := alg.Schedule(g, 0, t0, deadline)
			if err := onlyRealErr(err); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestIncrementalEditSolvePatchesInsteadOfRebuilding is the
// deterministic work proxy behind BenchmarkIncrementalEditSolve: every
// post-edit solve on the live graph must derive its DTS by patching the
// previous version's memo entry — never fall back to a cold global
// recompute — which is what makes the incremental path beat the cold
// rebuild. Wall-clock is left to the benchmark; the counters cannot
// flake.
func TestIncrementalEditSolvePatchesInsteadOfRebuilding(t *testing.T) {
	tr := GenerateTrace(TraceOptions{N: 20}, 1)
	g := tr.ToTVEG(0, DefaultParams(), Static).EnableCostCache()
	alg := EEDCB{Level: 2}
	solve := func() {
		t.Helper()
		_, err := alg.Schedule(g, 0, 9000, 11000)
		if err := onlyRealErr(err); err != nil {
			t.Fatal(err)
		}
	}
	solve() // warm the version-keyed memos
	hits0, misses0 := dts.PatchStats()
	iv := Interval{Start: 9100, End: 9500}
	const rounds = 6
	for r := 0; r < rounds; r++ {
		if r%2 == 0 {
			g.AddContact(0, 9, iv, 8)
		} else {
			g.RemoveContact(0, 9, iv)
		}
		solve()
	}
	hits1, misses1 := dts.PatchStats()
	if got := hits1 - hits0; got < rounds {
		t.Errorf("%d edited solves produced only %d patch derivations, want >= %d", rounds, got, rounds)
	}
	if misses1 != misses0 {
		t.Errorf("edited solves fell back to %d cold DTS rebuilds, want 0", misses1-misses0)
	}
}
