package tmedb

import (
	"context"
	"math"
	"reflect"
	"testing"
)

// These tests pin the ISSUE's parallel-determinism contract at the
// public API level: for a seeded Haggle-like trace, the solver cores
// must emit byte-identical schedules for every Workers value, and the
// Monte Carlo evaluator must report the worker pool it actually used.

func determinismGraph(model Model) *Graph {
	tr := GenerateTrace(TraceOptions{N: 20}, 1)
	return tr.ToTVEG(0, DefaultParams(), model)
}

func TestEEDCBScheduleIdenticalAcrossWorkers(t *testing.T) {
	g := determinismGraph(Static)
	base, err := (EEDCB{Workers: 1}).Schedule(g, 0, 9000, 11000)
	if onlyRealErr(err) != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 8} {
		s, err := (EEDCB{Workers: w}).Schedule(g, 0, 9000, 11000)
		if onlyRealErr(err) != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(base, s) {
			t.Fatalf("workers=%d: schedule differs from serial:\nserial   %v\nparallel %v", w, base, s)
		}
	}
}

func TestFREEDCBScheduleIdenticalAcrossWorkers(t *testing.T) {
	g := determinismGraph(Rayleigh)
	base, err := (FREEDCB{Workers: 1}).Schedule(g, 0, 9000, 11000)
	if onlyRealErr(err) != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 8} {
		s, err := (FREEDCB{Workers: w}).Schedule(g, 0, 9000, 11000)
		if onlyRealErr(err) != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(base, s) {
			t.Fatalf("workers=%d: schedule differs from serial:\nserial   %v\nparallel %v", w, base, s)
		}
	}
}

func TestMulticastIdenticalAcrossWorkers(t *testing.T) {
	g := determinismGraph(Static)
	targets := []NodeID{3, 9, 15}
	base, err := (EEDCB{Workers: 1}).Multicast(g, 0, targets, 9000, 11000)
	if onlyRealErr(err) != nil {
		t.Fatal(err)
	}
	s, err := (EEDCB{Workers: 8}).Multicast(g, 0, targets, 9000, 11000)
	if onlyRealErr(err) != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, s) {
		t.Fatalf("multicast schedule differs:\nserial   %v\nparallel %v", base, s)
	}
}

// TestFig5TableIdenticalAcrossWorkers pins the whole harness: the Fig. 5
// sweep (trace → DTS → auxgraph → Steiner → schedule → table) must print
// the same rows whether the pools run serial or 8-wide.
func TestFig5TableIdenticalAcrossWorkers(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 1
	serial := Fig5(cfg, Static).String()
	cfg.Workers = 8
	parallel := Fig5(cfg, Static).String()
	if serial != parallel {
		t.Fatalf("Fig5 tables differ:\nworkers=1:\n%s\nworkers=8:\n%s", serial, parallel)
	}
}

// TestScheduleWithContextMatchesSchedule pins the cancellation layer's
// result-invariance contract at the public API: with a background
// context every planner takes the exact pre-cancellation code path, so
// the schedule is identical to the plain Schedule call.
func TestScheduleWithContextMatchesSchedule(t *testing.T) {
	static := determinismGraph(Static)
	fading := determinismGraph(Rayleigh)
	cases := []struct {
		name string
		g    *Graph
		alg  Scheduler
	}{
		{"EEDCB", static, EEDCB{Workers: 4}},
		{"GREED", static, Greedy{}},
		{"RAND", static, Random{Seed: 3}},
		{"FR-EEDCB", fading, FREEDCB{Workers: 4}},
		{"FR-GREED", fading, FRGreedy{}},
		{"FR-RAND", fading, FRRandom{Seed: 3}},
	}
	for _, c := range cases {
		want, errW := c.alg.Schedule(c.g, 0, 9000, 11000)
		got, errG := ScheduleWithContext(context.Background(), c.alg, c.g, 0, 9000, 11000)
		if (errW == nil) != (errG == nil) {
			t.Errorf("%s: error mismatch: plain=%v ctx=%v", c.name, errW, errG)
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: context path changed the schedule:\nplain %v\nctx   %v", c.name, want, got)
		}
	}
}

// TestSolveWithLadderUnbudgetedMatchesPrimary: with no budget the
// degradation ladder collapses to its first rung, which must plan
// byte-identically to the primary planner of the graph's channel family.
func TestSolveWithLadderUnbudgetedMatchesPrimary(t *testing.T) {
	cases := []struct {
		name  string
		model Model
		alg   Scheduler
	}{
		{"static", Static, EEDCB{}},
		{"rayleigh", Rayleigh, FREEDCB{}},
	}
	for _, c := range cases {
		g := determinismGraph(c.model)
		want, errW := c.alg.Schedule(g, 0, 9000, 11000)
		if onlyRealErr(errW) != nil {
			t.Fatalf("%s: %v", c.name, errW)
		}
		got, out, errG := SolveWithLadder(context.Background(), g, 0, 9000, 11000, DegradeOptions{})
		if onlyRealErr(errG) != nil {
			t.Fatalf("%s: %v", c.name, errG)
		}
		if out == nil || out.Rung != RungFull || out.Algorithm != c.alg.Name() {
			t.Fatalf("%s: outcome %+v, want rung full via %s", c.name, out, c.alg.Name())
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: ladder schedule differs from %s:\nplain  %v\nladder %v",
				c.name, c.alg.Name(), want, got)
		}
	}
}

// TestEvaluateParallelIdenticalOnStaticChannel: on a static channel the
// execution is deterministic (no RNG draw ever happens), so every
// statistic except the reported pool size must agree between workers=1
// and workers=8 — up to the float summation-order slack of the merge
// (per-worker partial sums vs one running sum).
func TestEvaluateParallelIdenticalOnStaticChannel(t *testing.T) {
	g := determinismGraph(Static)
	s, err := (EEDCB{}).Schedule(g, 0, 9000, 11000)
	if onlyRealErr(err) != nil {
		t.Fatal(err)
	}
	r1 := EvaluateParallel(g, s, 0, 64, 5, 1)
	r8 := EvaluateParallel(g, s, 0, 64, 5, 8)
	if r1.Workers != 1 || r8.Workers != 8 {
		t.Fatalf("reported workers = %d and %d, want 1 and 8", r1.Workers, r8.Workers)
	}
	if r1.Trials != r8.Trials || r1.PlannedEnergy != r8.PlannedEnergy {
		t.Fatalf("trials/planned energy differ: %v vs %v", r1, r8)
	}
	close := func(a, b float64) bool { return math.Abs(a-b) <= 1e-12*(1+math.Abs(a)) }
	if !close(r1.MeanEnergy, r8.MeanEnergy) || !close(r1.MeanDelivery, r8.MeanDelivery) || !close(r1.StdDelivery, r8.StdDelivery) {
		t.Fatalf("static-channel evaluation differs across workers:\nworkers=1: %v\nworkers=8: %v", r1, r8)
	}
}

// TestEvaluateParallelReportsEffectiveWorkers is the ISSUE bugfix test:
// a pool request larger than the trial count clamps, and the Result
// records the clamped size — the silent degradation to the serial path
// is now visible as Workers == 1.
func TestEvaluateParallelReportsEffectiveWorkers(t *testing.T) {
	g := determinismGraph(Rayleigh)
	s, err := (FREEDCB{}).Schedule(g, 0, 9000, 11000)
	if onlyRealErr(err) != nil {
		t.Fatal(err)
	}
	cases := []struct {
		trials, workers, want int
	}{
		{100, 1, 1}, // explicit serial
		{100, 4, 4}, // normal pool
		{3, 16, 3},  // clamped to trials
		{1, 16, 1},  // degrades to serial — the bug this pins
	}
	for _, c := range cases {
		r := EvaluateParallel(g, s, 0, c.trials, 1, c.workers)
		if r.Workers != c.want {
			t.Errorf("trials=%d workers=%d: reported %d workers, want %d", c.trials, c.workers, r.Workers, c.want)
		}
		if r.Trials != c.trials {
			t.Errorf("trials=%d workers=%d: reported %d trials", c.trials, c.workers, r.Trials)
		}
	}
	if r := Evaluate(g, s, 0, 10, 1); r.Workers != 1 {
		t.Errorf("Evaluate reported %d workers, want 1", r.Workers)
	}
}
