// Package tmedb is the public API of the TMEDB reproduction: the
// time-varying minimum-energy delay-constrained broadcast problem of
// "Energy-Efficient and Delay-Constrained Broadcast in Time-Varying
// Energy-Demand Graphs" (Qiu, Shen, Yu — ICPP 2015).
//
// The package re-exports the model types (time-varying energy-demand
// graphs, schedules, contact traces), the paper's schedulers (EEDCB,
// FR-EEDCB, and the GREED/RAND baselines), the trace-driven Monte Carlo
// evaluator, and the experiment harness that regenerates every figure of
// the paper's evaluation section.
//
// Quick start:
//
//	trace := tmedb.GenerateTrace(tmedb.TraceOptions{}, 1)
//	g := trace.ToTVEG(0, tmedb.DefaultParams(), tmedb.Rayleigh)
//	sched, err := tmedb.FREEDCB{}.Schedule(g, 0, 9000, 11000)
//	if err != nil { ... }
//	res := tmedb.Evaluate(g, sched, 0, 1000, 42)
//	fmt.Println(res)
package tmedb

import (
	"io"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/haggle"
	"repro/internal/interval"
	"repro/internal/mobility"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Model and graph types.
type (
	// Graph is a time-varying energy-demand graph (Definition 3.2).
	Graph = tveg.Graph
	// Params holds the physical-layer constants of §VII.
	Params = tveg.Params
	// Model selects the channel model (static / Rayleigh / extensions).
	Model = tveg.Model
	// NodeID identifies a node (0..N-1).
	NodeID = tvg.NodeID
	// Interval is a half-open time interval [Start, End).
	Interval = interval.Interval
	// Journey is a multi-hop temporal path (Definition 3.1).
	Journey = tvg.Journey
	// Hop is one edge traversal of a journey.
	Hop = tvg.Hop
	// EDFunction is an energy-demand function φ: cost → failure
	// probability (Property 3.1).
	EDFunction = channel.EDFunction
	// CostLevel is one entry of a discrete cost set (§VI-A).
	CostLevel = tveg.CostLevel
)

// Channel models.
const (
	// Static is the deterministic channel of Eq. 2.
	Static = tveg.Static
	// Rayleigh is the fading channel of Eq. 5.
	Rayleigh = tveg.RayleighFading
	// Rician is the Rician fading extension (footnote 1).
	Rician = tveg.RicianFading
	// Nakagami is the Nakagami-m fading extension (footnote 1).
	Nakagami = tveg.NakagamiFading
)

// Schedules and evaluation.
type (
	// Schedule is a broadcast relay schedule S = [R, T, W] (§IV).
	Schedule = schedule.Schedule
	// Transmission is one row of a schedule.
	Transmission = schedule.Transmission
	// Violation names the feasibility condition a schedule breaks.
	Violation = schedule.Violation
	// Result aggregates a Monte Carlo evaluation (§VII metrics).
	Result = sim.Result
)

// Schedulers (§VI and §VII).
type (
	// Scheduler plans broadcasts on a TVEG.
	Scheduler = core.Scheduler
	// EEDCB is the §VI-A scheduler (static-channel assumption).
	EEDCB = core.EEDCB
	// FREEDCB is the fading-resistant §VI-B scheduler.
	FREEDCB = core.FREEDCB
	// Greedy is the GREED baseline.
	Greedy = core.Greedy
	// FRGreedy is the FR-GREED baseline.
	FRGreedy = core.FRGreedy
	// Random is the RAND baseline.
	Random = core.Random
	// FRRandom is the FR-RAND baseline.
	FRRandom = core.FRRandom
	// IncompleteError reports nodes unreachable within a delay window.
	IncompleteError = core.IncompleteError
)

// Traces.
type (
	// Trace is a contact trace in the Haggle style.
	Trace = haggle.Trace
	// Contact is one pairwise contact of a trace.
	Contact = haggle.Contact
	// TraceOptions tunes the synthetic trace generator.
	TraceOptions = haggle.GenOptions
)

// Reporting.
type (
	// Series is one labelled curve of a figure.
	Series = stats.Series
	// Summary holds aggregate statistics of a sample.
	Summary = stats.Summary
)

// MobilityModel holds random-waypoint parameters for synthetic
// geometry-backed traces.
type MobilityModel = mobility.Model

// DefaultMobilityModel returns a pedestrian-scale arena (200x200 m,
// 0.5-1.5 m/s, 30 s pauses).
func DefaultMobilityModel() MobilityModel { return mobility.DefaultModel() }

// MobilityTrace simulates n random-waypoint nodes over [0, horizon]
// (sampled every dt seconds), extracts contacts whenever two nodes come
// within radius meters, and returns them as a contact trace whose
// distances drive the fading ED-functions. Deterministic per seed.
func MobilityTrace(m MobilityModel, n int, horizon, dt, radius float64, seed int64) *Trace {
	tr := mobility.Simulate(m, n, horizon, dt, rand.New(rand.NewSource(seed)))
	out := &Trace{N: n, Horizon: horizon}
	for _, c := range tr.Contacts(radius, 0.5) {
		out.Contacts = append(out.Contacts, Contact{
			I: c.I, J: c.J, Start: c.Start, End: c.End, Dist: c.Dist,
		})
	}
	return out
}

// DefaultParams returns the §VII evaluation constants: N0 = 4.32e-21
// W/Hz, γth = 25.9 dB, α = 2, ε = 0.01.
func DefaultParams() Params { return tveg.DefaultParams() }

// NewGraph creates an empty TVEG with n nodes over span with edge
// traversal time tau.
func NewGraph(n int, span Interval, tau float64, params Params, model Model) *Graph {
	return tveg.New(n, span, tau, params, model)
}

// GenerateTrace builds a synthetic Haggle-like contact trace,
// deterministic per seed.
func GenerateTrace(opts TraceOptions, seed int64) *Trace {
	return haggle.Generate(opts, rand.New(rand.NewSource(seed)))
}

// ReadTrace parses a contact trace: the native format written by
// Trace.Write, headerless CRAWDAD-style dumps, and gzip-compressed
// variants of either are all accepted.
func ReadTrace(r io.Reader) (*Trace, error) { return haggle.ReadAuto(r) }

// Evaluate executes the schedule on g for the given number of Monte
// Carlo trials (deterministic per seed) and returns the §VII metrics.
func Evaluate(g *Graph, s Schedule, src NodeID, trials int, seed int64) Result {
	return sim.Evaluate(g, s, src, trials, rand.New(rand.NewSource(seed)))
}

// CheckFeasible verifies the four TMEDB feasibility conditions of §IV
// for a schedule: relays informed before transmitting, all nodes informed
// in time, latency within the deadline, and cost within costBound (pass
// +Inf to skip). It returns nil or a *Violation.
func CheckFeasible(g *Graph, s Schedule, src NodeID, deadline, costBound float64) error {
	return schedule.CheckFeasible(g, s, src, deadline, costBound)
}

// UninformedProb evaluates Eq. 6: the probability that node has not
// received the packet by time t under schedule s from source src.
func UninformedProb(g *Graph, s Schedule, src, node NodeID, t float64) float64 {
	return schedule.UninformedProb(g, s, src, node, t)
}

// Summarize computes aggregate statistics of a sample.
func Summarize(xs []float64) Summary { return stats.Summarize(xs) }

// Allocator selects the NLP solver used by the FR schedulers' energy
// allocation step (Eq. 14-17).
type Allocator = core.Allocator

// Energy allocator choices.
const (
	// AllocGreedy is the greedy constraint-fixing pass + coordinate
	// descent (the default).
	AllocGreedy = core.AllocGreedy
	// AllocPenalty is the penalty / projected-gradient refiner.
	AllocPenalty = core.AllocPenalty
	// AllocDual is the Lagrangian dual decomposition.
	AllocDual = core.AllocDual
)
