package tmedb

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ExperimentConfig parameterizes the §VII trace-driven experiments. The
// zero value is not usable; start from DefaultConfig.
type ExperimentConfig struct {
	// TraceSeed seeds the synthetic Haggle-like trace.
	TraceSeed int64
	// TraceOpts tunes the trace generator. TraceOpts.N must be at least
	// max(Ns).
	TraceOpts TraceOptions
	// Tau is the edge traversal time ζ. The paper's trace analysis uses
	// τ ≈ 0 (§V).
	Tau float64
	// Params are the physical-layer constants.
	Params Params
	// Sources are the broadcast sources results are averaged over
	// ("we randomly chose a source node", §VII).
	Sources []NodeID
	// T0 is the broadcast release time for the delay sweeps. The
	// default (9000 s) sits after the degree ramp.
	T0 float64
	// Delays are the delay constraints swept by Fig. 4 and Fig. 5
	// (§VII: 2000..6000 step 500).
	Delays []float64
	// Ns are the network sizes swept by Fig. 4 and Fig. 6.
	Ns []int
	// Trials is the Monte Carlo trial count for delivery ratios.
	Trials int
	// Workers bounds the worker pools at every level of the harness: the
	// per-data-point fan-out of the figure generators and the Workers
	// knob handed to the EEDCB/FR-EEDCB solver cores. 0 (the zero value)
	// selects GOMAXPROCS; 1 forces the fully serial paths. Schedules and
	// figure data are byte-identical for every value.
	Workers int
	// EvalSeed seeds the Monte Carlo evaluation.
	EvalSeed int64
	// SteinerLevel is the recursive-greedy level for EEDCB/FR-EEDCB.
	SteinerLevel int
	// Fig7Times are the window start times of Fig. 7 (§VII: every
	// 500 s from 5000 to 15000) and Fig7Delay the per-window deadline.
	Fig7Times []float64
	Fig7Delay float64
	// Deadline is a per-schedule wall-clock solve budget. When positive,
	// every planner invocation of the harness runs under a context with
	// this timeout, so a pathological data point surfaces as a skipped
	// cell (cancel.ErrBudgetExceeded, treated like any planner error)
	// instead of stalling the whole sweep. Zero (the default) plans
	// unbudgeted on the exact pre-cancellation code paths.
	Deadline time.Duration
	// Audit cross-checks every planned schedule through all execution
	// semantics (reference executor, sim, DES, both feasibility checks)
	// before its numbers enter a figure, and panics with the reference
	// event trace on any disagreement. Off by default: it roughly
	// doubles per-schedule cost.
	Audit bool
	// Obs aggregates metrics across every solver and evaluation run the
	// harness launches (cache hit rates, Dijkstra counts, pool busy
	// times, sim counters). Figure data is byte-identical with or
	// without it. With Workers > 1 the per-point runs interleave, but
	// spans nest per goroutine, so each run still yields a correctly
	// nested subtree (concurrent runs' top-level phases become siblings
	// under the root). Nil (the default) records nothing.
	Obs *obs.Recorder
}

// DefaultConfig returns the paper's §VII experiment setting: N = 20
// nodes, 17000 s trace, delay constraints 2000..6000 s step 500, default
// delay 2000 s, windows every 500 s in [5000, 15000] for Fig. 7.
func DefaultConfig() ExperimentConfig {
	cfg := ExperimentConfig{
		TraceSeed:    1,
		TraceOpts:    TraceOptions{N: 30}, // Fig. 6 sweeps up to 30 nodes
		Tau:          0,
		Params:       DefaultParams(),
		Sources:      []NodeID{0, 3, 7},
		T0:           9000,
		Trials:       400,
		EvalSeed:     42,
		SteinerLevel: 2,
		Fig7Delay:    2000,
	}
	for d := 2000.0; d <= 6000; d += 500 {
		cfg.Delays = append(cfg.Delays, d)
	}
	cfg.Ns = []int{10, 15, 20, 25, 30}
	for t := 5000.0; t <= 15000; t += 500 {
		cfg.Fig7Times = append(cfg.Fig7Times, t)
	}
	return cfg
}

// FigureResult is one regenerated panel: a labelled family of series
// over a shared x axis.
type FigureResult struct {
	Title  string
	XLabel string
	Series []*Series
}

// String renders the panel as an aligned data table.
func (f FigureResult) String() string {
	return stats.Table(f.Title, f.XLabel, f.Series...)
}

// workers resolves the harness worker knob to a concrete pool size.
func (cfg ExperimentConfig) workers() int { return parallel.Resolve(cfg.Workers) }

// schedulersFor returns the algorithm set of one §VII comparison family.
func (cfg ExperimentConfig) schedulersFor(fading bool) []Scheduler {
	w := cfg.workers()
	if fading {
		return []Scheduler{
			FREEDCB{Level: cfg.SteinerLevel, Workers: w, Obs: cfg.Obs},
			FRGreedy{Workers: w, Obs: cfg.Obs},
			FRRandom{Seed: cfg.TraceSeed, Workers: w, Obs: cfg.Obs},
		}
	}
	return []Scheduler{
		EEDCB{Level: cfg.SteinerLevel, Workers: w, Obs: cfg.Obs},
		Greedy{Obs: cfg.Obs},
		Random{Seed: cfg.TraceSeed, Obs: cfg.Obs},
	}
}

// allSchedulers returns all six algorithms (Fig. 6 order).
func (cfg ExperimentConfig) allSchedulers() []Scheduler {
	return append(cfg.schedulersFor(false), cfg.schedulersFor(true)...)
}

// graphFor materializes the experiment trace restricted to n nodes.
func (cfg ExperimentConfig) graphFor(n int, model Model) *Graph {
	opts := cfg.TraceOpts
	if opts.N == 0 {
		opts.N = 30
	}
	if n > opts.N {
		panic(fmt.Sprintf("tmedb: n=%d exceeds trace nodes %d", n, opts.N))
	}
	tr := GenerateTrace(opts, cfg.TraceSeed)
	// The cost cache is exact memoization, so every table is identical
	// with or without it; the comparison sweeps query the same (node,
	// time) costs once per algorithm, and the fading models repeat the
	// same per-segment root-findings across DTS points.
	return tr.Restrict(n).ToTVEG(cfg.Tau, cfg.Params, model).EnableCostCache()
}

// auditSchedule cross-checks a freshly planned schedule through every
// execution semantics when cfg.Audit is on. A disagreement means the
// harness is about to aggregate numbers whose meaning depends on which
// executor you ask, so it fails loudly with the reference event trace
// rather than returning.
func (cfg ExperimentConfig) auditSchedule(alg Scheduler, g *Graph, s Schedule, src NodeID, t0, deadline float64) {
	if !cfg.Audit {
		return
	}
	diffs := audit.CompareSchedule(g, s, src, t0, deadline, math.Inf(1))
	if len(diffs) == 0 {
		return
	}
	tr := audit.Execute(g, s, src, audit.Options{T0: t0, Events: true})
	panic(fmt.Sprintf("tmedb: execution-semantics audit failed for %s (src=%d, window=[%g,%g]):\n  %s\nreference trace:\n%s",
		alg.Name(), src, t0, deadline, strings.Join(diffs, "\n  "), audit.FormatEvents(tr.Events)))
}

// planSchedule plans one broadcast under the configured per-schedule
// solve budget (cfg.Deadline; zero or negative plans uncancellable, on
// the exact pre-cancellation code paths).
func (cfg ExperimentConfig) planSchedule(alg Scheduler, g *Graph, src NodeID, t0, deadline float64) (Schedule, error) {
	if cfg.Deadline <= 0 {
		return alg.Schedule(g, src, t0, deadline)
	}
	ctx, cancelFn := context.WithTimeout(context.Background(), cfg.Deadline)
	defer cancelFn()
	return ScheduleWithContext(ctx, alg, g, src, t0, deadline)
}

// meanPlannedEnergy runs alg for every configured source and returns the
// mean normalized planned energy over the sources whose broadcast the
// planner completed. ok is false when no source completed.
func (cfg ExperimentConfig) meanPlannedEnergy(alg Scheduler, g *Graph, t0, deadline float64) (float64, bool) {
	var energies []float64
	for _, src := range cfg.Sources {
		if int(src) >= g.N() {
			continue
		}
		s, err := cfg.planSchedule(alg, g, src, t0, deadline)
		if err != nil {
			var ie *IncompleteError
			if errors.As(err, &ie) {
				continue // partial coverage: not comparable on energy
			}
			continue
		}
		cfg.auditSchedule(alg, g, s, src, t0, deadline)
		energies = append(energies, s.NormalizedCost(g.Params.GammaTh))
	}
	if len(energies) == 0 {
		return math.NaN(), false
	}
	return stats.Mean(energies), true
}

// Fig4 regenerates Fig. 4(a) (model == Static) or Fig. 4(b) (model ==
// Rayleigh): normalized energy of EEDCB / FR-EEDCB versus the delay
// constraint, one series per network size N ∈ Ns (clipped to the three
// smallest, as in the paper).
func Fig4(cfg ExperimentConfig, model Model) FigureResult {
	alg := Scheduler(EEDCB{Level: cfg.SteinerLevel, Workers: cfg.workers(), Obs: cfg.Obs})
	name := "EEDCB"
	if model.Fading() {
		alg = FREEDCB{Level: cfg.SteinerLevel, Workers: cfg.workers(), Obs: cfg.Obs}
		name = "FR-EEDCB"
	}
	ns := cfg.Ns
	if len(ns) > 3 {
		ns = ns[:3]
	}
	out := FigureResult{
		Title:  fmt.Sprintf("Fig.4 %s: normalized energy vs delay constraint (%v channel)", name, model),
		XLabel: "delay(s)",
	}
	for _, n := range ns {
		g := cfg.graphFor(n, model)
		s := &Series{Label: fmt.Sprintf("N=%d", n)}
		ys := make([]float64, len(cfg.Delays))
		runParallel(cfg.workers(), len(cfg.Delays), func(i int) {
			if e, ok := cfg.meanPlannedEnergy(alg, g, cfg.T0, cfg.T0+cfg.Delays[i]); ok {
				ys[i] = e
			} else {
				ys[i] = math.NaN()
			}
		})
		for i, d := range cfg.Delays {
			s.Add(d, ys[i])
		}
		out.Series = append(out.Series, s)
	}
	return out
}

// Fig5 regenerates Fig. 5(a)/(b): normalized energy versus the delay
// constraint for the three algorithms of one channel family at the
// default network size (the largest N <= 20 in Ns).
func Fig5(cfg ExperimentConfig, model Model) FigureResult {
	n := defaultN(cfg)
	g := cfg.graphFor(n, model)
	out := FigureResult{
		Title:  fmt.Sprintf("Fig.5: normalized energy vs delay constraint, N=%d (%v channel)", n, model),
		XLabel: "delay(s)",
	}
	for _, alg := range cfg.schedulersFor(model.Fading()) {
		alg := alg
		s := &Series{Label: alg.Name()}
		ys := make([]float64, len(cfg.Delays))
		runParallel(cfg.workers(), len(cfg.Delays), func(i int) {
			if e, ok := cfg.meanPlannedEnergy(alg, g, cfg.T0, cfg.T0+cfg.Delays[i]); ok {
				ys[i] = e
			} else {
				ys[i] = math.NaN()
			}
		})
		for i, d := range cfg.Delays {
			s.Add(d, ys[i])
		}
		out.Series = append(out.Series, s)
	}
	return out
}

// Fig6 regenerates Fig. 6(a) and 6(b): planned normalized energy and
// Monte Carlo delivery ratio versus the network size for all six
// algorithms in the Rayleigh fading environment. The default delay
// constraint (first of Delays) applies.
func Fig6(cfg ExperimentConfig) (energy, delivery FigureResult) {
	deadline := cfg.T0 + cfg.Delays[0]
	energy = FigureResult{Title: "Fig.6(a): normalized energy vs N (fading)", XLabel: "N"}
	delivery = FigureResult{Title: "Fig.6(b): packet delivery ratio vs N (fading)", XLabel: "N"}
	algs := cfg.allSchedulers()
	eSeries := make([]*Series, len(algs))
	dSeries := make([]*Series, len(algs))
	for i, alg := range algs {
		eSeries[i] = &Series{Label: alg.Name()}
		dSeries[i] = &Series{Label: alg.Name()}
	}
	type cell struct{ energy, delivery float64 }
	grid := make([][]cell, len(cfg.Ns))
	runParallel(cfg.workers(), len(cfg.Ns), func(ni int) {
		g := cfg.graphFor(cfg.Ns[ni], Rayleigh)
		row := make([]cell, len(algs))
		for i, alg := range algs {
			var energies, deliveries []float64
			for _, src := range cfg.Sources {
				if int(src) >= g.N() {
					continue
				}
				s, err := cfg.planSchedule(alg, g, src, cfg.T0, deadline)
				if err != nil {
					var ie *IncompleteError
					if !errors.As(err, &ie) {
						continue
					}
				}
				cfg.auditSchedule(alg, g, s, src, cfg.T0, deadline)
				res := sim.EvaluateObs(g, s, src, cfg.Trials, rand.New(rand.NewSource(cfg.EvalSeed)), cfg.Obs)
				energies = append(energies, s.NormalizedCost(g.Params.GammaTh))
				deliveries = append(deliveries, res.MeanDelivery)
			}
			row[i] = cell{stats.Mean(energies), stats.Mean(deliveries)}
		}
		grid[ni] = row
	})
	for ni, n := range cfg.Ns {
		for i := range algs {
			eSeries[i].Add(float64(n), grid[ni][i].energy)
			dSeries[i].Add(float64(n), grid[ni][i].delivery)
		}
	}
	energy.Series = eSeries
	delivery.Series = dSeries
	return energy, delivery
}

// Fig7 regenerates Fig. 7(a) (static) or 7(b) (fading): normalized
// energy of the three algorithms of the channel family for broadcasts
// released every 500 s across the trace, plus the average node degree
// series both panels overlay.
func Fig7(cfg ExperimentConfig, model Model) FigureResult {
	n := defaultN(cfg)
	g := cfg.graphFor(n, model)
	out := FigureResult{
		Title:  fmt.Sprintf("Fig.7: energy and average degree over time, N=%d (%v channel)", n, model),
		XLabel: "t0(s)",
	}
	for _, alg := range cfg.schedulersFor(model.Fading()) {
		alg := alg
		s := &Series{Label: alg.Name()}
		ys := make([]float64, len(cfg.Fig7Times))
		runParallel(cfg.workers(), len(cfg.Fig7Times), func(i int) {
			if e, ok := cfg.meanPlannedEnergy(alg, g, cfg.Fig7Times[i], cfg.Fig7Times[i]+cfg.Fig7Delay); ok {
				ys[i] = e
			} else {
				ys[i] = math.NaN()
			}
		})
		for i, t0 := range cfg.Fig7Times {
			s.Add(t0, ys[i])
		}
		out.Series = append(out.Series, s)
	}
	deg := &Series{Label: "avg-degree"}
	for _, t0 := range cfg.Fig7Times {
		deg.Add(t0, g.AverageDegreeOver(t0, t0+500, 50))
	}
	out.Series = append(out.Series, deg)
	return out
}

func defaultN(cfg ExperimentConfig) int {
	n := cfg.Ns[0]
	for _, x := range cfg.Ns {
		if x <= 20 && x > n {
			n = x
		}
	}
	return n
}
