package tmedb

// Integration tests: cross-module invariants exercised through the
// public API only, over randomized traces, channel models, and traversal
// times — the configurations a downstream user will actually run.

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// integrationTrace builds a moderately dense trace where broadcasts
// from node 0 complete.
func integrationTrace(seed int64, n int) *Trace {
	return GenerateTrace(TraceOptions{
		N:                n,
		Horizon:          4000,
		MeanInterContact: 800,
		MeanContact:      120,
		RampEnd:          500,
	}, seed)
}

func TestIntegrationAllSchedulersAllModelsTauZero(t *testing.T) {
	tr := integrationTrace(1, 10)
	for _, model := range []Model{Static, Rayleigh, Rician, Nakagami} {
		g := tr.ToTVEG(0, DefaultParams(), model)
		algs := []Scheduler{
			EEDCB{}, Greedy{}, Random{Seed: 1},
			FREEDCB{}, FRGreedy{}, FRRandom{Seed: 1},
		}
		for _, alg := range algs {
			s, err := alg.Schedule(g, 0, 500, 4000)
			var ie *IncompleteError
			if err != nil && !errors.As(err, &ie) {
				t.Errorf("%v/%s: %v", model, alg.Name(), err)
				continue
			}
			// every schedule must execute without panics and deliver at
			// least the source
			res := Evaluate(g, s, 0, 50, 7)
			if res.MeanDelivery < 1.0/float64(g.N()) {
				t.Errorf("%v/%s: delivery %g below source-only floor",
					model, alg.Name(), res.MeanDelivery)
			}
			// transmissions must stay inside the window
			for _, x := range s {
				if x.T < 500 || x.T > 4000 {
					t.Errorf("%v/%s: transmission at %g outside window", model, alg.Name(), x.T)
				}
			}
		}
	}
}

func TestIntegrationSchedulersWithPositiveTau(t *testing.T) {
	tr := integrationTrace(2, 8)
	for _, tau := range []float64{1, 5} {
		g := tr.ToTVEG(tau, DefaultParams(), Static)
		for _, alg := range []Scheduler{EEDCB{}, Greedy{}, Random{Seed: 3}} {
			s, err := alg.Schedule(g, 0, 500, 4000)
			var ie *IncompleteError
			if err != nil && !errors.As(err, &ie) {
				t.Fatalf("τ=%g %s: %v", tau, alg.Name(), err)
			}
			if err == nil {
				if ferr := CheckFeasible(g, s, 0, 4000, math.Inf(1)); ferr != nil {
					t.Errorf("τ=%g %s: complete schedule infeasible: %v", tau, alg.Name(), ferr)
				}
			}
			// latency accounting must include τ
			if lat := s.Latency(tau); len(s) > 0 && lat > 4000 {
				t.Errorf("τ=%g %s: latency %g exceeds deadline", tau, alg.Name(), lat)
			}
		}
	}
}

func TestIntegrationFRWithPositiveTauFading(t *testing.T) {
	tr := integrationTrace(4, 8)
	g := tr.ToTVEG(2, DefaultParams(), Rayleigh)
	s, err := (FREEDCB{}).Schedule(g, 0, 500, 4000)
	var ie *IncompleteError
	if err != nil && !errors.As(err, &ie) {
		t.Fatal(err)
	}
	if err == nil {
		if ferr := CheckFeasible(g, s, 0, 4000, math.Inf(1)); ferr != nil {
			t.Errorf("τ=2 FR-EEDCB infeasible: %v", ferr)
		}
	}
}

func TestIntegrationDeterminismAcrossRuns(t *testing.T) {
	tr := integrationTrace(5, 10)
	g := tr.ToTVEG(0, DefaultParams(), Rayleigh)
	for _, alg := range []Scheduler{EEDCB{}, FREEDCB{}, Greedy{}, FRGreedy{}, Random{Seed: 9}, FRRandom{Seed: 9}} {
		a, errA := alg.Schedule(g, 0, 500, 4000)
		b, errB := alg.Schedule(g, 0, 500, 4000)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: nondeterministic error", alg.Name())
		}
		if len(a) != len(b) {
			t.Fatalf("%s: schedule lengths differ: %d vs %d", alg.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: tx %d differs: %v vs %v", alg.Name(), i, a[i], b[i])
			}
		}
	}
}

func TestIntegrationScheduleJSONReplay(t *testing.T) {
	tr := integrationTrace(6, 8)
	g := tr.ToTVEG(0, DefaultParams(), Rayleigh)
	s, err := (FREEDCB{}).Schedule(g, 0, 500, 4000)
	if onlyIncompleteErr(err) != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteScheduleJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScheduleJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// replayed schedule must behave identically
	r1 := Evaluate(g, s, 0, 500, 3)
	r2 := Evaluate(g, back, 0, 500, 3)
	if r1 != r2 {
		t.Errorf("replay diverges: %v vs %v", r1, r2)
	}
}

func TestIntegrationLowerBoundVsAllAlgorithms(t *testing.T) {
	tr := integrationTrace(7, 10)
	g := tr.ToTVEG(0, DefaultParams(), Static)
	lb, _, err := LowerBound(g, 0, 500, 4000)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Scheduler{EEDCB{}, Greedy{}, Random{Seed: 5}} {
		s, err := alg.Schedule(g, 0, 500, 4000)
		if onlyIncompleteErr(err) != nil {
			t.Fatal(err)
		}
		if err == nil && s.TotalCost() < lb*(1-1e-9) {
			t.Errorf("%s cost %g beats certified LB %g", alg.Name(), s.TotalCost(), lb)
		}
	}
}

func TestIntegrationTighteningEpsRaisesCost(t *testing.T) {
	tr := integrationTrace(8, 8)
	params := DefaultParams()
	var prev float64
	for i, eps := range []float64{0.05, 0.01, 0.001} {
		params.Eps = eps
		g := tr.ToTVEG(0, params, Rayleigh)
		s, err := (FREEDCB{}).Schedule(g, 0, 500, 4000)
		if onlyIncompleteErr(err) != nil {
			t.Fatal(err)
		}
		cost := s.TotalCost()
		if i > 0 && cost < prev*(1-1e-9) {
			t.Errorf("tightening ε to %g lowered cost: %g → %g", eps, prev, cost)
		}
		prev = cost
	}
}

func TestIntegrationFadingModelsOrderedByHarshness(t *testing.T) {
	// For identical topology, the FR planner should pay most under
	// Rayleigh (no diversity), less under Nakagami m=2, less again under
	// Rician K=5 (strong LOS).
	tr := integrationTrace(9, 8)
	costs := map[Model]float64{}
	for _, m := range []Model{Rayleigh, Nakagami, Rician} {
		g := tr.ToTVEG(0, DefaultParams(), m)
		s, err := (FREEDCB{}).Schedule(g, 0, 500, 4000)
		if onlyIncompleteErr(err) != nil {
			t.Fatal(err)
		}
		costs[m] = s.TotalCost()
	}
	if !(costs[Rayleigh] > costs[Nakagami] && costs[Nakagami] > costs[Rician]) {
		t.Errorf("harshness ordering violated: rayleigh=%g nakagami=%g rician=%g",
			costs[Rayleigh], costs[Nakagami], costs[Rician])
	}
}

// onlyIncompleteErr passes nil and IncompleteError, fails otherwise.
func onlyIncompleteErr(err error) error {
	var ie *IncompleteError
	if err == nil || errors.As(err, &ie) {
		return nil
	}
	return err
}

// seed determinism of RAND across seeds: different seeds may differ
func TestIntegrationRandomSeedsDiffer(t *testing.T) {
	tr := integrationTrace(10, 10)
	g := tr.ToTVEG(0, DefaultParams(), Static)
	a, _ := Random{Seed: 1}.Schedule(g, 0, 500, 4000)
	b, _ := Random{Seed: 2}.Schedule(g, 0, 500, 4000)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same && len(a) > 2 {
		t.Log("different seeds produced identical schedules (possible but unlikely)")
	}
}
