// Quickstart: build a small time-varying energy-demand graph by hand,
// plan a minimum-energy delay-constrained broadcast with EEDCB, verify
// the §IV feasibility conditions, and evaluate the result.
package main

import (
	"fmt"
	"math"

	"repro"
)

func main() {
	// Five nodes over a 100-second span; τ = 0 (instantaneous packets).
	// Contacts appear and disappear: this is a time-varying graph, so the
	// broadcast must route packets through contacts in temporal order.
	g := tmedb.NewGraph(5, tmedb.Interval{Start: 0, End: 100}, 0,
		tmedb.DefaultParams(), tmedb.Static)

	//   time 10-30: node 0 meets nodes 1 (5 m) and 2 (12 m)
	//   time 35-50: node 2 meets node 3 (4 m)
	//   time 60-80: node 1 meets node 4 (9 m)
	g.AddContact(0, 1, tmedb.Interval{Start: 10, End: 30}, 5)
	g.AddContact(0, 2, tmedb.Interval{Start: 10, End: 30}, 12)
	g.AddContact(2, 3, tmedb.Interval{Start: 35, End: 50}, 4)
	g.AddContact(1, 4, tmedb.Interval{Start: 60, End: 80}, 9)

	// Plan: minimum-energy broadcast from node 0, deadline t = 100.
	sched, err := (tmedb.EEDCB{}).Schedule(g, 0, 0, 100)
	if err != nil {
		panic(err)
	}

	fmt.Println("broadcast relay schedule S = [R, T, W]:")
	for k, tx := range sched {
		fmt.Printf("  s_%d: node %d transmits at t=%-5.1f cost %.3g J\n",
			k+1, tx.Relay, tx.T, tx.W)
	}
	fmt.Printf("total energy: %.6g (normalized by γth)\n",
		sched.NormalizedCost(g.Params.GammaTh))

	// Verify all four feasibility conditions of the TMEDB problem.
	if err := tmedb.CheckFeasible(g, sched, 0, 100, math.Inf(1)); err != nil {
		panic(err)
	}
	fmt.Println("feasible: every node informed within the deadline")

	// Execute the schedule (deterministic on a static channel).
	res := tmedb.Evaluate(g, sched, 0, 1, 1)
	fmt.Printf("execution: %v\n", res)
}
