// Fading-channel study: the same broadcast planned under different
// channel models. Shows the energy-demand functions of §III-C in action
// (step, Rayleigh, and the Rician / Nakagami extensions), and how the
// fading-resistant planner's NLP energy allocation (Eq. 14-17) buys
// delivery probability with energy.
package main

import (
	"errors"
	"fmt"

	"repro"
)

func main() {
	trace := tmedb.GenerateTrace(tmedb.TraceOptions{N: 15}, 21)

	// 1. The ED-function zoo: failure probability vs cost on one edge.
	gRay := trace.ToTVEG(0, tmedb.DefaultParams(), tmedb.Rayleigh)
	src, dst, when := pickContact(gRay, trace)
	fmt.Printf("edge (%d,%d) at t=%.0f s:\n", src, dst, when)
	fmt.Printf("%-10s %14s\n", "model", "min-cost(J)")
	for _, m := range []tmedb.Model{tmedb.Static, tmedb.Rayleigh, tmedb.Rician, tmedb.Nakagami} {
		g := trace.ToTVEG(0, tmedb.DefaultParams(), m)
		fmt.Printf("%-10v %14.5g\n", m, g.MinCost(src, dst, when))
	}
	fmt.Println("\nA fading channel needs ~100x the deterministic threshold to reach")
	fmt.Println("the 1% per-hop failure target; line-of-sight (Rician) and")
	fmt.Println("diversity (Nakagami m=2) close part of the gap.")

	// 2. Plan under each fading model and measure delivery.
	fmt.Printf("\n%-10s %-10s %14s %10s\n", "channel", "planner", "energy(/γth)", "delivery")
	for _, m := range []tmedb.Model{tmedb.Rayleigh, tmedb.Rician, tmedb.Nakagami} {
		g := trace.ToTVEG(0, tmedb.DefaultParams(), m)
		for _, alg := range []tmedb.Scheduler{tmedb.EEDCB{}, tmedb.FREEDCB{}} {
			sched, err := alg.Schedule(g, 0, 9000, 12000)
			var inc *tmedb.IncompleteError
			if err != nil && !errors.As(err, &inc) {
				fmt.Printf("%-10v %-10s failed: %v\n", m, alg.Name(), err)
				continue
			}
			res := tmedb.Evaluate(g, sched, 0, 2000, 5)
			fmt.Printf("%-10v %-10s %14.5g %9.1f%%\n",
				m, alg.Name(), res.PlannedEnergy, 100*res.MeanDelivery)
		}
	}
}

// pickContact returns a pair and time with an active contact after the
// arrival ramp, preferring the broadcast source's neighborhood.
func pickContact(g *tmedb.Graph, trace *tmedb.Trace) (tmedb.NodeID, tmedb.NodeID, float64) {
	for _, c := range trace.Contacts {
		if c.Start >= 9000 {
			return tmedb.NodeID(c.I), tmedb.NodeID(c.J), (c.Start + c.End) / 2
		}
	}
	c := trace.Contacts[0]
	return tmedb.NodeID(c.I), tmedb.NodeID(c.J), (c.Start + c.End) / 2
}
