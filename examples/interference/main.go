// Interference-aware broadcast — the protocol-model direction from the
// paper's future work (§VIII). Minimum-energy schedules love
// simultaneous transmissions (with τ ≈ 0 whole relay chains share one
// timestamp), but simultaneous transmitters collide at shared receivers.
// This example detects the collisions in an EEDCB schedule, serializes
// it, and measures delivery before and after.
package main

import (
	"errors"
	"fmt"

	"repro"
)

func main() {
	trace := tmedb.GenerateTrace(tmedb.TraceOptions{N: 20}, 2)
	g := trace.ToTVEG(0, tmedb.DefaultParams(), tmedb.Static)

	sched, err := (tmedb.EEDCB{}).Schedule(g, 0, 9000, 12000)
	var inc *tmedb.IncompleteError
	if err != nil && !errors.As(err, &inc) {
		panic(err)
	}

	// One packet at 1 Mbit/s and ~1 KB is ~8 ms of airtime.
	const slot = 0.008
	conflicts := tmedb.DetectConflicts(g, sched, slot)
	fmt.Printf("schedule: %d transmissions, %d colliding pairs\n", len(sched), len(conflicts))
	for _, c := range conflicts {
		fmt.Printf("  collision: tx%d and tx%d meet at node %d\n", c.K, c.L, c.Receiver)
	}

	before := tmedb.EvaluateWithInterference(g, sched, 0, slot, 2000, 5)
	fmt.Printf("delivery under collisions:  %.3f\n", before)

	fixed, err := tmedb.SerializeSchedule(g, sched, slot)
	if err != nil {
		panic(err)
	}
	after := tmedb.EvaluateWithInterference(g, fixed, 0, slot, 2000, 5)
	fmt.Printf("delivery after serializing: %.3f\n", after)
	fmt.Printf("(energy unchanged: %.5g vs %.5g — only timing moved)\n",
		sched.NormalizedCost(g.Params.GammaTh), fixed.NormalizedCost(g.Params.GammaTh))
}
