// Robust broadcast under contact uncertainty — the non-deterministic
// TVG direction from the paper's future work (§VIII). Contacts are
// *predicted* with a confidence: planning on everything is cheap but
// brittle; planning only on confident contacts costs more (or covers
// fewer nodes) but survives realization noise. This example sweeps the
// planning threshold and prints the trade-off.
package main

import (
	"errors"
	"fmt"

	"repro"
)

func main() {
	// A 15-node trace whose contacts are predictions with confidence
	// drawn from [0.4, 1.0].
	trace := tmedb.GenerateTrace(tmedb.TraceOptions{N: 15}, 4)
	nd := tmedb.NDFromTrace(trace, 0, tmedb.DefaultParams(), tmedb.Static, 0.4, 1.0, 7)

	fmt.Println("planning-threshold sweep (EEDCB backbone, 300 realizations):")
	fmt.Printf("%-10s %14s %10s %10s %10s\n",
		"threshold", "energy(/γth)", "delivery", "worst", "planned-cover")
	for _, th := range []float64{0.0, 0.5, 0.7, 0.9} {
		sched, res, err := tmedb.PlanRobust(nd, tmedb.EEDCB{}, 0, 9000, 12000, th, 300, 1, 11)
		covered := 15
		var inc *tmedb.IncompleteError
		if err != nil {
			if !errors.As(err, &inc) {
				fmt.Printf("%-10.1f failed: %v\n", th, err)
				continue
			}
			covered -= len(inc.Uncovered)
		}
		_ = sched
		fmt.Printf("%-10.1f %14.5g %10.3f %10.3f %7d/15\n",
			th, res.PlannedEnergy, res.MeanDelivery, res.WorstDelivery, covered)
	}

	fmt.Println("\nLow thresholds plan through unreliable contacts: full planned")
	fmt.Println("coverage, but realizations miss nodes. High thresholds plan only")
	fmt.Println("through near-certain contacts: delivery of the covered set holds,")
	fmt.Println("at the price of nodes the planner must give up in advance.")
}
