// Contact-trace walkthrough: the paper's §VII setting. Generate a
// Haggle-like contact trace (or read one from disk), run all six
// algorithms on the same broadcast, and compare planned energy against
// Monte Carlo delivery under Rayleigh fading — the Fig. 5/6 experiment
// in miniature.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "Haggle-format trace file (empty: synthesize)")
		seed      = flag.Int64("seed", 7, "seed for trace synthesis and evaluation")
		t0        = flag.Float64("t0", 9000, "broadcast release time (s)")
		delay     = flag.Float64("delay", 2000, "delay constraint (s)")
	)
	flag.Parse()

	var trace *tmedb.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			panic(err)
		}
		var rerr error
		trace, rerr = tmedb.ReadTrace(f)
		f.Close()
		if rerr != nil {
			panic(rerr)
		}
	} else {
		trace = tmedb.GenerateTrace(tmedb.TraceOptions{N: 20}, *seed)
	}
	fmt.Printf("trace: %d nodes, %d contacts, horizon %.0f s\n\n",
		trace.N, len(trace.Contacts), trace.Horizon)

	// The network lives in a Rayleigh fading environment; the non-FR
	// algorithms plan as if the channel were deterministic.
	g := trace.ToTVEG(0, tmedb.DefaultParams(), tmedb.Rayleigh)

	algorithms := []tmedb.Scheduler{
		tmedb.EEDCB{},
		tmedb.Greedy{},
		tmedb.Random{Seed: *seed},
		tmedb.FREEDCB{},
		tmedb.FRGreedy{},
		tmedb.FRRandom{Seed: *seed},
	}

	fmt.Printf("%-10s %14s %14s %10s\n", "algorithm", "planned-energy", "consumed", "delivery")
	for _, alg := range algorithms {
		sched, err := alg.Schedule(g, 0, *t0, *t0+*delay)
		var inc *tmedb.IncompleteError
		if err != nil && !errors.As(err, &inc) {
			fmt.Printf("%-10s failed: %v\n", alg.Name(), err)
			continue
		}
		res := tmedb.Evaluate(g, sched, 0, 2000, *seed)
		note := ""
		if inc != nil {
			note = fmt.Sprintf("  (%d nodes unreachable)", len(inc.Uncovered))
		}
		fmt.Printf("%-10s %14.5g %14.5g %9.1f%%%s\n",
			alg.Name(), res.PlannedEnergy, res.MeanEnergy, 100*res.MeanDelivery, note)
	}
	fmt.Println("\nThe FR variants pay roughly two orders of magnitude more energy")
	fmt.Println("but deliver to ~100% of nodes; the deterministic planners lose a")
	fmt.Println("third of the network to fading — the paper's central trade-off.")
}
