// Sensor-network scenario: nodes move through an arena under a
// random-waypoint mobility model (think mobile sensors or message
// ferries), contacts arise from physical proximity, and the broadcast
// must exploit those encounters. Demonstrates the geometry-backed
// pipeline: mobility → contacts with real distances → TVEG → schedule,
// and the delay/energy trade-off of Fig. 4.
package main

import (
	"errors"
	"fmt"

	"repro"
)

func main() {
	// 12 sensors in a 150x150 m arena, sampled each second for an hour;
	// radios reach 25 m.
	model := tmedb.DefaultMobilityModel()
	model.Width, model.Height = 150, 150
	trace := tmedb.MobilityTrace(model, 12, 3600, 1, 25, 99)
	fmt.Printf("mobility trace: %d proximity contacts in 1 h\n\n", len(trace.Contacts))

	g := trace.ToTVEG(0, tmedb.DefaultParams(), tmedb.Static)

	// Sweep the delay constraint: the looser the deadline, the more the
	// planner can wait for cheap short-range encounters (Fig. 4 shape).
	fmt.Printf("%-12s %16s %14s\n", "deadline(s)", "energy(/γth)", "transmissions")
	for _, delay := range []float64{600, 1200, 1800, 2400, 3000} {
		sched, err := (tmedb.EEDCB{}).Schedule(g, 0, 0, delay)
		var inc *tmedb.IncompleteError
		if err != nil && !errors.As(err, &inc) {
			panic(err)
		}
		note := ""
		if inc != nil {
			note = fmt.Sprintf("   (only %d/%d nodes reachable)",
				g.N()-len(inc.Uncovered), g.N())
		}
		fmt.Printf("%-12.0f %16.5g %14d%s\n",
			delay, sched.NormalizedCost(g.Params.GammaTh), len(sched), note)
	}

	fmt.Println("\nTight deadlines force long-range (quadratically expensive)")
	fmt.Println("transmissions; patience lets the broadcast ride cheap encounters.")
}
