package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestChunkRangesZeroTasks(t *testing.T) {
	ranges := ChunkRanges(4, 0)
	if len(ranges) != 1 || ranges[0] != (Range{0, 0}) {
		t.Fatalf("ChunkRanges(4,0) = %v, want one empty range", ranges)
	}
}

func TestChunkRangesMoreWorkersThanTasks(t *testing.T) {
	ranges := ChunkRanges(8, 3)
	if len(ranges) != 3 {
		t.Fatalf("ChunkRanges(8,3) produced %d ranges, want clamp to 3", len(ranges))
	}
	for i, r := range ranges {
		if r.Hi-r.Lo != 1 {
			t.Fatalf("range %d = %+v, want width 1", i, r)
		}
	}
}

func TestChunkRangesZeroWorkersResolves(t *testing.T) {
	// workers <= 0 means "use GOMAXPROCS" at the Resolve layer; ChunkRanges
	// itself clamps to at least one range so callers that skip Resolve
	// still get a valid partition.
	ranges := ChunkRanges(0, 10)
	if len(ranges) != 1 || ranges[0] != (Range{0, 10}) {
		t.Fatalf("ChunkRanges(0,10) = %v, want single full range", ranges)
	}
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS", got)
	}
}

func TestSplitCountsZeroTasks(t *testing.T) {
	counts := SplitCounts(0, 4)
	if len(counts) != 1 || counts[0] != 0 {
		t.Fatalf("SplitCounts(0,4) = %v, want [0]", counts)
	}
}

func TestSplitCountsMoreWorkersThanTasks(t *testing.T) {
	counts := SplitCounts(3, 8)
	if len(counts) != 3 {
		t.Fatalf("SplitCounts(3,8) = %v, want clamp to 3 workers", counts)
	}
	for w, c := range counts {
		if c != 1 {
			t.Fatalf("worker %d share = %d, want 1", w, c)
		}
	}
}

func TestSplitCountsZeroWorkers(t *testing.T) {
	counts := SplitCounts(10, 0)
	if len(counts) != 1 || counts[0] != 10 {
		t.Fatalf("SplitCounts(10,0) = %v, want [10]", counts)
	}
}

func TestForEachPoolNilDelegates(t *testing.T) {
	var hits [50]atomic.Int64
	ForEachPool(nil, 4, len(hits), func(i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d hit %d times", i, hits[i].Load())
		}
	}
}

func TestForEachPoolAccountsTasksAndBusyTime(t *testing.T) {
	r := obs.New()
	p := r.Pool("test")
	const n = 64
	var hits [n]atomic.Int64
	ForEachPool(p, 4, n, func(i int) {
		hits[i].Add(1)
		time.Sleep(time.Microsecond)
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d hit %d times", i, hits[i].Load())
		}
	}
	rep := r.Snapshot(nil)
	var found bool
	for _, pr := range rep.Pools {
		if pr.Name != "test" {
			continue
		}
		found = true
		if pr.Runs != 1 {
			t.Errorf("runs = %d, want 1", pr.Runs)
		}
		if pr.Tasks != n {
			t.Errorf("tasks = %d, want %d", pr.Tasks, n)
		}
		if pr.Workers != 4 {
			t.Errorf("workers = %d, want 4", pr.Workers)
		}
		var total float64
		for _, b := range pr.BusyMS {
			total += b
		}
		if total <= 0 {
			t.Errorf("total busy time = %g ms, want > 0", total)
		}
	}
	if !found {
		t.Fatal("pool \"test\" missing from report")
	}
}

func TestForEachPoolSerialFallbackReportsSlotZero(t *testing.T) {
	r := obs.New()
	p := r.Pool("serial")
	ForEachPool(p, 1, 10, func(int) {})
	rep := r.Snapshot(nil)
	for _, pr := range rep.Pools {
		if pr.Name == "serial" {
			if pr.Workers != 1 || pr.Tasks != 10 || pr.Runs != 1 {
				t.Fatalf("serial pool report = %+v, want workers=1 tasks=10 runs=1", pr)
			}
			return
		}
	}
	t.Fatal("pool \"serial\" missing from report")
}

func TestForEachRangePoolAccountsPerChunk(t *testing.T) {
	r := obs.New()
	p := r.Pool("ranges")
	var sum atomic.Int64
	ForEachRangePool(p, 3, 10, func(_ int, rg Range) {
		for i := rg.Lo; i < rg.Hi; i++ {
			sum.Add(int64(i))
		}
	})
	if sum.Load() != 45 {
		t.Fatalf("sum = %d, want 45", sum.Load())
	}
	rep := r.Snapshot(nil)
	for _, pr := range rep.Pools {
		if pr.Name == "ranges" {
			if pr.Tasks != 10 || pr.Workers != 3 {
				t.Fatalf("ranges pool report = %+v, want tasks=10 workers=3", pr)
			}
			return
		}
	}
	t.Fatal("pool \"ranges\" missing from report")
}

func TestForEachRangePoolNilDelegates(t *testing.T) {
	var sum atomic.Int64
	ForEachRangePool(nil, 3, 10, func(_ int, rg Range) {
		for i := rg.Lo; i < rg.Hi; i++ {
			sum.Add(int64(i))
		}
	})
	if sum.Load() != 45 {
		t.Fatalf("sum = %d, want 45", sum.Load())
	}
}
