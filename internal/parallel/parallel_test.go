package parallel

import (
	"runtime"
	"testing"
)

func TestSplitSeedContract(t *testing.T) {
	if SplitSeed(5, 0) != 5 {
		t.Errorf("worker 0 must own the base seed, got %d", SplitSeed(5, 0))
	}
	if got, want := SplitSeed(7, 3), int64(7+3*0x9e3779b9); got != want {
		t.Errorf("SplitSeed(7,3) = %d, want %d", got, want)
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Resolve(5); got != 5 {
		t.Errorf("Resolve(5) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 137
		hits := make([]int, n)
		ForEach(workers, n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(4, 0, func(int) { called = true })
	if called {
		t.Error("ForEach called fn for n=0")
	}
}

func TestChunkRangesPartition(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 10}, {3, 10}, {4, 4}, {8, 3}, {5, 0}, {16, 1000},
	} {
		ranges := ChunkRanges(tc.workers, tc.n)
		next := 0
		for _, r := range ranges {
			if r.Lo != next {
				t.Fatalf("workers=%d n=%d: gap at %d (range %+v)", tc.workers, tc.n, next, r)
			}
			if r.Hi < r.Lo {
				t.Fatalf("workers=%d n=%d: inverted range %+v", tc.workers, tc.n, r)
			}
			next = r.Hi
		}
		if tc.n > 0 && next != tc.n {
			t.Fatalf("workers=%d n=%d: ranges end at %d", tc.workers, tc.n, next)
		}
		if len(ranges) > tc.workers && tc.workers >= 1 {
			t.Fatalf("workers=%d n=%d: %d ranges", tc.workers, tc.n, len(ranges))
		}
	}
}

func TestForEachRangeMatchesForEach(t *testing.T) {
	n := 53
	want := make([]int, n)
	ForEach(1, n, func(i int) { want[i] = i * i })
	got := make([]int, n)
	ForEachRange(7, n, func(_ int, r Range) {
		for i := r.Lo; i < r.Hi; i++ {
			got[i] = i * i
		}
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestSplitCounts(t *testing.T) {
	counts := SplitCounts(10, 4)
	if len(counts) != 4 {
		t.Fatalf("len = %d", len(counts))
	}
	total := 0
	for w, c := range counts {
		total += c
		if w > 0 && counts[w-1] < c {
			t.Errorf("counts not front-loaded: %v", counts)
		}
	}
	if total != 10 {
		t.Errorf("counts sum to %d, want 10", total)
	}
	// more workers than items clamps
	if got := SplitCounts(3, 16); len(got) != 3 {
		t.Errorf("SplitCounts(3,16) = %v", got)
	}
}
