package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cancel"
)

func TestForEachPoolCancelNilTokenMatchesForEachPool(t *testing.T) {
	const n = 100
	want := make([]int, n)
	ForEachPool(nil, 4, n, func(i int) { want[i] = i * i })
	got := make([]int, n)
	if err := ForEachPoolCancel(nil, nil, 4, n, func(i int) { got[i] = i * i }); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestForEachPoolCancelCompletesWithLiveToken(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	defer cancelFn()
	tok := cancel.FromContext(ctx)
	var sum atomic.Int64
	if err := ForEachPoolCancel(nil, tok, 4, 50, func(i int) { sum.Add(int64(i)) }); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 50*49/2 {
		t.Fatalf("sum = %d, want %d", sum.Load(), 50*49/2)
	}
}

// TestForEachPoolCancelStopsMidPool trips the token partway through a
// large pool run and asserts (a) the typed error surfaces, (b) far
// fewer than n tasks ran, and (c) no worker goroutines leak.
func TestForEachPoolCancelStopsMidPool(t *testing.T) {
	before := runtime.NumGoroutine()
	const n = 100000
	for _, workers := range []int{1, 4, 8} {
		tr := cancel.NewTrip(32)
		tok := cancel.FromContext(cancel.WithTrip(context.Background(), tr))
		var ran atomic.Int64
		err := ForEachPoolCancel(nil, tok, workers, n, func(i int) { ran.Add(1) })
		if !errors.Is(err, cancel.ErrBudgetExceeded) {
			t.Fatalf("workers=%d: err = %v, want ErrBudgetExceeded", workers, err)
		}
		// Every worker checks once per claim; after the trip fires each
		// worker stops at its next checkpoint, so the overrun is bounded
		// by the pool width.
		if got := ran.Load(); got > 32+int64(workers) {
			t.Fatalf("workers=%d: %d tasks ran after a 32-check budget", workers, got)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestForEachPoolCancelAlreadyCancelled: a token that is dead on arrival
// must prevent any task from running (serial and parallel paths).
func TestForEachPoolCancelAlreadyCancelled(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	for _, workers := range []int{1, 4} {
		tok := cancel.FromContext(ctx)
		var ran atomic.Int64
		err := ForEachPoolCancel(nil, tok, workers, 100, func(i int) { ran.Add(1) })
		if !errors.Is(err, cancel.ErrCancelled) {
			t.Fatalf("workers=%d: err = %v, want ErrCancelled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d tasks ran on a dead token", workers, ran.Load())
		}
	}
}
