// Package parallel is the shared concurrency layer of the solver core:
// a bounded worker pool with deterministic work splitting and a
// deterministic per-worker seed derivation, generalizing the idiom
// sim.EvaluateParallel introduced.
//
// Every helper obeys two contracts the solvers rely on:
//
//  1. Serial fallback — workers <= 1 runs the work inline on the calling
//     goroutine, byte-for-byte reproducing the pre-parallel code path.
//  2. Determinism — results depend only on the inputs (and, where
//     randomness is involved, on the (seed, workers) pair), never on
//     goroutine interleaving. ForEach achieves this by having every
//     index own its output slot; ChunkRanges by splitting the index
//     space into contiguous, order-mergeable blocks.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SeedStride is the golden-ratio constant of the seed-splitting contract:
// worker w of a pool seeded with base seed s owns the RNG stream seeded
// SplitSeed(s, w) = s + w*SeedStride. The stride keeps the per-worker
// streams far apart in seed space while remaining a pure function of
// (seed, worker index).
const SeedStride = 0x9e3779b9

// SplitSeed derives the deterministic seed of worker w from a base seed.
func SplitSeed(seed int64, w int) int64 {
	return seed + int64(w)*SeedStride
}

// Resolve maps a user-facing worker-count knob to a concrete pool size:
// values <= 0 select GOMAXPROCS, everything else passes through.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Clamp bounds a resolved worker count by the number of available tasks
// (never returning less than 1), so pools do not spawn idle goroutines.
func Clamp(workers, tasks int) int {
	if workers > tasks {
		workers = tasks
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines and waits for completion. Indices are handed out through an
// atomic counter; fn must confine its writes to state owned by index i
// (e.g. out[i]) so the result is independent of scheduling. workers <= 1
// (after clamping to n) runs serially on the calling goroutine.
func ForEach(workers, n int, fn func(i int)) {
	workers = Clamp(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Range is a contiguous index block [Lo, Hi).
type Range struct{ Lo, Hi int }

// ChunkRanges splits [0, n) into at most workers contiguous ranges of
// near-equal size (the first n%workers ranges are one longer). The split
// is a pure function of (n, workers): solvers that reduce a per-chunk
// "local best" in ascending chunk order therefore reproduce the serial
// scan exactly.
func ChunkRanges(workers, n int) []Range {
	workers = Clamp(workers, n)
	per, extra := n/workers, n%workers
	out := make([]Range, 0, workers)
	lo := 0
	for w := 0; w < workers; w++ {
		size := per
		if w < extra {
			size++
		}
		out = append(out, Range{lo, lo + size})
		lo += size
	}
	return out
}

// ForEachRange runs fn over each chunk of [0, n) concurrently. fn
// receives the chunk index and its range; writes must be confined to
// per-chunk state. Serial when the clamped pool size is 1.
func ForEachRange(workers, n int, fn func(chunk int, r Range)) {
	ranges := ChunkRanges(workers, n)
	if len(ranges) == 1 {
		fn(0, ranges[0])
		return
	}
	var wg sync.WaitGroup
	for c, r := range ranges {
		wg.Add(1)
		go func(c int, r Range) {
			defer wg.Done()
			fn(c, r)
		}(c, r)
	}
	wg.Wait()
}

// SplitCounts divides total work items across workers the way the worker
// pools do: near-equal shares, the first total%workers workers taking one
// extra. Exposed so reports can attribute per-worker shares (e.g. Monte
// Carlo trials per evaluation worker) without re-deriving the split.
func SplitCounts(total, workers int) []int {
	workers = Clamp(workers, total)
	per, extra := total/workers, total%workers
	out := make([]int, workers)
	for w := range out {
		out[w] = per
		if w < extra {
			out[w]++
		}
	}
	return out
}
