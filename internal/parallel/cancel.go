package parallel

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cancel"
	"repro/internal/obs"
)

// ForEachPoolCancel is ForEachPool with a cancellation checkpoint before
// every task claim: once tok reports cancellation, workers stop handing
// out new indices and the first checkpoint error is returned. Indices
// already claimed run to completion (fn is never interrupted mid-task),
// so on a nil error every slot in [0, n) was processed exactly once and
// the results are byte-identical to ForEachPool; on a non-nil error the
// partial output must be discarded by the caller.
//
// A nil tok delegates to ForEachPool — the uncancellable hot path stays
// on the exact pre-cancellation code, preserving the determinism and
// zero-overhead contracts.
func ForEachPoolCancel(p *obs.Pool, tok *cancel.Token, workers, n int, fn func(i int)) error {
	if tok == nil {
		ForEachPool(p, workers, n, fn)
		return nil
	}
	p.Launched()
	workers = Clamp(workers, n)
	if workers <= 1 {
		start := time.Now()
		var done int64
		var err error
		for i := 0; i < n; i++ {
			if err = tok.Check(); err != nil {
				break
			}
			fn(i)
			done++
		}
		p.Observe(0, done, time.Since(start))
		return err
	}
	var next atomic.Int64
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			var done int64
			for {
				if err := tok.Check(); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					break
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				fn(i)
				done++
			}
			p.Observe(w, done, time.Since(start))
		}(w)
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}
