package parallel

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ForEachPool is ForEach with worker-pool accounting: each worker's task
// count and busy wall time are recorded into p. A nil p delegates to the
// uninstrumented ForEach, so hot paths pass the pool through
// unconditionally. The accounting is write-only (nothing in the work
// distribution depends on p), preserving ForEach's determinism contract.
func ForEachPool(p *obs.Pool, workers, n int, fn func(i int)) {
	if p == nil {
		ForEach(workers, n, fn)
		return
	}
	p.Launched()
	workers = Clamp(workers, n)
	if workers <= 1 {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn(i)
		}
		p.Observe(0, int64(n), time.Since(start))
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			var done int64
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				fn(i)
				done++
			}
			p.Observe(w, done, time.Since(start))
		}(w)
	}
	wg.Wait()
}

// ForEachRangePool is ForEachRange with worker-pool accounting; chunk c
// reports as worker slot c. A nil p delegates to ForEachRange.
func ForEachRangePool(p *obs.Pool, workers, n int, fn func(chunk int, r Range)) {
	if p == nil {
		ForEachRange(workers, n, fn)
		return
	}
	p.Launched()
	ranges := ChunkRanges(workers, n)
	if len(ranges) == 1 {
		start := time.Now()
		fn(0, ranges[0])
		p.Observe(0, int64(ranges[0].Hi-ranges[0].Lo), time.Since(start))
		return
	}
	var wg sync.WaitGroup
	for c, r := range ranges {
		wg.Add(1)
		go func(c int, r Range) {
			defer wg.Done()
			start := time.Now()
			fn(c, r)
			p.Observe(c, int64(r.Hi-r.Lo), time.Since(start))
		}(c, r)
	}
	wg.Wait()
}
