// Package lru provides a small mutex-guarded LRU cache for the solver's
// artifact memos (discrete time sets, auxiliary-graph cores). Values are
// shared by reference with every getter, so cached artifacts must be
// immutable. Capacities are tens of entries — the cache is a bounded
// map with recency eviction, not a high-throughput cache; operations are
// O(capacity), which at these sizes beats maintaining list nodes.
package lru

import "sync"

// Cache is a fixed-capacity least-recently-used cache, safe for
// concurrent use. The zero Cache is unusable; create with New.
type Cache[K comparable, V any] struct {
	mu   sync.Mutex
	cap  int
	keys []K // keys[0] is most recently used
	vals []V
}

// New returns a cache holding at most capacity entries.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		capacity = 1
	}
	return &Cache[K, V]{cap: capacity}
}

// Get returns the value cached under k, marking it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, key := range c.keys {
		if key == k {
			c.touch(i)
			return c.vals[0], true
		}
	}
	var zero V
	return zero, false
}

// Put caches v under k, evicting the least recently used entry when the
// cache is full. An existing entry for k is replaced.
func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, key := range c.keys {
		if key == k {
			c.touch(i)
			c.vals[0] = v
			return
		}
	}
	if len(c.keys) >= c.cap {
		last := len(c.keys) - 1
		c.keys = c.keys[:last]
		c.vals = c.vals[:last]
	}
	var zk K
	var zv V
	c.keys = append(c.keys, zk)
	c.vals = append(c.vals, zv)
	copy(c.keys[1:], c.keys)
	copy(c.vals[1:], c.vals)
	c.keys[0] = k
	c.vals[0] = v
}

// touch moves entry i to the front. Caller holds the lock.
func (c *Cache[K, V]) touch(i int) {
	if i == 0 {
		return
	}
	k, v := c.keys[i], c.vals[i]
	copy(c.keys[1:i+1], c.keys[:i])
	copy(c.vals[1:i+1], c.vals[:i])
	c.keys[0], c.vals[0] = k, v
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.keys)
}

// Purge empties the cache.
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.keys = c.keys[:0]
	c.vals = c.vals[:0]
}
