package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicGetPut(t *testing.T) {
	c := New[int, string](2)
	if _, ok := c.Get(1); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put(1, "a")
	c.Put(2, "b")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q,%v", v, ok)
	}
	// 1 is now most recent; inserting 3 evicts 2.
	c.Put(3, "c")
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) after eviction = %q,%v", v, ok)
	}
	if v, ok := c.Get(3); !ok || v != "c" {
		t.Fatalf("Get(3) = %q,%v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestPutReplaces(t *testing.T) {
	c := New[string, int](4)
	c.Put("k", 1)
	c.Put("k", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("k"); v != 2 {
		t.Fatalf("Get = %d, want 2", v)
	}
}

func TestPurge(t *testing.T) {
	c := New[int, int](4)
	c.Put(1, 1)
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d", c.Len())
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("Get after Purge hit")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int, int](8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Put(i%16, w)
				c.Get((i + w) % 16)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("Len %d exceeds capacity", c.Len())
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	c := New[int, int](0)
	c.Put(1, 1)
	if v, ok := c.Get(1); !ok || v != 1 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	c.Put(2, 2)
	if _, ok := c.Get(1); ok {
		t.Fatal("capacity-1 cache kept two entries")
	}
}

func TestEvictionOrderIsLRU(t *testing.T) {
	c := New[int, string](3)
	for i := 1; i <= 3; i++ {
		c.Put(i, fmt.Sprint(i))
	}
	c.Get(1) // order: 1,3,2
	c.Put(4, "4")
	if _, ok := c.Get(2); ok {
		t.Fatal("2 was most stale and should have been evicted")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("key %d missing", k)
		}
	}
}
