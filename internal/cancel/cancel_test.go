package cancel

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilTokenIsDisabled(t *testing.T) {
	var tok *Token
	for i := 0; i < 10; i++ {
		if err := tok.Check(); err != nil {
			t.Fatalf("nil token Check returned %v", err)
		}
	}
	if tok.Checks() != 0 {
		t.Fatalf("nil token reports %d checks", tok.Checks())
	}
}

// TestNilTokenZeroAlloc pins the zero-overhead-when-disabled contract:
// the disabled checkpoint must not allocate, so every inner loop can
// carry one unconditionally (the cancellation analogue of the obs
// nil-recorder guard).
func TestNilTokenZeroAlloc(t *testing.T) {
	var tok *Token
	allocs := testing.AllocsPerRun(1000, func() {
		if err := tok.Check(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled checkpoint allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestFromContextReturnsNilForUncancellable(t *testing.T) {
	if tok := FromContext(context.Background()); tok != nil {
		t.Fatalf("background context yielded a live token %v", tok)
	}
	if tok := FromContext(nil); tok != nil { //nolint:staticcheck // nil ctx is the documented disabled case
		t.Fatal("nil context yielded a live token")
	}
}

func TestContextCancellationMapsToErrCancelled(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	tok := FromContext(ctx)
	if tok == nil {
		t.Fatal("cancellable context yielded nil token")
	}
	if err := tok.Check(); err != nil {
		t.Fatalf("pre-cancel Check: %v", err)
	}
	cancelFn()
	err := tok.Check()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("post-cancel Check = %v, want ErrCancelled", err)
	}
	if !Is(err) {
		t.Fatalf("Is(%v) = false", err)
	}
}

func TestContextDeadlineMapsToErrBudgetExceeded(t *testing.T) {
	ctx, cancelFn := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelFn()
	err := FromContext(ctx).Check()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("expired-deadline Check = %v, want ErrBudgetExceeded", err)
	}
}

func TestTripFiresAfterExactBudget(t *testing.T) {
	tr := NewTrip(3)
	tok := FromContext(WithTrip(context.Background(), tr))
	if tok == nil {
		t.Fatal("trip-bearing context yielded nil token")
	}
	for i := 0; i < 3; i++ {
		if err := tok.Check(); err != nil {
			t.Fatalf("check %d tripped early: %v", i, err)
		}
	}
	if err := tok.Check(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("check 4 = %v, want ErrBudgetExceeded", err)
	}
	if got := tr.Checks(); got != 4 {
		t.Fatalf("trip observed %d checks, want 4", got)
	}
}

func TestTripCustomError(t *testing.T) {
	tr := &Trip{After: 0, Err: ErrCancelled}
	tok := FromContext(WithTrip(context.Background(), tr))
	if err := tok.Check(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("custom trip error = %v, want ErrCancelled", err)
	}
}

func TestTripNeverFiresWhenNegative(t *testing.T) {
	tr := NewTrip(-1)
	tok := FromContext(WithTrip(context.Background(), tr))
	for i := 0; i < 100; i++ {
		if err := tok.Check(); err != nil {
			t.Fatalf("counting-mode trip fired: %v", err)
		}
	}
	if tr.Checks() != 100 {
		t.Fatalf("counting-mode trip observed %d checks, want 100", tr.Checks())
	}
}

// TestConcurrentChecks exercises the token from many goroutines the way
// a worker pool does; run under -race this pins the atomics-only
// contract.
func TestConcurrentChecks(t *testing.T) {
	tr := NewTrip(500)
	tok := FromContext(WithTrip(context.Background(), tr))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := tok.Check(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("concurrent check error %v", err)
		}
	}
	if tok.Checks() < 500 {
		t.Fatalf("token observed %d checks, want >= 500", tok.Checks())
	}
}
