// Package cancel is the solver-wide cancellation seam: a nil-safe
// checkpoint token that every pipeline stage (DTS construction, the
// auxiliary graph, the Steiner solver, the NLP allocators, the worker
// pools) polls at phase boundaries and bounded-iteration loop guards.
//
// Three contracts the solvers rely on (see DESIGN.md "Cancellation &
// degradation"):
//
//  1. Zero overhead when disabled — the nil *Token is the disabled
//     default. Check on a nil token is an allocation-free no-op, so hot
//     paths carry checkpoints unconditionally, exactly like the nil
//     *obs.Recorder convention.
//  2. Result invariance — a checkpoint never changes a computation that
//     runs to completion. A solve that is not cancelled produces a
//     byte-identical result with or without a token attached.
//  3. Typed taxonomy — a tripped checkpoint surfaces as exactly one of
//     ErrBudgetExceeded (a deadline/budget ran out) or ErrCancelled
//     (the caller revoked the request), matchable with errors.Is through
//     every wrapping layer.
//
// The deterministic fault-injection seam used by the degradation tests
// rides on the same plumbing: a Trip attached to the context fires after
// a fixed number of checkpoint observations, independent of wall clock,
// so tests can cancel "at the k-th checkpoint" reproducibly.
package cancel

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrCancelled reports that the caller revoked the solve (context
// cancellation). The solve returned promptly without a result.
var ErrCancelled = errors.New("solve cancelled")

// ErrBudgetExceeded reports that a time budget or deadline expired while
// the solve was still running. The solve returned promptly without a
// result; a degradation ladder may fall to a cheaper algorithm.
var ErrBudgetExceeded = errors.New("solve budget exceeded")

// Is reports whether err is (or wraps) one of the two cancellation
// errors. Stages use it to tell "the checkpoint tripped" apart from a
// genuine solver failure.
func Is(err error) bool {
	return errors.Is(err, ErrCancelled) || errors.Is(err, ErrBudgetExceeded)
}

// Trip is the deterministic fault-injection seam: a checkpoint budget in
// units of observed checks rather than wall time. Attach one to a
// context with WithTrip; every token derived from that context counts
// its checks against the trip and fails with Err once more than After
// checks have been observed. After < 0 never fires (pure counting mode,
// used to measure a solve's checkpoint total). The zero Err defaults to
// ErrBudgetExceeded.
//
// One Trip may be shared across several solves; the counter accumulates,
// which is exactly what the checkpoint-sweep tests need.
type Trip struct {
	After int64
	Err   error
	count atomic.Int64
}

// NewTrip returns a trip that fires ErrBudgetExceeded after `after`
// checkpoint observations (after < 0: never, counting only).
func NewTrip(after int64) *Trip { return &Trip{After: after} }

// Checks returns the number of checkpoint observations so far.
func (tr *Trip) Checks() int64 { return tr.count.Load() }

// observe counts one check and reports the injected error once the
// budget is exhausted.
func (tr *Trip) observe() error {
	n := tr.count.Add(1)
	if tr.After >= 0 && n > tr.After {
		if tr.Err != nil {
			return tr.Err
		}
		return ErrBudgetExceeded
	}
	return nil
}

type tripKey struct{}

// WithTrip attaches a deterministic trip to the context. Tokens derived
// from the returned context via FromContext observe the trip on every
// Check. A nil ctx is treated as context.Background(), matching the
// package's nil-is-disabled convention (FromContext(nil) is legal, so
// WithTrip(nil, tr) must be too).
func WithTrip(ctx context.Context, tr *Trip) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, tripKey{}, tr)
}

// Token is one solve's cancellation handle. The nil Token is the
// disabled default: Check no-ops and returns nil. Tokens are safe for
// concurrent use by worker pools.
type Token struct {
	ctx    context.Context // may be nil (trip-only token)
	trip   *Trip           // may be nil
	checks atomic.Int64
}

// FromContext derives the solve's token from a context. It returns nil
// — the disabled, zero-overhead token — when the context can never be
// cancelled and carries no trip, so the uncancellable common case stays
// on the exact pre-cancellation code path.
func FromContext(ctx context.Context) *Token {
	if ctx == nil {
		return nil
	}
	trip, _ := ctx.Value(tripKey{}).(*Trip)
	if trip == nil && ctx.Done() == nil {
		return nil
	}
	return &Token{ctx: ctx, trip: trip}
}

// Check is the checkpoint: stages call it at phase boundaries and once
// per outer-loop iteration. It returns nil to continue, ErrCancelled /
// ErrBudgetExceeded (possibly via an injected trip) to abort. Nil-safe
// and allocation-free on the nil token.
func (t *Token) Check() error {
	if t == nil {
		return nil
	}
	t.checks.Add(1)
	if t.trip != nil {
		if err := t.trip.observe(); err != nil {
			return err
		}
	}
	if t.ctx != nil {
		if err := t.ctx.Err(); err != nil {
			return mapContextErr(err)
		}
	}
	return nil
}

// Checks returns how many checkpoints this token has observed (0 on
// nil). The degradation orchestrator records it as the obs counter
// cancel.checks.
func (t *Token) Checks() int64 {
	if t == nil {
		return 0
	}
	return t.checks.Load()
}

// mapContextErr converts the context package's sentinels into the solve
// error taxonomy.
func mapContextErr(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ErrBudgetExceeded
	case errors.Is(err, context.Canceled):
		return ErrCancelled
	}
	return err
}
