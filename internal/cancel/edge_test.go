package cancel

import (
	"context"
	"errors"
	"testing"
)

// TestWithTripNilContext covers the nil-ctx path: WithTrip(nil, tr)
// must behave exactly like WithTrip(context.Background(), tr) instead
// of panicking inside context.WithValue.
func TestWithTripNilContext(t *testing.T) {
	tr := NewTrip(1)
	ctx := WithTrip(nil, tr)
	if ctx == nil {
		t.Fatal("WithTrip(nil, tr) returned nil context")
	}
	tok := FromContext(ctx)
	if tok == nil {
		t.Fatal("FromContext lost the trip attached to a nil parent context")
	}
	if err := tok.Check(); err != nil {
		t.Fatalf("first Check: %v, want nil (budget is 1)", err)
	}
	if err := tok.Check(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("second Check: %v, want ErrBudgetExceeded", err)
	}
	if got := tr.Checks(); got != 2 {
		t.Errorf("trip observed %d checks, want 2", got)
	}
}

// TestZeroBudgetTripFiresOnFirstCheck pins the off-by-one contract:
// After == 0 means "no checkpoints allowed", so the very first Check
// trips.
func TestZeroBudgetTripFiresOnFirstCheck(t *testing.T) {
	tok := FromContext(WithTrip(context.Background(), NewTrip(0)))
	if tok == nil {
		t.Fatal("FromContext returned nil for a trip-carrying context")
	}
	if err := tok.Check(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Check on zero-budget trip: %v, want ErrBudgetExceeded", err)
	}
	if got := tok.Checks(); got != 1 {
		t.Errorf("token observed %d checks, want 1 (the tripped check still counts)", got)
	}
}

// TestZeroBudgetTripKeepsFiring: a tripped budget stays tripped — every
// later checkpoint fails too, so a solver that swallows one error
// cannot sneak extra work in.
func TestZeroBudgetTripKeepsFiring(t *testing.T) {
	tok := FromContext(WithTrip(context.Background(), NewTrip(0)))
	for i := 0; i < 3; i++ {
		if err := tok.Check(); !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("Check %d: %v, want ErrBudgetExceeded", i, err)
		}
	}
}

// TestWithTripNilContextCounting: the counting-only mode (After < 0)
// rides the same nil-ctx path.
func TestWithTripNilContextCounting(t *testing.T) {
	tr := NewTrip(-1)
	tok := FromContext(WithTrip(nil, tr))
	for i := 0; i < 5; i++ {
		if err := tok.Check(); err != nil {
			t.Fatalf("counting-mode Check %d: %v, want nil", i, err)
		}
	}
	if got := tr.Checks(); got != 5 {
		t.Errorf("counting trip observed %d checks, want 5", got)
	}
}
