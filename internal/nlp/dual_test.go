package nlp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/channel"
)

func TestDualSingleHopMatchesMinCost(t *testing.T) {
	ed := channel.Rayleigh{Beta: 3}
	p := NewProblem(1, 0, math.Inf(1))
	p.AddConstraint(0.01, Term{0, ed})
	w, err := SolveDual(p, DualOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := ed.MinCost(0.01)
	if math.Abs(w[0]-want)/want > 1e-6 {
		t.Errorf("w = %g, want %g", w[0], want)
	}
}

func TestDualFeasibleAndNotWorseThanGreedy(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		p := randomProblem(r, 2+r.Intn(5), 1+r.Intn(8))
		wd, errD := SolveDual(p, DualOptions{})
		wg, errG := SolveGreedy(p)
		if (errD == nil) != (errG == nil) {
			t.Fatalf("trial %d: solvers disagree: %v vs %v", trial, errD, errG)
		}
		if errD != nil {
			continue
		}
		if !p.Feasible(wd) {
			t.Fatalf("trial %d: dual result infeasible", trial)
		}
		// dual keeps the greedy solution as fallback, so it never loses
		if p.Cost(wd) > p.Cost(wg)*(1+1e-9) {
			t.Errorf("trial %d: dual %g worse than greedy %g", trial, p.Cost(wd), p.Cost(wg))
		}
	}
}

func TestDualInfeasible(t *testing.T) {
	ed := channel.Rayleigh{Beta: 100}
	p := NewProblem(1, 0, ed.MinCost(0.01)/2)
	p.AddConstraint(0.01, Term{0, ed})
	if _, err := SolveDual(p, DualOptions{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestDualSharedVariableSplitsLoad(t *testing.T) {
	// One variable serving two constraints jointly with a second
	// variable: the dual should find a feasible split at least as cheap
	// as per-constraint greedy.
	near := channel.Rayleigh{Beta: 1}
	far := channel.Rayleigh{Beta: 6}
	p := NewProblem(2, 0, math.Inf(1))
	p.AddConstraint(0.01, Term{0, near}, Term{1, far})
	p.AddConstraint(0.01, Term{0, far}, Term{1, near})
	w, err := SolveDual(p, DualOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(w) {
		t.Fatal("infeasible")
	}
}

func TestRepairFromArbitraryPoint(t *testing.T) {
	ed := channel.Rayleigh{Beta: 2}
	p := NewProblem(2, 0, math.Inf(1))
	p.AddConstraint(0.02, Term{0, ed}, Term{1, ed})
	w := []float64{0, 0}
	if !repair(p, w) {
		t.Fatal("repair failed on feasible problem")
	}
	if !p.Feasible(w) {
		t.Errorf("repaired point infeasible: %v", w)
	}
	// repair of an infeasible box
	p2 := NewProblem(1, 0, ed.MinCost(0.01)/10)
	p2.AddConstraint(0.01, Term{0, ed})
	w2 := []float64{0}
	if repair(p2, w2) {
		t.Error("repair should fail when the box is too small")
	}
}

func TestQuickDualAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomProblem(r, 2+r.Intn(4), 1+r.Intn(6))
		w, err := SolveDual(p, DualOptions{Iters: 20})
		return err == nil && p.Feasible(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
