package nlp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/channel"
)

func TestNewProblemPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewProblem(-1, 0, 1) },
		func() { NewProblem(2, -1, 1) },
		func() { NewProblem(2, 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAddConstraintPanics(t *testing.T) {
	p := NewProblem(1, 0, 10)
	for _, f := range []func(){
		func() { p.AddConstraint(0, Term{0, channel.Rayleigh{Beta: 1}}) },
		func() { p.AddConstraint(1, Term{0, channel.Rayleigh{Beta: 1}}) },
		func() { p.AddConstraint(0.5, Term{3, channel.Rayleigh{Beta: 1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSingleHopMatchesMinCost(t *testing.T) {
	// one var, one constraint: w must equal ED.MinCost(eps)
	ed := channel.Rayleigh{Beta: 3}
	p := NewProblem(1, 0, math.Inf(1))
	p.AddConstraint(0.01, Term{0, ed})
	w, err := SolveGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	want := ed.MinCost(0.01)
	if math.Abs(w[0]-want)/want > 1e-6 {
		t.Errorf("w = %g, want MinCost = %g", w[0], want)
	}
}

func TestTwoTransmittersShareLoad(t *testing.T) {
	// two vars both reaching the same node: Π φ <= ε can be met far more
	// cheaply than either var alone meeting ε.
	ed := channel.Rayleigh{Beta: 5}
	p := NewProblem(2, 0, math.Inf(1))
	p.AddConstraint(0.01, Term{0, ed}, Term{1, ed})
	w, err := SolveGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(w) {
		t.Fatalf("infeasible result %v", w)
	}
	solo := ed.MinCost(0.01)
	if p.Cost(w) > solo {
		t.Errorf("shared cost %g should not exceed solo cost %g", p.Cost(w), solo)
	}
}

func TestSharedVariableAcrossConstraints(t *testing.T) {
	// var 0 serves two receivers; var 1 serves one of them too.
	near := channel.Rayleigh{Beta: 1}
	far := channel.Rayleigh{Beta: 10}
	p := NewProblem(2, 0, math.Inf(1))
	p.AddConstraint(0.01, Term{0, near})
	p.AddConstraint(0.01, Term{0, far}, Term{1, far})
	w, err := SolveGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible(w) {
		t.Fatalf("infeasible result %v", w)
	}
	// var 0 must at least satisfy its solo constraint
	if w[0] < near.MinCost(0.01)*(1-1e-9) {
		t.Errorf("w0 = %g below solo minimum %g", w[0], near.MinCost(0.01))
	}
}

func TestInfeasibleByWMax(t *testing.T) {
	ed := channel.Rayleigh{Beta: 100}
	need := ed.MinCost(0.01)
	p := NewProblem(1, 0, need/2) // box too small
	p.AddConstraint(0.01, Term{0, ed})
	if _, err := SolveGreedy(p); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestEmptyConstraintInfeasible(t *testing.T) {
	p := NewProblem(1, 0, 10)
	p.AddConstraint(0.5)
	if _, err := SolveGreedy(p); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestNoConstraintsAllMin(t *testing.T) {
	p := NewProblem(3, 2, 10)
	w, err := SolveGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range w {
		if x != 2 {
			t.Errorf("unconstrained vars should sit at WMin, got %v", w)
		}
	}
}

func TestCoordinateDescentNeverBreaksFeasibility(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(r, 5, 8)
		w, err := SolveGreedy(p)
		if err != nil {
			continue
		}
		if !p.Feasible(w) {
			t.Fatalf("greedy produced infeasible w=%v", w)
		}
	}
}

func TestPenaltyAtLeastAsFeasible(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(r, 4, 6)
		wg, errG := SolveGreedy(p)
		wp, errP := SolvePenalty(p, PenaltyOptions{MaxOuter: 4, MaxInner: 100})
		if (errG == nil) != (errP == nil) {
			t.Fatalf("solvers disagree on feasibility: %v vs %v", errG, errP)
		}
		if errG != nil {
			continue
		}
		if !p.Feasible(wp) {
			t.Errorf("penalty result infeasible: %v", wp)
		}
		// penalty starts from greedy, so it never ends worse
		if p.Cost(wp) > p.Cost(wg)*(1+1e-9) {
			t.Errorf("penalty cost %g worse than greedy %g", p.Cost(wp), p.Cost(wg))
		}
	}
}

func TestViolationZeroWhenFeasible(t *testing.T) {
	ed := channel.Rayleigh{Beta: 1}
	p := NewProblem(1, 0, math.Inf(1))
	p.AddConstraint(0.1, Term{0, ed})
	w := []float64{ed.MinCost(0.05)} // over-provisioned
	if v := p.Violation(w); v != 0 {
		t.Errorf("Violation = %g, want 0", v)
	}
	if !p.Feasible(w) {
		t.Error("over-provisioned allocation should be feasible")
	}
}

// randomProblem builds a random broadcast-like allocation instance.
func randomProblem(r *rand.Rand, vars, cons int) *Problem {
	p := NewProblem(vars, 0, math.Inf(1))
	for c := 0; c < cons; c++ {
		nTerms := 1 + r.Intn(3)
		terms := make([]Term, 0, nTerms)
		for k := 0; k < nTerms; k++ {
			terms = append(terms, Term{
				Var: r.Intn(vars),
				ED:  channel.Rayleigh{Beta: 0.5 + r.Float64()*10},
			})
		}
		p.AddConstraint(0.005+r.Float64()*0.05, terms...)
	}
	return p
}

func TestQuickGreedyFeasibleOnRandomInstances(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomProblem(r, 2+r.Intn(6), 1+r.Intn(10))
		w, err := SolveGreedy(p)
		if err != nil {
			return false // unbounded box: must always be feasible
		}
		return p.Feasible(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickGreedyBeatsNaivePerHop(t *testing.T) {
	// The naive allocation gives every variable the cost to satisfy its
	// tightest constraint alone; the greedy+descent solution must never
	// cost more (it can exploit sharing).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomProblem(r, 2+r.Intn(4), 1+r.Intn(6))
		w, err := SolveGreedy(p)
		if err != nil {
			return false
		}
		naive := make([]float64, p.NumVars)
		for _, c := range p.Constraints {
			eps := math.Exp(c.Bound)
			for _, tm := range c.Terms {
				if need := tm.ED.MinCost(eps); need > naive[tm.Var] {
					naive[tm.Var] = need
				}
			}
		}
		if !p.Feasible(naive) {
			return true // naive not even feasible; nothing to compare
		}
		return p.Cost(w) <= p.Cost(naive)*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
