// Package nlp solves the optimal energy allocation problem of §VI-B
// (Eq. 14–17): after broadcast backbone selection fixes the relays R and
// transmission times T, choose the cost vector W minimizing Σ w_k subject
// to, for every node, the product of per-transmission failure
// probabilities staying below the acceptable error rate ε, within the box
// [w_min, w_max].
//
// In log space each constraint becomes Σ_k log φ_k(w_k) <= log ε — a sum
// of monotone non-increasing univariate functions, which the package
// exploits twice: a greedy constraint-fixing pass (raise the single
// cheapest variable until each constraint holds; raising a variable never
// breaks another constraint), then coordinate descent (shrink every
// variable to its minimal feasible value given the others). A
// penalty-based projected-gradient solver is provided as the ablation
// comparator.
package nlp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cancel"
	"repro/internal/channel"
	"repro/internal/obs"
)

// Term is one factor of a product constraint: variable Var transmitting
// through channel ED.
type Term struct {
	Var int
	ED  channel.EDFunction
}

// Constraint requires Σ_k log φ_k(w_k) <= Bound (Bound = log ε).
type Constraint struct {
	Terms []Term
	Bound float64
}

// Problem is an energy allocation instance.
type Problem struct {
	NumVars     int
	WMin, WMax  float64
	Constraints []Constraint
	// Obs counts solver iterations (greedy repairs, descent sweeps,
	// penalty steps). Write-only: allocations are identical with or
	// without it. Nil records nothing.
	Obs *obs.Recorder
	// Cancel is the cancellation checkpoint token, polled once per
	// repair / sweep / gradient step. Nil is the zero-overhead
	// uncancellable path; a completed solve is byte-identical for every
	// value.
	Cancel *cancel.Token
}

// NewProblem creates a problem with n variables in [wmin, wmax].
func NewProblem(n int, wmin, wmax float64) *Problem {
	if n < 0 || wmin < 0 || wmax < wmin {
		panic(fmt.Sprintf("nlp: invalid problem n=%d wmin=%g wmax=%g", n, wmin, wmax))
	}
	return &Problem{NumVars: n, WMin: wmin, WMax: wmax}
}

// AddConstraint appends a product constraint with failure bound eps
// (0 < eps < 1): Π φ_k(w_k) <= eps.
func (p *Problem) AddConstraint(eps float64, terms ...Term) {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("nlp: constraint eps %g outside (0,1)", eps))
	}
	for _, t := range terms {
		if t.Var < 0 || t.Var >= p.NumVars {
			panic(fmt.Sprintf("nlp: term variable %d out of range", t.Var))
		}
	}
	p.Constraints = append(p.Constraints, Constraint{Terms: terms, Bound: math.Log(eps)})
}

// logPhi returns log φ(w), with -Inf for φ = 0.
func logPhi(ed channel.EDFunction, w float64) float64 {
	phi := ed.FailureProb(w)
	if phi <= 0 {
		return math.Inf(-1)
	}
	return math.Log(phi)
}

// lhs evaluates Σ log φ of a constraint at w.
func (c Constraint) lhs(w []float64) float64 {
	s := 0.0
	for _, t := range c.Terms {
		s += logPhi(t.ED, w[t.Var])
		if math.IsInf(s, -1) {
			return s
		}
	}
	return s
}

// Residual returns lhs - Bound (> 0 means violated).
func (c Constraint) Residual(w []float64) float64 { return c.lhs(w) - c.Bound }

// feasTol absorbs floating-point slack in feasibility checks.
const feasTol = 1e-9

// Feasible reports whether w satisfies every constraint and the box.
func (p *Problem) Feasible(w []float64) bool {
	for _, x := range w {
		if x < p.WMin-feasTol || x > p.WMax+feasTol {
			return false
		}
	}
	for _, c := range p.Constraints {
		if c.Residual(w) > feasTol {
			return false
		}
	}
	return true
}

// Violation returns the maximum constraint residual (0 when feasible).
func (p *Problem) Violation(w []float64) float64 {
	worst := 0.0
	for _, c := range p.Constraints {
		if r := c.Residual(w); r > worst {
			worst = r
		}
	}
	return worst
}

// Cost returns Σ w_k.
func (p *Problem) Cost(w []float64) float64 {
	s := 0.0
	for _, x := range w {
		s += x
	}
	return s
}

// ErrInfeasible is returned when no allocation within the box satisfies
// all constraints.
var ErrInfeasible = errors.New("nlp: problem infeasible within [wmin, wmax]")

// raiseTo returns the smallest w' >= w such that log φ(w') <= target, or
// +Inf when impossible within wmax.
func (p *Problem) raiseTo(ed channel.EDFunction, w, target float64) float64 {
	if logPhi(ed, w) <= target {
		return w
	}
	if target >= 0 {
		return w // log φ <= 0 always
	}
	epsNeeded := math.Exp(target)
	wNeed := ed.MinCost(epsNeeded)
	if wNeed > p.WMax {
		return math.Inf(1)
	}
	if wNeed < w {
		wNeed = w
	}
	return wNeed
}

// SolveGreedy runs the greedy constraint-fixing pass followed by
// coordinate-descent refinement. It returns a feasible allocation or
// ErrInfeasible.
func SolveGreedy(p *Problem) ([]float64, error) {
	w := make([]float64, p.NumVars)
	for i := range w {
		w[i] = p.WMin
	}
	// Greedy fixing: handle the most violated constraint by raising the
	// single variable that repairs it most cheaply. Raising a variable
	// only decreases every log φ, so repaired constraints stay repaired;
	// the loop terminates after at most len(Constraints) repairs.
	for iter := 0; iter <= len(p.Constraints); iter++ {
		if err := p.Cancel.Check(); err != nil {
			return nil, fmt.Errorf("nlp: greedy fixing: %w", err)
		}
		worstIdx, worstRes := -1, feasTol
		for ci, c := range p.Constraints {
			if r := c.Residual(w); r > worstRes {
				worstRes = r
				worstIdx = ci
			}
		}
		if worstIdx == -1 {
			break
		}
		c := p.Constraints[worstIdx]
		if len(c.Terms) == 0 {
			return nil, fmt.Errorf("%w: constraint %d has no terms", ErrInfeasible, worstIdx)
		}
		bestVar, bestNew, bestDelta := -1, 0.0, math.Inf(1)
		for _, t := range c.Terms {
			// fix the whole residual with this variable alone
			target := logPhi(t.ED, w[t.Var]) - c.Residual(w)
			nw := p.raiseTo(t.ED, w[t.Var], target)
			if delta := nw - w[t.Var]; delta < bestDelta {
				bestDelta = delta
				bestVar = t.Var
				bestNew = nw
			}
		}
		if bestVar == -1 || math.IsInf(bestNew, 1) {
			return nil, ErrInfeasible
		}
		w[bestVar] = bestNew
		p.Obs.Counter("nlp.greedy.repairs").Inc()
	}
	if !p.Feasible(w) {
		return nil, ErrInfeasible
	}
	if err := CoordinateDescent(p, w, 50); err != nil {
		return nil, err
	}
	return w, nil
}

// CoordinateDescent shrinks each variable in turn to the minimum value
// keeping every constraint satisfied given the other variables, repeating
// up to maxSweeps or until a sweep changes nothing. w must be feasible on
// entry and stays feasible throughout. The only error is a tripped
// cancellation checkpoint; on error w is feasible but unpolished and must
// be discarded for determinism.
func CoordinateDescent(p *Problem, w []float64, maxSweeps int) error {
	// Index constraints by variable.
	byVar := make([][]int, p.NumVars)
	for ci, c := range p.Constraints {
		for _, t := range c.Terms {
			byVar[t.Var] = append(byVar[t.Var], ci)
		}
	}
	sweeps := p.Obs.Counter("nlp.descent.sweeps")
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if err := p.Cancel.Check(); err != nil {
			return fmt.Errorf("nlp: coordinate descent: %w", err)
		}
		sweeps.Inc()
		changed := false
		for v := 0; v < p.NumVars; v++ {
			need := p.WMin
			for _, ci := range byVar[v] {
				c := p.Constraints[ci]
				// slack available to variable v in this constraint
				others := 0.0
				var eds []channel.EDFunction
				for _, t := range c.Terms {
					if t.Var == v {
						eds = append(eds, t.ED)
						continue
					}
					others += logPhi(t.ED, w[t.Var])
				}
				// v may appear multiple times in one constraint (a relay
				// reaching the same node at different times) — rare;
				// handle by requiring each appearance to carry an equal
				// share of the remaining budget.
				if len(eds) == 0 {
					continue
				}
				target := (c.Bound - others) / float64(len(eds))
				for _, ed := range eds {
					nw := p.raiseTo(ed, p.WMin, target)
					if nw > need {
						need = nw
					}
				}
			}
			if need < w[v]-1e-15 {
				w[v] = need
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return nil
}

// PenaltyOptions tunes SolvePenalty.
type PenaltyOptions struct {
	// MaxOuter is the number of penalty escalations (default 12).
	MaxOuter int
	// MaxInner is the gradient steps per escalation (default 400).
	MaxInner int
	// Mu0 is the initial penalty weight (default 1).
	Mu0 float64
}

func (o *PenaltyOptions) fill() {
	if o.MaxOuter == 0 {
		o.MaxOuter = 12
	}
	if o.MaxInner == 0 {
		o.MaxInner = 400
	}
	if o.Mu0 == 0 {
		o.Mu0 = 1
	}
}

// SolvePenalty minimizes Σw + μ·Σ max(0, residual)² by projected
// gradient descent with escalating μ, starting from the greedy solution
// when available (otherwise from w_min). It returns a feasible allocation
// or ErrInfeasible.
func SolvePenalty(p *Problem, opts PenaltyOptions) ([]float64, error) {
	opts.fill()
	w, err := SolveGreedy(p)
	if err != nil {
		return nil, err
	}
	best := append([]float64(nil), w...)
	bestCost := p.Cost(best)

	scale := bestCost / float64(len(w)+1)
	if scale <= 0 {
		scale = 1
	}
	mu := opts.Mu0
	grad := make([]float64, p.NumVars)
	outerSteps := p.Obs.Counter("nlp.penalty.outer")
	innerSteps := p.Obs.Counter("nlp.penalty.inner")
	for outer := 0; outer < opts.MaxOuter; outer++ {
		outerSteps.Inc()
		step := scale * 0.1
		for inner := 0; inner < opts.MaxInner; inner++ {
			if err := p.Cancel.Check(); err != nil {
				return nil, fmt.Errorf("nlp: penalty descent: %w", err)
			}
			innerSteps.Inc()
			objGrad(p, w, mu, grad, scale)
			moved := false
			for v := range w {
				nw := w[v] - step*grad[v]
				if nw < p.WMin {
					nw = p.WMin
				}
				if nw > p.WMax {
					nw = p.WMax
				}
				//tmedbvet:ignore floateq exact fixed-point test: descent must stop only when the clamped iterate is bitwise stationary
				if nw != w[v] {
					moved = true
				}
				w[v] = nw
			}
			if !moved {
				break
			}
			if inner%50 == 49 {
				step *= 0.5
			}
		}
		if p.Feasible(w) && p.Cost(w) < bestCost {
			bestCost = p.Cost(w)
			copy(best, w)
		}
		mu *= 4
	}
	if !p.Feasible(best) {
		return nil, ErrInfeasible
	}
	return best, nil
}

// objGrad fills grad with the numeric gradient of the penalized
// objective Σw/scale + μ·Σ max(0,res)².
func objGrad(p *Problem, w []float64, mu float64, grad []float64, scale float64) {
	h := scale * 1e-6
	if h <= 0 {
		h = 1e-12
	}
	base := penalized(p, w, mu, scale)
	for v := range w {
		old := w[v]
		w[v] = old + h
		grad[v] = (penalized(p, w, mu, scale) - base) / h
		w[v] = old
	}
}

func penalized(p *Problem, w []float64, mu, scale float64) float64 {
	obj := p.Cost(w) / scale
	for _, c := range p.Constraints {
		if r := c.Residual(w); r > 0 {
			obj += mu * r * r
		}
	}
	return obj
}
