package nlp

import (
	"fmt"
	"math"

	"repro/internal/channel"
)

// SolveDual solves the energy allocation by Lagrangian dual
// decomposition. The Lagrangian of Eq. 14–17,
//
//	L(w, λ) = Σ_k w_k + Σ_j λ_j (Σ_{k∈K_j} log φ_k(w_k) − log ε)
//
// separates per variable: each w_k minimizes
// w_k + Σ_{j∋k} λ_j·log φ_kj(w_k) independently (a 1-D search), and the
// multipliers rise by projected subgradient on the constraint residuals.
// The problem is not convex, so the dual iterates are used as *proposals*:
// each is repaired to feasibility by the greedy single-variable raise and
// polished by coordinate descent, and the cheapest feasible repair wins.
// The result is always feasible; on instances where the duality gap is
// small it matches SolveGreedy, and occasionally beats it by splitting
// load across transmissions serving several constraints at once.
type DualOptions struct {
	// Iters is the number of subgradient iterations (default 60).
	Iters int
	// Step0 is the initial subgradient step (default 1).
	Step0 float64
}

func (o *DualOptions) fill() {
	if o.Iters == 0 {
		o.Iters = 60
	}
	if o.Step0 == 0 {
		o.Step0 = 1
	}
}

// SolveDual returns a feasible allocation or ErrInfeasible.
func SolveDual(p *Problem, opts DualOptions) ([]float64, error) {
	opts.fill()
	// Feasibility reference (and fallback): the greedy solution.
	best, err := SolveGreedy(p)
	if err != nil {
		return nil, err
	}
	bestCost := p.Cost(best)

	byVar := make([][]varTerm, p.NumVars)
	for ci, c := range p.Constraints {
		for _, t := range c.Terms {
			byVar[t.Var] = append(byVar[t.Var], varTerm{ci, t.ED})
		}
	}
	// search cap per variable: beyond the strictest single-constraint
	// requirement the variable never needs to grow
	cap_ := make([]float64, p.NumVars)
	for v := range cap_ {
		need := p.WMin
		for _, vt := range byVar[v] {
			eps := math.Exp(p.Constraints[vt.cons].Bound)
			if w := vt.ed.MinCost(eps); w > need {
				need = w
			}
		}
		if need > p.WMax {
			need = p.WMax
		}
		cap_[v] = need
	}

	lambda := make([]float64, len(p.Constraints))
	w := make([]float64, p.NumVars)
	for iter := 0; iter < opts.Iters; iter++ {
		if err := p.Cancel.Check(); err != nil {
			return nil, fmt.Errorf("nlp: dual ascent: %w", err)
		}
		// per-variable 1-D minimization of w + Σ λ_j log φ(w)
		for v := 0; v < p.NumVars; v++ {
			w[v] = minimizeVar(p, byVar[v], lambda, cap_[v])
		}
		// repair to feasibility, polish, track the best
		cand := append([]float64(nil), w...)
		if repair(p, cand) {
			if err := CoordinateDescent(p, cand, 10); err != nil {
				return nil, err
			}
			if c := p.Cost(cand); c < bestCost {
				bestCost = c
				copy(best, cand)
			}
		}
		// subgradient ascent on the residuals
		step := opts.Step0 / math.Sqrt(float64(iter+1))
		for ci, c := range p.Constraints {
			g := c.Residual(w)
			if math.IsInf(g, -1) {
				g = -1 // saturated constraint: gently decrease λ
			}
			lambda[ci] += step * g
			if lambda[ci] < 0 {
				lambda[ci] = 0
			}
		}
	}
	if !p.Feasible(best) {
		return nil, ErrInfeasible
	}
	return best, nil
}

// varTerm is one appearance of a variable in a constraint.
type varTerm struct {
	cons int
	ed   channel.EDFunction
}

// minimizeVar minimizes f(x) = x + Σ λ_j·log φ_j(x) over [WMin, cap] by
// golden-section search on a log-ish bracket. f is continuous; the
// search samples densely enough that local dips are found in practice,
// and exactness is unnecessary (iterates are proposals).
func minimizeVar(p *Problem, terms []varTerm, lambda []float64, cap_ float64) float64 {
	if len(terms) == 0 || cap_ <= p.WMin {
		return p.WMin
	}
	f := func(x float64) float64 {
		v := x
		for _, t := range terms {
			if lambda[t.cons] == 0 {
				continue
			}
			lp := logPhi(t.ed, x)
			if math.IsInf(lp, -1) {
				return math.Inf(-1) // a free ride: deterministic success
			}
			v += lambda[t.cons] * lp
		}
		return v
	}
	// coarse scan then golden refinement around the best sample
	const samples = 24
	bestX, bestF := p.WMin, f(p.WMin)
	lo := p.WMin
	if lo == 0 {
		lo = cap_ / 1e6
	}
	ratio := math.Pow(cap_/lo, 1.0/(samples-1))
	x := lo
	for i := 0; i < samples; i++ {
		if fx := f(x); fx < bestF {
			bestF = fx
			bestX = x
		}
		x *= ratio
	}
	a := bestX / ratio
	b := bestX * ratio
	if a < p.WMin {
		a = p.WMin
	}
	if b > cap_ {
		b = cap_
	}
	const phi = 0.6180339887498949
	for i := 0; i < 40 && b-a > 1e-12*(1+b); i++ {
		x1 := b - phi*(b-a)
		x2 := a + phi*(b-a)
		if f(x1) <= f(x2) {
			b = x2
		} else {
			a = x1
		}
	}
	mid := (a + b) / 2
	if f(mid) < bestF {
		return mid
	}
	return bestX
}

// repair raises single variables until every constraint holds (the
// greedy fixing pass applied to an arbitrary starting point). Returns
// false if the box cannot absorb the repair.
func repair(p *Problem, w []float64) bool {
	for guard := 0; guard <= len(p.Constraints); guard++ {
		worstIdx, worstRes := -1, feasTol
		for ci, c := range p.Constraints {
			if r := c.Residual(w); r > worstRes {
				worstRes = r
				worstIdx = ci
			}
		}
		if worstIdx == -1 {
			return true
		}
		c := p.Constraints[worstIdx]
		bestVar, bestNew, bestDelta := -1, 0.0, math.Inf(1)
		for _, t := range c.Terms {
			target := logPhi(t.ED, w[t.Var]) - c.Residual(w)
			nw := p.raiseTo(t.ED, w[t.Var], target)
			if delta := nw - w[t.Var]; delta < bestDelta {
				bestDelta = delta
				bestVar = t.Var
				bestNew = nw
			}
		}
		if bestVar == -1 || math.IsInf(bestNew, 1) {
			return false
		}
		w[bestVar] = bestNew
	}
	return p.Feasible(w)
}
