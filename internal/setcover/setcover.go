// Package setcover implements the Set Cover machinery behind the
// hardness results of §IV: the classic greedy ln(n)-approximation, and
// the Theorem 4.1 reduction that turns any Set Cover instance into a
// TMEDB instance whose optimal schedules correspond to optimal covers.
//
// The gadget: a source node, one "set" node per set, one "element" node
// per universe element.
//
//   - Phase 1 [0, 1): the source is adjacent to every set node at unit
//     distance, so one broadcast informs all of them at a fixed cost.
//   - Phase 2 [2, 3): set node i is adjacent (unit distance) to exactly
//     the element nodes of S_i. Informing all elements requires choosing
//     transmitting set nodes whose sets cover the universe, each paying
//     the same unit cost — so minimizing energy minimizes the number of
//     chosen sets.
//
// The package is used by the tests to cross-check the EEDCB pipeline
// against greedy set cover on reduction instances, demonstrating the
// reduction experimentally.
package setcover

import (
	"fmt"

	"repro/internal/interval"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Instance is a Set Cover instance over the universe {0, ..., U-1}.
type Instance struct {
	UniverseSize int
	Sets         [][]int
}

// Validate checks element ranges and that the union covers the universe.
func (in Instance) Validate() error {
	if in.UniverseSize <= 0 {
		return fmt.Errorf("setcover: empty universe")
	}
	covered := make([]bool, in.UniverseSize)
	for si, s := range in.Sets {
		for _, e := range s {
			if e < 0 || e >= in.UniverseSize {
				return fmt.Errorf("setcover: set %d has element %d outside universe [0,%d)", si, e, in.UniverseSize)
			}
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			return fmt.Errorf("setcover: element %d not coverable", e)
		}
	}
	return nil
}

// Greedy runs the classic ln(n)-approximation: repeatedly pick the set
// covering the most uncovered elements. It returns the chosen set
// indices in pick order.
func (in Instance) Greedy() ([]int, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	covered := make([]bool, in.UniverseSize)
	remaining := in.UniverseSize
	var picks []int
	for remaining > 0 {
		best, bestGain := -1, 0
		for si, s := range in.Sets {
			gain := 0
			for _, e := range s {
				if !covered[e] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = si, gain
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("setcover: stuck with %d uncovered elements", remaining)
		}
		picks = append(picks, best)
		for _, e := range in.Sets[best] {
			if !covered[e] {
				covered[e] = true
				remaining--
			}
		}
	}
	return picks, nil
}

// Covers reports whether the chosen set indices cover the universe.
func (in Instance) Covers(picks []int) bool {
	covered := make([]bool, in.UniverseSize)
	for _, si := range picks {
		if si < 0 || si >= len(in.Sets) {
			return false
		}
		for _, e := range in.Sets[si] {
			covered[e] = true
		}
	}
	for _, ok := range covered {
		if !ok {
			return false
		}
	}
	return true
}

// Reduction holds the TMEDB instance produced from a Set Cover instance
// plus the node-role mapping needed to read schedules back as covers.
type Reduction struct {
	Instance Instance
	Graph    *tveg.Graph
	Source   tvg.NodeID
	Deadline float64
	// SetNode[i] is the TVEG node standing for set i; ElementNode[e]
	// likewise for universe element e.
	SetNode     []tvg.NodeID
	ElementNode []tvg.NodeID
}

// Reduce builds the Theorem 4.1 gadget for the instance under the given
// parameters (the channel model is static, as in the proof).
func Reduce(in Instance, params tveg.Params) (*Reduction, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	nNodes := 1 + len(in.Sets) + in.UniverseSize
	g := tveg.New(nNodes, interval.Interval{Start: 0, End: 4}, 0, params, tveg.Static)
	r := &Reduction{
		Instance:    in,
		Graph:       g,
		Source:      0,
		Deadline:    4,
		SetNode:     make([]tvg.NodeID, len(in.Sets)),
		ElementNode: make([]tvg.NodeID, in.UniverseSize),
	}
	for i := range in.Sets {
		r.SetNode[i] = tvg.NodeID(1 + i)
	}
	for e := 0; e < in.UniverseSize; e++ {
		r.ElementNode[e] = tvg.NodeID(1 + len(in.Sets) + e)
	}
	// Phase 1: source ↔ set nodes.
	for _, sn := range r.SetNode {
		g.AddContact(r.Source, sn, interval.Interval{Start: 0, End: 1}, 1)
	}
	// Phase 2: set node i ↔ its elements.
	for i, s := range in.Sets {
		for _, e := range s {
			g.AddContact(r.SetNode[i], r.ElementNode[e], interval.Interval{Start: 2, End: 3}, 1)
		}
	}
	return r, nil
}

// UnitCost returns the cost of one unit-distance transmission in the
// gadget (every productive transmission in the reduction costs this).
func (r *Reduction) UnitCost() float64 { return r.Graph.Params.NoiseGamma() }

// CoverFromSchedule extracts the chosen sets from a TMEDB schedule on
// the reduction: the set nodes that transmit during phase 2.
func (r *Reduction) CoverFromSchedule(s schedule.Schedule) []int {
	setOf := make(map[tvg.NodeID]int, len(r.SetNode))
	for i, sn := range r.SetNode {
		setOf[sn] = i
	}
	seen := make(map[int]bool)
	var picks []int
	for _, x := range s {
		if x.T < 2 || x.T >= 3 {
			continue
		}
		if si, ok := setOf[x.Relay]; ok && !seen[si] {
			seen[si] = true
			picks = append(picks, si)
		}
	}
	return picks
}

// ScheduleFromCover builds the canonical feasible schedule for a cover:
// the source broadcasts once in phase 1, each chosen set node once in
// phase 2. Useful as a certificate in both directions of the reduction.
func (r *Reduction) ScheduleFromCover(picks []int) schedule.Schedule {
	unit := r.UnitCost()
	s := schedule.Schedule{{Relay: r.Source, T: 0, W: unit}}
	for _, si := range picks {
		s = append(s, schedule.Transmission{Relay: r.SetNode[si], T: 2, W: unit})
	}
	return s
}
