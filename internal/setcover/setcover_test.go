package setcover

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/schedule"
	"repro/internal/tveg"
)

func smallInstance() Instance {
	return Instance{
		UniverseSize: 5,
		Sets: [][]int{
			{0, 1, 2}, // the big set
			{0, 3},
			{1, 4},
			{3, 4},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := smallInstance().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Instance{UniverseSize: 2, Sets: [][]int{{0}}}
	if bad.Validate() == nil {
		t.Error("uncoverable element should fail validation")
	}
	bad2 := Instance{UniverseSize: 2, Sets: [][]int{{0, 5}}}
	if bad2.Validate() == nil {
		t.Error("out-of-range element should fail validation")
	}
	if (Instance{}).Validate() == nil {
		t.Error("empty universe should fail validation")
	}
}

func TestGreedyCoversAndIsSmall(t *testing.T) {
	in := smallInstance()
	picks, err := in.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if !in.Covers(picks) {
		t.Fatalf("greedy picks %v do not cover", picks)
	}
	// optimum here is 2 ({0,1,2} + {3,4}); greedy finds it
	if len(picks) != 2 {
		t.Errorf("greedy used %d sets, want 2", len(picks))
	}
}

func TestCovers(t *testing.T) {
	in := smallInstance()
	if in.Covers([]int{0}) {
		t.Error("single set should not cover")
	}
	if !in.Covers([]int{0, 3}) {
		t.Error("{0,3} should cover")
	}
	if in.Covers([]int{-1}) || in.Covers([]int{9}) {
		t.Error("invalid indices should not cover")
	}
}

func TestReduceStructure(t *testing.T) {
	in := smallInstance()
	r, err := Reduce(in, tveg.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Graph.N() != 1+4+5 {
		t.Errorf("gadget nodes = %d, want 10", r.Graph.N())
	}
	// source adjacent to every set node in phase 1
	for _, sn := range r.SetNode {
		if !r.Graph.RhoTau(r.Source, sn, 0.5) {
			t.Errorf("source not adjacent to set node %d in phase 1", sn)
		}
	}
	// set 1 = {0,3}: adjacent to element nodes 0 and 3 in phase 2
	if !r.Graph.RhoTau(r.SetNode[1], r.ElementNode[0], 2.5) {
		t.Error("set node 1 not adjacent to element 0")
	}
	if r.Graph.RhoTau(r.SetNode[1], r.ElementNode[1], 2.5) {
		t.Error("set node 1 wrongly adjacent to element 1")
	}
}

func TestScheduleFromCoverFeasible(t *testing.T) {
	in := smallInstance()
	r, err := Reduce(in, tveg.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	picks, _ := in.Greedy()
	s := r.ScheduleFromCover(picks)
	if err := schedule.CheckFeasible(r.Graph, s, r.Source, r.Deadline, math.Inf(1)); err != nil {
		t.Errorf("cover schedule infeasible: %v", err)
	}
	// non-cover schedule must be infeasible
	bad := r.ScheduleFromCover([]int{1})
	if schedule.CheckFeasible(r.Graph, bad, r.Source, r.Deadline, math.Inf(1)) == nil {
		t.Error("non-cover schedule should be infeasible")
	}
}

func TestEEDCBSolvesReduction(t *testing.T) {
	// The experimental side of Theorem 4.1: running the TMEDB solver on
	// the gadget yields a valid cover, no larger than greedy's.
	in := smallInstance()
	r, err := Reduce(in, tveg.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.EEDCB{}.Schedule(r.Graph, r.Source, 0, r.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	picks := r.CoverFromSchedule(sch)
	if !in.Covers(picks) {
		t.Fatalf("EEDCB schedule decodes to non-cover %v (schedule %v)", picks, sch)
	}
	greedyPicks, _ := in.Greedy()
	if len(picks) > len(greedyPicks) {
		t.Errorf("EEDCB cover size %d worse than greedy %d", len(picks), len(greedyPicks))
	}
	// energy accounting: source broadcast + one unit per chosen set
	wantCost := float64(1+len(picks)) * r.UnitCost()
	if math.Abs(sch.TotalCost()-wantCost)/wantCost > 1e-9 {
		t.Errorf("schedule cost %g, want %g", sch.TotalCost(), wantCost)
	}
}

func TestQuickReductionPreservesCovers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := 3 + r.Intn(5)
		nSets := 2 + r.Intn(5)
		in := Instance{UniverseSize: u}
		for s := 0; s < nSets; s++ {
			var set []int
			for e := 0; e < u; e++ {
				if r.Intn(2) == 0 {
					set = append(set, e)
				}
			}
			in.Sets = append(in.Sets, set)
		}
		// ensure coverability
		var all []int
		for e := 0; e < u; e++ {
			all = append(all, e)
		}
		in.Sets = append(in.Sets, all)
		red, err := Reduce(in, tveg.DefaultParams())
		if err != nil {
			return false
		}
		picks, err := in.Greedy()
		if err != nil {
			return false
		}
		s := red.ScheduleFromCover(picks)
		if schedule.CheckFeasible(red.Graph, s, red.Source, red.Deadline, math.Inf(1)) != nil {
			return false
		}
		// decode must give back the same picks
		decoded := red.CoverFromSchedule(s)
		return in.Covers(decoded) && len(decoded) == len(picks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
