package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/schedule"
	"repro/internal/tveg"
)

func fadingPair() (*tveg.Graph, schedule.Schedule) {
	g := tveg.New(2, iv(0, 100), 0, tveg.DefaultParams(), tveg.RayleighFading)
	g.AddContact(0, 1, iv(0, 100), 5)
	w := g.EDAt(0, 1, 10).MinCost(0.4)
	return g, schedule.Schedule{{Relay: 0, T: 10, W: w}}
}

func TestEvaluateParallelMatchesSequentialStatistically(t *testing.T) {
	g, s := fadingPair()
	seq := Evaluate(g, s, 0, 40000, rand.New(rand.NewSource(5)))
	par := EvaluateParallel(g, s, 0, 40000, 5, 4)
	if math.Abs(seq.MeanDelivery-par.MeanDelivery) > 0.01 {
		t.Errorf("parallel delivery %g vs sequential %g", par.MeanDelivery, seq.MeanDelivery)
	}
	if math.Abs(seq.MeanEnergy-par.MeanEnergy)/seq.MeanEnergy > 0.02 {
		t.Errorf("parallel energy %g vs sequential %g", par.MeanEnergy, seq.MeanEnergy)
	}
	if par.Trials != 40000 {
		t.Errorf("Trials = %d, want 40000", par.Trials)
	}
}

func TestEvaluateParallelDeterministic(t *testing.T) {
	g, s := fadingPair()
	a := EvaluateParallel(g, s, 0, 5000, 9, 4)
	b := EvaluateParallel(g, s, 0, 5000, 9, 4)
	if a != b {
		t.Errorf("same seed/workers differ: %+v vs %+v", a, b)
	}
}

func TestEvaluateParallelSingleWorkerEqualsSequential(t *testing.T) {
	g, s := fadingPair()
	a := EvaluateParallel(g, s, 0, 1000, 3, 1)
	b := Evaluate(g, s, 0, 1000, rand.New(rand.NewSource(3)))
	if a != b {
		t.Errorf("workers=1 should match sequential exactly: %+v vs %+v", a, b)
	}
}

func TestEvaluateParallelMoreWorkersThanTrials(t *testing.T) {
	g, s := fadingPair()
	r := EvaluateParallel(g, s, 0, 3, 1, 16)
	if r.Trials != 3 {
		t.Errorf("Trials = %d, want 3", r.Trials)
	}
}

func TestEvaluateParallelDefaultWorkers(t *testing.T) {
	g, s := fadingPair()
	r := EvaluateParallel(g, s, 0, 200, 1, 0)
	if r.Trials != 200 {
		t.Errorf("Trials = %d, want 200", r.Trials)
	}
	if r.MeanDelivery <= 0.5 || r.MeanDelivery > 1 {
		t.Errorf("delivery = %g out of plausible range", r.MeanDelivery)
	}
}

func TestMergeResultsPooledStd(t *testing.T) {
	// two degenerate batches with known pooled statistics
	a := Result{Trials: 2, MeanDelivery: 0.5, StdDelivery: 0, MeanEnergy: 1}
	b := Result{Trials: 2, MeanDelivery: 1.0, StdDelivery: 0, MeanEnergy: 3}
	m := mergeResults([]Result{a, b})
	if m.Trials != 4 || math.Abs(m.MeanDelivery-0.75) > 1e-12 {
		t.Fatalf("merge = %+v", m)
	}
	// samples are {0.5, 0.5, 1, 1}: sample std = sqrt(1/12)
	want := math.Sqrt(1.0 / 12.0)
	if math.Abs(m.StdDelivery-want) > 1e-9 {
		t.Errorf("pooled std = %g, want %g", m.StdDelivery, want)
	}
	if math.Abs(m.MeanEnergy-2) > 1e-12 {
		t.Errorf("pooled energy = %g, want 2", m.MeanEnergy)
	}
}

func TestMergeResultsEmpty(t *testing.T) {
	if m := mergeResults(nil); m.Trials != 0 {
		t.Errorf("merge(nil) = %+v", m)
	}
}

func TestWorkerTrialsSplit(t *testing.T) {
	got := WorkerTrials(10, 3)
	want := []int{4, 3, 3}
	if len(got) != len(want) {
		t.Fatalf("WorkerTrials(10,3) = %v, want %v", got, want)
	}
	sum := 0
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("WorkerTrials(10,3) = %v, want %v", got, want)
		}
		sum += got[i]
	}
	if sum != 10 {
		t.Fatalf("split sums to %d, want 10", sum)
	}
}
