package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

func iv(a, b float64) interval.Interval { return interval.Interval{Start: a, End: b} }

func chain(m tveg.Model) *tveg.Graph {
	g := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), m)
	g.AddContact(0, 1, iv(10, 30), 5)
	g.AddContact(1, 2, iv(20, 50), 8)
	return g
}

func TestEvaluatePanicsOnZeroTrials(t *testing.T) {
	g := chain(tveg.Static)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Evaluate(g, nil, 0, 0, rand.New(rand.NewSource(1)))
}

func TestEvaluateStaticDeterministic(t *testing.T) {
	g := chain(tveg.Static)
	w01 := g.MinCost(0, 1, 10)
	w12 := g.MinCost(1, 2, 20)
	s := schedule.Schedule{{Relay: 0, T: 10, W: w01}, {Relay: 1, T: 20, W: w12}}
	r := Evaluate(g, s, 0, 5, rand.New(rand.NewSource(1)))
	if r.MeanDelivery != 1 {
		t.Errorf("delivery = %g, want 1", r.MeanDelivery)
	}
	if r.StdDelivery != 0 {
		t.Errorf("static delivery should have zero variance, got %g", r.StdDelivery)
	}
	want := (w01 + w12) / g.Params.GammaTh
	if math.Abs(r.MeanEnergy-want) > 1e-12 {
		t.Errorf("energy = %g, want %g", r.MeanEnergy, want)
	}
	if math.Abs(r.PlannedEnergy-want) > 1e-12 {
		t.Errorf("planned = %g, want %g", r.PlannedEnergy, want)
	}
}

func TestEvaluateRelayCannotForwardWithoutPacket(t *testing.T) {
	g := chain(tveg.Static)
	w12 := g.MinCost(1, 2, 20)
	// node 1 transmits but was never informed: nothing happens, no energy
	s := schedule.Schedule{{Relay: 1, T: 20, W: w12}}
	r := Evaluate(g, s, 0, 3, rand.New(rand.NewSource(1)))
	if r.MeanDelivery != 1.0/3 {
		t.Errorf("delivery = %g, want 1/3 (source only)", r.MeanDelivery)
	}
	if r.MeanEnergy != 0 {
		t.Errorf("energy = %g, want 0 (transmission never fires)", r.MeanEnergy)
	}
	if r.PlannedEnergy == 0 {
		t.Error("planned energy should still count the scheduled transmission")
	}
}

func TestEvaluateInsufficientPowerStaticFails(t *testing.T) {
	g := chain(tveg.Static)
	w01 := g.MinCost(0, 1, 10)
	s := schedule.Schedule{{Relay: 0, T: 10, W: w01 * 0.9}}
	r := Evaluate(g, s, 0, 2, rand.New(rand.NewSource(1)))
	if r.MeanDelivery != 1.0/3 {
		t.Errorf("delivery = %g, want 1/3", r.MeanDelivery)
	}
}

func TestEvaluateFadingMatchesAnalyticSingleHop(t *testing.T) {
	g := tveg.New(2, iv(0, 100), 0, tveg.DefaultParams(), tveg.RayleighFading)
	g.AddContact(0, 1, iv(0, 100), 5)
	ed := g.EDAt(0, 1, 10)
	w := ed.MinCost(0.3) // 70% success
	s := schedule.Schedule{{Relay: 0, T: 10, W: w}}
	r := Evaluate(g, s, 0, 40000, rand.New(rand.NewSource(7)))
	// delivery = (1 + P(success))/2
	want := (1 + 0.7) / 2
	if math.Abs(r.MeanDelivery-want) > 0.01 {
		t.Errorf("delivery = %g, want ≈%g", r.MeanDelivery, want)
	}
}

func TestEvaluateFadingCascade(t *testing.T) {
	// two-hop chain with 50%-success hops: delivery of node 2 should be
	// ≈ 0.25 (both hops must succeed; relay 1 fires only when informed).
	g := chain(tveg.RayleighFading)
	w01 := g.EDAt(0, 1, 10).MinCost(0.5)
	w12 := g.EDAt(1, 2, 20).MinCost(0.5)
	s := schedule.Schedule{{Relay: 0, T: 10, W: w01}, {Relay: 1, T: 20, W: w12}}
	r := Evaluate(g, s, 0, 60000, rand.New(rand.NewSource(9)))
	// node1 informed: 1/2; node2 informed: 1/4 → delivery = (1 + 1/2 + 1/4)/3
	want := (1 + 0.5 + 0.25) / 3
	if math.Abs(r.MeanDelivery-want) > 0.01 {
		t.Errorf("delivery = %g, want ≈%g", r.MeanDelivery, want)
	}
	// consumed energy: tx0 always fires; tx1 fires half the time
	wantEnergy := (w01 + 0.5*w12) / g.Params.GammaTh
	if math.Abs(r.MeanEnergy-wantEnergy)/wantEnergy > 0.02 {
		t.Errorf("energy = %g, want ≈%g", r.MeanEnergy, wantEnergy)
	}
}

func TestFRBeatsNonFRDeliveryUnderFading(t *testing.T) {
	// The headline Fig. 6 effect on a single trace.
	r := rand.New(rand.NewSource(4))
	g := tveg.New(6, iv(0, 1000), 0, tveg.DefaultParams(), tveg.RayleighFading)
	for c := 0; c < 30; c++ {
		i, j := tvg.NodeID(r.Intn(6)), tvg.NodeID(r.Intn(6))
		if i == j {
			continue
		}
		s := r.Float64() * 800
		g.AddContact(i, j, iv(s, s+50+r.Float64()*100), 1+r.Float64()*9)
	}
	nonFR, err1 := core.EEDCB{}.Schedule(g, 0, 0, 1000)
	fr, err2 := core.FREEDCB{}.Schedule(g, 0, 0, 1000)
	if err1 != nil || err2 != nil {
		t.Skipf("trace not fully connected: %v %v", err1, err2)
	}
	rng := rand.New(rand.NewSource(11))
	resNon := Evaluate(g, nonFR, 0, 3000, rng)
	resFR := Evaluate(g, fr, 0, 3000, rng)
	if resFR.MeanDelivery <= resNon.MeanDelivery {
		t.Errorf("FR delivery %g should beat non-FR %g",
			resFR.MeanDelivery, resNon.MeanDelivery)
	}
	if resFR.MeanDelivery < 0.95 {
		t.Errorf("FR delivery %g should be near 1", resFR.MeanDelivery)
	}
}

func TestInformedTimes(t *testing.T) {
	g := chain(tveg.Static)
	w01 := g.MinCost(0, 1, 10)
	w12 := g.MinCost(1, 2, 20)
	s := schedule.Schedule{{Relay: 0, T: 10, W: w01}, {Relay: 1, T: 20, W: w12}}
	times := InformedTimes(g, s, 0)
	if times[0] != 0 || times[1] != 10 || times[2] != 20 {
		t.Errorf("times = %v, want [0 10 20]", times)
	}
}

func TestInformedTimesPanicsOnFading(t *testing.T) {
	g := chain(tveg.RayleighFading)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	InformedTimes(g, nil, 0)
}

func TestDegreeSeries(t *testing.T) {
	g := chain(tveg.Static)
	ds := DegreeSeries(g, []float64{5, 25, 60})
	if ds[0] != 0 {
		t.Errorf("degree(5) = %g, want 0", ds[0])
	}
	if ds[1] <= 0 {
		t.Errorf("degree(25) = %g, want > 0", ds[1])
	}
	if ds[2] != 0 {
		t.Errorf("degree(60) = %g, want 0", ds[2])
	}
}

func TestSortedCopyDoesNotMutate(t *testing.T) {
	s := schedule.Schedule{{Relay: 1, T: 30, W: 1}, {Relay: 0, T: 10, W: 1}}
	c := SortedCopy(s)
	if c[0].T != 10 || s[0].T != 30 {
		t.Errorf("SortedCopy wrong: c=%v s=%v", c, s)
	}
}
