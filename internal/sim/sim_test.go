package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

func iv(a, b float64) interval.Interval { return interval.Interval{Start: a, End: b} }

func chain(m tveg.Model) *tveg.Graph {
	g := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), m)
	g.AddContact(0, 1, iv(10, 30), 5)
	g.AddContact(1, 2, iv(20, 50), 8)
	return g
}

func TestEvaluatePanicsOnZeroTrials(t *testing.T) {
	g := chain(tveg.Static)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Evaluate(g, nil, 0, 0, rand.New(rand.NewSource(1)))
}

func TestEvaluateStaticDeterministic(t *testing.T) {
	g := chain(tveg.Static)
	w01 := g.MinCost(0, 1, 10)
	w12 := g.MinCost(1, 2, 20)
	s := schedule.Schedule{{Relay: 0, T: 10, W: w01}, {Relay: 1, T: 20, W: w12}}
	r := Evaluate(g, s, 0, 5, rand.New(rand.NewSource(1)))
	if r.MeanDelivery != 1 {
		t.Errorf("delivery = %g, want 1", r.MeanDelivery)
	}
	if r.StdDelivery != 0 {
		t.Errorf("static delivery should have zero variance, got %g", r.StdDelivery)
	}
	want := (w01 + w12) / g.Params.GammaTh
	if math.Abs(r.MeanEnergy-want) > 1e-12 {
		t.Errorf("energy = %g, want %g", r.MeanEnergy, want)
	}
	if math.Abs(r.PlannedEnergy-want) > 1e-12 {
		t.Errorf("planned = %g, want %g", r.PlannedEnergy, want)
	}
}

func TestEvaluateRelayCannotForwardWithoutPacket(t *testing.T) {
	g := chain(tveg.Static)
	w12 := g.MinCost(1, 2, 20)
	// node 1 transmits but was never informed: nothing happens, no energy
	s := schedule.Schedule{{Relay: 1, T: 20, W: w12}}
	r := Evaluate(g, s, 0, 3, rand.New(rand.NewSource(1)))
	if r.MeanDelivery != 1.0/3 {
		t.Errorf("delivery = %g, want 1/3 (source only)", r.MeanDelivery)
	}
	if r.MeanEnergy != 0 {
		t.Errorf("energy = %g, want 0 (transmission never fires)", r.MeanEnergy)
	}
	if r.PlannedEnergy == 0 {
		t.Error("planned energy should still count the scheduled transmission")
	}
}

func TestEvaluateInsufficientPowerStaticFails(t *testing.T) {
	g := chain(tveg.Static)
	w01 := g.MinCost(0, 1, 10)
	s := schedule.Schedule{{Relay: 0, T: 10, W: w01 * 0.9}}
	r := Evaluate(g, s, 0, 2, rand.New(rand.NewSource(1)))
	if r.MeanDelivery != 1.0/3 {
		t.Errorf("delivery = %g, want 1/3", r.MeanDelivery)
	}
}

func TestEvaluateFadingMatchesAnalyticSingleHop(t *testing.T) {
	g := tveg.New(2, iv(0, 100), 0, tveg.DefaultParams(), tveg.RayleighFading)
	g.AddContact(0, 1, iv(0, 100), 5)
	ed := g.EDAt(0, 1, 10)
	w := ed.MinCost(0.3) // 70% success
	s := schedule.Schedule{{Relay: 0, T: 10, W: w}}
	r := Evaluate(g, s, 0, 40000, rand.New(rand.NewSource(7)))
	// delivery = (1 + P(success))/2
	want := (1 + 0.7) / 2
	if math.Abs(r.MeanDelivery-want) > 0.01 {
		t.Errorf("delivery = %g, want ≈%g", r.MeanDelivery, want)
	}
}

func TestEvaluateFadingCascade(t *testing.T) {
	// two-hop chain with 50%-success hops: delivery of node 2 should be
	// ≈ 0.25 (both hops must succeed; relay 1 fires only when informed).
	g := chain(tveg.RayleighFading)
	w01 := g.EDAt(0, 1, 10).MinCost(0.5)
	w12 := g.EDAt(1, 2, 20).MinCost(0.5)
	s := schedule.Schedule{{Relay: 0, T: 10, W: w01}, {Relay: 1, T: 20, W: w12}}
	r := Evaluate(g, s, 0, 60000, rand.New(rand.NewSource(9)))
	// node1 informed: 1/2; node2 informed: 1/4 → delivery = (1 + 1/2 + 1/4)/3
	want := (1 + 0.5 + 0.25) / 3
	if math.Abs(r.MeanDelivery-want) > 0.01 {
		t.Errorf("delivery = %g, want ≈%g", r.MeanDelivery, want)
	}
	// consumed energy: tx0 always fires; tx1 fires half the time
	wantEnergy := (w01 + 0.5*w12) / g.Params.GammaTh
	if math.Abs(r.MeanEnergy-wantEnergy)/wantEnergy > 0.02 {
		t.Errorf("energy = %g, want ≈%g", r.MeanEnergy, wantEnergy)
	}
}

func TestFRBeatsNonFRDeliveryUnderFading(t *testing.T) {
	// The headline Fig. 6 effect on a single trace.
	r := rand.New(rand.NewSource(4))
	g := tveg.New(6, iv(0, 1000), 0, tveg.DefaultParams(), tveg.RayleighFading)
	for c := 0; c < 30; c++ {
		i, j := tvg.NodeID(r.Intn(6)), tvg.NodeID(r.Intn(6))
		if i == j {
			continue
		}
		s := r.Float64() * 800
		g.AddContact(i, j, iv(s, s+50+r.Float64()*100), 1+r.Float64()*9)
	}
	nonFR, err1 := core.EEDCB{}.Schedule(g, 0, 0, 1000)
	fr, err2 := core.FREEDCB{}.Schedule(g, 0, 0, 1000)
	if err1 != nil || err2 != nil {
		t.Skipf("trace not fully connected: %v %v", err1, err2)
	}
	rng := rand.New(rand.NewSource(11))
	resNon := Evaluate(g, nonFR, 0, 3000, rng)
	resFR := Evaluate(g, fr, 0, 3000, rng)
	if resFR.MeanDelivery <= resNon.MeanDelivery {
		t.Errorf("FR delivery %g should beat non-FR %g",
			resFR.MeanDelivery, resNon.MeanDelivery)
	}
	if resFR.MeanDelivery < 0.95 {
		t.Errorf("FR delivery %g should be near 1", resFR.MeanDelivery)
	}
}

func TestInformedTimes(t *testing.T) {
	g := chain(tveg.Static)
	w01 := g.MinCost(0, 1, 10)
	w12 := g.MinCost(1, 2, 20)
	s := schedule.Schedule{{Relay: 0, T: 10, W: w01}, {Relay: 1, T: 20, W: w12}}
	times := InformedTimes(g, s, 0)
	if times[0] != 0 || times[1] != 10 || times[2] != 20 {
		t.Errorf("times = %v, want [0 10 20]", times)
	}
}

func TestInformedTimesPanicsOnFading(t *testing.T) {
	g := chain(tveg.RayleighFading)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	InformedTimes(g, nil, 0)
}

func TestDegreeSeries(t *testing.T) {
	g := chain(tveg.Static)
	ds := DegreeSeries(g, []float64{5, 25, 60})
	if ds[0] != 0 {
		t.Errorf("degree(5) = %g, want 0", ds[0])
	}
	if ds[1] <= 0 {
		t.Errorf("degree(25) = %g, want > 0", ds[1])
	}
	if ds[2] != 0 {
		t.Errorf("degree(60) = %g, want 0", ds[2])
	}
}

func TestSortedCopyDoesNotMutate(t *testing.T) {
	s := schedule.Schedule{{Relay: 1, T: 30, W: 1}, {Relay: 0, T: 10, W: 1}}
	c := SortedCopy(s)
	if c[0].T != 10 || s[0].T != 30 {
		t.Errorf("SortedCopy wrong: c=%v s=%v", c, s)
	}
}

// tauChain builds 0—1—2 with always-alive contacts and the given τ.
func tauChain(m tveg.Model, tau float64) *tveg.Graph {
	g := tveg.New(3, iv(0, 100), tau, tveg.DefaultParams(), m)
	g.AddContact(0, 1, iv(0, 100), 5)
	g.AddContact(1, 2, iv(0, 100), 8)
	return g
}

// TestEvaluatePrematureRelayTauPositive pins the per-node reception-time
// fix: with τ = 5 the packet departing v0 at t = 10 reaches v1 at 15,
// so v1 relaying at t = 12 must be skipped — the old boolean informed
// set relayed it and over-counted delivery.
func TestEvaluatePrematureRelayTauPositive(t *testing.T) {
	g := tauChain(tveg.Static, 5)
	premature := schedule.Schedule{
		{Relay: 0, T: 10, W: g.MinCost(0, 1, 10)},
		{Relay: 1, T: 12, W: g.MinCost(1, 2, 12)},
	}
	res := Evaluate(g, premature, 0, 1, rand.New(rand.NewSource(1)))
	if want := 2.0 / 3; res.MeanDelivery != want {
		t.Errorf("premature relay: delivery %g, want %g", res.MeanDelivery, want)
	}
	if want := g.MinCost(0, 1, 10) / g.Params.GammaTh; res.MeanEnergy != want {
		t.Errorf("premature relay must not consume energy: %g, want %g", res.MeanEnergy, want)
	}
	legal := schedule.Schedule{
		{Relay: 0, T: 10, W: g.MinCost(0, 1, 10)},
		{Relay: 1, T: 15, W: g.MinCost(1, 2, 15)}, // departs exactly at arrival
	}
	if res := Evaluate(g, legal, 0, 1, rand.New(rand.NewSource(1))); res.MeanDelivery != 1 {
		t.Errorf("non-stop chain: delivery %g, want 1", res.MeanDelivery)
	}
}

// TestInformedTimesTauArrivalGate: same fixture, deterministic executor.
func TestInformedTimesTauArrivalGate(t *testing.T) {
	g := tauChain(tveg.Static, 5)
	premature := schedule.Schedule{
		{Relay: 0, T: 10, W: g.MinCost(0, 1, 10)},
		{Relay: 1, T: 12, W: g.MinCost(1, 2, 12)},
	}
	times := InformedTimes(g, premature, 0)
	if times[1] != 15 {
		t.Errorf("v1 informed at %g, want 15", times[1])
	}
	if !math.IsInf(times[2], 1) {
		t.Errorf("v2 informed at %g, want never (relay mute during flight)", times[2])
	}
	legal := schedule.Schedule{premature[0], {Relay: 1, T: 15, W: g.MinCost(1, 2, 15)}}
	if times := InformedTimes(g, legal, 0); times[2] != 20 {
		t.Errorf("v2 informed at %g, want 20", times[2])
	}
}

// legacyTrialDelivered is sim.Evaluate's pre-fix inner loop: a boolean
// informed set consuming the rng in schedule × neighbor order.
func legacyTrialDelivered(g *tveg.Graph, ordered schedule.Schedule, src tvg.NodeID, rng *rand.Rand) (int, float64) {
	informed := make([]bool, g.N())
	informed[src] = true
	var energy float64
	for _, x := range ordered {
		if !informed[x.Relay] {
			continue
		}
		energy += x.W
		for _, j := range g.EverNeighbors(x.Relay) {
			if informed[j] || !g.RhoTau(x.Relay, j, x.T) {
				continue
			}
			failure := g.EDAt(x.Relay, j, x.T).FailureProb(x.W)
			if failure <= 0 || rng.Float64() >= failure {
				informed[j] = true
			}
		}
	}
	delivered := 0
	for _, ok := range informed {
		if ok {
			delivered++
		}
	}
	return delivered, energy
}

// TestEvaluateTauZeroMatchesLegacyStream: at τ = 0 the reception-time
// rewrite must be byte-identical to the old boolean executor — same
// delivery, same energy, and the same rng consumption pattern across
// many fading trials (a skipped or extra draw anywhere would decouple
// the streams and show up within a trial or two).
func TestEvaluateTauZeroMatchesLegacyStream(t *testing.T) {
	g := tauChain(tveg.RayleighFading, 0)
	eps := g.Params.Eps
	s := schedule.Schedule{
		{Relay: 0, T: 10, W: 0.8 * g.EDAt(0, 1, 10).MinCost(eps)},
		{Relay: 1, T: 10, W: 0.7 * g.EDAt(1, 2, 10).MinCost(eps)}, // τ=0 same-instant cascade
		{Relay: 1, T: 30, W: 0.9 * g.EDAt(1, 2, 30).MinCost(eps)},
	}
	const trials = 64
	for seed := int64(0); seed < 5; seed++ {
		res := Evaluate(g, s, 0, trials, rand.New(rand.NewSource(seed)))
		legacyRng := rand.New(rand.NewSource(seed))
		var sumDelivery, sumEnergy float64
		for trial := 0; trial < trials; trial++ {
			delivered, energy := legacyTrialDelivered(g, s, 0, legacyRng)
			sumDelivery += float64(delivered) / float64(g.N())
			sumEnergy += energy / g.Params.GammaTh
		}
		if got, want := res.MeanDelivery, sumDelivery/trials; got != want {
			t.Fatalf("seed %d: delivery %v, legacy %v", seed, got, want)
		}
		if got, want := res.MeanEnergy, sumEnergy/trials; got != want {
			t.Fatalf("seed %d: energy %v, legacy %v", seed, got, want)
		}
	}
}
