package sim

import (
	"math"
	"math/rand"
	"sync"

	"repro/internal/parallel"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// EvaluateParallel runs Evaluate's Monte Carlo trials across a worker
// pool and merges the results. Each worker owns a private RNG seeded
// with parallel.SplitSeed(seed, w), so the aggregate is deterministic
// for a given (seed, workers) pair regardless of interleaving.
// workers <= 0 selects GOMAXPROCS; the pool is clamped to the trial
// count, and the returned Result records the effective pool size in
// Workers — a requested pool that degraded to the serial path is
// visible as Workers == 1.
func EvaluateParallel(g *tveg.Graph, s schedule.Schedule, src tvg.NodeID, trials int, seed int64, workers int) Result {
	workers = parallel.Clamp(parallel.Resolve(workers), trials)
	if workers <= 1 {
		return Evaluate(g, s, src, trials, rand.New(rand.NewSource(seed)))
	}
	counts := parallel.SplitCounts(trials, workers)

	results := make([]Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			results[w] = Evaluate(g, s, src, n, rand.New(rand.NewSource(parallel.SplitSeed(seed, w))))
		}(w, counts[w])
	}
	wg.Wait()
	return mergeResults(results)
}

// mergeResults pools per-worker Monte Carlo aggregates into one Result.
// The pooled delivery standard deviation uses the standard combined
// sum-of-squares formula. Workers records the pool size (one input
// Result per worker).
func mergeResults(rs []Result) Result {
	var total int
	var sumDel, sumEnergy, sumSq float64
	for _, r := range rs {
		n := float64(r.Trials)
		total += r.Trials
		sumDel += r.MeanDelivery * n
		sumEnergy += r.MeanEnergy * n
		// reconstruct Σx² from mean and sample variance
		variance := r.StdDelivery * r.StdDelivery
		sumSq += variance*(n-1) + r.MeanDelivery*r.MeanDelivery*n
	}
	out := Result{Trials: total, Workers: len(rs)}
	if total == 0 {
		return out
	}
	if len(rs) > 0 {
		out.PlannedEnergy = rs[0].PlannedEnergy
	}
	n := float64(total)
	out.MeanDelivery = sumDel / n
	out.MeanEnergy = sumEnergy / n
	if total > 1 {
		variance := (sumSq - sumDel*sumDel/n) / (n - 1)
		if variance > 0 {
			out.StdDelivery = math.Sqrt(variance)
		}
	}
	return out
}
