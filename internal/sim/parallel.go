package sim

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// EvaluateParallel runs Evaluate's Monte Carlo trials across a worker
// pool and merges the results. Each worker owns a private RNG seeded
// with parallel.SplitSeed(seed, w), so the aggregate is deterministic
// for a given (seed, workers) pair regardless of interleaving.
// workers <= 0 selects GOMAXPROCS; the pool is clamped to the trial
// count, and the returned Result records the effective pool size in
// Workers — a requested pool that degraded to the serial path is
// visible as Workers == 1.
func EvaluateParallel(g *tveg.Graph, s schedule.Schedule, src tvg.NodeID, trials int, seed int64, workers int) Result {
	return EvaluateParallelObs(g, s, src, trials, seed, workers, nil)
}

// EvaluateParallelObs is EvaluateParallel with per-worker busy time and
// trial counts recorded into rec's "sim.evaluate" pool, plus the
// transmission/reception counters of EvaluateObs. A nil rec records
// nothing; the merged Result is identical either way.
func EvaluateParallelObs(g *tveg.Graph, s schedule.Schedule, src tvg.NodeID, trials int, seed int64, workers int, rec *obs.Recorder) Result {
	pool := rec.Pool("sim.evaluate")
	workers = parallel.Clamp(parallel.Resolve(workers), trials)
	if workers <= 1 {
		pool.Launched()
		start := time.Now()
		r := EvaluateObs(g, s, src, trials, rand.New(rand.NewSource(seed)), rec)
		pool.Observe(0, int64(trials), time.Since(start))
		return r
	}
	counts := parallel.SplitCounts(trials, workers)

	pool.Launched()
	results := make([]Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			start := time.Now()
			results[w] = EvaluateObs(g, s, src, n, rand.New(rand.NewSource(parallel.SplitSeed(seed, w))), rec)
			pool.Observe(w, int64(n), time.Since(start))
		}(w, counts[w])
	}
	wg.Wait()
	return mergeResults(results)
}

// mergeResults pools per-worker Monte Carlo aggregates into one Result.
// The pooled delivery standard deviation uses the standard combined
// sum-of-squares formula. Workers records the pool size (one input
// Result per worker).
func mergeResults(rs []Result) Result {
	var total int
	var sumDel, sumEnergy, sumSq float64
	for _, r := range rs {
		n := float64(r.Trials)
		total += r.Trials
		sumDel += r.MeanDelivery * n
		sumEnergy += r.MeanEnergy * n
		// reconstruct Σx² from mean and sample variance
		variance := r.StdDelivery * r.StdDelivery
		sumSq += variance*(n-1) + r.MeanDelivery*r.MeanDelivery*n
	}
	out := Result{Trials: total, Workers: len(rs)}
	if total == 0 {
		return out
	}
	if len(rs) > 0 {
		out.PlannedEnergy = rs[0].PlannedEnergy
	}
	n := float64(total)
	out.MeanDelivery = sumDel / n
	out.MeanEnergy = sumEnergy / n
	if total > 1 {
		variance := (sumSq - sumDel*sumDel/n) / (n - 1)
		if variance > 0 {
			out.StdDelivery = math.Sqrt(variance)
		}
	}
	return out
}
