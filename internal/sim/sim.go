// Package sim executes broadcast relay schedules on a TVEG and measures
// the §VII metrics: normalized energy consumption and packet delivery
// ratio. Under fading, execution is Monte Carlo: every transmission
// succeeds at each in-range receiver independently with probability
// 1 - φ(w), and — crucially — a relay that never received the packet
// cannot forward it, which is exactly the cascade failure that makes the
// non-fading-aware algorithms lose ~a third of the nodes in Fig. 6.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Result aggregates the evaluation of one schedule.
type Result struct {
	// PlannedEnergy is the schedule's total cost normalized by γth
	// (every transmission counted, whether or not it fires).
	PlannedEnergy float64
	// MeanEnergy is the mean consumed energy across trials, normalized
	// by γth: transmissions whose relay was never informed do not fire
	// and consume nothing.
	MeanEnergy float64
	// MeanDelivery is the mean fraction of nodes (source included) that
	// hold the packet at the end of a trial.
	MeanDelivery float64
	// StdDelivery is the sample standard deviation of the delivery
	// ratio across trials.
	StdDelivery float64
	// Trials is the number of Monte Carlo runs aggregated.
	Trials int
	// Workers is the number of worker goroutines that actually ran the
	// trials: 1 for Evaluate, and for EvaluateParallel the effective
	// pool size after clamping (so a requested workers > trials that
	// degraded to the serial path reports 1, not the request). The
	// per-worker trial split is WorkerTrials(Trials, Workers).
	Workers int
}

func (r Result) String() string {
	return fmt.Sprintf("energy=%.4g delivery=%.3f±%.3f (planned %.4g, %d trials, %d workers)",
		r.MeanEnergy, r.MeanDelivery, r.StdDelivery, r.PlannedEnergy, r.Trials, r.Workers)
}

// WorkerTrials returns the per-worker trial counts EvaluateParallel uses
// for the given (trials, workers) pair — the deterministic near-equal
// split with the first trials%workers workers taking one extra. Exposed
// so benchmark reports can attribute speedups to the actual split.
func WorkerTrials(trials, workers int) []int {
	return parallel.SplitCounts(trials, workers)
}

// Evaluate runs the schedule trials times from the given source and
// aggregates the metrics. The run is deterministic per rng. On a static
// graph one trial suffices (the dynamics are deterministic); callers may
// still pass more.
//
// Propagation follows the unified τ rule (see schedule.Informs and
// DESIGN.md "Execution semantics"): a reception from a transmission at
// t_k completes at t_k + τ, and the receiver cannot relay a transmission
// scheduled before that arrival. With τ = 0 same-time cascades resolve
// in schedule order exactly as before.
func Evaluate(g *tveg.Graph, s schedule.Schedule, src tvg.NodeID, trials int, rng *rand.Rand) Result {
	return EvaluateObs(g, s, src, trials, rng, nil)
}

// EvaluateObs is Evaluate with transmission/reception counters recorded
// into rec (sim.tx_fired, sim.tx_muted, sim.rx, sim.rx_failed, summed
// across trials). A nil rec records nothing; results are identical either
// way — the counters never feed back into the Monte Carlo dynamics.
func EvaluateObs(g *tveg.Graph, s schedule.Schedule, src tvg.NodeID, trials int, rng *rand.Rand, rec *obs.Recorder) Result {
	if trials <= 0 {
		panic(fmt.Sprintf("sim: non-positive trials %d", trials))
	}
	ordered := make(schedule.Schedule, len(s))
	copy(ordered, s)
	ordered.SortByTime()

	// Handles are fetched once; the nil-safe ops inside the trial loop
	// are allocation-free when rec is nil (the obs AllocsPerRun guard).
	txFired := rec.Counter("sim.tx_fired")
	txMuted := rec.Counter("sim.tx_muted")
	rxOK := rec.Counter("sim.rx")
	rxFailed := rec.Counter("sim.rx_failed")

	gamma := g.Params.GammaTh
	tau := g.Tau()
	res := Result{PlannedEnergy: ordered.NormalizedCost(gamma), Trials: trials, Workers: 1}
	var sumDelivery, sumSqDelivery, sumEnergy float64
	recvAt := make([]float64, g.N())
	for trial := 0; trial < trials; trial++ {
		for i := range recvAt {
			recvAt[i] = math.Inf(1)
		}
		recvAt[src] = math.Inf(-1)
		var energy float64
		for _, x := range ordered {
			if recvAt[x.Relay] > x.T+schedule.TimeTol {
				// A relay whose packet has not arrived (t_recv = t_k + τ
				// of some earlier reception) cannot forward it: a node
				// informed at t is mute during [t-τ, t). With τ = 0 the
				// reception times of this trial all lie at or before x.T,
				// so the check degenerates to the boolean informed test
				// and the same-time cascade in schedule order survives.
				txMuted.Inc()
				continue
			}
			txFired.Inc()
			energy += x.W
			for _, j := range g.EverNeighbors(x.Relay) {
				if recvAt[j] <= x.T || !g.RhoTau(x.Relay, j, x.T) {
					continue // holds the packet already, or out of range
				}
				failure := g.EDAt(x.Relay, j, x.T).FailureProb(x.W)
				if failure <= 0 || rng.Float64() >= failure {
					rxOK.Inc()
					if t := x.T + tau; t < recvAt[j] {
						recvAt[j] = t
					}
				} else {
					rxFailed.Inc()
				}
			}
		}
		delivered := 0
		for _, t := range recvAt {
			if !math.IsInf(t, 1) {
				delivered++
			}
		}
		ratio := float64(delivered) / float64(g.N())
		sumDelivery += ratio
		sumSqDelivery += ratio * ratio
		sumEnergy += energy / gamma
	}
	n := float64(trials)
	res.MeanDelivery = sumDelivery / n
	res.MeanEnergy = sumEnergy / n
	if trials > 1 {
		variance := (sumSqDelivery - sumDelivery*sumDelivery/n) / (n - 1)
		if variance > 0 {
			res.StdDelivery = math.Sqrt(variance)
		}
	}
	return res
}

// InformedTimes runs a single deterministic execution on a static graph
// and returns each node's reception time (+Inf when never informed).
// It panics on fading graphs, where reception is probabilistic.
func InformedTimes(g *tveg.Graph, s schedule.Schedule, src tvg.NodeID) []float64 {
	if g.Model.Fading() {
		panic("sim: InformedTimes requires a static channel model")
	}
	ordered := make(schedule.Schedule, len(s))
	copy(ordered, s)
	ordered.SortByTime()
	times := make([]float64, g.N())
	for i := range times {
		times[i] = math.Inf(1)
	}
	times[src] = 0
	tau := g.Tau()
	for _, x := range ordered {
		if times[x.Relay] > x.T+schedule.TimeTol {
			continue // packet not yet arrived at the relay (unified τ rule)
		}
		for _, j := range g.EverNeighbors(x.Relay) {
			if !g.RhoTau(x.Relay, j, x.T) {
				continue
			}
			//tmedbvet:ignore floateq min-arrival relaxation, not a feasibility gate: an exact < keeps the earliest reception time
			if g.EDAt(x.Relay, j, x.T).FailureProb(x.W) == 0 && x.T+tau < times[j] {
				times[j] = x.T + tau
			}
		}
	}
	return times
}

// DegreeSeries samples the average node degree at the given times
// (Fig. 7's secondary series).
func DegreeSeries(g *tveg.Graph, at []float64) []float64 {
	out := make([]float64, len(at))
	for k, t := range at {
		out[k] = g.AverageDegreeAt(t)
	}
	return out
}

// SortedCopy returns the schedule sorted chronologically without
// mutating the input (helper for reporting).
func SortedCopy(s schedule.Schedule) schedule.Schedule {
	out := make(schedule.Schedule, len(s))
	copy(out, s)
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}
