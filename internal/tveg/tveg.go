// Package tveg implements time-varying energy-demand graphs
// (Definition 3.2): a deterministic TVG whose every edge carries a
// time-indexed energy-demand function. Channel state is stored as
// piecewise-constant segments aligned with contact intervals — each
// contact knows the sender-receiver distance during the contact, from
// which the cost function ψ derives either a step ED-function (static
// channel, Eq. 2, with gain h = d^{-α}) or a fading ED-function
// (Rayleigh Eq. 5, or the Rician/Nakagami extensions).
package tveg

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/channel"
	"repro/internal/interval"
	"repro/internal/tvg"
)

// Model selects the channel model the ED-functions are drawn from.
type Model int

const (
	// Static is the deterministic channel of Eq. 2 (step ED-functions).
	Static Model = iota
	// RayleighFading is the fading channel of Eq. 5.
	RayleighFading
	// RicianFading is the Rician extension (footnote 1).
	RicianFading
	// NakagamiFading is the Nakagami-m extension (footnote 1).
	NakagamiFading
)

func (m Model) String() string {
	switch m {
	case Static:
		return "static"
	case RayleighFading:
		return "rayleigh"
	case RicianFading:
		return "rician"
	case NakagamiFading:
		return "nakagami"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Fading reports whether transmissions under the model are probabilistic
// (success probability < 1 at every finite cost).
func (m Model) Fading() bool { return m != Static }

// Params collects the physical-layer constants of §VII.
type Params struct {
	// N0 is the noise power density (W/Hz).
	N0 float64
	// GammaTh is the decoding threshold, linear (not dB).
	GammaTh float64
	// Alpha is the path loss exponent.
	Alpha float64
	// Eps is the acceptable error rate ε of §IV.
	Eps float64
	// WMin and WMax bound the continuous cost set W.
	WMin, WMax float64
	// RiceK is the Rice factor used by the Rician model.
	RiceK float64
	// NakagamiM is the fading figure used by the Nakagami model.
	NakagamiM float64
}

// DefaultParams returns the evaluation parameters of §VII: N0 = 4.32e-21
// W/Hz, γth = 25.9 dB, α = 2, ε = 0.01, and a generous cost range.
func DefaultParams() Params {
	return Params{
		N0:        4.32e-21,
		GammaTh:   math.Pow(10, 25.9/10),
		Alpha:     2,
		Eps:       0.01,
		WMin:      0,
		WMax:      math.Inf(1),
		RiceK:     5,
		NakagamiM: 2,
	}
}

// NoiseGamma returns N0·γth, the numerator of every minimum-cost formula.
func (p Params) NoiseGamma() float64 { return p.N0 * p.GammaTh }

// Segment is one piecewise-constant stretch of channel state on an edge:
// during Iv, the sender-receiver distance is Dist.
type Segment struct {
	Iv   interval.Interval
	Dist float64
}

// Graph is a TVEG: a TVG plus per-edge channel segments and a channel
// model. It embeds the underlying TVG, so all topology queries (ρ, ρ_τ,
// partitions, journeys) are available directly.
type Graph struct {
	*tvg.Graph
	Params Params
	Model  Model
	segs   map[tvg.EdgeKey][]Segment
	// cache memoizes pure cost queries; nil = disabled. Shared (by
	// pointer) with every WithModel view. See EnableCostCache.
	cache *costCache
}

// New creates an empty TVEG over the span with traversal time tau.
func New(n int, span interval.Interval, tau float64, params Params, model Model) *Graph {
	return &Graph{
		Graph:  tvg.New(n, span, tau),
		Params: params,
		Model:  model,
		segs:   make(map[tvg.EdgeKey][]Segment),
	}
}

// WithModel returns a read-only view of the graph under a different
// channel model, sharing all topology and channel segments. The
// non-fading-aware algorithms plan on a Static view of a fading graph —
// exactly the mismatch §VII's Fig. 6 measures.
func (g *Graph) WithModel(m Model) *Graph {
	view := *g
	view.Model = m
	return &view
}

// AddContact records a contact between i and j during iv at distance
// dist. The presence function and the channel segments are updated
// together; ψ is piecewise constant over each contact.
func (g *Graph) AddContact(i, j tvg.NodeID, iv interval.Interval, dist float64) {
	if dist <= 0 {
		panic(fmt.Sprintf("tveg: non-positive distance %g", dist))
	}
	if iv.Empty() {
		return
	}
	g.Graph.AddContact(i, j, iv)
	k := tvg.MakeEdgeKey(i, j)
	g.segs[k] = append(g.segs[k], Segment{iv, dist})
	// Stable: equal-start segments keep insertion order, so replaying an
	// edit sequence on a fresh graph reconstructs identical channel state.
	sort.SliceStable(g.segs[k], func(a, b int) bool { return g.segs[k][a].Iv.Start < g.segs[k][b].Iv.Start })
	if g.cache != nil {
		// A new contact only changes ρ_τ, segments, and cost sets at its
		// own pair; everything else cached stays valid.
		g.cache.invalidatePair(i, j)
	}
}

// SegmentAt returns the channel segment of edge (i, j) covering time t.
func (g *Graph) SegmentAt(i, j tvg.NodeID, t float64) (Segment, bool) {
	for _, s := range g.segs[tvg.MakeEdgeKey(i, j)] {
		if s.Iv.Contains(t) {
			return s, true
		}
	}
	return Segment{}, false
}

// Beta returns β_{i,j,t} = N0·γth·d^α (Eq. 5's constant) for the contact
// covering t, or +Inf when the edge is absent at t.
func (g *Graph) Beta(i, j tvg.NodeID, t float64) float64 {
	s, ok := g.SegmentAt(i, j, t)
	if !ok {
		return math.Inf(1)
	}
	return g.Params.NoiseGamma() * math.Pow(s.Dist, g.Params.Alpha)
}

// EDAt evaluates the cost function ψ(e_{i,j}, t): the ED-function
// embedded on the edge at time t under the graph's channel model.
func (g *Graph) EDAt(i, j tvg.NodeID, t float64) channel.EDFunction {
	if !g.RhoTau(i, j, t) {
		return channel.Absent{}
	}
	beta := g.Beta(i, j, t)
	if math.IsInf(beta, 1) {
		return channel.Absent{}
	}
	switch g.Model {
	case Static:
		// Gain h = d^{-α}, so the step threshold N0·γth/h = β.
		return channel.Step{Threshold: beta}
	case RayleighFading:
		return channel.Rayleigh{Beta: beta}
	case RicianFading:
		return channel.Rician{K: g.Params.RiceK, Beta: beta}
	case NakagamiFading:
		return channel.Nakagami{M: g.Params.NakagamiM, Beta: beta}
	default:
		panic(fmt.Sprintf("tveg: unknown model %v", g.Model))
	}
}

// MinCost returns the smallest cost at which a transmission i→j at time t
// satisfies the per-hop error rate ε: the step threshold for static
// channels, or the w0 of §VI-B (φ(w0) = ε) for fading channels. +Inf
// when the edge is absent.
func (g *Graph) MinCost(i, j tvg.NodeID, t float64) float64 {
	if g.cache != nil {
		k := minCostKey{i, j, t, g.Model, g.Params.Eps}
		if v, ok := g.cache.minCost.Load(k); ok {
			g.cache.minCostHits.Add(1)
			return v.(float64)
		}
		g.cache.minCostMisses.Add(1)
		w := g.minCostUncached(i, j, t)
		g.cache.minCost.Store(k, w)
		return w
	}
	return g.minCostUncached(i, j, t)
}

func (g *Graph) minCostUncached(i, j tvg.NodeID, t float64) float64 {
	ed := g.EDAt(i, j, t)
	if _, absent := ed.(channel.Absent); absent {
		return math.Inf(1)
	}
	var w float64
	if g.cache != nil {
		w = g.cache.edMemo.MinCost(ed, g.Params.Eps)
	} else {
		w = ed.MinCost(g.Params.Eps)
	}
	if w < g.Params.WMin {
		w = g.Params.WMin
	}
	if w > g.Params.WMax {
		return math.Inf(1) // unreachable within the cost set W
	}
	return w
}

// CostLevel is one entry of a node's discrete cost set: transmitting at
// cost W reaches Node (and, by the broadcast nature of Property 6.1,
// every node with a smaller level).
type CostLevel struct {
	W    float64
	Node tvg.NodeID
}

// DCS returns the discrete cost set W_{i,t}^di of §VI-A: the minimum
// costs to each node adjacent to i at time t, sorted ascending.
// Transmitting at level k's cost informs the nodes of levels 1..k.
// When the cost cache is enabled the returned slice may be shared with
// other callers and must not be modified.
func (g *Graph) DCS(i tvg.NodeID, t float64) []CostLevel {
	if g.cache != nil {
		k := dcsKey{i, t, g.Model, g.Params.Eps}
		if v, ok := g.cache.dcs.Load(k); ok {
			g.cache.dcsHits.Add(1)
			return v.([]CostLevel)
		}
		g.cache.dcsMisses.Add(1)
		out := g.dcsUncached(i, t)
		g.cache.dcs.Store(k, out)
		return out
	}
	return g.dcsUncached(i, t)
}

func (g *Graph) dcsUncached(i tvg.NodeID, t float64) []CostLevel {
	// Per-link costs go through minCostUncached, not MinCost: the DCS
	// cache already memoizes the composite result per (i, t), so writing
	// every (i, j, t) into the fine-grained MinCost map during the sweep
	// is pure map traffic. The ED-function memo inside minCostUncached
	// still deduplicates the expensive channel inversions per segment.
	var out []CostLevel
	for _, j := range g.EverNeighbors(i) {
		w := g.minCostUncached(i, j, t)
		if !math.IsInf(w, 1) {
			out = append(out, CostLevel{w, j})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].W != out[b].W {
			return out[a].W < out[b].W
		}
		return out[a].Node < out[b].Node
	})
	return out
}

// CoveredBy returns the nodes informed when i broadcasts at cost w at
// time t: every adjacent node whose minimum cost is <= w.
func (g *Graph) CoveredBy(i tvg.NodeID, t, w float64) []tvg.NodeID {
	var out []tvg.NodeID
	for _, lvl := range g.DCS(i, t) {
		if lvl.W <= w {
			out = append(out, lvl.Node)
		}
	}
	return out
}
