package tveg

import (
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/interval"
	"repro/internal/tvg"
)

// randomGraphPair builds two identical TVEGs, one with the cost cache
// enabled, from the same seeded contact process.
func randomGraphPair(model Model) (cached, plain *Graph) {
	build := func() *Graph {
		g := New(8, interval.Interval{Start: 0, End: 1000}, 0, DefaultParams(), model)
		rng := rand.New(rand.NewSource(7))
		for c := 0; c < 40; c++ {
			i := tvg.NodeID(rng.Intn(8))
			j := tvg.NodeID(rng.Intn(8))
			if i == j {
				continue
			}
			start := rng.Float64() * 900
			g.AddContact(i, j, interval.Interval{Start: start, End: start + 50 + rng.Float64()*100},
				1+rng.Float64()*20)
		}
		return g
	}
	return build().EnableCostCache(), build()
}

func TestCostCacheAgreesWithUncached(t *testing.T) {
	for _, model := range []Model{Static, RayleighFading, RicianFading, NakagamiFading} {
		cached, plain := randomGraphPair(model)
		for i := 0; i < 8; i++ {
			for _, tt := range []float64{0, 100, 250.5, 499, 777, 950} {
				// Query twice: the second cached call must serve the memo.
				for pass := 0; pass < 2; pass++ {
					a := cached.DCS(tvg.NodeID(i), tt)
					b := plain.DCS(tvg.NodeID(i), tt)
					if len(a) != len(b) {
						t.Fatalf("%v: DCS(%d,%g) lengths %d vs %d", model, i, tt, len(a), len(b))
					}
					for k := range a {
						if a[k] != b[k] {
							t.Fatalf("%v: DCS(%d,%g)[%d] = %+v cached vs %+v plain", model, i, tt, k, a[k], b[k])
						}
					}
					for j := 0; j < 8; j++ {
						if i == j {
							continue
						}
						wa := cached.MinCost(tvg.NodeID(i), tvg.NodeID(j), tt)
						wb := plain.MinCost(tvg.NodeID(i), tvg.NodeID(j), tt)
						if wa != wb && !(isInf(wa) && isInf(wb)) {
							t.Fatalf("%v: MinCost(%d,%d,%g) = %g cached vs %g plain", model, i, j, tt, wa, wb)
						}
					}
				}
			}
		}
	}
}

func isInf(x float64) bool { return x > 1e300 }

func TestCostCacheInvalidatedByAddContact(t *testing.T) {
	g := New(2, interval.Interval{Start: 0, End: 100}, 0, DefaultParams(), Static)
	g.EnableCostCache()
	if w := g.MinCost(0, 1, 10); !isInf(w) {
		t.Fatalf("expected absent edge, got %g", w)
	}
	g.AddContact(0, 1, interval.Interval{Start: 0, End: 100}, 5)
	if w := g.MinCost(0, 1, 10); isInf(w) {
		t.Fatal("cache served stale absent-edge cost after AddContact")
	}
}

func TestCostCacheSharedAcrossModelViews(t *testing.T) {
	g := New(2, interval.Interval{Start: 0, End: 100}, 0, DefaultParams(), RayleighFading)
	g.AddContact(0, 1, interval.Interval{Start: 0, End: 100}, 5)
	g.EnableCostCache()
	view := g.WithModel(Static)
	if !view.CostCacheEnabled() {
		t.Fatal("WithModel view lost the cache")
	}
	wf := g.MinCost(0, 1, 10)
	ws := view.MinCost(0, 1, 10)
	if wf == ws {
		t.Fatalf("fading and static views returned the same cost %g — model missing from cache key?", wf)
	}
	// Static threshold equals β; compare against an uncached twin.
	plain := New(2, interval.Interval{Start: 0, End: 100}, 0, DefaultParams(), Static)
	plain.AddContact(0, 1, interval.Interval{Start: 0, End: 100}, 5)
	if want := plain.MinCost(0, 1, 10); ws != want {
		t.Fatalf("static view cost %g, want %g", ws, want)
	}
}

func TestChannelMemoMatchesDirect(t *testing.T) {
	var memo channel.Memo
	fns := []channel.EDFunction{
		channel.Step{Threshold: 3},
		channel.Rayleigh{Beta: 2.5e-18},
		channel.Rician{K: 5, Beta: 2.5e-18},
		channel.Nakagami{M: 2, Beta: 2.5e-18},
	}
	for _, f := range fns {
		for _, eps := range []float64{0.01, 0.1} {
			direct := f.MinCost(eps)
			if got := memo.MinCost(f, eps); got != direct {
				t.Errorf("%v memo MinCost(%g) = %g, want %g", f, eps, got, direct)
			}
			// second call served from the memo
			if got := memo.MinCost(f, eps); got != direct {
				t.Errorf("%v second memo MinCost(%g) = %g, want %g", f, eps, got, direct)
			}
		}
	}
	if memo.Len() != len(fns)*2 {
		t.Errorf("memo holds %d entries, want %d", memo.Len(), len(fns)*2)
	}
	memo.Reset()
	if memo.Len() != 0 {
		t.Errorf("memo holds %d entries after Reset", memo.Len())
	}
}
