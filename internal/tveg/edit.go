package tveg

import (
	"fmt"

	"repro/internal/interval"
	"repro/internal/tvg"
)

// RemoveContact deletes every point of iv from the presence and channel
// segments of the edge (i, j). Segments partially covered by iv are
// clipped (keeping their distance); a segment strictly containing iv
// splits in two. It reports whether the graph actually changed: no-op
// removals (absent edge, interval disjoint from all contacts) leave the
// version and every cached artifact untouched.
func (g *Graph) RemoveContact(i, j tvg.NodeID, iv interval.Interval) bool {
	if iv.Empty() {
		return false
	}
	if !g.Graph.RemoveContact(i, j, iv) {
		// Presence is the union of the segment intervals, so an
		// unchanged presence means no segment overlaps iv either.
		return false
	}
	k := tvg.MakeEdgeKey(i, j)
	old := g.segs[k]
	out := make([]Segment, 0, len(old)+1)
	for _, s := range old {
		if s.Iv.End <= iv.Start || s.Iv.Start >= iv.End {
			out = append(out, s)
			continue
		}
		if left := (interval.Interval{Start: s.Iv.Start, End: iv.Start}); !left.Empty() {
			out = append(out, Segment{left, s.Dist})
		}
		if right := (interval.Interval{Start: iv.End, End: s.Iv.End}); !right.Empty() {
			out = append(out, Segment{right, s.Dist})
		}
	}
	if len(out) == 0 {
		delete(g.segs, k)
	} else {
		g.segs[k] = out // clipping preserves the sorted order
	}
	if g.cache != nil {
		g.cache.invalidatePair(i, j)
	}
	return true
}

// Segments returns a copy of the channel segments of edge (i, j) in
// start order (nil when the pair has none). Edit generators use it to
// aim removals and retimes at real contacts.
func (g *Graph) Segments(i, j tvg.NodeID) []Segment {
	segs := g.segs[tvg.MakeEdgeKey(i, j)]
	if len(segs) == 0 {
		return nil
	}
	out := make([]Segment, len(segs))
	copy(out, segs)
	return out
}

// RetimeChannel moves the contact of (i, j) whose segment exactly spans
// from to the window to, keeping its distance. Retiming to the identical
// window is a no-op that leaves the version untouched. It fails when no
// segment spans exactly from, when from or to overlaps another segment
// of the pair (segments of a pair must stay disjoint so presence and
// channel state remain aligned), or when to is empty. The reported bool
// is whether the graph changed.
func (g *Graph) RetimeChannel(i, j tvg.NodeID, from, to interval.Interval) (bool, error) {
	if from == to {
		return false, nil
	}
	if to.Empty() {
		return false, fmt.Errorf("tveg: retime (%d,%d) to empty interval %v", i, j, to)
	}
	k := tvg.MakeEdgeKey(i, j)
	dist := 0.0
	found := false
	for _, s := range g.segs[k] {
		if s.Iv == from {
			dist = s.Dist
			found = true
			continue
		}
		if s.Iv.Overlaps(from) {
			return false, fmt.Errorf("tveg: retime (%d,%d): %v overlaps a different contact %v", i, j, from, s.Iv)
		}
		if s.Iv.Overlaps(to) {
			return false, fmt.Errorf("tveg: retime (%d,%d): target %v overlaps contact %v", i, j, to, s.Iv)
		}
	}
	if !found {
		return false, fmt.Errorf("tveg: retime (%d,%d): no contact spans exactly %v", i, j, from)
	}
	// Remove-then-add runs the same mutation code an explicit
	// RemoveContact/AddContact pair would, so a cold replay of the edit
	// sequence reconstructs byte-identical channel state.
	g.RemoveContact(i, j, from)
	g.AddContact(i, j, to, dist)
	return true, nil
}
