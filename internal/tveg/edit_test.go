package tveg

import (
	"math"
	"testing"

	"repro/internal/interval"
)

func TestRemoveContactClipsSegments(t *testing.T) {
	g := New(4, interval.Interval{Start: 0, End: 200}, 0, DefaultParams(), Static)
	g.AddContact(0, 1, interval.Interval{Start: 10, End: 60}, 5)
	g.AddContact(0, 1, interval.Interval{Start: 80, End: 120}, 8)
	v := g.Version()

	if !g.RemoveContact(0, 1, interval.Interval{Start: 30, End: 40}) {
		t.Fatal("RemoveContact must report the change")
	}
	if g.Version() != v+1 {
		t.Errorf("version = %d, want %d", g.Version(), v+1)
	}
	// The first contact splits; both halves keep distance 5.
	for _, probe := range []struct {
		t    float64
		dist float64
		ok   bool
	}{{15, 5, true}, {35, 0, false}, {45, 5, true}, {100, 8, true}} {
		s, ok := g.SegmentAt(0, 1, probe.t)
		if ok != probe.ok {
			t.Errorf("SegmentAt(%g): ok = %v, want %v", probe.t, ok, probe.ok)
			continue
		}
		if ok && s.Dist != probe.dist {
			t.Errorf("SegmentAt(%g): dist = %g, want %g", probe.t, s.Dist, probe.dist)
		}
	}
	// MinCost at a removed time is +Inf; presence and segments agree.
	if w := g.MinCost(0, 1, 35); !math.IsInf(w, 1) {
		t.Errorf("MinCost at removed time = %g, want +Inf", w)
	}
	if g.Rho(0, 1, 35) {
		t.Error("presence must be gone at a removed time")
	}
}

func TestRemoveContactNoOpKeepsVersion(t *testing.T) {
	g := New(4, interval.Interval{Start: 0, End: 200}, 0, DefaultParams(), Static)
	g.AddContact(0, 1, interval.Interval{Start: 10, End: 60}, 5)
	v := g.Version()
	if g.RemoveContact(0, 1, interval.Interval{Start: 100, End: 120}) {
		t.Error("disjoint removal must be a no-op")
	}
	if g.RemoveContact(2, 3, interval.Interval{Start: 0, End: 200}) {
		t.Error("absent-edge removal must be a no-op")
	}
	if g.Version() != v {
		t.Errorf("no-op removal bumped version to %d", g.Version())
	}
}

func TestRetimeChannel(t *testing.T) {
	g := New(4, interval.Interval{Start: 0, End: 200}, 0, DefaultParams(), Static)
	g.AddContact(0, 1, interval.Interval{Start: 10, End: 30}, 5)
	g.AddContact(0, 1, interval.Interval{Start: 50, End: 70}, 8)
	v := g.Version()

	changed, err := g.RetimeChannel(0, 1, interval.Interval{Start: 10, End: 30}, interval.Interval{Start: 100, End: 130})
	if err != nil || !changed {
		t.Fatalf("RetimeChannel = %v, %v, want changed", changed, err)
	}
	if g.Version() <= v {
		t.Error("retime must bump the version")
	}
	if s, ok := g.SegmentAt(0, 1, 110); !ok || s.Dist != 5 {
		t.Errorf("retimed segment at 110: %+v, %v — want dist 5", s, ok)
	}
	if _, ok := g.SegmentAt(0, 1, 20); ok {
		t.Error("old window still has a segment after retime")
	}
	if s, ok := g.SegmentAt(0, 1, 60); !ok || s.Dist != 8 {
		t.Errorf("unrelated segment disturbed: %+v, %v", s, ok)
	}
}

func TestRetimeChannelNoOpAndErrors(t *testing.T) {
	g := New(4, interval.Interval{Start: 0, End: 200}, 0, DefaultParams(), Static)
	g.AddContact(0, 1, interval.Interval{Start: 10, End: 30}, 5)
	g.AddContact(0, 1, interval.Interval{Start: 50, End: 70}, 8)
	v := g.Version()

	// Identical window: no-op, no version bump, no error.
	changed, err := g.RetimeChannel(0, 1, interval.Interval{Start: 10, End: 30}, interval.Interval{Start: 10, End: 30})
	if changed || err != nil {
		t.Errorf("identity retime = %v, %v, want no-op", changed, err)
	}

	cases := []struct {
		name     string
		from, to interval.Interval
	}{
		{"no exact segment", interval.Interval{Start: 10, End: 29}, interval.Interval{Start: 100, End: 120}},
		{"target overlaps other contact", interval.Interval{Start: 10, End: 30}, interval.Interval{Start: 60, End: 80}},
		{"empty target", interval.Interval{Start: 10, End: 30}, interval.Interval{Start: 100, End: 100}},
	}
	for _, c := range cases {
		changed, err := g.RetimeChannel(0, 1, c.from, c.to)
		if changed || err == nil {
			t.Errorf("%s: RetimeChannel = %v, %v, want error", c.name, changed, err)
		}
	}
	if g.Version() != v {
		t.Errorf("failed retimes bumped version to %d", g.Version())
	}
}

func TestRetimeOverlappingFromRejected(t *testing.T) {
	g := New(4, interval.Interval{Start: 0, End: 200}, 0, DefaultParams(), Static)
	g.AddContact(0, 1, interval.Interval{Start: 10, End: 30}, 5)
	g.AddContact(0, 1, interval.Interval{Start: 20, End: 40}, 8)
	// from matches the first segment exactly but overlaps the second:
	// removing its presence would corrupt the overlapping contact, so the
	// retime must refuse.
	if changed, err := g.RetimeChannel(0, 1, interval.Interval{Start: 10, End: 30}, interval.Interval{Start: 100, End: 120}); changed || err == nil {
		t.Errorf("retime of presence-shared segment = %v, %v, want error", changed, err)
	}
}

// TestEditInvalidatesOnlyAffectedCacheEntries pins the selective
// invalidation contract: an edit to (a, b) flushes that pair's MinCost
// and the endpoints' DCS entries and nothing else.
func TestEditInvalidatesOnlyAffectedCacheEntries(t *testing.T) {
	g := New(4, interval.Interval{Start: 0, End: 200}, 0, DefaultParams(), Static)
	g.EnableCostCache()
	g.AddContact(0, 1, interval.Interval{Start: 10, End: 60}, 5)
	g.AddContact(2, 3, interval.Interval{Start: 10, End: 60}, 7)

	// Populate the cache for both pairs.
	w01 := g.MinCost(0, 1, 20)
	w23 := g.MinCost(2, 3, 20)
	g.DCS(0, 20)
	g.DCS(2, 20)
	st, _ := g.CostCacheStats()
	baseMisses := st.MinCostMisses

	// Edit (0,1): its cached cost must be recomputed and change; the
	// (2,3) entries must survive and keep serving hits.
	if !g.RemoveContact(0, 1, interval.Interval{Start: 10, End: 60}) {
		t.Fatal("removal must change the graph")
	}
	if w := g.MinCost(0, 1, 20); !math.IsInf(w, 1) || w == w01 {
		t.Errorf("post-edit MinCost(0,1) = %g, want +Inf (was %g)", w, w01)
	}
	if w := g.MinCost(2, 3, 20); w != w23 {
		t.Errorf("untouched pair's cost changed: %g != %g", w, w23)
	}
	st2, _ := g.CostCacheStats()
	if st2.MinCostMisses != baseMisses+1 {
		t.Errorf("misses went %d -> %d, want exactly one new miss (edited pair only)",
			baseMisses, st2.MinCostMisses)
	}
	if st2.MinCostHits == st.MinCostHits {
		t.Error("untouched pair should have served a cache hit")
	}
	// DCS of an edited endpoint recomputes (0 lost its only neighbor);
	// DCS of an untouched node still hits.
	if lv := g.DCS(0, 20); len(lv) != 0 {
		t.Errorf("DCS(0) after removal = %v, want empty", lv)
	}
	dcsHits := st2.DCSHits
	g.DCS(2, 20)
	st3, _ := g.CostCacheStats()
	if st3.DCSHits != dcsHits+1 {
		t.Error("DCS entry of untouched node was invalidated")
	}
}
