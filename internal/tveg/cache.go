package tveg

import (
	"sync"

	"repro/internal/channel"
	"repro/internal/tvg"
)

// costCache memoizes the ψ cost queries the planners issue repeatedly at
// identical coordinates: MinCost per (edge, time, model, ε) and the full
// discrete cost set per (node, time, model, ε). Both are pure functions
// of the graph's contacts and parameters, so the cache is invisible to
// results; it exists because the auxiliary-graph construction, the greedy
// backbones, and the candidate evaluation all re-query the same DTS
// points, and under Rician/Nakagami models each miss pays a bisection
// over special functions.
//
// Invalidation rules (documented in DESIGN.md):
//   - AddContact purges everything — contacts change ρ_τ and the
//     segments behind every key.
//   - WithModel views share the cache; the model is part of every key.
//   - Params are assumed frozen once planning starts. Mutating
//     Params.Eps is still safe (ε is part of every key); mutating the
//     physical constants mid-flight requires InvalidateCostCache.
type costCache struct {
	minCost sync.Map // minCostKey -> float64
	dcs     sync.Map // dcsKey -> []CostLevel (treat as read-only)
	edMemo  channel.Memo
}

type minCostKey struct {
	i, j  tvg.NodeID
	t     float64
	model Model
	eps   float64
}

type dcsKey struct {
	i     tvg.NodeID
	t     float64
	model Model
	eps   float64
}

func (c *costCache) reset() {
	c.minCost.Range(func(k, _ any) bool { c.minCost.Delete(k); return true })
	c.dcs.Range(func(k, _ any) bool { c.dcs.Delete(k); return true })
	c.edMemo.Reset()
}

// EnableCostCache attaches a memo cache for MinCost/DCS queries to the
// graph and returns the graph for chaining. Views created by WithModel
// before or after share the same cache (the model is part of every key).
// Safe for concurrent readers; idempotent.
func (g *Graph) EnableCostCache() *Graph {
	if g.cache == nil {
		g.cache = &costCache{}
	}
	return g
}

// CostCacheEnabled reports whether the graph memoizes cost queries.
func (g *Graph) CostCacheEnabled() bool { return g.cache != nil }

// InvalidateCostCache empties the cache (for callers that mutate Params
// after planning started; AddContact invalidates automatically).
func (g *Graph) InvalidateCostCache() {
	if g.cache != nil {
		g.cache.reset()
	}
}
