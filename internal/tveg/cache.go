package tveg

import (
	"sync"
	"sync/atomic"

	"repro/internal/channel"
	"repro/internal/tvg"
)

// costCache memoizes the ψ cost queries the planners issue repeatedly at
// identical coordinates: MinCost per (edge, time, model, ε) and the full
// discrete cost set per (node, time, model, ε). Both are pure functions
// of the graph's contacts and parameters, so the cache is invisible to
// results; it exists because the auxiliary-graph construction, the greedy
// backbones, and the candidate evaluation all re-query the same DTS
// points, and under Rician/Nakagami models each miss pays a bisection
// over special functions.
//
// Invalidation rules (documented in DESIGN.md):
//   - AddContact/RemoveContact/RetimeChannel invalidate selectively:
//     an edit to the pair (a, b) deletes the MinCost entries of that
//     pair and the DCS entries of nodes a and b (a node's cost set
//     depends only on its own incident edges), across every model.
//     The ED-function memo survives — it keys on channel parameters
//     (β, ε), not coordinates.
//   - WithModel views share the cache; the model is part of every key.
//   - Params are assumed frozen once planning starts. Mutating
//     Params.Eps is still safe (ε is part of every key); mutating the
//     physical constants mid-flight requires InvalidateCostCache.
type costCache struct {
	minCost sync.Map // minCostKey -> float64
	dcs     sync.Map // dcsKey -> []CostLevel (treat as read-only)
	edMemo  channel.Memo

	// Per-map hit/miss counters feed the observability layer. Purely
	// additive: no planner reads them back, so cached results (and
	// therefore schedules) are unaffected.
	minCostHits, minCostMisses atomic.Int64
	dcsHits, dcsMisses         atomic.Int64
}

type minCostKey struct {
	i, j  tvg.NodeID
	t     float64
	model Model
	eps   float64
}

type dcsKey struct {
	i     tvg.NodeID
	t     float64
	model Model
	eps   float64
}

// invalidatePair deletes every cached result an edit to the edge (a, b)
// could change: the pair's MinCost entries (both orientations, every
// model and ε) and the DCS entries of the two endpoint nodes. Entries of
// other nodes stay — their cost sets depend only on their own incident
// edges. Hit/miss counters keep accumulating across selective
// invalidations so cache-effectiveness metrics span edit sequences.
func (c *costCache) invalidatePair(a, b tvg.NodeID) {
	c.minCost.Range(func(k, _ any) bool {
		mk := k.(minCostKey)
		if (mk.i == a && mk.j == b) || (mk.i == b && mk.j == a) {
			c.minCost.Delete(k)
		}
		return true
	})
	c.dcs.Range(func(k, _ any) bool {
		dk := k.(dcsKey)
		if dk.i == a || dk.i == b {
			c.dcs.Delete(k)
		}
		return true
	})
}

func (c *costCache) reset() {
	c.minCost.Range(func(k, _ any) bool { c.minCost.Delete(k); return true })
	c.dcs.Range(func(k, _ any) bool { c.dcs.Delete(k); return true })
	c.edMemo.Reset()
	c.minCostHits.Store(0)
	c.minCostMisses.Store(0)
	c.dcsHits.Store(0)
	c.dcsMisses.Store(0)
}

// CacheStats is a point-in-time view of the cost cache's effectiveness:
// one hit/miss/size triple per memoized query family.
type CacheStats struct {
	MinCostHits, MinCostMisses, MinCostSize int64
	DCSHits, DCSMisses, DCSSize             int64
	// EDMemo is the underlying MinCost-inversion memo shared by all
	// coordinate keys.
	EDMemo channel.MemoStats
}

// CostCacheStats returns the cache counters; ok is false when the cache
// is disabled. The numbers are individually atomic but not mutually
// consistent under concurrent queries — metrics-grade, by design.
func (g *Graph) CostCacheStats() (CacheStats, bool) {
	c := g.cache
	if c == nil {
		return CacheStats{}, false
	}
	st := CacheStats{
		MinCostHits:   c.minCostHits.Load(),
		MinCostMisses: c.minCostMisses.Load(),
		DCSHits:       c.dcsHits.Load(),
		DCSMisses:     c.dcsMisses.Load(),
		EDMemo:        c.edMemo.Stats(),
	}
	c.minCost.Range(func(_, _ any) bool { st.MinCostSize++; return true })
	c.dcs.Range(func(_, _ any) bool { st.DCSSize++; return true })
	return st, true
}

// EnableCostCache attaches a memo cache for MinCost/DCS queries to the
// graph and returns the graph for chaining. Views created by WithModel
// before or after share the same cache (the model is part of every key).
// Safe for concurrent readers; idempotent.
func (g *Graph) EnableCostCache() *Graph {
	if g.cache == nil {
		g.cache = &costCache{}
	}
	return g
}

// CostCacheEnabled reports whether the graph memoizes cost queries.
func (g *Graph) CostCacheEnabled() bool { return g.cache != nil }

// InvalidateCostCache empties the cache (for callers that mutate Params
// after planning started; AddContact invalidates automatically).
func (g *Graph) InvalidateCostCache() {
	if g.cache != nil {
		g.cache.reset()
	}
}
