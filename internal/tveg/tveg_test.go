package tveg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/channel"
	"repro/internal/interval"
	"repro/internal/tvg"
)

func iv(a, b float64) interval.Interval { return interval.Interval{Start: a, End: b} }

func testParams() Params {
	p := DefaultParams()
	return p
}

func smallGraph(m Model) *Graph {
	g := New(4, iv(0, 100), 1, testParams(), m)
	g.AddContact(0, 1, iv(10, 30), 5)
	g.AddContact(0, 1, iv(60, 70), 20)
	g.AddContact(1, 2, iv(25, 45), 10)
	g.AddContact(2, 3, iv(40, 55), 3)
	return g
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.N0 != 4.32e-21 {
		t.Errorf("N0 = %g", p.N0)
	}
	// 25.9 dB → 10^2.59 ≈ 389.05
	if math.Abs(p.GammaTh-389.04514) > 0.01 {
		t.Errorf("GammaTh = %g, want ≈389.05", p.GammaTh)
	}
	if p.Alpha != 2 || p.Eps != 0.01 {
		t.Errorf("Alpha=%g Eps=%g", p.Alpha, p.Eps)
	}
}

func TestModelString(t *testing.T) {
	for m, want := range map[Model]string{
		Static: "static", RayleighFading: "rayleigh",
		RicianFading: "rician", NakagamiFading: "nakagami",
	} {
		if got := m.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(m), got, want)
		}
	}
	if Static.Fading() {
		t.Error("Static must not be fading")
	}
	if !RayleighFading.Fading() {
		t.Error("Rayleigh must be fading")
	}
}

func TestAddContactRejectsBadDistance(t *testing.T) {
	g := New(2, iv(0, 10), 0, testParams(), Static)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero distance")
		}
	}()
	g.AddContact(0, 1, iv(0, 5), 0)
}

func TestSegmentAt(t *testing.T) {
	g := smallGraph(Static)
	s, ok := g.SegmentAt(0, 1, 15)
	if !ok || s.Dist != 5 {
		t.Errorf("SegmentAt(0,1,15) = %v,%v; want dist 5", s, ok)
	}
	s, ok = g.SegmentAt(0, 1, 65)
	if !ok || s.Dist != 20 {
		t.Errorf("SegmentAt(0,1,65) = %v,%v; want dist 20", s, ok)
	}
	if _, ok := g.SegmentAt(0, 1, 50); ok {
		t.Error("SegmentAt in a gap should fail")
	}
	if _, ok := g.SegmentAt(0, 3, 15); ok {
		t.Error("SegmentAt on absent edge should fail")
	}
}

func TestBeta(t *testing.T) {
	g := smallGraph(RayleighFading)
	want := g.Params.NoiseGamma() * 25 // d=5, α=2
	if got := g.Beta(0, 1, 15); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Beta = %g, want %g", got, want)
	}
	if !math.IsInf(g.Beta(0, 3, 15), 1) {
		t.Error("Beta on absent edge should be +Inf")
	}
}

func TestEDAtStatic(t *testing.T) {
	g := smallGraph(Static)
	ed := g.EDAt(0, 1, 15)
	step, ok := ed.(channel.Step)
	if !ok {
		t.Fatalf("EDAt = %T, want Step", ed)
	}
	want := g.Params.NoiseGamma() * 25
	if math.Abs(step.Threshold-want)/want > 1e-12 {
		t.Errorf("Threshold = %g, want %g", step.Threshold, want)
	}
}

func TestEDAtAbsent(t *testing.T) {
	g := smallGraph(Static)
	if _, ok := g.EDAt(0, 1, 50).(channel.Absent); !ok {
		t.Error("EDAt in gap should be Absent")
	}
	// ρ_τ fails near the contact end even though ρ holds
	if _, ok := g.EDAt(0, 1, 29.5).(channel.Absent); !ok {
		t.Error("EDAt with window overrunning contact should be Absent")
	}
}

func TestEDAtModels(t *testing.T) {
	for m, typ := range map[Model]string{
		RayleighFading: "channel.Rayleigh",
		RicianFading:   "channel.Rician",
		NakagamiFading: "channel.Nakagami",
	} {
		g := smallGraph(m)
		ed := g.EDAt(0, 1, 15)
		got := typeName(ed)
		if got != typ {
			t.Errorf("model %v: EDAt type %s, want %s", m, got, typ)
		}
	}
}

func typeName(v interface{}) string {
	switch v.(type) {
	case channel.Rayleigh:
		return "channel.Rayleigh"
	case channel.Rician:
		return "channel.Rician"
	case channel.Nakagami:
		return "channel.Nakagami"
	case channel.Step:
		return "channel.Step"
	case channel.Absent:
		return "channel.Absent"
	}
	return "?"
}

func TestMinCostStatic(t *testing.T) {
	g := smallGraph(Static)
	want := g.Params.NoiseGamma() * 25
	if got := g.MinCost(0, 1, 15); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("MinCost = %g, want %g", got, want)
	}
	if !math.IsInf(g.MinCost(0, 3, 15), 1) {
		t.Error("MinCost on absent edge should be +Inf")
	}
}

func TestMinCostFadingIsW0(t *testing.T) {
	g := smallGraph(RayleighFading)
	beta := g.Beta(0, 1, 15)
	want := beta / math.Log(1/(1-g.Params.Eps)) // §VI-B formula
	if got := g.MinCost(0, 1, 15); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("MinCost = %g, want w0 = %g", got, want)
	}
}

func TestMinCostRespectsWMax(t *testing.T) {
	p := testParams()
	p.WMax = 1e-18
	g := New(2, iv(0, 10), 0, p, Static)
	g.AddContact(0, 1, iv(0, 10), 1000) // needs huge cost
	if !math.IsInf(g.MinCost(0, 1, 5), 1) {
		t.Error("cost above WMax should be unreachable")
	}
}

func TestDCSOrderingAndCoverage(t *testing.T) {
	g := New(4, iv(0, 10), 0, testParams(), Static)
	g.AddContact(0, 1, iv(0, 10), 10)
	g.AddContact(0, 2, iv(0, 10), 5)
	g.AddContact(0, 3, iv(0, 10), 20)
	dcs := g.DCS(0, 5)
	if len(dcs) != 3 {
		t.Fatalf("DCS len = %d, want 3", len(dcs))
	}
	// sorted by cost: node 2 (d=5), node 1 (d=10), node 3 (d=20)
	wantOrder := []tvg.NodeID{2, 1, 3}
	for k, lvl := range dcs {
		if lvl.Node != wantOrder[k] {
			t.Errorf("DCS[%d].Node = %d, want %d", k, lvl.Node, wantOrder[k])
		}
		if k > 0 && dcs[k].W < dcs[k-1].W {
			t.Error("DCS not sorted by cost")
		}
	}
	// Property 6.1 (broadcast nature): paying level 2's cost covers both
	covered := g.CoveredBy(0, 5, dcs[1].W)
	if len(covered) != 2 || covered[0] != 2 || covered[1] != 1 {
		t.Errorf("CoveredBy(level2) = %v, want [2 1]", covered)
	}
	all := g.CoveredBy(0, 5, dcs[2].W)
	if len(all) != 3 {
		t.Errorf("CoveredBy(level3) = %v, want 3 nodes", all)
	}
}

func TestDCSEmptyWhenIsolated(t *testing.T) {
	g := smallGraph(Static)
	if dcs := g.DCS(3, 15); len(dcs) != 0 {
		t.Errorf("DCS of isolated node = %v, want empty", dcs)
	}
}

func TestQuickMinCostMonotoneInDistance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d1 := 1 + r.Float64()*50
		d2 := d1 + r.Float64()*50
		for _, m := range []Model{Static, RayleighFading, RicianFading, NakagamiFading} {
			g := New(3, iv(0, 10), 0, testParams(), m)
			g.AddContact(0, 1, iv(0, 10), d1)
			g.AddContact(0, 2, iv(0, 10), d2)
			if g.MinCost(0, 1, 5) > g.MinCost(0, 2, 5)+1e-30 {
				return false // farther node must cost at least as much
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickMinCostAchievesEps(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := New(2, iv(0, 10), 0, testParams(), RayleighFading)
		g.AddContact(0, 1, iv(0, 10), 1+r.Float64()*30)
		w := g.MinCost(0, 1, 5)
		ed := g.EDAt(0, 1, 5)
		return ed.FailureProb(w) <= g.Params.Eps*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
