package core

import (
	"context"
	"fmt"

	"repro/internal/cancel"
	"repro/internal/dts"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Greedy is the GREED baseline of §VII: at each step it selects, among
// all informed nodes and their candidate transmission times, the
// transmission that informs the largest number of still-uninformed nodes,
// paying the minimum cost in the relay's discrete cost set sufficient for
// that coverage. It finds local optima where EEDCB optimizes globally.
type Greedy struct {
	DTSOpts dts.Options
	// Obs receives the "greed" phase span and the DTS metrics. Write-only;
	// nil records nothing.
	Obs *obs.Recorder
}

// Name implements Scheduler.
func (Greedy) Name() string { return "GREED" }

// Schedule implements Scheduler.
func (gr Greedy) Schedule(g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	return gr.ScheduleCtx(context.Background(), g, src, t0, deadline)
}

// ScheduleCtx implements ContextScheduler: Schedule with cancellation
// checkpoints through the DTS build and per greedy round.
func (gr Greedy) ScheduleCtx(ctx context.Context, g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	sp := gr.Obs.StartPhase("greed")
	defer sp.End()
	view := plannerView(g, false)
	dOpts := gr.DTSOpts
	if dOpts.Obs == nil {
		dOpts.Obs = gr.Obs
	}
	return greedyBackbone(view, src, t0, deadline, cancel.FromContext(ctx), dOpts)
}

// greedyBackbone runs the coverage-greedy selection on the given view,
// polling tok once per selection round (nil = uncancellable).
func greedyBackbone(view *tveg.Graph, src tvg.NodeID, t0, deadline float64, tok *cancel.Token, dOpts dts.Options) (schedule.Schedule, error) {
	if dOpts.Cancel == nil {
		dOpts.Cancel = tok
	}
	d, err := dts.Build(view.Graph, t0, deadline, dOpts)
	if err != nil {
		return nil, fmt.Errorf("core: GREED: %w", err)
	}
	inf := newInformedSet(view.N(), src, t0)
	var s schedule.Schedule
	for !inf.allInformed() {
		if err := tok.Check(); err != nil {
			return nil, fmt.Errorf("core: GREED: %w", err)
		}
		var best *candidate
		for i := 0; i < view.N(); i++ {
			ni := tvg.NodeID(i)
			if !inf.informed(ni) {
				continue
			}
			for _, t := range transmissionTimes(view, d.Points, ni, inf.time(ni), deadline) {
				if c := bestLevelCandidate(view, inf, ni, t); c != nil && c.betterThan(best) {
					best = c
				}
			}
		}
		if best == nil {
			break // no transmission can inform anyone new
		}
		s = append(s, schedule.Transmission{Relay: best.relay, T: best.t, W: best.w})
		for _, j := range best.newNodes {
			inf.mark(j, best.t+view.Tau())
		}
	}
	s = causalSort(view, s, src, t0)
	if un := inf.uncovered(); len(un) > 0 {
		return s, &IncompleteError{Uncovered: un}
	}
	return s, nil
}
