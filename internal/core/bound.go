package core

import (
	"fmt"
	"math"

	"repro/internal/auxgraph"
	"repro/internal/dts"
	"repro/internal/steiner"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// LowerBound returns a certified lower bound on the optimal TMEDB cost
// of the instance: the most expensive single terminal, i.e.
// max_j dist(source, terminal_j) on the §VI-A auxiliary graph. Any
// feasible schedule must in particular inform the hardest node, and the
// auxiliary-graph shortest path is the cheapest way to do that in
// isolation, so OPT >= LowerBound. Combined with a heuristic's cost it
// yields a per-instance approximation-gap certificate:
//
//	gap <= heuristicCost / LowerBound
//
// without running the exponential exact solver. The bound uses the same
// planner view conventions as EEDCB (static costs; pass a fading view
// for the FR family). Unreachable nodes are skipped and returned.
func LowerBound(g *tveg.Graph, src tvg.NodeID, t0, deadline float64, dOpts dts.Options, aOpts auxgraph.Options) (bound float64, unreachable []tvg.NodeID, err error) {
	view := plannerView(g, g.Model.Fading())
	d, err := dts.Build(view.Graph, t0, deadline, dOpts)
	if err != nil {
		return 0, nil, fmt.Errorf("core: lower bound: %w", err)
	}
	a, err := auxgraph.Build(view, d, aOpts)
	if err != nil {
		return 0, nil, fmt.Errorf("core: lower bound: %w", err)
	}
	solver := steiner.NewSolver(a.G).WithReverse(a.Reverse())
	defer solver.Release()
	root := a.SourceVertex(src)
	for i := 0; i < view.N(); i++ {
		n := tvg.NodeID(i)
		dist := solver.Dist(root, a.Vertex(n, d.Last(n)))
		if math.IsInf(dist, 1) {
			unreachable = append(unreachable, n)
			continue
		}
		if dist > bound {
			bound = dist
		}
	}
	if bound == 0 && len(unreachable) == view.N()-1 {
		return 0, unreachable, fmt.Errorf("core: no node reachable from v%d in [%g,%g]", src, t0, deadline)
	}
	return bound, unreachable, nil
}
