package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/auxgraph"
	"repro/internal/dts"
	"repro/internal/tveg"
)

func TestLowerBoundStar(t *testing.T) {
	g := star(tveg.Static)
	lb, un, err := LowerBound(g, 0, 0, 100, dts.Options{}, auxgraph.Options{})
	if err != nil || len(un) != 0 {
		t.Fatal(err, un)
	}
	// the hardest terminal is the d=15 node: cost N0γ·225
	want := g.Params.NoiseGamma() * 225
	if math.Abs(lb-want)/want > 1e-9 {
		t.Errorf("LB = %g, want %g", lb, want)
	}
	// on the star the bound is tight: EEDCB matches it
	s, err := EEDCB{}.Schedule(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.TotalCost()-lb)/lb > 1e-9 {
		t.Errorf("EEDCB %g should meet the tight bound %g", s.TotalCost(), lb)
	}
}

func TestLowerBoundUnreachable(t *testing.T) {
	g := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(10, 30), 5)
	lb, un, err := LowerBound(g, 0, 0, 100, dts.Options{}, auxgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(un) != 1 || un[0] != 2 {
		t.Errorf("unreachable = %v, want [2]", un)
	}
	if lb <= 0 {
		t.Errorf("LB = %g, want positive (node 1 reachable)", lb)
	}
}

func TestLowerBoundBelowAllAlgorithms(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := randomTrace(r, 8, tveg.Static, 1000)
		lb, _, err := LowerBound(g, 0, 0, 1000, dts.Options{}, auxgraph.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, alg := range []Scheduler{EEDCB{}, Greedy{}, Random{Seed: seed}} {
			s, err := alg.Schedule(g, 0, 0, 1000)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, alg.Name(), err)
			}
			if s.TotalCost() < lb*(1-1e-9) {
				t.Errorf("seed %d: %s cost %g below certified LB %g",
					seed, alg.Name(), s.TotalCost(), lb)
			}
		}
	}
}

func TestLowerBoundConsistentWithExactOnSmall(t *testing.T) {
	// cross-validate: LB <= OPT on instances the exact solver can handle;
	// done indirectly via EEDCB >= LB (above) plus exact tests elsewhere —
	// here check LB monotonicity: a looser deadline cannot raise the LB.
	r := rand.New(rand.NewSource(3))
	g := randomTrace(r, 8, tveg.Static, 1000)
	tight, _, err1 := LowerBound(g, 0, 0, 600, dts.Options{}, auxgraph.Options{})
	loose, _, err2 := LowerBound(g, 0, 0, 1000, dts.Options{}, auxgraph.Options{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if loose > tight*(1+1e-9) {
		t.Errorf("loosening the deadline raised the LB: %g → %g", tight, loose)
	}
}
