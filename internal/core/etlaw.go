package core

import (
	"math"
	"sort"

	"repro/internal/dts"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// normalizeET applies the ET-law (Proposition 5.1) to a schedule on the
// planner view: each transmission moves to its earliest equivalent time —
// max(relay's informed time, start of the adjacency interval containing
// the original time). Within one adjacency interval the relay's neighbor
// set and every edge's channel segment are constant, so coverage and
// sufficiency are preserved. When collapse is true (the wireless
// broadcast advantage holds), transmissions that land on the same
// (relay, time) merge into one at the maximum cost.
//
// Moving transmissions earlier can only help feasibility, and it removes
// the redundant "same interval, different time copy" transmissions that
// tie-broken Steiner paths occasionally produce.
func normalizeET(view *tveg.Graph, s schedule.Schedule, src tvg.NodeID, t0 float64, collapse bool) schedule.Schedule {
	if len(s) == 0 {
		return s
	}
	out := make(schedule.Schedule, len(s))
	copy(out, s)
	for pass := 0; pass < 4; pass++ {
		out = causalSort(view, out, src, t0)
		informed := deterministicInformedTimes(view, out, src, t0)
		changed := false
		for k := range out {
			x := &out[k]
			inf := informed[x.Relay]
			if math.IsInf(inf, 1) {
				continue // uninformed relay (best-effort leftovers): leave as is
			}
			et := dts.EarliestTransmissionTime(view.Graph, x.Relay, inf, x.T)
			if et < x.T-1e-12 {
				x.T = et
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if !collapse {
		return causalSort(view, out, src, t0)
	}
	type key struct {
		relay tvg.NodeID
		t     float64
	}
	best := make(map[key]float64, len(out))
	for _, x := range out {
		k := key{x.Relay, x.T}
		if x.W > best[k] {
			best[k] = x.W
		}
	}
	// Emit the merged rows in sorted key order: CausalSort's total
	// (T, Relay, W) comparator would repair any input order here, but
	// emitting deterministically keeps this function's output
	// well-defined on its own (tmedbvet detrange contract).
	keys := make([]key, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].t != keys[j].t {
			return keys[i].t < keys[j].t
		}
		return keys[i].relay < keys[j].relay
	})
	merged := make(schedule.Schedule, 0, len(keys))
	for _, k := range keys {
		merged = append(merged, schedule.Transmission{Relay: k.relay, T: k.t, W: best[k]})
	}
	return causalSort(view, merged, src, t0)
}

// causalSort delegates to schedule.CausalSort, the shared producer-side
// ordering rule (chronological; equal-time groups in causal order).
func causalSort(view *tveg.Graph, s schedule.Schedule, src tvg.NodeID, t0 float64) schedule.Schedule {
	return schedule.CausalSort(view, s, src, t0)
}

// deterministicInformedTimes propagates informed status through the
// schedule under the planner view's deterministic coverage rule: a
// transmission at cost w informs every adjacent node whose minimum cost
// at that time is <= w.
func deterministicInformedTimes(view *tveg.Graph, ordered schedule.Schedule, src tvg.NodeID, t0 float64) []float64 {
	informed := make([]float64, view.N())
	for i := range informed {
		informed[i] = math.Inf(1)
	}
	informed[src] = t0
	tau := view.Tau()
	for _, x := range ordered {
		if informed[x.Relay] > x.T {
			continue
		}
		for _, j := range view.CoveredBy(x.Relay, x.T, x.W*(1+1e-12)) {
			if t := x.T + tau; t < informed[j] {
				informed[j] = t
			}
		}
	}
	return informed
}
