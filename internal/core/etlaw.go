package core

import (
	"math"
	"sort"

	"repro/internal/dts"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// normalizeET applies the ET-law (Proposition 5.1) to a schedule on the
// planner view: each transmission moves to its earliest equivalent time —
// max(relay's informed time, start of the adjacency interval containing
// the original time). Within one adjacency interval the relay's neighbor
// set and every edge's channel segment are constant, so coverage and
// sufficiency are preserved. When collapse is true (the wireless
// broadcast advantage holds), transmissions that land on the same
// (relay, time) merge into one at the maximum cost.
//
// Moving transmissions earlier can only help feasibility, and it removes
// the redundant "same interval, different time copy" transmissions that
// tie-broken Steiner paths occasionally produce.
func normalizeET(view *tveg.Graph, s schedule.Schedule, src tvg.NodeID, t0 float64, collapse bool) schedule.Schedule {
	if len(s) == 0 {
		return s
	}
	out := make(schedule.Schedule, len(s))
	copy(out, s)
	for pass := 0; pass < 4; pass++ {
		out = causalSort(view, out, src, t0)
		informed := deterministicInformedTimes(view, out, src, t0)
		changed := false
		for k := range out {
			x := &out[k]
			inf := informed[x.Relay]
			if math.IsInf(inf, 1) {
				continue // uninformed relay (best-effort leftovers): leave as is
			}
			et := dts.EarliestTransmissionTime(view.Graph, x.Relay, inf, x.T)
			if et < x.T-1e-12 {
				x.T = et
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if !collapse {
		return causalSort(view, out, src, t0)
	}
	type key struct {
		relay tvg.NodeID
		t     float64
	}
	best := make(map[key]float64, len(out))
	for _, x := range out {
		k := key{x.Relay, x.T}
		if x.W > best[k] {
			best[k] = x.W
		}
	}
	merged := make(schedule.Schedule, 0, len(best))
	for k, w := range best {
		merged = append(merged, schedule.Transmission{Relay: k.relay, T: k.t, W: w})
	}
	return causalSort(view, merged, src, t0)
}

// causalSort orders a schedule chronologically and, within groups of
// equal-time transmissions, causally: a transmission whose relay is
// already informed (deterministically, on the planner view) fires before
// one whose relay still needs a same-instant reception. With τ = 0,
// non-stop journeys place whole relay chains on one timestamp, so the
// within-group order IS the causal order — Eq. 16's tie-break and the
// Monte Carlo executor both depend on it. Ties beyond causality break
// deterministically by (relay, cost).
func causalSort(view *tveg.Graph, s schedule.Schedule, src tvg.NodeID, t0 float64) schedule.Schedule {
	out := make(schedule.Schedule, len(s))
	copy(out, s)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		if out[i].Relay != out[j].Relay {
			return out[i].Relay < out[j].Relay
		}
		return out[i].W < out[j].W
	})
	informedAt := make([]float64, view.N())
	for i := range informedAt {
		informedAt[i] = math.Inf(1)
	}
	informedAt[src] = t0
	tau := view.Tau()
	result := out[:0]
	i := 0
	for i < len(out) {
		j := i
		for j < len(out) && out[j].T == out[i].T {
			j++
		}
		pending := append(schedule.Schedule(nil), out[i:j]...)
		for len(pending) > 0 {
			picked := -1
			for k, x := range pending {
				if informedAt[x.Relay] <= x.T {
					picked = k
					break
				}
			}
			fires := picked != -1
			if !fires {
				picked = 0 // uninformed leftovers keep deterministic order
			}
			x := pending[picked]
			pending = append(pending[:picked], pending[picked+1:]...)
			result = append(result, x)
			if fires {
				for _, nb := range view.CoveredBy(x.Relay, x.T, x.W*(1+1e-12)) {
					if t := x.T + tau; t < informedAt[nb] {
						informedAt[nb] = t
					}
				}
			}
		}
		i = j
	}
	return result
}

// deterministicInformedTimes propagates informed status through the
// schedule under the planner view's deterministic coverage rule: a
// transmission at cost w informs every adjacent node whose minimum cost
// at that time is <= w.
func deterministicInformedTimes(view *tveg.Graph, ordered schedule.Schedule, src tvg.NodeID, t0 float64) []float64 {
	informed := make([]float64, view.N())
	for i := range informed {
		informed[i] = math.Inf(1)
	}
	informed[src] = t0
	tau := view.Tau()
	for _, x := range ordered {
		if informed[x.Relay] > x.T {
			continue
		}
		for _, j := range view.CoveredBy(x.Relay, x.T, x.W*(1+1e-12)) {
			if t := x.T + tau; t < informed[j] {
				informed[j] = t
			}
		}
	}
	return informed
}
