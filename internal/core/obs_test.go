package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/tveg"
)

// TestObsScheduleInvariance pins the schedule-invariance contract of the
// observability layer (DESIGN.md "Observability"): attaching a recorder
// must not change a single byte of any planned schedule. Recording is
// write-only — no planner reads a metric back — so the instrumented and
// uninstrumented runs must serialize identically, across every algorithm,
// channel model, and worker count.
func TestObsScheduleInvariance(t *testing.T) {
	graphs := map[string]*tveg.Graph{
		"static-chain":   chain(tveg.Static),
		"rayleigh-star":  star(tveg.RayleighFading),
		"static-random":  randomTrace(rand.New(rand.NewSource(7)), 10, tveg.Static, 1000),
		"rayleigh-trace": randomTrace(rand.New(rand.NewSource(7)), 8, tveg.RayleighFading, 1000),
	}
	// with builds each scheduler twice: once disabled (nil recorder) and
	// once recording, with multi-worker pools to also cross-check the
	// parallel instrumented paths.
	type pair struct {
		name      string
		plain, on Scheduler
	}
	rec := func() *obs.Recorder { return obs.New() }
	pairs := []pair{
		{"EEDCB", EEDCB{}, EEDCB{Obs: rec(), Workers: 4}},
		{"GREED", Greedy{}, Greedy{Obs: rec()}},
		{"RAND", Random{Seed: 3}, Random{Seed: 3, Obs: rec()}},
		{"FR-EEDCB", FREEDCB{}, FREEDCB{Obs: rec(), Workers: 4}},
		{"FR-GREED", FRGreedy{}, FRGreedy{Obs: rec(), Workers: 4}},
		{"FR-RAND", FRRandom{Seed: 3}, FRRandom{Seed: 3, Obs: rec(), Workers: 4}},
	}
	for gname, g := range graphs {
		for _, p := range pairs {
			want, errPlain := p.plain.Schedule(g, 0, 0, g.Span().End)
			got, errOn := p.on.Schedule(g, 0, 0, g.Span().End)
			if (errPlain == nil) != (errOn == nil) {
				t.Errorf("%s on %s: error mismatch: plain=%v obs=%v", p.name, gname, errPlain, errOn)
				continue
			}
			wb, err := json.Marshal(want)
			if err != nil {
				t.Fatalf("marshal plain: %v", err)
			}
			gb, err := json.Marshal(got)
			if err != nil {
				t.Fatalf("marshal obs: %v", err)
			}
			if !bytes.Equal(wb, gb) {
				t.Errorf("%s on %s: schedule changed with observability on:\nplain: %s\nobs:   %s",
					p.name, gname, wb, gb)
			}
		}
	}
}

// TestObsPhaseTreeCoversPipeline checks that one instrumented EEDCB run
// produces the documented phase tree: eedcb → dts, auxgraph (with its
// dcs-construct child), steiner.
func TestObsPhaseTreeCoversPipeline(t *testing.T) {
	r := obs.New()
	g := randomTrace(rand.New(rand.NewSource(11)), 8, tveg.Static, 1000)
	if _, err := (EEDCB{Obs: r, Workers: 2}).Schedule(g, 0, 0, 1000); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	phases := r.Snapshot(nil).PhaseWallMS()
	for _, want := range []string{
		"eedcb",
		"eedcb/dts",
		"eedcb/auxgraph",
		"eedcb/auxgraph/dcs-construct",
		"eedcb/steiner",
	} {
		if _, ok := phases[want]; !ok {
			t.Errorf("phase %q missing; got %v", want, keys(phases))
		}
	}
}

// TestObsNLPPhases checks the fading pipeline adds the allocation phases.
func TestObsNLPPhases(t *testing.T) {
	r := obs.New()
	g := star(tveg.RayleighFading)
	if _, err := (FREEDCB{Obs: r, Workers: 2}).Schedule(g, 0, 0, 100); err != nil {
		t.Fatalf("schedule: %v", err)
	}
	phases := r.Snapshot(nil).PhaseWallMS()
	for _, want := range []string{
		"fr-eedcb",
		"fr-eedcb/nlp-alloc",
		"fr-eedcb/nlp-alloc/assemble",
		"fr-eedcb/nlp-alloc/solve",
	} {
		if _, ok := phases[want]; !ok {
			t.Errorf("phase %q missing; got %v", want, keys(phases))
		}
	}
}

func keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
