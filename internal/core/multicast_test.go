package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

func TestMulticastCoversOnlyTargets(t *testing.T) {
	// star with one far node: multicasting to {1} must not pay for 3.
	g := star(tveg.Static)
	sch, err := EEDCB{}.Multicast(g, 0, []tvg.NodeID{1}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Params.NoiseGamma() * 25 // only the d=5 neighbor
	if math.Abs(sch.TotalCost()-want)/want > 1e-9 {
		t.Errorf("multicast cost = %g, want %g (target only)", sch.TotalCost(), want)
	}
	// broadcast costs more (it must reach the d=15 node)
	full, err := EEDCB{}.Schedule(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sch.TotalCost() >= full.TotalCost() {
		t.Errorf("multicast %g should undercut broadcast %g", sch.TotalCost(), full.TotalCost())
	}
}

func TestMulticastTargetInformed(t *testing.T) {
	g := chain(tveg.Static)
	sch, err := EEDCB{}.Multicast(g, 0, []tvg.NodeID{2}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	// node 2 needs the relay chain through 1
	if p := schedule.UninformedProb(g, sch, 0, 2, 100); p > g.Params.Eps {
		t.Errorf("target uninformed: p = %g", p)
	}
	if len(sch) != 2 {
		t.Errorf("schedule %v, want the 2-hop chain", sch)
	}
}

func TestMulticastUnreachableTarget(t *testing.T) {
	g := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(10, 30), 5)
	_, err := EEDCB{}.Multicast(g, 0, []tvg.NodeID{2}, 0, 100)
	var ie *IncompleteError
	if !errors.As(err, &ie) || len(ie.Uncovered) != 1 || ie.Uncovered[0] != 2 {
		t.Errorf("want node 2 uncovered, got %v", err)
	}
	// mixed: one reachable, one not → partial schedule + IncompleteError
	sch, err := EEDCB{}.Multicast(g, 0, []tvg.NodeID{1, 2}, 0, 100)
	if !errors.As(err, &ie) {
		t.Fatalf("want IncompleteError, got %v", err)
	}
	if p := schedule.UninformedProb(g, sch, 0, 1, 100); p > g.Params.Eps {
		t.Errorf("reachable target uninformed: p = %g", p)
	}
}

func TestFRMulticastSatisfiesEpsForTargets(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g := randomTrace(r, 7, tveg.RayleighFading, 1000)
	targets := []tvg.NodeID{2, 5}
	sch, err := FREEDCB{}.Multicast(g, 0, targets, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range targets {
		if p := schedule.UninformedProb(g, sch, 0, n, 1000); p > g.Params.Eps*(1+1e-9) {
			t.Errorf("target %d residual failure %g > ε", n, p)
		}
	}
	// At the optimum multicast can never cost more than broadcast; the
	// heuristics can invert by a few percent (different Steiner terminal
	// sets steer different backbones), so only flag gross inversions.
	full, err := FREEDCB{}.Schedule(g, 0, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if sch.TotalCost() > full.TotalCost()*1.5 {
		t.Errorf("multicast %g grossly exceeds broadcast %g", sch.TotalCost(), full.TotalCost())
	}
}

func TestMulticastToSourceOnlyIsFree(t *testing.T) {
	g := chain(tveg.Static)
	sch, err := EEDCB{}.Multicast(g, 0, []tvg.NodeID{0}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sch.TotalCost() != 0 {
		t.Errorf("self multicast cost = %g, want 0", sch.TotalCost())
	}
}

func TestFRAllocatorsAllFeasible(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	g := randomTrace(r, 7, tveg.RayleighFading, 1000)
	costs := map[Allocator]float64{}
	for _, alloc := range []Allocator{AllocGreedy, AllocPenalty, AllocDual} {
		sch, err := FREEDCB{Allocator: alloc}.Schedule(g, 0, 0, 1000)
		if err != nil {
			t.Fatalf("%v: %v", alloc, err)
		}
		if ferr := schedule.CheckFeasible(g, sch, 0, 1000, math.Inf(1)); ferr != nil {
			t.Errorf("%v: %v", alloc, ferr)
		}
		costs[alloc] = sch.TotalCost()
	}
	// penalty and dual both fall back to the greedy solution, so neither
	// may end up more expensive
	if costs[AllocPenalty] > costs[AllocGreedy]*(1+1e-9) {
		t.Errorf("penalty %g worse than greedy %g", costs[AllocPenalty], costs[AllocGreedy])
	}
	if costs[AllocDual] > costs[AllocGreedy]*(1+1e-9) {
		t.Errorf("dual %g worse than greedy %g", costs[AllocDual], costs[AllocGreedy])
	}
}
