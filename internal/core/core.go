// Package core implements the paper's broadcast schedulers (§VI–§VII):
//
//   - EEDCB — the energy-efficient delay-constrained broadcast of §VI-A:
//     DTS → auxiliary graph → directed Steiner approximation.
//   - FR-EEDCB — the fading-resistant variant of §VI-B: EEDCB backbone
//     on fading-aware edge weights, then NLP energy allocation.
//   - GREED / FR-GREED — the coverage-greedy baselines of §VII.
//   - RAND / FR-RAND — the random-relay baselines of §VII.
//
// Every scheduler implements the Scheduler interface and is deterministic
// given its construction parameters (RAND takes an explicit seed).
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/tveg"
	"repro/internal/tvg"

	"repro/internal/schedule"
)

// Scheduler plans a broadcast relay schedule on a TVEG for a broadcast
// from src released at t0 that must finish by the absolute deadline.
type Scheduler interface {
	// Name returns the algorithm's display name as used in §VII.
	Name() string
	// Schedule plans the broadcast. When some nodes cannot possibly be
	// reached within the window, implementations return the best-effort
	// schedule covering the rest together with an *IncompleteError.
	Schedule(g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, error)
}

// ContextScheduler is a Scheduler whose planning honors context
// cancellation and deadlines: ScheduleCtx polls cancellation checkpoints
// at phase boundaries and inside every unbounded loop, returning
// cancel.ErrCancelled / cancel.ErrBudgetExceeded (wrapped) promptly when
// the context dies. A completed ScheduleCtx is byte-identical to
// Schedule — the checkpoints never influence planning decisions. All six
// planners in this package implement it.
type ContextScheduler interface {
	Scheduler
	ScheduleCtx(ctx context.Context, g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, error)
}

// ScheduleWithContext plans under ctx when s supports cancellation and
// falls back to the plain uncancellable Schedule otherwise. A
// context.Background() ctx takes the exact pre-cancellation code path
// either way.
func ScheduleWithContext(ctx context.Context, s Scheduler, g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	if cs, ok := s.(ContextScheduler); ok {
		return cs.ScheduleCtx(ctx, g, src, t0, deadline)
	}
	return s.Schedule(g, src, t0, deadline)
}

// IncompleteError reports nodes that the planner could not cover within
// the delay window. The accompanying schedule is still valid for the
// covered nodes — the delivery-ratio experiments rely on that.
type IncompleteError struct {
	Uncovered []tvg.NodeID
}

func (e *IncompleteError) Error() string {
	return fmt.Sprintf("core: %d node(s) unreachable within the delay window: %v",
		len(e.Uncovered), e.Uncovered)
}

// plannerView returns the graph the algorithm plans on: fading-aware
// algorithms see the true model, the rest assume a static channel.
func plannerView(g *tveg.Graph, fadingAware bool) *tveg.Graph {
	if fadingAware || g.Model == tveg.Static {
		return g
	}
	return g.WithModel(tveg.Static)
}

// informedSet tracks deterministic informed times during backbone
// construction (the planner's view: a transmission at sufficient cost
// informs its targets with certainty).
type informedSet struct {
	at []float64 // informed time per node, +Inf when uninformed
}

func newInformedSet(n int, src tvg.NodeID, t0 float64) *informedSet {
	s := &informedSet{at: make([]float64, n)}
	for i := range s.at {
		s.at[i] = math.Inf(1)
	}
	s.at[src] = t0
	return s
}

func (s *informedSet) informed(i tvg.NodeID) bool   { return !math.IsInf(s.at[i], 1) }
func (s *informedSet) time(i tvg.NodeID) float64    { return s.at[i] }
func (s *informedSet) mark(i tvg.NodeID, t float64) { s.at[i] = math.Min(s.at[i], t) }

func (s *informedSet) allInformed() bool {
	for _, t := range s.at {
		if math.IsInf(t, 1) {
			return false
		}
	}
	return true
}

func (s *informedSet) uncovered() []tvg.NodeID {
	var out []tvg.NodeID
	for i, t := range s.at {
		if math.IsInf(t, 1) {
			out = append(out, tvg.NodeID(i))
		}
	}
	return out
}

// candidate is one evaluated greedy transmission: relay transmits at t
// with cost w, newly informing newNodes.
type candidate struct {
	relay    tvg.NodeID
	t        float64
	w        float64
	newNodes []tvg.NodeID
}

// betterThan orders candidates: more coverage first, then earlier, then
// cheaper, then smaller relay id for determinism.
func (c *candidate) betterThan(o *candidate) bool {
	if o == nil {
		return true
	}
	if len(c.newNodes) != len(o.newNodes) {
		return len(c.newNodes) > len(o.newNodes)
	}
	//tmedbvet:ignore floateq total-order comparator: candidate selection must break ties bitwise or the greedy pick becomes run-dependent
	if c.t != o.t {
		return c.t < o.t
	}
	//tmedbvet:ignore floateq total-order comparator (see above): exact cost ordering is the determinism contract
	if c.w != o.w {
		return c.w < o.w
	}
	return c.relay < o.relay
}

// bestLevelCandidate finds, for relay i at time t, the DCS level
// maximizing newly informed nodes with minimal sufficient cost. It
// returns nil when no level informs anyone new.
func bestLevelCandidate(view *tveg.Graph, inf *informedSet, i tvg.NodeID, t float64) *candidate {
	levels := view.DCS(i, t)
	if len(levels) == 0 {
		return nil
	}
	var best *candidate
	var covered []tvg.NodeID
	for _, lvl := range levels {
		if !inf.informed(lvl.Node) {
			covered = append(covered, lvl.Node)
			cand := &candidate{relay: i, t: t, w: lvl.W,
				newNodes: append([]tvg.NodeID(nil), covered...)}
			if cand.betterThan(best) {
				best = cand
			}
		}
	}
	return best
}

// transmissionTimes enumerates the candidate transmission times of node i
// within [from, deadline-τ], drawn from its DTS points.
func transmissionTimes(view *tveg.Graph, pts [][]float64, i tvg.NodeID, from, deadline float64) []float64 {
	tau := view.Tau()
	var out []float64
	for _, t := range pts[i] {
		if t >= from-schedule.TimeTol && t+tau <= deadline+schedule.TimeTol {
			out = append(out, t)
		}
	}
	return out
}

// sortNodeIDs sorts node ids ascending (determinism helper).
func sortNodeIDs(xs []tvg.NodeID) {
	sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
}
