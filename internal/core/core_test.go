package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/interval"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

func iv(a, b float64) interval.Interval { return interval.Interval{Start: a, End: b} }

// chain builds 0—1—2 with sequential contacts (two hops required).
func chain(m tveg.Model) *tveg.Graph {
	g := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), m)
	g.AddContact(0, 1, iv(10, 30), 5)
	g.AddContact(1, 2, iv(20, 50), 8)
	return g
}

// star builds a hub graph where one broadcast covers everyone.
func star(m tveg.Model) *tveg.Graph {
	g := tveg.New(4, iv(0, 100), 0, tveg.DefaultParams(), m)
	g.AddContact(0, 1, iv(10, 30), 5)
	g.AddContact(0, 2, iv(10, 30), 10)
	g.AddContact(0, 3, iv(10, 30), 15)
	return g
}

// randomTrace builds a connected random contact trace.
func randomTrace(r *rand.Rand, n int, m tveg.Model, horizon float64) *tveg.Graph {
	g := tveg.New(n, iv(0, horizon), 0, tveg.DefaultParams(), m)
	for c := 0; c < 4*n; c++ {
		i, j := tvg.NodeID(r.Intn(n)), tvg.NodeID(r.Intn(n))
		if i == j {
			continue
		}
		s := r.Float64() * horizon * 0.7
		g.AddContact(i, j, iv(s, s+horizon*0.05+r.Float64()*horizon*0.1), 1+r.Float64()*25)
	}
	// guarantee eventual reachability
	for j := 1; j < n; j++ {
		s := horizon*0.8 + r.Float64()*horizon*0.1
		g.AddContact(0, tvg.NodeID(j), iv(s, s+horizon*0.05), 1+r.Float64()*25)
	}
	return g
}

func allSchedulers(seed int64) []Scheduler {
	return []Scheduler{
		EEDCB{},
		Greedy{},
		Random{Seed: seed},
		FREEDCB{},
		FRGreedy{},
		FRRandom{Seed: seed},
	}
}

func TestNames(t *testing.T) {
	want := []string{"EEDCB", "GREED", "RAND", "FR-EEDCB", "FR-GREED", "FR-RAND"}
	for i, s := range allSchedulers(1) {
		if s.Name() != want[i] {
			t.Errorf("Name = %q, want %q", s.Name(), want[i])
		}
	}
}

func TestAllSchedulersFeasibleOnStaticChain(t *testing.T) {
	g := chain(tveg.Static)
	for _, s := range allSchedulers(1) {
		sch, err := s.Schedule(g, 0, 0, 100)
		if err != nil {
			t.Errorf("%s: %v", s.Name(), err)
			continue
		}
		if err := schedule.CheckFeasible(g, sch, 0, 100, math.Inf(1)); err != nil {
			t.Errorf("%s: infeasible: %v (%v)", s.Name(), err, sch)
		}
	}
}

func TestAllSchedulersFeasibleOnFadingChain(t *testing.T) {
	g := chain(tveg.RayleighFading)
	// Only FR variants must satisfy the fading ε; non-FR plan assuming a
	// static channel and will generally miss the fading ε target.
	for _, s := range []Scheduler{FREEDCB{}, FRGreedy{}, FRRandom{Seed: 2}} {
		sch, err := s.Schedule(g, 0, 0, 100)
		if err != nil {
			t.Errorf("%s: %v", s.Name(), err)
			continue
		}
		if err := schedule.CheckFeasible(g, sch, 0, 100, math.Inf(1)); err != nil {
			t.Errorf("%s: infeasible: %v (%v)", s.Name(), err, sch)
		}
	}
}

func TestNonFRSchedulersUnderestimateFading(t *testing.T) {
	g := chain(tveg.RayleighFading)
	sch, err := EEDCB{}.Schedule(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	// planned on static assumptions: under fading ε=0.01 is missed
	if err := schedule.CheckFeasible(g, sch, 0, 100, math.Inf(1)); err == nil {
		t.Error("static-planned schedule should miss the fading ε target")
	}
	// and it must be cheaper than the FR schedule
	fr, err := FREEDCB{}.Schedule(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sch.TotalCost() >= fr.TotalCost() {
		t.Errorf("EEDCB cost %g should be below FR-EEDCB cost %g",
			sch.TotalCost(), fr.TotalCost())
	}
}

func TestEEDCBUsesBroadcastAdvantageOnStar(t *testing.T) {
	g := star(tveg.Static)
	sch, err := EEDCB{}.Schedule(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sch) != 1 {
		t.Errorf("EEDCB on star = %v, want one broadcast", sch)
	}
	want := g.Params.NoiseGamma() * 225
	if math.Abs(sch.TotalCost()-want)/want > 1e-9 {
		t.Errorf("cost = %g, want %g", sch.TotalCost(), want)
	}
}

func TestGreedyMatchesEEDCBOnStar(t *testing.T) {
	g := star(tveg.Static)
	sch, err := Greedy{}.Schedule(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	// one max-coverage transmission is also the greedy choice
	if len(sch) != 1 {
		t.Errorf("GREED on star = %v, want one broadcast", sch)
	}
}

func TestEEDCBBeatsBaselinesInAggregate(t *testing.T) {
	// Fig. 5 shape: EEDCB < GREED < RAND on average. Individual seeds
	// can flip (all three are heuristics), so compare sums.
	var sumE, sumG, sumR float64
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := randomTrace(r, 8, tveg.Static, 1000)
		e, err1 := EEDCB{}.Schedule(g, 0, 0, 1000)
		gr, err2 := Greedy{}.Schedule(g, 0, 0, 1000)
		rd, err3 := Random{Seed: seed}.Schedule(g, 0, 0, 1000)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("seed %d: %v %v %v", seed, err1, err2, err3)
		}
		sumE += e.TotalCost()
		sumG += gr.TotalCost()
		sumR += rd.TotalCost()
	}
	if sumE > sumG {
		t.Errorf("aggregate EEDCB %g > GREED %g", sumE, sumG)
	}
	if sumG > sumR {
		t.Errorf("aggregate GREED %g > RAND %g", sumG, sumR)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomTrace(r, 8, tveg.Static, 1000)
	a, errA := Random{Seed: 7}.Schedule(g, 0, 0, 1000)
	b, errB := Random{Seed: 7}.Schedule(g, 0, 0, 1000)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed produced different schedules: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("tx %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestIncompleteWhenNodeIsolated(t *testing.T) {
	g := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(10, 30), 5) // node 2 isolated
	for _, s := range allSchedulers(3) {
		sch, err := s.Schedule(g, 0, 0, 100)
		var ie *IncompleteError
		if !errors.As(err, &ie) {
			t.Errorf("%s: want IncompleteError, got %v", s.Name(), err)
			continue
		}
		if len(ie.Uncovered) != 1 || ie.Uncovered[0] != 2 {
			t.Errorf("%s: Uncovered = %v, want [2]", s.Name(), ie.Uncovered)
		}
		// best-effort schedule still informs node 1
		if p := schedule.UninformedProb(g, sch, 0, 1, 100); p > g.Params.Eps {
			t.Errorf("%s: best-effort schedule leaves node 1 uninformed (p=%g)", s.Name(), p)
		}
	}
}

func TestFRSchedulesSatisfyEpsOnRandomFadingTraces(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := randomTrace(r, 7, tveg.RayleighFading, 1000)
		for _, s := range []Scheduler{FREEDCB{}, FRGreedy{}, FRRandom{Seed: seed}} {
			sch, err := s.Schedule(g, 0, 0, 1000)
			if err != nil {
				t.Errorf("seed %d %s: %v", seed, s.Name(), err)
				continue
			}
			if err := schedule.CheckFeasible(g, sch, 0, 1000, math.Inf(1)); err != nil {
				t.Errorf("seed %d %s: %v", seed, s.Name(), err)
			}
		}
	}
}

func TestFREEDCBPenaltyNotWorseThanGreedyAllocator(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := randomTrace(r, 6, tveg.RayleighFading, 800)
	a, errA := FREEDCB{}.Schedule(g, 0, 0, 800)
	b, errB := FREEDCB{UsePenalty: true}.Schedule(g, 0, 0, 800)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if b.TotalCost() > a.TotalCost()*(1+1e-9) {
		t.Errorf("penalty allocation %g worse than greedy %g", b.TotalCost(), a.TotalCost())
	}
}

func TestTighterDeadlineNeverCheaper(t *testing.T) {
	// Fig. 4 shape: energy is non-increasing in the delay constraint.
	r := rand.New(rand.NewSource(13))
	g := randomTrace(r, 8, tveg.Static, 1000)
	prev := math.Inf(1)
	for _, deadline := range []float64{1000, 600} {
		sch, err := EEDCB{}.Schedule(g, 0, 0, deadline)
		if onlyIncomplete(err) != nil {
			t.Fatal(err)
		}
		if err != nil {
			continue // partial coverage: not comparable
		}
		cost := sch.TotalCost()
		if cost > prev*1.001 && deadline > 600 {
			t.Errorf("deadline %g cost %g exceeds looser-deadline cost %g", deadline, cost, prev)
		}
		prev = cost
	}
	_ = prev
}

func TestEEDCBLevelsProduceFeasibleSchedules(t *testing.T) {
	g := chain(tveg.Static)
	for _, level := range []int{1, 2, 3} {
		sch, err := EEDCB{Level: level}.Schedule(g, 0, 0, 100)
		if err != nil {
			t.Errorf("level %d: %v", level, err)
			continue
		}
		if err := schedule.CheckFeasible(g, sch, 0, 100, math.Inf(1)); err != nil {
			t.Errorf("level %d: %v", level, err)
		}
	}
}
