package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/auxgraph"
	"repro/internal/cancel"
	"repro/internal/dts"
	"repro/internal/nlp"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// The fading-resistant schedulers of §VI-B and §VII decompose TMEDB-R
// into broadcast backbone selection (reusing the static-channel machinery
// with fading-aware edge weights w0 such that φ(w0) = ε) and optimal
// energy allocation (the NLP of Eq. 14–17).

// Allocator selects the NLP solver for the energy allocation step.
type Allocator int

const (
	// AllocGreedy is the greedy constraint-fixing pass with coordinate
	// descent (the default).
	AllocGreedy Allocator = iota
	// AllocPenalty is the penalty/projected-gradient refiner.
	AllocPenalty
	// AllocDual is the Lagrangian dual decomposition with subgradient
	// ascent.
	AllocDual
)

func (a Allocator) String() string {
	switch a {
	case AllocGreedy:
		return "greedy"
	case AllocPenalty:
		return "penalty"
	case AllocDual:
		return "dual"
	default:
		return "allocator(?)"
	}
}

// FREEDCB is FR-EEDCB: EEDCB backbone on the fading view + NLP.
type FREEDCB struct {
	Level int
	// Workers bounds the solver-internal worker pools (backbone
	// construction and per-node NLP constraint assembly). Schedules are
	// byte-identical for every value; <= 1 (the zero value) is serial.
	Workers int
	DTSOpts dts.Options
	AuxOpts auxgraph.Options
	// Allocator selects the NLP solver (ablation hook).
	Allocator Allocator
	// UsePenalty is a deprecated alias for Allocator = AllocPenalty.
	UsePenalty bool
	// Obs receives the phase tree (fr-eedcb → dts/auxgraph/steiner/
	// nlp-alloc) and per-stage metrics. Write-only; nil records nothing.
	Obs *obs.Recorder
}

func (f FREEDCB) allocator() Allocator {
	if f.UsePenalty {
		return AllocPenalty
	}
	return f.Allocator
}

// Name implements Scheduler.
func (FREEDCB) Name() string { return "FR-EEDCB" }

func (f FREEDCB) level() int {
	if f.Level <= 0 {
		return 2
	}
	return f.Level
}

// Schedule implements Scheduler.
func (f FREEDCB) Schedule(g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	return f.ScheduleCtx(context.Background(), g, src, t0, deadline)
}

// ScheduleCtx implements ContextScheduler: Schedule with cancellation
// checkpoints through backbone selection and the NLP allocation.
func (f FREEDCB) ScheduleCtx(ctx context.Context, g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	sp := f.Obs.StartPhase("fr-eedcb")
	defer sp.End()
	tok := cancel.FromContext(ctx)
	view := plannerView(g, true)
	backbone, incErr := solveViaAux(view, src, nil, t0, deadline, f.level(), f.Workers, tok, f.DTSOpts, f.AuxOpts, f.Obs)
	if bad := onlyIncomplete(incErr); bad != nil {
		return nil, bad
	}
	return allocateEnergy(g, backbone, src, nil, incErr, f.allocator(), f.Workers, tok, f.Obs)
}

// Multicast plans a fading-resistant multicast to the target subset:
// backbone selection restricted to the targets, then NLP allocation with
// residual-failure constraints only for targets and backbone relays.
func (f FREEDCB) Multicast(g *tveg.Graph, src tvg.NodeID, targets []tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	return f.MulticastCtx(context.Background(), g, src, targets, t0, deadline)
}

// MulticastCtx is Multicast with cancellation checkpoints (see
// ScheduleCtx).
func (f FREEDCB) MulticastCtx(ctx context.Context, g *tveg.Graph, src tvg.NodeID, targets []tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	sp := f.Obs.StartPhase("fr-eedcb")
	defer sp.End()
	tok := cancel.FromContext(ctx)
	view := plannerView(g, true)
	backbone, incErr := solveViaAux(view, src, targets, t0, deadline, f.level(), f.Workers, tok, f.DTSOpts, f.AuxOpts, f.Obs)
	if bad := onlyIncomplete(incErr); bad != nil {
		return nil, bad
	}
	return allocateEnergy(g, backbone, src, targets, incErr, f.allocator(), f.Workers, tok, f.Obs)
}

// FRGreedy is FR-GREED: the coverage-greedy backbone on the fading view
// + NLP energy allocation.
type FRGreedy struct {
	// Workers bounds the NLP constraint-assembly worker pool (<= 1
	// serial; results identical for every value).
	Workers int
	DTSOpts dts.Options
	// Allocator selects the NLP solver (ablation hook).
	Allocator Allocator
	// UsePenalty is a deprecated alias for Allocator = AllocPenalty.
	UsePenalty bool
	// Obs receives the phase tree and metrics; nil records nothing.
	Obs *obs.Recorder
}

func (f FRGreedy) allocator() Allocator {
	if f.UsePenalty {
		return AllocPenalty
	}
	return f.Allocator
}

// Name implements Scheduler.
func (FRGreedy) Name() string { return "FR-GREED" }

// Schedule implements Scheduler.
func (f FRGreedy) Schedule(g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	return f.ScheduleCtx(context.Background(), g, src, t0, deadline)
}

// ScheduleCtx implements ContextScheduler: Schedule with cancellation
// checkpoints through backbone selection and the NLP allocation.
func (f FRGreedy) ScheduleCtx(ctx context.Context, g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	sp := f.Obs.StartPhase("fr-greed")
	defer sp.End()
	tok := cancel.FromContext(ctx)
	view := plannerView(g, true)
	dOpts := f.DTSOpts
	if dOpts.Obs == nil {
		dOpts.Obs = f.Obs
	}
	backbone, incErr := greedyBackbone(view, src, t0, deadline, tok, dOpts)
	if bad := onlyIncomplete(incErr); bad != nil {
		return nil, bad
	}
	return allocateEnergy(g, backbone, src, nil, incErr, f.allocator(), f.Workers, tok, f.Obs)
}

// FRRandom is FR-RAND: the random-relay backbone on the fading view +
// NLP energy allocation.
type FRRandom struct {
	Seed int64
	// Workers bounds the NLP constraint-assembly worker pool (<= 1
	// serial; results identical for every value).
	Workers int
	DTSOpts dts.Options
	// Allocator selects the NLP solver (ablation hook).
	Allocator Allocator
	// UsePenalty is a deprecated alias for Allocator = AllocPenalty.
	UsePenalty bool
	// Obs receives the phase tree and metrics; nil records nothing.
	Obs *obs.Recorder
}

func (f FRRandom) allocator() Allocator {
	if f.UsePenalty {
		return AllocPenalty
	}
	return f.Allocator
}

// Name implements Scheduler.
func (FRRandom) Name() string { return "FR-RAND" }

// Schedule implements Scheduler.
func (f FRRandom) Schedule(g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	return f.ScheduleCtx(context.Background(), g, src, t0, deadline)
}

// ScheduleCtx implements ContextScheduler: Schedule with cancellation
// checkpoints through backbone selection and the NLP allocation.
func (f FRRandom) ScheduleCtx(ctx context.Context, g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	sp := f.Obs.StartPhase("fr-rand")
	defer sp.End()
	tok := cancel.FromContext(ctx)
	view := plannerView(g, true)
	dOpts := f.DTSOpts
	if dOpts.Obs == nil {
		dOpts.Obs = f.Obs
	}
	backbone, incErr := randomBackbone(view, src, t0, deadline, f.Seed, tok, dOpts)
	if bad := onlyIncomplete(incErr); bad != nil {
		return nil, bad
	}
	return allocateEnergy(g, backbone, src, nil, incErr, f.allocator(), f.Workers, tok, f.Obs)
}

// onlyIncomplete passes through nil and *IncompleteError, returning any
// other error unchanged so callers can fail fast.
func onlyIncomplete(err error) error {
	if err == nil {
		return nil
	}
	var ie *IncompleteError
	if errors.As(err, &ie) {
		return nil
	}
	return err
}

// allocateEnergy solves the optimal energy allocation NLP (Eq. 14–17)
// for a fixed backbone [R, T] on the true channel model of g, returning
// the schedule with the allocated cost vector W. Coverage constraints
// (Eq. 15) apply to targets (nil = every node); relay-informed
// constraints (Eq. 16) always apply to every backbone relay. The
// incoming incomplete error (uncovered nodes, if any) is propagated:
// uncovered nodes get no coverage constraint.
//
// Per-node constraint assembly — the ψ-heavy part, one ED query per
// (backbone entry, node) pair — fans out across the worker pool; terms
// are then added to the problem in the original node order, so the NLP
// instance is identical for every worker count.
func allocateEnergy(g *tveg.Graph, backbone schedule.Schedule, src tvg.NodeID, targets []tvg.NodeID, incErr error, alloc Allocator, workers int, tok *cancel.Token, rec *obs.Recorder) (schedule.Schedule, error) {
	if len(backbone) == 0 {
		return backbone, incErr
	}
	sp := rec.StartPhase("nlp-alloc")
	defer sp.End()
	uncov := make(map[tvg.NodeID]bool)
	if incErr != nil {
		var ie *IncompleteError
		if errors.As(incErr, &ie) {
			for _, u := range ie.Uncovered {
				uncov[u] = true
			}
		} else {
			return nil, incErr
		}
	}
	eps := g.Params.Eps
	p := nlp.NewProblem(len(backbone), g.Params.WMin, g.Params.WMax)

	if targets == nil {
		targets = make([]tvg.NodeID, g.N())
		for i := range targets {
			targets[i] = tvg.NodeID(i)
		}
	}
	// Eq. 15: every covered target must end up informed. The per-target
	// term lists depend only on the backbone and the graph, never on
	// each other, so they build in parallel; skip/degrade decisions
	// happen in the serial ordering pass below.
	asmSpan := rec.StartPhase("assemble")
	asmPool := rec.Pool("nlp.assemble")
	coverTerms := make([][]nlp.Term, len(targets))
	asmErr := parallel.ForEachPoolCancel(asmPool, tok, workers, len(targets), func(ti int) {
		nj := targets[ti]
		if nj == src || uncov[nj] {
			return
		}
		var terms []nlp.Term
		for k, x := range backbone {
			if x.Relay == nj || !g.RhoTau(x.Relay, nj, x.T) {
				continue
			}
			terms = append(terms, nlp.Term{Var: k, ED: g.EDAt(x.Relay, nj, x.T)})
		}
		coverTerms[ti] = terms
	})
	if asmErr != nil {
		asmSpan.End()
		return nil, fmt.Errorf("core: energy allocation: %w", asmErr)
	}
	for ti, nj := range targets {
		if nj == src || uncov[nj] {
			continue
		}
		if len(coverTerms[ti]) == 0 {
			// The backbone never reaches this node: degrade to
			// incomplete coverage rather than failing the whole NLP.
			uncov[nj] = true
			continue
		}
		p.AddConstraint(eps, coverTerms[ti]...)
	}

	// Eq. 16: every relay must be informed before (or exactly when, for
	// τ = 0 non-stop chains) it transmits. Informing transmissions are
	// those whose packet has arrived by the relay's departure
	// (schedule.Informs: t_k + τ <= t_j, same-instant ones in schedule
	// order) — a transmission still in flight cannot have informed the
	// relay, so it must not appear in the constraint.
	tau := g.Tau()
	relayTerms := make([][]nlp.Term, len(backbone))
	asmErr = parallel.ForEachPoolCancel(asmPool, tok, workers, len(backbone), func(j int) {
		xj := backbone[j]
		if xj.Relay == src {
			return
		}
		var terms []nlp.Term
		for k, xk := range backbone {
			if k == j || xk.Relay == xj.Relay {
				continue
			}
			if !schedule.Informs(xk.T, tau, xj.T, k, j) {
				continue
			}
			if !g.RhoTau(xk.Relay, xj.Relay, xk.T) {
				continue
			}
			terms = append(terms, nlp.Term{Var: k, ED: g.EDAt(xk.Relay, xj.Relay, xk.T)})
		}
		relayTerms[j] = terms
	})
	if asmErr != nil {
		asmSpan.End()
		return nil, fmt.Errorf("core: energy allocation: %w", asmErr)
	}
	for j, xj := range backbone {
		if xj.Relay == src {
			continue
		}
		if len(relayTerms[j]) == 0 {
			asmSpan.End()
			return nil, fmt.Errorf("core: backbone relay v%d transmits at %g without any informing transmission", xj.Relay, xj.T)
		}
		p.AddConstraint(eps, relayTerms[j]...)
	}
	asmSpan.SetInt("variables", p.NumVars)
	asmSpan.SetInt("constraints", len(p.Constraints))
	asmSpan.End()

	solveSpan := rec.StartPhase("solve")
	solveSpan.SetStr("allocator", alloc.String())
	p.Obs = rec
	p.Cancel = tok
	var (
		w   []float64
		err error
	)
	switch alloc {
	case AllocPenalty:
		w, err = nlp.SolvePenalty(p, nlp.PenaltyOptions{})
	case AllocDual:
		w, err = nlp.SolveDual(p, nlp.DualOptions{})
	default:
		w, err = nlp.SolveGreedy(p)
	}
	solveSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: energy allocation: %w", err)
	}
	out := make(schedule.Schedule, 0, len(backbone))
	for k, x := range backbone {
		if w[k] == 0 {
			// The allocator decided other transmissions already cover
			// this one's targets (φ(0) = 1 contributes nothing), so the
			// transmission is pure overhead.
			continue
		}
		x.W = w[k]
		out = append(out, x)
	}
	if len(uncov) > 0 {
		ie := &IncompleteError{}
		//tmedbvet:ignore detrange uncovered-node set is sorted by sortNodeIDs immediately below, a total order on ids
		for u := range uncov {
			ie.Uncovered = append(ie.Uncovered, u)
		}
		sortNodeIDs(ie.Uncovered)
		return out, ie
	}
	return out, nil
}
