package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/cancel"
	"repro/internal/dts"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Random is the RAND baseline of §VII: at each step it picks a random
// informed node as relay (among those that can still inform someone new),
// transmitting at the earliest time it has an uninformed neighbor with
// the minimum cost level of its discrete cost set that reaches at least
// one uninformed node.
type Random struct {
	// Seed drives relay selection; runs are deterministic per seed.
	Seed    int64
	DTSOpts dts.Options
	// Obs receives the "rand" phase span and the DTS metrics. Write-only;
	// nil records nothing.
	Obs *obs.Recorder
}

// Name implements Scheduler.
func (Random) Name() string { return "RAND" }

// Schedule implements Scheduler.
func (r Random) Schedule(g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	return r.ScheduleCtx(context.Background(), g, src, t0, deadline)
}

// ScheduleCtx implements ContextScheduler: Schedule with cancellation
// checkpoints through the DTS build and per selection round.
func (r Random) ScheduleCtx(ctx context.Context, g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	sp := r.Obs.StartPhase("rand")
	defer sp.End()
	view := plannerView(g, false)
	dOpts := r.DTSOpts
	if dOpts.Obs == nil {
		dOpts.Obs = r.Obs
	}
	return randomBackbone(view, src, t0, deadline, r.Seed, cancel.FromContext(ctx), dOpts)
}

// randomBackbone runs the random-relay selection on the given view,
// polling tok once per selection round (nil = uncancellable).
func randomBackbone(view *tveg.Graph, src tvg.NodeID, t0, deadline float64, seed int64, tok *cancel.Token, dOpts dts.Options) (schedule.Schedule, error) {
	rng := rand.New(rand.NewSource(seed))
	if dOpts.Cancel == nil {
		dOpts.Cancel = tok
	}
	d, err := dts.Build(view.Graph, t0, deadline, dOpts)
	if err != nil {
		return nil, fmt.Errorf("core: RAND: %w", err)
	}
	inf := newInformedSet(view.N(), src, t0)
	var s schedule.Schedule
	for !inf.allInformed() {
		if err := tok.Check(); err != nil {
			return nil, fmt.Errorf("core: RAND: %w", err)
		}
		// Collect informed nodes with any productive transmission and
		// their earliest such opportunity.
		var cands []*candidate
		for i := 0; i < view.N(); i++ {
			ni := tvg.NodeID(i)
			if !inf.informed(ni) {
				continue
			}
			for _, t := range transmissionTimes(view, d.Points, ni, inf.time(ni), deadline) {
				c := minimalNewCoverage(view, inf, ni, t)
				if c != nil {
					cands = append(cands, c)
					break // earliest productive time for this relay
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		pick := cands[rng.Intn(len(cands))]
		s = append(s, schedule.Transmission{Relay: pick.relay, T: pick.t, W: pick.w})
		for _, j := range pick.newNodes {
			inf.mark(j, pick.t+view.Tau())
		}
	}
	s = causalSort(view, s, src, t0)
	if un := inf.uncovered(); len(un) > 0 {
		return s, &IncompleteError{Uncovered: un}
	}
	return s, nil
}

// minimalNewCoverage returns the cheapest DCS level of (i, t) that
// informs at least one new node, or nil when none does. All informed
// nodes covered along the way ride along in newNodes (they are already
// informed, so newNodes holds only the uninformed ones).
func minimalNewCoverage(view *tveg.Graph, inf *informedSet, i tvg.NodeID, t float64) *candidate {
	levels := view.DCS(i, t)
	var news []tvg.NodeID
	for _, lvl := range levels {
		if !inf.informed(lvl.Node) {
			news = append(news, lvl.Node)
			return &candidate{relay: i, t: t, w: lvl.W, newNodes: news}
		}
	}
	return nil
}
