package core

import (
	"context"
	"fmt"

	"repro/internal/auxgraph"
	"repro/internal/cancel"
	"repro/internal/dts"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/steiner"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// EEDCB is the energy-efficient delay-constrained broadcast of §VI-A:
// build the discrete time set, map the instance onto the auxiliary graph,
// and run the directed Steiner approximation. On a fading graph the
// planner assumes a static channel (it is the non-fading-aware
// algorithm); FREEDCB is the fading-resistant variant.
type EEDCB struct {
	// Level is the recursive-greedy level ℓ (>= 1). Level 2 is the
	// default trade-off; level 1 degrades to the shortest-path-tree
	// heuristic.
	Level int
	// Workers bounds the solver-internal worker pools (DTS filtering,
	// auxiliary-graph weight construction, Steiner candidate scan).
	// Schedules are byte-identical for every value; <= 1 (the zero
	// value) runs the fully serial paths.
	Workers int
	// DTSOpts and AuxOpts tune the reduction (ablation hooks).
	DTSOpts dts.Options
	AuxOpts auxgraph.Options
	// Obs receives the phase tree (eedcb → dts/auxgraph/steiner) and the
	// per-stage metrics. Recording is write-only — planned schedules are
	// byte-identical with or without it. Nil records nothing.
	Obs *obs.Recorder
}

// Name implements Scheduler.
func (e EEDCB) Name() string { return "EEDCB" }

func (e EEDCB) level() int {
	if e.Level <= 0 {
		return 2
	}
	return e.Level
}

// Schedule implements Scheduler.
func (e EEDCB) Schedule(g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	return e.ScheduleCtx(context.Background(), g, src, t0, deadline)
}

// ScheduleCtx implements ContextScheduler: Schedule with cancellation
// checkpoints through every pipeline stage (DTS, auxiliary graph,
// Steiner). A background context takes the exact uncancellable path.
func (e EEDCB) ScheduleCtx(ctx context.Context, g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	sp := e.Obs.StartPhase("eedcb")
	defer sp.End()
	view := plannerView(g, false)
	return solveViaAux(view, src, nil, t0, deadline, e.level(), e.Workers, cancel.FromContext(ctx), e.DTSOpts, e.AuxOpts, e.Obs)
}

// Multicast plans a minimum-energy delay-constrained multicast: only the
// target nodes must be informed by the deadline. The §VI-A reduction is
// literally the minimum-energy multicast tree problem, so the pipeline is
// identical with a restricted terminal set.
func (e EEDCB) Multicast(g *tveg.Graph, src tvg.NodeID, targets []tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	return e.MulticastCtx(context.Background(), g, src, targets, t0, deadline)
}

// MulticastCtx is Multicast with cancellation checkpoints (see
// ScheduleCtx).
func (e EEDCB) MulticastCtx(ctx context.Context, g *tveg.Graph, src tvg.NodeID, targets []tvg.NodeID, t0, deadline float64) (schedule.Schedule, error) {
	sp := e.Obs.StartPhase("eedcb")
	defer sp.End()
	view := plannerView(g, false)
	return solveViaAux(view, src, targets, t0, deadline, e.level(), e.Workers, cancel.FromContext(ctx), e.DTSOpts, e.AuxOpts, e.Obs)
}

// solveViaAux runs the §VI-A pipeline on the given planner view for the
// target set (nil = broadcast to every node). It covers as many targets
// as are reachable, reporting the rest through *IncompleteError. workers
// bounds every stage's internal pool; explicit per-stage Workers in the
// option structs win over the scheduler-level knob, and likewise an
// explicit per-stage Cancel wins over tok (nil tok = uncancellable).
func solveViaAux(view *tveg.Graph, src tvg.NodeID, targets []tvg.NodeID, t0, deadline float64, level, workers int, tok *cancel.Token, dOpts dts.Options, aOpts auxgraph.Options, rec *obs.Recorder) (schedule.Schedule, error) {
	if dOpts.Workers == 0 {
		dOpts.Workers = workers
	}
	if aOpts.Workers == 0 {
		aOpts.Workers = workers
	}
	if dOpts.Obs == nil {
		dOpts.Obs = rec
	}
	if aOpts.Obs == nil {
		aOpts.Obs = rec
	}
	if dOpts.Cancel == nil {
		dOpts.Cancel = tok
	}
	if aOpts.Cancel == nil {
		aOpts.Cancel = tok
	}
	d, err := dts.Build(view.Graph, t0, deadline, dOpts)
	if err != nil {
		return nil, fmt.Errorf("core: EEDCB: %w", err)
	}
	a, err := auxgraph.Build(view, d, aOpts)
	if err != nil {
		return nil, fmt.Errorf("core: EEDCB: %w", err)
	}
	if targets == nil {
		targets = make([]tvg.NodeID, view.N())
		for i := range targets {
			targets[i] = tvg.NodeID(i)
		}
	}
	reach := a.G.Reachable(a.SourceVertex(src))
	var unreachable []tvg.NodeID
	var terms []int
	for _, n := range targets {
		v := a.Vertex(n, d.Last(n))
		if reach[v] {
			terms = append(terms, v)
		} else {
			unreachable = append(unreachable, n)
		}
	}
	if len(terms) == 0 {
		return nil, &IncompleteError{Uncovered: unreachable}
	}
	stSpan := rec.StartPhase("steiner")
	solver := steiner.NewSolver(a.G).
		WithReverse(a.Reverse()).
		SetWorkers(workers).
		SetObs(rec).
		SetCancel(tok)
	defer solver.Release()
	var sol steiner.Solution
	if level <= 1 {
		sol, err = solver.ShortestPathTree(a.SourceVertex(src), terms)
	} else {
		sol, err = solver.RecursiveGreedy(a.SourceVertex(src), terms, level)
	}
	if err != nil {
		stSpan.End()
		return nil, fmt.Errorf("core: EEDCB: %w", err)
	}
	stSpan.SetInt("terminals", len(terms))
	stSpan.SetInt("solution_edges", sol.NumEdges())
	stSpan.SetFloat("solution_cost", sol.Cost())
	stSpan.End()
	s := normalizeET(view, a.ScheduleFromSolution(sol), src, t0, !aOpts.NoBroadcastAdvantage)
	if len(unreachable) > 0 {
		sortNodeIDs(unreachable)
		return s, &IncompleteError{Uncovered: unreachable}
	}
	return s, nil
}
