package ndtvg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/haggle"
	"repro/internal/interval"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

func iv(a, b float64) interval.Interval { return interval.Interval{Start: a, End: b} }

func twoPathGraph() *Graph {
	// 0→1 has a reliable path (p=1) and 0→2 an unreliable one (p=0.3)
	g := New(3, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(10, 30), 5, 1.0)
	g.AddContact(0, 2, iv(40, 60), 5, 0.3)
	return g
}

func TestAddContactPanicsOnBadProb(t *testing.T) {
	g := New(2, iv(0, 10), 0, tveg.DefaultParams(), tveg.Static)
	for _, p := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%g should panic", p)
				}
			}()
			g.AddContact(0, 1, iv(0, 5), 5, p)
		}()
	}
}

func TestSampleRespectsProbabilities(t *testing.T) {
	g := twoPathGraph()
	rng := rand.New(rand.NewSource(1))
	const trials = 5000
	kept := 0
	for i := 0; i < trials; i++ {
		real := g.Sample(rng)
		if !real.Presence(0, 1).Empty() != true {
			t.Fatal("p=1 contact must always materialize")
		}
		if !real.Presence(0, 2).Empty() {
			kept++
		}
	}
	frac := float64(kept) / trials
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("p=0.3 contact kept %.3f of the time", frac)
	}
}

func TestLikelyView(t *testing.T) {
	g := twoPathGraph()
	high := g.LikelyView(0.9)
	if high.Presence(0, 1).Empty() {
		t.Error("p=1 contact missing from 0.9 view")
	}
	if !high.Presence(0, 2).Empty() {
		t.Error("p=0.3 contact present in 0.9 view")
	}
	all := g.LikelyView(0.0)
	if all.Presence(0, 2).Empty() {
		t.Error("threshold 0 should keep everything")
	}
}

func TestFromTrace(t *testing.T) {
	tr := haggle.Generate(haggle.GenOptions{N: 6, Horizon: 3000}, rand.New(rand.NewSource(2)))
	g := FromTrace(tr, 0, tveg.DefaultParams(), tveg.Static, 0.5, 0.9, rand.New(rand.NewSource(3)))
	if len(g.Contacts) != len(tr.Contacts) {
		t.Fatalf("contacts = %d, want %d", len(g.Contacts), len(tr.Contacts))
	}
	for _, c := range g.Contacts {
		if c.P < 0.5 || c.P > 0.9 {
			t.Fatalf("probability %g outside [0.5,0.9]", c.P)
		}
	}
}

func TestEvaluateRobustDeterministicGraph(t *testing.T) {
	// all-probability-1 graph: robust evaluation equals plain evaluation
	g := New(2, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(10, 30), 5, 1)
	view := g.LikelyView(0.5)
	s, err := (core.EEDCB{}).Schedule(view, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	res := EvaluateRobust(g, s, 0, 20, 5, 7)
	if res.MeanDelivery != 1 || res.WorstDelivery != 1 {
		t.Errorf("deterministic robust result = %v", res)
	}
}

func TestEvaluateRobustDegradesWithUncertainty(t *testing.T) {
	// plan assuming everything exists; unreliable contacts then cost
	// delivery in realizations
	g := twoPathGraph()
	view := g.LikelyView(0)
	s, err := (core.EEDCB{}).Schedule(view, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	res := EvaluateRobust(g, s, 0, 400, 1, 11)
	// node 2 reachable only via the p=0.3 contact:
	// expected delivery = (2 + 0.3)/3 ≈ 0.767
	want := (2 + 0.3) / 3
	if math.Abs(res.MeanDelivery-want) > 0.03 {
		t.Errorf("mean delivery = %g, want ≈ %g", res.MeanDelivery, want)
	}
	if res.WorstDelivery > 0.67 {
		t.Errorf("worst delivery = %g, want a realization missing node 2", res.WorstDelivery)
	}
}

func TestPlanRobustThresholdTradeoff(t *testing.T) {
	// With a high threshold the planner only sees the reliable contact
	// and reports node 2 uncoverable; with threshold 0 it covers both
	// but delivery drops in realizations.
	g := twoPathGraph()
	_, _, err := PlanRobust(g, core.EEDCB{}, 0, 0, 100, 0.9, 50, 1, 5)
	var inc *core.IncompleteError
	if !errors.As(err, &inc) || len(inc.Uncovered) != 1 || inc.Uncovered[0] != 2 {
		t.Errorf("high threshold: want node 2 uncovered, got %v", err)
	}
	_, res, err := PlanRobust(g, core.EEDCB{}, 0, 0, 100, 0.0, 300, 1, 5)
	if err != nil {
		t.Fatalf("threshold 0: %v", err)
	}
	if res.MeanDelivery < 0.7 || res.MeanDelivery > 0.85 {
		t.Errorf("threshold 0 delivery = %g, want ≈ 0.77", res.MeanDelivery)
	}
}

func TestEvaluateRobustPanics(t *testing.T) {
	g := twoPathGraph()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero realizations")
		}
	}()
	EvaluateRobust(g, schedule.Schedule{}, 0, 0, 1, 1)
}

func TestQuickSampleSubsetOfContacts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := haggle.Generate(haggle.GenOptions{N: 5, Horizon: 2000}, rng)
		g := FromTrace(tr, 0, tveg.DefaultParams(), tveg.Static, 0.2, 0.8, rng)
		real := g.Sample(rng)
		// every materialized presence interval must come from a contact
		for i := 0; i < g.N; i++ {
			for j := i + 1; j < g.N; j++ {
				pres := real.Presence(tvg.NodeID(i), tvg.NodeID(j))
				for _, ivl := range pres.Intervals() {
					found := false
					for _, c := range g.Contacts {
						if int(c.I) == i && int(c.J) == j && c.Iv.Start <= ivl.Start && c.Iv.End >= ivl.End {
							found = true
							break
						}
					}
					if !found {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
