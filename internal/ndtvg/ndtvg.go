// Package ndtvg implements non-deterministic time-varying energy-demand
// graphs — the first of the two future-work directions named in §VIII.
// The presence function becomes probabilistic (ρ: E×T → [0,1], the
// general TVG definition of Casteigts et al. [7] that the paper
// restricts to {0,1}): every contact carries a materialization
// probability, modelling predicted encounters that may not happen.
//
// The package supports three workflows:
//
//   - Sample — draw deterministic TVEG realizations;
//   - LikelyView — the deterministic graph containing contacts with
//     materialization probability above a threshold, which any §VI
//     planner can run on;
//   - EvaluateRobust — plan once on a view, then execute the schedule
//     across many sampled realizations to measure robust delivery.
package ndtvg

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/haggle"
	"repro/internal/interval"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Contact is a predicted contact: present in a realization with
// probability P.
type Contact struct {
	I, J tvg.NodeID
	Iv   interval.Interval
	Dist float64
	P    float64
}

// Graph is a non-deterministic TVEG: a distribution over deterministic
// TVEGs.
type Graph struct {
	N        int
	Span     interval.Interval
	Tau      float64
	Params   tveg.Params
	Model    tveg.Model
	Contacts []Contact
}

// New creates an empty non-deterministic graph.
func New(n int, span interval.Interval, tau float64, params tveg.Params, model tveg.Model) *Graph {
	return &Graph{N: n, Span: span, Tau: tau, Params: params, Model: model}
}

// AddContact records a predicted contact with probability p ∈ (0, 1].
func (g *Graph) AddContact(i, j tvg.NodeID, iv interval.Interval, dist, p float64) {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("ndtvg: probability %g outside (0,1]", p))
	}
	g.Contacts = append(g.Contacts, Contact{I: i, J: j, Iv: iv, Dist: dist, P: p})
}

// FromTrace lifts a deterministic trace into a non-deterministic graph,
// assigning every contact an independent probability drawn uniformly
// from [pmin, pmax].
func FromTrace(t *haggle.Trace, tau float64, params tveg.Params, model tveg.Model, pmin, pmax float64, rng *rand.Rand) *Graph {
	g := New(t.N, interval.Interval{Start: 0, End: t.Horizon}, tau, params, model)
	for _, c := range t.Contacts {
		p := pmin + rng.Float64()*(pmax-pmin)
		g.AddContact(tvg.NodeID(c.I), tvg.NodeID(c.J),
			interval.Interval{Start: c.Start, End: c.End}, c.Dist, p)
	}
	return g
}

// Sample draws one deterministic realization: each contact materializes
// independently with its probability.
func (g *Graph) Sample(rng *rand.Rand) *tveg.Graph {
	out := tveg.New(g.N, g.Span, g.Tau, g.Params, g.Model)
	for _, c := range g.Contacts {
		if rng.Float64() < c.P {
			out.AddContact(c.I, c.J, c.Iv, c.Dist)
		}
	}
	return out
}

// LikelyView returns the deterministic TVEG containing exactly the
// contacts with P >= threshold. Planning on a high threshold trades
// coverage for robustness: the kept contacts are likely to exist in any
// realization.
func (g *Graph) LikelyView(threshold float64) *tveg.Graph {
	out := tveg.New(g.N, g.Span, g.Tau, g.Params, g.Model)
	for _, c := range g.Contacts {
		if c.P >= threshold {
			out.AddContact(c.I, c.J, c.Iv, c.Dist)
		}
	}
	return out
}

// RobustResult aggregates a schedule's behaviour across realizations.
type RobustResult struct {
	// PlannedEnergy is the schedule cost normalized by γth.
	PlannedEnergy float64
	// MeanDelivery averages the per-realization mean delivery ratio.
	MeanDelivery float64
	// WorstDelivery is the minimum per-realization mean delivery.
	WorstDelivery float64
	// Realizations is the number of sampled graphs.
	Realizations int
}

func (r RobustResult) String() string {
	return fmt.Sprintf("robust{energy=%.4g delivery=%.3f worst=%.3f over %d realizations}",
		r.PlannedEnergy, r.MeanDelivery, r.WorstDelivery, r.Realizations)
}

// EvaluateRobust executes a schedule planned elsewhere across sampled
// realizations: per realization, transmissions only reach receivers
// whose contact actually materialized (and, under fading, decode
// probabilistically). trialsPer controls the Monte Carlo depth per
// realization.
func EvaluateRobust(g *Graph, s schedule.Schedule, src tvg.NodeID, realizations, trialsPer int, seed int64) RobustResult {
	if realizations <= 0 {
		panic(fmt.Sprintf("ndtvg: non-positive realizations %d", realizations))
	}
	rng := rand.New(rand.NewSource(seed))
	out := RobustResult{Realizations: realizations, WorstDelivery: 1}
	var sum float64
	for r := 0; r < realizations; r++ {
		real := g.Sample(rng)
		res := sim.Evaluate(real, s, src, trialsPer, rand.New(rand.NewSource(seed+int64(r)+1)))
		sum += res.MeanDelivery
		if res.MeanDelivery < out.WorstDelivery {
			out.WorstDelivery = res.MeanDelivery
		}
		if r == 0 {
			out.PlannedEnergy = res.PlannedEnergy
		}
	}
	out.MeanDelivery = sum / float64(realizations)
	return out
}

// PlanRobust plans on the threshold view and evaluates robustly — the
// end-to-end future-work pipeline. It returns the schedule alongside the
// result; scheduling errors (including partial coverage) pass through.
func PlanRobust(g *Graph, planner core.Scheduler, src tvg.NodeID, t0, deadline, threshold float64, realizations, trialsPer int, seed int64) (schedule.Schedule, RobustResult, error) {
	view := g.LikelyView(threshold)
	s, err := planner.Schedule(view, src, t0, deadline)
	if s == nil && err != nil {
		return nil, RobustResult{}, err
	}
	res := EvaluateRobust(g, s, src, realizations, trialsPer, seed)
	return s, res, err
}
