package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalEmpty(t *testing.T) {
	cases := []struct {
		iv   Interval
		want bool
	}{
		{Interval{0, 1}, false},
		{Interval{1, 1}, true},
		{Interval{2, 1}, true},
		{Interval{-3, -2}, false},
	}
	for _, c := range cases {
		if got := c.iv.Empty(); got != c.want {
			t.Errorf("%v.Empty() = %v, want %v", c.iv, got, c.want)
		}
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{1, 3}
	for _, tc := range []struct {
		t    float64
		want bool
	}{{0.5, false}, {1, true}, {2, true}, {3, false}, {3.5, false}} {
		if got := iv.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%g) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestIntervalContainsWindow(t *testing.T) {
	iv := Interval{1, 3}
	if iv.ContainsWindow(1, 2) {
		t.Error("ContainsWindow(1,2) must fail: window reaches End, presence is half-open")
	}
	if !iv.ContainsWindow(1, 1.9) {
		t.Error("ContainsWindow(1,1.9) should hold")
	}
	if !iv.ContainsWindow(1.5, 1) {
		t.Error("ContainsWindow(1.5,1) should hold")
	}
	if iv.ContainsWindow(0.9, 1) {
		t.Error("start before interval should fail")
	}
	// d = 0 reduces to Contains
	if !iv.ContainsWindow(1, 0) || iv.ContainsWindow(3, 0) {
		t.Error("d=0 semantics must match Contains")
	}
}

func TestIntervalIntersect(t *testing.T) {
	a := Interval{0, 5}
	b := Interval{3, 8}
	got := a.Intersect(b)
	if got != (Interval{3, 5}) {
		t.Errorf("Intersect = %v, want [3,5)", got)
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("Overlaps should be symmetric and true")
	}
	c := Interval{5, 6}
	if a.Overlaps(c) {
		t.Error("touching half-open intervals do not overlap")
	}
}

func TestSetAddMergesTouching(t *testing.T) {
	s := NewSet(Interval{0, 1}, Interval{1, 2})
	if len(s.Intervals()) != 1 {
		t.Fatalf("touching intervals should merge, got %v", s)
	}
	if s.Intervals()[0] != (Interval{0, 2}) {
		t.Errorf("merged = %v, want [0,2)", s.Intervals()[0])
	}
}

func TestSetAddDisjoint(t *testing.T) {
	s := NewSet(Interval{3, 4}, Interval{0, 1})
	ivs := s.Intervals()
	if len(ivs) != 2 || ivs[0] != (Interval{0, 1}) || ivs[1] != (Interval{3, 4}) {
		t.Errorf("got %v, want [0,1)∪[3,4)", s)
	}
}

func TestSetAddOverlapChain(t *testing.T) {
	s := NewSet(Interval{0, 2}, Interval{4, 6}, Interval{8, 10})
	s = s.Add(Interval{1, 9})
	ivs := s.Intervals()
	if len(ivs) != 1 || ivs[0] != (Interval{0, 10}) {
		t.Errorf("got %v, want [0,10)", s)
	}
}

func TestSetAddEmptyIgnored(t *testing.T) {
	s := NewSet(Interval{0, 1})
	s2 := s.Add(Interval{5, 5})
	if !s.Equal(s2) {
		t.Errorf("adding empty interval changed set: %v", s2)
	}
}

func TestSetUnion(t *testing.T) {
	a := NewSet(Interval{0, 1}, Interval{4, 5})
	b := NewSet(Interval{0.5, 4.5}, Interval{7, 8})
	got := a.Union(b)
	want := NewSet(Interval{0, 5}, Interval{7, 8})
	if !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
}

func TestSetIntersect(t *testing.T) {
	a := NewSet(Interval{0, 4}, Interval{6, 10})
	b := NewSet(Interval{2, 7}, Interval{9, 12})
	got := a.Intersect(b)
	want := NewSet(Interval{2, 4}, Interval{6, 7}, Interval{9, 10})
	if !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
}

func TestSetIntersectEmpty(t *testing.T) {
	a := NewSet(Interval{0, 1})
	b := NewSet(Interval{2, 3})
	if got := a.Intersect(b); !got.Empty() {
		t.Errorf("Intersect = %v, want empty", got)
	}
}

func TestSetComplement(t *testing.T) {
	s := NewSet(Interval{2, 4}, Interval{6, 8})
	got := s.Complement(Interval{0, 10})
	want := NewSet(Interval{0, 2}, Interval{4, 6}, Interval{8, 10})
	if !got.Equal(want) {
		t.Errorf("Complement = %v, want %v", got, want)
	}
}

func TestSetComplementEdges(t *testing.T) {
	s := NewSet(Interval{0, 4})
	got := s.Complement(Interval{0, 4})
	if !got.Empty() {
		t.Errorf("Complement of full universe = %v, want empty", got)
	}
	empty := Set{}
	got = empty.Complement(Interval{1, 2})
	if !got.Equal(NewSet(Interval{1, 2})) {
		t.Errorf("Complement of empty set = %v, want universe", got)
	}
}

func TestSetComplementClipsOutside(t *testing.T) {
	s := NewSet(Interval{-5, 1}, Interval{9, 20})
	got := s.Complement(Interval{0, 10})
	want := NewSet(Interval{1, 9})
	if !got.Equal(want) {
		t.Errorf("Complement = %v, want %v", got, want)
	}
}

func TestSetSubtract(t *testing.T) {
	base := NewSet(Interval{0, 10}, Interval{20, 30})
	cases := []struct {
		name string
		iv   Interval
		want Set
	}{
		{"empty interval is identity", Interval{5, 5}, base},
		{"disjoint is identity", Interval{12, 18}, base},
		{"split strictly inside", Interval{2, 4}, NewSet(Interval{0, 2}, Interval{4, 10}, Interval{20, 30})},
		{"clip left edge", Interval{0, 3}, NewSet(Interval{3, 10}, Interval{20, 30})},
		{"clip right edge", Interval{8, 10}, NewSet(Interval{0, 8}, Interval{20, 30})},
		{"remove whole interval", Interval{20, 30}, NewSet(Interval{0, 10})},
		{"span across gap", Interval{5, 25}, NewSet(Interval{0, 5}, Interval{25, 30})},
		{"superset empties", Interval{-1, 31}, Set{}},
		{"touching left endpoint only", Interval{-5, 0}, base},
		{"touching right endpoint only", Interval{10, 12}, base},
	}
	for _, c := range cases {
		if got := base.Subtract(c.iv); !got.Equal(c.want) {
			t.Errorf("%s: Subtract(%v) = %v, want %v", c.name, c.iv, got, c.want)
		}
	}
}

func TestQuickSubtractComplementsAdd(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r)
		start := r.Float64() * 100
		iv := Interval{start, start + r.Float64()*30}
		sub := s.Subtract(iv)
		// canonical form holds
		for i, cur := range sub.Intervals() {
			if cur.Empty() {
				return false
			}
			if i > 0 && sub.Intervals()[i-1].End >= cur.Start {
				return false
			}
		}
		// nothing of iv survives, everything outside iv survives
		if !sub.Intersect(NewSet(iv)).Empty() {
			return false
		}
		if !sub.Equal(s.Intersect(NewSet(iv).Complement(Interval{-10, 200}))) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(Interval{1, 2}, Interval{5, 7})
	for _, tc := range []struct {
		t    float64
		want bool
	}{{0, false}, {1, true}, {1.9, true}, {2, false}, {5, true}, {6.99, true}, {7, false}} {
		if got := s.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%g) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestSetContainsWindow(t *testing.T) {
	s := NewSet(Interval{0, 5}, Interval{10, 12})
	if !s.ContainsWindow(3, 1.9) {
		t.Error("[3,4.9] fits in [0,5)")
	}
	if s.ContainsWindow(3, 2) {
		t.Error("[3,5] must not fit: 5 is excluded")
	}
	if s.ContainsWindow(4, 2) {
		t.Error("[4,6] does not fit")
	}
	if !s.ContainsWindow(10, 1.5) {
		t.Error("[10,11.5] fits in [10,12)")
	}
	if !s.ContainsWindow(4.5, 0) {
		t.Error("point query inside should hold")
	}
	if s.ContainsWindow(5, 0) {
		t.Error("point query at excluded endpoint should fail")
	}
}

func TestSetErode(t *testing.T) {
	s := NewSet(Interval{0, 5}, Interval{10, 11})
	got := s.Erode(2)
	want := NewSet(Interval{0, 3})
	if !got.Equal(want) {
		t.Errorf("Erode(2) = %v, want %v", got, want)
	}
	if !s.Erode(0).Equal(s) {
		t.Error("Erode(0) should be identity")
	}
}

func TestSetMeasure(t *testing.T) {
	s := NewSet(Interval{0, 2}, Interval{5, 5.5})
	if got := s.Measure(); got != 2.5 {
		t.Errorf("Measure = %g, want 2.5", got)
	}
}

func TestSetBreakpoints(t *testing.T) {
	s := NewSet(Interval{1, 3}, Interval{8, 12})
	// The end 12 of [8,12) lies outside the universe so it is not a
	// breakpoint; partitions add universe endpoints themselves.
	got := s.Breakpoints(Interval{0, 10}, nil)
	want := []float64{1, 3, 8}
	if len(got) != len(want) {
		t.Fatalf("Breakpoints = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Breakpoints[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSetString(t *testing.T) {
	if got := (Set{}).String(); got != "∅" {
		t.Errorf("empty String = %q", got)
	}
	s := NewSet(Interval{0, 1}, Interval{2, 3})
	if got := s.String(); got != "[0,1)∪[2,3)" {
		t.Errorf("String = %q", got)
	}
}

// randomSet builds a random canonical set for property tests.
func randomSet(r *rand.Rand) Set {
	s := Set{}
	n := r.Intn(8)
	for i := 0; i < n; i++ {
		start := r.Float64() * 100
		s = s.Add(Interval{start, start + r.Float64()*20})
	}
	return s
}

func TestQuickCanonicalForm(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r)
		ivs := s.Intervals()
		for i, iv := range ivs {
			if iv.Empty() {
				return false
			}
			if i > 0 && ivs[i-1].End >= iv.Start {
				return false // must be disjoint and non-touching
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectSubset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		x := a.Intersect(b)
		// every point sample of x must be in both a and b
		for _, iv := range x.Intervals() {
			mid := (iv.Start + iv.End) / 2
			if !a.Contains(mid) || !b.Contains(mid) {
				return false
			}
		}
		return x.Measure() <= a.Measure()+1e-9 && x.Measure() <= b.Measure()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickComplementPartitionsUniverse(t *testing.T) {
	u := Interval{0, 150}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r)
		clipped := s.Intersect(NewSet(u))
		c := s.Complement(u)
		// measures must add up, and they must be disjoint
		if m := clipped.Measure() + c.Measure(); m < u.Len()-1e-6 || m > u.Len()+1e-6 {
			return false
		}
		return clipped.Intersect(c).Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickErodeConsistentWithContainsWindow(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r)
		d := 0.1 + r.Float64()*5 // keep d away from 0 so End-d is exact enough
		e := s.Erode(d)
		// sample interior points of eroded set: the window must fit
		for _, iv := range e.Intervals() {
			mid := (iv.Start + iv.End) / 2
			if !s.ContainsWindow(mid, d) {
				return false
			}
		}
		// the right edge of each eroded interval is excluded: a window
		// starting there (nudged past rounding) overruns the interval
		for _, iv := range s.Intervals() {
			probe := iv.End - d + 1e-9
			if probe > iv.Start && probe < iv.End && s.ContainsWindow(probe, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
