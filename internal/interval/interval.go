// Package interval implements sets of half-open intervals [start, end)
// over continuous time. Interval sets are the substrate for the presence
// functions of time-varying graphs: an edge's presence function ρ(e, ·)
// is represented as the set of times at which the edge exists.
//
// All operations keep the canonical form: intervals sorted by start,
// pairwise disjoint, non-empty, and non-adjacent (touching intervals are
// merged). The zero value of Set is the empty set and is ready to use.
package interval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Interval is a half-open interval [Start, End). An interval with
// End <= Start is empty.
type Interval struct {
	Start, End float64
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Len returns the length of the interval (zero if empty).
func (iv Interval) Len() float64 {
	if iv.Empty() {
		return 0
	}
	return iv.End - iv.Start
}

// Contains reports whether t lies in [Start, End).
func (iv Interval) Contains(t float64) bool { return t >= iv.Start && t < iv.End }

// ContainsWindow reports whether every point of the window [t, t+d] lies
// inside the half-open interval [Start, End). It is the primitive behind
// ρ_τ: a transmission started at t with traversal time d needs the link
// present during the whole window, and presence is half-open, so the
// window must end strictly before End when d > 0 — and for d = 0 this
// reduces to Contains(t).
func (iv Interval) ContainsWindow(t, d float64) bool {
	if d == 0 {
		return iv.Contains(t)
	}
	return t >= iv.Start && t+d < iv.End
}

// Intersect returns the intersection of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{math.Max(iv.Start, o.Start), math.Min(iv.End, o.End)}
}

// Overlaps reports whether the two intervals share at least one point.
func (iv Interval) Overlaps(o Interval) bool { return !iv.Intersect(o).Empty() }

func (iv Interval) String() string { return fmt.Sprintf("[%g,%g)", iv.Start, iv.End) }

// Set is a union of disjoint half-open intervals in canonical form.
type Set struct {
	ivs []Interval
}

// NewSet builds a set from arbitrary intervals, normalizing them.
func NewSet(ivs ...Interval) Set {
	s := Set{}
	for _, iv := range ivs {
		s = s.Add(iv)
	}
	return s
}

// Intervals returns the canonical intervals of the set. The returned
// slice must not be modified.
func (s Set) Intervals() []Interval { return s.ivs }

// Empty reports whether the set contains no points.
func (s Set) Empty() bool { return len(s.ivs) == 0 }

// Measure returns the total length of the set.
func (s Set) Measure() float64 {
	var m float64
	for _, iv := range s.ivs {
		m += iv.Len()
	}
	return m
}

// Add returns the set with iv unioned in.
func (s Set) Add(iv Interval) Set {
	if iv.Empty() {
		return s
	}
	out := make([]Interval, 0, len(s.ivs)+1)
	inserted := false
	for _, cur := range s.ivs {
		switch {
		case cur.End < iv.Start: // strictly before, not touching
			out = append(out, cur)
		case iv.End < cur.Start: // strictly after, not touching
			if !inserted {
				out = append(out, iv)
				inserted = true
			}
			out = append(out, cur)
		default: // overlapping or touching: merge into iv
			iv.Start = math.Min(iv.Start, cur.Start)
			iv.End = math.Max(iv.End, cur.End)
		}
	}
	if !inserted {
		out = append(out, iv)
	}
	return Set{out}
}

// Union returns the union of the two sets.
func (s Set) Union(o Set) Set {
	out := s
	for _, iv := range o.ivs {
		out = out.Add(iv)
	}
	return out
}

// Intersect returns the intersection of the two sets.
func (s Set) Intersect(o Set) Set {
	var out []Interval
	i, j := 0, 0
	for i < len(s.ivs) && j < len(o.ivs) {
		x := s.ivs[i].Intersect(o.ivs[j])
		if !x.Empty() {
			out = append(out, x)
		}
		if s.ivs[i].End < o.ivs[j].End {
			i++
		} else {
			j++
		}
	}
	return Set{out}
}

// Complement returns the complement of s within the universe interval u.
func (s Set) Complement(u Interval) Set {
	if u.Empty() {
		return Set{}
	}
	var out []Interval
	cur := u.Start
	for _, iv := range s.ivs {
		if iv.End <= u.Start {
			continue
		}
		if iv.Start >= u.End {
			break
		}
		if iv.Start > cur {
			out = append(out, Interval{cur, math.Min(iv.Start, u.End)})
		}
		if iv.End > cur {
			cur = iv.End
		}
	}
	if cur < u.End {
		out = append(out, Interval{cur, u.End})
	}
	return Set{out}
}

// Subtract returns the set with every point of iv removed. Intervals
// partially covered by iv are clipped; an interval strictly containing
// iv splits in two. Subtracting an empty interval returns s unchanged.
func (s Set) Subtract(iv Interval) Set {
	if iv.Empty() || len(s.ivs) == 0 {
		return s
	}
	out := make([]Interval, 0, len(s.ivs)+1)
	for _, cur := range s.ivs {
		if cur.End <= iv.Start || cur.Start >= iv.End {
			out = append(out, cur)
			continue
		}
		if left := (Interval{cur.Start, iv.Start}); !left.Empty() {
			out = append(out, left)
		}
		if right := (Interval{iv.End, cur.End}); !right.Empty() {
			out = append(out, right)
		}
	}
	return Set{out}
}

// Contains reports whether t is in the set.
func (s Set) Contains(t float64) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > t })
	return i < len(s.ivs) && s.ivs[i].Contains(t)
}

// ContainsWindow reports whether the window [t, t+d] lies inside a
// single interval of the set (the ρ_τ primitive).
func (s Set) ContainsWindow(t, d float64) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > t })
	return i < len(s.ivs) && s.ivs[i].ContainsWindow(t, d)
}

// Erode returns the set of start times t such that the window [t, t+d]
// fits inside one interval of s: {t : s.ContainsWindow(t, d)}. The
// result is the domain of ρ_τ(e, ·) = 1 when s is the domain of
// ρ(e, ·) = 1, and it stays in the half-open algebra: each interval
// [Start, End) erodes to [Start, End-d). Eroding by d = 0 returns s
// unchanged.
func (s Set) Erode(d float64) Set {
	if d == 0 {
		return s
	}
	var out []Interval
	for _, iv := range s.ivs {
		e := Interval{iv.Start, iv.End - d}
		if !e.Empty() {
			out = append(out, e)
		}
	}
	return Set{out}
}

// Breakpoints appends to dst every boundary point of the set that lies
// inside the universe u (inclusive of u's endpoints when they coincide
// with a boundary) and returns the extended slice. Boundaries are where
// membership flips, i.e. interval starts and ends clipped to u.
func (s Set) Breakpoints(u Interval, dst []float64) []float64 {
	for _, iv := range s.ivs {
		if iv.Start >= u.Start && iv.Start <= u.End {
			dst = append(dst, iv.Start)
		}
		if iv.End >= u.Start && iv.End <= u.End {
			dst = append(dst, iv.End)
		}
	}
	return dst
}

// Equal reports whether two sets contain exactly the same points.
func (s Set) Equal(o Set) bool {
	if len(s.ivs) != len(o.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != o.ivs[i] {
			return false
		}
	}
	return true
}

func (s Set) String() string {
	if s.Empty() {
		return "∅"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, "∪")
}
