// Package mobility implements a random-waypoint mobility model over a 2D
// arena and extracts contact events (with representative distances) from
// the resulting node trajectories.
//
// The Haggle trace the paper evaluates on records only proximity, not
// geometry, yet the Rayleigh ED-function needs sender-receiver distances
// d_{i,j,t}. This package is the synthetic stand-in: trajectories →
// pairwise distances → contacts whenever two nodes are within radio
// range, each contact carrying its mean distance. Sampling is
// deterministic given the seed.
package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Point is a 2D position in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Model holds random-waypoint parameters.
type Model struct {
	// Width and Height bound the arena (meters).
	Width, Height float64
	// VMin and VMax bound node speed (m/s); VMin > 0.
	VMin, VMax float64
	// Pause is the wait time at each waypoint (seconds).
	Pause float64
}

// DefaultModel returns a pedestrian-scale arena: 200x200 m, 0.5–1.5 m/s,
// 30 s pauses — conference-floor numbers matching the Haggle setting.
func DefaultModel() Model {
	return Model{Width: 200, Height: 200, VMin: 0.5, VMax: 1.5, Pause: 30}
}

// Trace holds sampled positions: Pos[k][i] is node i's position at time
// k·Dt.
type Trace struct {
	N       int
	Horizon float64
	Dt      float64
	Pos     [][]Point
}

// walker is per-node random-waypoint state.
type walker struct {
	at      Point
	target  Point
	speed   float64
	pausing float64 // remaining pause time
}

// Simulate runs the model for n nodes over [0, horizon] sampling every dt
// seconds. The returned trace has 1 + horizon/dt samples.
func Simulate(m Model, n int, horizon, dt float64, rng *rand.Rand) *Trace {
	if n <= 0 || horizon <= 0 || dt <= 0 {
		panic(fmt.Sprintf("mobility: invalid n=%d horizon=%g dt=%g", n, horizon, dt))
	}
	if m.VMin <= 0 || m.VMax < m.VMin || m.Width <= 0 || m.Height <= 0 {
		panic(fmt.Sprintf("mobility: invalid model %+v", m))
	}
	randPoint := func() Point {
		return Point{rng.Float64() * m.Width, rng.Float64() * m.Height}
	}
	ws := make([]walker, n)
	for i := range ws {
		ws[i] = walker{
			at:     randPoint(),
			target: randPoint(),
			speed:  m.VMin + rng.Float64()*(m.VMax-m.VMin),
		}
	}
	steps := int(horizon/dt) + 1
	tr := &Trace{N: n, Horizon: horizon, Dt: dt, Pos: make([][]Point, steps)}
	for k := 0; k < steps; k++ {
		snap := make([]Point, n)
		for i := range ws {
			snap[i] = ws[i].at
		}
		tr.Pos[k] = snap
		for i := range ws {
			ws[i].advance(dt, m, rng, randPoint)
		}
	}
	return tr
}

func (w *walker) advance(dt float64, m Model, rng *rand.Rand, randPoint func() Point) {
	remaining := dt
	for remaining > 0 {
		if w.pausing > 0 {
			wait := math.Min(w.pausing, remaining)
			w.pausing -= wait
			remaining -= wait
			continue
		}
		d := w.at.Dist(w.target)
		travel := w.speed * remaining
		if travel < d {
			frac := travel / d
			w.at.X += (w.target.X - w.at.X) * frac
			w.at.Y += (w.target.Y - w.at.Y) * frac
			return
		}
		// reach the waypoint, pause, pick a new one
		timeToTarget := d / w.speed
		w.at = w.target
		remaining -= timeToTarget
		w.pausing = m.Pause
		w.target = randPoint()
		w.speed = m.VMin + rng.Float64()*(m.VMax-m.VMin)
	}
}

// Contact is a pairwise proximity event: nodes I < J are within range
// during [Start, End), at representative (mean) distance Dist.
type Contact struct {
	I, J       int
	Start, End float64
	Dist       float64
}

// Contacts extracts contact events: maximal runs of samples with
// pairwise distance <= radius. Each contact carries the mean distance
// over its samples, floored at minDist to keep path-loss finite.
func (tr *Trace) Contacts(radius, minDist float64) []Contact {
	type open struct {
		startIdx int
		sumDist  float64
		samples  int
	}
	var out []Contact
	active := make(map[[2]int]*open)
	closeContact := func(key [2]int, o *open, endIdx int) {
		d := o.sumDist / float64(o.samples)
		if d < minDist {
			d = minDist
		}
		out = append(out, Contact{
			I:     key[0],
			J:     key[1],
			Start: float64(o.startIdx) * tr.Dt,
			End:   float64(endIdx) * tr.Dt,
			Dist:  d,
		})
	}
	for k, snap := range tr.Pos {
		for i := 0; i < tr.N; i++ {
			for j := i + 1; j < tr.N; j++ {
				key := [2]int{i, j}
				d := snap[i].Dist(snap[j])
				o := active[key]
				switch {
				case d <= radius && o == nil:
					active[key] = &open{startIdx: k, sumDist: d, samples: 1}
				case d <= radius:
					o.sumDist += d
					o.samples++
				case o != nil:
					closeContact(key, o, k)
					delete(active, key)
				}
			}
		}
	}
	last := len(tr.Pos)
	for key, o := range active {
		closeContact(key, o, last)
	}
	// deterministic order: by start, then pair
	sort.Slice(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}
