package mobility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if d := p.Dist(q); d != 5 {
		t.Errorf("Dist = %g, want 5", d)
	}
}

func TestSimulatePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []func(){
		func() { Simulate(DefaultModel(), 0, 100, 1, rng) },
		func() { Simulate(DefaultModel(), 3, 0, 1, rng) },
		func() { Simulate(DefaultModel(), 3, 100, 0, rng) },
		func() { Simulate(Model{Width: 10, Height: 10, VMin: 0, VMax: 1}, 3, 100, 1, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSimulateShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := Simulate(DefaultModel(), 5, 100, 10, rng)
	if len(tr.Pos) != 11 {
		t.Errorf("samples = %d, want 11", len(tr.Pos))
	}
	for _, snap := range tr.Pos {
		if len(snap) != 5 {
			t.Fatalf("snapshot has %d nodes, want 5", len(snap))
		}
	}
}

func TestPositionsStayInArena(t *testing.T) {
	m := DefaultModel()
	rng := rand.New(rand.NewSource(3))
	tr := Simulate(m, 8, 2000, 5, rng)
	for k, snap := range tr.Pos {
		for i, p := range snap {
			if p.X < 0 || p.X > m.Width || p.Y < 0 || p.Y > m.Height {
				t.Fatalf("node %d outside arena at sample %d: %+v", i, k, p)
			}
		}
	}
}

func TestSpeedBounded(t *testing.T) {
	m := DefaultModel()
	rng := rand.New(rand.NewSource(4))
	dt := 1.0
	tr := Simulate(m, 4, 500, dt, rng)
	for k := 1; k < len(tr.Pos); k++ {
		for i := range tr.Pos[k] {
			d := tr.Pos[k][i].Dist(tr.Pos[k-1][i])
			if d > m.VMax*dt*(1+1e-9) {
				t.Fatalf("node %d moved %g m in %g s (vmax %g)", i, d, dt, m.VMax)
			}
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a := Simulate(DefaultModel(), 4, 200, 5, rand.New(rand.NewSource(9)))
	b := Simulate(DefaultModel(), 4, 200, 5, rand.New(rand.NewSource(9)))
	for k := range a.Pos {
		for i := range a.Pos[k] {
			if a.Pos[k][i] != b.Pos[k][i] {
				t.Fatal("same seed produced different trajectories")
			}
		}
	}
}

func TestContactsBasic(t *testing.T) {
	// hand-built trace: two nodes approach then separate
	tr := &Trace{N: 2, Horizon: 4, Dt: 1, Pos: [][]Point{
		{{0, 0}, {100, 0}},
		{{0, 0}, {5, 0}},
		{{0, 0}, {8, 0}},
		{{0, 0}, {100, 0}},
		{{0, 0}, {100, 0}},
	}}
	cs := tr.Contacts(10, 1)
	if len(cs) != 1 {
		t.Fatalf("contacts = %v, want 1", cs)
	}
	c := cs[0]
	if c.I != 0 || c.J != 1 {
		t.Errorf("pair = (%d,%d), want (0,1)", c.I, c.J)
	}
	if c.Start != 1 || c.End != 3 {
		t.Errorf("window = [%g,%g), want [1,3)", c.Start, c.End)
	}
	if math.Abs(c.Dist-6.5) > 1e-9 {
		t.Errorf("Dist = %g, want mean 6.5", c.Dist)
	}
}

func TestContactsOpenAtEnd(t *testing.T) {
	tr := &Trace{N: 2, Horizon: 1, Dt: 1, Pos: [][]Point{
		{{0, 0}, {5, 0}},
		{{0, 0}, {5, 0}},
	}}
	cs := tr.Contacts(10, 1)
	if len(cs) != 1 {
		t.Fatalf("contacts = %v, want 1", cs)
	}
	if cs[0].End != 2 {
		t.Errorf("open contact End = %g, want 2 (one step past last sample)", cs[0].End)
	}
}

func TestContactsMinDistFloor(t *testing.T) {
	tr := &Trace{N: 2, Horizon: 1, Dt: 1, Pos: [][]Point{
		{{0, 0}, {0.01, 0}},
		{{0, 0}, {0.01, 0}},
	}}
	cs := tr.Contacts(10, 1)
	if len(cs) != 1 || cs[0].Dist != 1 {
		t.Errorf("contacts = %v, want Dist floored to 1", cs)
	}
}

func TestQuickContactsWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := Simulate(DefaultModel(), 6, 600, 10, rng)
		for _, c := range tr.Contacts(30, 1) {
			if c.I >= c.J || c.Start >= c.End {
				return false
			}
			if c.Dist > 30+1e-9 {
				return false // mean of in-range samples cannot exceed range
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
