package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Report is the stable machine-readable snapshot of one run. The shape
// is versioned: additions bump nothing (new optional fields), removals
// or renames bump Version.
type Report struct {
	Version  int                `json:"version"`
	Meta     map[string]string  `json:"meta,omitempty"`
	WallMS   float64            `json:"wall_ms"`
	Phases   []PhaseReport      `json:"phases,omitempty"`
	Counters map[string]int64   `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
	Hists    []HistReport       `json:"histograms,omitempty"`
	Pools    []PoolReport       `json:"pools,omitempty"`
	Rollings []RollingReport    `json:"rollings,omitempty"`
}

// reportVersion is the current run-report shape version.
const reportVersion = 1

// PhaseReport is one node of the phase tree.
type PhaseReport struct {
	Name string `json:"name"`
	// StartMS is the phase's start offset from the run's root span —
	// what lets the trace-event export place spans on a timeline
	// instead of only sizing them.
	StartMS  float64        `json:"start_ms"`
	WallMS   float64        `json:"wall_ms"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []PhaseReport  `json:"children,omitempty"`
}

// HistReport is one histogram's buckets plus the running sum (the
// Prometheus _sum companion; Mean = Sum/Count is kept precomputed for
// human output).
type HistReport struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1, last = overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Mean   float64   `json:"mean"`
}

// PoolReport is one worker pool's utilization.
type PoolReport struct {
	Name    string    `json:"name"`
	Runs    int64     `json:"runs"`
	Tasks   int64     `json:"tasks"`
	Workers int       `json:"workers"`
	BusyMS  []float64 `json:"busy_ms"`
	// Balance is min/max per-worker busy time in (0, 1]; 1 = perfectly
	// even, small = one slot did all the work. 0 when unmeasurable.
	Balance float64 `json:"balance"`
}

// Snapshot freezes the recorder's current state into a Report. Safe to
// call while work is ongoing (open phases report time-so-far). Returns a
// zero-value report on a nil recorder.
func (r *Recorder) Snapshot(meta map[string]string) Report {
	rep := Report{Version: reportVersion, Meta: meta}
	if r == nil {
		return rep
	}
	r.mu.Lock()
	rep.WallMS = ms(r.root.durationLocked())
	for _, c := range r.root.children {
		rep.Phases = append(rep.Phases, phaseReport(c, r.root.start))
	}
	r.mu.Unlock()

	rep.Counters = map[string]int64{}
	r.counters.Range(func(k, v any) bool {
		rep.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	if len(rep.Counters) == 0 {
		rep.Counters = nil
	}
	rep.Gauges = map[string]float64{}
	r.gauges.Range(func(k, v any) bool {
		rep.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	// Derived cache hit rates from the RecordCache gauge convention.
	for name, hits := range rep.Gauges {
		base, ok := strings.CutSuffix(name, ".hits")
		if !ok {
			continue
		}
		misses, ok := rep.Gauges[base+".misses"]
		if !ok || hits+misses == 0 {
			continue
		}
		rep.Gauges[base+".hit_rate"] = hits / (hits + misses)
	}
	if len(rep.Gauges) == 0 {
		rep.Gauges = nil
	}

	r.hists.Range(func(k, v any) bool {
		h := v.(*Histogram)
		hr := HistReport{Name: k.(string), Bounds: append([]float64(nil), h.bounds...)}
		var total int64
		var sum float64
		hr.Counts = make([]int64, len(h.counts))
		for i := range h.counts {
			hr.Counts[i] = h.counts[i].Load()
			total += hr.Counts[i]
		}
		sum = math.Float64frombits(h.sum.Load())
		hr.Count = total
		hr.Sum = sum
		if total > 0 {
			hr.Mean = sum / float64(total)
		}
		rep.Hists = append(rep.Hists, hr)
		return true
	})
	sort.Slice(rep.Hists, func(i, j int) bool { return rep.Hists[i].Name < rep.Hists[j].Name })

	r.rollings.Range(func(k, v any) bool {
		n, sum, window, capacity := v.(*Rolling).snapshot()
		rr := RollingReport{Name: k.(string), Window: capacity, Count: n, Sum: sum}
		if len(window) > 0 {
			sort.Float64s(window)
			rr.P50 = quantileSorted(window, 0.50)
			rr.P90 = quantileSorted(window, 0.90)
			rr.P99 = quantileSorted(window, 0.99)
		}
		rep.Rollings = append(rep.Rollings, rr)
		return true
	})
	sort.Slice(rep.Rollings, func(i, j int) bool { return rep.Rollings[i].Name < rep.Rollings[j].Name })

	r.pools.Range(func(k, v any) bool {
		runs, tasks, busy, width := v.(*Pool).snapshot()
		pr := PoolReport{Name: k.(string), Runs: runs, Tasks: tasks, Workers: width}
		var min, max float64
		for i, d := range busy {
			b := ms(d)
			pr.BusyMS = append(pr.BusyMS, b)
			if i == 0 || b < min {
				min = b
			}
			if b > max {
				max = b
			}
		}
		if max > 0 {
			pr.Balance = min / max
		}
		rep.Pools = append(rep.Pools, pr)
		return true
	})
	sort.Slice(rep.Pools, func(i, j int) bool { return rep.Pools[i].Name < rep.Pools[j].Name })
	return rep
}

func phaseReport(sp *Span, origin time.Time) PhaseReport {
	pr := PhaseReport{Name: sp.name, StartMS: ms(sp.start.Sub(origin)), WallMS: ms(sp.durationLocked())}
	if len(sp.attrs) > 0 {
		pr.Attrs = make(map[string]any, len(sp.attrs))
		for _, a := range sp.attrs {
			if a.IsStr {
				pr.Attrs[a.Key] = a.Str
			} else {
				pr.Attrs[a.Key] = a.Num
			}
		}
	}
	for _, c := range sp.children {
		pr.Children = append(pr.Children, phaseReport(c, origin))
	}
	return pr
}

// PhaseWallMS flattens the phase tree into slash-joined path → wall-ms
// (e.g. "eedcb/auxgraph/dcs-construct": 1.25). Duplicate paths sum.
func (rep Report) PhaseWallMS() map[string]float64 {
	out := map[string]float64{}
	var walk func(prefix string, ps []PhaseReport)
	walk = func(prefix string, ps []PhaseReport) {
		for _, p := range ps {
			path := p.Name
			if prefix != "" {
				path = prefix + "/" + p.Name
			}
			out[path] += p.WallMS
			walk(path, p.Children)
		}
	}
	walk("", rep.Phases)
	return out
}

// WriteJSON writes the report as indented JSON (maps marshal with
// sorted keys, so the bytes are stable for a given snapshot).
func (rep Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// String renders the human-readable summary: the phase tree with wall
// times, then counters, gauges (cache hit rates included), histograms,
// and pool utilization.
func (rep Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run: %.2f ms wall\n", rep.WallMS)
	var walk func(indent string, ps []PhaseReport, parentMS float64)
	walk = func(indent string, ps []PhaseReport, parentMS float64) {
		for _, p := range ps {
			share := ""
			if parentMS > 0 {
				share = fmt.Sprintf(" (%.0f%%)", 100*p.WallMS/parentMS)
			}
			fmt.Fprintf(&b, "%s%-24s %10.2f ms%s%s\n", indent, p.Name, p.WallMS, share, attrString(p.Attrs))
			walk(indent+"  ", p.Children, p.WallMS)
		}
	}
	walk("  ", rep.Phases, rep.WallMS)
	writeSortedInt(&b, "counters", rep.Counters)
	writeSortedFloat(&b, "gauges", rep.Gauges)
	for _, h := range rep.Hists {
		fmt.Fprintf(&b, "hist %s: n=%d sum=%.4g mean=%.4g buckets=%v\n", h.Name, h.Count, h.Sum, h.Mean, h.Counts)
	}
	for _, ro := range rep.Rollings {
		fmt.Fprintf(&b, "rolling %s: n=%d p50=%.4g p90=%.4g p99=%.4g\n", ro.Name, ro.Count, ro.P50, ro.P90, ro.P99)
	}
	for _, p := range rep.Pools {
		fmt.Fprintf(&b, "pool %s: runs=%d tasks=%d workers=%d balance=%.2f busy_ms=%s\n",
			p.Name, p.Runs, p.Tasks, p.Workers, p.Balance, fmtBusy(p.BusyMS))
	}
	return b.String()
}

func attrString(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, attrs[k])
	}
	return "  [" + strings.Join(parts, " ") + "]"
}

func writeSortedInt(b *strings.Builder, title string, m map[string]int64) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(b, "%s:\n", title)
	for _, k := range keys {
		fmt.Fprintf(b, "  %-40s %d\n", k, m[k])
	}
}

func writeSortedFloat(b *strings.Builder, title string, m map[string]float64) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(b, "%s:\n", title)
	for _, k := range keys {
		fmt.Fprintf(b, "  %-40s %.6g\n", k, m[k])
	}
}

func fmtBusy(busy []float64) string {
	parts := make([]string, len(busy))
	for i, v := range busy {
		parts[i] = fmt.Sprintf("%.2f", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Expvar returns an expvar.Func exposing the live snapshot, so
// `expvar.Publish("tmedb", rec.Expvar())` surfaces the run report on
// /debug/vars next to the runtime's memstats.
func (r *Recorder) Expvar() expvar.Func {
	return func() any { return r.Snapshot(nil) }
}

// published maps an expvar name to the swappable slot backing the
// expvar.Func registered under it. expvar registrations are permanent
// (expvar.Publish panics on duplicates and offers no unpublish), so the
// indirection is what makes PublishExpvar idempotent: the expvar.Func is
// registered once per name and forever reads whichever recorder the slot
// currently holds.
var (
	publishMu sync.Mutex
	published = map[string]*atomic.Pointer[Recorder]{}
)

// PublishExpvar publishes the recorder's live snapshot under the given
// expvar name. It is idempotent per name: re-publishing atomically swaps
// which recorder backs the registered expvar.Func — what a long-running
// process needs when successive runs (or re-invoked tests) each create a
// fresh recorder, where the old expvar.Publish-on-every-call shape
// panicked the process on the second run. It returns an error, never
// panics, on genuine misuse: an empty name, or a name already taken by
// an expvar this package did not register.
func (r *Recorder) PublishExpvar(name string) error {
	if name == "" {
		return fmt.Errorf("obs: PublishExpvar with empty name")
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	slot, ok := published[name]
	if !ok {
		if expvar.Get(name) != nil {
			return fmt.Errorf("obs: expvar %q already registered outside this package", name)
		}
		slot = new(atomic.Pointer[Recorder])
		published[name] = slot
		expvar.Publish(name, expvar.Func(func() any { return slot.Load().Snapshot(nil) }))
	}
	slot.Store(r)
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
