package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// Flight is the serving tier's flight recorder: a fixed-size lock-free
// ring holding the last N completed requests, served as JSON at
// /debug/requests so a postmortem ("what did the daemon answer just
// before it degraded?") needs no log scraping. Writers claim a slot
// with one atomic increment and publish the record with one atomic
// pointer store — no mutex on the request path; the ring evicts FIFO by
// construction (slot = seq mod N). The nil Flight discards records.
type Flight struct {
	slots []atomic.Pointer[RequestRecord]
	head  atomic.Uint64
}

// defaultFlightSize is the ring capacity when the caller passes a
// non-positive size.
const defaultFlightSize = 256

// RequestRecord is one completed request as the flight recorder keeps
// it: the request params, which rung/cache path answered, and the
// outcome. Seq is the process-wide completion sequence number stamped
// by Record (FIFO eviction order).
type RequestRecord struct {
	Seq   uint64    `json:"seq"`
	ID    string    `json:"req_id"`
	Start time.Time `json:"start"`
	// DurationMS is the wall time from request receipt to completion.
	DurationMS float64 `json:"duration_ms"`
	// Status is the HTTP status the daemon answered.
	Status int     `json:"status"`
	Alg    string  `json:"alg,omitempty"`
	Model  string  `json:"model,omitempty"`
	Trace  string  `json:"trace,omitempty"`
	Src    int     `json:"src"`
	T0     float64 `json:"t0"`
	Delay  float64 `json:"delay"`
	// Rung is the degradation rung that answered (budgeted/shed solves).
	Rung string `json:"rung,omitempty"`
	// ShedRungs counts ladder rungs removed by admission control.
	ShedRungs int `json:"shed_rungs,omitempty"`
	// Cache is "hit", "miss", or empty when the request never reached
	// the cache.
	Cache string `json:"cache,omitempty"`
	// Err carries the error string of failed requests.
	Err string `json:"err,omitempty"`
	// PhaseMS is the flattened phase tree (slash-joined path → wall ms)
	// when the request ran with a per-request recorder.
	PhaseMS map[string]float64 `json:"phase_ms,omitempty"`
}

// NewFlight returns a flight recorder holding the last n requests.
func NewFlight(n int) *Flight {
	if n <= 0 {
		n = defaultFlightSize
	}
	return &Flight{slots: make([]atomic.Pointer[RequestRecord], n)}
}

// Record appends one completed request, evicting the oldest once the
// ring is full. Safe for concurrent use; each call publishes exactly
// one record.
func (f *Flight) Record(rec RequestRecord) {
	if f == nil {
		return
	}
	// Copy into an explicit allocation rather than taking &rec: a
	// parameter whose address escapes is moved to the heap in the
	// function prologue, which would charge the nil (disabled) path one
	// allocation too.
	p := new(RequestRecord)
	*p = rec
	p.Seq = f.head.Add(1) - 1
	f.slots[p.Seq%uint64(len(f.slots))].Store(p)
}

// Cap returns the ring capacity (0 on nil).
func (f *Flight) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Snapshot returns the recorded requests oldest-first. Taken while
// writers are active it is a consistent sample: every returned record
// was completely published, each sequence number appears at most once,
// and ordering is by completion sequence.
func (f *Flight) Snapshot() []RequestRecord {
	if f == nil {
		return nil
	}
	out := make([]RequestRecord, 0, len(f.slots))
	for i := range f.slots {
		if p := f.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// flightPage is the /debug/requests JSON envelope.
type flightPage struct {
	Cap      int             `json:"cap"`
	Recorded uint64          `json:"recorded"`
	Requests []RequestRecord `json:"requests"`
}

// ServeHTTP serves the snapshot as JSON (mount at /debug/requests).
func (f *Flight) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	page := flightPage{Requests: []RequestRecord{}}
	if f != nil {
		page.Cap = len(f.slots)
		page.Recorded = f.head.Load()
		page.Requests = f.Snapshot()
	}
	json.NewEncoder(w).Encode(page)
}
