package obs

import (
	"math"
	"sort"
	"sync"
)

// Rolling is a rolling-window value series for SLO quantile reporting:
// it keeps the last W observations in a ring plus a cumulative
// count/sum, and estimates quantiles over the window on demand. Unlike
// Histogram (fixed buckets, cumulative forever), a Rolling answers
// "what is p99 latency *right now*" — the window forgets old load
// regimes, which is what a latency panel wants from a long-running
// daemon.
//
// The nil Rolling (from a nil Recorder) discards writes. Observe on an
// enabled Rolling is mutex-guarded and allocation-free after
// construction; quantile estimation copies and sorts the window and
// belongs on the scrape/snapshot path, never the hot path.
type Rolling struct {
	mu  sync.Mutex
	buf []float64 // ring, capacity = window
	n   int64     // total observations ever (cumulative, for _count)
	sum float64   // cumulative sum (for _sum)
}

// defaultRollingWindow bounds quantile memory when the caller passes a
// non-positive window.
const defaultRollingWindow = 1024

// Rolling returns the named rolling window, creating it with capacity
// window on first use (later windows are ignored; first registration
// wins). Nil on a nil recorder.
func (r *Recorder) Rolling(name string, window int) *Rolling {
	if r == nil {
		return nil
	}
	if v, ok := r.rollings.Load(name); ok {
		return v.(*Rolling)
	}
	if window <= 0 {
		window = defaultRollingWindow
	}
	ro := &Rolling{buf: make([]float64, 0, window)}
	v, _ := r.rollings.LoadOrStore(name, ro)
	return v.(*Rolling)
}

// Observe records v, evicting the oldest observation once the window is
// full.
func (ro *Rolling) Observe(v float64) {
	if ro == nil {
		return
	}
	ro.mu.Lock()
	if len(ro.buf) < cap(ro.buf) {
		ro.buf = append(ro.buf, v)
	} else {
		ro.buf[ro.n%int64(cap(ro.buf))] = v
	}
	ro.n++
	ro.sum += v
	ro.mu.Unlock()
}

// Count returns the cumulative observation count (0 on nil).
func (ro *Rolling) Count() int64 {
	if ro == nil {
		return 0
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return ro.n
}

// Quantiles estimates the given quantiles (each in [0, 1]) over the
// current window with linear interpolation between order statistics.
// Returns NaNs while the window is empty, nil on a nil receiver.
func (ro *Rolling) Quantiles(qs ...float64) []float64 {
	if ro == nil {
		return nil
	}
	ro.mu.Lock()
	window := append([]float64(nil), ro.buf...)
	ro.mu.Unlock()
	out := make([]float64, len(qs))
	if len(window) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sort.Float64s(window)
	for i, q := range qs {
		out[i] = quantileSorted(window, q)
	}
	return out
}

// quantileSorted reads quantile q from an ascending-sorted window using
// the linear-interpolation estimator (rank = q·(n−1)).
func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := q * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// snapshot freezes the cumulative stats and the window copy.
func (ro *Rolling) snapshot() (n int64, sum float64, window []float64, capacity int) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return ro.n, ro.sum, append([]float64(nil), ro.buf...), cap(ro.buf)
}

// RollingReport is one rolling window's SLO summary: cumulative
// count/sum plus p50/p90/p99 over the current window (all zero while
// empty — encoding/json rejects NaN, so the report never carries one).
type RollingReport struct {
	Name   string  `json:"name"`
	Window int     `json:"window"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}
