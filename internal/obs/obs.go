// Package obs is the solver-wide observability layer: a metrics registry
// (counters, gauges, fixed-bucket histograms), hierarchical phase spans,
// worker-pool utilization accounting, and exporters (human summary,
// stable JSON run report, expvar map). It depends only on the standard
// library.
//
// Two contracts every instrumented package relies on (see DESIGN.md
// "Observability"):
//
//  1. Zero overhead when disabled — the nil *Recorder is the disabled
//     default. Every method of Recorder, Span, Counter, Gauge, Histogram,
//     and Pool is nil-safe and allocation-free on a nil receiver, so hot
//     paths carry instrumentation unconditionally. Guarded by the
//     AllocsPerRun test in this package.
//  2. Schedule invariance — recording is strictly write-only from the
//     solver's point of view: no planner ever reads a metric back, so
//     planned schedules are byte-identical with observability enabled or
//     disabled. Guarded by the determinism test in internal/core.
//
// Counters and gauges are safe for concurrent use (atomics); spans form
// a tree via per-goroutine current-phase stacks, so concurrent Schedule
// calls sharing one recorder each get a correctly nested subtree (their
// top-level phases become siblings under the root). Within one call the
// phases run sequentially on the calling goroutine; worker pools inside
// a phase only touch counters and pool stats, never spans.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder is one run's metric sink. The nil Recorder is the disabled
// default: every method no-ops. Create an enabled one with New.
type Recorder struct {
	mu    sync.Mutex
	clock func() time.Time
	root  *Span
	// cur maps goroutine id -> that goroutine's innermost open phase.
	// Absent entry = no open phase (StartPhase attaches to the root).
	// Entries are deleted when a goroutine pops back to the root, so the
	// map stays bounded by the number of concurrently planning callers.
	cur map[uint64]*Span

	counters sync.Map // string -> *Counter
	gauges   sync.Map // string -> *Gauge
	hists    sync.Map // string -> *Histogram
	pools    sync.Map // string -> *Pool
	rollings sync.Map // string -> *Rolling
}

// New returns an enabled recorder whose implicit root span starts now.
func New() *Recorder {
	r := &Recorder{clock: time.Now, cur: make(map[uint64]*Span)}
	r.root = &Span{r: r, name: "run", start: r.clock()}
	return r
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// SetClock replaces the time source (tests pin reports with a fake
// monotonic clock). Must be called before any span starts besides the
// root, whose start time is rewritten.
func (r *Recorder) SetClock(clock func() time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = clock
	r.root.start = clock()
	r.mu.Unlock()
}

// now returns the recorder's current time; callers hold r.mu or accept
// the benign race on clock replacement (SetClock is test-only setup).
func (r *Recorder) now() time.Time { return r.clock() }

// Counter is a monotonically increasing event count. The nil Counter
// (from a nil Recorder) discards writes.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil recorder; hot paths fetch the handle once per run and use
// the nil-safe Inc/Add in loops.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, new(Counter))
	return v.(*Counter)
}

// Gauge is a last-write-wins float value (sizes, rates, configuration).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// recorder).
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, new(Gauge))
	return v.(*Gauge)
}

// Histogram is a fixed-bucket histogram: bounds[i] is the inclusive
// upper edge of bucket i, with one implicit overflow bucket. Bounds are
// frozen at registration; concurrent Observe calls are safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	n      atomic.Int64
}

// Observe records v into its bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the running sum of every observed value (0 on nil) — the
// Prometheus _sum companion to the bucket counts, and what mean-latency
// panels divide by Count.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later bounds are ignored; first
// registration wins). bounds must be sorted ascending. Nil on a nil
// recorder.
func (r *Recorder) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds)+1)
	v, _ := r.hists.LoadOrStore(name, h)
	return v.(*Histogram)
}

// RecordCache samples a cache's absolute hit/miss/size triple into the
// conventional gauges cache.<name>.hits / .misses / .size; the report
// derives cache.<name>.hit_rate from them. Idempotent — call it again
// whenever fresher numbers are available.
func (r *Recorder) RecordCache(name string, hits, misses, size int64) {
	if r == nil {
		return
	}
	r.Gauge("cache." + name + ".hits").Set(float64(hits))
	r.Gauge("cache." + name + ".misses").Set(float64(misses))
	r.Gauge("cache." + name + ".size").Set(float64(size))
}
