package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// Request-scoped structured logging. The Logger is a thin nil-safe
// veneer over log/slog that follows the same two contracts as the rest
// of this package: the nil *Logger is the disabled default and every
// method on it is a zero-allocation no-op (guarded by the AllocsPerRun
// test), and logging is strictly write-only — no solver decision ever
// reads a log back, so schedules are byte-identical with logging on or
// off.
//
// The serving tier mints one process-unique request ID per /solve call
// (NewRequestID), binds it to a derived Logger (With), and threads that
// logger through the solve via context.Context (WithLogger/LoggerFrom),
// so admission, shedding, cache, degradation-rung, cancellation, and
// error-taxonomy events all carry the same req_id without any solver
// layer knowing about HTTP.
//
// Logging idiom (enforced by the tmedbvet logconst analyzer): message
// strings are constants — variable data goes in key-value Attrs, never
// fmt.Sprintf-ed into the message. Constant messages are what make logs
// aggregatable: every "solve.done" line is the same event.

// Logger is a leveled structured event sink. The nil Logger discards
// everything at zero cost; create an enabled one with NewLogger (or the
// NewTextLogger/NewJSONLogger conveniences).
type Logger struct {
	s *slog.Logger
}

// NewLogger wraps a slog handler. A nil handler yields the disabled
// (nil) logger.
func NewLogger(h slog.Handler) *Logger {
	if h == nil {
		return nil
	}
	return &Logger{s: slog.New(h)}
}

// NewTextLogger returns a logger writing logfmt-style lines to w.
func NewTextLogger(w io.Writer) *Logger {
	return NewLogger(slog.NewTextHandler(w, nil))
}

// NewJSONLogger returns a logger writing one JSON object per line to w.
func NewJSONLogger(w io.Writer) *Logger {
	return NewLogger(slog.NewJSONHandler(w, nil))
}

// Enabled reports whether the logger records anything. Call sites that
// must compute attribute values (error strings, formatted params) gate
// on it so the disabled path stays allocation-free.
func (l *Logger) Enabled() bool { return l != nil }

// With returns a derived logger with attrs bound to every subsequent
// event — how a request ID is attached once and carried everywhere.
// Returns nil (still disabled) on a nil receiver.
func (l *Logger) With(attrs ...Attr) *Logger {
	if l == nil {
		return nil
	}
	bound := make([]any, len(attrs))
	for i, a := range attrs {
		bound[i] = toSlog(a)
	}
	return &Logger{s: l.s.With(bound...)}
}

// Event logs one structured event at info level. The message must be a
// constant string (the logconst contract); variable data rides in
// attrs.
func (l *Logger) Event(msg string, attrs ...Attr) {
	if l == nil {
		return
	}
	l.log(slog.LevelInfo, msg, nil, attrs)
}

// Error logs one structured error event. err is attached under the
// "err" key next to the caller's attrs (taxonomy keys like "kind"
// belong there).
func (l *Logger) Error(msg string, err error, attrs ...Attr) {
	if l == nil {
		return
	}
	l.log(slog.LevelError, msg, err, attrs)
}

// log converts the package's non-boxing Attrs to slog attrs. attrs is
// only ranged over, never retained, so the caller's variadic slice
// stays on its stack — that is what keeps the nil path allocation-free.
func (l *Logger) log(level slog.Level, msg string, err error, attrs []Attr) {
	out := make([]slog.Attr, 0, len(attrs)+1)
	for _, a := range attrs {
		out = append(out, toSlog(a))
	}
	if err != nil {
		out = append(out, slog.String("err", err.Error()))
	}
	l.s.LogAttrs(context.Background(), level, msg, out...)
}

func toSlog(a Attr) slog.Attr {
	if a.IsStr {
		return slog.String(a.Key, a.Str)
	}
	return slog.Float64(a.Key, a.Num)
}

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Str: v, IsStr: true} }

// F64 builds a numeric attribute.
func F64(key string, v float64) Attr { return Attr{Key: key, Num: v} }

// I builds an integer attribute (stored as a float64, the same
// convention as span attributes — values are JSON numbers either way).
func I(key string, v int) Attr { return Attr{Key: key, Num: float64(v)} }

// loggerKey is the context key carrying the request-scoped logger.
type loggerKey struct{}

// WithLogger returns a context carrying l. A nil logger returns ctx
// unchanged, so the disabled path allocates no context frame.
func WithLogger(ctx context.Context, l *Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey{}, l)
}

// LoggerFrom extracts the request-scoped logger from ctx, nil (the
// disabled logger) when none was attached. Safe on a nil context.
func LoggerFrom(ctx context.Context) *Logger {
	if ctx == nil {
		return nil
	}
	l, _ := ctx.Value(loggerKey{}).(*Logger)
	return l
}

// Request IDs: a per-process random prefix plus a monotonic counter.
// The prefix makes IDs unique across daemon restarts (two processes
// never mint the same ID, so fleet-wide log aggregation can join on
// req_id alone); the counter makes them unique and cheap within one.
var (
	reqSeq    atomic.Uint64
	reqPrefix = newReqPrefix()
)

func newReqPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively unreachable; fall back to
		// a fixed prefix rather than refusing to mint IDs.
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// NewRequestID mints a process-unique request ID ("<proc>-<seq>").
// Minting allocates (it builds a string) and belongs at the serving
// boundary, never on the per-transmission hot path.
func NewRequestID() string {
	return fmt.Sprintf("%s-%08x", reqPrefix, reqSeq.Add(1))
}
