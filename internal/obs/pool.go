package obs

import (
	"sync"
	"time"
)

// Pool accumulates worker-pool utilization for one named pool across a
// run: how many pool launches happened, how many tasks they processed,
// and how long each worker slot was busy. The nil Pool discards writes.
// Observe is called once per worker per pool launch, so a mutex (not
// atomics) keeps the per-worker slice simple.
type Pool struct {
	mu      sync.Mutex
	runs    int64
	tasks   int64
	busy    []time.Duration // per worker slot, grown on demand
	maxSeen int             // widest pool observed
}

// Pool returns the named pool accumulator, creating it on first use
// (nil on a nil recorder).
func (r *Recorder) Pool(name string) *Pool {
	if r == nil {
		return nil
	}
	if v, ok := r.pools.Load(name); ok {
		return v.(*Pool)
	}
	v, _ := r.pools.LoadOrStore(name, new(Pool))
	return v.(*Pool)
}

// Observe records that worker slot w processed tasks tasks over busy
// wall time in one pool launch. Slots index from 0; the serial fallback
// reports everything as slot 0.
func (p *Pool) Observe(w int, tasks int64, busy time.Duration) {
	if p == nil || w < 0 {
		return
	}
	p.mu.Lock()
	for len(p.busy) <= w {
		p.busy = append(p.busy, 0)
	}
	p.busy[w] += busy
	p.tasks += tasks
	if w+1 > p.maxSeen {
		p.maxSeen = w + 1
	}
	p.mu.Unlock()
}

// Launched records one pool launch (called once per ForEachPool-style
// invocation, regardless of pool width).
func (p *Pool) Launched() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.runs++
	p.mu.Unlock()
}

// snapshot returns a copy of the accumulated state.
func (p *Pool) snapshot() (runs, tasks int64, busy []time.Duration, width int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.runs, p.tasks, append([]time.Duration(nil), p.busy...), p.maxSeen
}
