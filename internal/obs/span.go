package obs

import (
	"time"
)

// Attr is one key/value annotation on a span. Exactly one of Num/Str is
// meaningful, selected by IsStr; the split (instead of an `any` field)
// keeps the nil-receiver setters allocation-free — boxing a float64 into
// an interface would allocate before the nil check could run.
type Attr struct {
	Key   string
	Num   float64
	Str   string
	IsStr bool
}

// Span is one phase of a run: a named interval with attributes and child
// phases. The nil Span (from a nil Recorder) discards everything.
type Span struct {
	r        *Recorder
	name     string
	depth    int
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

// maxPhaseDepth bounds phase-tree nesting. The serial pipeline is ~4
// levels deep; the cap only engages when concurrent Schedule calls share
// one recorder (e.g. a figure sweep), where interleaved Start/End would
// otherwise chain spans into an unboundedly deep tree. Spans past the
// cap attach to the root instead, keeping reports bounded for JSON
// consumers at the cost of flattening concurrent nesting.
const maxPhaseDepth = 16

// StartPhase opens a phase as a child of the innermost open phase (the
// root when none is open) and makes it current. Phases are meant for the
// serial orchestration layers — the pipeline stages of one Schedule call
// run sequentially, so a stack models the nesting exactly; worker pools
// inside a phase must only touch counters/pools. Returns nil on a nil
// recorder.
func (r *Recorder) StartPhase(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	parent := r.cur
	if parent.depth >= maxPhaseDepth {
		parent = r.root
	}
	sp := &Span{r: r, name: name, depth: parent.depth + 1, start: r.now()}
	parent.children = append(parent.children, sp)
	r.cur = sp
	r.mu.Unlock()
	return sp
}

// End closes the phase, recording its wall time. Ending a phase that is
// not current (mismatched nesting under concurrent misuse) still stamps
// the end time; the current pointer only pops when it matches, so a
// stray End cannot corrupt the stack.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	r := sp.r
	r.mu.Lock()
	if sp.end.IsZero() {
		sp.end = r.now()
	}
	if r.cur == sp {
		r.cur = findParent(r.root, sp)
	}
	r.mu.Unlock()
}

// findParent walks the tree for sp's parent (the tree is tiny — a dozen
// phases — so the walk is cheaper than storing parent pointers that
// would complicate snapshotting).
func findParent(node, sp *Span) *Span {
	for _, c := range node.children {
		if c == sp {
			return node
		}
		if p := findParent(c, sp); p != nil {
			return p
		}
	}
	return nil
}

// SetFloat attaches a numeric attribute.
func (sp *Span) SetFloat(key string, v float64) {
	if sp == nil {
		return
	}
	sp.r.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Num: v})
	sp.r.mu.Unlock()
}

// SetInt attaches an integer attribute (stored as a float64 — run
// report values are JSON numbers either way).
func (sp *Span) SetInt(key string, v int) { sp.SetFloat(key, float64(v)) }

// SetStr attaches a string attribute.
func (sp *Span) SetStr(key, v string) {
	if sp == nil {
		return
	}
	sp.r.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Str: v, IsStr: true})
	sp.r.mu.Unlock()
}

// Duration returns the span's wall time: end-start when closed, zero on
// nil, time-since-start while still open.
func (sp *Span) Duration() time.Duration {
	if sp == nil {
		return 0
	}
	sp.r.mu.Lock()
	defer sp.r.mu.Unlock()
	return sp.durationLocked()
}

func (sp *Span) durationLocked() time.Duration {
	if sp.end.IsZero() {
		return sp.r.now().Sub(sp.start)
	}
	return sp.end.Sub(sp.start)
}
