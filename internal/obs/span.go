package obs

import (
	"runtime"
	"time"
)

// Attr is one key/value annotation on a span. Exactly one of Num/Str is
// meaningful, selected by IsStr; the split (instead of an `any` field)
// keeps the nil-receiver setters allocation-free — boxing a float64 into
// an interface would allocate before the nil check could run.
type Attr struct {
	Key   string
	Num   float64
	Str   string
	IsStr bool
}

// Span is one phase of a run: a named interval with attributes and child
// phases. The nil Span (from a nil Recorder) discards everything.
type Span struct {
	r        *Recorder
	name     string
	depth    int
	parent   *Span
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

// maxPhaseDepth bounds phase-tree nesting. The serial pipeline is ~4
// levels deep; the cap is a safety net against pathological nesting
// (e.g. a recursive solver opening a span per level). Spans past the
// cap attach to the root instead, keeping reports bounded for JSON
// consumers.
const maxPhaseDepth = 16

// StartPhase opens a phase as a child of the innermost phase open on the
// calling goroutine (the root when none is open) and makes it that
// goroutine's current phase. The per-goroutine stacks are what keep
// concurrent Schedule calls sharing one recorder honest: each call's
// pipeline (dts → auxgraph → steiner) runs serially on its own
// goroutine, so its spans nest correctly, while spans from other
// goroutines become siblings under the root instead of splicing into a
// foreign call's open phase (the duplicated eedcb→dts→eedcb nesting
// visible in BENCH_pr3.json, which double-counted planner wall time).
// Returns nil on a nil recorder.
func (r *Recorder) StartPhase(name string) *Span {
	if r == nil {
		return nil
	}
	g := goroutineID()
	r.mu.Lock()
	parent := r.cur[g]
	if parent == nil || parent.depth >= maxPhaseDepth {
		parent = r.root
	}
	sp := &Span{r: r, name: name, depth: parent.depth + 1, parent: parent, start: r.now()}
	parent.children = append(parent.children, sp)
	r.cur[g] = sp
	r.mu.Unlock()
	return sp
}

// End closes the phase, recording its wall time. Ending a phase that is
// not the goroutine's current one (mismatched nesting under concurrent
// misuse) still stamps the end time; the current pointer only pops when
// it matches, so a stray End cannot corrupt the stack.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	g := goroutineID()
	r := sp.r
	r.mu.Lock()
	if sp.end.IsZero() {
		sp.end = r.now()
	}
	if r.cur[g] == sp {
		if sp.parent == nil || sp.parent == r.root {
			delete(r.cur, g) // keep the map from growing with dead goroutines
		} else {
			r.cur[g] = sp.parent
		}
	}
	r.mu.Unlock()
}

// goroutineID extracts the current goroutine's id from the runtime stack
// header ("goroutine 123 [running]:"). ~1µs per call — spans are opened
// a handful of times per solve, never inside the per-vertex hot loops,
// so the cost is noise; in exchange the span tree is correct under
// concurrent recorder sharing. The id is only ever used as a map key:
// no ordering or planner decision ever depends on it (determinism
// contract: spans are write-only).
func goroutineID() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine " (10 bytes), parse digits up to the next space.
	var id uint64
	for _, c := range buf[10:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// SetFloat attaches a numeric attribute.
func (sp *Span) SetFloat(key string, v float64) {
	if sp == nil {
		return
	}
	sp.r.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Num: v})
	sp.r.mu.Unlock()
}

// SetInt attaches an integer attribute (stored as a float64 — run
// report values are JSON numbers either way).
func (sp *Span) SetInt(key string, v int) { sp.SetFloat(key, float64(v)) }

// SetStr attaches a string attribute.
func (sp *Span) SetStr(key, v string) {
	if sp == nil {
		return
	}
	sp.r.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Str: v, IsStr: true})
	sp.r.mu.Unlock()
}

// Duration returns the span's wall time: end-start when closed, zero on
// nil, time-since-start while still open.
func (sp *Span) Duration() time.Duration {
	if sp == nil {
		return 0
	}
	sp.r.mu.Lock()
	defer sp.r.mu.Unlock()
	return sp.durationLocked()
}

func (sp *Span) durationLocked() time.Duration {
	if sp.end.IsZero() {
		return sp.r.now().Sub(sp.start)
	}
	return sp.end.Sub(sp.start)
}
