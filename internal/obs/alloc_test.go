package obs

import (
	"context"
	"testing"
	"time"
)

// TestAllocsPerRunDisabledHotPaths pins the zero-overhead-when-disabled
// contract: every operation an instrumented hot path performs against
// the nil (disabled) recorder must allocate nothing. This is what lets
// dts/auxgraph/steiner/nlp/sim carry instrumentation unconditionally.
// CI runs this guard with -count=3 (see .github/workflows/ci.yml, job
// "obs overhead").
func TestAllocsPerRunDisabledHotPaths(t *testing.T) {
	var r *Recorder
	var c *Counter
	var g *Gauge
	var h *Histogram
	var p *Pool
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.StartPhase("phase")
		sp.SetFloat("k", 1.0)
		sp.SetInt("n", 3)
		sp.SetStr("s", "v")
		c.Inc()
		c.Add(3)
		_ = c.Value()
		g.Set(0.5)
		h.Observe(2.5)
		p.Observe(0, 10, time.Millisecond)
		p.Launched()
		r.Counter("x").Inc()
		r.Gauge("y").Set(1)
		r.Pool("z").Observe(1, 1, 0)
		r.RecordCache("memo", 1, 2, 3)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestAllocsPerRunDisabledTelemetry extends the same contract to the
// serving-tier telemetry added for the daemon: the nil Logger, Rolling
// window, and Flight recorder must be free when disabled, and fetching
// the absent logger from a context must not allocate. The variadic
// attrs stay on the caller's stack because Event/Error only range over
// them.
func TestAllocsPerRunDisabledTelemetry(t *testing.T) {
	var l *Logger
	var ro *Rolling
	var f *Flight
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		l.Event("solve.done", Str("rung", "full"), I("shed", 0), F64("ms", 1.5))
		l.Error("solve.failed", nil, Str("kind", "none"))
		_ = l.Enabled()
		_ = LoggerFrom(ctx)
		_ = WithLogger(ctx, nil)
		ro.Observe(1.5)
		_ = ro.Count()
		f.Record(RequestRecord{Status: 200})
		_ = f.Cap()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestAllocsPerRunEnabledCounterSteadyState checks the enabled counter
// fast path too: once the handle exists, Inc/Add/Set allocate nothing,
// so per-event costs stay flat even with observability on.
func TestAllocsPerRunEnabledCounterSteadyState(t *testing.T) {
	r := New()
	c := r.Counter("ops")
	g := r.Gauge("ratio")
	h := r.Histogram("sizes", []float64{1, 10})
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(0.5)
		h.Observe(5)
	})
	if allocs != 0 {
		t.Fatalf("enabled steady-state instrumentation allocates %.1f allocs/op, want 0", allocs)
	}
}
