package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is a running pprof/expvar/metrics endpoint: net/http/pprof
// under /debug/pprof/, the expvar map (including every recorder
// published via PublishExpvar) under /debug/vars, and the Prometheus
// exposition of those same recorders under /metrics. It exists because both tmedb and
// tmedbd used to hand-roll this — tmedb with a bare `go http.Serve(ln,
// nil)` whose error vanished and whose listener nothing ever closed.
// The helper owns the listener, reports the serve error, and shuts down
// gracefully when its context is cancelled or Close is called.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
	err  error // serve error; written once before done closes
}

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// debug requests (profiles can be long-running) before cutting them off.
const shutdownGrace = 5 * time.Second

// ServeDebug binds addr and serves the debug endpoints on it until ctx
// is cancelled or Close is called. It returns after the listener is
// bound, so the reported Addr is immediately connectable; the serve loop
// runs in the background and its terminal error is available from Wait.
// The handlers are mounted on a private mux — nothing leaks onto
// http.DefaultServeMux.
func ServeDebug(ctx context.Context, addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", MetricsHandler())
	d := &DebugServer{
		ln:   ln,
		srv:  &http.Server{Handler: mux},
		done: make(chan struct{}),
	}
	go func() {
		err := d.srv.Serve(ln)
		if err == http.ErrServerClosed {
			// The expected exit: someone asked for shutdown.
			err = nil
		}
		d.err = err
		close(d.done)
	}()
	go func() {
		select {
		case <-ctx.Done():
			d.shutdown()
		case <-d.done:
		}
	}()
	return d, nil
}

func (d *DebugServer) shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if d.srv.Shutdown(ctx) != nil {
		// Grace expired with requests still in flight; cut them off so
		// the serve loop (and Wait) terminates.
		d.srv.Close()
	}
}

// Addr returns the bound listener address (useful with ":0").
func (d *DebugServer) Addr() net.Addr { return d.ln.Addr() }

// Wait blocks until the serve loop exits and returns its terminal error
// (nil after a clean shutdown).
func (d *DebugServer) Wait() error {
	<-d.done
	return d.err
}

// Close shuts the server down gracefully and returns the serve loop's
// terminal error. Safe to call more than once and concurrently with
// context cancellation.
func (d *DebugServer) Close() error {
	d.shutdown()
	return d.Wait()
}
