package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestPublishExpvarIdempotent is the regression test for the
// once-per-process publish bug: PublishExpvar used to call
// expvar.Publish directly, which panics on a duplicate name, so any
// process creating a second recorder for the same name — a daemon
// serving its second request, a test re-running main's run() — crashed.
// Re-publishing must instead atomically swap which recorder backs the
// registered expvar.Func.
func TestPublishExpvarIdempotent(t *testing.T) {
	const name = "obs_test_idempotent"
	r1 := New()
	r1.Counter("probe").Add(1)
	if err := r1.PublishExpvar(name); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	// The old shape panicked here.
	r2 := New()
	r2.Counter("probe").Add(42)
	if err := r2.PublishExpvar(name); err != nil {
		t.Fatalf("re-publish: %v", err)
	}

	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar %q not registered", name)
	}
	var rep Report
	if err := json.Unmarshal([]byte(v.String()), &rep); err != nil {
		t.Fatalf("expvar %q is not a report: %v", name, err)
	}
	if got := rep.Counters["probe"]; got != 42 {
		t.Fatalf("expvar serves probe=%d, want 42 (the re-published recorder)", got)
	}
}

func TestPublishExpvarErrors(t *testing.T) {
	r := New()
	if err := r.PublishExpvar(""); err == nil {
		t.Error("empty name must be an error")
	}
	// A name somebody else already registered with expvar directly is
	// genuine misuse: we cannot take it over, but we must not panic.
	// Registration is once per process (expvar.NewInt itself panics on
	// reuse), so guard for -count>1 reruns.
	const foreign = "obs_test_foreign"
	if expvar.Get(foreign) == nil {
		expvar.NewInt(foreign)
	}
	if err := r.PublishExpvar(foreign); err == nil {
		t.Error("foreign expvar name must be an error, not a panic or a silent overwrite")
	}
}

func TestPublishExpvarNilRecorder(t *testing.T) {
	// The nil recorder is the disabled default everywhere else; a nil
	// publish must serve the zero report rather than crash the expvar
	// read path.
	var r *Recorder
	const name = "obs_test_nil"
	if err := r.PublishExpvar(name); err != nil {
		t.Fatalf("nil publish: %v", err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(expvar.Get(name).String()), &rep); err != nil {
		t.Fatalf("nil-backed expvar: %v", err)
	}
	if rep.Version != reportVersion {
		t.Fatalf("nil-backed expvar version = %d, want %d", rep.Version, reportVersion)
	}
}

// TestServeDebugLifecycle exercises the shared debug server: the
// listener is connectable when ServeDebug returns, /debug/vars serves
// the expvar map, and cancelling the context shuts the listener down and
// resolves Wait with a nil error (http.ErrServerClosed is the clean
// exit, not a failure).
func TestServeDebugLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	d, err := ServeDebug(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s/debug/vars", d.Addr())
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if !strings.Contains(string(body), "memstats") {
		t.Errorf("/debug/vars does not look like an expvar map")
	}

	cancel()
	if err := d.Wait(); err != nil {
		t.Fatalf("Wait after cancel: %v", err)
	}
	// The listener must actually be down.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := http.Get(url); err != nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("listener still accepting after shutdown")
}

func TestServeDebugCloseIdempotent(t *testing.T) {
	d, err := ServeDebug(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
