package obs

import (
	"encoding/json"
	"io"
)

// Chrome trace-event (catapult) export of the phase tree: the JSON
// array format chrome://tracing, Perfetto, and speedscope all open
// directly, so a slow solve's dts/auxgraph/steiner breakdown is one
// download away from a flame view. Spans become complete ("ph": "X")
// events with microsecond timestamps relative to the run's root span;
// span attributes ride in "args". Each top-level phase gets its own
// track id so concurrent solves sharing one recorder render as parallel
// tracks instead of one corrupted stack.

// TraceEvent is one Chrome trace-event entry (the subset of the
// catapult schema the export uses).
type TraceEvent struct {
	Name string `json:"name"`
	// Ph is the event phase; the export emits complete events ("X").
	Ph string `json:"ph"`
	// Ts is the start timestamp in microseconds relative to the run.
	Ts float64 `json:"ts"`
	// Dur is the duration in microseconds.
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceEvents flattens the report's phase tree into catapult events.
// The synthetic root event carries the run's wall time; every phase
// keeps its recorded start offset, so gaps between phases (queue wait,
// non-instrumented work) stay visible.
func (rep Report) TraceEvents() []TraceEvent {
	events := []TraceEvent{{Name: "run", Ph: "X", Ts: 0, Dur: rep.WallMS * 1000, Pid: 1, Tid: 1}}
	var walk func(p PhaseReport, tid int)
	walk = func(p PhaseReport, tid int) {
		events = append(events, TraceEvent{
			Name: p.Name,
			Ph:   "X",
			Ts:   p.StartMS * 1000,
			Dur:  p.WallMS * 1000,
			Pid:  1,
			Tid:  tid,
			Args: p.Attrs,
		})
		for _, c := range p.Children {
			walk(c, tid)
		}
	}
	for i, p := range rep.Phases {
		walk(p, i+1)
	}
	return events
}

// WriteTrace writes the catapult JSON array ready for a trace viewer.
// The bytes are stable for a given snapshot (args maps marshal with
// sorted keys).
func (rep Report) WriteTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(rep.TraceEvents())
}
