package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) over the recorder
// registry. Counters and gauges map directly; Histograms render with
// cumulative buckets plus the running _sum/_count; Rollings render as
// summaries with p50/p90/p99 quantile labels; Pools render as labeled
// per-pool gauges. Metric names are the registry's dotted names with
// dots folded to underscores and a family prefix ("tmedbd.requests"
// under prefix "tmedbd" → tmedbd_requests), so one scrape endpoint can
// serve several recorders without collisions.

// promContentType is the exposition-format content type Prometheus
// scrapers negotiate.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the report in exposition format. prefix
// namespaces every metric family; a metric already carrying the prefix
// as its first dotted segment is not double-prefixed.
func (rep Report) WritePrometheus(w io.Writer, prefix string) error {
	pw := &promWriter{w: w, prefix: prefix}

	names := make([]string, 0, len(rep.Counters))
	for n := range rep.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pw.family(n, "counter")
		pw.sample(n, "", float64(rep.Counters[n]))
	}

	names = names[:0]
	for n := range rep.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pw.family(n, "gauge")
		pw.sample(n, "", rep.Gauges[n])
	}

	for _, h := range rep.Hists {
		pw.family(h.Name, "histogram")
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatFloat(h.Bounds[i])
			}
			pw.sample(h.Name+"_bucket", `le="`+escapeLabel(le)+`"`, float64(cum))
		}
		pw.sample(h.Name+"_sum", "", h.Sum)
		pw.sample(h.Name+"_count", "", float64(h.Count))
	}

	for _, ro := range rep.Rollings {
		pw.family(ro.Name, "summary")
		if ro.Count > 0 {
			pw.sample(ro.Name, `quantile="0.5"`, ro.P50)
			pw.sample(ro.Name, `quantile="0.9"`, ro.P90)
			pw.sample(ro.Name, `quantile="0.99"`, ro.P99)
		}
		pw.sample(ro.Name+"_sum", "", ro.Sum)
		pw.sample(ro.Name+"_count", "", float64(ro.Count))
	}

	for _, p := range rep.Pools {
		label := `pool="` + escapeLabel(p.Name) + `"`
		pw.family("pool.runs", "gauge")
		pw.sample("pool.runs", label, float64(p.Runs))
		pw.family("pool.tasks", "gauge")
		pw.sample("pool.tasks", label, float64(p.Tasks))
	}
	return pw.err
}

// promWriter accumulates the first write error so the render loop stays
// linear; TYPE lines are emitted once per family even when (pool
// metrics) the same family recurs.
type promWriter struct {
	w      io.Writer
	prefix string
	seen   map[string]bool
	err    error
}

func (pw *promWriter) name(metric string) string {
	full := metric
	if pw.prefix != "" && full != pw.prefix && !strings.HasPrefix(full, pw.prefix+".") {
		full = pw.prefix + "." + full
	}
	return sanitizeMetricName(full)
}

func (pw *promWriter) family(metric, typ string) {
	n := pw.name(metric)
	if pw.seen == nil {
		pw.seen = map[string]bool{}
	}
	if pw.seen[n] || pw.err != nil {
		return
	}
	pw.seen[n] = true
	_, err := fmt.Fprintf(pw.w, "# TYPE %s %s\n", n, typ)
	if pw.err == nil {
		pw.err = err
	}
}

func (pw *promWriter) sample(metric, labels string, v float64) {
	if pw.err != nil {
		return
	}
	n := pw.name(metric)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, err := fmt.Fprintf(pw.w, "%s%s %s\n", n, labels, formatFloat(v))
	if pw.err == nil {
		pw.err = err
	}
}

// sanitizeMetricName folds a dotted registry name onto the exposition
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// PromHandler returns an http.Handler serving the recorder's live
// snapshot in exposition format under the given family prefix. Safe on
// a nil recorder (serves the empty exposition).
func (r *Recorder) PromHandler(prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", promContentType)
		r.Snapshot(nil).WritePrometheus(w, prefix)
	})
}

// MetricsHandler serves every recorder published via PublishExpvar as
// one exposition page, each under its published name as the family
// prefix — the /metrics twin of /debug/vars, mounted by ServeDebug so
// tmedb -pprof and tmedbd -debug share one scrape surface.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", promContentType)
		publishMu.Lock()
		names := make([]string, 0, len(published))
		for n := range published {
			names = append(names, n)
		}
		recs := make([]*Recorder, len(names))
		sort.Strings(names)
		for i, n := range names {
			recs[i] = published[n].Load()
		}
		publishMu.Unlock()
		for i, n := range names {
			recs[i].Snapshot(nil).WritePrometheus(w, n)
		}
	})
}
