package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestLoggerEventAttrs pins the structured-log shape: constant message,
// key-value attrs, bound req_id shared across events of one request.
func TestLoggerEventAttrs(t *testing.T) {
	var buf bytes.Buffer
	lg := NewJSONLogger(&buf).With(Str("req_id", "r-1"))
	lg.Event("solve.done", Str("rung", "greed"), I("shed_rungs", 2), F64("ms", 1.5))
	lg.Error("solve.failed", fmt.Errorf("boom"), Str("kind", "internal"))

	dec := json.NewDecoder(&buf)
	var first, second map[string]any
	if err := dec.Decode(&first); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(&second); err != nil {
		t.Fatal(err)
	}
	if first["msg"] != "solve.done" || first["req_id"] != "r-1" || first["rung"] != "greed" {
		t.Errorf("event line missing fields: %v", first)
	}
	if first["shed_rungs"] != 2.0 || first["ms"] != 1.5 {
		t.Errorf("numeric attrs wrong: %v", first)
	}
	if second["msg"] != "solve.failed" || second["err"] != "boom" || second["req_id"] != "r-1" || second["level"] != "ERROR" {
		t.Errorf("error line missing fields: %v", second)
	}
}

// TestLoggerContextThreading pins WithLogger/LoggerFrom: a logger rides
// the context; an absent or nil logger comes back as the disabled nil.
func TestLoggerContextThreading(t *testing.T) {
	if LoggerFrom(context.Background()) != nil {
		t.Error("empty context yielded a logger")
	}
	//lint:ignore SA1012 nil-context safety is part of the contract
	if LoggerFrom(nil) != nil {
		t.Error("nil context yielded a logger")
	}
	ctx := WithLogger(context.Background(), nil)
	if ctx != context.Background() {
		t.Error("nil logger allocated a context frame")
	}
	var buf bytes.Buffer
	lg := NewTextLogger(&buf)
	got := LoggerFrom(WithLogger(context.Background(), lg))
	if got != lg {
		t.Error("logger did not round-trip through the context")
	}
	got.Event("hello")
	if !strings.Contains(buf.String(), "hello") {
		t.Errorf("threaded logger did not write: %q", buf.String())
	}
}

// TestNewRequestIDUnique pins process-uniqueness under concurrency.
func TestNewRequestIDUnique(t *testing.T) {
	const n = 1000
	var mu sync.Mutex
	seen := make(map[string]bool, n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				id := NewRequestID()
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate request id %s", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// TestRollingQuantiles pins the window semantics: quantiles cover only
// the last W observations while count/sum stay cumulative.
func TestRollingQuantiles(t *testing.T) {
	r := New()
	ro := r.Rolling("lat", 100)
	if got := ro.Quantiles(0.5); len(got) != 1 || got[0] == got[0] { // NaN check
		t.Errorf("empty window p50 = %v, want NaN", got)
	}
	// 200 observations; only the last 100 (100..199) are in the window.
	for i := 0; i < 200; i++ {
		ro.Observe(float64(i))
	}
	qs := ro.Quantiles(0, 0.5, 1)
	if qs[0] != 100 || qs[2] != 199 {
		t.Errorf("window edges = %v, want [100 _ 199]", qs)
	}
	if qs[1] < 149 || qs[1] > 150 {
		t.Errorf("p50 = %v, want ~149.5", qs[1])
	}
	if ro.Count() != 200 {
		t.Errorf("count = %d, want cumulative 200", ro.Count())
	}
	rep := r.Snapshot(nil)
	if len(rep.Rollings) != 1 || rep.Rollings[0].Name != "lat" {
		t.Fatalf("report rollings = %+v", rep.Rollings)
	}
	rr := rep.Rollings[0]
	if rr.Count != 200 || rr.Window != 100 || rr.Sum != 199*200/2 {
		t.Errorf("rolling report = %+v", rr)
	}
	if rr.P50 < 149 || rr.P50 > 150 || rr.P99 < 198 || rr.P99 > 199 {
		t.Errorf("rolling quantiles = %+v", rr)
	}
	// The report must stay JSON-marshalable even with an empty window.
	r2 := New()
	r2.Rolling("empty", 4)
	var buf bytes.Buffer
	if err := r2.Snapshot(nil).WriteJSON(&buf); err != nil {
		t.Errorf("empty rolling broke the JSON report: %v", err)
	}
}

// TestHistogramSum pins the running-sum export alongside buckets.
func TestHistogramSum(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Sum() != 55.5 {
		t.Errorf("Sum = %v, want 55.5", h.Sum())
	}
	rep := r.Snapshot(nil)
	if len(rep.Hists) != 1 || rep.Hists[0].Sum != 55.5 {
		t.Errorf("report hist sum = %+v, want 55.5", rep.Hists)
	}
	if rep.Hists[0].Mean != 18.5 {
		t.Errorf("report hist mean = %v, want 18.5", rep.Hists[0].Mean)
	}
}

// expositionLine matches one exposition sample:
// name{labels} value — the grammar the scrape validator in the daemon
// soak also enforces.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// ValidateExposition scans Prometheus text-format output and returns
// the set of sample names seen, failing t on any malformed line. Shared
// with the daemon tests via this package's export test hook.
func ValidateExposition(t *testing.T, body string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := expositionLine.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed exposition line: %q", line)
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		names[name] = true
	}
	return names
}

// TestWritePrometheus pins the exposition rendering: counters, gauges,
// histogram cumulative buckets with _sum/_count, rolling summaries with
// quantile labels, and name sanitization under a family prefix.
func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("cache.hits").Add(3)
	r.Gauge("queue.waiting").Set(2)
	h := r.Histogram("lat_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	ro := r.Rolling("wait_ms", 8)
	ro.Observe(1)
	ro.Observe(3)
	r.Pool("steiner").Observe(0, 4, time.Millisecond)

	var buf bytes.Buffer
	if err := r.Snapshot(nil).WritePrometheus(&buf, "tmedbd"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	names := ValidateExposition(t, out)
	for _, want := range []string{
		"tmedbd_cache_hits", "tmedbd_queue_waiting",
		"tmedbd_lat_ms_bucket", "tmedbd_lat_ms_sum", "tmedbd_lat_ms_count",
		"tmedbd_wait_ms", "tmedbd_wait_ms_sum", "tmedbd_wait_ms_count",
		"tmedbd_pool_runs", "tmedbd_pool_tasks",
	} {
		if !names[want] {
			t.Errorf("exposition missing %s:\n%s", want, out)
		}
	}
	for _, want := range []string{
		"# TYPE tmedbd_cache_hits counter",
		"# TYPE tmedbd_lat_ms histogram",
		"# TYPE tmedbd_wait_ms summary",
		`tmedbd_lat_ms_bucket{le="+Inf"} 3`,
		"tmedbd_lat_ms_sum 55.5",
		`tmedbd_wait_ms{quantile="0.5"} 2`,
		`tmedbd_pool_tasks{pool="steiner"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing line %q:\n%s", want, out)
		}
	}
	// A metric already carrying the family prefix is not doubled.
	r2 := New()
	r2.Counter("tmedbd.requests").Inc()
	buf.Reset()
	r2.Snapshot(nil).WritePrometheus(&buf, "tmedbd")
	if strings.Contains(buf.String(), "tmedbd_tmedbd") {
		t.Errorf("prefix doubled:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "tmedbd_requests 1") {
		t.Errorf("prefixed counter missing:\n%s", buf.String())
	}
}

// TestMetricsHandlerServesPublished pins the /metrics twin of
// /debug/vars: every recorder published via PublishExpvar renders under
// its published name.
func TestMetricsHandlerServesPublished(t *testing.T) {
	r := New()
	r.Counter("solves").Add(7)
	if err := r.PublishExpvar("promtest"); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()
	ValidateExposition(t, body)
	if !strings.Contains(body, "promtest_solves 7") {
		t.Errorf("published recorder missing from /metrics:\n%s", body)
	}
}

// TestTraceEvents pins the catapult export: complete events, µs
// timestamps relative to the run, args from span attrs, nesting
// preserved by ts/dur containment.
func TestTraceEvents(t *testing.T) {
	r := New()
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	r.SetClock(clock)

	outer := r.StartPhase("eedcb")
	now = now.Add(2 * time.Millisecond)
	inner := r.StartPhase("dts")
	inner.SetInt("points", 42)
	now = now.Add(3 * time.Millisecond)
	inner.End()
	now = now.Add(1 * time.Millisecond)
	outer.End()

	rep := r.Snapshot(nil)
	events := rep.TraceEvents()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3 (run + 2 phases): %+v", len(events), events)
	}
	byName := map[string]TraceEvent{}
	for _, e := range events {
		if e.Ph != "X" {
			t.Errorf("event %s has phase %q, want X", e.Name, e.Ph)
		}
		byName[e.Name] = e
	}
	run, eedcb, dts := byName["run"], byName["eedcb"], byName["dts"]
	if run.Dur != 6000 || eedcb.Ts != 0 || eedcb.Dur != 6000 {
		t.Errorf("run/eedcb timing wrong: %+v / %+v", run, eedcb)
	}
	if dts.Ts != 2000 || dts.Dur != 3000 {
		t.Errorf("dts timing = ts %v dur %v, want 2000/3000", dts.Ts, dts.Dur)
	}
	if dts.Args["points"] != 42.0 {
		t.Errorf("dts args = %v", dts.Args)
	}
	if dts.Tid != eedcb.Tid {
		t.Errorf("nested span changed track: %d vs %d", dts.Tid, eedcb.Tid)
	}

	var buf bytes.Buffer
	if err := rep.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []TraceEvent
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace output is not a JSON array: %v", err)
	}
	if len(decoded) != 3 {
		t.Errorf("round-trip lost events: %d", len(decoded))
	}
}

// TestFlightFIFO pins ring semantics serially: exactly-once recording,
// FIFO eviction of the oldest entries, oldest-first snapshots.
func TestFlightFIFO(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 10; i++ {
		f.Record(RequestRecord{ID: fmt.Sprintf("r-%d", i), Status: 200})
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d records, want capacity 4", len(snap))
	}
	for i, rec := range snap {
		if want := fmt.Sprintf("r-%d", 6+i); rec.ID != want {
			t.Errorf("slot %d = %s, want %s (FIFO eviction)", i, rec.ID, want)
		}
		if rec.Seq != uint64(6+i) {
			t.Errorf("slot %d seq = %d, want %d", i, rec.Seq, 6+i)
		}
	}
}

// TestFlightConcurrent pins the lock-free contract under contention:
// with a ring at least as large as the write count, every record
// appears exactly once and snapshots during writes stay well-formed.
func TestFlightConcurrent(t *testing.T) {
	const writers, per = 8, 50
	f := NewFlight(writers * per)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: snapshots must never tear
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := f.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i].Seq <= snap[i-1].Seq {
					t.Errorf("snapshot out of order: %d then %d", snap[i-1].Seq, snap[i].Seq)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Record(RequestRecord{ID: fmt.Sprintf("w%d-%d", w, i)})
			}
		}(w)
	}
	for len(f.Snapshot()) < writers*per {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	seen := map[string]int{}
	for _, rec := range f.Snapshot() {
		seen[rec.ID]++
	}
	if len(seen) != writers*per {
		t.Fatalf("%d distinct records, want %d", len(seen), writers*per)
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("record %s appears %d times, want exactly once", id, n)
		}
	}
}

// TestFlightHandler pins the /debug/requests JSON shape.
func TestFlightHandler(t *testing.T) {
	f := NewFlight(8)
	f.Record(RequestRecord{ID: "r-1", Status: 200, Rung: "greed", Cache: "miss"})
	rec := httptest.NewRecorder()
	f.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	var page struct {
		Cap      int             `json:"cap"`
		Recorded uint64          `json:"recorded"`
		Requests []RequestRecord `json:"requests"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Cap != 8 || page.Recorded != 1 || len(page.Requests) != 1 {
		t.Fatalf("page = %+v", page)
	}
	if got := page.Requests[0]; got.ID != "r-1" || got.Rung != "greed" || got.Cache != "miss" {
		t.Errorf("record = %+v", got)
	}
	// The nil flight serves an empty page, not a panic.
	rec = httptest.NewRecorder()
	(*Flight)(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	if !strings.Contains(rec.Body.String(), `"requests":[]`) {
		t.Errorf("nil flight page: %s", rec.Body.String())
	}
}

// TestPhaseStartOffsets pins StartMS: offsets are relative to the run
// root, not absolute wall times.
func TestPhaseStartOffsets(t *testing.T) {
	r := New()
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })
	now = now.Add(5 * time.Millisecond)
	sp := r.StartPhase("late")
	now = now.Add(2 * time.Millisecond)
	sp.End()
	rep := r.Snapshot(nil)
	if len(rep.Phases) != 1 || rep.Phases[0].StartMS != 5 || rep.Phases[0].WallMS != 2 {
		t.Errorf("phase offsets = %+v", rep.Phases)
	}
}
