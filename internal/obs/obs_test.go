package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a deterministic clock advancing step per call.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	sp := r.StartPhase("x")
	if sp != nil {
		t.Fatal("nil recorder returned non-nil span")
	}
	sp.SetFloat("k", 1)
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	sp.End()
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span duration %v", d)
	}
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	if v := r.Counter("c").Value(); v != 0 {
		t.Fatalf("nil counter value %d", v)
	}
	r.Gauge("g").Set(3)
	if v := r.Gauge("g").Value(); v != 0 {
		t.Fatalf("nil gauge value %g", v)
	}
	r.Histogram("h", []float64{1, 2}).Observe(1.5)
	r.Pool("p").Observe(0, 10, time.Second)
	r.Pool("p").Launched()
	r.RecordCache("memo", 1, 2, 3)
	rep := r.Snapshot(nil)
	if rep.Version != 1 || len(rep.Phases) != 0 || rep.Counters != nil {
		t.Fatalf("nil snapshot not empty: %+v", rep)
	}
}

func TestCountersGaugesHistograms(t *testing.T) {
	r := New()
	c := r.Counter("ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("ops") != c {
		t.Fatal("Counter not idempotent per name")
	}
	r.Gauge("ratio").Set(0.25)
	if v := r.Gauge("ratio").Value(); v != 0.25 {
		t.Fatalf("gauge = %g", v)
	}
	h := r.Histogram("sizes", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	rep := r.Snapshot(nil)
	if len(rep.Hists) != 1 {
		t.Fatalf("hist reports: %d", len(rep.Hists))
	}
	hr := rep.Hists[0]
	want := []int64{1, 2, 1, 1}
	for i, w := range want {
		if hr.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, hr.Counts[i], w, hr.Counts)
		}
	}
	if hr.Count != 5 {
		t.Fatalf("hist count %d", hr.Count)
	}
	if hr.Mean < 112 || hr.Mean > 113 { // (0.5+5+5+50+500)/5 = 112.1
		t.Fatalf("hist mean %g", hr.Mean)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("shared").Value(); v != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", v)
	}
}

func TestPhaseTreeNesting(t *testing.T) {
	r := New()
	r.SetClock(fakeClock(time.Millisecond))
	outer := r.StartPhase("eedcb")
	d := r.StartPhase("dts")
	d.SetInt("points", 42)
	d.End()
	a := r.StartPhase("auxgraph")
	dcs := r.StartPhase("dcs-construct")
	dcs.End()
	a.End()
	outer.End()
	sib := r.StartPhase("evaluate")
	sib.End()

	rep := r.Snapshot(map[string]string{"alg": "EEDCB"})
	if len(rep.Phases) != 2 {
		t.Fatalf("top-level phases = %d, want 2: %+v", len(rep.Phases), rep.Phases)
	}
	e := rep.Phases[0]
	if e.Name != "eedcb" || len(e.Children) != 2 {
		t.Fatalf("eedcb children: %+v", e)
	}
	if e.Children[0].Name != "dts" || e.Children[0].Attrs["points"] != 42.0 {
		t.Fatalf("dts phase: %+v", e.Children[0])
	}
	if e.Children[1].Name != "auxgraph" || len(e.Children[1].Children) != 1 ||
		e.Children[1].Children[0].Name != "dcs-construct" {
		t.Fatalf("auxgraph subtree: %+v", e.Children[1])
	}
	if rep.Phases[1].Name != "evaluate" {
		t.Fatalf("sibling phase: %+v", rep.Phases[1])
	}
	flat := rep.PhaseWallMS()
	for _, path := range []string{"eedcb", "eedcb/dts", "eedcb/auxgraph", "eedcb/auxgraph/dcs-construct", "evaluate"} {
		if _, ok := flat[path]; !ok {
			t.Fatalf("PhaseWallMS missing %q: %v", path, flat)
		}
	}
	if rep.Meta["alg"] != "EEDCB" {
		t.Fatalf("meta: %v", rep.Meta)
	}
	// The fake clock advances 1 ms per reading, so every duration is a
	// positive whole number of milliseconds.
	if e.WallMS <= 0 {
		t.Fatalf("eedcb wall %g", e.WallMS)
	}
}

func TestUnmatchedEndDoesNotCorruptStack(t *testing.T) {
	r := New()
	a := r.StartPhase("a")
	a.End()
	a.End() // double-end must be harmless
	b := r.StartPhase("b")
	b.End()
	rep := r.Snapshot(nil)
	if len(rep.Phases) != 2 || rep.Phases[1].Name != "b" {
		t.Fatalf("phases after double End: %+v", rep.Phases)
	}
}

func TestPoolAccounting(t *testing.T) {
	r := New()
	p := r.Pool("scan")
	p.Launched()
	p.Observe(0, 60, 3*time.Millisecond)
	p.Observe(1, 40, 2*time.Millisecond)
	p.Launched()
	p.Observe(0, 10, time.Millisecond)
	rep := r.Snapshot(nil)
	if len(rep.Pools) != 1 {
		t.Fatalf("pools: %+v", rep.Pools)
	}
	pr := rep.Pools[0]
	if pr.Runs != 2 || pr.Tasks != 110 || pr.Workers != 2 {
		t.Fatalf("pool report: %+v", pr)
	}
	if pr.BusyMS[0] != 4 || pr.BusyMS[1] != 2 {
		t.Fatalf("busy: %v", pr.BusyMS)
	}
	if pr.Balance != 0.5 {
		t.Fatalf("balance: %g", pr.Balance)
	}
}

func TestCacheHitRateDerived(t *testing.T) {
	r := New()
	r.RecordCache("mincost", 75, 25, 10)
	rep := r.Snapshot(nil)
	if rate := rep.Gauges["cache.mincost.hit_rate"]; rate != 0.75 {
		t.Fatalf("hit rate = %g, want 0.75 (gauges %v)", rate, rep.Gauges)
	}
	// Re-recording overwrites rather than accumulates.
	r.RecordCache("mincost", 100, 100, 12)
	if rate := r.Snapshot(nil).Gauges["cache.mincost.hit_rate"]; rate != 0.5 {
		t.Fatalf("re-recorded hit rate = %g", rate)
	}
}

func TestReportJSONStableShape(t *testing.T) {
	r := New()
	r.SetClock(fakeClock(time.Millisecond))
	sp := r.StartPhase("dts")
	sp.End()
	r.Counter("ops").Add(3)
	r.RecordCache("memo", 1, 1, 2)
	var buf bytes.Buffer
	if err := r.Snapshot(map[string]string{"alg": "EEDCB"}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"version", "wall_ms", "phases", "counters", "gauges", "meta"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("report JSON missing %q: %s", key, buf.String())
		}
	}
	if decoded["version"].(float64) != 1 {
		t.Fatalf("version: %v", decoded["version"])
	}
}

func TestHumanSummary(t *testing.T) {
	r := New()
	r.SetClock(fakeClock(time.Millisecond))
	sp := r.StartPhase("eedcb")
	inner := r.StartPhase("steiner")
	inner.End()
	sp.End()
	r.Counter("steiner.dijkstra.fwd").Add(7)
	r.Pool("scan").Observe(0, 5, time.Millisecond)
	s := r.Snapshot(nil).String()
	for _, want := range []string{"eedcb", "steiner", "steiner.dijkstra.fwd", "pool scan:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestExpvarSnapshot(t *testing.T) {
	r := New()
	r.Counter("x").Inc()
	v := r.Expvar()
	rep, ok := v().(Report)
	if !ok {
		t.Fatalf("expvar func returned %T", v())
	}
	if rep.Counters["x"] != 1 {
		t.Fatalf("expvar counters: %v", rep.Counters)
	}
	// expvar renders via the Var interface's String(); Func marshals the
	// value as JSON — confirm the report survives that path.
	if s := v.String(); !strings.Contains(s, "\"counters\"") {
		t.Fatalf("expvar JSON: %s", s)
	}
}

func TestPhaseDepthBounded(t *testing.T) {
	r := New()
	// Open far more nested phases than the cap without ever ending them —
	// the worst case of interleaved concurrent Start/End sharing one
	// recorder. The snapshot tree must stay bounded so JSON consumers
	// (including recursive decoders) never see unbounded nesting.
	for i := 0; i < 10*maxPhaseDepth; i++ {
		r.StartPhase("p")
	}
	rep := r.Snapshot(nil)
	var depth func(p PhaseReport) int
	depth = func(p PhaseReport) int {
		max := 0
		for _, c := range p.Children {
			if d := depth(c); d > max {
				max = d
			}
		}
		return 1 + max
	}
	for _, p := range rep.Phases {
		if d := depth(p); d > maxPhaseDepth {
			t.Fatalf("phase tree depth %d exceeds cap %d", d, maxPhaseDepth)
		}
	}
	// Every opened phase is still accounted for somewhere in the tree.
	if got := len(rep.PhaseWallMS()); got == 0 {
		t.Fatal("no phases reported")
	}
}

// TestConcurrentPhaseIsolation pins the per-goroutine span stacks: two
// goroutines interleaving planner-style phase trees on one recorder must
// produce two independent top-level subtrees, never splice one call's
// spans under the other's open phase (the duplicated eedcb→dts→eedcb
// nesting that corrupted BENCH_pr3.json's attribution).
func TestConcurrentPhaseIsolation(t *testing.T) {
	r := New()
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				outer := r.StartPhase("eedcb")
				d := r.StartPhase("dts")
				d.End()
				a := r.StartPhase("auxgraph")
				dcs := r.StartPhase("dcs-construct")
				dcs.End()
				a.End()
				outer.End()
			}
		}()
	}
	close(start)
	wg.Wait()

	rep := r.Snapshot(nil)
	if len(rep.Phases) != 200 {
		t.Fatalf("top-level phases = %d, want 200 (4 goroutines x 50)", len(rep.Phases))
	}
	var check func(ps []PhaseReport)
	check = func(ps []PhaseReport) {
		for _, p := range ps {
			switch p.Name {
			case "eedcb":
				if len(p.Children) != 2 {
					t.Fatalf("eedcb children = %d, want 2: %+v", len(p.Children), p)
				}
			case "dts", "dcs-construct":
				if len(p.Children) != 0 {
					t.Fatalf("%s has children: %+v", p.Name, p)
				}
			case "auxgraph":
				if len(p.Children) != 1 || p.Children[0].Name != "dcs-construct" {
					t.Fatalf("auxgraph subtree: %+v", p)
				}
			default:
				t.Fatalf("unexpected phase %q", p.Name)
			}
			check(p.Children)
		}
	}
	check(rep.Phases)
}

// TestGoroutineStackEntryCleared verifies the cur map shrinks back to
// empty once every phase on a goroutine is closed, so long-lived
// recorders do not accumulate entries for finished goroutines.
func TestGoroutineStackEntryCleared(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := r.StartPhase("p")
			inner := r.StartPhase("q")
			inner.End()
			sp.End()
		}()
	}
	wg.Wait()
	r.mu.Lock()
	n := len(r.cur)
	r.mu.Unlock()
	if n != 0 {
		t.Fatalf("cur map has %d stale entries, want 0", n)
	}
}
