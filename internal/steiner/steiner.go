// Package steiner approximates the directed Steiner tree problem: given
// a weighted digraph, a root, and a terminal set, find a cheap subgraph
// in which every terminal is reachable from the root.
//
// This is the algorithmic core Liang's minimum-energy multicast tree
// algorithm [3] reduces to, and therefore the engine behind EEDCB
// (§VI-A): the auxiliary graph of a TMEDB instance is handed to this
// package. Two algorithms are provided:
//
//   - ShortestPathTree — the union of shortest paths root→terminal, a
//     fast heuristic with ratio at most the number of terminals.
//   - RecursiveGreedy — the Charikar et al. level-ℓ recursive greedy with
//     approximation ratio O(ℓ·k^{1/ℓ}) for k terminals, matching the
//     O(N^ε) guarantee family the paper cites.
//
// The solver operates on the flat CSR representation with the monotone
// bucket-queue Dijkstra (see internal/graph): distances are computed
// lazily — one forward sweep per recursion root and one reverse-graph
// sweep per terminal — into arena-recycled buffers, and the level-2
// density scan prunes dominated candidate vertices with an admissible
// lower bound before paying for their candidate sort. Levels >= 3 need
// forward distances from arbitrary vertices and are therefore restricted
// to small graphs.
package steiner

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/cancel"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// maxLevel3Vertices bounds the graph size accepted by levels >= 3, whose
// per-vertex forward Dijkstra caching is quadratic in the worst case.
const maxLevel3Vertices = 4000

// edgeID identifies a directed edge by endpoints.
type edgeID struct{ U, V int }

// Solution is a subgraph (a union of root-to-terminal paths) solving a
// Steiner instance.
type Solution struct {
	Root  int
	edges map[edgeID]float64
}

func newSolution(root int) Solution {
	//tmedbvet:ignore hotalloc per-solve result object: the edge map escapes to the caller and outlives the solver's buffers
	return Solution{Root: root, edges: make(map[edgeID]float64)}
}

// Cost returns the total weight of the distinct edges in the solution.
func (s Solution) Cost() float64 {
	var c float64
	for _, w := range s.edges {
		c += w
	}
	return c
}

// NumEdges returns the number of distinct edges.
func (s Solution) NumEdges() int { return len(s.edges) }

// Edges returns the solution edges as (u, v, w) triples, in deterministic
// order.
func (s Solution) Edges() [][3]float64 {
	out := make([][3]float64, 0, len(s.edges))
	for id, w := range s.edges {
		out = append(out, [3]float64{float64(id.U), float64(id.V), w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// addEdge merges an edge, keeping the cheaper weight for duplicates.
func (s Solution) addEdge(u, v int, w float64) {
	id := edgeID{u, v}
	if old, ok := s.edges[id]; !ok || w < old {
		s.edges[id] = w
	}
}

// merge folds other into s.
func (s Solution) merge(other Solution) {
	for id, w := range other.edges {
		if old, ok := s.edges[id]; !ok || w < old {
			s.edges[id] = w
		}
	}
}

// ReachableFromRoot returns the vertices reachable from the root using
// only solution edges.
func (s Solution) ReachableFromRoot() map[int]bool {
	adj := make(map[int][]int)
	//tmedbvet:ignore detrange adjacency build for a reachability sweep: the computed vertex set is order-independent
	for id := range s.edges {
		adj[id.U] = append(adj[id.U], id.V)
	}
	seen := map[int]bool{s.Root: true}
	stack := []int{s.Root}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// Pruned returns the solution restricted to its useful edges: those on
// some root→terminal path (the tail u reachable from the root, the head
// v reaching a terminal). Union-of-paths constructions can leave dead
// branches behind — e.g. a power vertex adopted for several terminals of
// which later greedy rounds re-covered some more cheaply — and pruning
// removes their cost without affecting coverage.
func (s Solution) Pruned(terminals []int) Solution {
	// Removing a dead branch can expose another (its feeder), so iterate
	// to a fixpoint; each pass strictly shrinks the edge set.
	for {
		next := s.prunedOnce(terminals)
		if next.NumEdges() == s.NumEdges() {
			return next
		}
		s = next
	}
}

func (s Solution) prunedOnce(terminals []int) Solution {
	fwd := s.ReachableFromRoot()
	radj := make(map[int][]int)
	//tmedbvet:ignore detrange adjacency build for a reverse reachability sweep: the computed vertex set is order-independent
	for id := range s.edges {
		radj[id.V] = append(radj[id.V], id.U)
	}
	rev := make(map[int]bool, len(terminals))
	var stack []int
	for _, t := range terminals {
		if !rev[t] {
			rev[t] = true
			stack = append(stack, t)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range radj[v] {
			if !rev[u] {
				rev[u] = true
				stack = append(stack, u)
			}
		}
	}
	out := newSolution(s.Root)
	for id, w := range s.edges {
		if fwd[id.U] && rev[id.V] {
			out.edges[id] = w
		}
	}
	return out
}

// Verify checks that the solution is sound for the instance: every edge
// exists in g with at least the claimed weight available, and every
// terminal is reachable from the root through solution edges.
func (s Solution) Verify(g *graph.CSR, terminals []int) error {
	for id, w := range s.edges {
		found := false
		for ei := g.Off[id.U]; ei < g.Off[id.U+1]; ei++ {
			if int(g.To[ei]) == id.V && g.W[ei] <= w+1e-12 {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("steiner: edge (%d,%d,w=%g) not in graph", id.U, id.V, w)
		}
	}
	reach := s.ReachableFromRoot()
	for _, t := range terminals {
		if !reach[t] {
			return fmt.Errorf("steiner: terminal %d not reachable from root %d", t, s.Root)
		}
	}
	return nil
}

// sp caches one Dijkstra run. The slices are arena-owned; Release
// recycles them, after which the sp must not be read.
type sp struct {
	dist []float64
	prev []int32
}

// Solver answers Steiner queries on one CSR digraph with lazily cached
// shortest-path computations. Acquire with NewSolver, hand back the
// arena-owned caches with Release when done.
type Solver struct {
	g   *graph.CSR
	rev *graph.CSR  // lazily built transpose; see revGraph / WithReverse
	fwd map[int]*sp // forward Dijkstra per source
	bwd map[int]*sp // reverse-graph Dijkstra per terminal (distances TO it)
	// arena recycles the dist/prev buffers across solver instances; the
	// serial scratch holds the bucket queue between runs. Parallel
	// workers take their own scratch from the package pool.
	arena   *graph.Arena
	scratch *graph.DijkstraScratch
	// workers bounds the pool used by the level-2 candidate scan and the
	// reverse-Dijkstra prefill. The scan merges per-chunk winners in
	// ascending vertex order, so solutions are byte-identical for every
	// value; <= 1 runs the original serial code.
	workers int
	// obs records Dijkstra/scan counters and pool utilization. Recording
	// is write-only — solutions are identical with or without it. Nil
	// records nothing.
	obs *obs.Recorder
	// cancel is the cancellation checkpoint token, polled once per greedy
	// round, per density scan, and through the reverse-Dijkstra pool. Nil
	// is the zero-overhead uncancellable path; a completed solve is
	// byte-identical for every value.
	cancel *cancel.Token
	// tripped latches the first checkpoint error so the recursive scan
	// helpers can unwind through their value-only signatures; the public
	// entry points surface it as the returned error.
	tripped  error
	released bool

	// Reusable scan buffers (hot-path allocation contract, DESIGN.md
	// §15): grown once to high-water capacity, then reused by every
	// greedy round so the steady-state density scan allocates nothing.
	// The per-chunk slots (cands, covBuf) are touched only by their
	// owning chunk during a parallel scan; everything else is filled
	// serially before a fan-out or read after it joins.
	dTo       [][]float64  // distToAll result, aliased into bwd cache entries
	missing   []int        // distToAll cache-miss indices
	computed  []*sp        // distToAll per-miss result slots
	locals    []level2Best // per-chunk scan winners
	cands     [][]td       // per-chunk candidate (terminal, distance) pairs
	covBuf    [][]int      // per-chunk winning-coverage accumulators
	baseCands []td         // rgBase candidate pairs (serial only)
	rmBits    []bool       // subtract scratch bit-set, kept all-clear between calls
	pathBuf   []int        // addPath reconstruction buffer
}

// check polls the cancellation token, latching the first error. It
// reports false once the solve is cancelled.
func (s *Solver) check() bool {
	if s.tripped != nil {
		return false
	}
	if err := s.cancel.Check(); err != nil {
		s.tripped = err
		return false
	}
	return true
}

// NewSolver builds a solver for g. The reverse graph is computed lazily
// on the first terminal-distance query; callers holding a memoized
// transpose (the auxiliary-graph core) inject it with WithReverse.
func NewSolver(g *graph.CSR) *Solver {
	return &Solver{
		g:       g,
		fwd:     make(map[int]*sp),
		bwd:     make(map[int]*sp),
		arena:   graph.GetArena(),
		scratch: graph.GetScratch(),
		workers: 1,
	}
}

// WithReverse injects a precomputed transpose of g (it must equal
// g.Transpose(nil); the memoized auxiliary-graph core caches one) and
// returns the solver for chaining.
func (s *Solver) WithReverse(rev *graph.CSR) *Solver {
	s.rev = rev
	return s
}

// Release returns the solver's cached Dijkstra buffers, scratch, and
// arena to the package pools and flushes the queue-operation counters to
// the recorder. The solver (and any distance data obtained from it) must
// not be used afterwards. Idempotent.
func (s *Solver) Release() {
	if s == nil || s.released {
		return
	}
	s.released = true
	for _, c := range s.fwd {
		s.arena.PutF64(c.dist)
		s.arena.PutI32(c.prev)
	}
	for _, c := range s.bwd {
		s.arena.PutF64(c.dist)
		s.arena.PutI32(c.prev)
	}
	s.fwd, s.bwd = nil, nil
	st := s.arena.Stats()
	s.obs.Counter("graph.arena.reuses").Add(st.Reuses)
	s.obs.Counter("graph.arena.allocs").Add(st.Allocs)
	flushScratch(s.obs, s.scratch)
	graph.PutScratch(s.scratch)
	s.scratch = nil
	graph.PutArena(s.arena)
	s.arena = nil
}

// flushScratch adds a scratch's queue counters to the conventional
// bucket-queue counters and zeroes them.
func flushScratch(r *obs.Recorder, sc *graph.DijkstraScratch) {
	if sc == nil {
		return
	}
	r.Counter("graph.bucketq.pushes").Add(sc.Pushes)
	r.Counter("graph.bucketq.pops").Add(sc.Pops)
	r.Counter("graph.bucketq.stale").Add(sc.Stale)
	r.Counter("graph.bucketq.scanned").Add(sc.Scanned)
	sc.Pushes, sc.Pops, sc.Stale, sc.Scanned = 0, 0, 0, 0
}

// SetWorkers bounds the solver's internal worker pool (<= 1 serial) and
// returns the solver for chaining. Any value yields identical solutions.
func (s *Solver) SetWorkers(workers int) *Solver {
	s.workers = workers
	return s
}

// SetObs attaches a metrics recorder (nil disables recording) and
// returns the solver for chaining.
func (s *Solver) SetObs(r *obs.Recorder) *Solver {
	s.obs = r
	return s
}

// SetCancel attaches a cancellation token (nil disables checkpoints)
// and returns the solver for chaining.
func (s *Solver) SetCancel(tok *cancel.Token) *Solver {
	s.cancel = tok
	return s
}

// revGraph returns the transpose, building it on first use.
func (s *Solver) revGraph() *graph.CSR {
	if s.rev == nil {
		s.rev = s.g.Transpose(s.arena)
	}
	return s.rev
}

func (s *Solver) from(u int) *sp {
	if c, ok := s.fwd[u]; ok {
		return c
	}
	s.obs.Counter("steiner.dijkstra.fwd").Inc()
	n := s.g.N()
	//tmedbvet:ignore hotalloc fwd cache fill: one pair of arena-backed headers per distinct source, amortized across every later query
	c := &sp{dist: s.arena.F64(n), prev: s.arena.I32(n)}
	s.g.ShortestPathsInto(u, c.dist, c.prev, s.scratch)
	s.fwd[u] = c
	return c
}

// distTo returns, for terminal x, the distance vector dist(v, x) over all
// v, via one reverse-graph Dijkstra.
func (s *Solver) distTo(x int) []float64 {
	if c, ok := s.bwd[x]; ok {
		return c.dist
	}
	s.obs.Counter("steiner.dijkstra.bwd").Inc()
	n := s.g.N()
	c := &sp{dist: s.arena.F64(n), prev: s.arena.I32(n)}
	s.revGraph().ShortestPathsInto(x, c.dist, c.prev, s.scratch)
	s.bwd[x] = c
	return c.dist
}

// distToAll returns dTo[xi] = dist(·, rem[xi]) for every terminal,
// running the cache-missing reverse Dijkstras across the worker pool.
// Result buffers are taken from the solver's arena serially before the
// fan-out; workers only read the immutable reverse graph and write their
// own pre-assigned slot with a pool-local scratch, so the arena is never
// touched concurrently.
func (s *Solver) distToAll(rem []int) [][]float64 {
	if cap(s.dTo) < len(rem) {
		s.dTo = make([][]float64, len(rem))
		s.missing = make([]int, 0, len(rem))
	}
	dTo := s.dTo[:len(rem)]
	missing := s.missing[:0] // indices into rem with no cached run
	for xi, x := range rem {
		if c, ok := s.bwd[x]; ok {
			dTo[xi] = c.dist
		} else {
			missing = append(missing, xi)
		}
	}
	if len(missing) == 0 {
		return dTo
	}
	rev := s.revGraph()
	n := s.g.N()
	if cap(s.computed) < len(missing) {
		s.computed = make([]*sp, len(missing))
	}
	computed := s.computed[:len(missing)]
	for mi := range missing {
		//tmedbvet:ignore hotalloc bwd cache fill: one pair of arena-backed headers per distinct terminal, amortized across every later round
		computed[mi] = &sp{dist: s.arena.F64(n), prev: s.arena.I32(n)}
	}
	s.obs.Counter("steiner.dijkstra.bwd").Add(int64(len(missing)))
	//tmedbvet:ignore hotalloc one capturing closure per pool fan-out, not per work item; the fan-out itself costs goroutine spawns
	err := parallel.ForEachPoolCancel(s.obs.Pool("steiner.dijkstra"), s.cancel, s.workers, len(missing), func(mi int) {
		sc := graph.GetScratch()
		rev.ShortestPathsInto(rem[missing[mi]], computed[mi].dist, computed[mi].prev, sc)
		flushScratch(s.obs, sc)
		graph.PutScratch(sc)
	})
	if err != nil {
		if s.tripped == nil {
			s.tripped = err
		}
		return nil
	}
	for mi, xi := range missing {
		s.bwd[rem[xi]] = computed[mi]
		dTo[xi] = computed[mi].dist
	}
	return dTo
}

// Dist returns the shortest-path distance u→v.
func (s *Solver) Dist(u, v int) float64 { return s.from(u).dist[v] }

// addPath merges the shortest path u→v into sol. It returns false when v
// is unreachable from u.
func (s *Solver) addPath(sol Solution, u, v int) bool {
	c := s.from(u)
	p, ok := graph.PathTo32Into(c.prev, u, v, s.pathBuf)
	s.pathBuf = p // keep the grown buffer for the next reconstruction
	if !ok {
		return false
	}
	for i := 0; i+1 < len(p); i++ {
		sol.addEdge(p[i], p[i+1], s.minEdge(p[i], p[i+1]))
	}
	return true
}

func (s *Solver) minEdge(u, v int) float64 {
	best := math.Inf(1)
	g := s.g
	for ei := g.Off[u]; ei < g.Off[u+1]; ei++ {
		if int(g.To[ei]) == v && g.W[ei] < best {
			best = g.W[ei]
		}
	}
	return best
}

// ShortestPathTree returns the union of shortest paths from root to each
// terminal. It errors when a terminal is unreachable.
func (s *Solver) ShortestPathTree(root int, terminals []int) (Solution, error) {
	sol := newSolution(root)
	for _, t := range terminals {
		if !s.check() {
			return Solution{}, fmt.Errorf("steiner: %w", s.tripped)
		}
		if !s.addPath(sol, root, t) {
			return Solution{}, fmt.Errorf("steiner: terminal %d unreachable from %d", t, root)
		}
	}
	return sol.Pruned(terminals), nil
}

// RecursiveGreedy runs the Charikar et al. level-ℓ recursive greedy
// covering all terminals. level must be >= 1; level 1 degenerates to the
// shortest-path union, level 2 and above trade running time for the
// O(ℓ·k^{1/ℓ}) density guarantee.
func (s *Solver) RecursiveGreedy(root int, terminals []int, level int) (Solution, error) {
	if level < 1 {
		return Solution{}, fmt.Errorf("steiner: level %d < 1", level)
	}
	if level >= 3 && s.g.N() > maxLevel3Vertices {
		return Solution{}, fmt.Errorf("steiner: level %d needs quadratic distance caching; graph has %d > %d vertices",
			level, s.g.N(), maxLevel3Vertices)
	}
	rootDist := s.from(root).dist
	for _, t := range terminals {
		if math.IsInf(rootDist[t], 1) {
			return Solution{}, fmt.Errorf("steiner: terminal %d unreachable from %d", t, root)
		}
	}
	remaining := append([]int(nil), terminals...)
	sol := newSolution(root)
	for len(remaining) > 0 {
		sub, covered, _ := s.rg(level, len(remaining), root, remaining)
		if s.tripped != nil {
			return Solution{}, fmt.Errorf("steiner: %w", s.tripped)
		}
		if len(covered) == 0 {
			return Solution{}, fmt.Errorf("steiner: no progress covering %v", remaining)
		}
		sol.merge(sub)
		remaining = s.subtract(remaining, covered)
	}
	return sol.Pruned(terminals), nil
}

// rg is the recursive density-greedy A_level(k, r, X): it returns a
// partial solution rooted at r covering up to k terminals of X, the
// covered terminals, and the density-estimate cost.
//
//tmedbvet:hotpath
func (s *Solver) rg(level, k, r int, X []int) (Solution, []int, float64) {
	if level <= 1 {
		return s.rgBase(k, r, X)
	}
	sol := newSolution(r)
	var covered []int
	var cost float64
	//tmedbvet:ignore hotalloc recursion works on a disjoint copy: sibling rg calls at the same level must not share the shrinking terminal list
	rem := append([]int(nil), X...)
	distR := s.from(r).dist
	for k > 0 && len(rem) > 0 {
		if !s.check() {
			break
		}
		var bestV int
		var bestCov []int
		var bestCost float64
		if level == 2 {
			bestV, bestCov, bestCost = s.scanLevel2(k, distR, rem)
		} else {
			bestV, bestCov, bestCost = s.scanRecursive(level, k, distR, rem)
		}
		if bestV == -1 {
			break
		}
		// materialize: path r→bestV plus paths bestV→covered terminals
		s.addPath(sol, r, bestV)
		for _, x := range bestCov {
			s.addPath(sol, bestV, x)
		}
		cost += distR[bestV] + bestCost
		//tmedbvet:ignore hotalloc per-call result accumulation: the coverage escapes to the recursive caller, which holds it across later rounds
		covered = append(covered, bestCov...)
		rem = s.subtract(rem, bestCov)
		k -= len(bestCov)
	}
	return sol, covered, cost
}

// scanLevel2 finds the vertex v and prefix size k' minimizing the A_1
// density (d(r,v) + Σ_{k' nearest} d(v,x)) / k', using reverse-graph
// distances to the remaining terminals. It returns (-1, nil, 0) when no
// vertex can reach any terminal.
//
// The vertex scan is embarrassingly parallel: the space is split into
// contiguous chunks, each chunk runs the serial scan code, and the
// per-chunk winners merge in ascending chunk order with a strictly-less
// density comparison — exactly reproducing the serial "first vertex
// achieving the global minimum wins" tie-break for every worker count.
func (s *Solver) scanLevel2(k int, distR []float64, rem []int) (int, []int, float64) {
	s.obs.Counter("steiner.level2.scans").Inc()
	s.obs.Counter("steiner.level2.vertices_scanned").Add(int64(s.g.N()))
	dTo := s.distToAll(rem) // dTo[xi][v] = dist(v, rem[xi])
	if dTo == nil {
		return -1, nil, 0 // cancellation latched in distToAll
	}
	ranges := parallel.ChunkRanges(s.workers, s.g.N())
	if cap(s.cands) < len(ranges) {
		s.cands = make([][]td, len(ranges))
		s.covBuf = make([][]int, len(ranges))
		s.locals = make([]level2Best, len(ranges))
	}
	if len(ranges) == 1 {
		best := s.scanLevel2Range(k, distR, rem, dTo, 0, ranges[0])
		return best.v, best.cov, best.cost
	}
	locals := s.locals[:len(ranges)]
	//tmedbvet:ignore hotalloc one capturing closure per pool fan-out, not per work item; the fan-out itself costs goroutine spawns
	parallel.ForEachRangePool(s.obs.Pool("steiner.scan"), s.workers, s.g.N(), func(chunk int, r parallel.Range) {
		locals[chunk] = s.scanLevel2Range(k, distR, rem, dTo, chunk, r)
	})
	best := level2Best{v: -1, density: math.Inf(1)}
	for _, l := range locals {
		if l.v != -1 && l.density < best.density {
			best = l
		}
	}
	return best.v, best.cov, best.cost
}

// level2Best is one (local) winner of the level-2 density scan.
type level2Best struct {
	v       int
	cov     []int
	cost    float64
	density float64
}

// td is one candidate (terminal index, distance) pair of the density
// scan; candidates order canonically by (d, xi).
type td struct {
	xi int
	d  float64
}

// scanLevel2Range runs the serial density scan over vertices [r.Lo, r.Hi).
//
// Two admissible lower bounds prune dominated vertices before their
// candidate sort. For any prefix size kp <= kv := min(k, |cands(v)|):
//
//	density(v, kp) = (distR[v] + Σ_{kp nearest} d) / kp
//	              >= distR[v]/k                    (tier 1: d >= 0, kp <= k)
//	              >= distR[v]/kv + min_x d(v, x)   (tier 2)
//
// A vertex whose bound already reaches the best density seen cannot win
// — winners update on strictly-less — so skipping it never changes the
// selected (vertex, prefix). Tier 1 costs one division; tier 2 falls out
// of the candidate-collection pass and skips the sort. Each parallel
// chunk starts from its own +Inf best, so chunks prune less than the
// serial scan but select identical winners.
func (s *Solver) scanLevel2Range(k int, distR []float64, rem []int, dTo [][]float64, chunk int, r parallel.Range) level2Best {
	best := level2Best{v: -1, density: math.Inf(1)}
	// Chunk-owned buffers: first scan grows them, every later scan runs
	// allocation-free. Written back below so growth sticks.
	bestCov := s.covBuf[chunk][:0]
	var pruned int64
	cands := s.cands[chunk][:0]
	for v := r.Lo; v < r.Hi; v++ {
		if math.IsInf(distR[v], 1) {
			continue
		}
		if distR[v]/float64(k) >= best.density {
			pruned++
			continue
		}
		cands = cands[:0]
		dmin := math.Inf(1)
		for xi := range rem {
			if d := dTo[xi][v]; !math.IsInf(d, 1) {
				cands = append(cands, td{xi, d})
				if d < dmin {
					dmin = d
				}
			}
		}
		if len(cands) == 0 {
			continue
		}
		kv := k
		if kv > len(cands) {
			kv = len(cands)
		}
		if distR[v]/float64(kv)+dmin >= best.density {
			pruned++
			continue
		}
		slices.SortFunc(cands, func(a, b td) int {
			// Canonical (distance, terminal-index) order: exact compare on
			// the Dijkstra labels themselves, not a tolerance test — any
			// widening would make the sort order depend on neighbors.
			//tmedbvet:ignore floateq deterministic tie-break sorts on exact Dijkstra labels
			if a.d != b.d {
				if a.d < b.d {
					return -1
				}
				return 1
			}
			return a.xi - b.xi
		})
		prefix := 0.0
		for kp := 1; kp <= kv; kp++ {
			prefix += cands[kp-1].d
			if dens := (distR[v] + prefix) / float64(kp); dens < best.density {
				best.density = dens
				best.v = v
				best.cost = prefix
				bestCov = bestCov[:0]
				for _, c := range cands[:kp] {
					bestCov = append(bestCov, rem[c.xi])
				}
			}
		}
	}
	s.obs.Counter("steiner.level2.pruned").Add(pruned)
	s.cands[chunk] = cands
	s.covBuf[chunk] = bestCov
	if best.v == -1 {
		return best
	}
	// best.cov aliases the chunk buffer: the caller consumes it (addPath,
	// covered, subtract) before the next scan can reset the buffer.
	best.cov = bestCov
	return best
}

// scanRecursive evaluates A_{level-1}(k', v, X) for every vertex and
// budget, returning the density-optimal choice. Quadratic in the graph
// size; guarded by maxLevel3Vertices.
func (s *Solver) scanRecursive(level, k int, distR []float64, rem []int) (int, []int, float64) {
	bestV, bestDensity := -1, math.Inf(1)
	var bestCov []int
	var bestCost float64
	for v := 0; v < s.g.N(); v++ {
		if !s.check() {
			return -1, nil, 0
		}
		if math.IsInf(distR[v], 1) {
			continue
		}
		for kp := 1; kp <= k; kp++ {
			_, cov, c := s.rg(level-1, kp, v, rem)
			if len(cov) == 0 {
				continue
			}
			if dens := (distR[v] + c) / float64(len(cov)); dens < bestDensity {
				bestDensity = dens
				bestV = v
				bestCov = cov
				bestCost = c
			}
		}
	}
	return bestV, bestCov, bestCost
}

// rgBase is A_1(k, r, X): connect r to the k nearest reachable terminals
// by direct shortest paths.
func (s *Solver) rgBase(k, r int, X []int) (Solution, []int, float64) {
	dist := s.from(r).dist
	if cap(s.baseCands) < len(X) {
		s.baseCands = make([]td, 0, len(X))
	}
	cands := s.baseCands[:0]
	for xi, t := range X {
		if d := dist[t]; !math.IsInf(d, 1) {
			cands = append(cands, td{xi, d})
		}
	}
	slices.SortFunc(cands, func(a, b td) int {
		// Same canonical exact-label tie-break as scanLevel2Range.
		//tmedbvet:ignore floateq deterministic tie-break sorts on exact Dijkstra labels
		if a.d != b.d {
			if a.d < b.d {
				return -1
			}
			return 1
		}
		return a.xi - b.xi
	})
	if k > len(cands) {
		k = len(cands)
	}
	s.baseCands = cands
	sol := newSolution(r)
	var covered []int
	var cost float64
	for _, c := range cands[:k] {
		t := X[c.xi]
		s.addPath(sol, r, t)
		//tmedbvet:ignore hotalloc per-call result accumulation: the coverage escapes to the recursive caller, which holds it across later rounds
		covered = append(covered, t)
		cost += c.d
	}
	return sol, covered, cost
}

// subtract removes the covered terminals from xs in place, marking
// them in a solver-held bit-set keyed by vertex id so the steady-state
// greedy round performs no map allocation. The function maintains the
// all-clear invariant itself: every bit set here is cleared before
// returning.
func (s *Solver) subtract(xs, remove []int) []int {
	if cap(s.rmBits) < s.g.N() {
		s.rmBits = make([]bool, s.g.N())
	}
	rm := s.rmBits[:s.g.N()]
	for _, r := range remove {
		rm[r] = true
	}
	out := xs[:0]
	for _, x := range xs {
		if !rm[x] {
			out = append(out, x)
		}
	}
	for _, r := range remove {
		rm[r] = false
	}
	return out
}
