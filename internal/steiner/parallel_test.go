package steiner

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// randomDAGish builds a seeded digraph with forward edges (plus a few
// back edges) and varied weights — large enough that the level-2 scan
// actually splits across chunks.
func randomDAGish(rng *rand.Rand, n, m int) *graph.CSR {
	g := graph.New(n)
	// Spine guarantees reachability of every vertex from 0.
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
	}
	for k := 0; k < m; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		g.AddEdge(u, v, 0.5+rng.Float64()*20)
	}
	return graph.FromDigraph(g)
}

// TestRecursiveGreedyParallelMatchesSerial is the solver-level
// determinism contract: the chunked candidate scan must reproduce the
// serial scan bit for bit, for every worker count, including pools
// larger than the vertex count.
func TestRecursiveGreedyParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		g := randomDAGish(rng, 50, 220)
		terms := []int{7, 13, 21, 34, 49}
		ser, serErr := NewSolver(g).SetWorkers(1).RecursiveGreedy(0, terms, 2)
		for _, w := range []int{2, 3, 8, 64} {
			par, parErr := NewSolver(g).SetWorkers(w).RecursiveGreedy(0, terms, 2)
			if (serErr == nil) != (parErr == nil) {
				t.Fatalf("trial %d workers=%d: error mismatch: serial %v, parallel %v", trial, w, serErr, parErr)
			}
			if serErr != nil {
				continue
			}
			if !reflect.DeepEqual(ser.Edges(), par.Edges()) {
				t.Fatalf("trial %d workers=%d: edge sets differ:\nserial   %v\nparallel %v",
					trial, w, ser.Edges(), par.Edges())
			}
		}
	}
}

// TestShortestPathTreeUnaffectedByWorkers pins the SPT heuristic too:
// it shares the solver's distance caches with the parallel scan.
func TestShortestPathTreeUnaffectedByWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomDAGish(rng, 40, 160)
	terms := []int{5, 17, 29, 39}
	ser, err := NewSolver(g).SetWorkers(1).ShortestPathTree(0, terms)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewSolver(g).SetWorkers(8).ShortestPathTree(0, terms)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ser.Edges(), par.Edges()) {
		t.Fatalf("edge sets differ:\nserial   %v\nparallel %v", ser.Edges(), par.Edges())
	}
}
