package steiner

import (
	"math/rand"
	"testing"
)

// BenchmarkRecursiveGreedySteadyState measures the per-solve cost of a
// warm solver: the first RecursiveGreedy call fills the fwd/bwd
// Dijkstra caches and grows the scan buffers, every timed iteration
// re-solves against them. This is the serving-tier shape (one solver
// per graph epoch, many candidate evaluations) that the hotalloc
// contract protects: steady-state B/op here is scan-loop garbage, not
// cache fills.
func BenchmarkRecursiveGreedySteadyState(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	g, terms := randomInstance(r, 400, 2400, 12)
	s := NewSolver(g)
	defer s.Release()
	if _, err := s.RecursiveGreedy(0, terms, 2); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RecursiveGreedy(0, terms, 2); err != nil {
			b.Fatal(err)
		}
	}
}
