package steiner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// starGadget: hub structure where the greedy-density approach pays off.
// root 0 → hub 1 (cost 10), hub 1 → terminals 2,3,4 (cost 1 each);
// also direct expensive edges 0→t (cost 9 each).
func starGadget() (*graph.CSR, []int) {
	g := graph.New(5)
	g.AddEdge(0, 1, 10)
	for _, t := range []int{2, 3, 4} {
		g.AddEdge(1, t, 1)
		g.AddEdge(0, t, 9)
	}
	return graph.FromDigraph(g), []int{2, 3, 4}
}

func TestShortestPathTreeStar(t *testing.T) {
	g, terms := starGadget()
	s := NewSolver(g)
	sol, err := s.ShortestPathTree(0, terms)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Verify(g, terms); err != nil {
		t.Fatal(err)
	}
	// SPT takes the three direct 9-cost edges: total 27.
	if got := sol.Cost(); math.Abs(got-27) > 1e-9 {
		t.Errorf("SPT cost = %g, want 27", got)
	}
}

func TestRecursiveGreedyLevel2BeatsSPTOnStar(t *testing.T) {
	g, terms := starGadget()
	s := NewSolver(g)
	sol, err := s.RecursiveGreedy(0, terms, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Verify(g, terms); err != nil {
		t.Fatal(err)
	}
	// Optimal: 0→1 (10) + three hub edges (3) = 13.
	if got := sol.Cost(); math.Abs(got-13) > 1e-9 {
		t.Errorf("RG2 cost = %g, want 13 (optimal)", got)
	}
}

func TestRecursiveGreedyLevel1EqualsGreedySPT(t *testing.T) {
	g, terms := starGadget()
	s := NewSolver(g)
	sol, err := s.RecursiveGreedy(0, terms, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Verify(g, terms); err != nil {
		t.Fatal(err)
	}
	if got := sol.Cost(); math.Abs(got-27) > 1e-9 {
		t.Errorf("RG1 cost = %g, want 27 (direct paths)", got)
	}
}

func TestUnreachableTerminal(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	s := NewSolver(graph.FromDigraph(g))
	if _, err := s.ShortestPathTree(0, []int{2}); err == nil {
		t.Error("SPT should fail on unreachable terminal")
	}
	if _, err := s.RecursiveGreedy(0, []int{2}, 2); err == nil {
		t.Error("RG should fail on unreachable terminal")
	}
}

func TestBadLevel(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	s := NewSolver(graph.FromDigraph(g))
	if _, err := s.RecursiveGreedy(0, []int{1}, 0); err == nil {
		t.Error("level 0 should error")
	}
}

func TestSingleTerminalIsShortestPath(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 3, 1)
	s := NewSolver(graph.FromDigraph(g))
	for _, level := range []int{1, 2, 3} {
		sol, err := s.RecursiveGreedy(0, []int{3}, level)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if got := sol.Cost(); math.Abs(got-3) > 1e-9 {
			t.Errorf("level %d cost = %g, want 3", level, got)
		}
	}
}

func TestTerminalEqualsRoot(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	c := graph.FromDigraph(g)
	s := NewSolver(c)
	sol, err := s.ShortestPathTree(0, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Verify(c, []int{0, 1}); err != nil {
		t.Error(err)
	}
}

func TestSharedPathNotDoubleCounted(t *testing.T) {
	// 0→1 (10), 1→2 (1), 1→3 (1): both terminals share the 0→1 edge.
	g := graph.New(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	s := NewSolver(graph.FromDigraph(g))
	sol, err := s.ShortestPathTree(0, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Cost(); math.Abs(got-12) > 1e-9 {
		t.Errorf("cost = %g, want 12 (shared edge counted once)", got)
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g, terms := starGadget()
	s := NewSolver(g)
	sol, _ := s.RecursiveGreedy(0, terms, 2)
	a := sol.Edges()
	b := sol.Edges()
	if len(a) != len(b) {
		t.Fatal("Edges() length changed between calls")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Error("Edges() order not deterministic")
		}
	}
}

func TestVerifyCatchesFakeEdge(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	sol := newSolution(0)
	sol.addEdge(0, 2, 1) // not in graph
	if err := sol.Verify(graph.FromDigraph(g), nil); err == nil {
		t.Error("Verify should reject edge missing from graph")
	}
}

func randomInstance(r *rand.Rand, n, m, k int) (*graph.CSR, []int) {
	g := graph.New(n)
	// a random backbone guaranteeing reachability from 0
	order := r.Perm(n)
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	if pos[0] != 0 {
		order[pos[0]], order[0] = order[0], order[pos[0]]
	}
	for i := 1; i < n; i++ {
		g.AddEdge(order[r.Intn(i)], order[i], 1+r.Float64()*10)
	}
	for e := 0; e < m; e++ {
		g.AddEdge(r.Intn(n), r.Intn(n), 1+r.Float64()*10)
	}
	terms := make([]int, 0, k)
	for _, v := range r.Perm(n)[:k] {
		if v != 0 {
			terms = append(terms, v)
		}
	}
	return graph.FromDigraph(g), terms
}

func TestQuickSolutionsValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, terms := randomInstance(r, 15, 30, 6)
		s := NewSolver(g)
		for _, level := range []int{1, 2} {
			sol, err := s.RecursiveGreedy(0, terms, level)
			if err != nil {
				return false
			}
			if sol.Verify(g, terms) != nil {
				return false
			}
		}
		spt, err := s.ShortestPathTree(0, terms)
		return err == nil && spt.Verify(g, terms) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickCostAtLeastMaxShortestPath(t *testing.T) {
	// Any solution must cost at least the distance to the farthest
	// terminal (a lower bound on OPT).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, terms := randomInstance(r, 12, 25, 5)
		s := NewSolver(g)
		lb := 0.0
		for _, x := range terms {
			if d := s.Dist(0, x); d > lb {
				lb = d
			}
		}
		for _, level := range []int{1, 2} {
			sol, err := s.RecursiveGreedy(0, terms, level)
			if err != nil || sol.Cost() < lb-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLevel3RunsOnSmallInstance(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g, terms := randomInstance(r, 10, 15, 4)
	s := NewSolver(g)
	sol, err := s.RecursiveGreedy(0, terms, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Verify(g, terms); err != nil {
		t.Error(err)
	}
	// Level 3 should not be worse than level 1 on this gadget family.
	sol1, _ := s.RecursiveGreedy(0, terms, 1)
	if sol.Cost() > sol1.Cost()*3+1e-9 {
		t.Errorf("level 3 cost %g suspiciously worse than level 1 %g", sol.Cost(), sol1.Cost())
	}
}

func TestPrunedRemovesDeadBranch(t *testing.T) {
	sol := newSolution(0)
	sol.addEdge(0, 1, 1) // on the path to terminal 2
	sol.addEdge(1, 2, 1)
	sol.addEdge(1, 3, 5) // dead branch: 3 is not a terminal
	sol.addEdge(4, 2, 7) // unreachable tail: 4 not reachable from root
	pruned := sol.Pruned([]int{2})
	if pruned.NumEdges() != 2 {
		t.Fatalf("pruned edges = %v", pruned.Edges())
	}
	if pruned.Cost() != 2 {
		t.Errorf("pruned cost = %g, want 2", pruned.Cost())
	}
}

func TestPrunedFixpointCascade(t *testing.T) {
	// chain 1→5→6 is dead; removing 5→6 exposes 1→5 as dead too
	sol := newSolution(0)
	sol.addEdge(0, 1, 1)
	sol.addEdge(1, 2, 1)
	sol.addEdge(1, 5, 3)
	sol.addEdge(5, 6, 3)
	pruned := sol.Pruned([]int{2})
	if pruned.NumEdges() != 2 {
		t.Fatalf("pruned edges = %v, want the 0→1→2 chain", pruned.Edges())
	}
}

func TestPrunedKeepsCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		g, terms := randomInstance(r, 14, 30, 5)
		s := NewSolver(g)
		sol, err := s.RecursiveGreedy(0, terms, 2)
		if err != nil {
			continue
		}
		if err := sol.Verify(g, terms); err != nil {
			t.Fatalf("trial %d: pruned solution broken: %v", trial, err)
		}
	}
}

// TestReleaseRecyclesBuffers exercises the solver lifecycle: Release
// hands the distance caches back, a second solver (which will typically
// be served the recycled buffers) must still produce identical
// solutions, and double-Release is harmless.
func TestReleaseRecyclesBuffers(t *testing.T) {
	g, terms := starGadget()
	s1 := NewSolver(g)
	sol1, err := s1.RecursiveGreedy(0, terms, 2)
	if err != nil {
		t.Fatal(err)
	}
	edges1 := sol1.Edges()
	s1.Release()
	s1.Release() // idempotent

	s2 := NewSolver(g)
	defer s2.Release()
	sol2, err := s2.RecursiveGreedy(0, terms, 2)
	if err != nil {
		t.Fatal(err)
	}
	edges2 := sol2.Edges()
	if len(edges1) != len(edges2) {
		t.Fatalf("edge counts differ after recycle: %v vs %v", edges1, edges2)
	}
	for i := range edges1 {
		if edges1[i] != edges2[i] {
			t.Fatalf("solutions differ after recycle:\n%v\n%v", edges1, edges2)
		}
	}
}
