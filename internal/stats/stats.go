// Package stats provides the small statistical toolkit the benchmark
// harness uses to aggregate per-seed experiment results: means, sample
// standard deviations, normal-approximation confidence intervals, and
// labelled series formatting.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval of the mean.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Summary holds aggregate statistics of one sample.
type Summary struct {
	N          int
	Mean, Std  float64
	Min, Max   float64
	CI95Margin float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), Std: StdDev(xs), CI95Margin: CI95(xs)}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g [%.4g,%.4g]", s.N, s.Mean, s.CI95Margin, s.Min, s.Max)
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs by linear
// interpolation between order statistics. It copies and sorts; 0 for an
// empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: percentile %g outside [0,1]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Series is a labelled sequence of (x, y) points — one curve of a figure.
type Series struct {
	Label string
	X, Y  []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table renders aligned rows "x  y1 y2 ..." for a set of series sharing
// the same X grid, with a header line — the format the figure harness
// prints so paper panels can be regenerated as plain data.
func Table(title string, xLabel string, series ...*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	fmt.Fprintf(&b, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, " %14s", s.Label)
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&b, "%-12.6g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %14.6g", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Monotone reports whether ys is non-increasing (dir < 0) or
// non-decreasing (dir > 0) within a tolerance — the shape checks
// EXPERIMENTS.md records. The allowed slack for each adjacent pair is
// tol·max(|ys[i-1]|, |ys[i]|, 1): relative to the pair's magnitude so
// large series keep their proportional allowance, with an absolute floor
// of tol so zero crossings and near-zero values do not collapse the
// slack to nothing. (A bare ys[i-1]*(1±tol) bound flips direction for
// negative values and shuts off entirely at zero.)
func Monotone(ys []float64, dir int, tol float64) bool {
	for i := 1; i < len(ys); i++ {
		slack := tol * math.Max(1, math.Max(math.Abs(ys[i-1]), math.Abs(ys[i])))
		switch {
		case dir < 0 && ys[i] > ys[i-1]+slack:
			return false
		case dir > 0 && ys[i] < ys[i-1]-slack:
			return false
		}
	}
	return true
}
