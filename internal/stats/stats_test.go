package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("single sample std should be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %g, want %g", got, want)
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	want := 1.96 * StdDev(xs) / math.Sqrt(5)
	if got := CI95(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("CI95 = %g, want %g", got, want)
	}
	if CI95([]float64{1}) != 0 {
		t.Error("CI95 of one sample should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.Mean != 2 {
		t.Errorf("Summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Errorf("String = %q", s.String())
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Errorf("empty Summary = %+v", empty)
	}
}

func TestSeriesAndTable(t *testing.T) {
	a := &Series{Label: "alg1"}
	b := &Series{Label: "alg2"}
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(1, 11)
	// b is shorter: missing cell renders "-"
	out := Table("fig", "x", a, b)
	if !strings.Contains(out, "# fig") || !strings.Contains(out, "alg1") {
		t.Errorf("Table = %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("Table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "-") {
		t.Errorf("missing cell not rendered: %q", lines[3])
	}
}

func TestTableEmpty(t *testing.T) {
	out := Table("t", "x")
	if !strings.Contains(out, "# t") {
		t.Errorf("Table = %q", out)
	}
}

func TestMonotone(t *testing.T) {
	if !Monotone([]float64{5, 4, 4, 3}, -1, 0) {
		t.Error("non-increasing should pass dir=-1")
	}
	if Monotone([]float64{5, 6}, -1, 0) {
		t.Error("increasing should fail dir=-1")
	}
	if !Monotone([]float64{1, 2, 2, 3}, +1, 0) {
		t.Error("non-decreasing should pass dir=+1")
	}
	// tolerance absorbs small bumps
	if !Monotone([]float64{100, 101}, -1, 0.02) {
		t.Error("1% bump within 2% tolerance should pass")
	}
}

func TestQuickMeanWithinMinMax(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*200 - 100
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %g, want 1", got)
	}
	if got := Percentile(xs, 1); got != 4 {
		t.Errorf("p100 = %g, want 4", got)
	}
	if got := Percentile(xs, 0.5); got != 2.5 {
		t.Errorf("median = %g, want 2.5", got)
	}
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single = %g, want 7", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty = %g, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p > 1")
		}
	}()
	Percentile(xs, 1.5)
}

// TestMonotoneTolerance pins the combined absolute/relative slack: the
// old ys[i-1]*(1±tol) bound flipped direction for negative values and
// collapsed to zero slack at zero crossings.
func TestMonotoneTolerance(t *testing.T) {
	cases := []struct {
		name string
		ys   []float64
		dir  int
		tol  float64
		want bool
	}{
		{"negative non-increasing", []float64{-1, -2, -3}, -1, 0.01, true},
		{"negative bump within relative slack", []float64{-100, -99.5}, -1, 0.01, true},
		{"negative bump beyond relative slack", []float64{-100, -90}, -1, 0.01, false},
		{"negative non-decreasing", []float64{-3, -2, -1}, +1, 0.01, true},
		{"negative drop beyond slack (dir=+1)", []float64{-1, -2}, +1, 0.01, false},
		{"zero crossing within absolute floor", []float64{0.004, -0.004, 0}, -1, 0.01, true},
		{"jump from zero beyond floor", []float64{0, 0.5}, -1, 0.01, false},
		{"zero tolerance strict", []float64{1, 1, 0.5}, -1, 0, true},
		{"zero tolerance strict violation", []float64{1, 1.0000001}, -1, 0, false},
		{"large values keep relative slack", []float64{1e6, 1.005e6}, -1, 0.01, true},
		{"empty", nil, -1, 0.01, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Monotone(tc.ys, tc.dir, tc.tol); got != tc.want {
				t.Errorf("Monotone(%v, %d, %g) = %v, want %v", tc.ys, tc.dir, tc.tol, got, tc.want)
			}
		})
	}
}
