// Package exact solves small TMEDB-S instances optimally by Dijkstra
// over (time-index, informed-set) states. It exists to validate the
// approximation pipeline: Theorem 5.2 plus Proposition 6.1 restrict the
// search to DTS transmission times and DCS power levels, which makes the
// state space finite — O(|global times| · 2^N) states — and exact search
// tractable for N up to ~16.
//
// The solver handles the static channel (deterministic coverage) with
// τ = 0, the regime of the paper's trace-driven evaluation.
package exact

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/dts"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// MaxNodes bounds the instance size (2^N states per time index).
const MaxNodes = 16

// Solve finds a minimum-cost feasible schedule for the TMEDB-S instance
// (static channel, τ = 0) from src over the window [t0, deadline]. It
// returns ErrUnreachable when some node cannot be informed in the
// window.
func Solve(g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, float64, error) {
	if g.Model.Fading() {
		return nil, 0, fmt.Errorf("exact: only the static channel model is supported")
	}
	if g.Tau() != 0 {
		return nil, 0, fmt.Errorf("exact: only τ = 0 is supported")
	}
	if g.N() > MaxNodes {
		return nil, 0, fmt.Errorf("exact: %d nodes exceeds the %d-node limit", g.N(), MaxNodes)
	}

	// An uncancellable build (no token in the options) never errors.
	d, _ := dts.Build(g.Graph, t0, deadline, dts.Options{})
	// Global candidate transmission times: the union of all nodes' DTS
	// points (already pruned to degree > 0 plus window endpoints).
	timeSet := map[float64]bool{}
	for i := 0; i < g.N(); i++ {
		for _, t := range d.Points[i] {
			timeSet[t] = true
		}
	}
	times := make([]float64, 0, len(timeSet))
	for t := range timeSet {
		times = append(times, t)
	}
	sort.Float64s(times)

	// Precompute, per (time, relay), the DCS levels and their coverage
	// masks.
	type action struct {
		relay tvg.NodeID
		t     float64
		w     float64
		mask  uint32 // nodes covered by this level
	}
	actions := make([][]action, len(times))
	for ti, t := range times {
		for i := 0; i < g.N(); i++ {
			var cum uint32
			for _, lvl := range g.DCS(tvg.NodeID(i), t) {
				cum |= 1 << uint(lvl.Node)
				actions[ti] = append(actions[ti], action{
					relay: tvg.NodeID(i), t: t, w: lvl.W, mask: cum,
				})
			}
		}
	}

	full := uint32(1)<<uint(g.N()) - 1
	start := state{0, uint32(1) << uint(src)}

	// Dijkstra over states ordered by accumulated cost.
	distMap := map[state]float64{start: 0}
	prev := map[state]step{}
	pq := &stateQueue{{start, 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(stateItem)
		if cur.cost > distMap[cur.st] {
			continue
		}
		if cur.st.mask == full {
			return reconstruct(prev, cur.st), cur.cost, nil
		}
		// advance time
		if int(cur.st.timeIdx)+1 < len(times) {
			next := state{cur.st.timeIdx + 1, cur.st.mask}
			relax(distMap, prev, pq, next, cur.cost, step{from: cur.st})
		}
		// transmit: any informed relay, any level, at the current time
		for _, a := range actions[cur.st.timeIdx] {
			if cur.st.mask&(1<<uint(a.relay)) == 0 {
				continue // relay uninformed
			}
			add := a.mask &^ cur.st.mask
			if add == 0 {
				continue // informs no one new: never useful in an optimum
			}
			next := state{cur.st.timeIdx, cur.st.mask | add}
			relax(distMap, prev, pq, next, cur.cost+a.w, step{
				from: cur.st,
				tx:   &schedule.Transmission{Relay: a.relay, T: a.t, W: a.w},
			})
		}
	}
	return nil, 0, ErrUnreachable
}

// ErrUnreachable reports that no feasible schedule exists in the window.
var ErrUnreachable = fmt.Errorf("exact: no feasible schedule within the window")

type state struct {
	timeIdx int32
	mask    uint32
}

type step struct {
	from state
	tx   *schedule.Transmission
}

type stateItem struct {
	st   state
	cost float64
}

type stateQueue []stateItem

func (q stateQueue) Len() int            { return len(q) }
func (q stateQueue) Less(i, j int) bool  { return q[i].cost < q[j].cost }
func (q stateQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *stateQueue) Push(x interface{}) { *q = append(*q, x.(stateItem)) }
func (q *stateQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

func relax(dist map[state]float64, prev map[state]step, pq *stateQueue, next state, cost float64, via step) {
	if old, ok := dist[next]; ok && old <= cost {
		return
	}
	dist[next] = cost
	prev[next] = via
	heap.Push(pq, stateItem{next, cost})
}

func reconstruct(prev map[state]step, end state) schedule.Schedule {
	var s schedule.Schedule
	cur := end
	for {
		via, ok := prev[cur]
		if !ok {
			break
		}
		if via.tx != nil {
			s = append(s, *via.tx)
		}
		cur = via.from
	}
	// reverse into chronological (and causal) order
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
	return s
}

// OptimalCost is a convenience wrapper returning only the optimum value.
func OptimalCost(g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (float64, error) {
	_, c, err := Solve(g, src, t0, deadline)
	if err != nil {
		return math.NaN(), err
	}
	return c, nil
}
