package exact

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

func iv(a, b float64) interval.Interval { return interval.Interval{Start: a, End: b} }

func TestSolveRejectsUnsupported(t *testing.T) {
	g := tveg.New(2, iv(0, 10), 0, tveg.DefaultParams(), tveg.RayleighFading)
	g.AddContact(0, 1, iv(0, 10), 5)
	if _, _, err := Solve(g, 0, 0, 10); err == nil {
		t.Error("fading model should be rejected")
	}
	g2 := tveg.New(2, iv(0, 10), 1, tveg.DefaultParams(), tveg.Static)
	g2.AddContact(0, 1, iv(0, 10), 5)
	if _, _, err := Solve(g2, 0, 0, 10); err == nil {
		t.Error("τ > 0 should be rejected")
	}
	g3 := tveg.New(MaxNodes+1, iv(0, 10), 0, tveg.DefaultParams(), tveg.Static)
	g3.AddContact(0, 1, iv(0, 10), 5)
	if _, _, err := Solve(g3, 0, 0, 10); err == nil {
		t.Error("oversized instance should be rejected")
	}
}

func TestSolveStarOptimal(t *testing.T) {
	g := tveg.New(4, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(10, 30), 5)
	g.AddContact(0, 2, iv(10, 30), 10)
	g.AddContact(0, 3, iv(10, 30), 15)
	s, cost, err := Solve(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Params.NoiseGamma() * 225 // one broadcast at the farthest distance
	if math.Abs(cost-want)/want > 1e-9 {
		t.Errorf("optimal cost = %g, want %g", cost, want)
	}
	if err := schedule.CheckFeasible(g, s, 0, 100, math.Inf(1)); err != nil {
		t.Errorf("optimal schedule infeasible: %v", err)
	}
}

func TestSolveChainOptimal(t *testing.T) {
	g := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(10, 30), 5)
	g.AddContact(1, 2, iv(20, 50), 8)
	s, cost, err := Solve(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Params.NoiseGamma() * (25 + 64)
	if math.Abs(cost-want)/want > 1e-9 {
		t.Errorf("optimal cost = %g, want %g", cost, want)
	}
	if len(s) != 2 {
		t.Errorf("schedule %v, want 2 transmissions", s)
	}
}

func TestSolveRelayBeatsDirect(t *testing.T) {
	// 0 can reach 2 directly at distance 20 (cost ∝ 400) or via 1 at
	// distances 8 + 8 (cost ∝ 128): the optimum must relay.
	g := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 2, iv(10, 30), 20)
	g.AddContact(0, 1, iv(10, 30), 8)
	g.AddContact(1, 2, iv(40, 60), 8)
	_, cost, err := Solve(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Params.NoiseGamma() * 128
	if math.Abs(cost-want)/want > 1e-9 {
		t.Errorf("optimal cost = %g, want relayed %g", cost, want)
	}
	// with a tight deadline the relay path is gone: direct is optimal
	_, cost, err = Solve(g, 0, 0, 35)
	if err != nil {
		t.Fatal(err)
	}
	want = g.Params.NoiseGamma() * (400 + 64)
	// direct to 2 (400) plus informing 1 (64): 1 is covered for free by
	// the 20 m broadcast (8 < 20), so actually a single 400 suffices.
	want = g.Params.NoiseGamma() * 400
	if math.Abs(cost-want)/want > 1e-9 {
		t.Errorf("tight-deadline optimal = %g, want %g", cost, want)
	}
}

func TestSolveUnreachable(t *testing.T) {
	g := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(10, 30), 5)
	if _, _, err := Solve(g, 0, 0, 100); !errors.Is(err, ErrUnreachable) {
		t.Errorf("want ErrUnreachable, got %v", err)
	}
}

func TestOptimalCost(t *testing.T) {
	g := tveg.New(2, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(10, 30), 5)
	c, err := OptimalCost(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Params.NoiseGamma() * 25
	if math.Abs(c-want)/want > 1e-9 {
		t.Errorf("OptimalCost = %g, want %g", c, want)
	}
	if _, err := OptimalCost(g, 1, 0, 5); err == nil {
		t.Error("expected error for infeasible window")
	}
}

func randomSmall(r *rand.Rand, n int) *tveg.Graph {
	g := tveg.New(n, iv(0, 300), 0, tveg.DefaultParams(), tveg.Static)
	for c := 0; c < 3*n; c++ {
		i, j := tvg.NodeID(r.Intn(n)), tvg.NodeID(r.Intn(n))
		if i == j {
			continue
		}
		s := r.Float64() * 250
		g.AddContact(i, j, iv(s, s+20+r.Float64()*40), 1+r.Float64()*15)
	}
	for j := 1; j < n; j++ {
		s := 250 + r.Float64()*20
		g.AddContact(0, tvg.NodeID(j), iv(s, s+25), 1+r.Float64()*15)
	}
	return g
}

func TestEEDCBWithinFactorOfOptimal(t *testing.T) {
	// The headline validation: on random small instances the level-2
	// recursive greedy stays within a small constant of the optimum, and
	// never beats it (sanity of the optimum itself).
	worst := 1.0
	for seed := int64(0); seed < 15; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := randomSmall(r, 6)
		opt, err := OptimalCost(g, 0, 0, 300)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s, err := (core.EEDCB{}).Schedule(g, 0, 0, 300)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ratio := s.TotalCost() / opt
		if ratio < 1-1e-9 {
			t.Errorf("seed %d: EEDCB %g beat the 'optimum' %g — exact solver bug",
				seed, s.TotalCost(), opt)
		}
		if ratio > worst {
			worst = ratio
		}
	}
	t.Logf("worst EEDCB/OPT ratio over 15 instances: %.3f", worst)
	if worst > 3 {
		t.Errorf("worst ratio %g exceeds 3 — approximation quality regressed", worst)
	}
}

func TestGreedyAndRandomAlsoAboveOptimal(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := randomSmall(r, 6)
		opt, err := OptimalCost(g, 0, 0, 300)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, alg := range []core.Scheduler{core.Greedy{}, core.Random{Seed: seed}} {
			s, err := alg.Schedule(g, 0, 0, 300)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, alg.Name(), err)
			}
			if s.TotalCost() < opt*(1-1e-9) {
				t.Errorf("seed %d: %s cost %g below optimum %g",
					seed, alg.Name(), s.TotalCost(), opt)
			}
		}
	}
}

func TestOptimalScheduleIsFeasible(t *testing.T) {
	for seed := int64(30); seed < 36; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := randomSmall(r, 5)
		s, _, err := Solve(g, 0, 0, 300)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := schedule.CheckFeasible(g, s, 0, 300, math.Inf(1)); err != nil {
			t.Errorf("seed %d: optimal schedule infeasible: %v", seed, err)
		}
	}
}
