// Package graph implements a generic weighted directed graph with the
// shortest-path machinery (binary-heap Dijkstra, single-source and
// all-pairs) the directed Steiner tree solver builds on.
package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Inf is the distance assigned to unreachable vertices.
var Inf = math.Inf(1)

// Edge is a directed edge u→v with non-negative weight W.
type Edge struct {
	To int
	W  float64
}

// Digraph is a weighted directed graph over vertices 0..N-1 stored as
// adjacency lists.
type Digraph struct {
	adj [][]Edge
	m   int
}

// New creates a digraph with n vertices and no edges.
func New(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Digraph{adj: make([][]Edge, n)}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Digraph) M() int { return g.m }

// AddEdge inserts the directed edge u→v with weight w >= 0.
func (g *Digraph) AddEdge(u, v int, w float64) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj)))
	}
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: invalid edge weight %g", w))
	}
	g.adj[u] = append(g.adj[u], Edge{v, w})
	g.m++
}

// Out returns the outgoing edges of u. The slice must not be modified.
func (g *Digraph) Out(u int) []Edge { return g.adj[u] }

type pqItem struct {
	v    int
	dist float64
}

type pq []pqItem

func (p pq) Len() int { return len(p) }

// Less orders by (dist, v) lexicographically. The vertex tie-break makes
// the pop order — and therefore the relaxation order and predecessor
// choices on equal-distance ties — canonical, so the heap Dijkstra and
// the bucket-queue Dijkstra (see bucketq.go) produce bitwise-identical
// dist/prev arrays. The differential tests in csr_test.go rely on this.
func (p pq) Less(i, j int) bool {
	if p[i].dist != p[j].dist {
		return p[i].dist < p[j].dist
	}
	return p[i].v < p[j].v
}
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// ShortestPaths runs Dijkstra from src and returns the distance array and
// the predecessor array (prev[v] = -1 for src and unreachable vertices).
func (g *Digraph) ShortestPaths(src int) (dist []float64, prev []int) {
	n := len(g.adj)
	dist = make([]float64, n)
	prev = make([]int, n)
	for i := range dist {
		dist[i] = Inf
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.v] {
			continue // stale entry
		}
		for _, e := range g.adj[it.v] {
			if nd := it.dist + e.W; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = it.v
				heap.Push(q, pqItem{e.To, nd})
			}
		}
	}
	return dist, prev
}

// PathTo reconstructs the path src→dst from a predecessor array returned
// by ShortestPaths(src). It returns nil when dst is unreachable.
func PathTo(prev []int, src, dst int) []int {
	if dst != src && prev[dst] == -1 {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// AllPairs runs Dijkstra from every vertex, returning dist[u][v] and
// prev[u][v] matrices.
func (g *Digraph) AllPairs() (dist [][]float64, prev [][]int) {
	n := len(g.adj)
	dist = make([][]float64, n)
	prev = make([][]int, n)
	for u := 0; u < n; u++ {
		dist[u], prev[u] = g.ShortestPaths(u)
	}
	return dist, prev
}

// Reachable returns the set of vertices reachable from src (including
// src) as a boolean slice.
func (g *Digraph) Reachable(src int) []bool {
	seen := make([]bool, len(g.adj))
	stack := []int{src}
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}
