package graph

import "sync"

// Arena is a typed free-list allocator for the solver hot path: the
// auxiliary-graph construction and the Steiner Dijkstra sweeps allocate
// the same handful of slice shapes (distance vectors, predecessor
// arrays, edge triples) once per solve, and an Arena lets those buffers
// be recycled across solves instead of churning the garbage collector.
//
// Ownership rules (the "arena ownership" contract in DESIGN.md):
//
//   - An Arena is single-owner: one goroutine allocates from it at a
//     time. Parallel workers take buffers before fan-out or use their
//     own pooled scratch (GetScratch), never a shared Arena.
//   - Take methods return buffers with UNDEFINED contents; callers must
//     initialize every element they read. (Returning dirty memory is
//     the point — zeroing would cost what the reuse saves.)
//   - Put hands a buffer back; the caller must not retain any alias.
//     Buffers that escape into long-lived structures (memoized
//     auxiliary-graph cores, returned solutions) are plain heap
//     allocations and are never Put.
//   - The nil *Arena is valid and degrades to plain make calls, so
//     call sites need no conditionals.
type Arena struct {
	f64 [][]float64
	i32 [][]int32
	b   [][]bool

	reuses, allocs int64
}

// takeDepth bounds how many free-list entries a Take scans for a buffer
// with enough capacity before giving up and allocating. The lists are
// LIFO, so recently returned (and typically right-sized) buffers are
// found immediately; the small scan tolerates mixed sizes without
// turning Take into a search.
const takeDepth = 8

// F64 returns a float64 slice of length n with undefined contents.
func (a *Arena) F64(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	for i := len(a.f64) - 1; i >= 0 && i >= len(a.f64)-takeDepth; i-- {
		if cap(a.f64[i]) >= n {
			s := a.f64[i][:n]
			a.f64 = append(a.f64[:i], a.f64[i+1:]...)
			a.reuses++
			return s
		}
	}
	a.allocs++
	return make([]float64, n)
}

// PutF64 returns a buffer to the arena. s may be nil.
func (a *Arena) PutF64(s []float64) {
	if a != nil && cap(s) > 0 {
		a.f64 = append(a.f64, s[:0])
	}
}

// I32 returns an int32 slice of length n with undefined contents.
func (a *Arena) I32(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	for i := len(a.i32) - 1; i >= 0 && i >= len(a.i32)-takeDepth; i-- {
		if cap(a.i32[i]) >= n {
			s := a.i32[i][:n]
			a.i32 = append(a.i32[:i], a.i32[i+1:]...)
			a.reuses++
			return s
		}
	}
	a.allocs++
	return make([]int32, n)
}

// PutI32 returns a buffer to the arena. s may be nil.
func (a *Arena) PutI32(s []int32) {
	if a != nil && cap(s) > 0 {
		a.i32 = append(a.i32, s[:0])
	}
}

// Bools returns a bool slice of length n with undefined contents.
func (a *Arena) Bools(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	for i := len(a.b) - 1; i >= 0 && i >= len(a.b)-takeDepth; i-- {
		if cap(a.b[i]) >= n {
			s := a.b[i][:n]
			a.b = append(a.b[:i], a.b[i+1:]...)
			a.reuses++
			return s
		}
	}
	a.allocs++
	return make([]bool, n)
}

// PutBools returns a buffer to the arena. s may be nil.
func (a *Arena) PutBools(s []bool) {
	if a != nil && cap(s) > 0 {
		a.b = append(a.b, s[:0])
	}
}

// ArenaStats counts buffer requests served from the free lists (Reuses)
// versus fresh heap allocations (Allocs) since the arena was acquired.
type ArenaStats struct {
	Reuses, Allocs int64
}

// Stats returns the arena's reuse counters (zero on nil).
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	return ArenaStats{Reuses: a.reuses, Allocs: a.allocs}
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// GetArena takes an arena from the package pool with zeroed counters;
// its free lists carry buffers returned by earlier PutArena calls, so
// steady-state solves allocate almost nothing.
func GetArena() *Arena {
	a := arenaPool.Get().(*Arena)
	a.reuses, a.allocs = 0, 0
	return a
}

// PutArena returns an arena (and every buffer on its free lists) to the
// package pool. The caller must not use the arena, or any buffer not
// already Put back, afterwards.
func PutArena(a *Arena) {
	if a != nil {
		arenaPool.Put(a)
	}
}
