package graph

import "sync"

// This file implements the CSR Dijkstra on a monotone bucket queue
// (a Dial-style calendar queue generalized to float keys). Edge weights
// in the auxiliary graph are drawn from the discrete cost sets — a small
// set of bounded power levels — so tentative distances live in a sliding
// window of width MaxW above the last settled distance. nBuckets
// circular buckets of width MaxW/(nBuckets-4) cover that window with
// slack for float rounding.
//
// Each bucket is a small binary heap ordered by the (distance, vertex)
// lexicographic key. The auxiliary graph is dominated by zero-weight
// wait and coverage edges, so distances plateau onto few distinct
// values and whole connected regions land in ONE bucket; a per-bucket
// heap keeps those plateau pops at O(log k) where a scan-for-min would
// go quadratic. Push is an append + sift-up into the key's bucket, pop
// removes the root of the current bucket.
//
// Determinism contract: pop returns the exact minimum of the (distance,
// vertex) lexicographic order among live entries. All entries with equal
// distance land in the same bucket (the bucket index is a pure monotone
// function of the key), so the current bucket's heap root — skipping
// stale entries — is the global minimum. Combined with strict-less
// relaxation and CSR edge order this makes dist/prev bitwise identical
// to the reference binary-heap Dijkstra with the same (dist, v) ordering
// — the property the differential tests in csr_test.go pin.

// nBuckets is the circular bucket count. The window of live keys spans
// at most MaxW = (nBuckets-4) bucket widths; the 4 spare buckets absorb
// the floor-rounding slack at both window edges so two distinct virtual
// buckets never alias the same physical slot.
const nBuckets = 132

type bqEntry struct {
	d float64
	v int32
}

// bqLess is the (distance, vertex) lexicographic order shared with the
// reference heap.
func bqLess(a, b bqEntry) bool {
	return a.d < b.d || (a.d == b.d && a.v < b.v)
}

// DijkstraScratch holds the bucket storage and operation counters for
// ShortestPathsInto. One scratch serves one Dijkstra at a time; parallel
// sweeps take one per worker from the package pool (GetScratch). The
// counters accumulate across runs until the owner flushes them to its
// metrics recorder.
type DijkstraScratch struct {
	buckets [nBuckets][]bqEntry

	// Pushes/Pops/Stale/Scanned count queue operations: entries
	// inserted, live entries settled, superseded entries discarded, and
	// entries examined by heap sifts.
	Pushes, Pops, Stale, Scanned int64
}

var scratchPool = sync.Pool{New: func() any { return new(DijkstraScratch) }}

// GetScratch takes a scratch from the package pool with zeroed counters.
func GetScratch() *DijkstraScratch {
	sc := scratchPool.Get().(*DijkstraScratch)
	sc.Pushes, sc.Pops, sc.Stale, sc.Scanned = 0, 0, 0, 0
	return sc
}

// PutScratch returns a scratch to the package pool.
func PutScratch(sc *DijkstraScratch) {
	if sc != nil {
		scratchPool.Put(sc)
	}
}

// bqPush appends e to the bucket heap and sifts it up. The sift moves a
// hole toward the root and writes e once, instead of swapping e upward.
func bqPush(b []bqEntry, e bqEntry) []bqEntry {
	b = append(b, e)
	i := len(b) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !bqLess(e, b[p]) {
			break
		}
		b[i] = b[p]
		i = p
	}
	b[i] = e
	return b
}

// bqPop removes and returns the root of the bucket heap. The sift moves
// a hole down to the displaced last entry's final position and writes it
// once. scanned counts the sift-down levels.
func bqPop(b []bqEntry, scanned *int64) (bqEntry, []bqEntry) {
	root := b[0]
	last := len(b) - 1
	e := b[last]
	b = b[:last]
	if last == 0 {
		return root, b
	}
	i := 0
	for {
		l := 2*i + 1
		if l >= last-1 {
			if l == last-1 && bqLess(b[l], e) {
				b[i] = b[l]
				i = l
			}
			break
		}
		m := l
		if bqLess(b[l+1], b[l]) {
			m = l + 1
		}
		*scanned++
		if !bqLess(b[m], e) {
			break
		}
		b[i] = b[m]
		i = m
	}
	b[i] = e
	return root, b
}

// ShortestPathsInto runs Dijkstra from src, writing distances and
// predecessors into dist and prev (each len N, fully overwritten;
// prev[v] = -1 for src and unreachable vertices). sc provides the queue
// storage; nil allocates a throwaway.
//
//tmedbvet:hotpath
func (g *CSR) ShortestPathsInto(src int, dist []float64, prev []int32, sc *DijkstraScratch) {
	n := g.N()
	if sc == nil {
		//tmedbvet:ignore hotalloc documented nil-scratch fallback for one-off callers; hot callers pass pooled scratch
		sc = new(DijkstraScratch)
	}
	for i := 0; i < n; i++ {
		dist[i] = Inf
		prev[i] = -1
	}
	for i := range sc.buckets {
		sc.buckets[i] = sc.buckets[i][:0]
	}
	width := g.maxW / float64(nBuckets-4)
	if width <= 0 {
		width = 1 // all weights zero: every key is 0, one bucket suffices
	}
	inv := 1 / width

	dist[src] = 0
	sc.buckets[0] = append(sc.buckets[0], bqEntry{0, int32(src)})
	count := 1
	for vb := int64(0); count > 0; {
		slot := vb % nBuckets
		b := sc.buckets[slot]
		if len(b) == 0 {
			vb++
			continue
		}
		var e bqEntry
		e, b = bqPop(b, &sc.Scanned)
		sc.buckets[slot] = b
		count--
		// Superseded entry: its vertex found a shorter path after it was
		// pushed. Per vertex at most one entry ever satisfies
		// d == dist[v] — pushes for a vertex carry strictly decreasing
		// d — so liveness needs no settled-set bookkeeping.
		//tmedbvet:ignore floateq liveness test is identity of the pushed key with the current label, not a tolerance comparison
		if dist[e.v] != e.d {
			sc.Stale++
			continue
		}
		sc.Pops++

		u := e.v
		du := e.d
		for ei := g.Off[u]; ei < g.Off[u+1]; ei++ {
			v := g.To[ei]
			if nd := du + g.W[ei]; nd < dist[v] {
				dist[v] = nd
				prev[v] = u
				tb := int64(nd*inv) % nBuckets
				sc.buckets[tb] = bqPush(sc.buckets[tb], bqEntry{nd, v})
				count++
				sc.Pushes++
			}
		}
	}
}

// ShortestPaths is the allocating convenience form of ShortestPathsInto.
func (g *CSR) ShortestPaths(src int) (dist []float64, prev []int32) {
	dist = make([]float64, g.N())
	prev = make([]int32, g.N())
	g.ShortestPathsInto(src, dist, prev, nil)
	return dist, prev
}
