package graph

import (
	"math"
	"math/rand"
	"testing"
)

// randomDigraph builds a digraph whose weight distribution mimics the
// auxiliary graph: a few discrete power levels, heavy zero-weight
// cohorts (wait and coverage edges), possible duplicate edges.
func randomLevelDigraph(rng *rand.Rand, n, m int) *Digraph {
	g := New(n)
	levels := []float64{0, 0, 0, 0.5, 1, 1, 2.25, 4, 7.5}
	for k := 0; k < m; k++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		g.AddEdge(u, v, levels[rng.Intn(len(levels))])
	}
	return g
}

// TestCSRMatchesDigraph pins the CSR layout against the adjacency-list
// representation: same vertex count, same out-edges in the same order.
func TestCSRMatchesDigraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		d := randomLevelDigraph(rng, n, rng.Intn(6*n))
		c := FromDigraph(d)
		if c.N() != d.N() || c.M() != d.M() {
			t.Fatalf("size mismatch: csr %d/%d digraph %d/%d", c.N(), c.M(), d.N(), d.M())
		}
		for u := 0; u < n; u++ {
			out := d.Out(u)
			if c.OutDegree(u) != len(out) {
				t.Fatalf("deg(%d) = %d, want %d", u, c.OutDegree(u), len(out))
			}
			for i, e := range out {
				ei := c.Off[u] + int32(i)
				if int(c.To[ei]) != e.To || c.W[ei] != e.W {
					t.Fatalf("edge %d of %d: csr (%d,%g) digraph (%d,%g)", i, u, c.To[ei], c.W[ei], e.To, e.W)
				}
			}
		}
	}
}

// TestBucketDijkstraMatchesHeap is the differential test the ISSUE asks
// for: on randomized graphs (including zero-weight-heavy, disconnected,
// and duplicate-edge instances), the CSR bucket-queue Dijkstra must
// produce bitwise-identical distances AND predecessors to the retained
// reference heap implementation. Both use the canonical (dist, vertex)
// tie-break, so this is exact equality, not tolerance comparison.
func TestBucketDijkstraMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sc := GetScratch()
	defer PutScratch(sc)
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(60)
		d := randomLevelDigraph(rng, n, rng.Intn(8*n))
		c := FromDigraph(d)
		src := rng.Intn(n)

		wantDist, wantPrev := d.ShortestPaths(src)
		gotDist := make([]float64, n)
		gotPrev := make([]int32, n)
		c.ShortestPathsInto(src, gotDist, gotPrev, sc)

		for v := 0; v < n; v++ {
			//tmedbvet:ignore floateq differential test requires bitwise-identical distances, not tolerant agreement
			if gotDist[v] != wantDist[v] && !(math.IsInf(gotDist[v], 1) && math.IsInf(wantDist[v], 1)) {
				t.Fatalf("trial %d: dist[%d] = %v, want %v", trial, v, gotDist[v], wantDist[v])
			}
			if int(gotPrev[v]) != wantPrev[v] {
				t.Fatalf("trial %d: prev[%d] = %d, want %d (dist %v)", trial, v, gotPrev[v], wantPrev[v], gotDist[v])
			}
		}

		// Path reconstruction agrees too.
		for probe := 0; probe < 3; probe++ {
			dst := rng.Intn(n)
			p1 := PathTo(wantPrev, src, dst)
			p2 := PathTo32(gotPrev, src, dst)
			if len(p1) != len(p2) {
				t.Fatalf("trial %d: path lengths differ: %v vs %v", trial, p1, p2)
			}
			for i := range p1 {
				if p1[i] != p2[i] {
					t.Fatalf("trial %d: paths differ: %v vs %v", trial, p1, p2)
				}
			}
		}
	}
	if sc.Pops == 0 || sc.Pushes == 0 {
		t.Fatalf("scratch counters not accumulating: %+v", sc)
	}
}

// TestBucketDijkstraZeroWeightPlateau exercises the all-zero-weight
// corner (bucket width degenerates): every reachable vertex sits at
// distance 0 and the tie-break settles vertices in index order.
func TestBucketDijkstraZeroWeightPlateau(t *testing.T) {
	n := 30
	d := New(n)
	for u := n - 1; u > 0; u-- {
		d.AddEdge(0, u, 0)
		d.AddEdge(u, u-1, 0)
	}
	c := FromDigraph(d)
	wantDist, wantPrev := d.ShortestPaths(0)
	gotDist := make([]float64, n)
	gotPrev := make([]int32, n)
	c.ShortestPathsInto(0, gotDist, gotPrev, nil)
	for v := 0; v < n; v++ {
		//tmedbvet:ignore floateq differential test requires bitwise-identical distances, not tolerant agreement
		if gotDist[v] != wantDist[v] || int(gotPrev[v]) != wantPrev[v] {
			t.Fatalf("v%d: got (%g,%d) want (%g,%d)", v, gotDist[v], gotPrev[v], wantDist[v], wantPrev[v])
		}
	}
}

// TestTransposeMatchesReference pins the transpose edge order against
// the order the Steiner solver's reverse graph was historically built
// in: iterate sources ascending, append to the head's list.
func TestTransposeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		d := randomLevelDigraph(rng, n, rng.Intn(5*n))
		want := New(n)
		for u := 0; u < n; u++ {
			for _, e := range d.Out(u) {
				want.AddEdge(e.To, u, e.W)
			}
		}
		got := FromDigraph(d).Transpose(nil)
		ref := FromDigraph(want)
		if got.M() != ref.M() {
			t.Fatalf("edge count %d want %d", got.M(), ref.M())
		}
		for i := range got.To {
			if got.To[i] != ref.To[i] || got.W[i] != ref.W[i] {
				t.Fatalf("trial %d: transpose edge %d: (%d,%g) want (%d,%g)", trial, i, got.To[i], got.W[i], ref.To[i], ref.W[i])
			}
		}
		for u := 0; u <= n; u++ {
			if got.Off[u] != ref.Off[u] {
				t.Fatalf("trial %d: Off[%d] = %d want %d", trial, u, got.Off[u], ref.Off[u])
			}
		}
	}
}

// TestCSRReachableMatchesDigraph checks the flat reachability sweep.
func TestCSRReachableMatchesDigraph(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		d := randomLevelDigraph(rng, n, rng.Intn(3*n))
		c := FromDigraph(d)
		src := rng.Intn(n)
		want := d.Reachable(src)
		got := c.Reachable(src)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("reach[%d] = %v, want %v", v, got[v], want[v])
			}
		}
	}
}

// TestBuildCSRPayloadPermutation checks BuildCSR's stable grouping and
// the pos mapping that carries per-edge payloads across the sort.
func TestBuildCSRPayloadPermutation(t *testing.T) {
	var el EdgeList
	el.Add(2, 0, 1.5)
	el.Add(0, 1, 0)
	el.Add(2, 1, 2.5)
	el.Add(0, 2, 3)
	el.Add(1, 0, 0.5)
	g, pos := BuildCSR(3, &el, nil)
	if g.N() != 3 || g.M() != 5 {
		t.Fatalf("size: %d/%d", g.N(), g.M())
	}
	// Per-vertex order must preserve Add order: vertex 0 → (1,0),(2,3);
	// vertex 1 → (0,0.5); vertex 2 → (0,1.5),(1,2.5).
	wantTo := []int32{1, 2, 0, 0, 1}
	wantW := []float64{0, 3, 0.5, 1.5, 2.5}
	for i := range wantTo {
		if g.To[i] != wantTo[i] || g.W[i] != wantW[i] {
			t.Fatalf("edge %d: (%d,%g) want (%d,%g)", i, g.To[i], g.W[i], wantTo[i], wantW[i])
		}
	}
	// pos maps list order to CSR slots.
	wantPos := []int32{3, 0, 4, 1, 2}
	for i, p := range pos {
		if p != wantPos[i] {
			t.Fatalf("pos[%d] = %d, want %d", i, p, wantPos[i])
		}
	}
	if g.MaxW() != 3 {
		t.Fatalf("maxW = %g, want 3", g.MaxW())
	}
}
