package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func diamond() *Digraph {
	// 0→1 (1), 0→2 (4), 1→2 (2), 1→3 (6), 2→3 (3)
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 4)
	g.AddEdge(1, 2, 2)
	g.AddEdge(1, 3, 6)
	g.AddEdge(2, 3, 3)
	return g
}

func TestAddEdgePanics(t *testing.T) {
	g := New(2)
	for _, f := range []func(){
		func() { g.AddEdge(0, 5, 1) },
		func() { g.AddEdge(-1, 0, 1) },
		func() { g.AddEdge(0, 1, -2) },
		func() { g.AddEdge(0, 1, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestShortestPathsDiamond(t *testing.T) {
	g := diamond()
	dist, prev := g.ShortestPaths(0)
	want := []float64{0, 1, 3, 6}
	for v, d := range want {
		if dist[v] != d {
			t.Errorf("dist[%d] = %g, want %g", v, dist[v], d)
		}
	}
	path := PathTo(prev, 0, 3)
	wantPath := []int{0, 1, 2, 3}
	if len(path) != len(wantPath) {
		t.Fatalf("path = %v, want %v", path, wantPath)
	}
	for i := range wantPath {
		if path[i] != wantPath[i] {
			t.Errorf("path[%d] = %d, want %d", i, path[i], wantPath[i])
		}
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	dist, prev := g.ShortestPaths(0)
	if !math.IsInf(dist[2], 1) {
		t.Errorf("dist[2] = %g, want +Inf", dist[2])
	}
	if PathTo(prev, 0, 2) != nil {
		t.Error("PathTo unreachable should be nil")
	}
}

func TestPathToSelf(t *testing.T) {
	g := diamond()
	_, prev := g.ShortestPaths(0)
	p := PathTo(prev, 0, 0)
	if len(p) != 1 || p[0] != 0 {
		t.Errorf("PathTo self = %v, want [0]", p)
	}
}

func TestZeroWeightEdges(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	dist, _ := g.ShortestPaths(0)
	if dist[2] != 0 {
		t.Errorf("dist through zero-weight chain = %g, want 0", dist[2])
	}
}

func TestAllPairs(t *testing.T) {
	g := diamond()
	dist, _ := g.AllPairs()
	if dist[0][3] != 6 {
		t.Errorf("dist[0][3] = %g, want 6", dist[0][3])
	}
	if dist[1][3] != 5 {
		t.Errorf("dist[1][3] = %g, want 5", dist[1][3])
	}
	if !math.IsInf(dist[3][0], 1) {
		t.Errorf("dist[3][0] = %g, want +Inf (directed)", dist[3][0])
	}
}

func TestReachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	r := g.Reachable(0)
	if !r[0] || !r[1] || !r[2] || r[3] {
		t.Errorf("Reachable = %v, want [true true true false]", r)
	}
}

func TestCounts(t *testing.T) {
	g := diamond()
	if g.N() != 4 || g.M() != 5 {
		t.Errorf("N=%d M=%d, want 4, 5", g.N(), g.M())
	}
}

func randomDigraph(r *rand.Rand, n, m int) *Digraph {
	g := New(n)
	for k := 0; k < m; k++ {
		g.AddEdge(r.Intn(n), r.Intn(n), r.Float64()*10)
	}
	return g
}

func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDigraph(r, 12, 40)
		dist, _ := g.AllPairs()
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				for w := 0; w < g.N(); w++ {
					if dist[u][w] > dist[u][v]+dist[v][w]+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickPathMatchesDistance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDigraph(r, 10, 30)
		dist, prev := g.ShortestPaths(0)
		for v := 0; v < g.N(); v++ {
			p := PathTo(prev, 0, v)
			if p == nil {
				if !math.IsInf(dist[v], 1) && v != 0 {
					return false
				}
				continue
			}
			// sum path edge weights — take the min parallel edge
			var total float64
			for i := 0; i+1 < len(p); i++ {
				best := math.Inf(1)
				for _, e := range g.Out(p[i]) {
					if e.To == p[i+1] && e.W < best {
						best = e.W
					}
				}
				total += best
			}
			if math.Abs(total-dist[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickDijkstraAgainstBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDigraph(r, 9, 25)
		dist, _ := g.ShortestPaths(0)
		// Bellman-Ford reference
		bf := make([]float64, g.N())
		for i := range bf {
			bf[i] = math.Inf(1)
		}
		bf[0] = 0
		for iter := 0; iter < g.N(); iter++ {
			for u := 0; u < g.N(); u++ {
				for _, e := range g.Out(u) {
					if bf[u]+e.W < bf[e.To] {
						bf[e.To] = bf[u] + e.W
					}
				}
			}
		}
		for v := range bf {
			if math.IsInf(bf[v], 1) != math.IsInf(dist[v], 1) {
				return false
			}
			if !math.IsInf(bf[v], 1) && math.Abs(bf[v]-dist[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
