package graph

import "fmt"

// CSR is a weighted digraph in compressed-sparse-row form: the out-edges
// of vertex u are the index range Off[u]..Off[u+1] of the parallel To/W
// arrays. Three flat slices replace the per-vertex []Edge slices of
// Digraph, so a whole Dijkstra sweep touches two contiguous arrays
// instead of chasing one pointer per vertex.
//
// Invariants (the "flat data-layout" contract in DESIGN.md):
//
//   - len(Off) == N()+1, Off[0] == 0, Off is non-decreasing,
//     Off[N()] == len(To) == len(W).
//   - Edge order within a vertex is the construction order (BuildCSR is
//     a stable counting sort; FromDigraph preserves insertion order), so
//     relaxation order — and with it every equal-distance tie — is
//     deterministic and identical to the reference Digraph's.
//   - A CSR is immutable once built. Memoized auxiliary-graph cores
//     share one CSR across solver instances and goroutines on the
//     strength of this.
type CSR struct {
	Off []int32
	To  []int32
	W   []float64

	maxW float64
}

// N returns the number of vertices.
func (g *CSR) N() int { return len(g.Off) - 1 }

// M returns the number of edges.
func (g *CSR) M() int { return len(g.To) }

// MaxW returns the largest edge weight (0 for an edgeless graph). The
// bucket-queue Dijkstra sizes its bucket width from it.
func (g *CSR) MaxW() float64 { return g.maxW }

// OutDegree returns the out-degree of u.
func (g *CSR) OutDegree(u int) int { return int(g.Off[u+1] - g.Off[u]) }

// EdgeList accumulates directed edges (u, v, w) before the counting sort
// that lays them out in CSR form. The three parallel slices (rather than
// a []struct) keep BuildCSR's sort phase free of padding and let the
// buffers come from an Arena.
type EdgeList struct {
	U, V []int32
	W    []float64
}

// Add appends one edge.
func (el *EdgeList) Add(u, v int32, w float64) {
	el.U = append(el.U, u)
	el.V = append(el.V, v)
	el.W = append(el.W, w)
}

// Len returns the number of accumulated edges.
func (el *EdgeList) Len() int { return len(el.U) }

// Reset empties the list, keeping capacity.
func (el *EdgeList) Reset() {
	el.U, el.V, el.W = el.U[:0], el.V[:0], el.W[:0]
}

// BuildCSR lays the edge list out as a CSR over n vertices with a stable
// counting sort by source vertex: edges of the same vertex keep their
// Add order. pos maps each edge-list index to its edge index in the
// returned CSR, so callers can carry per-edge payloads (the auxiliary
// graph's transmission metadata) across the permutation; pos is
// allocated from a (and may be returned to it once the payload is
// permuted). The CSR arrays themselves are plain heap allocations — a
// built CSR is immutable and may outlive the arena (memoized cores).
func BuildCSR(n int, el *EdgeList, a *Arena) (*CSR, []int32) {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	m := el.Len()
	g := &CSR{
		Off: make([]int32, n+1),
		To:  make([]int32, m),
		W:   make([]float64, m),
	}
	for _, u := range el.U {
		g.Off[u+1]++
	}
	for i := 0; i < n; i++ {
		g.Off[i+1] += g.Off[i]
	}
	cur := a.I32(n)
	copy(cur, g.Off[:n])
	pos := a.I32(m)
	for i := 0; i < m; i++ {
		e := cur[el.U[i]]
		cur[el.U[i]]++
		g.To[e] = el.V[i]
		g.W[e] = el.W[i]
		pos[i] = e
		if el.W[i] > g.maxW {
			g.maxW = el.W[i]
		}
	}
	a.PutI32(cur)
	return g, pos
}

// FromDigraph converts a Digraph to CSR form, preserving per-vertex edge
// order. The differential tests drive both representations through the
// same instances with this.
func FromDigraph(d *Digraph) *CSR {
	n := d.N()
	g := &CSR{
		Off: make([]int32, n+1),
		To:  make([]int32, 0, d.M()),
		W:   make([]float64, 0, d.M()),
	}
	for u := 0; u < n; u++ {
		for _, e := range d.Out(u) {
			g.To = append(g.To, int32(e.To))
			g.W = append(g.W, e.W)
			if e.W > g.maxW {
				g.maxW = e.W
			}
		}
		g.Off[u+1] = int32(len(g.To))
	}
	return g
}

// Transpose returns the reverse graph (every edge u→v becomes v→u) as a
// fresh CSR. The transpose is the stable counting sort of the edges by
// head vertex, matching the order the reference implementation built its
// reverse graph in (iterate u ascending, append to head's list).
func (g *CSR) Transpose(a *Arena) *CSR {
	n := g.N()
	m := g.M()
	//tmedbvet:ignore hotalloc builds a fresh CSR once per solver: hot callers reach this only through the memoized revGraph/WithReverse path
	r := &CSR{
		Off:  make([]int32, n+1),
		To:   make([]int32, m),
		W:    make([]float64, m),
		maxW: g.maxW,
	}
	for _, v := range g.To {
		r.Off[v+1]++
	}
	for i := 0; i < n; i++ {
		r.Off[i+1] += r.Off[i]
	}
	cur := a.I32(n)
	copy(cur, r.Off[:n])
	for u := 0; u < n; u++ {
		for ei := g.Off[u]; ei < g.Off[u+1]; ei++ {
			v := g.To[ei]
			e := cur[v]
			cur[v]++
			r.To[e] = int32(u)
			r.W[e] = g.W[ei]
		}
	}
	a.PutI32(cur)
	return r
}

// Reachable returns the set of vertices reachable from src (including
// src) as a boolean slice.
func (g *CSR) Reachable(src int) []bool {
	seen := make([]bool, g.N())
	g.ReachableInto(src, seen, nil)
	return seen
}

// ReachableInto runs the reachability sweep into seen (len N, fully
// overwritten) using stack as scratch (grown as needed; pass nil or a
// recycled buffer).
func (g *CSR) ReachableInto(src int, seen []bool, stack []int32) []int32 {
	for i := range seen {
		seen[i] = false
	}
	stack = append(stack[:0], int32(src))
	seen[src] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for ei := g.Off[u]; ei < g.Off[u+1]; ei++ {
			if v := g.To[ei]; !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return stack
}

// PathTo32 reconstructs the path src→dst from an int32 predecessor array
// produced by the CSR Dijkstra. It returns nil when dst is unreachable.
func PathTo32(prev []int32, src, dst int) []int {
	p, ok := PathTo32Into(prev, src, dst, nil)
	if !ok {
		return nil
	}
	return p
}

// PathTo32Into is PathTo32 writing into buf (appended from buf[:0],
// grown as needed) so hot callers can recycle one buffer across
// reconstructions. It returns the filled buffer and whether dst is
// reachable; on false the returned buffer is buf with undefined
// contents, kept so its capacity survives.
func PathTo32Into(prev []int32, src, dst int, buf []int) ([]int, bool) {
	rev := buf[:0]
	if dst != src && prev[dst] == -1 {
		return rev, false
	}
	for v := dst; v != -1; v = int(prev[v]) {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return rev, false
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}
