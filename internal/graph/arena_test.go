package graph

import (
	"math/rand"
	"sync"
	"testing"
)

func TestArenaReuse(t *testing.T) {
	a := GetArena()
	defer PutArena(a)
	s1 := a.F64(100)
	a.PutF64(s1)
	s2 := a.F64(80)
	if &s1[0] != &s2[0] {
		t.Fatalf("expected the returned buffer to be recycled")
	}
	if st := a.Stats(); st.Reuses != 1 {
		t.Fatalf("stats = %+v, want 1 reuse", st)
	}
	// A request larger than anything on the free list allocates fresh.
	a.PutF64(s2)
	s3 := a.F64(500)
	if cap(s3) < 500 {
		t.Fatalf("cap %d < 500", cap(s3))
	}
	if st := a.Stats(); st.Allocs < 2 {
		t.Fatalf("stats = %+v, want >= 2 allocs (initial + oversized)", st)
	}
}

func TestNilArenaDegradesToMake(t *testing.T) {
	var a *Arena
	if got := a.F64(5); len(got) != 5 {
		t.Fatalf("nil arena F64 len %d", len(got))
	}
	if got := a.I32(5); len(got) != 5 {
		t.Fatalf("nil arena I32 len %d", len(got))
	}
	if got := a.Bools(5); len(got) != 5 {
		t.Fatalf("nil arena Bools len %d", len(got))
	}
	a.PutF64(nil)
	a.PutI32(nil)
	a.PutBools(nil)
	if st := a.Stats(); st != (ArenaStats{}) {
		t.Fatalf("nil arena stats %+v", st)
	}
}

// TestArenaAliasing is the -race aliasing test: arenas and scratches
// taken from the package pools by concurrent workers must hand out
// disjoint memory, and recycled buffers must carry no cross-goroutine
// hazard. Each worker runs Dijkstras on its own graph into
// arena-provided buffers and verifies its results against the reference
// implementation, so any buffer shared between two workers shows up as
// both a race report and a wrong distance.
func TestArenaAliasing(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			a := GetArena()
			defer PutArena(a)
			sc := GetScratch()
			defer PutScratch(sc)
			for iter := 0; iter < 30; iter++ {
				n := 2 + rng.Intn(30)
				d := randomLevelDigraph(rng, n, rng.Intn(5*n))
				c := FromDigraph(d)
				src := rng.Intn(n)
				dist := a.F64(n)
				prev := a.I32(n)
				c.ShortestPathsInto(src, dist, prev, sc)
				wantDist, wantPrev := d.ShortestPaths(src)
				for v := 0; v < n; v++ {
					// Inf == Inf holds, so plain inequality is a real mismatch.
					//tmedbvet:ignore floateq aliasing check wants bitwise equality with the reference run
					if dist[v] != wantDist[v] {
						t.Errorf("worker %d iter %d: dist[%d] = %v want %v", seed, iter, v, dist[v], wantDist[v])
						return
					}
					if int(prev[v]) != wantPrev[v] {
						t.Errorf("worker %d iter %d: prev[%d] = %d want %d", seed, iter, v, prev[v], wantPrev[v])
						return
					}
				}
				a.PutF64(dist)
				a.PutI32(prev)
			}
		}(int64(w))
	}
	wg.Wait()
}
