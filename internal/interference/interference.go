// Package interference implements the protocol interference model — the
// second future-work direction named in §VIII. Two transmissions whose
// active windows [t, t+τ] overlap (simultaneous transmissions, for
// τ = 0) collide at any receiver that is in range of both transmitters:
// the receiver decodes neither packet.
//
// The package provides collision detection on schedules, a serializer
// that shifts colliding transmissions apart within their ET-law
// equivalence intervals, and a collision-aware Monte Carlo evaluator.
package interference

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Conflict names two schedule entries that can collide at a receiver.
type Conflict struct {
	K, L     int // indices into the schedule
	Receiver tvg.NodeID
}

func (c Conflict) String() string {
	return fmt.Sprintf("tx%d×tx%d@v%d", c.K, c.L, c.Receiver)
}

// overlaps reports whether two transmissions' active windows intersect.
func overlaps(a, b schedule.Transmission, tau, slot float64) bool {
	span := tau
	if span < slot {
		span = slot // τ=0 schedules still occupy one slot of airtime
	}
	lo := a.T
	if b.T > lo {
		lo = b.T
	}
	hi := a.T + span
	if b.T+span < hi {
		hi = b.T + span
	}
	return lo < hi || a.T == b.T
}

// Detect returns every pairwise conflict of the schedule on g: both
// transmissions active at once, from different relays, with a common
// node in range of both. slot is the airtime of one packet (used when
// τ = 0; pass e.g. the packet duration at the link rate).
func Detect(g *tveg.Graph, s schedule.Schedule, slot float64) []Conflict {
	tau := g.Tau()
	var out []Conflict
	for k := 0; k < len(s); k++ {
		for l := k + 1; l < len(s); l++ {
			a, b := s[k], s[l]
			if a.Relay == b.Relay || !overlaps(a, b, tau, slot) {
				continue
			}
			for j := 0; j < g.N(); j++ {
				nj := tvg.NodeID(j)
				if nj == a.Relay || nj == b.Relay {
					continue
				}
				if g.RhoTau(a.Relay, nj, a.T) && g.RhoTau(b.Relay, nj, b.T) {
					out = append(out, Conflict{K: k, L: l, Receiver: nj})
					break // one shared receiver is enough to flag the pair
				}
			}
		}
	}
	return out
}

// Serialize rewrites the schedule so that overlapping transmissions
// neither collide nor depend on each other, by delaying the later
// (causally ordered) one in steps of the airtime within its relay's
// current adjacency interval — the ET-law equivalence class, inside
// which coverage is unchanged. Two overlapping transmissions must
// separate when they share a potential receiver (collision) or when one
// delivers the packet to the other's relay (a relay cannot decode and
// forward within a single airtime — exactly what τ ≈ 0 non-stop chains
// pretend to do). It returns an error when a transmission cannot be
// moved without leaving its interval.
func Serialize(g *tveg.Graph, s schedule.Schedule, slot float64) (schedule.Schedule, error) {
	if slot <= 0 {
		return nil, fmt.Errorf("interference: non-positive slot %g", slot)
	}
	out := make(schedule.Schedule, len(s))
	copy(out, s)
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	tau := g.Tau()
	span := tau
	if span < slot {
		span = slot
	}
	// Global fixpoint: each pass delays the later transmission of every
	// overlapping pair that needs separation; moving one transmission
	// can create new overlaps, so repeat until quiet. Each delay is at
	// least one airtime within a bounded interval, so the loop
	// terminates (the coverage check errors out before unbounded drift).
	maxPasses := 4*len(out) + 4
	for pass := 0; ; pass++ {
		if pass == maxPasses {
			return nil, fmt.Errorf("interference: serialization did not converge after %d passes", maxPasses)
		}
		moved := false
		for k := range out {
			for l := range out {
				if l == k || out[l].Relay == out[k].Relay {
					continue
				}
				// "l" must be the earlier transmission (index breaks
				// exact ties so exactly one direction applies).
				if out[l].T > out[k].T || (out[l].T == out[k].T && l > k) {
					continue
				}
				if !overlaps(out[l], out[k], tau, slot) {
					continue
				}
				if !sharesReceiver(g, out[l], out[k]) && !feedsRelay(g, out[l], out[k]) {
					continue
				}
				newT := out[l].T + span
				if !coverageUnchanged(g, out[k], newT) {
					return nil, fmt.Errorf("interference: cannot move tx (v%d@%g) to %g without changing coverage",
						out[k].Relay, out[k].T, newT)
				}
				out[k].T = newT
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out, nil
}

// feedsRelay reports whether transmission a delivers the packet to b's
// relay at sufficient power — i.e. b's firing may depend on a.
func feedsRelay(g *tveg.Graph, a, b schedule.Transmission) bool {
	if !g.RhoTau(a.Relay, b.Relay, a.T) {
		return false
	}
	return g.MinCost(a.Relay, b.Relay, a.T) <= a.W*(1+1e-12)
}

func sharesReceiver(g *tveg.Graph, a, b schedule.Transmission) bool {
	for j := 0; j < g.N(); j++ {
		nj := tvg.NodeID(j)
		if nj == a.Relay || nj == b.Relay {
			continue
		}
		if g.RhoTau(a.Relay, nj, a.T) && g.RhoTau(b.Relay, nj, b.T) {
			return true
		}
	}
	return false
}

// coverageUnchanged reports whether moving a transmission to newT keeps
// the same reachable neighbor set at the same costs (both times inside
// the same channel segments).
func coverageUnchanged(g *tveg.Graph, x schedule.Transmission, newT float64) bool {
	old := g.DCS(x.Relay, x.T)
	new_ := g.DCS(x.Relay, newT)
	if len(old) != len(new_) {
		return false
	}
	for i := range old {
		if old[i] != new_[i] {
			return false
		}
	}
	return true
}

// Evaluate runs the Monte Carlo executor with collision semantics.
// Transmissions whose airtimes overlap form a cluster that is in the air
// simultaneously: a transmission fires only if its relay was informed
// before the cluster (no decode-and-forward within one airtime), and a
// receiver in range of two or more fired transmitters of the cluster
// decodes nothing. Deterministic per rng.
func Evaluate(g *tveg.Graph, s schedule.Schedule, src tvg.NodeID, slot float64, trials int, rng *rand.Rand) (meanDelivery float64) {
	if trials <= 0 {
		panic(fmt.Sprintf("interference: non-positive trials %d", trials))
	}
	ordered := make(schedule.Schedule, len(s))
	copy(ordered, s)
	ordered.SortByTime()
	tau := g.Tau()
	span := tau
	if span < slot {
		span = slot
	}

	// Cluster by transitive airtime overlap.
	var clusters [][]int
	for k := 0; k < len(ordered); {
		end := ordered[k].T + span
		cl := []int{k}
		l := k + 1
		for l < len(ordered) && ordered[l].T < end {
			if t := ordered[l].T + span; t > end {
				end = t
			}
			cl = append(cl, l)
			l++
		}
		clusters = append(clusters, cl)
		k = l
	}

	informed := make([]bool, g.N())
	var sum float64
	for trial := 0; trial < trials; trial++ {
		for i := range informed {
			informed[i] = false
		}
		informed[src] = true
		for _, cl := range clusters {
			// Phase 1: decide who fires from the pre-cluster state.
			fired := cl[:0:0]
			for _, k := range cl {
				if informed[ordered[k].Relay] {
					fired = append(fired, k)
				}
			}
			// Phase 2: deliveries with collisions.
			for j := 0; j < g.N(); j++ {
				nj := tvg.NodeID(j)
				if informed[nj] {
					continue
				}
				heard := -1
				count := 0
				for _, k := range fired {
					x := ordered[k]
					if x.Relay == nj || !g.RhoTau(x.Relay, nj, x.T) {
						continue
					}
					count++
					heard = k
				}
				if count != 1 {
					continue // silence or collision
				}
				x := ordered[heard]
				failure := g.EDAt(x.Relay, nj, x.T).FailureProb(x.W)
				if failure <= 0 || rng.Float64() >= failure {
					informed[nj] = true
				}
			}
		}
		delivered := 0
		for _, ok := range informed {
			if ok {
				delivered++
			}
		}
		sum += float64(delivered) / float64(g.N())
	}
	return sum / float64(trials)
}
