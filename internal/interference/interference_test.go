package interference

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/interval"
	"repro/internal/schedule"
	"repro/internal/tveg"
)

func iv(a, b float64) interval.Interval { return interval.Interval{Start: a, End: b} }

// hiddenTerminal: transmitters 0 and 1 both cover receiver 2; 0 also
// covers 3 privately, 1 covers 4 privately.
func hiddenTerminal() *tveg.Graph {
	g := tveg.New(5, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 2, iv(0, 100), 5)
	g.AddContact(1, 2, iv(0, 100), 5)
	g.AddContact(0, 3, iv(0, 100), 5)
	g.AddContact(1, 4, iv(0, 100), 5)
	g.AddContact(0, 1, iv(0, 100), 5)
	return g
}

func sufficientW(g *tveg.Graph) float64 { return g.Params.NoiseGamma() * 25 }

func TestDetectFindsHiddenTerminal(t *testing.T) {
	g := hiddenTerminal()
	w := sufficientW(g)
	s := schedule.Schedule{
		{Relay: 0, T: 10, W: w},
		{Relay: 1, T: 10, W: w},
	}
	conflicts := Detect(g, s, 1)
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %v, want 1", conflicts)
	}
	if conflicts[0].K != 0 || conflicts[0].L != 1 {
		t.Errorf("conflict pair = %v", conflicts[0])
	}
}

func TestDetectNoConflictWhenSeparated(t *testing.T) {
	g := hiddenTerminal()
	w := sufficientW(g)
	s := schedule.Schedule{
		{Relay: 0, T: 10, W: w},
		{Relay: 1, T: 20, W: w},
	}
	if c := Detect(g, s, 1); len(c) != 0 {
		t.Errorf("separated transmissions conflict: %v", c)
	}
}

func TestDetectSameRelayNeverConflicts(t *testing.T) {
	g := hiddenTerminal()
	w := sufficientW(g)
	s := schedule.Schedule{
		{Relay: 0, T: 10, W: w},
		{Relay: 0, T: 10, W: w / 2},
	}
	if c := Detect(g, s, 1); len(c) != 0 {
		t.Errorf("same-relay transmissions conflict: %v", c)
	}
}

func TestSerializeResolvesConflicts(t *testing.T) {
	g := hiddenTerminal()
	w := sufficientW(g)
	s := schedule.Schedule{
		{Relay: 0, T: 10, W: w},
		{Relay: 1, T: 10, W: w},
	}
	out, err := Serialize(g, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c := Detect(g, out, 1); len(c) != 0 {
		t.Errorf("serialized schedule still conflicts: %v", c)
	}
	// the shifted transmission stays within its contact
	for _, x := range out {
		if x.T < 0 || x.T > 100 {
			t.Errorf("transmission moved outside span: %v", x)
		}
	}
}

func TestSerializeBadSlot(t *testing.T) {
	g := hiddenTerminal()
	if _, err := Serialize(g, nil, 0); err == nil {
		t.Error("slot 0 should error")
	}
}

func TestSerializeFailsAtIntervalEdge(t *testing.T) {
	// contact so short the conflicting tx cannot be delayed inside it
	g := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 2, iv(10, 10.5), 5)
	g.AddContact(1, 2, iv(10, 10.5), 5)
	w := sufficientW(g)
	s := schedule.Schedule{
		{Relay: 0, T: 10, W: w},
		{Relay: 1, T: 10, W: w},
	}
	if _, err := Serialize(g, s, 1); err == nil {
		t.Error("expected failure: no room to serialize inside a 0.5 s contact")
	}
}

func TestEvaluateCollisionKillsSharedReceiver(t *testing.T) {
	// Hidden-terminal gadget: 0 informs 1 through an early private
	// contact, then 0 and 1 transmit simultaneously. Receivers 3 and 4
	// each hear exactly one transmitter and decode; the shared receiver
	// 2 hears both and collides.
	g2 := tveg.New(5, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g2.AddContact(0, 1, iv(0, 5), 5)   // early private link 0-1
	g2.AddContact(0, 2, iv(8, 100), 5) // later shared receiver window
	g2.AddContact(1, 2, iv(8, 100), 5)
	g2.AddContact(0, 3, iv(8, 100), 5)
	g2.AddContact(1, 4, iv(8, 100), 5)
	w2 := g2.Params.NoiseGamma() * 25
	s := schedule.Schedule{
		{Relay: 0, T: 2, W: w2},  // informs 1
		{Relay: 0, T: 10, W: w2}, // collides with next at receiver 2
		{Relay: 1, T: 10, W: w2},
	}
	got := Evaluate(g2, s, 0, 1, 200, rand.New(rand.NewSource(1)))
	// informed: 0 (src), 1 (early), 3 (hears only 0), 4 (hears only 1);
	// 2 collides → 4/5
	if math.Abs(got-0.8) > 1e-9 {
		t.Errorf("delivery = %g, want 0.8 (receiver 2 collided)", got)
	}
	// serializing repairs it
	fixed, err := Serialize(g2, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	got = Evaluate(g2, fixed, 0, 1, 200, rand.New(rand.NewSource(1)))
	if got != 1 {
		t.Errorf("serialized delivery = %g, want 1", got)
	}
}

func TestEvaluateNoIntraClusterForwarding(t *testing.T) {
	// chain 0→1→2 with both transmissions at the same instant: 1 cannot
	// decode and forward within one airtime, so 2 stays uninformed.
	g := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(0, 100), 5)
	g.AddContact(1, 2, iv(0, 100), 5)
	w := sufficientW(g)
	s := schedule.Schedule{
		{Relay: 0, T: 10, W: w},
		{Relay: 1, T: 10, W: w},
	}
	got := Evaluate(g, s, 0, 1, 100, rand.New(rand.NewSource(1)))
	if math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("delivery = %g, want 2/3 (no same-slot forwarding)", got)
	}
	// separated by a slot, the chain completes
	s[1].T = 12
	got = Evaluate(g, s, 0, 1, 100, rand.New(rand.NewSource(1)))
	if got != 1 {
		t.Errorf("delivery = %g, want 1", got)
	}
}

func TestEvaluatePanics(t *testing.T) {
	g := hiddenTerminal()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Evaluate(g, nil, 0, 1, 0, rand.New(rand.NewSource(1)))
}
