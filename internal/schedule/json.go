package schedule

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/tvg"
)

// JSON encoding for schedules, so planned broadcasts can be stored,
// diffed, and replayed by external tooling. The format is stable:
//
//	{"version":1,"transmissions":[{"relay":0,"t":9000,"w":1.2e-15},...]}
//
// An optional "meta" object records how the schedule was produced
// (algorithm, seed, workers, per-phase wall times). It is additive:
// version stays 1, and readers that predate it ignore the unknown field.

// Meta is the optional run-provenance block of a schedule file. All
// fields are optional; zero values are omitted from the encoding so
// meta-less files round-trip byte-identically.
type Meta struct {
	// Algorithm is the planner's display name (e.g. "FR-EEDCB").
	Algorithm string `json:"algorithm,omitempty"`
	// Model is the channel model the schedule was planned for.
	Model string `json:"model,omitempty"`
	// Seed is the RNG seed of seeded planners/evaluations.
	Seed int64 `json:"seed,omitempty"`
	// Workers is the worker-pool knob the run used (0 = serial default).
	Workers int `json:"workers,omitempty"`
	// Trace identifies the input contact trace (path or generator name).
	Trace string `json:"trace,omitempty"`
	// Src is the broadcast source node.
	Src int `json:"src,omitempty"`
	// T0 and Deadline delimit the delay window.
	T0       float64 `json:"t0,omitempty"`
	Deadline float64 `json:"deadline,omitempty"`
	// PhaseMS maps slash-joined phase paths (e.g. "eedcb/dts") to wall
	// milliseconds, as reported by the observability layer.
	PhaseMS map[string]float64 `json:"phase_ms,omitempty"`
	// DegradeRung names the degradation-ladder rung that produced the
	// schedule (e.g. "full", "spt"), when the run was deadline-bounded.
	DegradeRung string `json:"degrade_rung,omitempty"`
	// DegradeReason explains why earlier rungs were abandoned (empty when
	// the first rung succeeded).
	DegradeReason string `json:"degrade_reason,omitempty"`
}

// jsonEnvelope is the on-disk representation.
type jsonEnvelope struct {
	Version       int      `json:"version"`
	Meta          *Meta    `json:"meta,omitempty"`
	Transmissions []jsonTx `json:"transmissions"`
}

type jsonTx struct {
	Relay int     `json:"relay"`
	T     float64 `json:"t"`
	W     float64 `json:"w"`
}

// jsonVersion is the current schedule file format version.
const jsonVersion = 1

// MarshalJSON implements json.Marshaler with the versioned envelope.
func (s Schedule) MarshalJSON() ([]byte, error) {
	env := jsonEnvelope{Version: jsonVersion, Transmissions: make([]jsonTx, len(s))}
	for i, x := range s {
		env.Transmissions[i] = jsonTx{Relay: int(x.Relay), T: x.T, W: x.W}
	}
	return json.Marshal(env)
}

// UnmarshalJSON implements json.Unmarshaler, validating the version and
// basic field sanity.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var env jsonEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("schedule: %w", err)
	}
	if env.Version != jsonVersion {
		return fmt.Errorf("schedule: unsupported version %d (want %d)", env.Version, jsonVersion)
	}
	out := make(Schedule, len(env.Transmissions))
	for i, x := range env.Transmissions {
		if x.Relay < 0 {
			return fmt.Errorf("schedule: transmission %d has negative relay %d", i, x.Relay)
		}
		if x.W < 0 {
			return fmt.Errorf("schedule: transmission %d has negative cost %g", i, x.W)
		}
		out[i] = Transmission{Relay: tvg.NodeID(x.Relay), T: x.T, W: x.W}
	}
	*s = out
	return nil
}

// WriteJSON writes the schedule to w.
func (s Schedule) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSONMeta writes the schedule with an embedded meta block. A nil
// meta produces exactly WriteJSON's output.
func (s Schedule) WriteJSONMeta(w io.Writer, meta *Meta) error {
	env := jsonEnvelope{Version: jsonVersion, Meta: meta, Transmissions: make([]jsonTx, len(s))}
	for i, x := range s {
		env.Transmissions[i] = jsonTx{Relay: int(x.Relay), T: x.T, W: x.W}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

// ReadJSON parses a schedule written by WriteJSON.
func ReadJSON(r io.Reader) (Schedule, error) {
	var s Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadJSONMeta parses a schedule file and also returns its meta block
// (nil when the file carries none, including every pre-meta file).
func ReadJSONMeta(r io.Reader) (Schedule, *Meta, error) {
	var env jsonEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, nil, fmt.Errorf("schedule: %w", err)
	}
	raw, err := json.Marshal(env)
	if err != nil {
		return nil, nil, fmt.Errorf("schedule: %w", err)
	}
	var s Schedule
	if err := s.UnmarshalJSON(raw); err != nil {
		return nil, nil, err
	}
	return s, env.Meta, nil
}
