package schedule

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/tvg"
)

// JSON encoding for schedules, so planned broadcasts can be stored,
// diffed, and replayed by external tooling. The format is stable:
//
//	{"version":1,"transmissions":[{"relay":0,"t":9000,"w":1.2e-15},...]}

// jsonEnvelope is the on-disk representation.
type jsonEnvelope struct {
	Version       int      `json:"version"`
	Transmissions []jsonTx `json:"transmissions"`
}

type jsonTx struct {
	Relay int     `json:"relay"`
	T     float64 `json:"t"`
	W     float64 `json:"w"`
}

// jsonVersion is the current schedule file format version.
const jsonVersion = 1

// MarshalJSON implements json.Marshaler with the versioned envelope.
func (s Schedule) MarshalJSON() ([]byte, error) {
	env := jsonEnvelope{Version: jsonVersion, Transmissions: make([]jsonTx, len(s))}
	for i, x := range s {
		env.Transmissions[i] = jsonTx{Relay: int(x.Relay), T: x.T, W: x.W}
	}
	return json.Marshal(env)
}

// UnmarshalJSON implements json.Unmarshaler, validating the version and
// basic field sanity.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var env jsonEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("schedule: %w", err)
	}
	if env.Version != jsonVersion {
		return fmt.Errorf("schedule: unsupported version %d (want %d)", env.Version, jsonVersion)
	}
	out := make(Schedule, len(env.Transmissions))
	for i, x := range env.Transmissions {
		if x.Relay < 0 {
			return fmt.Errorf("schedule: transmission %d has negative relay %d", i, x.Relay)
		}
		if x.W < 0 {
			return fmt.Errorf("schedule: transmission %d has negative cost %g", i, x.W)
		}
		out[i] = Transmission{Relay: tvg.NodeID(x.Relay), T: x.T, W: x.W}
	}
	*s = out
	return nil
}

// WriteJSON writes the schedule to w.
func (s Schedule) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON parses a schedule written by WriteJSON.
func ReadJSON(r io.Reader) (Schedule, error) {
	var s Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	return s, nil
}
