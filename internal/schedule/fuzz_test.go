package schedule

import (
	"strings"
	"testing"
)

// FuzzReadJSON checks that arbitrary bytes never panic the schedule
// decoder and that accepted schedules re-encode losslessly.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"version":1,"transmissions":[{"relay":0,"t":1,"w":2}]}`)
	f.Add(`{"version":1,"transmissions":[]}`)
	f.Add(`{"version":2}`)
	f.Add(`{`)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ReadJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		b, merr := s.MarshalJSON()
		if merr != nil {
			t.Fatalf("accepted schedule fails to marshal: %v", merr)
		}
		back, rerr := ReadJSON(strings.NewReader(string(b)))
		if rerr != nil {
			t.Fatalf("re-parse failed: %v", rerr)
		}
		if len(back) != len(s) {
			t.Fatalf("round trip length %d vs %d", len(back), len(s))
		}
		for i := range s {
			if back[i] != s[i] {
				t.Fatalf("tx %d differs: %v vs %v", i, back[i], s[i])
			}
		}
	})
}
