package schedule

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tvg"
)

func TestJSONRoundTrip(t *testing.T) {
	s := Schedule{{Relay: 0, T: 9000, W: 1.2e-15}, {Relay: 7, T: 9100.5, W: 3e-16}}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("round trip length %d, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Errorf("tx %d = %v, want %v", i, got[i], s[i])
		}
	}
}

func TestJSONEmptySchedule(t *testing.T) {
	var buf bytes.Buffer
	if err := (Schedule{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %v, want empty", got)
	}
}

func TestJSONRejectsBadVersion(t *testing.T) {
	in := `{"version":99,"transmissions":[]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Error("version 99 should be rejected")
	}
}

func TestJSONRejectsBadFields(t *testing.T) {
	cases := []string{
		`{"version":1,"transmissions":[{"relay":-1,"t":0,"w":1}]}`,
		`{"version":1,"transmissions":[{"relay":0,"t":0,"w":-5}]}`,
		`not json`,
	}
	for _, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("ReadJSON(%q) should fail", in)
		}
	}
}

func TestJSONFormatStable(t *testing.T) {
	s := Schedule{{Relay: 2, T: 5, W: 0.25}}
	b, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"version":1,"transmissions":[{"relay":2,"t":5,"w":0.25}]}`
	if string(b) != want {
		t.Errorf("encoding = %s, want %s", b, want)
	}
}

func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(relays []uint8, ts []float64) bool {
		n := len(relays)
		if len(ts) < n {
			n = len(ts)
		}
		s := make(Schedule, 0, n)
		for i := 0; i < n; i++ {
			w := ts[i]
			if w < 0 {
				w = -w
			}
			s = append(s, Transmission{Relay: tvg.NodeID(relays[i]), T: ts[i], W: w})
		}
		var buf bytes.Buffer
		if s.WriteJSON(&buf) != nil {
			return false
		}
		got, err := ReadJSON(&buf)
		if err != nil || len(got) != len(s) {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestJSONMetaGolden pins the exact on-disk shape of the meta-bearing
// envelope: the version stays 1, "meta" precedes "transmissions", and
// zero-valued meta fields are omitted. cmd/tmedb's -o output and the
// figures pipeline both rely on this byte layout staying put.
func TestJSONMetaGolden(t *testing.T) {
	s := Schedule{{Relay: 0, T: 9000, W: 1.2e-15}, {Relay: 7, T: 9100.5, W: 3e-16}}
	meta := &Meta{
		Algorithm: "FR-EEDCB",
		Model:     "rayleigh",
		Seed:      42,
		Workers:   4,
		Trace:     "synthetic:n=50",
		Src:       3,
		T0:        9000,
		Deadline:  10800,
		PhaseMS:   map[string]float64{"fr-eedcb/dts": 1.5},
	}
	var buf bytes.Buffer
	if err := s.WriteJSONMeta(&buf, meta); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "version": 1,
  "meta": {
    "algorithm": "FR-EEDCB",
    "model": "rayleigh",
    "seed": 42,
    "workers": 4,
    "trace": "synthetic:n=50",
    "src": 3,
    "t0": 9000,
    "deadline": 10800,
    "phase_ms": {
      "fr-eedcb/dts": 1.5
    }
  },
  "transmissions": [
    {
      "relay": 0,
      "t": 9000,
      "w": 1.2e-15
    },
    {
      "relay": 7,
      "t": 9100.5,
      "w": 3e-16
    }
  ]
}
`
	if got := buf.String(); got != golden {
		t.Errorf("meta envelope drifted from golden shape:\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

func TestJSONMetaRoundTrip(t *testing.T) {
	s := Schedule{{Relay: 1, T: 10, W: 2e-15}}
	meta := &Meta{Algorithm: "EEDCB", Workers: 2}
	var buf bytes.Buffer
	if err := s.WriteJSONMeta(&buf, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := ReadJSONMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != s[0] {
		t.Errorf("schedule = %v, want %v", got, s)
	}
	if gotMeta == nil || gotMeta.Algorithm != "EEDCB" || gotMeta.Workers != 2 {
		t.Errorf("meta = %+v, want %+v", gotMeta, meta)
	}
}

func TestJSONMetaNilMatchesPlainWriter(t *testing.T) {
	s := Schedule{{Relay: 0, T: 1, W: 1e-15}}
	var plain, withNil bytes.Buffer
	if err := s.WriteJSON(&plain); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSONMeta(&withNil, nil); err != nil {
		t.Fatal(err)
	}
	if plain.String() != withNil.String() {
		t.Errorf("nil-meta output differs from WriteJSON:\n%s\nvs\n%s", withNil.String(), plain.String())
	}
}

func TestJSONMetaBackwardCompatible(t *testing.T) {
	// A pre-meta reader's envelope (plain ReadJSON) must accept
	// meta-bearing files, and ReadJSONMeta must accept meta-less files.
	s := Schedule{{Relay: 2, T: 5, W: 4e-15}}
	var buf bytes.Buffer
	if err := s.WriteJSONMeta(&buf, &Meta{Algorithm: "GREED"}); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadJSON(bytes.NewReader(buf.Bytes())); err != nil || len(got) != 1 {
		t.Errorf("plain reader on meta file: %v, %v", got, err)
	}
	var plain bytes.Buffer
	if err := s.WriteJSON(&plain); err != nil {
		t.Fatal(err)
	}
	got, meta, err := ReadJSONMeta(&plain)
	if err != nil || len(got) != 1 {
		t.Errorf("meta reader on plain file: %v, %v", got, err)
	}
	if meta != nil {
		t.Errorf("meta = %+v, want nil for meta-less file", meta)
	}
}
