package schedule

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tvg"
)

func TestJSONRoundTrip(t *testing.T) {
	s := Schedule{{Relay: 0, T: 9000, W: 1.2e-15}, {Relay: 7, T: 9100.5, W: 3e-16}}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("round trip length %d, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Errorf("tx %d = %v, want %v", i, got[i], s[i])
		}
	}
}

func TestJSONEmptySchedule(t *testing.T) {
	var buf bytes.Buffer
	if err := (Schedule{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %v, want empty", got)
	}
}

func TestJSONRejectsBadVersion(t *testing.T) {
	in := `{"version":99,"transmissions":[]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil {
		t.Error("version 99 should be rejected")
	}
}

func TestJSONRejectsBadFields(t *testing.T) {
	cases := []string{
		`{"version":1,"transmissions":[{"relay":-1,"t":0,"w":1}]}`,
		`{"version":1,"transmissions":[{"relay":0,"t":0,"w":-5}]}`,
		`not json`,
	}
	for _, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("ReadJSON(%q) should fail", in)
		}
	}
}

func TestJSONFormatStable(t *testing.T) {
	s := Schedule{{Relay: 2, T: 5, W: 0.25}}
	b, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"version":1,"transmissions":[{"relay":2,"t":5,"w":0.25}]}`
	if string(b) != want {
		t.Errorf("encoding = %s, want %s", b, want)
	}
}

func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(relays []uint8, ts []float64) bool {
		n := len(relays)
		if len(ts) < n {
			n = len(ts)
		}
		s := make(Schedule, 0, n)
		for i := 0; i < n; i++ {
			w := ts[i]
			if w < 0 {
				w = -w
			}
			s = append(s, Transmission{Relay: tvg.NodeID(relays[i]), T: ts[i], W: w})
		}
		var buf bytes.Buffer
		if s.WriteJSON(&buf) != nil {
			return false
		}
		got, err := ReadJSON(&buf)
		if err != nil || len(got) != len(s) {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
