package schedule

import (
	"math"
	"sort"

	"repro/internal/tveg"
	"repro/internal/tvg"
)

// CausalSort orders a schedule chronologically and, within groups of
// equal-time transmissions, causally: a transmission whose relay is
// already informed (deterministically, on the given planner view) fires
// before one whose relay still needs a same-instant reception. With
// τ = 0, non-stop journeys place whole relay chains on one timestamp, so
// the within-group order IS the causal order — the Informs tie-break,
// condition (i) of CheckFeasible, Eq. 16's constraint assembly, and
// every executor depend on it. Ties beyond causality break
// deterministically by (relay, cost). Every schedule producer must emit
// causally ordered schedules; this is the one routine that establishes
// the order.
func CausalSort(view *tveg.Graph, s Schedule, src tvg.NodeID, t0 float64) Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		if out[i].Relay != out[j].Relay {
			return out[i].Relay < out[j].Relay
		}
		return out[i].W < out[j].W
	})
	informedAt := make([]float64, view.N())
	for i := range informedAt {
		informedAt[i] = math.Inf(1)
	}
	informedAt[src] = t0
	tau := view.Tau()
	result := out[:0]
	i := 0
	for i < len(out) {
		j := i
		//tmedbvet:ignore floateq equal-time grouping after the exact (T,Relay,W) sort must use bitwise equality: rows in one instant share one float
		for j < len(out) && out[j].T == out[i].T {
			j++
		}
		pending := append(Schedule(nil), out[i:j]...)
		for len(pending) > 0 {
			picked := -1
			for k, x := range pending {
				if informedAt[x.Relay] <= x.T+TimeTol {
					picked = k
					break
				}
			}
			fires := picked != -1
			if !fires {
				picked = 0 // uninformed leftovers keep deterministic order
			}
			x := pending[picked]
			pending = append(pending[:picked], pending[picked+1:]...)
			result = append(result, x)
			if fires {
				for _, nb := range view.CoveredBy(x.Relay, x.T, x.W*(1+1e-12)) {
					if t := x.T + tau; t < informedAt[nb] {
						informedAt[nb] = t
					}
				}
			}
		}
		i = j
	}
	return result
}
