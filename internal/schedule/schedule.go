// Package schedule implements broadcast relay schedules (§IV): the
// n×3 matrix S = [R, T, W] of transmissions, the uninformed-probability
// computation of Eq. 6, and the four feasibility conditions of the TMEDB
// decision problem.
package schedule

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Transmission is one row s_k = [r_k, t_k, w_k] of a schedule: relay
// Relay transmits at time T with cost W.
type Transmission struct {
	Relay tvg.NodeID
	T     float64
	W     float64
}

func (x Transmission) String() string {
	return fmt.Sprintf("(v%d @%g w=%.3g)", x.Relay, x.T, x.W)
}

// Schedule is a broadcast relay schedule: an ordered list of
// transmissions. A relay may appear multiple times.
type Schedule []Transmission

// TotalCost returns Σ w_k, the cost of the schedule.
func (s Schedule) TotalCost() float64 {
	var c float64
	for _, x := range s {
		c += x.W
	}
	return c
}

// NormalizedCost returns the total cost divided by the linear decoding
// threshold γth, the paper's "normalized energy consumption" metric.
func (s Schedule) NormalizedCost(gammaTh float64) float64 {
	return s.TotalCost() / gammaTh
}

// Latency returns max(t_k) + τ, the broadcast latency of condition (iii).
func (s Schedule) Latency(tau float64) float64 {
	if len(s) == 0 {
		return 0
	}
	latest := s[0].T
	for _, x := range s[1:] {
		if x.T > latest {
			latest = x.T
		}
	}
	return latest + tau
}

// SortByTime orders the schedule chronologically (stable, so equal-time
// transmissions keep their relative order).
func (s Schedule) SortByTime() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].T < s[j].T })
}

// Relays returns the relay vector R.
func (s Schedule) Relays() []tvg.NodeID {
	out := make([]tvg.NodeID, len(s))
	for i, x := range s {
		out[i] = x.Relay
	}
	return out
}

// Times returns the time vector T.
func (s Schedule) Times() []float64 {
	out := make([]float64, len(s))
	for i, x := range s {
		out[i] = x.T
	}
	return out
}

// Costs returns the cost vector W.
func (s Schedule) Costs() []float64 {
	out := make([]float64, len(s))
	for i, x := range s {
		out[i] = x.W
	}
	return out
}

// UninformedProb evaluates Eq. 6: the probability p_{i,t} that node i has
// not successfully received the packet by time t, given that src is the
// broadcast source (informed from the start). Only transmissions with
// t_k <= t whose link to i satisfies ρ_τ at t_k contribute.
func UninformedProb(g *tveg.Graph, s Schedule, src, node tvg.NodeID, t float64) float64 {
	if node == src {
		return 0
	}
	p := 1.0
	for _, x := range s {
		if x.T > t || x.Relay == node {
			continue
		}
		if !g.RhoTau(x.Relay, node, x.T) {
			continue
		}
		p *= g.EDAt(x.Relay, node, x.T).FailureProb(x.W)
		if p == 0 {
			return 0
		}
	}
	return p
}

// UninformedProbs evaluates p_{i,t} for every node at once.
func UninformedProbs(g *tveg.Graph, s Schedule, src tvg.NodeID, t float64) []float64 {
	out := make([]float64, g.N())
	for i := range out {
		out[i] = UninformedProb(g, s, src, tvg.NodeID(i), t)
	}
	return out
}

// Violation describes a broken feasibility condition.
type Violation struct {
	Condition int // 1..4 as in §IV
	Detail    string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("schedule: condition (%s) violated: %s", roman(v.Condition), v.Detail)
}

func roman(i int) string {
	switch i {
	case 1:
		return "i"
	case 2:
		return "ii"
	case 3:
		return "iii"
	case 4:
		return "iv"
	}
	return fmt.Sprint(i)
}

// CheckFeasible verifies the four conditions of the TMEDB decision
// problem for the schedule:
//
//	(i)   every relay is informed (p <= ε) by its transmission time,
//	(ii)  every node is informed by some t <= T-τ,
//	(iii) broadcast latency max(t_k)+τ <= T,
//	(iv)  total cost <= C (skipped when C is +Inf).
//
// It returns nil for a feasible schedule, or a *Violation naming the
// first broken condition.
func CheckFeasible(g *tveg.Graph, s Schedule, src tvg.NodeID, deadline, costBound float64) error {
	// Tolerate rounding: a cost computed by inverting φ lands exactly on
	// ε up to floating point.
	eps := g.Params.Eps * (1 + 1e-9)
	tau := g.Tau()
	// (i) relays informed by their transmission times. Relays strictly
	// need p_{r,t} <= ε using transmissions before t; Eq. 6 already
	// restricts to t_k <= t, and a relay's own transmissions never count.
	for _, x := range s {
		if p := UninformedProb(g, s, src, x.Relay, x.T); p > eps {
			return &Violation{1, fmt.Sprintf("relay v%d uninformed at %g (p=%.4g > ε=%g)", x.Relay, x.T, p, eps)}
		}
	}
	// (iii) latency
	if lat := s.Latency(tau); lat > deadline {
		return &Violation{3, fmt.Sprintf("latency %g > T=%g", lat, deadline)}
	}
	// (ii) all nodes informed by T-τ
	for i := 0; i < g.N(); i++ {
		if p := UninformedProb(g, s, src, tvg.NodeID(i), deadline-tau); p > eps {
			return &Violation{2, fmt.Sprintf("node v%d uninformed by %g (p=%.4g > ε=%g)", i, deadline-tau, p, eps)}
		}
	}
	// (iv) cost bound
	if !math.IsInf(costBound, 1) {
		if c := s.TotalCost(); c > costBound {
			return &Violation{4, fmt.Sprintf("cost %g > C=%g", c, costBound)}
		}
	}
	return nil
}
