// Package schedule implements broadcast relay schedules (§IV): the
// n×3 matrix S = [R, T, W] of transmissions, the uninformed-probability
// computation of Eq. 6, and the four feasibility conditions of the TMEDB
// decision problem.
package schedule

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Transmission is one row s_k = [r_k, t_k, w_k] of a schedule: relay
// Relay transmits at time T with cost W.
type Transmission struct {
	Relay tvg.NodeID
	T     float64
	W     float64
}

func (x Transmission) String() string {
	return fmt.Sprintf("(v%d @%g w=%.3g)", x.Relay, x.T, x.W)
}

// Schedule is a broadcast relay schedule: an ordered list of
// transmissions. A relay may appear multiple times.
type Schedule []Transmission

// TotalCost returns Σ w_k, the cost of the schedule.
func (s Schedule) TotalCost() float64 {
	var c float64
	for _, x := range s {
		c += x.W
	}
	return c
}

// NormalizedCost returns the total cost divided by the linear decoding
// threshold γth, the paper's "normalized energy consumption" metric.
func (s Schedule) NormalizedCost(gammaTh float64) float64 {
	return s.TotalCost() / gammaTh
}

// Latency returns max(t_k) + τ, the broadcast latency of condition (iii).
func (s Schedule) Latency(tau float64) float64 {
	if len(s) == 0 {
		return 0
	}
	latest := s[0].T
	for _, x := range s[1:] {
		if x.T > latest {
			latest = x.T
		}
	}
	return latest + tau
}

// SortByTime orders the schedule chronologically (stable, so equal-time
// transmissions keep their relative order).
func (s Schedule) SortByTime() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].T < s[j].T })
}

// Relays returns the relay vector R.
func (s Schedule) Relays() []tvg.NodeID {
	out := make([]tvg.NodeID, len(s))
	for i, x := range s {
		out[i] = x.Relay
	}
	return out
}

// Times returns the time vector T.
func (s Schedule) Times() []float64 {
	out := make([]float64, len(s))
	for i, x := range s {
		out[i] = x.T
	}
	return out
}

// Costs returns the cost vector W.
func (s Schedule) Costs() []float64 {
	out := make([]float64, len(s))
	for i, x := range s {
		out[i] = x.W
	}
	return out
}

// TimeTol is the absolute slack (seconds) used when comparing
// transmission times against packet arrival times. The planners schedule
// a relay's next hop up to 1e-9 s before the packet's nominal arrival
// (their DTS point filter uses the same slack), so every consumer of the
// τ-propagation rule must tolerate that much skew or it would reject
// schedules the planners legitimately emit.
const TimeTol = 1e-9

// Informs is the single τ-propagation rule every executor in this repo
// implements (Def. 3.1: a hop's packet arrives at t_k + τ, and the next
// hop cannot depart before that arrival):
//
//	a transmission departing at tk can have informed the relay of a
//	transmission departing at tj  iff  tk + τ <= tj (within TimeTol);
//	at the same instant (tk == tj, only causally possible when τ = 0)
//	the earlier schedule row informs the later one — the documented
//	τ = 0 non-stop cascade tie-break.
//
// k and j are the two transmissions' schedule indices, used only for
// that same-instant tie-break.
func Informs(tk, tau, tj float64, k, j int) bool {
	if tk > tj {
		return false // packets do not travel backward in time
	}
	//tmedbvet:ignore floateq THE documented same-instant tie-break: Informs defines the exact-equality semantics every other comparison defers to
	if tk == tj {
		// Same-instant cascade: only a zero (or sub-tolerance) τ allows
		// it, and only in schedule order.
		return tau <= TimeTol && k < j
	}
	return tk+tau <= tj+TimeTol
}

// UninformedProb evaluates Eq. 6: the probability p_{i,t} that node i has
// not successfully received the packet by time t, given that src is the
// broadcast source (informed from the start). Only transmissions with
// t_k <= t whose link to i satisfies ρ_τ at t_k contribute.
//
// Note the departure-time semantics: a transmission counts as soon as it
// departs by t. That is the right reading for condition (ii), where the
// bound T-τ already accounts for the last hop's flight time; for
// condition (i) — is a relay informed when it transmits? — use
// RelayUninformedProb, which counts arrivals instead.
func UninformedProb(g *tveg.Graph, s Schedule, src, node tvg.NodeID, t float64) float64 {
	if node == src {
		return 0
	}
	p := 1.0
	for _, x := range s {
		if x.T > t || x.Relay == node {
			continue
		}
		if !g.RhoTau(x.Relay, node, x.T) {
			continue
		}
		p *= g.EDAt(x.Relay, node, x.T).FailureProb(x.W)
		if p == 0 {
			return 0
		}
	}
	return p
}

// RelayUninformedProb evaluates the probability that the relay of
// transmission s[j] has not received the packet by the instant it
// departs. Unlike UninformedProb's departure-time rule, only
// transmissions whose packet has *arrived* by t_j contribute
// (Informs: t_k + τ <= t_j, same-instant ones only when they precede
// s[j] in schedule order), and the relay's own transmissions never
// inform it. The source is informed from the start.
func RelayUninformedProb(g *tveg.Graph, s Schedule, src tvg.NodeID, j int) float64 {
	x := s[j]
	if x.Relay == src {
		return 0
	}
	tau := g.Tau()
	p := 1.0
	for k, y := range s {
		if y.Relay == x.Relay || !Informs(y.T, tau, x.T, k, j) {
			continue
		}
		if !g.RhoTau(y.Relay, x.Relay, y.T) {
			continue
		}
		p *= g.EDAt(y.Relay, x.Relay, y.T).FailureProb(y.W)
		if p == 0 {
			return 0
		}
	}
	return p
}

// UninformedProbs evaluates p_{i,t} for every node at once.
func UninformedProbs(g *tveg.Graph, s Schedule, src tvg.NodeID, t float64) []float64 {
	out := make([]float64, g.N())
	for i := range out {
		out[i] = UninformedProb(g, s, src, tvg.NodeID(i), t)
	}
	return out
}

// Violation describes a broken feasibility condition.
type Violation struct {
	Condition int // 1..4 as in §IV
	Detail    string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("schedule: condition (%s) violated: %s", roman(v.Condition), v.Detail)
}

func roman(i int) string {
	switch i {
	case 1:
		return "i"
	case 2:
		return "ii"
	case 3:
		return "iii"
	case 4:
		return "iv"
	}
	return fmt.Sprint(i)
}

// CheckFeasible verifies the four conditions of the TMEDB decision
// problem for the schedule:
//
//	(i)   every relay is informed (p <= ε) by its transmission time,
//	(ii)  every node is informed by some t <= T-τ,
//	(iii) broadcast latency max(t_k)+τ <= T,
//	(iv)  total cost <= C (skipped when C is +Inf).
//
// It returns nil for a feasible schedule, or a *Violation naming the
// first broken condition.
func CheckFeasible(g *tveg.Graph, s Schedule, src tvg.NodeID, deadline, costBound float64) error {
	// Tolerate rounding: a cost computed by inverting φ lands exactly on
	// ε up to floating point.
	eps := g.Params.Eps * (1 + 1e-9)
	tau := g.Tau()
	// (i) relays informed by their transmission times. Only transmissions
	// whose packet has arrived (t_k + τ <= t, the Informs rule) count: a
	// transmission still in flight during [t_k, t_k+τ) cannot have
	// informed anyone yet.
	for j, x := range s {
		if p := RelayUninformedProb(g, s, src, j); p > eps {
			return &Violation{1, fmt.Sprintf("relay v%d uninformed at %g (p=%.4g > ε=%g)", x.Relay, x.T, p, eps)}
		}
	}
	// (iii) latency
	if lat := s.Latency(tau); lat > deadline {
		return &Violation{3, fmt.Sprintf("latency %g > T=%g", lat, deadline)}
	}
	// (ii) all nodes informed by T-τ
	for i := 0; i < g.N(); i++ {
		if p := UninformedProb(g, s, src, tvg.NodeID(i), deadline-tau); p > eps {
			return &Violation{2, fmt.Sprintf("node v%d uninformed by %g (p=%.4g > ε=%g)", i, deadline-tau, p, eps)}
		}
	}
	// (iv) cost bound
	if !math.IsInf(costBound, 1) {
		if c := s.TotalCost(); c > costBound {
			return &Violation{4, fmt.Sprintf("cost %g > C=%g", c, costBound)}
		}
	}
	return nil
}
