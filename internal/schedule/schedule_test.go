package schedule

import (
	"errors"
	"math"
	"testing"

	"repro/internal/interval"
	"repro/internal/tveg"
)

func iv(a, b float64) interval.Interval { return interval.Interval{Start: a, End: b} }

// chainGraph: 0—1—2 chain, always connected, distances 5 and 10, τ=1.
func chainGraph(m tveg.Model) *tveg.Graph {
	g := tveg.New(3, iv(0, 100), 1, tveg.DefaultParams(), m)
	g.AddContact(0, 1, iv(0, 100), 5)
	g.AddContact(1, 2, iv(0, 100), 10)
	return g
}

func TestVectorsAndCost(t *testing.T) {
	s := Schedule{{0, 5, 2}, {1, 10, 3}}
	if s.TotalCost() != 5 {
		t.Errorf("TotalCost = %g, want 5", s.TotalCost())
	}
	if s.NormalizedCost(2.5) != 2 {
		t.Errorf("NormalizedCost = %g, want 2", s.NormalizedCost(2.5))
	}
	if r := s.Relays(); len(r) != 2 || r[0] != 0 || r[1] != 1 {
		t.Errorf("Relays = %v", r)
	}
	if ts := s.Times(); ts[1] != 10 {
		t.Errorf("Times = %v", ts)
	}
	if ws := s.Costs(); ws[0] != 2 {
		t.Errorf("Costs = %v", ws)
	}
	if lat := s.Latency(1); lat != 11 {
		t.Errorf("Latency = %g, want 11", lat)
	}
	if (Schedule{}).Latency(1) != 0 {
		t.Error("empty schedule latency should be 0")
	}
}

func TestSortByTime(t *testing.T) {
	s := Schedule{{2, 30, 1}, {0, 5, 1}, {1, 10, 1}}
	s.SortByTime()
	if s[0].Relay != 0 || s[1].Relay != 1 || s[2].Relay != 2 {
		t.Errorf("SortByTime = %v", s)
	}
}

func TestUninformedProbStatic(t *testing.T) {
	g := chainGraph(tveg.Static)
	w01 := g.MinCost(0, 1, 5)
	s := Schedule{{0, 5, w01}}
	// source always informed
	if p := UninformedProb(g, s, 0, 0, 0); p != 0 {
		t.Errorf("p_src = %g, want 0", p)
	}
	// before the transmission node 1 is uninformed
	if p := UninformedProb(g, s, 0, 1, 4); p != 1 {
		t.Errorf("p_1 before tx = %g, want 1", p)
	}
	// after a sufficient transmission: informed
	if p := UninformedProb(g, s, 0, 1, 5); p != 0 {
		t.Errorf("p_1 after tx = %g, want 0", p)
	}
	// insufficient power: still uninformed
	weak := Schedule{{0, 5, w01 * 0.5}}
	if p := UninformedProb(g, weak, 0, 1, 50); p != 1 {
		t.Errorf("p_1 weak tx = %g, want 1", p)
	}
	// node 2 unaffected by 0's transmission (no edge 0-2)
	if p := UninformedProb(g, s, 0, 2, 50); p != 1 {
		t.Errorf("p_2 = %g, want 1", p)
	}
}

func TestUninformedProbFadingMultiplies(t *testing.T) {
	g := chainGraph(tveg.RayleighFading)
	ed := g.EDAt(0, 1, 5)
	w := ed.MinCost(0.3) // failure prob 0.3 per tx
	s := Schedule{{0, 5, w}, {0, 10, w}}
	p := UninformedProb(g, s, 0, 1, 20)
	if math.Abs(p-0.09) > 1e-9 {
		t.Errorf("p after two tx = %g, want 0.09", p)
	}
	// only the first counts at t=7
	p = UninformedProb(g, s, 0, 1, 7)
	if math.Abs(p-0.3) > 1e-9 {
		t.Errorf("p after one tx = %g, want 0.3", p)
	}
}

func TestUninformedProbIgnoresOwnTransmissions(t *testing.T) {
	g := chainGraph(tveg.Static)
	s := Schedule{{1, 5, 1e6}}
	if p := UninformedProb(g, s, 0, 1, 50); p != 1 {
		t.Errorf("node's own tx should not inform it, p = %g", p)
	}
}

func TestUninformedProbs(t *testing.T) {
	g := chainGraph(tveg.Static)
	w01 := g.MinCost(0, 1, 5)
	s := Schedule{{0, 5, w01}}
	ps := UninformedProbs(g, s, 0, 50)
	if ps[0] != 0 || ps[1] != 0 || ps[2] != 1 {
		t.Errorf("UninformedProbs = %v, want [0 0 1]", ps)
	}
}

func TestCheckFeasibleHappyPath(t *testing.T) {
	g := chainGraph(tveg.Static)
	w01 := g.MinCost(0, 1, 5)
	w12 := g.MinCost(1, 2, 10)
	s := Schedule{{0, 5, w01}, {1, 10, w12}}
	if err := CheckFeasible(g, s, 0, 100, math.Inf(1)); err != nil {
		t.Errorf("feasible schedule rejected: %v", err)
	}
}

func TestCheckFeasibleConditionI(t *testing.T) {
	g := chainGraph(tveg.Static)
	w12 := g.MinCost(1, 2, 10)
	// relay 1 transmits before being informed
	s := Schedule{{1, 10, w12}}
	err := CheckFeasible(g, s, 0, 100, math.Inf(1))
	var v *Violation
	if !errors.As(err, &v) || v.Condition != 1 {
		t.Errorf("want condition (i) violation, got %v", err)
	}
}

func TestCheckFeasibleConditionII(t *testing.T) {
	g := chainGraph(tveg.Static)
	w01 := g.MinCost(0, 1, 5)
	// node 2 never informed
	s := Schedule{{0, 5, w01}}
	err := CheckFeasible(g, s, 0, 100, math.Inf(1))
	var v *Violation
	if !errors.As(err, &v) || v.Condition != 2 {
		t.Errorf("want condition (ii) violation, got %v", err)
	}
}

func TestCheckFeasibleConditionIII(t *testing.T) {
	g := chainGraph(tveg.Static)
	w01 := g.MinCost(0, 1, 5)
	w12 := g.MinCost(1, 2, 10)
	s := Schedule{{0, 5, w01}, {1, 50, w12}}
	err := CheckFeasible(g, s, 0, 20, math.Inf(1)) // latency 51 > 20
	var v *Violation
	if !errors.As(err, &v) || v.Condition != 3 {
		t.Errorf("want condition (iii) violation, got %v", err)
	}
}

func TestCheckFeasibleConditionIV(t *testing.T) {
	g := chainGraph(tveg.Static)
	w01 := g.MinCost(0, 1, 5)
	w12 := g.MinCost(1, 2, 10)
	s := Schedule{{0, 5, w01}, {1, 10, w12}}
	err := CheckFeasible(g, s, 0, 100, s.TotalCost()/2)
	var v *Violation
	if !errors.As(err, &v) || v.Condition != 4 {
		t.Errorf("want condition (iv) violation, got %v", err)
	}
}

func TestCheckFeasibleFading(t *testing.T) {
	g := chainGraph(tveg.RayleighFading)
	eps := g.Params.Eps
	w01 := g.EDAt(0, 1, 5).MinCost(eps)
	w12 := g.EDAt(1, 2, 10).MinCost(eps)
	s := Schedule{{0, 5, w01}, {1, 10, w12}}
	if err := CheckFeasible(g, s, 0, 100, math.Inf(1)); err != nil {
		t.Errorf("per-hop ε schedule should be feasible: %v", err)
	}
	// halving the second power breaks condition (ii) for node 2
	weak := Schedule{{0, 5, w01}, {1, 10, w12 / 100}}
	err := CheckFeasible(g, weak, 0, 100, math.Inf(1))
	var v *Violation
	if !errors.As(err, &v) || v.Condition != 2 {
		t.Errorf("want condition (ii) violation, got %v", err)
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{2, "detail"}
	if got := v.Error(); got != "schedule: condition (ii) violated: detail" {
		t.Errorf("Error() = %q", got)
	}
}
