package schedule

import (
	"errors"
	"math"
	"testing"

	"repro/internal/interval"
	"repro/internal/tveg"
)

func iv(a, b float64) interval.Interval { return interval.Interval{Start: a, End: b} }

// chainGraph: 0—1—2 chain, always connected, distances 5 and 10, τ=1.
func chainGraph(m tveg.Model) *tveg.Graph {
	g := tveg.New(3, iv(0, 100), 1, tveg.DefaultParams(), m)
	g.AddContact(0, 1, iv(0, 100), 5)
	g.AddContact(1, 2, iv(0, 100), 10)
	return g
}

func TestVectorsAndCost(t *testing.T) {
	s := Schedule{{0, 5, 2}, {1, 10, 3}}
	if s.TotalCost() != 5 {
		t.Errorf("TotalCost = %g, want 5", s.TotalCost())
	}
	if s.NormalizedCost(2.5) != 2 {
		t.Errorf("NormalizedCost = %g, want 2", s.NormalizedCost(2.5))
	}
	if r := s.Relays(); len(r) != 2 || r[0] != 0 || r[1] != 1 {
		t.Errorf("Relays = %v", r)
	}
	if ts := s.Times(); ts[1] != 10 {
		t.Errorf("Times = %v", ts)
	}
	if ws := s.Costs(); ws[0] != 2 {
		t.Errorf("Costs = %v", ws)
	}
	if lat := s.Latency(1); lat != 11 {
		t.Errorf("Latency = %g, want 11", lat)
	}
	if (Schedule{}).Latency(1) != 0 {
		t.Error("empty schedule latency should be 0")
	}
}

func TestSortByTime(t *testing.T) {
	s := Schedule{{2, 30, 1}, {0, 5, 1}, {1, 10, 1}}
	s.SortByTime()
	if s[0].Relay != 0 || s[1].Relay != 1 || s[2].Relay != 2 {
		t.Errorf("SortByTime = %v", s)
	}
}

func TestUninformedProbStatic(t *testing.T) {
	g := chainGraph(tveg.Static)
	w01 := g.MinCost(0, 1, 5)
	s := Schedule{{0, 5, w01}}
	// source always informed
	if p := UninformedProb(g, s, 0, 0, 0); p != 0 {
		t.Errorf("p_src = %g, want 0", p)
	}
	// before the transmission node 1 is uninformed
	if p := UninformedProb(g, s, 0, 1, 4); p != 1 {
		t.Errorf("p_1 before tx = %g, want 1", p)
	}
	// after a sufficient transmission: informed
	if p := UninformedProb(g, s, 0, 1, 5); p != 0 {
		t.Errorf("p_1 after tx = %g, want 0", p)
	}
	// insufficient power: still uninformed
	weak := Schedule{{0, 5, w01 * 0.5}}
	if p := UninformedProb(g, weak, 0, 1, 50); p != 1 {
		t.Errorf("p_1 weak tx = %g, want 1", p)
	}
	// node 2 unaffected by 0's transmission (no edge 0-2)
	if p := UninformedProb(g, s, 0, 2, 50); p != 1 {
		t.Errorf("p_2 = %g, want 1", p)
	}
}

func TestUninformedProbFadingMultiplies(t *testing.T) {
	g := chainGraph(tveg.RayleighFading)
	ed := g.EDAt(0, 1, 5)
	w := ed.MinCost(0.3) // failure prob 0.3 per tx
	s := Schedule{{0, 5, w}, {0, 10, w}}
	p := UninformedProb(g, s, 0, 1, 20)
	if math.Abs(p-0.09) > 1e-9 {
		t.Errorf("p after two tx = %g, want 0.09", p)
	}
	// only the first counts at t=7
	p = UninformedProb(g, s, 0, 1, 7)
	if math.Abs(p-0.3) > 1e-9 {
		t.Errorf("p after one tx = %g, want 0.3", p)
	}
}

func TestUninformedProbIgnoresOwnTransmissions(t *testing.T) {
	g := chainGraph(tveg.Static)
	s := Schedule{{1, 5, 1e6}}
	if p := UninformedProb(g, s, 0, 1, 50); p != 1 {
		t.Errorf("node's own tx should not inform it, p = %g", p)
	}
}

func TestUninformedProbs(t *testing.T) {
	g := chainGraph(tveg.Static)
	w01 := g.MinCost(0, 1, 5)
	s := Schedule{{0, 5, w01}}
	ps := UninformedProbs(g, s, 0, 50)
	if ps[0] != 0 || ps[1] != 0 || ps[2] != 1 {
		t.Errorf("UninformedProbs = %v, want [0 0 1]", ps)
	}
}

func TestCheckFeasibleHappyPath(t *testing.T) {
	g := chainGraph(tveg.Static)
	w01 := g.MinCost(0, 1, 5)
	w12 := g.MinCost(1, 2, 10)
	s := Schedule{{0, 5, w01}, {1, 10, w12}}
	if err := CheckFeasible(g, s, 0, 100, math.Inf(1)); err != nil {
		t.Errorf("feasible schedule rejected: %v", err)
	}
}

func TestCheckFeasibleConditionI(t *testing.T) {
	g := chainGraph(tveg.Static)
	w12 := g.MinCost(1, 2, 10)
	// relay 1 transmits before being informed
	s := Schedule{{1, 10, w12}}
	err := CheckFeasible(g, s, 0, 100, math.Inf(1))
	var v *Violation
	if !errors.As(err, &v) || v.Condition != 1 {
		t.Errorf("want condition (i) violation, got %v", err)
	}
}

func TestCheckFeasibleConditionII(t *testing.T) {
	g := chainGraph(tveg.Static)
	w01 := g.MinCost(0, 1, 5)
	// node 2 never informed
	s := Schedule{{0, 5, w01}}
	err := CheckFeasible(g, s, 0, 100, math.Inf(1))
	var v *Violation
	if !errors.As(err, &v) || v.Condition != 2 {
		t.Errorf("want condition (ii) violation, got %v", err)
	}
}

func TestCheckFeasibleConditionIII(t *testing.T) {
	g := chainGraph(tveg.Static)
	w01 := g.MinCost(0, 1, 5)
	w12 := g.MinCost(1, 2, 10)
	s := Schedule{{0, 5, w01}, {1, 50, w12}}
	err := CheckFeasible(g, s, 0, 20, math.Inf(1)) // latency 51 > 20
	var v *Violation
	if !errors.As(err, &v) || v.Condition != 3 {
		t.Errorf("want condition (iii) violation, got %v", err)
	}
}

func TestCheckFeasibleConditionIV(t *testing.T) {
	g := chainGraph(tveg.Static)
	w01 := g.MinCost(0, 1, 5)
	w12 := g.MinCost(1, 2, 10)
	s := Schedule{{0, 5, w01}, {1, 10, w12}}
	err := CheckFeasible(g, s, 0, 100, s.TotalCost()/2)
	var v *Violation
	if !errors.As(err, &v) || v.Condition != 4 {
		t.Errorf("want condition (iv) violation, got %v", err)
	}
}

func TestCheckFeasibleFading(t *testing.T) {
	g := chainGraph(tveg.RayleighFading)
	eps := g.Params.Eps
	w01 := g.EDAt(0, 1, 5).MinCost(eps)
	w12 := g.EDAt(1, 2, 10).MinCost(eps)
	s := Schedule{{0, 5, w01}, {1, 10, w12}}
	if err := CheckFeasible(g, s, 0, 100, math.Inf(1)); err != nil {
		t.Errorf("per-hop ε schedule should be feasible: %v", err)
	}
	// halving the second power breaks condition (ii) for node 2
	weak := Schedule{{0, 5, w01}, {1, 10, w12 / 100}}
	err := CheckFeasible(g, weak, 0, 100, math.Inf(1))
	var v *Violation
	if !errors.As(err, &v) || v.Condition != 2 {
		t.Errorf("want condition (ii) violation, got %v", err)
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{2, "detail"}
	if got := v.Error(); got != "schedule: condition (ii) violated: detail" {
		t.Errorf("Error() = %q", got)
	}
}

func TestInforms(t *testing.T) {
	cases := []struct {
		name        string
		tk, tau, tj float64
		k, j        int
		want        bool
	}{
		{"arrival exactly at departure", 5, 1, 6, 0, 1, true},
		{"arrival within tolerance", 5, 1, 6 - 0.5e-9, 0, 1, true},
		{"packet still in flight", 5, 1, 5.5, 0, 1, false},
		{"future transmission", 6, 1, 5, 0, 1, false},
		{"same instant τ=0 in order", 5, 0, 5, 0, 1, true},
		{"same instant τ=0 out of order", 5, 0, 5, 1, 0, false},
		{"same instant τ>0 never", 5, 1, 5, 0, 1, false},
		{"τ=0 strictly earlier", 4, 0, 5, 3, 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Informs(tc.tk, tc.tau, tc.tj, tc.k, tc.j); got != tc.want {
				t.Errorf("Informs(%g, τ=%g, %g, k=%d, j=%d) = %v, want %v",
					tc.tk, tc.tau, tc.tj, tc.k, tc.j, got, tc.want)
			}
		})
	}
}

// TestCheckFeasiblePrematureTauChain pins the arrival-time fix of
// condition (i): chainGraph has τ = 1, so a packet departing v0 at t = 5
// arrives at v1 at t = 6, and v1 relaying at t = 5.5 — inside the
// flight window [5, 6) — can never happen in any execution. The old
// departure-time rule (t_k <= t) accepted exactly this chain.
func TestCheckFeasiblePrematureTauChain(t *testing.T) {
	g := chainGraph(tveg.Static)
	w01 := g.MinCost(0, 1, 5)
	premature := Schedule{{0, 5, w01}, {1, 5.5, g.MinCost(1, 2, 5.5)}}
	err := CheckFeasible(g, premature, 0, 100, math.Inf(1))
	var v *Violation
	if !errors.As(err, &v) || v.Condition != 1 {
		t.Fatalf("want condition (i) violation for a relay inside the flight window, got %v", err)
	}
	// Demonstrate the pre-fix acceptance: the departure-time probability
	// (UninformedProb, still the right rule for condition (ii)) calls v1
	// informed at 5.5, which is what condition (i) used to check.
	if p := UninformedProb(g, premature, 0, 1, 5.5); p > g.Params.Eps {
		t.Fatalf("departure-rule p = %g — the fixture no longer demonstrates the old acceptance", p)
	}
	// Moving the hop to the arrival instant makes the chain legal.
	legal := Schedule{{0, 5, w01}, {1, 6, g.MinCost(1, 2, 6)}}
	if err := CheckFeasible(g, legal, 0, 100, math.Inf(1)); err != nil {
		t.Fatalf("non-stop chain departing exactly at t+τ rejected: %v", err)
	}
}

func TestRelayUninformedProb(t *testing.T) {
	g := chainGraph(tveg.Static)
	w01 := g.MinCost(0, 1, 5)
	s := Schedule{{0, 5, w01}, {1, 6, g.MinCost(1, 2, 6)}, {1, 5.5, 0}}
	if p := RelayUninformedProb(g, s, 0, 0); p != 0 {
		t.Errorf("source relay: p = %g, want 0", p)
	}
	if p := RelayUninformedProb(g, s, 0, 1); p != 0 {
		t.Errorf("relay informed by arrival: p = %g, want 0", p)
	}
	if p := RelayUninformedProb(g, s, 0, 2); p != 1 {
		t.Errorf("relay inside flight window: p = %g, want 1", p)
	}
}

// TestCausalSortEqualTimeGroup: with τ = 0 a whole relay chain can sit
// on one timestamp; CausalSort must order the group so informed relays
// fire first, whatever order the producer emitted.
func TestCausalSortEqualTimeGroup(t *testing.T) {
	g := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(0, 100), 5)
	g.AddContact(1, 2, iv(0, 100), 10)
	w01 := g.MinCost(0, 1, 10)
	w12 := g.MinCost(1, 2, 10)
	scrambled := Schedule{{1, 10, w12}, {0, 10, w01}}
	sorted := CausalSort(g, scrambled, 0, 0)
	if sorted[0].Relay != 0 || sorted[1].Relay != 1 {
		t.Fatalf("CausalSort = %v, want v0's transmission first", sorted)
	}
	if err := CheckFeasible(g, sorted, 0, 100, math.Inf(1)); err != nil {
		t.Fatalf("causally sorted τ=0 cascade rejected: %v", err)
	}
}
