package dts

import (
	"fmt"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/tvg"
)

// The edit patch derives the DTS of an edited graph version from a
// memoized ancestor instead of rebuilding cold. The global point list
// (adjacency breakpoints + the +kτ closure) is recomputed from scratch —
// it is cheap and recomputation guarantees the patched DTS picks exactly
// the deduplication representatives a cold build would. The expensive
// stage, the per-node O(N·|global|) degree-filter sweep, is where the
// reuse happens: a node not incident to any edited pair has an unchanged
// degree function, so every filter decision recorded in the ancestor's
// membership bitset still holds and is inherited without touching the
// graph. Only edited endpoints, and global points that did not exist in
// the ancestor (no bit to inherit), are re-queried. The result is
// byte-identical to a cold Build at the new version: the point values
// come from the recomputed global list and the per-node assembly runs
// the same dedupSorted code over the same selected points.

// maxPatchDepth bounds how many versions back Build probes the memo for
// a patchable ancestor. Probing is a memo lookup per version, so the
// bound caps both the probe cost and how much accumulated edit history
// a single patch folds in.
const maxPatchDepth = 16

var patchHits, patchMisses atomic.Int64

// PatchStats returns the process-wide patched-build/cold-build counters
// (memoized builds only: memo hits and NoMemo builds count as neither).
func PatchStats() (hits, misses int64) {
	return patchHits.Load(), patchMisses.Load()
}

// tryPatch looks for a memoized ancestor of g within maxPatchDepth
// versions and derives the current version's DTS from it. It returns
// (nil, nil) when no ancestor is usable — the caller falls back to a
// cold build.
func tryPatch(g *tvg.Graph, t0, deadline float64, key memoKey, opts Options) (*DTS, error) {
	cur := g.Version()
	for back := uint64(1); back <= maxPatchDepth && back <= cur; back++ {
		pk := key
		pk.version = cur - back
		parent, ok := memo.Get(pk)
		if !ok {
			continue
		}
		if parent.member == nil {
			return nil, nil
		}
		pairs, ok := g.EditsSince(pk.version)
		if !ok {
			// The journal no longer covers this range; older ancestors
			// are out of reach too.
			return nil, nil
		}
		return patch(g, parent, pairs, t0, deadline, opts)
	}
	return nil, nil
}

// patch builds the DTS for g's current version from parent, given the
// edge pairs edited since the parent was built.
func patch(g *tvg.Graph, parent *DTS, edits []tvg.EdgeKey, t0, deadline float64, opts Options) (*DTS, error) {
	sp := opts.Obs.StartPhase("dts-patch")
	defer sp.End()
	tok := opts.Cancel
	n := g.N()
	maxHops := opts.MaxHops
	if maxHops <= 0 {
		maxHops = n - 1
	}
	base, global, err := globalPoints(g, t0, deadline, maxHops, tok)
	if err != nil {
		return nil, err
	}
	edited := make([]bool, n)
	for _, p := range edits {
		edited[p.A] = true
		edited[p.B] = true
	}
	words := (len(global) + 63) / 64
	pts := make([][]float64, n)
	member := make([][]uint64, n)
	var reused, fresh atomic.Int64
	err = parallel.ForEachPoolCancel(opts.Obs.Pool("dts.patch"), tok, opts.Workers, n, func(i int) {
		bits := make([]uint64, words)
		var mine []float64
		if edited[i] {
			// An endpoint of an edited pair: its degree function changed,
			// so every filter decision is recomputed (the cold code).
			for p, x := range global {
				if opts.NoPrune || g.DegreeAt(tvg.NodeID(i), x) > 0 {
					mine = append(mine, x)
					bits[p>>6] |= 1 << uint(p&63)
				}
			}
			fresh.Add(int64(len(global)))
		} else {
			// Unedited node: its degree function is untouched by the
			// edits, so filter decisions recorded in the ancestor carry
			// over for every global point both versions share. A
			// merge-walk pairs the two sorted lists; points new to this
			// version (or whose dedup representative shifted) have no bit
			// to inherit and are queried fresh.
			pg := parent.global
			pm := parent.member[i]
			nr, nf := 0, 0
			q := 0
			for p, x := range global {
				for q < len(pg) && pg[q] < x {
					q++
				}
				var keep bool
				//tmedbvet:ignore floateq membership reuse requires bitwise-identical points: a tolerant match could inherit a filter decision taken at a different time
				if q < len(pg) && pg[q] == x {
					keep = pm[q>>6]&(1<<uint(q&63)) != 0
					nr++
				} else {
					keep = opts.NoPrune || g.DegreeAt(tvg.NodeID(i), x) > 0
					nf++
				}
				if keep {
					mine = append(mine, x)
					bits[p>>6] |= 1 << uint(p&63)
				}
			}
			reused.Add(int64(nr))
			fresh.Add(int64(nf))
		}
		mine = append(mine, t0, deadline)
		pts[i] = dedupSorted(mine)
		member[i] = bits
	})
	if err != nil {
		return nil, fmt.Errorf("dts: patch sweep: %w", err)
	}
	d := &DTS{T0: t0, Deadline: deadline, Points: pts, id: nextDTSID.Add(1),
		gid: g.ID(), gver: g.Version(), global: global, member: member,
		parentID: parent.id, parentVersion: parent.gver}
	sp.SetInt("base_points", len(base))
	sp.SetInt("global_points", len(global))
	sp.SetInt("total_points", d.TotalPoints())
	sp.SetInt("points_reused", int(reused.Load()))
	sp.SetInt("points_fresh", int(fresh.Load()))
	return d, nil
}
