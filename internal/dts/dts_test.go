package dts

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/interval"
	"repro/internal/tvg"
)

func iv(a, b float64) interval.Interval { return interval.Interval{Start: a, End: b} }

func lineGraph(tau float64) *tvg.Graph {
	g := tvg.New(4, iv(0, 100), tau)
	g.AddContact(0, 1, iv(10, 30))
	g.AddContact(1, 2, iv(25, 45))
	g.AddContact(2, 3, iv(40, 55))
	return g
}

func TestBuildTauZeroContainsAdjacencyBreakpoints(t *testing.T) {
	g := lineGraph(0)
	d, _ := Build(g, 0, 100, Options{})
	// node 1 has contacts [10,30) and [25,45): breakpoints 10,25,30,45;
	// also 40 (edge 2-3 start) is a global point, and node 1 has degree>0
	// there (contact [25,45) covers 40) so it is kept. At 45 its last
	// contact is over (half-open), so 45 is pruned.
	want := []float64{0, 10, 25, 30, 40, 100}
	got := d.Points[1]
	if len(got) != len(want) {
		t.Fatalf("P_1^di = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("P_1^di[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestBuildPrunesZeroDegreePoints(t *testing.T) {
	g := lineGraph(0)
	d, _ := Build(g, 0, 100, Options{})
	// node 3 only has the contact [40,55): 40 stays, 45 (a global point
	// inside the contact) stays, 55 is the excluded endpoint and is
	// pruned along with every other zero-degree point.
	want := []float64{0, 40, 45, 100}
	got := d.Points[3]
	if len(got) != len(want) {
		t.Fatalf("P_3^di = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("P_3^di[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestBuildNoPruneKeepsAllGlobalPoints(t *testing.T) {
	g := lineGraph(0)
	pruned, _ := Build(g, 0, 100, Options{})
	full, _ := Build(g, 0, 100, Options{NoPrune: true})
	if full.TotalPoints() <= pruned.TotalPoints() {
		t.Errorf("NoPrune total %d should exceed pruned %d",
			full.TotalPoints(), pruned.TotalPoints())
	}
	// every node then shares the same global point list
	for i := 1; i < len(full.Points); i++ {
		if len(full.Points[i]) != len(full.Points[0]) {
			t.Errorf("NoPrune points differ between nodes: %v vs %v",
				full.Points[i], full.Points[0])
		}
	}
}

func TestBuildTauPropagation(t *testing.T) {
	g := lineGraph(2) // τ = 2
	d, _ := Build(g, 0, 100, Options{})
	// contact (0,1) eroded: [10,28); breakpoint 10 spawns 12,14,16 via
	// +kτ. Node 1 has degree > 0 at those times (contact [10,30) up),
	// so they must appear in P_1^di.
	for _, want := range []float64{10, 12, 14, 16} {
		found := false
		for _, p := range d.Points[1] {
			if math.Abs(p-want) < 1e-9 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("P_1^di missing τ-propagated point %g: %v", want, d.Points[1])
		}
	}
}

func TestBuildWindowClipping(t *testing.T) {
	g := lineGraph(0)
	d, _ := Build(g, 20, 42, Options{})
	for i, pts := range d.Points {
		if pts[0] != 20 || pts[len(pts)-1] != 42 {
			t.Errorf("node %d window endpoints wrong: %v", i, pts)
		}
		for _, p := range pts {
			if p < 20 || p > 42 {
				t.Errorf("node %d point %g outside window", i, p)
			}
		}
	}
}

func TestBuildPanicsOutsideSpan(t *testing.T) {
	g := lineGraph(0)
	for _, f := range []func(){
		func() { _, _ = Build(g, -5, 50, Options{}) },
		func() { _, _ = Build(g, 0, 150, Options{}) },
		func() { _, _ = Build(g, 50, 50, Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestIndexAndAt(t *testing.T) {
	g := lineGraph(0)
	d, _ := Build(g, 0, 100, Options{})
	// P_1^di = [0 10 25 30 40 45 100]
	if got := d.Index(1, 10); d.At(1, got) != 10 {
		t.Errorf("Index(1,10) = %d (point %g), want point 10", got, d.At(1, got))
	}
	if got := d.Index(1, 24.9); d.At(1, got) != 10 {
		t.Errorf("Index(1,24.9) → point %g, want 10", d.At(1, got))
	}
	if got := d.Index(1, -1); got != -1 {
		t.Errorf("Index before first point = %d, want -1", got)
	}
	if got := d.Last(1); d.At(1, got) != 100 {
		t.Errorf("Last point = %g, want 100", d.At(1, got))
	}
}

func TestEarliestTransmissionTime(t *testing.T) {
	g := lineGraph(0)
	// node 1's adjacent partition intervals include [25,30) etc.
	// informed before the interval → transmit at interval start
	got := EarliestTransmissionTime(g, 1, 12, 27)
	if got != 25 {
		t.Errorf("ET(informed=12, t=27) = %g, want 25 (interval start)", got)
	}
	// informed inside the interval → transmit at informed time
	got = EarliestTransmissionTime(g, 1, 26, 27)
	if got != 26 {
		t.Errorf("ET(informed=26, t=27) = %g, want 26", got)
	}
}

func TestTotalPointsBoundTauZero(t *testing.T) {
	// §V: with τ≈0 the DTS has O(N²L) points. Check the literal bound
	// N * (global points) for a random graph.
	r := rand.New(rand.NewSource(1))
	n := 8
	g := tvg.New(n, iv(0, 1000), 0)
	contacts := 0
	for c := 0; c < 40; c++ {
		i, j := tvg.NodeID(r.Intn(n)), tvg.NodeID(r.Intn(n))
		if i == j {
			continue
		}
		s := r.Float64() * 900
		g.AddContact(i, j, iv(s, s+50))
		contacts++
	}
	d, _ := Build(g, 0, 1000, Options{NoPrune: true})
	// global points <= 2*contacts + 2 (window endpoints)
	maxGlobal := 2*contacts + 2
	if d.TotalPoints() > n*maxGlobal {
		t.Errorf("TotalPoints %d exceeds N·(2·contacts+2) = %d", d.TotalPoints(), n*maxGlobal)
	}
}

func TestQuickPointsSortedAndInWindow(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(5)
		tau := float64(r.Intn(3))
		g := tvg.New(n, iv(0, 500), tau)
		for c := 0; c < 3*n; c++ {
			i, j := tvg.NodeID(r.Intn(n)), tvg.NodeID(r.Intn(n))
			if i == j {
				continue
			}
			s := r.Float64() * 450
			g.AddContact(i, j, iv(s, s+5+r.Float64()*40))
		}
		d, _ := Build(g, 0, 500, Options{})
		for _, pts := range d.Points {
			for k, p := range pts {
				if p < 0 || p > 500 {
					return false
				}
				if k > 0 && pts[k]-pts[k-1] <= timeEps {
					return false
				}
			}
			if pts[len(pts)-1] != 500 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickPrunedSubsetOfUnpruned(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(4)
		g := tvg.New(n, iv(0, 200), 0)
		for c := 0; c < 2*n; c++ {
			i, j := tvg.NodeID(r.Intn(n)), tvg.NodeID(r.Intn(n))
			if i == j {
				continue
			}
			s := r.Float64() * 180
			g.AddContact(i, j, iv(s, s+5+r.Float64()*15))
		}
		pruned, _ := Build(g, 0, 200, Options{})
		full, _ := Build(g, 0, 200, Options{NoPrune: true})
		for i := range pruned.Points {
			for _, p := range pruned.Points[i] {
				found := false
				for _, q := range full.Points[i] {
					if math.Abs(p-q) <= timeEps {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMemoReturnsSharedIdenticalDTS pins the transparent memo: a second
// Build with the same (graph, window, options) returns the SAME *DTS
// (pointer identity is what lets the auxiliary-graph memo key on it),
// NoMemo bypasses it, and mutating the graph invalidates by version.
func TestMemoReturnsSharedIdenticalDTS(t *testing.T) {
	g := lineGraph(0)
	d1, err := Build(g, 0, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Build(g, 0, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("memo should return the identical *DTS on a repeat build")
	}
	d3, err := Build(g, 0, 10, Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("NoMemo build must not come from the memo")
	}
	if !reflect.DeepEqual(d1.Points, d3.Points) {
		t.Fatal("memoized and fresh DTS differ")
	}
	// Different options miss.
	d4, err := Build(g, 0, 10, Options{NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if d4 == d1 {
		t.Fatal("NoPrune build must not share the pruned entry")
	}
	// Mutating the topology bumps the version: no stale hit.
	g.AddContact(0, 2, interval.Interval{Start: 1, End: 2})
	d5, err := Build(g, 0, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d5 == d1 {
		t.Fatal("memo served a stale DTS after AddContact")
	}
}
