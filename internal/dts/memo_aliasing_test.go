package dts

import (
	"reflect"
	"testing"

	"repro/internal/tvg"
)

// otherLineGraph builds a graph with the same node count and the same
// number of AddContact calls as lineGraph (so its Version matches) but a
// different topology, hence a different DTS.
func otherLineGraph(tau float64) *tvg.Graph {
	g := tvg.New(4, iv(0, 100), tau)
	g.AddContact(0, 2, iv(5, 20))
	g.AddContact(2, 1, iv(15, 60))
	g.AddContact(1, 3, iv(50, 80))
	return g
}

// TestMemoNoAliasingAcrossIdentityReuse is the regression test for the
// pointer-keyed memo bug: the memo used to key on the *tvg.Graph
// pointer, and in a long-running process a collected graph's address can
// be recycled for a fresh graph — also at version 0 — so a lookup for
// the new graph silently returned the dead graph's DTS. The key now
// carries the process-unique monotonic Graph.ID instead.
//
// The test proves the old shape was reachable by forcing exactly the
// collision address recycling used to produce: two distinct graphs with
// identical identity, version, and window. Under the forced collision
// the memo serves graph A's (wrong) DTS for graph B; with real IDs it
// never does.
func TestMemoNoAliasingAcrossIdentityReuse(t *testing.T) {
	PurgeMemo()
	defer PurgeMemo()

	ga := lineGraph(0)
	gb := otherLineGraph(0)
	if ga.Version() != gb.Version() {
		t.Fatalf("test setup: versions differ (%d vs %d); the collision needs equal versions",
			ga.Version(), gb.Version())
	}

	da, err := Build(ga, 0, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth for graph B, bypassing the cache entirely.
	fresh, err := Build(gb, 0, 100, Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(da.Points, fresh.Points) {
		t.Fatal("test setup: the two graphs must have distinguishable DTS points")
	}

	// 1. The collision the pointer-keyed scheme allowed: recycle A's
	// identity onto B. The memo now has no way to tell them apart and
	// serves A's DTS for B — the exact stale-hit bug.
	gb.SetIDForTest(ga.ID())
	aliased, err := Build(gb, 0, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if aliased != da {
		t.Fatal("forced identity collision did not reproduce the stale-hit shape; the regression test lost its teeth")
	}
	if reflect.DeepEqual(aliased.Points, fresh.Points) {
		t.Fatal("aliased hit accidentally matches graph B's true DTS")
	}

	// 2. With its real process-unique identity restored, graph B misses
	// A's entry and gets its own correct DTS.
	gb2 := otherLineGraph(0)
	db, err := Build(gb2, 0, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db == da {
		t.Fatal("distinct graphs with unique IDs still collided in the memo")
	}
	if !reflect.DeepEqual(db.Points, fresh.Points) {
		t.Fatal("memoized build for graph B differs from its fresh build")
	}
}

// TestGraphIDsUniqueAndStable pins the identity contract the memo keys
// rely on: every New graph gets a fresh non-zero ID, and mutation does
// not change it (Version moves instead).
func TestGraphIDsUniqueAndStable(t *testing.T) {
	a := lineGraph(0)
	b := lineGraph(0)
	if a.ID() == 0 || b.ID() == 0 {
		t.Fatal("graph IDs must be non-zero")
	}
	if a.ID() == b.ID() {
		t.Fatal("two graphs share an ID")
	}
	before := a.ID()
	a.AddContact(0, 3, iv(1, 2))
	if a.ID() != before {
		t.Fatal("AddContact changed the graph ID; invalidation must ride Version, not ID")
	}
}
