package dts

import (
	"sync/atomic"

	"repro/internal/lru"
	"repro/internal/tvg"
)

// The DTS memo caches built discrete time sets per (graph identity,
// window, construction options). The DTS depends only on the presence
// structure — never on the channel model — so one memoized DTS serves
// every planner view of a graph: the static planning view, the fading
// view of the FR family, every algorithm of a comparison sweep, and the
// gap certificate's second pipeline run. It generalizes Options.Reuse
// (the caller-managed seam, still honored first) to a transparent
// process-wide cache.
//
// Invalidation is by key, not by purge: the key carries
// tvg.Graph.Version(), so mutating a graph simply stops matching the
// old entries, which age out of the LRU. Cached DTS values are shared
// by pointer and must never be mutated — a DTS is read-only after
// Build, which downstream consumers (auxgraph, planners) already rely
// on. Sharing the pointer is itself load-bearing: the auxiliary-graph
// memo keys on the *DTS identity, so a DTS memo hit is what makes an
// auxgraph memo hit possible.

// memoKey identifies a DTS build by everything that affects its result.
// Workers/Obs/Cancel are deliberately absent: a completed Build is
// byte-identical for every value of those.
//
// Graph identity is the process-unique tvg.Graph.ID(), NOT the *Graph
// pointer. A pointer key is unsound in a long-running process: once an
// entry's graph is garbage-collected, the allocator can recycle its
// address for a brand-new graph — also at version 0 — and a lookup for
// the new graph would silently return the dead graph's DTS. IDs are
// monotonic and never reused, so that collision cannot happen (see
// TestMemoNoAliasingAcrossIdentityReuse for the old shape).
type memoKey struct {
	gid      uint64
	version  uint64
	t0       float64
	deadline float64
	// maxHops is normalized: <= 0 (meaning N-1) is stored as 0.
	maxHops int
	noPrune bool
}

const memoCapacity = 32

var (
	memo                 = lru.New[memoKey, *DTS](memoCapacity)
	memoHits, memoMisses atomic.Int64
)

func keyFor(g *tvg.Graph, t0, deadline float64, opts Options) memoKey {
	mh := opts.MaxHops
	if mh <= 0 {
		mh = 0
	}
	return memoKey{gid: g.ID(), version: g.Version(), t0: t0, deadline: deadline, maxHops: mh, noPrune: opts.NoPrune}
}

// MemoStats returns the process-wide memo hit/miss counters.
func MemoStats() (hits, misses int64) {
	return memoHits.Load(), memoMisses.Load()
}

// PurgeMemo empties the process-wide DTS memo (benchmarks isolating
// cold-build cost call this between runs).
func PurgeMemo() { memo.Purge() }
