package dts

import (
	"math/rand"
	"testing"
)

// TestPatchDeriveAllocGuard cross-checks hotalloc's static verdict on
// the edit patch path dynamically: a patched Build of an edited graph
// must stay within a fixed allocation budget per derivation, so a
// refactor that quietly switches the patch onto per-point or per-node
// garbage shows up as a count regression here even when the
// differential tests still pass. Workers: 1 keeps the count
// deterministic (no pool fan-out, no goroutine stacks). The ceiling is
// generous — the patch legitimately allocates the new DTS's point
// arrays and bitset — but an order-of-magnitude regression (cold-build
// behavior sneaking back in, per-query scratch) blows through it.
func TestPatchDeriveAllocGuard(t *testing.T) {
	PurgeMemo()
	defer PurgeMemo()
	r := rand.New(rand.NewSource(11))
	g := randomGraph(r, 8, 2)
	opts := Options{Workers: 1}
	if _, err := Build(g, 0, 200, opts); err != nil {
		t.Fatal(err)
	}

	hits0, _ := PatchStats()
	avg := testing.AllocsPerRun(20, func() {
		for !randomEdit(r, g) {
		}
		if _, err := Build(g, 0, 200, opts); err != nil {
			t.Fatal(err)
		}
	})
	hits1, _ := PatchStats()

	// Every measured run must have gone through the patch path (the
	// graph version changes before each Build, so a memo hit is
	// impossible and a miss would mean the ancestor probe broke).
	if hits1-hits0 < 20 {
		t.Fatalf("patch hits went %d -> %d; the guard lost its subject (cold builds measured instead)",
			hits0, hits1)
	}
	const ceiling = 600
	if avg > ceiling {
		t.Errorf("patched Build allocates %.0f objects/run, budget %d — the patch path regressed",
			avg, ceiling)
	}
}
