package dts

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/tvg"
)

// randomGraph builds a dense-ish random TVG for differential patch tests.
func randomGraph(r *rand.Rand, n int, tau float64) *tvg.Graph {
	g := tvg.New(n, iv(0, 200), tau)
	contacts := 2 * n
	for k := 0; k < contacts; k++ {
		i := tvg.NodeID(r.Intn(n))
		j := tvg.NodeID(r.Intn(n))
		if i == j {
			continue
		}
		start := r.Float64() * 150
		g.AddContact(i, j, iv(start, start+5+r.Float64()*40))
	}
	return g
}

// randomEdit applies one random presence edit and reports whether the
// graph changed.
func randomEdit(r *rand.Rand, g *tvg.Graph) bool {
	n := g.N()
	i := tvg.NodeID(r.Intn(n))
	j := tvg.NodeID((int(i) + 1 + r.Intn(n-1)) % n)
	start := r.Float64() * 150
	width := 5 + r.Float64()*30
	if r.Intn(2) == 0 {
		g.AddContact(i, j, iv(start, start+width))
		return true
	}
	return g.RemoveContact(i, j, iv(start, start+width))
}

// TestPatchMatchesColdBuild is the core differential guarantee at the
// DTS layer: after every edit, the memo-derived (patched) DTS is
// byte-identical to a cold build of the edited graph.
func TestPatchMatchesColdBuild(t *testing.T) {
	for _, tc := range []struct {
		name string
		tau  float64
		opts Options
	}{
		{"tau0", 0, Options{}},
		{"tau2", 2, Options{}},
		{"tau2-noprune", 2, Options{NoPrune: true}},
		{"tau0-workers", 0, Options{Workers: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			PurgeMemo()
			defer PurgeMemo()
			r := rand.New(rand.NewSource(7))
			g := randomGraph(r, 8, tc.tau)
			if _, err := Build(g, 0, 200, tc.opts); err != nil {
				t.Fatal(err)
			}
			patchedBuilds := 0
			for step := 0; step < 12; step++ {
				if !randomEdit(r, g) {
					continue
				}
				got, err := Build(g, 0, 200, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				cold := Options{MaxHops: tc.opts.MaxHops, NoPrune: tc.opts.NoPrune, NoMemo: true}
				want, err := Build(g, 0, 200, cold)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Points, want.Points) {
					t.Fatalf("step %d: patched points diverge from cold build\n got: %v\nwant: %v",
						step, got.Points, want.Points)
				}
				if _, _, ok := got.DerivedFrom(); ok {
					patchedBuilds++
				}
			}
			if patchedBuilds == 0 {
				t.Fatal("no build went through the patch path; the differential lost its subject")
			}
		})
	}
}

// TestPatchChainsAcrossVersions pins that a patched DTS can itself serve
// as the ancestor of the next edit's patch (lineage chains).
func TestPatchChainsAcrossVersions(t *testing.T) {
	PurgeMemo()
	defer PurgeMemo()
	g := lineGraph(2)
	d0, err := Build(g, 0, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.AddContact(0, 3, iv(60, 70))
	d1, err := Build(g, 0, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pid, _, ok := d1.DerivedFrom(); !ok || pid != d0.ID() {
		t.Fatalf("first edit: DerivedFrom = (%d, ok=%v), want parent %d", pid, ok, d0.ID())
	}
	g.AddContact(1, 3, iv(20, 35))
	d2, err := Build(g, 0, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pid, _, ok := d2.DerivedFrom(); !ok || pid != d1.ID() {
		t.Fatalf("second edit: DerivedFrom = (%d, ok=%v), want parent %d", pid, ok, d1.ID())
	}
	want, err := Build(g, 0, 100, Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d2.Points, want.Points) {
		t.Fatalf("chained patch diverges from cold build:\n got %v\nwant %v", d2.Points, want.Points)
	}
}

// TestReuseGateRejectsEditedGraph is the Options.Reuse staleness
// regression: a DTS built before an edit must not short-circuit a build
// after it — the degradation ladder hands reused DTS values straight to
// auxgraph.Build, which would then enumerate pre-edit time points.
func TestReuseGateRejectsEditedGraph(t *testing.T) {
	g := lineGraph(0)
	d, err := Build(g, 0, 100, Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	// Same graph, same version: the seam works.
	got, err := Build(g, 0, 100, Options{Reuse: d, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatal("unedited graph must reuse the provided DTS")
	}
	// Window mismatch still falls through.
	got, err = Build(g, 0, 90, Options{Reuse: d, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if got == d {
		t.Fatal("window mismatch must not reuse")
	}
	// After an edit the reused DTS is stale and must be rejected.
	g.AddContact(0, 3, iv(60, 70))
	got, err = Build(g, 0, 100, Options{Reuse: d, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if got == d {
		t.Fatal("edited graph reused a pre-edit DTS")
	}
	want, err := Build(g, 0, 100, Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Points, want.Points) {
		t.Fatal("post-edit build with stale Reuse differs from cold build")
	}
}

// TestReuseGateRejectsForeignAndHandMadeDTS pins the rest of the gate:
// a DTS from a different graph and a hand-constructed DTS (ID 0, no
// lineage) never short-circuit.
func TestReuseGateRejectsForeignAndHandMadeDTS(t *testing.T) {
	ga := lineGraph(0)
	gb := otherLineGraph(0)
	da, err := Build(ga, 0, 100, Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Build(gb, 0, 100, Options{Reuse: da, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if got == da {
		t.Fatal("graph B reused graph A's DTS")
	}
	hand := &DTS{T0: 0, Deadline: 100, Points: da.Points}
	got, err = Build(ga, 0, 100, Options{Reuse: hand, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if got == hand {
		t.Fatal("hand-constructed DTS (no lineage) was reused")
	}
}

// TestReuseGateStaleShapeForced mirrors the SetIDForTest aliasing tests:
// it forges a pre-edit DTS into the edited graph's lineage to prove the
// stale shape the version check closes off is real — the forged reuse
// serves time points that miss the new contact entirely.
func TestReuseGateStaleShapeForced(t *testing.T) {
	g := lineGraph(0)
	d, err := Build(g, 0, 100, Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	g.AddContact(0, 3, iv(60, 70))
	want, err := Build(g, 0, 100, Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(d.Points, want.Points) {
		t.Fatal("test setup: the edit must change the DTS")
	}

	// Forge the lineage the gate trusts. The stale DTS now passes and
	// Build hands back pre-edit points — the exact harm.
	d.SetLineageForTest(g.ID(), g.Version())
	stale, err := Build(g, 0, 100, Options{Reuse: d, NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if stale != d {
		t.Fatal("forged lineage did not reproduce the stale-reuse shape; the regression test lost its teeth")
	}
	if reflect.DeepEqual(stale.Points, want.Points) {
		t.Fatal("stale reuse accidentally matches the edited graph's DTS")
	}
}

// TestEditNeverHitsParentMemoEntry is the memo-invalidation table: an
// edited graph version must never be served the parent version's memo
// entry, for any edit kind, and NoMemo opts out of both memo and patch.
func TestEditNeverHitsParentMemoEntry(t *testing.T) {
	cases := []struct {
		name string
		edit func(g *tvg.Graph) bool
	}{
		{"add-contact", func(g *tvg.Graph) bool {
			g.AddContact(0, 3, iv(60, 70))
			return true
		}},
		{"remove-contact", func(g *tvg.Graph) bool {
			return g.RemoveContact(0, 1, iv(10, 30))
		}},
		{"remove-partial", func(g *tvg.Graph) bool {
			return g.RemoveContact(1, 2, iv(30, 40))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			PurgeMemo()
			defer PurgeMemo()
			g := lineGraph(0)
			parent, err := Build(g, 0, 100, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !tc.edit(g) {
				t.Fatal("test setup: edit must change the graph")
			}
			hitsBefore, _ := MemoStats()
			got, err := Build(g, 0, 100, Options{})
			if err != nil {
				t.Fatal(err)
			}
			hitsAfter, _ := MemoStats()
			if got == parent {
				t.Fatal("edited graph was served the parent's memo entry")
			}
			if hitsAfter != hitsBefore {
				t.Fatalf("edited version hit the memo (%d -> %d)", hitsBefore, hitsAfter)
			}
			want, err := Build(g, 0, 100, Options{NoMemo: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Points, want.Points) {
				t.Fatal("post-edit memoized build differs from cold build")
			}
			// The parent's entry is still intact for the parent version —
			// invalidation is by key, not purge. (Rebuilding the pre-edit
			// graph shape would hit it; here we just check the entry count.)
			if memo.Len() < 2 {
				t.Fatalf("memo should hold parent and child entries, has %d", memo.Len())
			}
		})
	}
}

// TestNoMemoSkipsPatchPath pins the opt-out: NoMemo builds neither probe
// the memo for ancestors nor record patch statistics.
func TestNoMemoSkipsPatchPath(t *testing.T) {
	PurgeMemo()
	defer PurgeMemo()
	g := lineGraph(0)
	if _, err := Build(g, 0, 100, Options{}); err != nil {
		t.Fatal(err)
	}
	g.AddContact(0, 3, iv(60, 70))
	h0, m0 := PatchStats()
	d, err := Build(g, 0, 100, Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	h1, m1 := PatchStats()
	if h1 != h0 || m1 != m0 {
		t.Fatalf("NoMemo build moved patch stats (%d,%d) -> (%d,%d)", h0, m0, h1, m1)
	}
	if _, _, ok := d.DerivedFrom(); ok {
		t.Fatal("NoMemo build must not derive from a memoized ancestor")
	}
}
