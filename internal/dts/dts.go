// Package dts implements the discrete time set of §V: the per-node time
// points at which an optimal TMEDB schedule can be assumed to transmit.
//
// Theorem 5.2 shows that TMEDB on continuous time is equivalent to TMEDB
// restricted to the DTS: by the ET-law (Proposition 5.1), every feasible
// schedule can be normalized so each relay transmits either at the start
// of one of its adjacency intervals or at the moment it became informed.
// Adjacency-interval starts are breakpoints of the adjacent partitions
// P_i^ad; informed-times are arrivals of earlier transmissions, i.e.
// earlier DTS points shifted by the traversal time τ. The closure of the
// adjacency breakpoints under "+kτ" (up to the non-stop journey length,
// at most N hops) therefore contains every time an optimal schedule needs
// — O(N³L) points in general and O(N²L) when τ ≈ 0, matching §V.
//
// Build additionally prunes, per node, the points at which the node has
// no neighbor: it can neither transmit nor receive there, and the
// auxiliary graph's zero-weight wait edges carry informed status across
// the gap unchanged. Pruning preserves the Theorem 5.2 equivalence while
// shrinking the auxiliary graph dramatically on sparse contact traces.
package dts

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/cancel"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/tvg"
)

// Options tunes the DTS construction.
type Options struct {
	// MaxHops bounds the +kτ propagation depth. Zero means N-1 (the
	// maximum circle-free non-stop journey length). Ignored when τ = 0.
	MaxHops int
	// NoPrune disables the zero-degree point pruning (used by the
	// ablation benchmarks; the pruned and unpruned DTS admit the same
	// optimal schedules).
	NoPrune bool
	// Workers bounds the worker pool for the per-node partition
	// filtering (the O(N·|global|) presence-query sweep). Each node's
	// partition is computed independently, so the result is identical
	// for every value; <= 1 runs serially.
	Workers int
	// Obs receives the "dts" phase span, point-count attributes, and the
	// filter-sweep pool stats. Nil (the default) records nothing.
	Obs *obs.Recorder
	// Cancel is the cancellation checkpoint token. Build polls it at
	// phase boundaries and per outer-loop iteration, returning its typed
	// error promptly when it trips. Nil (the default) is the
	// zero-overhead uncancellable path; a completed Build is
	// byte-identical for every value.
	Cancel *cancel.Token
	// Reuse short-circuits the construction with an already-built DTS of
	// the same window — the degradation ladder's artifact-reuse seam
	// (the DTS depends only on the presence structure, never on the
	// channel model, so one DTS serves every planner view of a graph).
	// The gate requires the reused DTS to come from Build on this exact
	// graph at its current version: a window mismatch, a hand-constructed
	// DTS, or a DTS predating an edit all fall through to a fresh build —
	// a stale reused DTS handed onward to auxgraph.Build would otherwise
	// serve pre-edit time points.
	Reuse *DTS
	// NoMemo bypasses the process-wide DTS memo (see memo.go) for this
	// build: the result is always freshly constructed and not cached.
	// The memoized and fresh DTS are identical; the flag exists for
	// benchmarks isolating cold-build cost.
	NoMemo bool
}

// DTS is a discrete time set D_V: one discrete time partition P_i^di per
// node, over the window [T0, Deadline].
type DTS struct {
	T0, Deadline float64
	// Points[i] holds P_i^di, sorted ascending. The final point is
	// always Deadline (the terminal marker used by the auxiliary graph).
	Points [][]float64
	// id is the process-unique identity stamped by Build. The auxiliary
	// graph memo keys on it instead of the *DTS pointer: in a
	// long-running process a collected DTS's address can be recycled for
	// a fresh one, and a pointer-keyed cache would then serve the dead
	// instance's cores. IDs are never reused; 0 means "hand-constructed,
	// never memoize against".
	id uint64
	// gid/gver record which graph (by process-unique identity) and which
	// version of it this DTS was built from. The Options.Reuse gate
	// checks them so a DTS from before an edit is never reused after it.
	gid, gver uint64
	// parentID/parentVersion record the memoized ancestor this DTS was
	// patched from (zero for cold builds). The auxiliary-graph memo uses
	// the lineage to derive a patched core from the ancestor's.
	parentID, parentVersion uint64
	// global is the deduplicated global point list (steps 1–2 of the
	// construction) and member[i] the per-node filter bitset over it:
	// bit p set means global[p] survived node i's degree pruning. They
	// let an edit patch recompute only the points an edited pair could
	// have changed, reusing every other filter decision bit-for-bit.
	global []float64
	member [][]uint64
}

// nextDTSID hands out process-unique DTS identities; 0 is reserved for
// hand-constructed values that must never hit an identity-keyed cache.
var nextDTSID atomic.Uint64

// ID returns the DTS's process-unique identity (0 for hand-constructed
// values that did not come out of Build).
func (d *DTS) ID() uint64 { return d.id }

// SetIDForTest overrides the DTS identity. It exists solely so
// regression tests can force two distinct DTS values onto one ID and
// prove a cache keyed on recycled identities serves stale artifacts;
// production code must never call it.
func (d *DTS) SetIDForTest(id uint64) { d.id = id }

// SetLineageForTest overrides the graph lineage the Options.Reuse gate
// checks. It exists solely so regression tests can forge a pre-edit DTS
// into the current version's lineage and prove a gate without the
// version check serves stale time points; production code must never
// call it.
func (d *DTS) SetLineageForTest(gid, gver uint64) { d.gid, d.gver = gid, gver }

// DerivedFrom returns the identity and build-time graph version of the
// memoized ancestor this DTS was patched from. ok = false for cold
// builds and hand-constructed values — there is no ancestor whose
// derived artifacts downstream caches could patch.
func (d *DTS) DerivedFrom() (id, gver uint64, ok bool) {
	return d.parentID, d.parentVersion, d.parentID != 0
}

// timeEps is the tolerance for deduplicating time points.
const timeEps = 1e-9

// Build computes the DTS of g for a broadcast starting at t0 with delay
// constraint deadline (absolute time, t0 < deadline <= span end). The
// only error Build can return is a tripped cancellation checkpoint
// (cancel.ErrCancelled / cancel.ErrBudgetExceeded via opts.Cancel).
func Build(g *tvg.Graph, t0, deadline float64, opts Options) (*DTS, error) {
	//tmedbvet:ignore floateq reuse gate wants bitwise-identical horizon arguments: a tolerant match could hand back a DTS built for a different window
	if r := opts.Reuse; r != nil && r.T0 == t0 && r.Deadline == deadline && r.gid != 0 && r.gid == g.ID() && r.gver == g.Version() {
		opts.Obs.Counter("dts.reused").Inc()
		return r, nil
	}
	var key memoKey
	if !opts.NoMemo {
		key = keyFor(g, t0, deadline, opts)
		if d, ok := memo.Get(key); ok {
			memoHits.Add(1)
			opts.Obs.Counter("dts.memo.hits").Inc()
			return d, nil
		}
		memoMisses.Add(1)
		opts.Obs.Counter("dts.memo.misses").Inc()
	}
	span := g.Span()
	if t0 < span.Start || deadline > span.End || deadline <= t0 {
		panic(fmt.Sprintf("dts: window [%g,%g] outside span [%g,%g]", t0, deadline, span.Start, span.End))
	}
	if !opts.NoMemo {
		d, err := tryPatch(g, t0, deadline, key, opts)
		if err != nil {
			return nil, err
		}
		if d != nil {
			patchHits.Add(1)
			opts.Obs.Counter("dts.patch.hits").Inc()
			memo.Put(key, d)
			return d, nil
		}
		patchMisses.Add(1)
		opts.Obs.Counter("dts.patch.misses").Inc()
	}
	sp := opts.Obs.StartPhase("dts")
	defer sp.End()
	tok := opts.Cancel
	n := g.N()
	maxHops := opts.MaxHops
	if maxHops <= 0 {
		maxHops = n - 1
	}

	base, global, err := globalPoints(g, t0, deadline, maxHops, tok)
	if err != nil {
		return nil, err
	}

	// 3. Per-node partitions: keep points where the node can act, plus
	// the window endpoints. Each node's filter only reads the graph and
	// writes its own slot, so the sweep parallelizes without changing
	// the result. The filter decisions are additionally recorded as
	// per-node bitsets over the global list, so a later edit can derive
	// the next version's DTS without re-querying unedited nodes.
	words := (len(global) + 63) / 64
	pts := make([][]float64, n)
	member := make([][]uint64, n)
	err = parallel.ForEachPoolCancel(opts.Obs.Pool("dts.filter"), tok, opts.Workers, n, func(i int) {
		bits := make([]uint64, words)
		var mine []float64
		for p, x := range global {
			if opts.NoPrune || g.DegreeAt(tvg.NodeID(i), x) > 0 {
				mine = append(mine, x)
				bits[p>>6] |= 1 << uint(p&63)
			}
		}
		mine = append(mine, t0, deadline)
		pts[i] = dedupSorted(mine)
		member[i] = bits
	})
	if err != nil {
		return nil, fmt.Errorf("dts: filter sweep: %w", err)
	}
	d := &DTS{T0: t0, Deadline: deadline, Points: pts, id: nextDTSID.Add(1),
		gid: g.ID(), gver: g.Version(), global: global, member: member}
	sp.SetInt("base_points", len(base))
	sp.SetInt("global_points", len(global))
	sp.SetInt("total_points", d.TotalPoints())
	if !opts.NoMemo {
		memo.Put(key, d)
	}
	return d, nil
}

// globalPoints runs steps 1–2 of the construction: the adjacency
// breakpoints of every pair clipped to the window, then the +kτ closure.
// The cold build and the edit patch share it verbatim — the global list
// is cheap relative to the per-node filter sweep, and recomputing it
// from scratch guarantees the patched DTS picks exactly the same
// deduplication representatives a cold build would.
func globalPoints(g *tvg.Graph, t0, deadline float64, maxHops int, tok *cancel.Token) (base, global []float64, err error) {
	n := g.N()
	tau := g.Tau()

	// 1. Adjacency breakpoints of every pair, clipped to the window.
	base = []float64{t0}
	for i := 0; i < n; i++ {
		if err := tok.Check(); err != nil {
			return nil, nil, fmt.Errorf("dts: breakpoints: %w", err)
		}
		for _, j := range g.EverNeighbors(tvg.NodeID(i)) {
			if tvg.NodeID(i) > j {
				continue // each pair once
			}
			eroded := g.Presence(tvg.NodeID(i), j).Erode(tau)
			for _, iv := range eroded.Intervals() {
				for _, p := range []float64{iv.Start, iv.End} {
					if p >= t0 && p <= deadline {
						base = append(base, p)
					}
				}
			}
		}
	}
	base = dedupSorted(base)

	// 2. τ-propagation: each point spawns t+kτ (arrival chains of
	// non-stop journeys).
	if tau > 0 {
		global = make([]float64, 0, len(base)*(maxHops+1))
		for _, p := range base {
			if err := tok.Check(); err != nil {
				return nil, nil, fmt.Errorf("dts: tau-propagation: %w", err)
			}
			for k := 0; k <= maxHops; k++ {
				q := p + float64(k)*tau
				if q > deadline {
					break
				}
				global = append(global, q)
			}
		}
		global = dedupSorted(global)
	} else {
		global = base
	}
	return base, global, nil
}

func dedupSorted(xs []float64) []float64 {
	sort.Float64s(xs)
	out := xs[:0]
	for _, x := range xs {
		if len(out) == 0 || x-out[len(out)-1] > timeEps {
			out = append(out, x)
		}
	}
	return out
}

// TotalPoints returns Σ_i |P_i^di|, the size driving the auxiliary graph.
func (d *DTS) TotalPoints() int {
	total := 0
	for _, p := range d.Points {
		total += len(p)
	}
	return total
}

// Index returns the index of the largest point of P_i^di that is <= t
// (within tolerance), or -1 when t precedes every point.
//
//tmedbvet:hotpath
func (d *DTS) Index(i tvg.NodeID, t float64) int {
	p := d.Points[i]
	k := sort.SearchFloat64s(p, t+timeEps)
	return k - 1
}

// IndexAtOrAfter returns the index of the smallest point of P_i^di that
// is >= t (within tolerance), or -1 when every point precedes t. It is
// how receptions at time t map onto the receiver's partition: informed
// status persists, so arriving "between" points is equivalent to arriving
// at the next point.
//
//tmedbvet:hotpath
func (d *DTS) IndexAtOrAfter(i tvg.NodeID, t float64) int {
	p := d.Points[i]
	k := sort.SearchFloat64s(p, t-timeEps)
	if k == len(p) {
		return -1
	}
	return k
}

// At returns the l-th point of P_i^di.
func (d *DTS) At(i tvg.NodeID, l int) float64 { return d.Points[i][l] }

// Last returns the index of the terminal point of P_i^di.
func (d *DTS) Last(i tvg.NodeID) int { return len(d.Points[i]) - 1 }

// EarliestTransmissionTime applies the ET-law (Proposition 5.1): given
// that node i became informed at time informed and wants to transmit
// while adjacent to the same node set as at time t, the earliest
// equivalent transmission time is max(informed, start of the adjacency
// interval of t). Both candidates are DTS points by construction.
func EarliestTransmissionTime(g *tvg.Graph, i tvg.NodeID, informed, t float64) float64 {
	// Find the start of the adjacent-partition interval containing t.
	ap := g.AdjacentPartition(i)
	idx := ap.IndexOf(t)
	if idx < 0 {
		return math.Max(informed, t)
	}
	start, _ := ap.Interval(idx)
	return math.Max(informed, start)
}
