package haggle

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tveg"
)

func TestReadAutoNativeFormat(t *testing.T) {
	tr := Generate(GenOptions{N: 5, Horizon: 2000}, rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != tr.N || len(got.Contacts) != len(tr.Contacts) {
		t.Errorf("native round trip: %d/%d vs %d/%d", got.N, len(got.Contacts), tr.N, len(tr.Contacts))
	}
}

func TestReadAutoGzip(t *testing.T) {
	tr := Generate(GenOptions{N: 5, Horizon: 2000}, rand.New(rand.NewSource(2)))
	var buf bytes.Buffer
	if err := tr.WriteGzip(&buf); err != nil {
		t.Fatal(err)
	}
	// sanity: really compressed
	if buf.Bytes()[0] != 0x1f || buf.Bytes()[1] != 0x8b {
		t.Fatal("not gzip output")
	}
	got, err := ReadAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != tr.N || len(got.Contacts) != len(tr.Contacts) {
		t.Errorf("gzip round trip: %d contacts vs %d", len(got.Contacts), len(tr.Contacts))
	}
}

func TestReadAutoHeaderless(t *testing.T) {
	in := "# a CRAWDAD-style comment\n3 1 10 20\n0 2 5 30 4.5\n"
	got, err := ReadAuto(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 4 {
		t.Errorf("inferred N = %d, want 4", got.N)
	}
	if got.Horizon != 30 {
		t.Errorf("inferred horizon = %g, want 30", got.Horizon)
	}
	if len(got.Contacts) != 2 {
		t.Fatalf("contacts = %v", got.Contacts)
	}
	// pair normalized, default distance applied
	if got.Contacts[0].I != 1 || got.Contacts[0].J != 3 || got.Contacts[0].Dist != 10 {
		t.Errorf("contact 0 = %+v", got.Contacts[0])
	}
	if got.Contacts[1].Dist != 4.5 {
		t.Errorf("contact 1 dist = %g, want 4.5", got.Contacts[1].Dist)
	}
}

func TestReadAutoHeaderlessErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"0 0 1 2\n",      // self loop
		"0 1 5 5\n",      // empty interval
		"garbage line\n", // unparseable
	}
	for _, in := range cases {
		if _, err := ReadAuto(strings.NewReader(in)); err == nil {
			t.Errorf("ReadAuto(%q) should fail", in)
		}
	}
}

func TestReadAutoHeaderlessToTVEG(t *testing.T) {
	in := "0 1 10 20 5\n1 2 15 40 7\n"
	tr, err := ReadAuto(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	g := tr.ToTVEG(0, tveg.DefaultParams(), tveg.Static)
	if g.N() != 3 {
		t.Errorf("N = %d, want 3", g.N())
	}
	if !g.Rho(0, 1, 15) || !g.Rho(1, 2, 20) {
		t.Error("contacts not materialized")
	}
}
