package haggle

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"math"
)

// ReadAuto parses a contact trace in whichever supported encoding it
// finds:
//
//   - gzip-compressed input is transparently decompressed;
//   - the native "# haggle-trace v1" format is parsed by Read;
//   - headerless whitespace-separated dumps (the CRAWDAD convention:
//     "<i> <j> <start> <end>" with an optional distance column) are
//     parsed with the node count and horizon inferred from the data.
func ReadAuto(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("haggle: gzip: %w", err)
		}
		defer gz.Close()
		return ReadAuto(bufio.NewReader(gz))
	}
	head, err := br.Peek(len(headerPrefix))
	if err == nil && string(head) == headerPrefix {
		return Read(br)
	}
	return readHeaderless(br)
}

const headerPrefix = "# haggle-trace"

// readHeaderless parses "<i> <j> <start> <end> [dist]" lines, inferring
// the node count (max id + 1) and horizon (max end).
func readHeaderless(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	t := &Trace{}
	lineNo := 0
	maxID := -1
	var maxEnd float64
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		var c Contact
		n, err := fmt.Sscanf(line, "%d %d %g %g %g", &c.I, &c.J, &c.Start, &c.End, &c.Dist)
		if err != nil && n < 4 {
			return nil, fmt.Errorf("haggle: line %d: %q: %v", lineNo, line, err)
		}
		if n == 4 {
			c.Dist = 10
		}
		if c.I == c.J || c.I < 0 || c.J < 0 {
			return nil, fmt.Errorf("haggle: line %d: bad pair (%d,%d)", lineNo, c.I, c.J)
		}
		if c.End <= c.Start {
			return nil, fmt.Errorf("haggle: line %d: empty contact [%g,%g)", lineNo, c.Start, c.End)
		}
		if c.I > c.J {
			c.I, c.J = c.J, c.I
		}
		maxID = maxInt(maxID, c.J)
		maxEnd = math.Max(maxEnd, c.End)
		t.Contacts = append(t.Contacts, c)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.Contacts) == 0 {
		return nil, fmt.Errorf("haggle: no contacts in headerless trace")
	}
	t.N = maxID + 1
	t.Horizon = maxEnd
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WriteGzip writes the native format gzip-compressed.
func (t *Trace) WriteGzip(w io.Writer) error {
	gz := gzip.NewWriter(w)
	if err := t.Write(gz); err != nil {
		gz.Close()
		return err
	}
	return gz.Close()
}
