package haggle

import (
	"math/rand"
	"testing"
)

func TestHashContentAddressed(t *testing.T) {
	a := Generate(GenOptions{N: 12}, rand.New(rand.NewSource(7)))
	b := Generate(GenOptions{N: 12}, rand.New(rand.NewSource(7)))
	if a == b {
		t.Fatal("test setup: want two distinct *Trace instances")
	}
	if a.Hash() != b.Hash() {
		t.Fatal("identical content in distinct instances must hash equal")
	}
	c := Generate(GenOptions{N: 12}, rand.New(rand.NewSource(8)))
	if a.Hash() == c.Hash() {
		t.Fatal("different traces hash equal")
	}
	// Sensitive to every contact field.
	d := Generate(GenOptions{N: 12}, rand.New(rand.NewSource(7)))
	d.Contacts[0].Dist += 0.25
	if a.Hash() == d.Hash() {
		t.Fatal("hash ignores contact distance")
	}
}
