// Package haggle handles contact traces in the style of the Haggle /
// iMote datasets the paper evaluates on (Chaintreau et al. [12]).
//
// The real Haggle trace is distribution-restricted, so the package
// provides, besides a reader/writer for the simple text format, a
// synthetic generator reproducing its first-order structure: heavy-tailed
// (truncated Pareto) inter-contact times, log-normal contact durations,
// and a node arrival ramp that makes the average degree grow early in the
// experiment and then flatten — the behaviour Fig. 7 relies on. Every
// contact carries a sampled distance so fading models can be applied.
package haggle

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"sort"

	"repro/internal/interval"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Contact is one pairwise contact: nodes I < J in range during
// [Start, End) at representative distance Dist (meters).
type Contact struct {
	I, J       int
	Start, End float64
	Dist       float64
}

// Trace is a contact trace over N nodes and a time horizon.
type Trace struct {
	N        int
	Horizon  float64
	Contacts []Contact
}

// Hash returns a stable 64-bit content hash of the trace (FNV-1a over
// the node count, horizon, and every contact in order). Two traces hash
// equal exactly when their Write outputs would be semantically equal, so
// the hash identifies a trace in content-addressed caches — notably the
// tmedbd schedule cache — independent of where the trace was loaded from
// or which *Trace instance carries it.
//
// The hash is 64 bits and unkeyed: two distinct traces can collide
// (≈2⁻⁶⁴ per pair, birthday-bounded over a cache's lifetime), and FNV-1a
// is not collision-resistant against adversarial inputs. Callers for
// whom a collision would be a correctness bug — not just a wasted miss —
// should pair the hash with a cheap structural fingerprint (N, Horizon,
// contact count) rather than trust it alone, as the tmedbd cache key
// does.
func (t *Trace) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wu(uint64(t.N))
	wu(math.Float64bits(t.Horizon))
	for _, c := range t.Contacts {
		wu(uint64(c.I))
		wu(uint64(c.J))
		wu(math.Float64bits(c.Start))
		wu(math.Float64bits(c.End))
		wu(math.Float64bits(c.Dist))
	}
	return h.Sum64()
}

// Write emits the trace in the text format:
//
//	# haggle-trace v1 nodes=<N> horizon=<T>
//	<i> <j> <start> <end> <dist>
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# haggle-trace v1 nodes=%d horizon=%g\n", t.N, t.Horizon); err != nil {
		return err
	}
	for _, c := range t.Contacts {
		if _, err := fmt.Fprintf(bw, "%d %d %g %g %g\n", c.I, c.J, c.Start, c.End, c.Dist); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write. Lines starting with '#' other
// than the header are ignored; a missing distance column defaults to
// 10 m (proximity-only traces like the original Haggle dumps).
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if lineNo == 1 {
			if n, _ := fmt.Sscanf(line, "# haggle-trace v1 nodes=%d horizon=%g", &t.N, &t.Horizon); n != 2 {
				return nil, fmt.Errorf("haggle: bad header %q", line)
			}
			continue
		}
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		var c Contact
		n, err := fmt.Sscanf(line, "%d %d %g %g %g", &c.I, &c.J, &c.Start, &c.End, &c.Dist)
		if err != nil && n < 4 {
			return nil, fmt.Errorf("haggle: line %d: %q: %v", lineNo, line, err)
		}
		if n == 4 {
			c.Dist = 10
		}
		if c.I == c.J || c.I < 0 || c.J < 0 || c.I >= t.N || c.J >= t.N {
			return nil, fmt.Errorf("haggle: line %d: bad pair (%d,%d)", lineNo, c.I, c.J)
		}
		if c.I > c.J {
			c.I, c.J = c.J, c.I
		}
		if c.End <= c.Start {
			return nil, fmt.Errorf("haggle: line %d: empty contact [%g,%g)", lineNo, c.Start, c.End)
		}
		t.Contacts = append(t.Contacts, c)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.N == 0 {
		return nil, fmt.Errorf("haggle: missing header")
	}
	return t, nil
}

// GenOptions tunes the synthetic generator. Zero values take the
// defaults noted per field, which match the §VII setting.
type GenOptions struct {
	// N is the number of nodes (default 20).
	N int
	// Horizon is the trace length in seconds (default 17000, §VII).
	Horizon float64
	// MeanInterContact is the mean pairwise inter-contact gap in
	// seconds (default 4000). Gaps are truncated-Pareto distributed
	// (shape ParetoAlpha) per the Haggle analysis in [12].
	MeanInterContact float64
	// ParetoAlpha is the inter-contact tail exponent (default 1.5).
	ParetoAlpha float64
	// MeanContact is the mean contact duration in seconds (default
	// 250); durations are log-normal.
	MeanContact float64
	// RampEnd: nodes "arrive" at uniform times in [0, RampEnd] (default
	// 8000). Before both endpoints have arrived a pair's contacts are
	// thinned to KeepEarly of the full rate — the average degree ramps
	// up and then flattens, the Fig. 7 behaviour, while the early
	// network stays connected enough for broadcasts to complete.
	RampEnd float64
	// KeepEarly is the fraction of pre-arrival contacts kept (default
	// 0.15).
	KeepEarly float64
	// DistMin and DistMax bound per-contact distances in meters
	// (defaults 1 and 10 — indoor proximity).
	DistMin, DistMax float64
}

func (o *GenOptions) fill() {
	if o.N == 0 {
		o.N = 20
	}
	if o.Horizon == 0 {
		o.Horizon = 17000
	}
	if o.MeanInterContact == 0 {
		o.MeanInterContact = 4000
	}
	if o.ParetoAlpha == 0 {
		o.ParetoAlpha = 1.5
	}
	if o.MeanContact == 0 {
		o.MeanContact = 250
	}
	if o.RampEnd == 0 {
		o.RampEnd = 8000
	}
	if o.KeepEarly == 0 {
		o.KeepEarly = 0.15
	}
	if o.DistMin == 0 {
		o.DistMin = 1
	}
	if o.DistMax == 0 {
		o.DistMax = 10
	}
}

// Generate builds a synthetic Haggle-like trace, deterministic per rng.
func Generate(opts GenOptions, rng *rand.Rand) *Trace {
	opts.fill()
	t := &Trace{N: opts.N, Horizon: opts.Horizon}
	active := make([]float64, opts.N)
	for i := range active {
		active[i] = rng.Float64() * opts.RampEnd
	}
	// xm chosen so the truncated Pareto has roughly the requested mean:
	// E = xm·α/(α-1) for α > 1.
	xm := opts.MeanInterContact * (opts.ParetoAlpha - 1) / opts.ParetoAlpha
	pareto := func() float64 {
		u := rng.Float64()
		g := xm / math.Pow(1-u, 1/opts.ParetoAlpha)
		if g > opts.Horizon {
			g = opts.Horizon
		}
		return g
	}
	// log-normal with the requested mean: E = exp(μ+σ²/2); σ = 0.8
	const sigma = 0.8
	mu := math.Log(opts.MeanContact) - sigma*sigma/2
	duration := func() float64 {
		return math.Exp(mu + sigma*rng.NormFloat64())
	}
	for i := 0; i < opts.N; i++ {
		for j := i + 1; j < opts.N; j++ {
			arrival := math.Max(active[i], active[j])
			now := 0.0
			for {
				now += pareto()
				if now >= opts.Horizon {
					break
				}
				end := math.Min(now+duration(), opts.Horizon)
				dist := opts.DistMin + rng.Float64()*(opts.DistMax-opts.DistMin)
				keep := rng.Float64() // drawn unconditionally to keep the stream aligned
				if now < arrival && keep >= opts.KeepEarly {
					now = end
					continue // thinned pre-arrival contact
				}
				t.Contacts = append(t.Contacts, Contact{
					I: i, J: j, Start: now, End: end, Dist: dist,
				})
				now = end
			}
		}
	}
	sort.Slice(t.Contacts, func(a, b int) bool {
		ca, cb := t.Contacts[a], t.Contacts[b]
		if ca.Start != cb.Start {
			return ca.Start < cb.Start
		}
		if ca.I != cb.I {
			return ca.I < cb.I
		}
		return ca.J < cb.J
	})
	return t
}

// ToTVEG materializes the trace as a time-varying energy-demand graph
// with traversal time tau under the given parameters and channel model.
func (t *Trace) ToTVEG(tau float64, params tveg.Params, model tveg.Model) *tveg.Graph {
	g := tveg.New(t.N, interval.Interval{Start: 0, End: t.Horizon}, tau, params, model)
	for _, c := range t.Contacts {
		g.AddContact(tvg.NodeID(c.I), tvg.NodeID(c.J),
			interval.Interval{Start: c.Start, End: c.End}, c.Dist)
	}
	// Trace-built graphs feed the planners, which re-query identical ψ
	// costs across DTS points; memoization changes no returned bit.
	return g.EnableCostCache()
}

// Restrict returns a copy of the trace containing only the first n nodes
// (used by the N-sweep experiments of Fig. 4 and Fig. 6).
func (t *Trace) Restrict(n int) *Trace {
	if n <= 0 || n > t.N {
		panic(fmt.Sprintf("haggle: restrict to %d of %d nodes", n, t.N))
	}
	out := &Trace{N: n, Horizon: t.Horizon}
	for _, c := range t.Contacts {
		if c.I < n && c.J < n {
			out.Contacts = append(out.Contacts, c)
		}
	}
	return out
}
