package haggle

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tveg"
)

func TestWriteReadRoundTrip(t *testing.T) {
	orig := &Trace{N: 3, Horizon: 100, Contacts: []Contact{
		{0, 1, 10, 20, 5},
		{1, 2, 30, 45, 7.5},
	}}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 3 || got.Horizon != 100 || len(got.Contacts) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	for i := range orig.Contacts {
		if got.Contacts[i] != orig.Contacts[i] {
			t.Errorf("contact %d = %+v, want %+v", i, got.Contacts[i], orig.Contacts[i])
		}
	}
}

func TestReadMissingDistanceDefaults(t *testing.T) {
	in := "# haggle-trace v1 nodes=2 horizon=50\n0 1 5 15\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Contacts[0].Dist != 10 {
		t.Errorf("Dist = %g, want default 10", got.Contacts[0].Dist)
	}
}

func TestReadNormalizesPairOrder(t *testing.T) {
	in := "# haggle-trace v1 nodes=3 horizon=50\n2 1 5 15 3\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	c := got.Contacts[0]
	if c.I != 1 || c.J != 2 {
		t.Errorf("pair = (%d,%d), want (1,2)", c.I, c.J)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"not a header\n",
		"# haggle-trace v1 nodes=2 horizon=50\n0 0 1 2 3\n", // self loop
		"# haggle-trace v1 nodes=2 horizon=50\n0 5 1 2 3\n", // out of range
		"# haggle-trace v1 nodes=2 horizon=50\n0 1 9 2 3\n", // empty interval
		"", // no header
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) should fail", in)
		}
	}
}

func TestReadSkipsComments(t *testing.T) {
	in := "# haggle-trace v1 nodes=2 horizon=50\n# comment\n\n0 1 5 15 3\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Contacts) != 1 {
		t.Errorf("contacts = %d, want 1", len(got.Contacts))
	}
}

func TestGenerateDefaults(t *testing.T) {
	tr := Generate(GenOptions{}, rand.New(rand.NewSource(1)))
	if tr.N != 20 || tr.Horizon != 17000 {
		t.Errorf("defaults: N=%d horizon=%g", tr.N, tr.Horizon)
	}
	if len(tr.Contacts) == 0 {
		t.Fatal("no contacts generated")
	}
	for _, c := range tr.Contacts {
		if c.Start < 0 || c.End > tr.Horizon || c.Start >= c.End {
			t.Fatalf("bad contact window %+v", c)
		}
		if c.Dist < 1 || c.Dist > 10 {
			t.Fatalf("distance %g outside [1,10]", c.Dist)
		}
		if c.I >= c.J {
			t.Fatalf("unnormalized pair %+v", c)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenOptions{}, rand.New(rand.NewSource(5)))
	b := Generate(GenOptions{}, rand.New(rand.NewSource(5)))
	if len(a.Contacts) != len(b.Contacts) {
		t.Fatal("same seed, different contact counts")
	}
	for i := range a.Contacts {
		if a.Contacts[i] != b.Contacts[i] {
			t.Fatal("same seed, different contacts")
		}
	}
}

func TestGenerateDegreeRamp(t *testing.T) {
	// Fig. 7 shape: average degree early in the trace is lower than in
	// the steady state after the arrival ramp.
	tr := Generate(GenOptions{}, rand.New(rand.NewSource(2)))
	g := tr.ToTVEG(0, tveg.DefaultParams(), tveg.Static)
	early := g.AverageDegreeAt(2000)
	late := 0.0
	for _, t0 := range []float64{9000, 11000, 13000} {
		late += g.AverageDegreeAt(t0)
	}
	late /= 3
	if early >= late {
		t.Errorf("degree ramp missing: early %g >= late %g", early, late)
	}
}

func TestToTVEG(t *testing.T) {
	tr := &Trace{N: 2, Horizon: 100, Contacts: []Contact{{0, 1, 10, 20, 5}}}
	g := tr.ToTVEG(1, tveg.DefaultParams(), tveg.RayleighFading)
	if g.N() != 2 || g.Tau() != 1 {
		t.Errorf("graph N=%d tau=%g", g.N(), g.Tau())
	}
	if !g.Rho(0, 1, 15) {
		t.Error("contact not materialized")
	}
	if s, ok := g.SegmentAt(0, 1, 15); !ok || s.Dist != 5 {
		t.Errorf("segment = %+v, %v", s, ok)
	}
}

func TestRestrict(t *testing.T) {
	tr := Generate(GenOptions{N: 10}, rand.New(rand.NewSource(3)))
	small := tr.Restrict(4)
	if small.N != 4 {
		t.Errorf("N = %d, want 4", small.N)
	}
	for _, c := range small.Contacts {
		if c.I >= 4 || c.J >= 4 {
			t.Fatalf("contact %+v outside restricted node set", c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Restrict(0) should panic")
		}
	}()
	tr.Restrict(0)
}

func TestQuickGeneratedTraceRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		tr := Generate(GenOptions{N: 6, Horizon: 3000}, rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if tr.Write(&buf) != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.N != tr.N || len(got.Contacts) != len(tr.Contacts) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
