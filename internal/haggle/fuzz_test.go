package haggle

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadAuto checks that arbitrary input never panics the trace
// parsers and that anything successfully parsed round-trips through the
// native writer.
func FuzzReadAuto(f *testing.F) {
	f.Add("# haggle-trace v1 nodes=3 horizon=100\n0 1 10 20 5\n")
	f.Add("0 1 10 20\n1 2 15 40 7\n")
	f.Add("")
	f.Add("# haggle-trace v1 nodes=0 horizon=0\n")
	f.Add("\x1f\x8b")
	f.Add("0 0 1 2 3\n")
	f.Add("9999999 1 0 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadAuto(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if werr := tr.Write(&buf); werr != nil {
			t.Fatalf("parsed trace fails to serialize: %v", werr)
		}
		back, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("serialized trace fails to re-parse: %v", rerr)
		}
		if back.N != tr.N || len(back.Contacts) != len(tr.Contacts) {
			t.Fatalf("round trip mismatch: %d/%d vs %d/%d",
				back.N, len(back.Contacts), tr.N, len(tr.Contacts))
		}
	})
}
