package channel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAbsent(t *testing.T) {
	var a Absent
	if a.FailureProb(1e9) != 1 {
		t.Error("absent link must always fail")
	}
	if !math.IsInf(a.MinCost(0.01), 1) {
		t.Error("absent link MinCost must be +Inf")
	}
}

func TestStepFailureProb(t *testing.T) {
	s := Step{Threshold: 2}
	if s.FailureProb(1.999) != 1 {
		t.Error("below threshold must fail")
	}
	if s.FailureProb(2) != 0 {
		t.Error("at threshold must succeed")
	}
	if s.FailureProb(5) != 0 {
		t.Error("above threshold must succeed")
	}
	if s.FailureProb(0) != 1 {
		t.Error("zero cost must fail (footnote 2)")
	}
}

func TestStepMinCost(t *testing.T) {
	s := Step{Threshold: 3.5}
	if got := s.MinCost(0.01); got != 3.5 {
		t.Errorf("MinCost = %g, want 3.5", got)
	}
}

func TestRayleighKnownValues(t *testing.T) {
	r := Rayleigh{Beta: 1}
	// φ(w) = 1 - exp(-1/w)
	if got, want := r.FailureProb(1), 1-math.Exp(-1); math.Abs(got-want) > 1e-12 {
		t.Errorf("φ(1) = %g, want %g", got, want)
	}
	if got := r.FailureProb(0); got != 1 {
		t.Errorf("φ(0) = %g, want 1", got)
	}
	// w → ∞: φ → 0
	if got := r.FailureProb(1e12); got > 1e-11 {
		t.Errorf("φ(1e12) = %g, want ≈0", got)
	}
}

func TestRayleighMinCostInverts(t *testing.T) {
	r := Rayleigh{Beta: 7.5}
	for _, eps := range []float64{0.5, 0.1, 0.01, 0.001} {
		w := r.MinCost(eps)
		if got := r.FailureProb(w); math.Abs(got-eps) > 1e-9 {
			t.Errorf("φ(MinCost(%g)) = %g, want %g", eps, got, eps)
		}
	}
}

func TestRayleighMinCostFormula(t *testing.T) {
	// Paper §VI-B: w0 = N0·γth / (ln(1/(1-ε)) d^{-α})
	const n0gamma, d, alpha, eps = 4.32e-21 * 389, 10.0, 2.0, 0.01
	beta := n0gamma * math.Pow(d, alpha)
	r := Rayleigh{Beta: beta}
	want := n0gamma / (math.Log(1/(1-eps)) * math.Pow(d, -alpha))
	if got := r.MinCost(eps); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("MinCost = %g, want %g", got, want)
	}
}

func TestRayleighMinCostPanicsOnBadEps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for eps=0")
		}
	}()
	Rayleigh{Beta: 1}.MinCost(0)
}

func TestNakagamiM1EqualsRayleigh(t *testing.T) {
	n := Nakagami{M: 1, Beta: 3}
	r := Rayleigh{Beta: 3}
	for _, w := range []float64{0.5, 1, 3, 10, 100} {
		got, want := n.FailureProb(w), r.FailureProb(w)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Nakagami m=1 φ(%g) = %g, Rayleigh = %g", w, got, want)
		}
	}
}

func TestNakagamiHigherMSteeper(t *testing.T) {
	// Larger m means less fading: at costs above the nominal threshold
	// the failure probability should be smaller than Rayleigh's.
	n4 := Nakagami{M: 4, Beta: 1}
	r := Rayleigh{Beta: 1}
	w := 5.0 // mean SNR is 5x threshold
	if n4.FailureProb(w) >= r.FailureProb(w) {
		t.Errorf("m=4 should beat Rayleigh above threshold: %g vs %g",
			n4.FailureProb(w), r.FailureProb(w))
	}
}

func TestRicianK0EqualsRayleigh(t *testing.T) {
	ric := Rician{K: 0, Beta: 2}
	r := Rayleigh{Beta: 2}
	for _, w := range []float64{0.5, 1, 2, 8, 50} {
		got, want := ric.FailureProb(w), r.FailureProb(w)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Rician K=0 φ(%g) = %g, Rayleigh = %g", w, got, want)
		}
	}
}

func TestRicianStrongLOSBeatsRayleigh(t *testing.T) {
	ric := Rician{K: 10, Beta: 1}
	r := Rayleigh{Beta: 1}
	w := 5.0
	if ric.FailureProb(w) >= r.FailureProb(w) {
		t.Errorf("K=10 should beat Rayleigh above threshold: %g vs %g",
			ric.FailureProb(w), r.FailureProb(w))
	}
}

func TestMinCostInvertsFadingModels(t *testing.T) {
	fns := []EDFunction{
		Nakagami{M: 2, Beta: 4},
		Nakagami{M: 0.7, Beta: 0.3},
		Rician{K: 3, Beta: 4},
		Rician{K: 0.5, Beta: 11},
	}
	for _, f := range fns {
		for _, eps := range []float64{0.2, 0.05, 0.01} {
			w := f.MinCost(eps)
			got := f.FailureProb(w)
			if got > eps*(1+1e-6) {
				t.Errorf("%v: φ(MinCost(%g)) = %g > eps", f, eps, got)
			}
			// slightly below w must exceed eps
			if below := f.FailureProb(w * 0.999); below <= eps {
				t.Errorf("%v: φ just below MinCost(%g) = %g <= eps", f, eps, below)
			}
		}
	}
}

func TestValidateAcceptsAllModels(t *testing.T) {
	fns := []EDFunction{
		Absent{},
		Step{Threshold: 1},
		Rayleigh{Beta: 2},
		Nakagami{M: 3, Beta: 2},
		Rician{K: 2, Beta: 2},
	}
	for _, f := range fns {
		if err := Validate(f, 0, 100, 500); err != nil {
			t.Errorf("Validate(%v) = %v", f, err)
		}
	}
}

type increasingED struct{}

func (increasingED) FailureProb(w float64) float64 { return math.Min(1, w/10) }
func (increasingED) MinCost(float64) float64       { return 0 }

func TestValidateRejectsIncreasing(t *testing.T) {
	if err := Validate(increasingED{}, 0, 10, 100); err == nil {
		t.Error("Validate should reject an increasing φ")
	}
}

func TestRegIncGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}
	for _, x := range []float64{0.1, 1, 2, 5} {
		got := regIncGammaP(1, x)
		want := 1 - math.Exp(-x)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("P(1,%g) = %g, want %g", x, got, want)
		}
	}
	// P(a, 0) = 0; P(a, large) → 1
	if got := regIncGammaP(3, 0); got != 0 {
		t.Errorf("P(3,0) = %g, want 0", got)
	}
	if got := regIncGammaP(3, 100); math.Abs(got-1) > 1e-10 {
		t.Errorf("P(3,100) = %g, want 1", got)
	}
	// P(0.5, x) = erf(sqrt(x))
	for _, x := range []float64{0.25, 1, 4} {
		got := regIncGammaP(0.5, x)
		want := math.Erf(math.Sqrt(x))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("P(0.5,%g) = %g, want %g", x, got, want)
		}
	}
}

func TestChi2EvenCDF(t *testing.T) {
	// χ²_2 CDF = 1 - e^{-y/2}
	for _, y := range []float64{0.5, 2, 10} {
		got := chi2EvenCDF(y, 1)
		want := 1 - math.Exp(-y/2)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("chi2(%g;2) = %g, want %g", y, got, want)
		}
	}
	// must agree with regularized gamma: P(χ²_{2m} <= y) = P(m, y/2)
	for _, m := range []int{1, 2, 5} {
		for _, y := range []float64{1, 4, 12} {
			got := chi2EvenCDF(y, m)
			want := regIncGammaP(float64(m), y/2)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("chi2(%g;%d) = %g, want %g", y, 2*m, got, want)
			}
		}
	}
}

func TestNoncentralChi2ZeroLambda(t *testing.T) {
	for _, y := range []float64{0.5, 3, 9} {
		got := noncentralChi2CDF(y, 2, 0)
		want := chi2EvenCDF(y, 1)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("ncx2(%g;2,0) = %g, want %g", y, got, want)
		}
	}
}

func TestNoncentralChi2MonteCarlo(t *testing.T) {
	// Cross-check the Poisson-mixture series against simulation.
	r := rand.New(rand.NewSource(42))
	lambda := 4.0
	y := 7.0
	const trials = 200000
	hits := 0
	for i := 0; i < trials; i++ {
		// noncentral chi-square with 2 dof: (Z1+δ)² + Z2², δ² = λ
		z1 := r.NormFloat64() + math.Sqrt(lambda)
		z2 := r.NormFloat64()
		if z1*z1+z2*z2 <= y {
			hits++
		}
	}
	mc := float64(hits) / trials
	got := noncentralChi2CDF(y, 2, lambda)
	if math.Abs(got-mc) > 0.01 {
		t.Errorf("ncx2 CDF = %g, Monte Carlo = %g", got, mc)
	}
}

func TestQuickEDFunctionsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		beta := 0.1 + r.Float64()*10
		fns := []EDFunction{
			Rayleigh{Beta: beta},
			Nakagami{M: 0.5 + r.Float64()*4, Beta: beta},
			Rician{K: r.Float64() * 8, Beta: beta},
		}
		for _, fn := range fns {
			if Validate(fn, 0, beta*100, 200) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickMinCostIsMinimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fn := Rayleigh{Beta: 0.1 + r.Float64()*10}
		eps := 0.001 + r.Float64()*0.4
		w := fn.MinCost(eps)
		return fn.FailureProb(w) <= eps+1e-12 && fn.FailureProb(w*0.99) > eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRicianExtremeCosts(t *testing.T) {
	// Regression: at vanishing cost the argument of the noncentral
	// chi-square CDF explodes; the old closed form produced NaN and made
	// MinCost return ~0.
	r := Rician{K: 5, Beta: 1.3e-17}
	if got := r.FailureProb(1e-30); math.Abs(got-1) > 1e-9 {
		t.Errorf("φ(1e-30) = %g, want 1", got)
	}
	w := r.MinCost(0.01)
	if w < r.Beta/100 {
		t.Errorf("MinCost = %g, implausibly below β/100 = %g", w, r.Beta/100)
	}
	if got := r.FailureProb(w); got > 0.01*(1+1e-6) {
		t.Errorf("φ(MinCost) = %g > 0.01", got)
	}
}

func TestChi2EvenCDFLargeArgs(t *testing.T) {
	for _, m := range []int{1, 5, 60} {
		if got := chi2EvenCDF(1e6, m); math.Abs(got-1) > 1e-9 {
			t.Errorf("chi2(1e6;%d) = %g, want 1", 2*m, got)
		}
		if got := chi2EvenCDF(2000, m); math.IsNaN(got) || got < 0 || got > 1 {
			t.Errorf("chi2(2000;%d) = %g out of range", 2*m, got)
		}
	}
}
