package channel

import (
	"reflect"
	"sync"
)

// Memo is a concurrency-safe memoization table for MinCost inversions.
// MinCost is a pure function of the ED-function value and eps, but for
// the Rician and Nakagami models it costs an exponential search plus up
// to 200 bisection steps over special functions — and the auxiliary-graph
// construction, the greedy backbones, and the Steiner search re-query the
// same ψ costs at the same DTS points over and over. The memo turns every
// repeat into one map lookup without changing a single returned bit.
//
// The zero value is ready to use and safe for concurrent use by multiple
// goroutines. Entries are only ever computed from their key, so a racing
// double-compute stores the same value twice — determinism is unaffected
// by scheduling.
type Memo struct {
	m sync.Map // memoKey -> float64
}

type memoKey struct {
	f   EDFunction
	eps float64
}

// MinCost returns f.MinCost(eps), memoized when the concrete ED-function
// type is comparable (all models in this package are value structs, so
// they are). Non-comparable implementations fall through to a direct
// computation rather than panicking on the map key.
func (c *Memo) MinCost(f EDFunction, eps float64) float64 {
	if f == nil || !reflect.TypeOf(f).Comparable() {
		return f.MinCost(eps)
	}
	k := memoKey{f, eps}
	if v, ok := c.m.Load(k); ok {
		return v.(float64)
	}
	v := f.MinCost(eps)
	c.m.Store(k, v)
	return v
}

// Reset empties the memo. Callers invalidate whenever the mapping behind
// an ED-function value could have changed — in this package it cannot
// (the key embeds every parameter), so Reset exists for the higher-level
// caches that key by graph coordinates instead.
func (c *Memo) Reset() {
	c.m.Range(func(k, _ any) bool {
		c.m.Delete(k)
		return true
	})
}

// Len reports the number of memoized entries (for tests and stats).
func (c *Memo) Len() int {
	n := 0
	c.m.Range(func(_, _ any) bool { n++; return true })
	return n
}
