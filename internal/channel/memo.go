package channel

import (
	"reflect"
	"sync"
	"sync/atomic"
)

// Memo is a concurrency-safe memoization table for MinCost inversions.
// MinCost is a pure function of the ED-function value and eps, but for
// the Rician and Nakagami models it costs an exponential search plus up
// to 200 bisection steps over special functions — and the auxiliary-graph
// construction, the greedy backbones, and the Steiner search re-query the
// same ψ costs at the same DTS points over and over. The memo turns every
// repeat into one map lookup without changing a single returned bit.
//
// The zero value is ready to use and safe for concurrent use by multiple
// goroutines. Entries are only ever computed from their key, so a racing
// double-compute stores the same value twice — determinism is unaffected
// by scheduling.
type Memo struct {
	m sync.Map // memoKey -> float64
	// hits/misses feed the observability layer's cache metrics. A
	// non-memoizable (non-comparable or nil) ED-function counts as a
	// miss: the caller paid the full inversion either way.
	hits   atomic.Int64
	misses atomic.Int64
}

// MemoStats is a point-in-time view of the memo's effectiveness.
type MemoStats struct {
	// Hits and Misses count MinCost calls answered from / absent from
	// the table since construction or the last Reset.
	Hits, Misses int64
	// Size is the current number of memoized entries.
	Size int64
}

// Stats returns the memo's hit/miss/size counters. Safe for concurrent
// use with MinCost and Reset; the three numbers are individually atomic
// but not mutually consistent under concurrent writes (good enough for
// metrics, which is all this feeds).
func (c *Memo) Stats() MemoStats {
	return MemoStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Size:   int64(c.Len()),
	}
}

type memoKey struct {
	f   EDFunction
	eps float64
}

// MinCost returns f.MinCost(eps), memoized when the concrete ED-function
// type is comparable (all models in this package are value structs, so
// they are). Non-comparable implementations fall through to a direct
// computation rather than panicking on the map key.
func (c *Memo) MinCost(f EDFunction, eps float64) float64 {
	if f == nil || !reflect.TypeOf(f).Comparable() {
		c.misses.Add(1)
		return f.MinCost(eps)
	}
	k := memoKey{f, eps}
	if v, ok := c.m.Load(k); ok {
		c.hits.Add(1)
		return v.(float64)
	}
	c.misses.Add(1)
	v := f.MinCost(eps)
	c.m.Store(k, v)
	return v
}

// Reset empties the memo and zeroes its hit/miss statistics — a reset
// memo is indistinguishable from a fresh one, so stats from before an
// invalidation cannot leak into the next run's cache-effectiveness
// numbers. Callers invalidate whenever the mapping behind an ED-function
// value could have changed — in this package it cannot (the key embeds
// every parameter), so Reset exists for the higher-level caches that key
// by graph coordinates instead.
func (c *Memo) Reset() {
	c.m.Range(func(k, _ any) bool {
		c.m.Delete(k)
		return true
	})
	c.hits.Store(0)
	c.misses.Store(0)
}

// Len reports the number of memoized entries (for tests and stats).
func (c *Memo) Len() int {
	n := 0
	c.m.Range(func(_, _ any) bool { n++; return true })
	return n
}
