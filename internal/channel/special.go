package channel

import "math"

// Special functions needed by the fading ED-functions. Implementations
// follow the classic series / continued-fraction expansions; only the
// standard library is used.

// regIncGammaP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x >= 0.
func regIncGammaP(a, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case a <= 0:
		return 1
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

// gammaSeries evaluates P(a, x) by its power series (converges fast for
// x < a+1).
func gammaSeries(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedFraction evaluates Q(a, x) = 1 - P(a, x) by the Lentz
// continued fraction (converges fast for x >= a+1).
func gammaContinuedFraction(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// chi2EvenCDF computes the CDF of a central chi-square variable with an
// even number 2m of degrees of freedom at y:
//
//	P(χ²_{2m} <= y) = 1 - e^{-y/2} Σ_{i<m} (y/2)^i / i!
func chi2EvenCDF(y float64, m int) float64 {
	if y <= 0 {
		return 0
	}
	h := y / 2
	// For large h the closed form multiplies an underflowing exp(-h) by
	// an overflowing series (0·Inf = NaN); the regularized gamma
	// evaluation is robust there, and P(χ²_{2m} <= y) = P(m, y/2).
	if h > 700 || m > 50 {
		return regIncGammaP(float64(m), h)
	}
	term := 1.0
	sum := 1.0
	for i := 1; i < m; i++ {
		term *= h / float64(i)
		sum += term
	}
	v := 1 - math.Exp(-h)*sum
	if v < 0 {
		return 0
	}
	return v
}

// noncentralChi2CDF computes the CDF of a noncentral chi-square variable
// with even dof degrees of freedom and noncentrality lambda at y, via the
// Poisson mixture of central chi-square CDFs:
//
//	P(χ'²_{dof}(λ) <= y) = Σ_j pois(j; λ/2) · P(χ²_{dof+2j} <= y)
//
// dof must be even and positive. 1 - Q_{dof/2}(√λ, √y) equals this CDF,
// which is how the Rician ED-function uses it.
func noncentralChi2CDF(y float64, dof int, lambda float64) float64 {
	if y <= 0 {
		return 0
	}
	if lambda <= 0 {
		return chi2EvenCDF(y, dof/2)
	}
	half := lambda / 2
	// Start the Poisson series at its mode for numerical robustness.
	mode := int(half)
	logPois := func(j int) float64 {
		lg, _ := math.Lgamma(float64(j) + 1)
		return -half + float64(j)*math.Log(half) - lg
	}
	sum := 0.0
	// Walk outward from the mode until terms vanish.
	for dir := 0; dir < 2; dir++ {
		j := mode
		if dir == 1 {
			j = mode - 1
		}
		for ; j >= 0; j = nextJ(j, dir) {
			w := math.Exp(logPois(j))
			if w < 1e-18 && j != mode {
				break
			}
			sum += w * chi2EvenCDF(y, dof/2+j)
			if dir == 0 && j > mode+10000 {
				break
			}
		}
	}
	if sum > 1 {
		return 1
	}
	return sum
}

func nextJ(j, dir int) int {
	if dir == 0 {
		return j + 1
	}
	return j - 1
}
