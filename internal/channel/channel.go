// Package channel implements the energy-demand (ED) functions of §III-C:
// probabilistic channel models mapping a transmission cost w to the
// probability that the receiver fails to decode the packet.
//
// An ED-function φ obeys Property 3.1 of the paper: it is non-increasing
// in w, φ(w) = 1 for all w when the link is absent, φ(0) = 1, and
// φ(w) → 0 as w → ∞ for a present link. The package provides the step
// ED-function for static channels (Eq. 2), the Rayleigh fading
// ED-function (Eq. 5), and Rician / Nakagami-m extensions (footnote 1 of
// the paper), all sharing one interface.
package channel

import (
	"fmt"
	"math"
)

// EDFunction is an energy-demand function φ: cost → failure probability.
type EDFunction interface {
	// FailureProb returns φ(w), the probability that a single
	// transmission at cost w is NOT decoded by the receiver.
	FailureProb(w float64) float64

	// MinCost returns the smallest cost w such that φ(w) <= eps, or
	// +Inf if no finite cost achieves it (absent link). eps must be in
	// (0, 1).
	MinCost(eps float64) float64
}

// Absent is the ED-function of a non-existent link: every transmission
// fails regardless of cost (Property 3.1 (iii)).
type Absent struct{}

// FailureProb always returns 1.
func (Absent) FailureProb(float64) float64 { return 1 }

// MinCost always returns +Inf.
func (Absent) MinCost(float64) float64 { return math.Inf(1) }

func (Absent) String() string { return "absent" }

// Step is the static-channel ED-function of Eq. 2: the transmission
// succeeds deterministically iff the cost reaches the minimum cost
// Threshold = N0·γth/h, where h is the (constant) propagation gain.
type Step struct {
	// Threshold is the minimum cost N0·γth/h for successful decoding.
	Threshold float64
}

// FailureProb returns 0 when w >= Threshold and 1 otherwise.
func (s Step) FailureProb(w float64) float64 {
	if w >= s.Threshold && w > 0 {
		return 0
	}
	return 1
}

// MinCost returns the threshold: the step function jumps from 1 to 0
// there, so any eps < 1 requires exactly Threshold.
func (s Step) MinCost(float64) float64 { return s.Threshold }

func (s Step) String() string { return fmt.Sprintf("step(%.3g)", s.Threshold) }

// Rayleigh is the Rayleigh fading ED-function of Eq. 5:
//
//	φ(w) = 1 - exp(-β/w),  β = N0·γth·d^α
//
// where d is the sender-receiver distance and α the path-loss exponent.
type Rayleigh struct {
	// Beta is N0·γth/d^{-α} = N0·γth·d^α (joules).
	Beta float64
}

// FailureProb returns 1 - exp(-β/w); φ(0) = 1 by convention (footnote 2).
func (r Rayleigh) FailureProb(w float64) float64 {
	if w <= 0 {
		return 1
	}
	return -math.Expm1(-r.Beta / w)
}

// MinCost inverts Eq. 5: w = β / ln(1/(1-eps)).
func (r Rayleigh) MinCost(eps float64) float64 {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("channel: MinCost eps %g outside (0,1)", eps))
	}
	return r.Beta / math.Log(1/(1-eps))
}

func (r Rayleigh) String() string { return fmt.Sprintf("rayleigh(β=%.3g)", r.Beta) }

// Nakagami is the Nakagami-m fading ED-function (footnote 1): the channel
// power |h|² follows a Gamma(m, 1/m) law with unit mean, so
//
//	φ(w) = P(m, m·β/w)
//
// where P is the regularized lower incomplete gamma function. m = 1
// recovers the Rayleigh ED-function.
type Nakagami struct {
	// M is the Nakagami fading figure (m >= 0.5).
	M float64
	// Beta is N0·γth·d^α, as for Rayleigh.
	Beta float64
}

// FailureProb returns P(m, m·β/w).
func (n Nakagami) FailureProb(w float64) float64 {
	if w <= 0 {
		return 1
	}
	return regIncGammaP(n.M, n.M*n.Beta/w)
}

// MinCost solves φ(w) = eps by bisection on the monotone φ.
func (n Nakagami) MinCost(eps float64) float64 { return invertMonotone(n, eps) }

func (n Nakagami) String() string { return fmt.Sprintf("nakagami(m=%.3g,β=%.3g)", n.M, n.Beta) }

// Rician is the Rician fading ED-function (footnote 1): the channel has a
// line-of-sight component with Rice factor K, so with unit mean power
//
//	φ(w) = 1 - Q₁(√(2K), √(2(K+1)·β/w))
//
// where Q₁ is the first-order Marcum Q function, evaluated here through
// the noncentral chi-square CDF. K = 0 recovers the Rayleigh ED-function.
type Rician struct {
	// K is the Rice factor: LOS power over scattered power.
	K float64
	// Beta is N0·γth·d^α, as for Rayleigh.
	Beta float64
}

// FailureProb returns the noncentral chi-square CDF with 2 degrees of
// freedom, noncentrality 2K, evaluated at 2(K+1)·β/w.
func (r Rician) FailureProb(w float64) float64 {
	if w <= 0 {
		return 1
	}
	x := r.Beta / w
	return noncentralChi2CDF(2*(r.K+1)*x, 2, 2*r.K)
}

// MinCost solves φ(w) = eps by bisection on the monotone φ.
func (r Rician) MinCost(eps float64) float64 { return invertMonotone(r, eps) }

func (r Rician) String() string { return fmt.Sprintf("rician(K=%.3g,β=%.3g)", r.K, r.Beta) }

// invertMonotone finds the smallest w with f.FailureProb(w) <= eps by
// exponential search followed by bisection. It relies on Property 3.1
// (iv): φ is non-increasing.
func invertMonotone(f EDFunction, eps float64) float64 {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("channel: MinCost eps %g outside (0,1)", eps))
	}
	lo, hi := 0.0, 1e-30
	for f.FailureProb(hi) > eps {
		lo = hi
		hi *= 2
		if math.IsInf(hi, 1) {
			return math.Inf(1)
		}
	}
	for i := 0; i < 200 && hi-lo > hi*1e-12; i++ {
		mid := (lo + hi) / 2
		if f.FailureProb(mid) <= eps {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// Validate checks Property 3.1 for f over the cost range [wmin, wmax] by
// sampling: φ must be non-increasing and stay within [0, 1]. It returns
// a descriptive error on the first violation.
func Validate(f EDFunction, wmin, wmax float64, samples int) error {
	if samples < 2 {
		samples = 2
	}
	prev := math.Inf(1)
	for i := 0; i < samples; i++ {
		w := wmin + (wmax-wmin)*float64(i)/float64(samples-1)
		p := f.FailureProb(w)
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("channel: φ(%g) = %g outside [0,1]", w, p)
		}
		if p > prev+1e-9 {
			return fmt.Errorf("channel: φ increasing at w=%g (%g > %g)", w, p, prev)
		}
		prev = p
	}
	return nil
}
