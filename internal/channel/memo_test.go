package channel

import (
	"sync"
	"testing"
)

func TestMemoStatsHitMiss(t *testing.T) {
	var m Memo
	ed := Rayleigh{Beta: 1e-15}
	want := ed.MinCost(0.01)
	if got := m.MinCost(ed, 0.01); got != want {
		t.Fatalf("first MinCost = %g, want %g", got, want)
	}
	if got := m.MinCost(ed, 0.01); got != want {
		t.Fatalf("memoized MinCost = %g, want %g", got, want)
	}
	m.MinCost(ed, 0.02) // different eps: its own entry
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Size != 2 {
		t.Fatalf("stats = %+v, want hits=1 misses=2 size=2", st)
	}
}

func TestMemoStatsCountNonComparableAsMiss(t *testing.T) {
	var m Memo
	// A pointer-typed ED-function is comparable (pointer identity), but a
	// nil interface short-circuits before the type check only via f==nil;
	// exercise the non-comparable branch with a func-backed implementation.
	m.MinCost(funcED(func(eps float64) float64 { return eps * 2 }), 0.5)
	st := m.Stats()
	if st.Hits != 0 || st.Misses != 1 || st.Size != 0 {
		t.Fatalf("non-memoizable call stats = %+v, want one uncached miss", st)
	}
}

// funcED adapts a func to EDFunction; func types are non-comparable, so
// the memo must fall through to direct computation.
type funcED func(eps float64) float64

func (f funcED) FailureProb(w float64) float64 { return 1 }
func (f funcED) MinCost(eps float64) float64   { return f(eps) }

func TestMemoResetClearsEntriesAndStats(t *testing.T) {
	var m Memo
	ed := Rayleigh{Beta: 2e-15}
	m.MinCost(ed, 0.01)
	m.MinCost(ed, 0.01)
	m.Reset()
	if st := m.Stats(); st != (MemoStats{}) {
		t.Fatalf("stats after Reset = %+v, want zero", st)
	}
	if m.Len() != 0 {
		t.Fatalf("entries after Reset = %d", m.Len())
	}
	// A fresh miss after Reset recomputes and counts from zero.
	m.MinCost(ed, 0.01)
	if st := m.Stats(); st.Hits != 0 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats after Reset+miss = %+v", st)
	}
}

func TestMemoStatsConcurrent(t *testing.T) {
	var m Memo
	eds := []EDFunction{
		Rayleigh{Beta: 1e-15},
		Rayleigh{Beta: 2e-15},
		Rayleigh{Beta: 3e-15},
		Rayleigh{Beta: 4e-15},
	}
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ed := eds[(w+i)%len(eds)]
				got := m.MinCost(ed, 0.01)
				if want := ed.MinCost(0.01); got != want {
					t.Errorf("concurrent MinCost = %g, want %g", got, want)
					return
				}
				if i%100 == 99 {
					m.Stats() // reads race-free against writes
				}
			}
		}(w)
	}
	wg.Wait()
	st := m.Stats()
	if st.Hits+st.Misses != workers*iters {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, workers*iters)
	}
	// Racing first computations may store the same key more than once,
	// but the table can never exceed the distinct-key count, and after
	// this many iterations every key must be present.
	if st.Size != int64(len(eds)) {
		t.Fatalf("size = %d, want %d", st.Size, len(eds))
	}
	if st.Misses < int64(len(eds)) || st.Misses >= workers*iters {
		t.Fatalf("misses = %d outside (%d, %d)", st.Misses, len(eds), workers*iters)
	}
}
