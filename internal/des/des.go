// Package des implements a small deterministic discrete-event simulation
// engine: a future-event list ordered by (time, insertion sequence) with
// support for cancelling pending events. It is the execution substrate
// for the airtime-accurate broadcast executor in des/exec.go, and is
// generic enough for any continuous-time protocol experiment on top of
// the TVEG model.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Action is a scheduled callback; it runs with the simulation clock set
// to its firing time.
type Action func(now float64)

// EventID identifies a scheduled event for cancellation.
type EventID int64

type event struct {
	t      float64
	class  int
	seq    int64
	id     EventID
	action Action
	dead   bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	//tmedbvet:ignore floateq event-heap comparator: the (t, class, seq) total order must compare times bitwise to stay deterministic
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	if q[i].class != q[j].class {
		return q[i].class < q[j].class // lower class first at equal times
	}
	return q[i].seq < q[j].seq // FIFO among simultaneous same-class events
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Sim is one simulation run. The zero value is not usable; create with
// New.
type Sim struct {
	now     float64
	seq     int64
	nextID  EventID
	queue   eventQueue
	pending map[EventID]*event
	steps   int
}

// New creates an empty simulation starting at time 0.
func New() *Sim {
	return &Sim{pending: make(map[EventID]*event)}
}

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() int { return s.steps }

// At schedules action to run at time t (>= Now) in the default class 0.
// Events scheduled for the same instant run by (class, scheduling
// order).
func (s *Sim) At(t float64, action Action) EventID {
	return s.AtClass(t, 0, action)
}

// AtClass schedules action at time t in the given class: at equal
// times, lower classes run first. The broadcast executor uses class 0
// for reception completions and class 1 for transmission starts, so a
// packet received at instant t is available to forward at t.
func (s *Sim) AtClass(t float64, class int, action Action) EventID {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling at %g before now %g", t, s.now))
	}
	if action == nil {
		panic("des: nil action")
	}
	s.seq++
	s.nextID++
	e := &event{t: t, class: class, seq: s.seq, id: s.nextID, action: action}
	heap.Push(&s.queue, e)
	s.pending[e.id] = e
	return e.id
}

// After schedules action delay seconds from now (class 0).
func (s *Sim) After(delay float64, action Action) EventID {
	return s.At(s.now+delay, action)
}

// Cancel removes a pending event. Cancelling an already-fired or unknown
// event is a no-op returning false.
func (s *Sim) Cancel(id EventID) bool {
	e, ok := s.pending[id]
	if !ok {
		return false
	}
	e.dead = true
	delete(s.pending, id)
	return true
}

// Run executes events in order until the queue empties or the clock
// would pass `until`. It returns the number of events executed in this
// call. Events scheduled exactly at `until` still run.
func (s *Sim) Run(until float64) int {
	ran := 0
	for s.queue.Len() > 0 {
		e := s.queue[0]
		if e.dead {
			heap.Pop(&s.queue)
			continue
		}
		if e.t > until {
			break
		}
		heap.Pop(&s.queue)
		delete(s.pending, e.id)
		s.now = e.t
		e.action(s.now)
		s.steps++
		ran++
	}
	if s.queue.Len() == 0 && s.now < until && !math.IsInf(until, 1) {
		s.now = until
	}
	return ran
}

// RunAll executes every pending event (including those scheduled by
// earlier events) and returns the count.
func (s *Sim) RunAll() int { return s.Run(math.Inf(1)) }

// Pending returns the number of live scheduled events.
func (s *Sim) Pending() int { return len(s.pending) }
