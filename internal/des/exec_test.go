package des

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/interference"
	"repro/internal/interval"
	"repro/internal/schedule"
	"repro/internal/tveg"
)

func iv(a, b float64) interval.Interval { return interval.Interval{Start: a, End: b} }

func chain() *tveg.Graph {
	g := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(0, 100), 5)
	g.AddContact(1, 2, iv(0, 100), 8)
	return g
}

func sufficient(g *tveg.Graph, d float64) float64 {
	return g.Params.NoiseGamma() * d * d
}

func TestExecuteChainTimestamps(t *testing.T) {
	g := chain()
	s := schedule.Schedule{
		{Relay: 0, T: 10, W: sufficient(g, 5)},
		{Relay: 1, T: 20, W: sufficient(g, 8)},
	}
	res, err := Execute(g, s, 0, 0, ExecOptions{Airtime: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 3 {
		t.Fatalf("delivered %d, want 3 (informedAt=%v)", res.Delivered, res.InformedAt)
	}
	// receptions land at transmission start + airtime
	if res.InformedAt[1] != 11 || res.InformedAt[2] != 21 {
		t.Errorf("InformedAt = %v, want [0 11 21]", res.InformedAt)
	}
	want := sufficient(g, 5) + sufficient(g, 8)
	if math.Abs(res.ConsumedEnergy-want) > 1e-24 {
		t.Errorf("energy = %g, want %g", res.ConsumedEnergy, want)
	}
}

func TestExecuteSkipsUninformedRelay(t *testing.T) {
	g := chain()
	s := schedule.Schedule{{Relay: 1, T: 20, W: sufficient(g, 8)}}
	res, err := Execute(g, s, 0, 0, ExecOptions{Airtime: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 || res.ConsumedEnergy != 0 {
		t.Errorf("res = %+v, want source-only with zero energy", res)
	}
}

func TestExecuteAirtimeBlocksSameSlotForwarding(t *testing.T) {
	g := chain()
	// both transmissions at t=10: with 1 s airtime, node 1 receives at
	// 11, so its own transmission at 10 must be skipped
	s := schedule.Schedule{
		{Relay: 0, T: 10, W: sufficient(g, 5)},
		{Relay: 1, T: 10, W: sufficient(g, 8)},
	}
	res, err := Execute(g, s, 0, 0, ExecOptions{Airtime: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 2 {
		t.Errorf("delivered %d, want 2 (relay can't forward mid-airtime)", res.Delivered)
	}
}

func TestExecuteCollision(t *testing.T) {
	// hidden terminal: 1 and 3 transmit simultaneously, 2 hears both
	g := tveg.New(4, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(0, 100), 5)
	g.AddContact(0, 3, iv(0, 100), 5)
	g.AddContact(1, 2, iv(0, 100), 5)
	g.AddContact(3, 2, iv(0, 100), 5)
	w := sufficient(g, 5)
	s := schedule.Schedule{
		{Relay: 0, T: 1, W: w}, // informs 1 and 3
		{Relay: 1, T: 10, W: w},
		{Relay: 3, T: 10, W: w},
	}
	res, err := Execute(g, s, 0, 0, ExecOptions{Airtime: 1, Interference: true}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.InformedAt[2] < inf {
		t.Errorf("node 2 informed at %g despite collision", res.InformedAt[2])
	}
	if res.Collisions == 0 {
		t.Error("collision not counted")
	}
	// without interference modelling node 2 decodes
	res, err = Execute(g, s, 0, 0, ExecOptions{Airtime: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.InformedAt[2] >= inf {
		t.Error("node 2 should decode without the interference model")
	}
}

func TestExecutePartialOverlapCorrupts(t *testing.T) {
	// second transmitter starts mid-airtime of the first: the ongoing
	// reception at the shared receiver is corrupted
	g := tveg.New(4, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(0, 100), 5)
	g.AddContact(0, 3, iv(0, 100), 5)
	g.AddContact(1, 2, iv(0, 100), 5)
	g.AddContact(3, 2, iv(0, 100), 5)
	w := sufficient(g, 5)
	s := schedule.Schedule{
		{Relay: 0, T: 1, W: w},
		{Relay: 1, T: 10, W: w},
		{Relay: 3, T: 10.5, W: w}, // overlaps [10,11)
	}
	res, err := Execute(g, s, 0, 0, ExecOptions{Airtime: 1, Interference: true}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.InformedAt[2] < inf {
		t.Errorf("node 2 informed at %g despite partial-overlap collision", res.InformedAt[2])
	}
}

func TestExecuteInterferenceNeedsAirtime(t *testing.T) {
	g := chain()
	if _, err := Execute(g, nil, 0, 0, ExecOptions{Interference: true}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("interference with zero airtime should error")
	}
}

func TestExecuteAgreesWithSimOnFading(t *testing.T) {
	// statistical cross-check against the closed-form executor on a
	// single-hop fading link
	g := tveg.New(2, iv(0, 100), 0, tveg.DefaultParams(), tveg.RayleighFading)
	g.AddContact(0, 1, iv(0, 100), 5)
	w := g.EDAt(0, 1, 10).MinCost(0.4)
	s := schedule.Schedule{{Relay: 0, T: 10, W: w}}
	hits := 0
	const trials = 20000
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < trials; i++ {
		res, err := Execute(g, s, 0, 0, ExecOptions{Airtime: 0.001}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered == 2 {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.6) > 0.02 {
		t.Errorf("success rate %g, want ≈ 0.6", got)
	}
}

func TestExecuteEEDCBScheduleEndToEnd(t *testing.T) {
	g := chain()
	s, err := (core.EEDCB{}).Schedule(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	// τ=0 plans put whole relay chains on one instant; under a real
	// airtime the relay cannot decode and forward simultaneously, so the
	// raw schedule loses the tail of the chain...
	raw, err := Execute(g, s, 0, 0, ExecOptions{Airtime: 0.01}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if raw.Delivered != 2 {
		t.Fatalf("raw schedule delivered %d, want 2 (chain tail lost to airtime)", raw.Delivered)
	}
	// ...and the interference serializer is exactly the repair step.
	fixed, err := interference.Serialize(g, s, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(g, fixed, 0, 0, ExecOptions{Airtime: 0.01}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 3 {
		t.Errorf("serialized EEDCB schedule delivered %d/3 under DES execution", res.Delivered)
	}
}

// TestExecuteIndependentReceptionsNoInterference: with the collision
// model off, concurrently audible transmissions must not fight over a
// capture slot — each reception gets its own φ draw. v1 is informed
// early, then v0 (cost 0, φ = 1: guaranteed failure) and v1 (sufficient
// cost) transmit with overlapping airtimes; v2 must still decode v1's
// packet. The pre-fix engine let v0's doomed reception occupy v2's
// capture slot and dropped v1's.
func TestExecuteIndependentReceptionsNoInterference(t *testing.T) {
	g := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(0, 100), 5)
	g.AddContact(0, 2, iv(0, 100), 8)
	g.AddContact(1, 2, iv(0, 100), 8)
	s := schedule.Schedule{
		{Relay: 0, T: 2, W: sufficient(g, 5)},    // informs v1 at 3
		{Relay: 0, T: 10, W: 0},                  // fires; φ=1 at both receivers
		{Relay: 1, T: 10.5, W: sufficient(g, 8)}, // overlaps v0's airtime
	}
	res, err := Execute(g, s, 0, 0, ExecOptions{Airtime: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 3 {
		t.Fatalf("delivered %d, want 3 (receptions are independent without interference)", res.Delivered)
	}
	if res.InformedAt[2] != 11.5 {
		t.Errorf("v2 informed at %g, want 11.5 (end of v1's airtime)", res.InformedAt[2])
	}
	// The same overlap WITH the collision model is a genuine collision:
	// that difference is the feature the interference option models.
	res, err = Execute(g, s, 0, 0, ExecOptions{Airtime: 1, Interference: true}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 2 {
		t.Errorf("with interference: delivered %d, want 2 (v2 lost to the collision)", res.Delivered)
	}
	if res.Collisions == 0 {
		t.Error("with interference: expected at least one collision")
	}
}
