package des

import (
	"fmt"
	"math/rand"

	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Airtime-accurate broadcast execution: every transmission occupies the
// channel for a configurable airtime, receivers track the set of
// concurrently audible transmitters, and a packet decodes only if its
// transmitter was the sole audible one for the whole airtime (protocol
// interference model) — or independently-with-φ when interference
// modelling is disabled. Compared to the closed-form executor in
// internal/sim, this one yields per-node reception timestamps and honors
// τ > 0 naturally. Relay gating follows the unified τ-propagation rule
// (schedule.Informs / DESIGN.md "Execution semantics"): a node may
// forward only once its own reception has completed.

// ExecOptions tunes one execution.
type ExecOptions struct {
	// Airtime is the channel occupancy of one packet (seconds). Zero
	// uses the graph's τ, and if that is also zero a minimal slot is
	// required when Interference is on.
	Airtime float64
	// Interference enables the protocol collision model.
	Interference bool
	// Obs counts des.tx_fired / des.tx_skipped / des.rx / des.rx_failed /
	// des.collisions / des.delivered across executions. Write-only; nil
	// records nothing and realizations are identical either way.
	Obs *obs.Recorder
}

// ExecResult reports one realization.
type ExecResult struct {
	// InformedAt holds each node's reception time (+Inf when never
	// informed; the source is informed at the start time).
	InformedAt []float64
	// Delivered counts informed nodes (source included).
	Delivered int
	// ConsumedEnergy sums the costs of transmissions that fired.
	ConsumedEnergy float64
	// Collisions counts receptions lost to interference.
	Collisions int
}

// Execute runs the schedule once on g from src, with transmissions
// released at their scheduled times (a transmission whose relay lacks
// the packet at its start time is skipped). Deterministic per rng.
func Execute(g *tveg.Graph, s schedule.Schedule, src tvg.NodeID, start float64, opts ExecOptions, rng *rand.Rand) (ExecResult, error) {
	airtime := opts.Airtime
	if airtime == 0 {
		airtime = g.Tau()
	}
	if airtime == 0 && opts.Interference {
		return ExecResult{}, fmt.Errorf("des: interference model needs a positive airtime")
	}

	txFired := opts.Obs.Counter("des.tx_fired")
	txSkipped := opts.Obs.Counter("des.tx_skipped")
	rxOK := opts.Obs.Counter("des.rx")
	rxFailed := opts.Obs.Counter("des.rx_failed")

	n := g.N()
	res := ExecResult{InformedAt: make([]float64, n)}
	for i := range res.InformedAt {
		res.InformedAt[i] = inf
	}
	res.InformedAt[src] = start

	// audible[j] = number of concurrently audible transmitters at j;
	// corrupted[j] marks an ongoing candidate reception that lost to a
	// second transmitter.
	audible := make([]int, n)
	type reception struct {
		from      tvg.NodeID
		w         float64
		t         float64 // transmission start
		corrupted bool
	}
	current := make([]*reception, n)

	sim := New()
	ordered := make(schedule.Schedule, len(s))
	copy(ordered, s)
	ordered.SortByTime()

	// Transmission starts run in class 1 so that reception completions
	// (class 0) landing at the same instant are visible to them.
	for _, x := range ordered {
		x := x
		sim.AtClass(x.T, 1, func(now float64) {
			if res.InformedAt[x.Relay] > now+schedule.TimeTol {
				txSkipped.Inc()
				return // relay's own reception incomplete: transmission skipped
			}
			txFired.Inc()
			res.ConsumedEnergy += x.W
			if !opts.Interference {
				// Without the collision model, receptions are independent:
				// each in-range node that lacks the packet when this
				// airtime ends gets its own φ draw. A concurrent
				// transmission must not mask this one — radios here have
				// no capture slot to fight over.
				sim.After(airtime, func(end float64) {
					for _, j := range g.EverNeighbors(x.Relay) {
						if !g.RhoTau(x.Relay, j, x.T) {
							continue
						}
						if res.InformedAt[j] <= end {
							continue
						}
						failure := g.EDAt(x.Relay, j, x.T).FailureProb(x.W)
						if failure <= 0 || rng.Float64() >= failure {
							rxOK.Inc()
							res.InformedAt[j] = end
						} else {
							rxFailed.Inc()
						}
					}
				})
				return
			}
			// mark the channel busy at every in-range node
			for _, j := range g.EverNeighbors(x.Relay) {
				if !g.RhoTau(x.Relay, j, x.T) {
					continue
				}
				audible[j]++
				if audible[j] > 1 {
					// collision: corrupt any ongoing reception too
					if cur := current[j]; cur != nil && !cur.corrupted {
						cur.corrupted = true
						res.Collisions++
					}
				}
				if res.InformedAt[j] <= now {
					continue // already has the packet
				}
				if current[j] == nil {
					rec := &reception{from: x.Relay, w: x.W, t: x.T}
					if audible[j] > 1 {
						rec.corrupted = true
						res.Collisions++
					}
					current[j] = rec
				}
			}
			// end of this transmission's airtime
			sim.After(airtime, func(end float64) {
				for _, j := range g.EverNeighbors(x.Relay) {
					if !g.RhoTau(x.Relay, j, x.T) {
						continue
					}
					audible[j]--
					cur := current[j]
					if cur == nil || cur.from != x.Relay {
						continue
					}
					current[j] = nil
					if cur.corrupted {
						continue
					}
					if res.InformedAt[j] <= end {
						continue
					}
					failure := g.EDAt(cur.from, j, cur.t).FailureProb(cur.w)
					if failure <= 0 || rng.Float64() >= failure {
						rxOK.Inc()
						res.InformedAt[j] = end
					} else {
						rxFailed.Inc()
					}
				}
			})
		})
	}
	sim.RunAll()
	for _, t := range res.InformedAt {
		if t < inf {
			res.Delivered++
		}
	}
	opts.Obs.Counter("des.collisions").Add(int64(res.Collisions))
	opts.Obs.Counter("des.delivered").Add(int64(res.Delivered))
	return res, nil
}

const inf = 1e308
