package des

import (
	"math"
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(5, func(float64) { order = append(order, 2) })
	s.At(1, func(float64) { order = append(order, 1) })
	s.At(9, func(float64) { order = append(order, 3) })
	if n := s.RunAll(); n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Errorf("order = %v", order)
		}
	}
	if s.Now() != 9 {
		t.Errorf("Now = %g, want 9", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(3, func(float64) { order = append(order, i) })
	}
	s.RunAll()
	for i := range order {
		if order[i] != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	s := New()
	var fired []float64
	s.At(1, func(now float64) {
		fired = append(fired, now)
		s.After(2, func(now float64) { fired = append(fired, now) })
	})
	s.RunAll()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Errorf("fired = %v, want [1 3]", fired)
	}
}

func TestRunUntilStops(t *testing.T) {
	s := New()
	ran := 0
	s.At(1, func(float64) { ran++ })
	s.At(5, func(float64) { ran++ })
	s.At(10, func(float64) { ran++ })
	if n := s.Run(5); n != 2 {
		t.Errorf("Run(5) executed %d, want 2 (event at exactly 5 runs)", n)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.RunAll()
	if ran != 3 {
		t.Errorf("total = %d, want 3", ran)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	id := s.At(1, func(float64) { ran = true })
	if !s.Cancel(id) {
		t.Fatal("Cancel returned false")
	}
	if s.Cancel(id) {
		t.Error("double Cancel should return false")
	}
	s.RunAll()
	if ran {
		t.Error("cancelled event ran")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(5, func(float64) {})
	s.Run(math.Inf(1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for scheduling in the past")
		}
	}()
	s.At(1, func(float64) {})
}

func TestNilActionPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil action")
		}
	}()
	s.At(1, nil)
}

func TestRunAdvancesClockToUntil(t *testing.T) {
	s := New()
	s.Run(42)
	if s.Now() != 42 {
		t.Errorf("Now = %g, want 42", s.Now())
	}
}

func TestStepsCounter(t *testing.T) {
	s := New()
	s.At(1, func(float64) {})
	s.At(2, func(float64) {})
	s.RunAll()
	if s.Steps() != 2 {
		t.Errorf("Steps = %d, want 2", s.Steps())
	}
}

func TestClassOrderingAtEqualTimes(t *testing.T) {
	s := New()
	var order []string
	s.AtClass(5, 1, func(float64) { order = append(order, "start") })
	s.AtClass(5, 0, func(float64) { order = append(order, "end") })
	s.RunAll()
	if len(order) != 2 || order[0] != "end" || order[1] != "start" {
		t.Errorf("order = %v, want [end start]", order)
	}
}
