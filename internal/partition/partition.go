// Package partition implements partitions of a time span (Definition 5.1
// of the paper): finite ordered sequences of time points
// 0 = t_0 < t_1 < ... < t_m = T whose consecutive pairs form the
// intervals [t_k, t_{k+1}). The combination operator (Eq. 8) merges the
// points of several partitions into one.
package partition

import (
	"fmt"
	"sort"
)

// Eps is the tolerance under which two time points are considered equal
// when combining partitions. Contact traces carry second-resolution
// timestamps, so 1e-9 is far below any meaningful gap.
const Eps = 1e-9

// Partition is a sorted sequence of strictly increasing time points.
// A valid partition has at least two points (the span endpoints).
type Partition struct {
	pts []float64
}

// New builds a partition of the span [start, end] from the given interior
// points. Points outside (start, end) are dropped, duplicates (within
// Eps) are merged, and the endpoints are always included.
func New(start, end float64, interior ...float64) Partition {
	if end < start {
		panic(fmt.Sprintf("partition: end %g before start %g", end, start))
	}
	pts := make([]float64, 0, len(interior)+2)
	pts = append(pts, start)
	sorted := append([]float64(nil), interior...)
	sort.Float64s(sorted)
	for _, p := range sorted {
		if p <= start+Eps || p >= end-Eps {
			continue
		}
		if p-pts[len(pts)-1] > Eps {
			pts = append(pts, p)
		}
	}
	if end > start {
		pts = append(pts, end)
	}
	return Partition{pts}
}

// Points returns the time points of the partition. The returned slice
// must not be modified.
func (p Partition) Points() []float64 { return p.pts }

// Len returns the number of time points.
func (p Partition) Len() int { return len(p.pts) }

// NumIntervals returns the number of intervals [t_k, t_{k+1}).
func (p Partition) NumIntervals() int {
	if len(p.pts) < 2 {
		return 0
	}
	return len(p.pts) - 1
}

// Span returns the start and end of the partitioned time span.
func (p Partition) Span() (start, end float64) {
	if len(p.pts) == 0 {
		return 0, 0
	}
	return p.pts[0], p.pts[len(p.pts)-1]
}

// Interval returns the k-th interval [t_k, t_{k+1}).
func (p Partition) Interval(k int) (start, end float64) {
	return p.pts[k], p.pts[k+1]
}

// IndexOf returns the index k of the interval [t_k, t_{k+1}) containing
// t, or -1 if t is outside the span. The final point t_m is treated as
// belonging to the last interval so queries at the horizon still resolve.
func (p Partition) IndexOf(t float64) int {
	if len(p.pts) < 2 || t < p.pts[0] || t > p.pts[len(p.pts)-1] {
		return -1
	}
	// Find the rightmost point <= t.
	k := sort.SearchFloat64s(p.pts, t)
	if k == len(p.pts) || p.pts[k] > t {
		k--
	}
	if k == len(p.pts)-1 {
		k-- // horizon point belongs to the last interval
	}
	return k
}

// Combine returns the combination (Eq. 8) of the partitions: the
// partition whose points are the union of all input points. All inputs
// must share the same span.
func Combine(parts ...Partition) Partition {
	if len(parts) == 0 {
		return Partition{}
	}
	start, end := parts[0].Span()
	var interior []float64
	for _, p := range parts {
		s, e := p.Span()
		if absDiff(s, start) > Eps || absDiff(e, end) > Eps {
			panic(fmt.Sprintf("partition: combining mismatched spans [%g,%g] and [%g,%g]", start, end, s, e))
		}
		interior = append(interior, p.pts...)
	}
	return New(start, end, interior...)
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func (p Partition) String() string { return fmt.Sprint(p.pts) }
