package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBasic(t *testing.T) {
	p := New(0, 10, 3, 7)
	want := []float64{0, 3, 7, 10}
	if got := p.Points(); len(got) != 4 {
		t.Fatalf("Points = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("Points[%d] = %g, want %g", i, got[i], want[i])
			}
		}
	}
	if p.NumIntervals() != 3 {
		t.Errorf("NumIntervals = %d, want 3", p.NumIntervals())
	}
}

func TestNewDedupAndClip(t *testing.T) {
	p := New(0, 10, 5, 5, 5+1e-12, -3, 12, 0, 10)
	if p.Len() != 3 {
		t.Errorf("Points = %v, want [0 5 10]", p.Points())
	}
}

func TestNewUnsortedInterior(t *testing.T) {
	p := New(0, 10, 8, 2, 6)
	want := []float64{0, 2, 6, 8, 10}
	got := p.Points()
	if len(got) != len(want) {
		t.Fatalf("Points = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Points[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestNewPanicsOnReversedSpan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for end < start")
		}
	}()
	New(5, 1)
}

func TestSpanAndInterval(t *testing.T) {
	p := New(2, 8, 4)
	s, e := p.Span()
	if s != 2 || e != 8 {
		t.Errorf("Span = (%g,%g), want (2,8)", s, e)
	}
	a, b := p.Interval(1)
	if a != 4 || b != 8 {
		t.Errorf("Interval(1) = [%g,%g), want [4,8)", a, b)
	}
}

func TestIndexOf(t *testing.T) {
	p := New(0, 10, 3, 7)
	cases := []struct {
		t    float64
		want int
	}{
		{-1, -1}, {0, 0}, {2.9, 0}, {3, 1}, {6.99, 1}, {7, 2}, {9.5, 2},
		{10, 2}, // horizon belongs to last interval
		{10.5, -1},
	}
	for _, c := range cases {
		if got := p.IndexOf(c.t); got != c.want {
			t.Errorf("IndexOf(%g) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestCombine(t *testing.T) {
	a := New(0, 10, 3)
	b := New(0, 10, 7)
	c := Combine(a, b)
	want := []float64{0, 3, 7, 10}
	got := c.Points()
	if len(got) != len(want) {
		t.Fatalf("Combine = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Combine[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestCombineDedup(t *testing.T) {
	a := New(0, 10, 3, 7)
	b := New(0, 10, 3, 5)
	c := Combine(a, b)
	if c.Len() != 5 {
		t.Errorf("Combine = %v, want [0 3 5 7 10]", c.Points())
	}
}

func TestCombineMismatchedSpansPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched spans")
		}
	}()
	Combine(New(0, 10), New(0, 20))
}

func TestCombineEmpty(t *testing.T) {
	c := Combine()
	if c.Len() != 0 {
		t.Errorf("Combine() = %v, want empty", c.Points())
	}
}

func TestQuickPointsStrictlyIncreasing(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(20)
		interior := make([]float64, n)
		for i := range interior {
			interior[i] = r.Float64() * 100
		}
		p := New(0, 100, interior...)
		pts := p.Points()
		for i := 1; i < len(pts); i++ {
			if pts[i]-pts[i-1] <= Eps {
				return false
			}
		}
		return pts[0] == 0 && pts[len(pts)-1] == 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCombineSupersetOfInputs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() Partition {
			n := r.Intn(10)
			in := make([]float64, n)
			for i := range in {
				in[i] = r.Float64() * 50
			}
			return New(0, 50, in...)
		}
		a, b := mk(), mk()
		c := Combine(a, b)
		contains := func(p Partition, x float64) bool {
			for _, v := range p.Points() {
				if absDiff(v, x) <= Eps {
					return true
				}
			}
			return false
		}
		for _, x := range a.Points() {
			if !contains(c, x) {
				return false
			}
		}
		for _, x := range b.Points() {
			if !contains(c, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIndexOfConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		in := make([]float64, n)
		for i := range in {
			in[i] = r.Float64() * 100
		}
		p := New(0, 100, in...)
		for trial := 0; trial < 20; trial++ {
			x := r.Float64() * 100
			k := p.IndexOf(x)
			if k < 0 {
				return false
			}
			s, e := p.Interval(k)
			if x < s || (x >= e && k != p.NumIntervals()-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
