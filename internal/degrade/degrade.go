// Package degrade is the budget-aware solve orchestrator: it plans a
// broadcast under a total wall-clock budget by walking a deterministic
// ladder of progressively cheaper planners, falling to the next rung
// whenever the current one exhausts its share of the budget.
//
// Every rung plans on the model-true view — the fading-aware planner
// family on fading graphs, the static family on static graphs — so a
// fallback schedule degrades in energy quality, never in feasibility:
// whatever rung answers, the schedule still satisfies the delay bound T
// and the residual-failure bound ε for the nodes it covers. The ladder
// trades the Steiner approximation guarantee (full recursive greedy →
// shortest-path tree → coverage greedy → random relays) for planning
// time, mirroring the EEDCB → GREED → RAND quality ordering of §VII.
//
// Budget policy: the discrete time set (the cheapest artifact, needed by
// every rung) is built once up front under the caller's context and
// reused by every rung (dts.Options.Reuse — the DTS depends only on the
// presence structure, never on the channel model). Each non-final rung
// then receives half of the remaining budget; the final rung runs under
// the caller's context alone, so the orchestrator always produces an
// answer unless the caller's own context dies (the hard stop).
package degrade

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/auxgraph"
	"repro/internal/cancel"
	"repro/internal/core"
	"repro/internal/dts"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Rung is one level of the degradation ladder, ordered from highest
// solution quality (slowest) to lowest (fastest).
type Rung int

const (
	// RungFull is the paper's primary planner at the configured Steiner
	// level: FR-EEDCB on fading graphs, EEDCB on static ones.
	RungFull Rung = iota
	// RungSPT is the same pipeline with the level-1 shortest-path-tree
	// Steiner heuristic — one Dijkstra per terminal instead of the
	// recursive greedy density scan.
	RungSPT
	// RungGreed is the coverage-greedy backbone (GREED / FR-GREED).
	RungGreed
	// RungRand is the random-relay backbone (RAND / FR-RAND), the
	// cheapest planner in the suite.
	RungRand

	numRungs = int(RungRand) + 1
)

// String returns the rung's stable display name (used in schedule meta
// blocks and flag values).
func (r Rung) String() string {
	switch r {
	case RungFull:
		return "full"
	case RungSPT:
		return "spt"
	case RungGreed:
		return "greed"
	case RungRand:
		return "rand"
	default:
		return fmt.Sprintf("rung(%d)", int(r))
	}
}

// ParseRung parses a rung display name ("full", "spt", "greed", "rand").
func ParseRung(s string) (Rung, error) {
	for r := Rung(0); int(r) < numRungs; r++ {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("degrade: unknown rung %q (want full|spt|greed|rand)", s)
}

// DefaultLadder returns the standard quality-ordered ladder.
func DefaultLadder() []Rung { return []Rung{RungFull, RungSPT, RungGreed, RungRand} }

// ShedTo trims a ladder for load shedding: it returns the suffix
// starting at the first rung whose quality is at or below r (rungs are
// ordered best-first, so shedding drops the expensive prefix). When
// every rung in the ladder is better than r, the last rung — the rung of
// last resort — survives, so a shed request still gets an answer. This
// is the admission-control seam of the solve daemon: an overloaded queue
// lowers the starting rung of waiting requests instead of rejecting
// them, trading energy quality (never T/ε-feasibility) for latency.
func ShedTo(ladder []Rung, r Rung) []Rung {
	if len(ladder) == 0 {
		return nil
	}
	for i, rung := range ladder {
		if rung >= r {
			return ladder[i:]
		}
	}
	return ladder[len(ladder)-1:]
}

// ParseLadder parses a comma-separated rung list (e.g. "full,greed,rand").
// An empty string yields the default ladder.
func ParseLadder(s string) ([]Rung, error) {
	if s == "" {
		return DefaultLadder(), nil
	}
	var out []Rung
	for _, part := range strings.Split(s, ",") {
		r, err := ParseRung(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Options tunes the orchestrator.
type Options struct {
	// Budget is the total wall-clock solve budget. Zero or negative
	// means no budget: only the first ladder rung runs, under the
	// caller's context alone.
	Budget time.Duration
	// Ladder is the rung sequence to walk (nil = DefaultLadder). The
	// final entry is the rung of last resort and runs without a
	// per-rung budget.
	Ladder []Rung
	// Level is the Steiner level of RungFull (0 = the planner default).
	Level int
	// Workers bounds the planners' internal worker pools.
	Workers int
	// Seed drives RungRand relay selection.
	Seed int64
	// Allocator selects the NLP solver of the fading-aware rungs.
	Allocator core.Allocator
	// Clock supplies wall-clock time for budget arithmetic (nil =
	// time.Now). Injectable so tests drive the ladder deterministically.
	Clock func() time.Time
	// Inject, when non-nil, wraps each rung's context before planning —
	// the fault-injection seam used by the test harness to trip
	// cancellation at exact checkpoint counts. Production runs leave it
	// nil.
	Inject func(Rung, context.Context) context.Context
	// Obs receives the "degrade" span, per-rung child spans, and the
	// budget/cancellation/transition counters. Nil records nothing.
	Obs *obs.Recorder
}

func (o Options) clock() func() time.Time {
	if o.Clock == nil {
		//tmedbvet:ignore nondeterm injectable-clock default: budgets are wall-clock by definition and tests override via Options.Clock
		return time.Now
	}
	return o.Clock
}

// Attempt records one abandoned ladder rung.
type Attempt struct {
	Rung      Rung
	Algorithm string
	Err       string
}

// Outcome reports how the orchestrator produced its schedule.
type Outcome struct {
	// Rung is the ladder rung that produced the schedule.
	Rung Rung
	// Algorithm is the winning planner's display name.
	Algorithm string
	// Reason explains why earlier rungs were abandoned; empty when the
	// first rung succeeded.
	Reason string
	// Attempts lists the abandoned rungs in order.
	Attempts []Attempt
	// Budget echoes the configured total budget.
	Budget time.Duration
}

// Annotate stamps the outcome into a schedule meta block.
func (o *Outcome) Annotate(m *schedule.Meta) {
	if o == nil || m == nil {
		return
	}
	m.Algorithm = o.Algorithm
	m.DegradeRung = o.Rung.String()
	m.DegradeReason = o.Reason
}

// planner materializes the rung's scheduler for the graph's channel
// model: fading graphs get the fading-resistant family so every rung's
// schedule satisfies the ε-bound, static graphs the static family.
func (o Options) planner(rung Rung, fading bool, d *dts.DTS) core.ContextScheduler {
	// The ladder opts out of the process-wide DTS/auxgraph memos: its
	// budget accounting (and the fault-injection harness checking it)
	// needs every rung to do work proportional to the instance,
	// independent of process history, and a cancelled rung must discard
	// its work wholesale. Deliberate artifact sharing goes through the
	// explicit Reuse seam instead.
	dOpts := dts.Options{Workers: o.Workers, Obs: o.Obs, Reuse: d, NoMemo: true}
	aOpts := auxgraph.Options{NoMemo: true}
	level := o.Level
	if rung == RungSPT {
		level = 1
	}
	switch rung {
	case RungFull, RungSPT:
		if fading {
			return core.FREEDCB{Level: level, Workers: o.Workers, DTSOpts: dOpts, AuxOpts: aOpts, Allocator: o.Allocator, Obs: o.Obs}
		}
		return core.EEDCB{Level: level, Workers: o.Workers, DTSOpts: dOpts, AuxOpts: aOpts, Obs: o.Obs}
	case RungGreed:
		if fading {
			return core.FRGreedy{Workers: o.Workers, DTSOpts: dOpts, Allocator: o.Allocator, Obs: o.Obs}
		}
		return core.Greedy{DTSOpts: dOpts, Obs: o.Obs}
	default:
		if fading {
			return core.FRRandom{Seed: o.Seed, Workers: o.Workers, DTSOpts: dOpts, Allocator: o.Allocator, Obs: o.Obs}
		}
		return core.Random{Seed: o.Seed, DTSOpts: dOpts, Obs: o.Obs}
	}
}

// Solve plans a broadcast from src over [t0, deadline] under the
// degradation ladder. The returned error follows the Scheduler
// convention: nil or *core.IncompleteError mean the schedule is usable;
// a cancel.ErrCancelled / cancel.ErrBudgetExceeded (wrapped) means the
// caller's own context died before any rung could answer. The Outcome is
// non-nil whenever the schedule is usable.
func Solve(ctx context.Context, g *tveg.Graph, src tvg.NodeID, t0, deadline float64, opts Options) (schedule.Schedule, *Outcome, error) {
	sp := opts.Obs.StartPhase("degrade")
	defer sp.End()
	lg := obs.LoggerFrom(ctx)
	ladder := opts.Ladder
	if len(ladder) == 0 {
		ladder = DefaultLadder()
	}
	if opts.Budget <= 0 {
		ladder = ladder[:1]
	}
	clock := opts.clock()
	start := clock()
	fading := g.Model.Fading()

	// Shared artifact: one DTS serves every rung (and both planner
	// views — WithModel shares the underlying presence graph). Built
	// under the caller's context: without it no rung can answer, so it
	// gets no smaller budget of its own.
	d, err := dts.Build(g.Graph, t0, deadline, dts.Options{
		Workers: opts.Workers, Obs: opts.Obs, Cancel: cancel.FromContext(ctx), NoMemo: true,
	})
	if err != nil {
		countCancel(opts.Obs, err)
		return nil, nil, fmt.Errorf("degrade: %w", err)
	}

	out := &Outcome{Budget: opts.Budget}
	var reasons []string
	for idx, rung := range ladder {
		last := idx == len(ladder)-1
		rungCtx := ctx
		cancelFn := context.CancelFunc(func() {})
		if !last {
			remaining := opts.Budget - clock().Sub(start)
			if remaining <= 0 {
				opts.Obs.Counter("degrade.rung_transitions").Inc()
				if lg.Enabled() {
					lg.Event("degrade.rung_skipped", obs.Str("rung", rung.String()))
				}
				out.Attempts = append(out.Attempts, Attempt{Rung: rung, Algorithm: "", Err: "budget exhausted before start"})
				reasons = append(reasons, fmt.Sprintf("%s: budget exhausted before start", rung))
				continue
			}
			// Half of what is left: geometric shares guarantee every
			// later rung headroom while giving the best rung the most.
			rungCtx, cancelFn = context.WithTimeout(ctx, remaining/2)
		}
		if opts.Inject != nil {
			rungCtx = opts.Inject(rung, rungCtx)
		}
		alg := opts.planner(rung, fading, d)
		rs := opts.Obs.StartPhase("degrade.rung")
		rs.SetStr("rung", rung.String())
		rs.SetStr("algorithm", alg.Name())
		s, err := alg.ScheduleCtx(rungCtx, g, src, t0, deadline)
		rs.End()
		cancelFn()
		var ie *core.IncompleteError
		if err == nil || errors.As(err, &ie) {
			out.Rung = rung
			out.Algorithm = alg.Name()
			out.Reason = strings.Join(reasons, "; ")
			sp.SetStr("rung", rung.String())
			if lg.Enabled() {
				lg.Event("degrade.rung_answered",
					obs.Str("rung", rung.String()),
					obs.Str("algorithm", alg.Name()),
					obs.I("attempts", len(out.Attempts)))
			}
			return s, out, err
		}
		if !cancel.Is(err) {
			// A genuine planning failure is not recoverable by spending
			// less effort; surface it.
			return nil, nil, err
		}
		countCancel(opts.Obs, err)
		if ctxErr := cancel.FromContext(ctx).Check(); ctxErr != nil {
			// The caller's own context died — the hard stop. Don't
			// burn the remaining rungs.
			return nil, nil, fmt.Errorf("degrade: %w", ctxErr)
		}
		opts.Obs.Counter("degrade.rung_transitions").Inc()
		if lg.Enabled() {
			lg.Event("degrade.rung_abandoned",
				obs.Str("rung", rung.String()),
				obs.Str("algorithm", alg.Name()),
				obs.Str("cause", err.Error()))
		}
		out.Attempts = append(out.Attempts, Attempt{Rung: rung, Algorithm: alg.Name(), Err: err.Error()})
		reasons = append(reasons, fmt.Sprintf("%s: %v", rung, err))
	}
	// Only reachable when the caller supplied a ladder and every rung —
	// including the unbudgeted last one — was cancelled by the caller's
	// context, or when Budget <= 0 truncated the ladder to a cancelled
	// first rung.
	return nil, nil, fmt.Errorf("degrade: all %d rung(s) cancelled: %s", len(ladder), strings.Join(reasons, "; "))
}

func countCancel(rec *obs.Recorder, err error) {
	switch {
	case errors.Is(err, cancel.ErrBudgetExceeded):
		rec.Counter("degrade.budget_exceeded").Inc()
	case errors.Is(err, cancel.ErrCancelled):
		rec.Counter("degrade.cancelled").Inc()
	}
}
