package degrade

import (
	"reflect"
	"testing"
)

func TestShedTo(t *testing.T) {
	full := DefaultLadder() // full, spt, greed, rand
	cases := []struct {
		ladder []Rung
		to     Rung
		want   []Rung
	}{
		{full, RungFull, full},
		{full, RungSPT, []Rung{RungSPT, RungGreed, RungRand}},
		{full, RungGreed, []Rung{RungGreed, RungRand}},
		{full, RungRand, []Rung{RungRand}},
		// A custom ladder without the shed target starts at the next
		// rung at-or-below it.
		{[]Rung{RungFull, RungGreed}, RungSPT, []Rung{RungGreed}},
		// Every rung better than the target: the rung of last resort
		// survives — shedding must never leave a request answerless.
		{[]Rung{RungFull, RungSPT}, RungRand, []Rung{RungSPT}},
		{nil, RungGreed, nil},
	}
	for _, c := range cases {
		if got := ShedTo(c.ladder, c.to); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ShedTo(%v, %v) = %v, want %v", c.ladder, c.to, got, c.want)
		}
	}
}
