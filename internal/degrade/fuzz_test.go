package degrade

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/cancel"
	"repro/internal/schedule"
	"repro/internal/tveg"
)

// FuzzDeadlineInjection fuzzes the orchestrator's failure surface: an
// adversarial injection offset (which checkpoint of which rung dies), a
// fuzzer-chosen budget split, and both channel families. Whatever the
// inputs, Solve must neither panic nor hang (a watchdog bounds every
// case), and any schedule it does return must agree with the
// differential execution-semantics oracle.
func FuzzDeadlineInjection(f *testing.F) {
	f.Add(uint16(0), uint32(0), uint8(0), false)
	f.Add(uint16(1), uint32(250), uint8(1), true)
	f.Add(uint16(17), uint32(5000), uint8(2), false)
	f.Add(uint16(300), uint32(50_000), uint8(3), true)
	f.Add(uint16(65535), uint32(1_000_000), uint8(4), false)
	f.Fuzz(func(t *testing.T, offset uint16, budgetUS uint32, rungSel uint8, fading bool) {
		model := tveg.Static
		if fading {
			model = tveg.RayleighFading
		}
		g := testTrace(8, model, 7)
		ladder := DefaultLadder()
		target := ladder[int(rungSel)%len(ladder)]
		opts := Options{
			// Cap the budget at 1s so a fuzz case can never stall on a
			// long real timeout; 0 exercises the unbudgeted single-rung
			// path.
			Budget:  time.Duration(budgetUS%1_000_000) * time.Microsecond,
			Workers: 2,
			Seed:    3,
			Inject: func(r Rung, ctx context.Context) context.Context {
				if r == target {
					return cancel.WithTrip(ctx, cancel.NewTrip(int64(offset)))
				}
				return ctx
			},
		}

		type result struct {
			s   schedule.Schedule
			out *Outcome
			err error
		}
		done := make(chan result, 1)
		go func() {
			s, out, err := Solve(context.Background(), g, 0, 0, 1000, opts)
			done <- result{s, out, err}
		}()
		var res result
		select {
		case res = <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("Solve hung past the watchdog (no prompt cancellation)")
		}

		if usable(res.err) != nil {
			// The only legitimate total failure is cancellation of every
			// rung (the injected rung was the rung of last resort, or the
			// budget expired everywhere).
			if !cancel.Is(res.err) && res.err.Error() == "" {
				t.Fatalf("unclassified failure: %v", res.err)
			}
			return
		}
		if res.out == nil {
			t.Fatalf("usable schedule without an outcome (err=%v)", res.err)
		}
		// Cross-check the surviving schedule against every execution
		// semantics: a degraded plan must still be a valid plan.
		if diffs := audit.CompareSchedule(g, res.s, 0, 0, 1000, math.Inf(1)); len(diffs) > 0 {
			t.Fatalf("rung %v schedule disagrees with the audit oracle: %v", res.out.Rung, diffs)
		}
	})
}
