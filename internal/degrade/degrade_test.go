package degrade

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cancel"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

func iv(a, b float64) interval.Interval { return interval.Interval{Start: a, End: b} }

// testTrace builds a connected random contact trace (the same shape the
// core tests use) with guaranteed eventual reachability from node 0.
func testTrace(n int, m tveg.Model, seed int64) *tveg.Graph {
	r := rand.New(rand.NewSource(seed))
	const horizon = 1000.0
	g := tveg.New(n, iv(0, horizon), 0, tveg.DefaultParams(), m)
	for c := 0; c < 4*n; c++ {
		i, j := tvg.NodeID(r.Intn(n)), tvg.NodeID(r.Intn(n))
		if i == j {
			continue
		}
		s := r.Float64() * horizon * 0.7
		g.AddContact(i, j, iv(s, s+horizon*0.05+r.Float64()*horizon*0.1), 1+r.Float64()*25)
	}
	for j := 1; j < n; j++ {
		s := horizon*0.8 + r.Float64()*horizon*0.1
		g.AddContact(0, tvg.NodeID(j), iv(s, s+horizon*0.05), 1+r.Float64()*25)
	}
	return g
}

// usable follows the Scheduler convention: nil and *core.IncompleteError
// both mean the returned schedule is valid for the nodes it covers.
func usable(err error) error {
	var ie *core.IncompleteError
	if err == nil || errors.As(err, &ie) {
		return nil
	}
	return err
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

func TestRungStringParseRoundTrip(t *testing.T) {
	for r := Rung(0); int(r) < numRungs; r++ {
		got, err := ParseRung(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRung(%q) = %v, %v; want %v", r.String(), got, err, r)
		}
	}
	if _, err := ParseRung("bogus"); err == nil {
		t.Error("ParseRung(bogus) succeeded")
	}
}

func TestParseLadder(t *testing.T) {
	got, err := ParseLadder("")
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, got) != mustJSON(t, DefaultLadder()) {
		t.Errorf("empty ladder = %v, want default %v", got, DefaultLadder())
	}
	got, err = ParseLadder("greed, rand")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != RungGreed || got[1] != RungRand {
		t.Errorf("ParseLadder(greed, rand) = %v", got)
	}
	if _, err := ParseLadder("full,nope"); err == nil {
		t.Error("ParseLadder(full,nope) succeeded")
	}
}

// TestUnbudgetedRungMatchesDirectPlanner pins the determinism contract
// per rung: with Budget <= 0 the orchestrator runs exactly one rung
// under the caller's context, and its schedule must be byte-identical to
// calling that rung's planner directly — the ladder machinery adds
// nothing to the result.
func TestUnbudgetedRungMatchesDirectPlanner(t *testing.T) {
	const seed = 3
	cases := []struct {
		name   string
		model  tveg.Model
		rung   Rung
		direct core.Scheduler
	}{
		{"full/static", tveg.Static, RungFull, core.EEDCB{}},
		{"spt/static", tveg.Static, RungSPT, core.EEDCB{Level: 1}},
		{"greed/static", tveg.Static, RungGreed, core.Greedy{}},
		{"rand/static", tveg.Static, RungRand, core.Random{Seed: seed}},
		{"full/rayleigh", tveg.RayleighFading, RungFull, core.FREEDCB{}},
		{"spt/rayleigh", tveg.RayleighFading, RungSPT, core.FREEDCB{Level: 1}},
		{"greed/rayleigh", tveg.RayleighFading, RungGreed, core.FRGreedy{}},
		{"rand/rayleigh", tveg.RayleighFading, RungRand, core.FRRandom{Seed: seed}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := testTrace(10, c.model, 7)
			want, errW := c.direct.Schedule(g, 0, 0, 1000)
			if usable(errW) != nil {
				t.Fatalf("direct: %v", errW)
			}
			s, out, errS := Solve(context.Background(), g, 0, 0, 1000,
				Options{Ladder: []Rung{c.rung}, Seed: seed})
			if usable(errS) != nil {
				t.Fatalf("Solve: %v", errS)
			}
			if (errW == nil) != (errS == nil) {
				t.Fatalf("error mismatch: direct=%v ladder=%v", errW, errS)
			}
			if out == nil || out.Rung != c.rung {
				t.Fatalf("outcome = %+v, want rung %v", out, c.rung)
			}
			if out.Reason != "" || len(out.Attempts) != 0 {
				t.Errorf("unbudgeted outcome carries attempts: %+v", out)
			}
			if mustJSON(t, want) != mustJSON(t, s) {
				t.Errorf("ladder schedule differs from direct planner:\ndirect %s\nladder %s",
					mustJSON(t, want), mustJSON(t, s))
			}
		})
	}
}

// TestSolveDeterministicAcrossRunsAndWorkers: same seed + same rung ⇒
// byte-identical schedule, run to run and across worker-pool widths.
func TestSolveDeterministicAcrossRunsAndWorkers(t *testing.T) {
	g := testTrace(10, tveg.Static, 7)
	base := ""
	for run := 0; run < 2; run++ {
		for _, w := range []int{1, 4} {
			s, out, err := Solve(context.Background(), g, 0, 0, 1000,
				Options{Workers: w, Seed: 3})
			if usable(err) != nil {
				t.Fatalf("run %d workers %d: %v", run, w, err)
			}
			if out.Rung != RungFull {
				t.Fatalf("run %d workers %d: rung %v, want full", run, w, out.Rung)
			}
			if j := mustJSON(t, s); base == "" {
				base = j
			} else if j != base {
				t.Fatalf("run %d workers %d: schedule differs:\nbase %s\ngot  %s", run, w, base, j)
			}
		}
	}
}

// tripRungs returns an Inject seam that cancels the listed rungs at
// their first checkpoint and leaves every other rung untouched.
func tripRungs(rungs ...Rung) func(Rung, context.Context) context.Context {
	return func(r Rung, ctx context.Context) context.Context {
		for _, tr := range rungs {
			if r == tr {
				return cancel.WithTrip(ctx, cancel.NewTrip(0))
			}
		}
		return ctx
	}
}

// fakeClock returns a Clock that advances by step on every reading, so
// budget arithmetic is deterministic regardless of real planner speed.
func fakeClock(step time.Duration) func() time.Time {
	now := time.Unix(0, 0)
	return func() time.Time {
		now = now.Add(step)
		return now
	}
}

// TestRungMonotoneInBudget drives the ladder with an injected clock and
// per-rung fault injection: shrinking the budget must move the outcome
// weakly down the ladder (a larger budget never yields a worse rung).
func TestRungMonotoneInBudget(t *testing.T) {
	g := testTrace(10, tveg.Static, 7)
	solve := func(budget time.Duration) *Outcome {
		t.Helper()
		s, out, err := Solve(context.Background(), g, 0, 0, 1000, Options{
			Budget: budget,
			Seed:   3,
			Clock:  fakeClock(time.Millisecond),
			Inject: tripRungs(RungFull, RungSPT),
		})
		if usable(err) != nil {
			t.Fatalf("budget %v: %v", budget, err)
		}
		if len(s) == 0 {
			t.Fatalf("budget %v: empty schedule", budget)
		}
		return out
	}
	// Generous budget: full and spt are injected away, greed answers.
	big := solve(time.Hour)
	if big.Rung != RungGreed {
		t.Fatalf("big budget: rung %v, want greed (attempts %+v)", big.Rung, big.Attempts)
	}
	if len(big.Attempts) != 2 || big.Reason == "" {
		t.Errorf("big budget: attempts %+v reason %q, want 2 abandoned rungs", big.Attempts, big.Reason)
	}
	// Tiny budget: by the time greed's turn comes the fake clock has
	// consumed the budget, so the ladder skips to the rung of last
	// resort.
	small := solve(2500 * time.Microsecond)
	if small.Rung != RungRand {
		t.Fatalf("small budget: rung %v, want rand (attempts %+v)", small.Rung, small.Attempts)
	}
	if small.Rung < big.Rung {
		t.Fatalf("rung not monotone: budget %v→%v but rung %v→%v",
			2500*time.Microsecond, time.Hour, small.Rung, big.Rung)
	}
}

// TestParentContextDeathIsHardStop: when the caller's own context dies,
// the orchestrator must not burn the remaining rungs — it returns the
// typed cancellation error with no schedule and no outcome.
func TestParentContextDeathIsHardStop(t *testing.T) {
	g := testTrace(10, tveg.Static, 7)
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	s, out, err := Solve(ctx, g, 0, 0, 1000, Options{Budget: time.Hour})
	if s != nil || out != nil {
		t.Fatalf("dead context produced a result: s=%v out=%+v", s, out)
	}
	if !errors.Is(err, cancel.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestOutcomeAnnotate(t *testing.T) {
	var none *Outcome
	none.Annotate(nil) // nil receiver and nil meta must both no-op
	m := &schedule.Meta{Algorithm: "EEDCB"}
	none.Annotate(m)
	if m.Algorithm != "EEDCB" || m.DegradeRung != "" {
		t.Fatalf("nil outcome mutated meta: %+v", m)
	}
	out := &Outcome{Rung: RungGreed, Algorithm: "GREED", Reason: "full: budget"}
	out.Annotate(m)
	if m.Algorithm != "GREED" || m.DegradeRung != "greed" || m.DegradeReason != "full: budget" {
		t.Fatalf("Annotate: %+v", m)
	}
}

// TestSolveObsCounters: abandoned rungs must be visible in the metrics
// registry — one rung_transitions per fallthrough and a taxonomy counter
// per cancellation cause.
func TestSolveObsCounters(t *testing.T) {
	g := testTrace(10, tveg.Static, 7)
	rec := obs.New()
	_, out, err := Solve(context.Background(), g, 0, 0, 1000, Options{
		Budget: time.Hour,
		Inject: tripRungs(RungFull),
		Obs:    rec,
	})
	if usable(err) != nil {
		t.Fatal(err)
	}
	if out.Rung != RungSPT {
		t.Fatalf("rung %v, want spt", out.Rung)
	}
	if n := rec.Counter("degrade.rung_transitions").Value(); n != 1 {
		t.Errorf("rung_transitions = %d, want 1", n)
	}
	if n := rec.Counter("degrade.budget_exceeded").Value(); n != 1 {
		t.Errorf("budget_exceeded = %d, want 1", n)
	}
	if n := rec.Counter("degrade.cancelled").Value(); n != 0 {
		t.Errorf("cancelled = %d, want 0", n)
	}
}

// TestFallbackFeasible is the ladder's core safety property: whatever
// rung ends up answering, the schedule still satisfies the §IV delay and
// residual-failure conditions, on both channel families.
func TestFallbackFeasible(t *testing.T) {
	cases := []struct {
		name  string
		model tveg.Model
		trip  []Rung
		want  Rung
	}{
		{"static/spt", tveg.Static, []Rung{RungFull}, RungSPT},
		{"static/greed", tveg.Static, []Rung{RungFull, RungSPT}, RungGreed},
		{"static/rand", tveg.Static, []Rung{RungFull, RungSPT, RungGreed}, RungRand},
		{"rayleigh/spt", tveg.RayleighFading, []Rung{RungFull}, RungSPT},
		{"rayleigh/greed", tveg.RayleighFading, []Rung{RungFull, RungSPT}, RungGreed},
		{"rayleigh/rand", tveg.RayleighFading, []Rung{RungFull, RungSPT, RungGreed}, RungRand},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := testTrace(8, c.model, 7)
			s, out, err := Solve(context.Background(), g, 0, 0, 1000, Options{
				Budget: time.Hour,
				Seed:   3,
				Inject: tripRungs(c.trip...),
			})
			if err != nil {
				// Full coverage is expected on this fixture; an
				// IncompleteError here would make CheckFeasible vacuous.
				t.Fatalf("Solve: %v", err)
			}
			if out.Rung != c.want {
				t.Fatalf("rung %v, want %v (attempts %+v)", out.Rung, c.want, out.Attempts)
			}
			if ferr := schedule.CheckFeasible(g, s, 0, 1000, math.Inf(1)); ferr != nil {
				t.Errorf("fallback schedule infeasible: %v", ferr)
			}
		})
	}
}
