package degrade

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/cancel"
	"repro/internal/core"
	"repro/internal/dts"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// This file is the deterministic fault-injection harness of the
// cancellation seam (ISSUE 4 satellite a). Instead of racing wall-clock
// timers against planner speed, it counts checkpoints: a cancel.Trip
// attached to the context fires after exactly k observed checks, so
// "cancel at the k-th checkpoint" is reproducible. The sweep establishes
// three properties for every planner:
//
//  1. Invariance — a trip that never fires leaves the schedule
//     byte-identical to the untripped run.
//  2. Promptness — a trip that fires at checkpoint k aborts the solve
//     after at most k + 2·workers + slack further observations; the
//     overrun is bounded by the pool width, not the input size.
//  3. Typed errors — every injected abort surfaces as ErrBudgetExceeded
//     / ErrCancelled (wrapped), never as a zero-value schedule.

const sweepWorkers = 2

// plannerCase pairs a context-aware planner with a graph of its channel
// family. Worker pools are pinned to sweepWorkers everywhere so the
// promptness bound is independent of GOMAXPROCS.
type plannerCase struct {
	name string
	g    *tveg.Graph
	alg  core.ContextScheduler
}

func plannerCases() []plannerCase {
	static := testTrace(10, tveg.Static, 7)
	fading := testTrace(8, tveg.RayleighFading, 7)
	w := sweepWorkers
	d := dts.Options{Workers: w}
	return []plannerCase{
		{"EEDCB", static, core.EEDCB{Workers: w, DTSOpts: d}},
		{"GREED", static, core.Greedy{DTSOpts: d}},
		{"RAND", static, core.Random{Seed: 3, DTSOpts: d}},
		{"FR-EEDCB", fading, core.FREEDCB{Workers: w, DTSOpts: d}},
		{"FR-GREED", fading, core.FRGreedy{Workers: w, DTSOpts: d}},
		{"FR-RAND", fading, core.FRRandom{Seed: 3, Workers: w, DTSOpts: d}},
	}
}

// sweepPoints picks the injection offsets: every boundary near the start
// (the phase hand-offs all planners share), then strided points through
// the body, then the last few checkpoints.
func sweepPoints(total int64) []int64 {
	pts := []int64{0, 1, 2, 3, 5, 8}
	for _, f := range []int64{4, 2} {
		pts = append(pts, total/f)
	}
	if total > 2 {
		pts = append(pts, total-2)
	}
	out := pts[:0]
	for _, k := range pts {
		if k >= 0 && k < total {
			out = append(out, k)
		}
	}
	return out
}

// checkGoroutines waits for transient pool workers to drain and fails if
// the goroutine count stays above the baseline.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestCheckpointSweepAllPlanners fires cancellation at every early phase
// boundary and strided interior checkpoints of all six planners.
func TestCheckpointSweepAllPlanners(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, c := range plannerCases() {
		t.Run(c.name, func(t *testing.T) {
			base, errBase := c.alg.ScheduleCtx(context.Background(), c.g, 0, 0, 1000)
			if usable(errBase) != nil {
				t.Fatalf("baseline: %v", errBase)
			}
			baseJSON := mustJSON(t, base)

			// Counting pass: a trip that never fires measures the solve's
			// checkpoint total and must not perturb the schedule.
			counter := cancel.NewTrip(-1)
			s, err := c.alg.ScheduleCtx(cancel.WithTrip(context.Background(), counter), c.g, 0, 0, 1000)
			if (errBase == nil) != (err == nil) {
				t.Fatalf("counting trip changed the error: base=%v counted=%v", errBase, err)
			}
			if got := mustJSON(t, s); got != baseJSON {
				t.Fatalf("counting trip changed the schedule:\nbase %s\ngot  %s", baseJSON, got)
			}
			total := counter.Checks()
			if total == 0 {
				t.Fatalf("planner ran zero checkpoints; the cancellation seam is not wired in")
			}

			for _, k := range sweepPoints(total) {
				tr := cancel.NewTrip(k)
				s, err := c.alg.ScheduleCtx(cancel.WithTrip(context.Background(), tr), c.g, 0, 0, 1000)
				if !cancel.Is(err) {
					t.Errorf("k=%d/%d: err = %v, want a typed cancellation error", k, total, err)
					continue
				}
				if len(s) != 0 {
					t.Errorf("k=%d/%d: cancelled solve returned a %d-tx schedule", k, total, len(s))
				}
				// Promptness: after the trip fires, each live pool worker
				// may observe one more checkpoint before it parks, and the
				// unwinding phases re-poll a bounded number of times.
				if got, bound := tr.Checks(), k+2*sweepWorkers+16; got > bound {
					t.Errorf("k=%d/%d: %d checkpoints observed, want <= %d (unbounded overrun)",
						k, total, got, bound)
				}
			}

			// A trip budget at least as large as the full solve must not
			// fire at all.
			tr := cancel.NewTrip(total)
			s, err = c.alg.ScheduleCtx(cancel.WithTrip(context.Background(), tr), c.g, 0, 0, 1000)
			if (errBase == nil) != (err == nil) {
				t.Fatalf("k=total: error mismatch: base=%v got=%v", errBase, err)
			}
			if got := mustJSON(t, s); got != baseJSON {
				t.Fatalf("k=total: schedule differs from baseline")
			}
		})
	}
	checkGoroutines(t, before)
}

// TestCheckpointSweepMulticast extends the sweep to the multicast entry
// points, which take a different path through the Steiner solver.
func TestCheckpointSweepMulticast(t *testing.T) {
	g := testTrace(10, tveg.Static, 7)
	targets := []tvg.NodeID{3, 5, 9}
	alg := core.EEDCB{Workers: sweepWorkers, DTSOpts: dts.Options{Workers: sweepWorkers}}
	base, errBase := alg.MulticastCtx(context.Background(), g, 0, targets, 0, 1000)
	if usable(errBase) != nil {
		t.Fatalf("baseline: %v", errBase)
	}
	counter := cancel.NewTrip(-1)
	s, err := alg.MulticastCtx(cancel.WithTrip(context.Background(), counter), g, 0, targets, 0, 1000)
	if (errBase == nil) != (err == nil) || mustJSON(t, s) != mustJSON(t, base) {
		t.Fatalf("counting trip perturbed multicast: err=%v", err)
	}
	total := counter.Checks()
	for _, k := range sweepPoints(total) {
		tr := cancel.NewTrip(k)
		s, err := alg.MulticastCtx(cancel.WithTrip(context.Background(), tr), g, 0, targets, 0, 1000)
		if !cancel.Is(err) {
			t.Errorf("k=%d/%d: err = %v, want cancellation", k, total, err)
		}
		if len(s) != 0 {
			t.Errorf("k=%d/%d: cancelled multicast returned a schedule", k, total)
		}
	}
}

// TestLadderInjectionEveryBoundary sweeps the orchestrator itself: the
// first rung is cancelled at each of its early checkpoints and the
// ladder must still deliver a usable, deterministic fallback schedule.
func TestLadderInjectionEveryBoundary(t *testing.T) {
	before := runtime.NumGoroutine()
	g := testTrace(10, tveg.Static, 7)

	// Reference: rung full injected away at checkpoint 0 → spt answers.
	ref, out, err := Solve(context.Background(), g, 0, 0, 1000, Options{
		Budget: time.Hour, Workers: sweepWorkers, Inject: tripRungs(RungFull),
	})
	if usable(err) != nil {
		t.Fatal(err)
	}
	if out.Rung != RungSPT {
		t.Fatalf("rung %v, want spt", out.Rung)
	}
	refJSON := mustJSON(t, ref)

	// The fallback schedule must not depend on *where* inside the first
	// rung the budget ran out: cancelled work is discarded wholesale.
	for _, k := range []int64{0, 1, 2, 5, 17, 64} {
		inject := func(r Rung, ctx context.Context) context.Context {
			if r == RungFull {
				return cancel.WithTrip(ctx, cancel.NewTrip(k))
			}
			return ctx
		}
		s, out, err := Solve(context.Background(), g, 0, 0, 1000, Options{
			Budget: time.Hour, Workers: sweepWorkers, Inject: inject,
		})
		if usable(err) != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if out.Rung != RungSPT {
			t.Fatalf("k=%d: rung %v, want spt", k, out.Rung)
		}
		if got := mustJSON(t, s); got != refJSON {
			t.Errorf("k=%d: fallback schedule depends on the injection point:\nref %s\ngot %s",
				k, refJSON, got)
		}
	}
	checkGoroutines(t, before)
}

// TestLadderParentTripHardStop sweeps a trip on the caller's own
// context: wherever it fires — inside the shared DTS build or inside a
// rung — the orchestrator must return the typed error promptly instead
// of walking the remaining rungs with a dead context.
func TestLadderParentTripHardStop(t *testing.T) {
	g := testTrace(10, tveg.Static, 7)
	opts := Options{Budget: time.Hour, Workers: sweepWorkers}

	counter := cancel.NewTrip(-1)
	s, out, err := Solve(cancel.WithTrip(context.Background(), counter), g, 0, 0, 1000, opts)
	if usable(err) != nil {
		t.Fatal(err)
	}
	if out == nil || len(s) == 0 {
		t.Fatal("counting run produced no schedule")
	}
	total := counter.Checks()

	for _, k := range sweepPoints(total) {
		tr := cancel.NewTrip(k)
		s, out, err := Solve(cancel.WithTrip(context.Background(), tr), g, 0, 0, 1000, opts)
		if s != nil || out != nil {
			t.Fatalf("k=%d/%d: hard-stopped solve returned a result (rung %v)", k, total, out.Rung)
		}
		if !cancel.Is(err) {
			t.Fatalf("k=%d/%d: err = %v, want a typed cancellation error", k, total, err)
		}
		if got, bound := tr.Checks(), k+2*sweepWorkers+16; got > bound {
			t.Errorf("k=%d/%d: %d checkpoints after the trip, want <= %d", k, total, got, bound)
		}
	}
}
