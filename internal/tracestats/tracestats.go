// Package tracestats computes the descriptive statistics of contact
// traces that Chaintreau et al. [12] use to characterize the Haggle
// datasets: contact durations, pairwise inter-contact gaps (with a
// log-log tail profile exposing the power-law behaviour), contact-rate
// and degree timelines, and per-node activity. The figures harness and
// the traceinfo tool both report through this package.
package tracestats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/haggle"
	"repro/internal/stats"
)

// Report aggregates the statistics of one trace.
type Report struct {
	N            int
	Horizon      float64
	NumContacts  int
	Durations    stats.Summary
	InterContact stats.Summary
	// DurationP50/P90 and GapP50/P90 are median and 90th-percentile
	// contact durations and inter-contact gaps.
	DurationP50, DurationP90 float64
	GapP50, GapP90           float64
	// TailExponent is the fitted slope of the inter-contact CCDF on
	// log-log axes (a power law shows up as a straight line; Haggle
	// traces exhibit exponents around -0.3..-0.6 over the body).
	TailExponent float64
	// DegreeTimeline samples the mean instantaneous degree at uniform
	// times across the horizon.
	DegreeTimes  []float64
	DegreeValues []float64
	// PerNodeContacts counts contacts touching each node.
	PerNodeContacts []int
}

// Analyze computes a Report. degreeSamples controls the timeline
// resolution (default 32 when <= 0).
func Analyze(t *haggle.Trace, degreeSamples int) Report {
	if degreeSamples <= 0 {
		degreeSamples = 32
	}
	r := Report{
		N:               t.N,
		Horizon:         t.Horizon,
		NumContacts:     len(t.Contacts),
		PerNodeContacts: make([]int, t.N),
	}
	var durations []float64
	byPair := make(map[[2]int][]float64) // contact start times per pair
	for _, c := range t.Contacts {
		durations = append(durations, c.End-c.Start)
		r.PerNodeContacts[c.I]++
		r.PerNodeContacts[c.J]++
		key := [2]int{c.I, c.J}
		byPair[key] = append(byPair[key], c.Start)
	}
	r.Durations = stats.Summarize(durations)
	r.DurationP50 = stats.Percentile(durations, 0.5)
	r.DurationP90 = stats.Percentile(durations, 0.9)

	var gaps []float64
	for _, starts := range byPair {
		sort.Float64s(starts)
		for i := 1; i < len(starts); i++ {
			gaps = append(gaps, starts[i]-starts[i-1])
		}
	}
	r.InterContact = stats.Summarize(gaps)
	r.GapP50 = stats.Percentile(gaps, 0.5)
	r.GapP90 = stats.Percentile(gaps, 0.9)
	r.TailExponent = tailExponent(gaps)

	for k := 0; k < degreeSamples; k++ {
		ts := t.Horizon * (float64(k) + 0.5) / float64(degreeSamples)
		r.DegreeTimes = append(r.DegreeTimes, ts)
		r.DegreeValues = append(r.DegreeValues, degreeAt(t, ts))
	}
	return r
}

// degreeAt returns the mean instantaneous degree at time ts.
func degreeAt(t *haggle.Trace, ts float64) float64 {
	active := 0
	for _, c := range t.Contacts {
		if c.Start <= ts && ts < c.End {
			active++
		}
	}
	return 2 * float64(active) / float64(t.N)
}

// tailExponent fits a straight line to the log-log CCDF of the gaps over
// the central quantile range [0.1, 0.9]; a heavy tail yields a shallow
// negative slope. Returns NaN with fewer than 10 samples.
func tailExponent(gaps []float64) float64 {
	if len(gaps) < 10 {
		return math.NaN()
	}
	sorted := append([]float64(nil), gaps...)
	sort.Float64s(sorted)
	var xs, ys []float64
	n := len(sorted)
	for i := n / 10; i < n*9/10; i++ {
		x := sorted[i]
		if x <= 0 {
			continue
		}
		ccdf := float64(n-i) / float64(n)
		xs = append(xs, math.Log(x))
		ys = append(ys, math.Log(ccdf))
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	// least-squares slope
	mx, my := stats.Mean(xs), stats.Mean(ys)
	var num, den float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// String renders the report as a human-readable block.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d nodes, %d contacts, horizon %.0f s\n", r.N, r.NumContacts, r.Horizon)
	fmt.Fprintf(&b, "contact duration:   %v  p50=%.3g p90=%.3g\n", r.Durations, r.DurationP50, r.DurationP90)
	fmt.Fprintf(&b, "inter-contact gap:  %v  p50=%.3g p90=%.3g\n", r.InterContact, r.GapP50, r.GapP90)
	if !math.IsNaN(r.TailExponent) {
		fmt.Fprintf(&b, "inter-contact tail: log-log slope %.2f\n", r.TailExponent)
	}
	fmt.Fprintf(&b, "degree timeline:\n")
	for i := range r.DegreeTimes {
		bars := int(r.DegreeValues[i]*20 + 0.5)
		fmt.Fprintf(&b, "  t=%-8.0f %5.2f %s\n", r.DegreeTimes[i], r.DegreeValues[i],
			strings.Repeat("#", bars))
	}
	busiest, most := 0, -1
	for i, c := range r.PerNodeContacts {
		if c > most {
			busiest, most = i, c
		}
	}
	fmt.Fprintf(&b, "busiest node: %d (%d contacts)\n", busiest, most)
	return b.String()
}
