package tracestats

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/haggle"
)

func tinyTrace() *haggle.Trace {
	return &haggle.Trace{N: 3, Horizon: 100, Contacts: []haggle.Contact{
		{I: 0, J: 1, Start: 10, End: 20, Dist: 5},
		{I: 0, J: 1, Start: 40, End: 45, Dist: 5},
		{I: 1, J: 2, Start: 50, End: 70, Dist: 5},
	}}
}

func TestAnalyzeCounts(t *testing.T) {
	r := Analyze(tinyTrace(), 4)
	if r.N != 3 || r.NumContacts != 3 {
		t.Errorf("report = %+v", r)
	}
	// durations: 10, 5, 20
	if r.Durations.N != 3 || r.Durations.Min != 5 || r.Durations.Max != 20 {
		t.Errorf("durations = %+v", r.Durations)
	}
	// one repeated pair → one gap of 30
	if r.InterContact.N != 1 || r.InterContact.Mean != 30 {
		t.Errorf("inter-contact = %+v", r.InterContact)
	}
	if r.PerNodeContacts[1] != 3 {
		t.Errorf("node 1 contacts = %d, want 3", r.PerNodeContacts[1])
	}
}

func TestDegreeAt(t *testing.T) {
	tr := tinyTrace()
	// at t=15 one contact is active: degree = 2/3
	if got := degreeAt(tr, 15); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("degreeAt(15) = %g, want 2/3", got)
	}
	if got := degreeAt(tr, 30); got != 0 {
		t.Errorf("degreeAt(30) = %g, want 0", got)
	}
	// contact end is exclusive
	if got := degreeAt(tr, 20); got != 0 {
		t.Errorf("degreeAt(20) = %g, want 0 (End exclusive)", got)
	}
}

func TestTailExponentOnPareto(t *testing.T) {
	// Pareto(α) has CCDF slope exactly -α on log-log axes.
	r := rand.New(rand.NewSource(1))
	const alpha = 1.5
	gaps := make([]float64, 20000)
	for i := range gaps {
		gaps[i] = 1 / math.Pow(1-r.Float64(), 1/alpha)
	}
	got := tailExponent(gaps)
	if math.Abs(got-(-alpha)) > 0.15 {
		t.Errorf("tail exponent = %g, want ≈ %g", got, -alpha)
	}
}

func TestTailExponentOnExponentialIsSteeper(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	gaps := make([]float64, 20000)
	for i := range gaps {
		gaps[i] = r.ExpFloat64() + 1 // shift away from 0 for the log
	}
	got := tailExponent(gaps)
	pareto := -1.5
	if got >= pareto {
		t.Errorf("exponential slope %g should be steeper (more negative) than Pareto %g", got, pareto)
	}
}

func TestTailExponentTooFewSamples(t *testing.T) {
	if !math.IsNaN(tailExponent([]float64{1, 2, 3})) {
		t.Error("want NaN for tiny samples")
	}
}

func TestGeneratedTraceIsHeavyTailed(t *testing.T) {
	tr := haggle.Generate(haggle.GenOptions{}, rand.New(rand.NewSource(5)))
	r := Analyze(tr, 8)
	if math.IsNaN(r.TailExponent) {
		t.Fatal("no tail exponent on a full trace")
	}
	// truncated Pareto with α=1.5: fitted slope should be shallow
	// (heavier than exponential); accept a broad band
	if r.TailExponent < -3 || r.TailExponent > -0.2 {
		t.Errorf("tail exponent %g outside heavy-tail band", r.TailExponent)
	}
}

func TestReportString(t *testing.T) {
	out := Analyze(tinyTrace(), 4).String()
	for _, want := range []string{"3 nodes", "contact duration", "degree timeline", "busiest node"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeDefaultSamples(t *testing.T) {
	r := Analyze(tinyTrace(), 0)
	if len(r.DegreeTimes) != 32 {
		t.Errorf("default samples = %d, want 32", len(r.DegreeTimes))
	}
}
