package audit

import (
	"testing"
)

// TestGenerateCaseDeterministic: the oracle must be reproducible from
// the seed alone, or a CI failure could not be replayed locally.
func TestGenerateCaseDeterministic(t *testing.T) {
	a, b := GenerateCase(42), GenerateCase(42)
	if a.String() != b.String() {
		t.Fatalf("case header differs:\n%v\n%v", a, b)
	}
	if len(a.Schedule) != len(b.Schedule) {
		t.Fatalf("schedule length differs: %d vs %d", len(a.Schedule), len(b.Schedule))
	}
	for i := range a.Schedule {
		if a.Schedule[i] != b.Schedule[i] {
			t.Fatalf("schedule row %d differs: %v vs %v", i, a.Schedule[i], b.Schedule[i])
		}
	}
}

// TestGeneratorCoversAxes: across a modest seed range, the generator
// must exercise every τ regime, both channel models, and at least one
// planner-produced schedule — otherwise the differential test silently
// stops covering the semantics it exists to pin.
func TestGeneratorCoversAxes(t *testing.T) {
	taus := map[float64]bool{}
	models := map[bool]bool{}
	planner := false
	for seed := int64(0); seed < 60; seed++ {
		c := GenerateCase(seed)
		taus[c.Graph.Tau()] = true
		models[c.Graph.Model.Fading()] = true
		if c.Kind != "random" {
			planner = true
		}
	}
	if len(taus) != 3 {
		t.Fatalf("τ coverage %v, want {0, 0.5, 7}", taus)
	}
	if len(models) != 2 {
		t.Fatalf("model coverage %v, want static and fading", models)
	}
	if !planner {
		t.Fatal("no planner-produced schedule in 60 seeds")
	}
}

// TestDifferentialOracle is the acceptance gate: at least 200 randomized
// (graph, schedule, τ) cases through all executors with zero
// disagreements. Mismatch output includes the reference event trace, so
// a failure here is directly diagnosable.
func TestDifferentialOracle(t *testing.T) {
	cases := 240
	if testing.Short() {
		cases = 60
	}
	rep := RunDifferential(cases, 1)
	if !rep.Ok() {
		t.Fatalf("differential audit failed:\n%s", rep)
	}
	if rep.Cases < cases {
		t.Fatalf("ran %d cases, want %d", rep.Cases, cases)
	}
	t.Logf("clean: %d cases, kinds %v", rep.Cases, rep.ByKind)
}
