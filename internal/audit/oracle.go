package audit

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/interval"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Case is one randomized differential-audit instance: a seeded TVEG, a
// schedule (random or planner-produced), and the decision-problem
// parameters every feasibility check sees.
type Case struct {
	Seed      int64
	Graph     *tveg.Graph
	Schedule  schedule.Schedule
	Src       tvg.NodeID
	T0        float64
	Deadline  float64
	CostBound float64
	// Kind labels how the schedule was produced ("random" or the
	// planner's name).
	Kind string
}

func (c Case) String() string {
	return fmt.Sprintf("case{seed=%d n=%d model=%v τ=%g kind=%s |S|=%d src=v%d window=[%g,%g] C=%g}",
		c.Seed, c.Graph.N(), c.Graph.Model, c.Graph.Tau(), c.Kind, len(c.Schedule), c.Src, c.T0, c.Deadline, c.CostBound)
}

// GenerateCase derives a full audit case from a seed. The generator
// sweeps the axes the τ-unification bugs lived on: τ ∈ {0, small,
// large}, static step vs. Rayleigh fading channels, equal-time
// transmission groups, non-stop chains scheduled exactly τ apart, and
// premature relays scheduled inside a packet's [t, t+τ) flight window.
//
// Costs are drawn so that failure probabilities stay clear of the
// (MaxDraw, 1) sliver where the optimistic reference and the
// ForceSuccess-driven Monte Carlo executors could disagree: either 0
// (φ = 1 exactly) or at least 0.4× a minimum ε-cost (φ <= ~0.9 under
// Rayleigh with the generator's distance range).
func GenerateCase(seed int64) Case {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(7)
	tau := []float64{0, 0.5, 7}[rng.Intn(3)]
	model := tveg.Static
	if rng.Intn(2) == 1 {
		model = tveg.RayleighFading
	}
	g := randomTVEG(rng, n, tau, model)
	src := tvg.NodeID(rng.Intn(n))
	t0 := 20 * rng.Float64()
	deadline := t0 + 50 + 100*rng.Float64()

	c := Case{Seed: seed, Graph: g, Src: src, T0: t0, Deadline: deadline, CostBound: math.Inf(1)}
	if rng.Intn(4) == 3 {
		c.Schedule, c.Kind = plannerSchedule(rng, g, src, t0, deadline)
	}
	if c.Schedule == nil {
		c.Schedule, c.Kind = randomSchedule(rng, g, src, t0, deadline), "random"
	}
	if rng.Intn(4) == 0 && len(c.Schedule) > 0 {
		// A finite budget between 30% and 130% of the actual cost
		// exercises condition (iv) on both sides.
		c.CostBound = c.Schedule.TotalCost() * (0.3 + rng.Float64())
	}
	return c
}

// randomTVEG builds a seeded TVEG over the span [0, 200): a random
// spanning chain (so most broadcasts can make progress) plus random
// extra contacts.
func randomTVEG(rng *rand.Rand, n int, tau float64, model tveg.Model) *tveg.Graph {
	g := tveg.New(n, interval.Interval{Start: 0, End: 200}, tau, tveg.DefaultParams(), model)
	contact := func(i, j tvg.NodeID) {
		start := 140 * rng.Float64()
		iv := interval.Interval{Start: start, End: start + 15 + 40*rng.Float64()}
		g.AddContact(i, j, iv, 5+10*rng.Float64())
	}
	for i := 1; i < n; i++ {
		contact(tvg.NodeID(rng.Intn(i)), tvg.NodeID(i))
	}
	for k := 0; k < n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			contact(tvg.NodeID(i), tvg.NodeID(j))
		}
	}
	return g
}

// randomSchedule draws 1..2n transmissions with adversarial time
// structure: fresh uniform times, reuses of earlier times (equal-time
// groups), exact non-stop chains at +τ, premature relays inside
// [t, t+τ), and a few departures beyond the deadline.
func randomSchedule(rng *rand.Rand, g *tveg.Graph, src tvg.NodeID, t0, deadline float64) schedule.Schedule {
	tau := g.Tau()
	k := 1 + rng.Intn(2*g.N())
	var s schedule.Schedule
	for len(s) < k {
		relay := tvg.NodeID(rng.Intn(g.N()))
		var t float64
		switch pick := rng.Float64(); {
		case len(s) > 0 && pick < 0.2:
			t = s[rng.Intn(len(s))].T // join an equal-time group
		case len(s) > 0 && tau > 0 && pick < 0.45:
			base := s[rng.Intn(len(s))].T
			if rng.Intn(2) == 0 {
				t = base + tau // legitimate non-stop chain hop
			} else {
				t = base + tau*rng.Float64() // premature: inside the flight window
			}
		case pick < 0.5:
			t = deadline + 5*rng.Float64() // beyond the deadline: condition (iii)
		default:
			t = t0 + (deadline-t0)*rng.Float64()
		}
		s = append(s, schedule.Transmission{Relay: relay, T: t, W: costFor(rng, g, relay, t)})
	}
	s.SortByTime()
	return s
}

// costFor picks a transmission cost aimed at a random ever-neighbor:
// usually the ε-minimum cost (or a multiple), sometimes an insufficient
// half, sometimes zero (φ = 1 exactly).
func costFor(rng *rand.Rand, g *tveg.Graph, relay tvg.NodeID, t float64) float64 {
	nbs := g.EverNeighbors(relay)
	if len(nbs) == 0 {
		return 0
	}
	w := g.MinCost(relay, nbs[rng.Intn(len(nbs))], t)
	if math.IsInf(w, 1) {
		// Edge absent at t: price as if at a mid-range distance so the
		// row still stresses the in-range checks of other receivers.
		w = g.Params.NoiseGamma() * 100
	}
	return w * []float64{0, 0.5, 1, 1, 2}[rng.Intn(5)]
}

// plannerSchedule runs one of the §VI/§VII planners appropriate for the
// channel model. Best-effort schedules behind IncompleteError are kept
// (they are valid and exercise partial coverage); any other failure
// falls back to nil and the caller uses a random schedule.
func plannerSchedule(rng *rand.Rand, g *tveg.Graph, src tvg.NodeID, t0, deadline float64) (schedule.Schedule, string) {
	var alg core.Scheduler
	if g.Model.Fading() {
		alg = []core.Scheduler{
			core.FREEDCB{Level: 1},
			core.FRGreedy{},
			core.FRRandom{Seed: rng.Int63()},
		}[rng.Intn(3)]
	} else {
		alg = []core.Scheduler{
			core.EEDCB{Level: 1},
			core.EEDCB{Level: 2},
			core.Greedy{},
			core.Random{Seed: rng.Int63()},
		}[rng.Intn(4)]
	}
	s, err := alg.Schedule(g, src, t0, deadline)
	if err != nil {
		var ie *core.IncompleteError
		if !errors.As(err, &ie) {
			return nil, ""
		}
	}
	return s, alg.Name()
}

// CompareSchedule runs one (graph, schedule) instance through the
// reference executor, sim.Evaluate, des.Execute, sim.InformedTimes
// (static graphs), schedule.CheckFeasible, and the independent
// Feasibility check, and returns one line per disagreement (nil when
// all executors agree).
func CompareSchedule(g *tveg.Graph, s schedule.Schedule, src tvg.NodeID, t0, deadline, costBound float64) []string {
	var diffs []string
	report := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	ref := Execute(g, s, src, Options{T0: t0})
	n := g.N()
	gamma := g.Params.GammaTh

	// sim.Evaluate under forced success: delivery and consumed energy.
	ev := sim.Evaluate(g, s, src, 1, ForceSuccess())
	if d := int(math.Round(ev.MeanDelivery * float64(n))); d != ref.Delivered {
		report("sim.Evaluate delivered %d nodes, reference delivered %d", d, ref.Delivered)
	}
	if want := ref.ConsumedEnergy / gamma; !closeRel(ev.MeanEnergy, want) {
		report("sim.Evaluate consumed %g (normalized), reference %g", ev.MeanEnergy, want)
	}

	// des.Execute under forced success: per-node reception times,
	// delivery, energy. Interference off — the collision model is a
	// deliberately different semantics.
	dres, err := des.Execute(g, s, src, t0, des.ExecOptions{}, ForceSuccess())
	if err != nil {
		report("des.Execute failed: %v", err)
	} else {
		for i := 0; i < n; i++ {
			if !closeTime(desTime(dres.InformedAt[i]), ref.RecvAt[i]) {
				report("des.Execute informs v%d at %g, reference at %g", i, desTime(dres.InformedAt[i]), ref.RecvAt[i])
			}
		}
		if dres.Delivered != ref.Delivered {
			report("des.Execute delivered %d nodes, reference delivered %d", dres.Delivered, ref.Delivered)
		}
		if !closeRel(dres.ConsumedEnergy, ref.ConsumedEnergy) {
			report("des.Execute consumed %g J, reference %g J", dres.ConsumedEnergy, ref.ConsumedEnergy)
		}
	}

	// sim.InformedTimes: static graphs only (it panics under fading).
	if !g.Model.Fading() {
		it := sim.InformedTimes(g, s, src)
		for i := 0; i < n; i++ {
			if tvg.NodeID(i) == src {
				continue // InformedTimes pins the source at 0, the reference at T0
			}
			if !closeTime(it[i], ref.RecvAt[i]) {
				report("sim.InformedTimes informs v%d at %g, reference at %g", i, it[i], ref.RecvAt[i])
			}
		}
	}

	// Feasibility verdicts: CheckFeasible vs. the independent recoding.
	cfCond, cfDetail := 0, ""
	if err := schedule.CheckFeasible(g, s, src, deadline, costBound); err != nil {
		v := err.(*schedule.Violation)
		cfCond, cfDetail = v.Condition, v.Detail
	}
	aCond, aDetail := Feasibility(g, s, src, deadline, costBound)
	if cfCond != aCond {
		report("CheckFeasible verdict %d (%s), independent check %d (%s)", cfCond, cfDetail, aCond, aDetail)
	}

	// A feasible verdict implies the optimistic execution succeeds
	// outright: conditions (i)+(ii) put every relay's and every node's
	// uninformed probability at <= ε < MaxDraw^m for any schedule-sized
	// m, so some informing factor is below MaxDraw and the Possible
	// rule grants the reception. Fired relays, full delivery, and
	// arrivals within the deadline all follow.
	if cfCond == 0 {
		if ref.Delivered != n {
			report("schedule is feasible but reference delivered only %d/%d nodes", ref.Delivered, n)
		}
		for k, fired := range ref.Fired {
			if !fired {
				report("schedule is feasible but transmission #%d %v never fired", k, ref.Ordered[k])
			}
		}
		for i, t := range ref.RecvAt {
			if t > deadline+schedule.TimeTol {
				report("schedule is feasible but v%d is informed at %g, after T=%g", i, t, deadline)
			}
		}
	}
	return diffs
}

// CompareCase audits one generated case.
func CompareCase(c Case) []string {
	return CompareSchedule(c.Graph, c.Schedule, c.Src, c.T0, c.Deadline, c.CostBound)
}

// Mismatch is one failed case of a differential run, with the reference
// executor's event trace attached for diagnosis.
type Mismatch struct {
	Case  Case
	Diffs []string
	Trace string
}

func (m Mismatch) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v\n", m.Case)
	fmt.Fprintf(&b, "  schedule: %v\n", m.Case.Schedule)
	for _, d := range m.Diffs {
		fmt.Fprintf(&b, "  MISMATCH: %s\n", d)
	}
	b.WriteString("  reference trace:\n")
	for _, line := range strings.Split(strings.TrimRight(m.Trace, "\n"), "\n") {
		fmt.Fprintf(&b, "    %s\n", line)
	}
	return b.String()
}

// Report summarizes a differential run.
type Report struct {
	Cases      int
	ByKind     map[string]int
	Mismatches []Mismatch
}

// Ok reports a clean run.
func (r Report) Ok() bool { return len(r.Mismatches) == 0 }

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d cases, %d mismatches\n", r.Cases, len(r.Mismatches))
	for kind, n := range r.ByKind {
		fmt.Fprintf(&b, "  %-10s %d\n", kind, n)
	}
	for _, m := range r.Mismatches {
		b.WriteString(m.String())
	}
	return b.String()
}

// RunDifferential generates and audits `cases` seeded cases starting at
// baseSeed. Every mismatch carries the reference event trace.
func RunDifferential(cases int, baseSeed int64) Report {
	rep := Report{ByKind: map[string]int{}}
	for k := 0; k < cases; k++ {
		c := GenerateCase(baseSeed + int64(k))
		rep.Cases++
		rep.ByKind[c.Kind]++
		if diffs := CompareCase(c); len(diffs) > 0 {
			tr := Execute(c.Graph, c.Schedule, c.Src, Options{T0: c.T0, Events: true})
			rep.Mismatches = append(rep.Mismatches, Mismatch{Case: c, Diffs: diffs, Trace: FormatEvents(tr.Events)})
		}
	}
	return rep
}

// desTime maps the des engine's finite "never informed" sentinel to the
// reference executor's +Inf.
func desTime(t float64) float64 {
	if t >= 1e308 {
		return math.Inf(1)
	}
	return t
}

// closeTime compares two reception times: both never-informed, or equal
// within the schedule tolerance.
func closeTime(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) <= schedule.TimeTol
}

// closeRel compares two energies with a purely relative tolerance —
// costs live around 1e-16 J, so an absolute floor would pass anything.
// The executors sum identical float64 sequences, so in practice they
// agree bitwise.
func closeRel(a, b float64) bool {
	//tmedbvet:ignore floateq exact fast path (covers ±Inf and 0==0) before falling through to the relative-tolerance comparison below
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}
