package audit

import "testing"

// FuzzDifferential drives the differential oracle from fuzzed seeds:
// every executor must agree on every case the generator can produce.
// The generator owns all structure (graph, schedule, τ, window), so a
// seed is the complete reproducer for any failure.
func FuzzDifferential(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := GenerateCase(seed)
		if diffs := CompareCase(c); len(diffs) > 0 {
			tr := Execute(c.Graph, c.Schedule, c.Src, Options{T0: c.T0, Events: true})
			t.Fatalf("%s", Mismatch{Case: c, Diffs: diffs, Trace: FormatEvents(tr.Events)})
		}
	})
}

// FuzzIncrementalEdit drives the edit-sequence differential from fuzzed
// seeds: after every edit in a generated sequence, the incremental
// (memo-patched) solve must be byte-identical to a cold Build+solve on
// the edited trace. A seed is the complete reproducer.
func FuzzIncrementalEdit(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := GenerateEditCase(seed)
		if diffs := CompareEditCase(c); len(diffs) > 0 {
			t.Fatalf("%s", EditMismatch{Case: c, Diffs: diffs})
		}
	})
}
