package audit

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"

	"repro/internal/core"
	"repro/internal/haggle"
	"repro/internal/interval"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// This file is the edit-sequence differential harness: seeded random
// edit sequences applied to one long-lived graph (whose solves ride the
// version-keyed memo layer and its DTS/auxgraph patch paths) are checked
// after every step against a cold Build+solve on a fresh replay of the
// edited trace. The invariant is byte-identity — the incremental solve
// must return the exact schedule the cold solve returns, agree on the
// error taxonomy, and behave identically under the reference executor.

// EditKind enumerates the TVEG edit operations.
type EditKind int

const (
	OpAddContact EditKind = iota
	OpRemoveContact
	OpRetimeChannel
)

func (k EditKind) String() string {
	switch k {
	case OpAddContact:
		return "add"
	case OpRemoveContact:
		return "remove"
	case OpRetimeChannel:
		return "retime"
	}
	return fmt.Sprintf("EditKind(%d)", int(k))
}

// EditOp is one replayable mutation of a TVEG.
type EditOp struct {
	Kind EditKind
	I, J tvg.NodeID
	Iv   interval.Interval // contact window (add/remove), retime source
	To   interval.Interval // retime target
	Dist float64           // add only
}

// Apply runs the op against g. It reports whether the graph changed
// (no-op removals and identity retimes leave the version untouched) and
// the edit error, if any. Applying the same op to two graphs in the
// same state yields the same outcome — the replay the cold side of the
// differential depends on.
func (op EditOp) Apply(g *tveg.Graph) (bool, error) {
	switch op.Kind {
	case OpAddContact:
		g.AddContact(op.I, op.J, op.Iv, op.Dist)
		return true, nil
	case OpRemoveContact:
		return g.RemoveContact(op.I, op.J, op.Iv), nil
	case OpRetimeChannel:
		return g.RetimeChannel(op.I, op.J, op.Iv, op.To)
	}
	panic(fmt.Sprintf("audit: unknown edit kind %d", int(op.Kind)))
}

func (op EditOp) String() string {
	switch op.Kind {
	case OpRetimeChannel:
		return fmt.Sprintf("retime(%d,%d %v->%v)", op.I, op.J, op.Iv, op.To)
	case OpRemoveContact:
		return fmt.Sprintf("remove(%d,%d %v)", op.I, op.J, op.Iv)
	}
	return fmt.Sprintf("add(%d,%d %v d=%.3g)", op.I, op.J, op.Iv, op.Dist)
}

// EditCase is one seeded edit-sequence differential instance. The seed
// determines everything: base trace (synthetic or Haggle-derived), edit
// mix, the ops themselves, and the solve parameters.
type EditCase struct {
	Seed     int64
	Mix      string // "add-heavy", "remove-heavy", "retime-heavy"
	Base     string // "synthetic" or "haggle"
	BaseSeed int64
	N        int
	Tau      float64
	Model    tveg.Model
	Ops      []EditOp
	Src      tvg.NodeID
	T0       float64
	Deadline float64
	Alg      core.Scheduler
}

func (c EditCase) String() string {
	return fmt.Sprintf("editcase{seed=%d mix=%s base=%s n=%d τ=%g model=%v alg=%s ops=%v src=v%d window=[%g,%g]}",
		c.Seed, c.Mix, c.Base, c.N, c.Tau, c.Model, c.Alg.Name(), c.Ops, c.Src, c.T0, c.Deadline)
}

// BaseGraph materializes the case's pre-edit graph, cost cache enabled
// (so the differential also covers the selective cache invalidation the
// edit path relies on). Calling it twice yields independent graphs with
// identical contacts.
func (c EditCase) BaseGraph() *tveg.Graph {
	rng := rand.New(rand.NewSource(c.BaseSeed))
	if c.Base == "haggle" {
		tr := haggle.Generate(haggle.GenOptions{
			N: c.N, Horizon: 200, MeanInterContact: 60, ParetoAlpha: 1.5,
			MeanContact: 25, RampEnd: 40, KeepEarly: 0.3, DistMin: 5, DistMax: 12,
		}, rng)
		return tr.ToTVEG(c.Tau, tveg.DefaultParams(), c.Model)
	}
	return randomTVEG(rng, c.N, c.Tau, c.Model).EnableCostCache()
}

// GraphAt replays the first k ops onto a fresh base graph: the cold
// "edited trace" the incremental solve must match byte-for-byte. Edit
// errors during replay are deterministic reruns of errors the
// incremental side already saw, so they are discarded here.
func (c EditCase) GraphAt(k int) *tveg.Graph {
	g := c.BaseGraph()
	for _, op := range c.Ops[:k] {
		op.Apply(g)
	}
	return g
}

var editMixes = [...]string{"add-heavy", "remove-heavy", "retime-heavy"}

// GenerateEditCase derives a full edit-sequence case from a seed. The
// mix cycles with the seed so any contiguous seed range covers all
// three; ops are drawn against a working replay so removals and retimes
// can aim at contacts that actually exist at that point (while a slice
// of every mix still produces no-op removals, identity retimes, and
// adds outside the solve window).
func GenerateEditCase(seed int64) EditCase {
	rng := rand.New(rand.NewSource(seed))
	c := EditCase{
		Seed:     seed,
		Mix:      editMixes[((seed%3)+3)%3],
		BaseSeed: rng.Int63(),
		N:        5 + rng.Intn(6),
		Tau:      []float64{0, 0.5, 7}[rng.Intn(3)],
		Base:     "synthetic",
		Model:    tveg.Static,
	}
	if rng.Intn(3) == 0 {
		c.Base = "haggle"
	}
	if rng.Intn(3) == 0 {
		c.Model = tveg.RayleighFading
	}
	if c.Model.Fading() {
		c.Alg = []core.Scheduler{core.FREEDCB{Level: 1}, core.FRGreedy{}}[rng.Intn(2)]
	} else {
		c.Alg = []core.Scheduler{core.EEDCB{Level: 1}, core.EEDCB{Level: 2}, core.Greedy{}}[rng.Intn(3)]
	}
	c.Src = tvg.NodeID(rng.Intn(c.N))
	c.T0 = 20 * rng.Float64()
	c.Deadline = c.T0 + 60 + 100*rng.Float64()

	g := c.BaseGraph()
	nops := 3 + rng.Intn(4)
	for len(c.Ops) < nops {
		op := drawEditOp(rng, g, c.Mix)
		op.Apply(g)
		c.Ops = append(c.Ops, op)
	}
	return c
}

// contactRow is one (pair, segment) of a graph, the unit removals and
// retimes aim at.
type contactRow struct {
	i, j tvg.NodeID
	seg  tveg.Segment
}

func contactRows(g *tveg.Graph) []contactRow {
	var rows []contactRow
	n := g.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for _, s := range g.Segments(tvg.NodeID(i), tvg.NodeID(j)) {
				rows = append(rows, contactRow{tvg.NodeID(i), tvg.NodeID(j), s})
			}
		}
	}
	return rows
}

// drawEditOp draws one edit following the mix's kind weights.
func drawEditOp(rng *rand.Rand, g *tveg.Graph, mix string) EditOp {
	var pAdd, pRemove float64
	switch mix {
	case "add-heavy":
		pAdd, pRemove = 0.6, 0.2
	case "remove-heavy":
		pAdd, pRemove = 0.2, 0.6
	default: // retime-heavy
		pAdd, pRemove = 0.25, 0.25
	}
	kind := OpRetimeChannel
	switch pick := rng.Float64(); {
	case pick < pAdd:
		kind = OpAddContact
	case pick < pAdd+pRemove:
		kind = OpRemoveContact
	}

	n := g.N()
	randPair := func() (tvg.NodeID, tvg.NodeID) {
		i := tvg.NodeID(rng.Intn(n))
		j := tvg.NodeID((int(i) + 1 + rng.Intn(n-1)) % n)
		return i, j
	}
	window := func() interval.Interval {
		// Starts range past 170 so some contacts land entirely outside
		// every solve window the generator can draw.
		start := 185 * rng.Float64()
		return interval.Interval{Start: start, End: start + 10 + 30*rng.Float64()}
	}
	rows := contactRows(g)
	switch {
	case kind == OpRemoveContact && len(rows) > 0 && rng.Float64() < 0.7:
		// Aimed removal: the exact contact, a strict sub-window, or a
		// superset spilling over both ends.
		row := rows[rng.Intn(len(rows))]
		iv := row.seg.Iv
		switch rng.Intn(3) {
		case 0: // exact
		case 1: // interior slice
			w := iv.End - iv.Start
			iv = interval.Interval{Start: iv.Start + 0.2*w, End: iv.End - 0.2*w}
		case 2: // superset
			iv = interval.Interval{Start: iv.Start - 5, End: iv.End + 5}
		}
		return EditOp{Kind: OpRemoveContact, I: row.i, J: row.j, Iv: iv}
	case kind == OpRemoveContact:
		// Blind removal: frequently a no-op on an absent contact.
		i, j := randPair()
		return EditOp{Kind: OpRemoveContact, I: i, J: j, Iv: window()}
	case kind == OpRetimeChannel && len(rows) > 0:
		row := rows[rng.Intn(len(rows))]
		from := row.seg.Iv
		to := from // identity retime: a no-op that must not bump anything
		if rng.Float64() < 0.9 {
			start := 185 * rng.Float64()
			to = interval.Interval{Start: start, End: start + (from.End - from.Start)}
		}
		return EditOp{Kind: OpRetimeChannel, I: row.i, J: row.j, Iv: from, To: to}
	default:
		i, j := randPair()
		return EditOp{Kind: OpAddContact, I: i, J: j, Iv: window(), Dist: 5 + 10*rng.Float64()}
	}
}

// CompareEditCase replays the case's edit sequence on one long-lived
// graph — memoized solves, DTS/auxgraph patch paths engaged — against a
// fresh cold rebuild of the edited trace after every step, and returns
// one line per disagreement (nil when incremental ≡ cold throughout).
func CompareEditCase(c EditCase) []string {
	var diffs []string
	report := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}

	inc := c.BaseGraph()
	// The pre-edit solve seeds the memo layer, giving every edited
	// version an ancestor to derive from.
	sPrev, _ := c.Alg.Schedule(inc, c.Src, c.T0, c.Deadline)
	for k, op := range c.Ops {
		changed, editErr := op.Apply(inc)
		cold := c.GraphAt(k + 1)
		if coldChanged, coldErr := replayLastOp(c, k); coldChanged != changed || !sameError(coldErr, editErr) {
			report("step %d %v: edit outcome diverges on replay: incremental (%v, %q), cold (%v, %q)",
				k, op, changed, errString(editErr), coldChanged, errString(coldErr))
		}

		sInc, errInc := c.Alg.Schedule(inc, c.Src, c.T0, c.Deadline)
		sCold, errCold := c.Alg.Schedule(cold, c.Src, c.T0, c.Deadline)
		if !sameSolveError(errInc, errCold) {
			report("step %d %v: incremental solve error %q, cold solve error %q",
				k, op, errString(errInc), errString(errCold))
		}
		if !reflect.DeepEqual(sInc, sCold) {
			report("step %d %v: incremental schedule diverges from cold solve\n  incremental: %v\n  cold:        %v",
				k, op, sInc, sCold)
		}
		if !changed && editErr == nil && !reflect.DeepEqual(sInc, sPrev) {
			report("step %d %v: no-op edit changed the schedule\n  before: %v\n  after:  %v", k, op, sPrev, sInc)
		}

		// Reference-executor cross-check: the incremental schedule must
		// behave identically on the incremental graph and the cold replay
		// — same receptions, same firings, same consumed energy.
		trInc := Execute(inc, sInc, c.Src, Options{T0: c.T0})
		trCold := Execute(cold, sInc, c.Src, Options{T0: c.T0})
		if d := traceDiff(trInc, trCold); d != "" {
			report("step %d %v: reference execution diverges between incremental and cold graph: %s", k, op, d)
		}
		sPrev = sInc
	}

	// Full executor sweep (sim, des, feasibility) on the final edited
	// trace, with the schedule the incremental path produced.
	final := c.GraphAt(len(c.Ops))
	diffs = append(diffs, CompareSchedule(final, sPrev, c.Src, c.T0, c.Deadline, math.Inf(1))...)
	return diffs
}

// replayLastOp applies ops[:k] to a fresh base and then reports op[k]'s
// outcome on that cold state.
func replayLastOp(c EditCase, k int) (bool, error) {
	return c.Ops[k].Apply(c.GraphAt(k))
}

// sameSolveError compares planner error taxonomy: both nil, both the
// same IncompleteError (identical uncovered sets), or identical
// messages.
func sameSolveError(a, b error) bool {
	var ia, ib *core.IncompleteError
	aInc := errors.As(a, &ia)
	bInc := errors.As(b, &ib)
	if aInc || bInc {
		return aInc && bInc && reflect.DeepEqual(ia.Uncovered, ib.Uncovered)
	}
	return sameError(a, b)
}

func sameError(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// traceDiff compares two reference-executor traces exactly; both sides
// sum identical float64 sequences, so even the energies match bitwise.
func traceDiff(a, b *Trace) string {
	if a.Delivered != b.Delivered {
		return fmt.Sprintf("delivered %d vs %d", a.Delivered, b.Delivered)
	}
	if !reflect.DeepEqual(a.RecvAt, b.RecvAt) {
		return fmt.Sprintf("receptions %v vs %v", a.RecvAt, b.RecvAt)
	}
	if !reflect.DeepEqual(a.Fired, b.Fired) {
		return fmt.Sprintf("firings %v vs %v", a.Fired, b.Fired)
	}
	//tmedbvet:ignore floateq both executions sum the same float64 sequence; any drift is a real divergence
	if a.ConsumedEnergy != b.ConsumedEnergy {
		return fmt.Sprintf("consumed energy %g vs %g", a.ConsumedEnergy, b.ConsumedEnergy)
	}
	return ""
}

// EditMismatch is one failed edit-sequence case.
type EditMismatch struct {
	Case  EditCase
	Diffs []string
}

func (m EditMismatch) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v\n", m.Case)
	for _, d := range m.Diffs {
		fmt.Fprintf(&b, "  MISMATCH: %s\n", d)
	}
	return b.String()
}

// EditReport summarizes an edit-differential run.
type EditReport struct {
	Cases      int
	ByMix      map[string]int
	ByBase     map[string]int
	Mismatches []EditMismatch
}

// Ok reports a clean run.
func (r EditReport) Ok() bool { return len(r.Mismatches) == 0 }

func (r EditReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d edit cases, %d mismatches\n", r.Cases, len(r.Mismatches))
	for mix, n := range r.ByMix {
		fmt.Fprintf(&b, "  %-12s %d\n", mix, n)
	}
	for base, n := range r.ByBase {
		fmt.Fprintf(&b, "  %-12s %d\n", base, n)
	}
	for _, m := range r.Mismatches {
		b.WriteString(m.String())
	}
	return b.String()
}

// RunEditDifferential generates and audits `cases` seeded edit
// sequences starting at baseSeed.
func RunEditDifferential(cases int, baseSeed int64) EditReport {
	rep := EditReport{ByMix: map[string]int{}, ByBase: map[string]int{}}
	for k := 0; k < cases; k++ {
		c := GenerateEditCase(baseSeed + int64(k))
		rep.Cases++
		rep.ByMix[c.Mix]++
		rep.ByBase[c.Base]++
		if diffs := CompareEditCase(c); len(diffs) > 0 {
			rep.Mismatches = append(rep.Mismatches, EditMismatch{Case: c, Diffs: diffs})
		}
	}
	return rep
}
