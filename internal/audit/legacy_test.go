package audit

import (
	"math/rand"
	"testing"

	"repro/internal/des"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// legacyDelivered reimplements sim.Evaluate's pre-fix inner loop: a
// boolean informed set with no arrival times, under which a node
// informed at time t happily relays a transmission scheduled inside
// [t, t+τ) — the premature-relay bug this audit package exists to keep
// dead. Kept verbatim so the pinned fixture below keeps demonstrating
// that the differential oracle catches the old semantics.
func legacyDelivered(g *tveg.Graph, s schedule.Schedule, src tvg.NodeID, rng *rand.Rand) int {
	ordered := make(schedule.Schedule, len(s))
	copy(ordered, s)
	ordered.SortByTime()
	informed := make([]bool, g.N())
	informed[src] = true
	for _, x := range ordered {
		if !informed[x.Relay] {
			continue
		}
		for _, j := range g.EverNeighbors(x.Relay) {
			if informed[j] || !g.RhoTau(x.Relay, j, x.T) {
				continue
			}
			failure := g.EDAt(x.Relay, j, x.T).FailureProb(x.W)
			if failure <= 0 || rng.Float64() >= failure {
				informed[j] = true
			}
		}
	}
	n := 0
	for _, ok := range informed {
		if ok {
			n++
		}
	}
	return n
}

// TestLegacyEvaluateCaughtByOracle is the pinned pre-fix fixture of the
// audit acceptance criteria: a τ = 5 chain whose second hop departs at
// t = 12, inside the first packet's [10, 15) flight window. The legacy
// boolean executor relays it and delivers all 3 nodes; every current
// executor (and the feasibility checks) must refuse.
func TestLegacyEvaluateCaughtByOracle(t *testing.T) {
	const tau = 5.0
	g := lineGraph(3, tau, tveg.Static)
	s := schedule.Schedule{
		{Relay: 0, T: 10, W: g.MinCost(0, 1, 10)},
		{Relay: 1, T: 12, W: g.MinCost(1, 2, 12)},
	}

	legacy := legacyDelivered(g, s, 0, ForceSuccess())
	if legacy != 3 {
		t.Fatalf("legacy executor delivered %d, want 3 — the fixture no longer reproduces the old bug", legacy)
	}

	ref := Execute(g, s, 0, Options{})
	if ref.Delivered != 2 {
		t.Fatalf("reference delivered %d, want 2", ref.Delivered)
	}
	if legacy == ref.Delivered {
		t.Fatal("fixture no longer distinguishes legacy from reference semantics")
	}

	// Every live executor must side with the reference, not the legacy.
	if ev := sim.Evaluate(g, s, 0, 1, ForceSuccess()); int(ev.MeanDelivery*3+0.5) != 2 {
		t.Fatalf("sim.Evaluate delivered %g nodes, want 2", ev.MeanDelivery*3)
	}
	it := sim.InformedTimes(g, s, 0)
	if it[2] < 1e308 {
		t.Fatalf("sim.InformedTimes informs v2 at %g, want never", it[2])
	}
	dres, err := des.Execute(g, s, 0, 0, des.ExecOptions{}, ForceSuccess())
	if err != nil {
		t.Fatal(err)
	}
	if dres.Delivered != 2 {
		t.Fatalf("des.Execute delivered %d, want 2", dres.Delivered)
	}
	err = schedule.CheckFeasible(g, s, 0, 30, 1e300)
	v, ok := err.(*schedule.Violation)
	if !ok || v.Condition != 1 {
		t.Fatalf("CheckFeasible = %v, want condition (i) violation", err)
	}
	if cond, _ := Feasibility(g, s, 0, 30, 1e300); cond != 1 {
		t.Fatalf("Feasibility = %d, want 1", cond)
	}

	// And the full differential comparison must be clean for the fixed
	// executors: the only divergent semantics left is the legacy loop.
	if diffs := CompareSchedule(g, s, 0, 0, 30, 1e300); len(diffs) != 0 {
		t.Fatalf("fixed executors disagree on the fixture: %v", diffs)
	}
}
