package audit

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dts"
	"repro/internal/interval"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// TestGenerateEditCaseDeterministic: the edit generator must be
// reproducible from the seed alone, including the replayed base graph.
func TestGenerateEditCaseDeterministic(t *testing.T) {
	a, b := GenerateEditCase(42), GenerateEditCase(42)
	if a.String() != b.String() {
		t.Fatalf("case header differs:\n%v\n%v", a, b)
	}
	ga, gb := a.BaseGraph(), a.BaseGraph()
	if ga.Version() != gb.Version() {
		t.Fatalf("base replays diverge: versions %d vs %d", ga.Version(), gb.Version())
	}
}

// TestEditGeneratorCoversAxes: across a contiguous seed range, the
// generator must produce all three edit mixes, both base-trace kinds,
// all three op kinds, and at least one no-op edit — or the differential
// silently stops covering the semantics it exists to pin.
func TestEditGeneratorCoversAxes(t *testing.T) {
	mixes := map[string]bool{}
	bases := map[string]bool{}
	kinds := map[EditKind]bool{}
	noop := false
	for seed := int64(0); seed < 60; seed++ {
		c := GenerateEditCase(seed)
		mixes[c.Mix] = true
		bases[c.Base] = true
		g := c.BaseGraph()
		for _, op := range c.Ops {
			kinds[op.Kind] = true
			if changed, err := op.Apply(g); !changed && err == nil {
				noop = true
			}
		}
	}
	if len(mixes) != 3 {
		t.Fatalf("mix coverage %v, want all three", mixes)
	}
	if len(bases) != 2 {
		t.Fatalf("base coverage %v, want synthetic and haggle", bases)
	}
	if len(kinds) != 3 {
		t.Fatalf("op-kind coverage %v, want add, remove, retime", kinds)
	}
	if !noop {
		t.Fatal("no no-op edit in 60 seeds")
	}
}

// TestEditDifferential is the headline acceptance gate: ≥500 seeded
// edit-sequence cases across the three mixes, each checking after every
// edit that the incremental solve is byte-identical to a cold
// Build+solve on the edited trace, agrees on the error taxonomy, and
// executes identically under the reference executor. The contiguous
// seed range guarantees all three mixes (mix cycles with seed%3).
func TestEditDifferential(t *testing.T) {
	cases := 510
	if testing.Short() {
		cases = 60
	}
	h0, _ := dts.PatchStats()
	t.Cleanup(func() {
		// The incremental side must actually ride the patch path, or the
		// differential compares cold against cold.
		if h1, _ := dts.PatchStats(); h1 <= h0 {
			t.Errorf("dts patch hits did not move (%d); the incremental side never took the patch path", h1)
		}
	})
	const chunk = 30
	for lo := 0; lo < cases; lo += chunk {
		lo := lo
		n := chunk
		if cases-lo < n {
			n = cases - lo
		}
		t.Run(fmt.Sprintf("seeds-%d-%d", lo, lo+n-1), func(t *testing.T) {
			t.Parallel()
			rep := RunEditDifferential(n, int64(lo))
			if !rep.Ok() {
				t.Fatalf("edit differential failed:\n%s", rep)
			}
			if len(rep.ByMix) != 3 {
				t.Fatalf("mix coverage %v in a 30-seed chunk, want all three", rep.ByMix)
			}
		})
	}
}

// editChain is the 4-node chain 0-1-2-3 over staggered contact windows,
// small enough that edge-case edits have predictable effects.
func editChain() *tveg.Graph {
	g := tveg.New(4, interval.Interval{Start: 0, End: 200}, 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, interval.Interval{Start: 10, End: 50}, 8)
	g.AddContact(1, 2, interval.Interval{Start: 30, End: 80}, 6)
	// Second (1,2) contact, beyond the solve window: retime targets that
	// collide with it must be rejected.
	g.AddContact(1, 2, interval.Interval{Start: 125, End: 145}, 6)
	g.AddContact(2, 3, interval.Interval{Start: 60, End: 110}, 9)
	return g.EnableCostCache()
}

// TestEditEdgeCases runs the hand-picked edge edits — no-op edits,
// edits entirely outside the solve window, and edits that disconnect
// the source — through the same incremental-vs-cold differential,
// including the error taxonomy.
func TestEditEdgeCases(t *testing.T) {
	const (
		t0       = 0.0
		deadline = 120.0
	)
	alg := core.EEDCB{Level: 1}
	for _, tc := range []struct {
		name string
		op   EditOp
		// wantChange: the edit bumps the version.
		wantChange bool
		// wantEditErr: the edit itself is rejected.
		wantEditErr bool
		// wantSameSchedule: the post-edit schedule equals the pre-edit one.
		wantSameSchedule bool
		// wantUncovered: nodes the post-edit solve must report unreachable.
		wantUncovered []tvg.NodeID
	}{
		{
			name:             "noop-remove-absent-pair",
			op:               EditOp{Kind: OpRemoveContact, I: 0, J: 3, Iv: interval.Interval{Start: 10, End: 50}},
			wantSameSchedule: true,
		},
		{
			name:             "noop-remove-disjoint-window",
			op:               EditOp{Kind: OpRemoveContact, I: 0, J: 1, Iv: interval.Interval{Start: 120, End: 150}},
			wantSameSchedule: true,
		},
		{
			name: "noop-identity-retime",
			op: EditOp{Kind: OpRetimeChannel, I: 1, J: 2,
				Iv: interval.Interval{Start: 30, End: 80}, To: interval.Interval{Start: 30, End: 80}},
			wantSameSchedule: true,
		},
		{
			name:             "add-outside-window",
			op:               EditOp{Kind: OpAddContact, I: 0, J: 3, Iv: interval.Interval{Start: 150, End: 180}, Dist: 5},
			wantChange:       true,
			wantSameSchedule: true,
		},
		{
			name: "retime-out-of-window",
			op: EditOp{Kind: OpRetimeChannel, I: 2, J: 3,
				Iv: interval.Interval{Start: 60, End: 110}, To: interval.Interval{Start: 130, End: 180}},
			wantChange:    true,
			wantUncovered: []tvg.NodeID{3},
		},
		{
			name:          "remove-disconnects-source",
			op:            EditOp{Kind: OpRemoveContact, I: 0, J: 1, Iv: interval.Interval{Start: 10, End: 50}},
			wantChange:    true,
			wantUncovered: []tvg.NodeID{1, 2, 3},
		},
		{
			name: "rejected-retime-overlap",
			op: EditOp{Kind: OpRetimeChannel, I: 1, J: 2,
				Iv: interval.Interval{Start: 30, End: 80}, To: interval.Interval{Start: 110, End: 130}},
			wantEditErr:      true,
			wantSameSchedule: true,
		},
		{
			name: "rejected-retime-missing-contact",
			op: EditOp{Kind: OpRetimeChannel, I: 0, J: 1,
				Iv: interval.Interval{Start: 11, End: 50}, To: interval.Interval{Start: 120, End: 160}},
			wantEditErr:      true,
			wantSameSchedule: true,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inc := editChain()
			sBefore, err := alg.Schedule(inc, 0, t0, deadline)
			if err != nil {
				t.Fatalf("pre-edit solve: %v", err)
			}
			vBefore := inc.Version()
			changed, editErr := tc.op.Apply(inc)
			if changed != tc.wantChange {
				t.Fatalf("edit changed=%v, want %v (err=%v)", changed, tc.wantChange, editErr)
			}
			if (editErr != nil) != tc.wantEditErr {
				t.Fatalf("edit error %v, want error=%v", editErr, tc.wantEditErr)
			}
			if !changed && inc.Version() != vBefore {
				t.Fatalf("no-op edit bumped the version %d -> %d", vBefore, inc.Version())
			}
			if changed && inc.Version() == vBefore {
				t.Fatal("effective edit left the version untouched")
			}

			// The cold side: a fresh graph in the edited state.
			cold := editChain()
			coldChanged, coldErr := tc.op.Apply(cold)
			if coldChanged != changed || !sameError(coldErr, editErr) {
				t.Fatalf("edit outcome diverges on replay: (%v, %v) vs (%v, %v)", changed, editErr, coldChanged, coldErr)
			}

			sInc, errInc := alg.Schedule(inc, 0, t0, deadline)
			sCold, errCold := alg.Schedule(cold, 0, t0, deadline)
			if !sameSolveError(errInc, errCold) {
				t.Fatalf("solve error taxonomy diverges: incremental %q, cold %q", errString(errInc), errString(errCold))
			}
			if !reflect.DeepEqual(sInc, sCold) {
				t.Fatalf("incremental schedule diverges from cold solve:\n inc:  %v\n cold: %v", sInc, sCold)
			}
			if tc.wantSameSchedule {
				if errInc != nil {
					t.Fatalf("solve after neutral edit failed: %v", errInc)
				}
				if !reflect.DeepEqual(sInc, sBefore) {
					t.Fatalf("neutral edit changed the schedule:\n before: %v\n after:  %v", sBefore, sInc)
				}
			}
			if tc.wantUncovered != nil {
				var ie *core.IncompleteError
				if !errors.As(errInc, &ie) {
					t.Fatalf("want IncompleteError covering %v, got %v", tc.wantUncovered, errInc)
				}
				if !reflect.DeepEqual(ie.Uncovered, tc.wantUncovered) {
					t.Fatalf("uncovered %v, want %v", ie.Uncovered, tc.wantUncovered)
				}
			}
		})
	}
}

// TestCompareEditCaseCatchesStaleness proves the differential has teeth:
// a deliberately corrupted incremental result — solving the pre-edit
// graph state as if it were the post-edit one — must produce diffs.
func TestCompareEditCaseCatchesStaleness(t *testing.T) {
	alg := core.EEDCB{Level: 1}
	g := editChain()
	sStale, err := alg.Schedule(g, 0, 0, 120)
	if err != nil {
		t.Fatalf("pre-edit solve: %v", err)
	}
	// Disconnect node 3; the stale schedule still claims to cover it.
	if !g.RemoveContact(2, 3, interval.Interval{Start: 60, End: 110}) {
		t.Fatal("test setup: removal must change the graph")
	}
	_, errFresh := alg.Schedule(g, 0, 0, 120)
	var ie *core.IncompleteError
	if !errors.As(errFresh, &ie) {
		t.Fatalf("test setup: post-edit solve should be incomplete, got %v", errFresh)
	}
	// The stale pre-edit schedule diverges from the honest post-edit one;
	// the harness's schedule comparison is exactly this DeepEqual.
	sFresh, _ := alg.Schedule(g, 0, 0, 120)
	if reflect.DeepEqual(sStale, sFresh) {
		t.Fatal("test setup: stale and fresh schedules coincide; pick a sharper edit")
	}
}
