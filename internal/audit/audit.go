// Package audit cross-checks the repo's four schedule-execution
// semantics against one latency-aware reference executor and against an
// independently coded feasibility check. The executors under audit are
//
//   - sim.Evaluate        (Monte Carlo metrics),
//   - sim.InformedTimes   (deterministic static execution),
//   - schedule.CheckFeasible (closed-form Eq. 6 conditions i–iv),
//   - des.Execute         (airtime discrete-event engine),
//
// all of which must implement the unified τ-propagation rule
// (schedule.Informs, DESIGN.md "Execution semantics"): a packet
// transmitted at t_k arrives at t_k + τ and its receiver cannot relay a
// transmission scheduled before that arrival; at τ = 0, same-instant
// cascades resolve in schedule order.
//
// The differential oracle (oracle.go) runs randomized (graph, schedule,
// τ) cases through every executor and fails loudly on any disagreement
// about who is informed when, which transmissions fire, consumed energy,
// or feasibility verdicts. Fading channels are made comparable by
// driving the Monte Carlo executors with the ForceSuccess source, under
// which a reception succeeds iff its failure probability is at most
// MaxDraw — exactly the reference executor's default Decide rule.
package audit

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// MaxDraw is the largest value math/rand.(*Rand).Float64 can return:
// 1 - 2^-53. The executors treat a reception as successful when the
// draw is >= the failure probability, so under ForceSuccess a reception
// succeeds iff failure <= MaxDraw.
const MaxDraw = 1 - 0x1p-53

// forceSuccessSource is a rand.Source whose every Int63 draw is the
// largest int64 that still converts to a float64 below 2^63, making
// Float64 return MaxDraw deterministically (returning 1<<63-1 instead
// would round to 2^63, hit Float64's f == 1 resample branch, and loop
// forever).
type forceSuccessSource struct{}

func (forceSuccessSource) Int63() int64 { return 1<<63 - 1024 }
func (forceSuccessSource) Seed(int64)   {}

// ForceSuccess returns a rand.Rand whose Float64 always yields MaxDraw,
// so every reception with failure probability <= MaxDraw succeeds and
// every reception with failure probability above it (in particular the
// static channel's φ = 1) fails. It turns sim.Evaluate and des.Execute
// into deterministic optimistic executors comparable with Execute.
func ForceSuccess() *rand.Rand { return rand.New(forceSuccessSource{}) }

// Possible is the reference executor's default Decide rule: a reception
// is granted iff it is possible under the ForceSuccess-driven Monte
// Carlo executors.
func Possible(failure float64) bool { return failure <= MaxDraw }

// EventKind labels one entry of the instrumented event trace.
type EventKind int

const (
	// EventTx records a transmission that fired.
	EventTx EventKind = iota
	// EventRecv records a completed reception (stamped at arrival).
	EventRecv
	// EventDrop records a skipped transmission or a failed reception,
	// with the cause.
	EventDrop
)

func (k EventKind) String() string {
	switch k {
	case EventTx:
		return "tx"
	case EventRecv:
		return "recv"
	case EventDrop:
		return "drop"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one entry of the reference executor's trace. Events appear
// in causal processing order (chronological by transmission; a Recv is
// emitted while its transmission is processed but stamped with the
// arrival time t_k + τ).
type Event struct {
	Kind EventKind
	// Index is the transmission's row in the chronologically ordered
	// schedule (Trace.Ordered).
	Index int
	// Relay is the transmitting node.
	Relay tvg.NodeID
	// Node is the receiver for Recv and reception Drops; equal to
	// Relay for Tx and skipped-transmission Drops.
	Node tvg.NodeID
	// T is the departure time for Tx/skip events and the arrival time
	// for Recv events.
	T float64
	// W is the transmission cost.
	W float64
	// Cause explains a Drop.
	Cause string
}

func (e Event) String() string {
	switch e.Kind {
	case EventTx:
		return fmt.Sprintf("tx    #%d v%d @%g w=%.3g", e.Index, e.Relay, e.T, e.W)
	case EventRecv:
		return fmt.Sprintf("recv  #%d v%d<-v%d @%g", e.Index, e.Node, e.Relay, e.T)
	default:
		return fmt.Sprintf("drop  #%d v%d<-v%d @%g (%s)", e.Index, e.Node, e.Relay, e.T, e.Cause)
	}
}

// Trace is the result of one reference execution.
type Trace struct {
	// Ordered is the chronologically ordered copy of the schedule the
	// executor ran; event indices refer to its rows.
	Ordered schedule.Schedule
	// RecvAt holds each node's reception time (+Inf when never
	// informed; the source holds T0).
	RecvAt []float64
	// Fired marks the rows of Ordered that actually transmitted.
	Fired []bool
	// ConsumedEnergy sums the costs of fired transmissions (joules,
	// not normalized).
	ConsumedEnergy float64
	// Delivered counts informed nodes, source included.
	Delivered int
	// Events is the ordered event trace (nil unless Options.Events).
	Events []Event
}

// Options tunes one reference execution.
type Options struct {
	// T0 is the broadcast release time (the source's informed time).
	T0 float64
	// Events enables the instrumented event trace.
	Events bool
	// Decide maps a reception's failure probability to success. Nil
	// uses Possible, the optimistic rule matching ForceSuccess-driven
	// Monte Carlo execution.
	Decide func(failure float64) bool
	// Obs counts audit.tx / audit.recv / audit.drop across executions.
	// Write-only; nil records nothing and traces are identical either
	// way.
	Obs *obs.Recorder
}

// Execute runs the schedule once from src under the unified
// τ-propagation rule and returns the full reception trace. It is the
// reference the differential oracle compares every other executor
// against, so it is written for obviousness, not speed: chronological
// sweep, per-node arrival times, the relay gate t_recv <= t_k + TimeTol,
// and reception grants at t_k + τ.
func Execute(g *tveg.Graph, s schedule.Schedule, src tvg.NodeID, opts Options) *Trace {
	ordered := make(schedule.Schedule, len(s))
	copy(ordered, s)
	ordered.SortByTime()

	decide := opts.Decide
	if decide == nil {
		decide = Possible
	}
	tau := g.Tau()
	tr := &Trace{
		Ordered: ordered,
		RecvAt:  make([]float64, g.N()),
		Fired:   make([]bool, len(ordered)),
	}
	for i := range tr.RecvAt {
		tr.RecvAt[i] = math.Inf(1)
	}
	tr.RecvAt[src] = opts.T0

	txCount := opts.Obs.Counter("audit.tx")
	recvCount := opts.Obs.Counter("audit.recv")
	dropCount := opts.Obs.Counter("audit.drop")
	emit := func(e Event) {
		switch e.Kind {
		case EventTx:
			txCount.Inc()
		case EventRecv:
			recvCount.Inc()
		case EventDrop:
			dropCount.Inc()
		}
		if opts.Events {
			tr.Events = append(tr.Events, e)
		}
	}
	for k, x := range ordered {
		if arrive := tr.RecvAt[x.Relay]; arrive > x.T+schedule.TimeTol {
			cause := "relay never informed"
			if !math.IsInf(arrive, 1) {
				cause = fmt.Sprintf("relay's packet still in flight (arrives at %g)", arrive)
			}
			emit(Event{Kind: EventDrop, Index: k, Relay: x.Relay, Node: x.Relay, T: x.T, W: x.W, Cause: cause})
			continue
		}
		tr.Fired[k] = true
		tr.ConsumedEnergy += x.W
		emit(Event{Kind: EventTx, Index: k, Relay: x.Relay, Node: x.Relay, T: x.T, W: x.W})
		for _, j := range g.EverNeighbors(x.Relay) {
			if tr.RecvAt[j] <= x.T {
				continue // already holds the packet
			}
			if !g.RhoTau(x.Relay, j, x.T) {
				continue // out of range for the whole [t, t+τ] window
			}
			failure := g.EDAt(x.Relay, j, x.T).FailureProb(x.W)
			if !decide(failure) {
				emit(Event{Kind: EventDrop, Index: k, Relay: x.Relay, Node: j, T: x.T, W: x.W,
					Cause: fmt.Sprintf("channel failure (φ=%.4g)", failure)})
				continue
			}
			if t := x.T + tau; t < tr.RecvAt[j] {
				tr.RecvAt[j] = t
				emit(Event{Kind: EventRecv, Index: k, Relay: x.Relay, Node: j, T: t, W: x.W})
			}
		}
	}
	for _, t := range tr.RecvAt {
		if !math.IsInf(t, 1) {
			tr.Delivered++
		}
	}
	return tr
}

// FormatEvents renders the event trace one line per event — the
// explanation attached to every oracle mismatch.
func FormatEvents(events []Event) string {
	if len(events) == 0 {
		return "(no events)"
	}
	out := ""
	for _, e := range events {
		out += e.String() + "\n"
	}
	return out
}
