package audit

import (
	"math"
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// lineGraph builds the chain 0-1-...-(n-1) with every contact alive over
// [0, 100) at distance 10.
func lineGraph(n int, tau float64, model tveg.Model) *tveg.Graph {
	g := tveg.New(n, interval.Interval{Start: 0, End: 100}, tau, tveg.DefaultParams(), model)
	for i := 0; i+1 < n; i++ {
		g.AddContact(tvg.NodeID(i), tvg.NodeID(i+1), interval.Interval{Start: 0, End: 100}, 10)
	}
	return g
}

func TestForceSuccessDraw(t *testing.T) {
	rng := ForceSuccess()
	for i := 0; i < 4; i++ {
		if d := rng.Float64(); d != MaxDraw {
			t.Fatalf("draw %d: got %g, want MaxDraw=%g", i, d, MaxDraw)
		}
	}
	if !Possible(MaxDraw) {
		t.Fatal("Possible(MaxDraw) must hold")
	}
	if Possible(1) {
		t.Fatal("Possible(1) must not hold: φ=1 receptions always fail")
	}
}

func TestReferenceExecutorNonStopChain(t *testing.T) {
	const tau = 5.0
	g := lineGraph(3, tau, tveg.Static)
	w01 := g.MinCost(0, 1, 10)
	w12 := g.MinCost(1, 2, 15)
	s := schedule.Schedule{
		{Relay: 0, T: 10, W: w01},
		{Relay: 1, T: 15, W: w12}, // departs exactly at arrival: legal non-stop hop
	}
	tr := Execute(g, s, 0, Options{})
	if tr.Delivered != 3 {
		t.Fatalf("non-stop chain delivered %d, want 3", tr.Delivered)
	}
	if got := tr.RecvAt[2]; got != 20 {
		t.Fatalf("v2 informed at %g, want 20", got)
	}
	if !tr.Fired[0] || !tr.Fired[1] {
		t.Fatalf("both transmissions must fire, got %v", tr.Fired)
	}
}

func TestReferenceExecutorPrematureRelayDropped(t *testing.T) {
	const tau = 5.0
	g := lineGraph(3, tau, tveg.Static)
	s := schedule.Schedule{
		{Relay: 0, T: 10, W: g.MinCost(0, 1, 10)},
		{Relay: 1, T: 12, W: g.MinCost(1, 2, 12)}, // inside [10, 15): packet still in flight
	}
	tr := Execute(g, s, 0, Options{Events: true})
	if tr.Delivered != 2 {
		t.Fatalf("premature chain delivered %d, want 2 (v2 must stay uninformed)", tr.Delivered)
	}
	if tr.Fired[1] {
		t.Fatal("transmission by a relay whose packet is in flight must not fire")
	}
	if !math.IsInf(tr.RecvAt[2], 1) {
		t.Fatalf("v2 informed at %g, want never", tr.RecvAt[2])
	}
	trace := FormatEvents(tr.Events)
	if !strings.Contains(trace, "still in flight (arrives at 15)") {
		t.Fatalf("drop cause missing from trace:\n%s", trace)
	}
}

func TestReferenceExecutorTauZeroCascade(t *testing.T) {
	g := lineGraph(4, 0, tveg.Static)
	// Whole chain on one timestamp: the τ = 0 non-stop cascade resolves
	// in schedule order.
	s := schedule.Schedule{
		{Relay: 0, T: 10, W: g.MinCost(0, 1, 10)},
		{Relay: 1, T: 10, W: g.MinCost(1, 2, 10)},
		{Relay: 2, T: 10, W: g.MinCost(2, 3, 10)},
	}
	tr := Execute(g, s, 0, Options{})
	if tr.Delivered != 4 {
		t.Fatalf("τ=0 cascade delivered %d, want 4", tr.Delivered)
	}
	for i := 1; i < 4; i++ {
		if tr.RecvAt[i] != 10 {
			t.Fatalf("v%d informed at %g, want 10", i, tr.RecvAt[i])
		}
	}
	// The reverse row order must NOT cascade: with τ = 0 the tie-break
	// is schedule order, the documented semantics every executor shares.
	rev := schedule.Schedule{s[2], s[1], s[0]}
	tr = Execute(g, rev, 0, Options{})
	if tr.Delivered != 2 {
		t.Fatalf("reversed τ=0 cascade delivered %d, want 2", tr.Delivered)
	}
}

func TestEventTraceShapes(t *testing.T) {
	g := lineGraph(3, 0, tveg.Static)
	s := schedule.Schedule{
		{Relay: 0, T: 10, W: g.MinCost(0, 1, 10)},
		{Relay: 1, T: 20, W: 0}, // fires, but φ(0)=1: reception drop
	}
	tr := Execute(g, s, 0, Options{Events: true})
	var kinds []EventKind
	for _, e := range tr.Events {
		kinds = append(kinds, e.Kind)
	}
	want := []EventKind{EventTx, EventRecv, EventTx, EventDrop}
	if len(kinds) != len(want) {
		t.Fatalf("got %d events (%v), want %v:\n%s", len(kinds), kinds, want, FormatEvents(tr.Events))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d is %v, want %v:\n%s", i, kinds[i], want[i], FormatEvents(tr.Events))
		}
	}
	if !strings.Contains(tr.Events[3].Cause, "channel failure") {
		t.Fatalf("reception drop cause = %q", tr.Events[3].Cause)
	}
}

// TestFeasibilityAgreesOnFixtures pins the independent feasibility
// check against CheckFeasible on handcrafted single-condition
// violations (the differential test covers the randomized space).
func TestFeasibilityAgreesOnFixtures(t *testing.T) {
	const tau = 5.0
	g := lineGraph(3, tau, tveg.Static)
	w01 := g.MinCost(0, 1, 10)
	w12 := g.MinCost(1, 2, 15)
	ok := schedule.Schedule{{Relay: 0, T: 10, W: w01}, {Relay: 1, T: 15, W: w12}}
	cases := []struct {
		name      string
		s         schedule.Schedule
		deadline  float64
		costBound float64
		want      int
	}{
		{"feasible", ok, 30, math.Inf(1), 0},
		{"premature relay", schedule.Schedule{{Relay: 0, T: 10, W: w01}, {Relay: 1, T: 12, W: w12}}, 30, math.Inf(1), 1},
		{"node missed", schedule.Schedule{{Relay: 0, T: 10, W: w01}}, 30, math.Inf(1), 2},
		{"late", ok, 18, math.Inf(1), 3},
		{"over budget", ok, 30, w01, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, detail := Feasibility(g, tc.s, 0, tc.deadline, tc.costBound)
			if got != tc.want {
				t.Fatalf("Feasibility = %d (%s), want %d", got, detail, tc.want)
			}
			cf := 0
			if err := schedule.CheckFeasible(g, tc.s, 0, tc.deadline, tc.costBound); err != nil {
				cf = err.(*schedule.Violation).Condition
			}
			if cf != got {
				t.Fatalf("CheckFeasible verdict %d, independent check %d", cf, got)
			}
		})
	}
}
