package audit

import (
	"fmt"
	"math"

	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Feasibility re-derives the four TMEDB feasibility conditions of §IV
// from the paper's statement, independently of schedule.CheckFeasible's
// code, and returns the 1-based number of the first violated condition
// (0 when feasible) plus a human-readable detail. The oracle compares
// its verdict against CheckFeasible's.
//
// Two deliberate points of agreement with CheckFeasible — part of the
// spec, not shared code:
//
//   - conditions are evaluated in the same order (i, iii, ii, iv), so
//     a schedule violating several reports the same number;
//   - each Eq. 6 product multiplies failure factors in ascending
//     schedule order, so verdicts sitting exactly on ε cannot flip on
//     floating-point association differences.
func Feasibility(g *tveg.Graph, s schedule.Schedule, src tvg.NodeID, deadline, costBound float64) (int, string) {
	eps := g.Params.Eps * (1 + 1e-9)
	tau := g.Tau()

	// (i) every relay holds the packet when it transmits. A transmission
	// at t_k can only have contributed if its packet has arrived:
	// t_k + τ <= t_j (within TimeTol), or — same instant, τ = 0 only —
	// it precedes row j in schedule order.
	for j, x := range s {
		if x.Relay == src {
			continue
		}
		p := 1.0
		for k, y := range s {
			if y.Relay == x.Relay {
				continue // a node's own transmissions never inform it
			}
			arrived := y.T < x.T && y.T+tau <= x.T+schedule.TimeTol
			//tmedbvet:ignore floateq deliberate exact same-instant tie-break: this line independently recodes schedule.Informs' tau=0 cascade rule
			sameInstant := y.T == x.T && tau <= schedule.TimeTol && k < j
			if !arrived && !sameInstant {
				continue
			}
			if !g.RhoTau(y.Relay, x.Relay, y.T) {
				continue
			}
			p *= g.EDAt(y.Relay, x.Relay, y.T).FailureProb(y.W)
		}
		if p > eps {
			return 1, fmt.Sprintf("relay v%d uninformed at %g (p=%.4g)", x.Relay, x.T, p)
		}
	}

	// (iii) broadcast latency max(t_k) + τ <= T.
	latency := 0.0
	for _, x := range s {
		//tmedbvet:ignore floateq max-accumulation of the latency, not an arrival gate; the TimeTol slack is applied where latency meets the deadline
		if x.T+tau > latency {
			latency = x.T + tau
		}
	}
	if latency > deadline {
		return 3, fmt.Sprintf("latency %g > T=%g", latency, deadline)
	}

	// (ii) every node informed by T-τ: departures by T-τ count (their
	// arrival lands by T).
	for i := 0; i < g.N(); i++ {
		node := tvg.NodeID(i)
		if node == src {
			continue
		}
		p := 1.0
		for _, y := range s {
			if y.Relay == node || y.T > deadline-tau {
				continue
			}
			if !g.RhoTau(y.Relay, node, y.T) {
				continue
			}
			p *= g.EDAt(y.Relay, node, y.T).FailureProb(y.W)
		}
		if p > eps {
			return 2, fmt.Sprintf("node v%d uninformed by %g (p=%.4g)", i, deadline-tau, p)
		}
	}

	// (iv) total cost within the energy budget.
	if !math.IsInf(costBound, 1) {
		cost := 0.0
		for _, x := range s {
			cost += x.W
		}
		if cost > costBound {
			return 4, fmt.Sprintf("cost %g > C=%g", cost, costBound)
		}
	}
	return 0, ""
}
