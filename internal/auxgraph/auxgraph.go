// Package auxgraph builds the auxiliary graph of §VI-A that maps TMEDB
// on a discrete time set to a directed Steiner tree / minimum-energy
// multicast tree instance.
//
// Virtual node u_{i,l} represents "node i at the l-th point of its
// discrete time partition". Zero-weight wait edges u_{i,l} → u_{i,l+1}
// express that informed status persists. Transmission edges express
// Proposition 6.1: every useful cost lies in the sender's discrete cost
// set (DCS). To model the wireless broadcast advantage of Property 6.1
// — paying cost w_k once reaches ALL neighbors whose level is <= k — the
// builder inserts one power vertex per (node, time, level): the sender
// pays w_k on the edge into the power vertex, and free edges fan out to
// every covered receiver at time t+τ. An ablation option disables the
// expansion and falls back to independent per-link unicast edges.
package auxgraph

import (
	"fmt"
	"sort"

	"repro/internal/cancel"
	"repro/internal/dts"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/schedule"
	"repro/internal/steiner"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Options tunes the construction.
type Options struct {
	// NoBroadcastAdvantage replaces the power-vertex expansion with
	// independent unicast edges (each receiver paid for separately).
	// Used by the ablation benchmarks.
	NoBroadcastAdvantage bool
	// Workers bounds the worker pool computing the per-(node, DTS-point)
	// discrete cost sets — the ψ-heavy part of the construction. Every
	// (node, point) weight is independent, so the built graph is
	// identical for every value; <= 1 runs serially.
	Workers int
	// Obs receives the "auxgraph" phase span (with a "dcs-construct"
	// child around the ψ-heavy DCS sweep), size attributes, and the DCS
	// pool stats. Nil (the default) records nothing.
	Obs *obs.Recorder
	// Cancel is the cancellation checkpoint token, polled at phase
	// boundaries, through the DCS sweep's worker pool, and per
	// transmission-edge batch. Nil is the zero-overhead uncancellable
	// path; a completed Build is byte-identical for every value.
	Cancel *cancel.Token
}

// TxMeta describes the transmission a paying auxiliary edge stands for.
type TxMeta struct {
	Relay tvg.NodeID
	T     float64
	W     float64
}

type edgeID struct{ U, V int }

// Aux is the auxiliary graph of one TMEDB instance.
type Aux struct {
	G  *graph.Digraph
	D  *dts.DTS
	TV *tveg.Graph

	base      []int // base[i] = vertex id of u_{i,0}
	meta      map[edgeID]TxMeta
	advantage bool
	workers   int
	obs       *obs.Recorder
	cancel    *cancel.Token
}

// Build constructs the auxiliary graph for the TVEG g over the DTS d.
// The only error Build can return is a tripped cancellation checkpoint
// (cancel.ErrCancelled / cancel.ErrBudgetExceeded via opts.Cancel).
func Build(g *tveg.Graph, d *dts.DTS, opts Options) (*Aux, error) {
	sp := opts.Obs.StartPhase("auxgraph")
	defer sp.End()
	tok := opts.Cancel
	n := g.N()
	base := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		base[i] = total
		total += len(d.Points[i])
	}
	a := &Aux{
		D:         d,
		TV:        g,
		base:      base,
		meta:      make(map[edgeID]TxMeta),
		advantage: !opts.NoBroadcastAdvantage,
		workers:   opts.Workers,
		obs:       opts.Obs,
		cancel:    opts.Cancel,
	}

	// Count power vertices first so the digraph can be sized once.
	// Enumerate the candidate (node, point) slots serially — cheap — and
	// fan the DCS evaluations (each an independent ψ query batch) across
	// the worker pool; slots keep their enumeration order, so the built
	// graph is byte-identical for every worker count.
	type tx struct {
		i      tvg.NodeID
		l      int
		t      float64
		levels []tveg.CostLevel
	}
	var cands []tx
	tau := g.Tau()
	for i := 0; i < n; i++ {
		for l, t := range d.Points[i] {
			//tmedbvet:ignore floateq DTS points and the deadline are exact partition breakpoints, never TimeTol-skewed planner emissions
			if t+tau > d.Deadline {
				continue // transmission would overrun the delay constraint
			}
			cands = append(cands, tx{i: tvg.NodeID(i), l: l, t: t})
		}
	}
	dcsSpan := opts.Obs.StartPhase("dcs-construct")
	err := parallel.ForEachPoolCancel(opts.Obs.Pool("auxgraph.dcs"), tok, opts.Workers, len(cands), func(k int) {
		cands[k].levels = g.DCS(cands[k].i, cands[k].t)
	})
	dcsSpan.SetInt("candidates", len(cands))
	dcsSpan.End()
	if err != nil {
		return nil, fmt.Errorf("auxgraph: dcs sweep: %w", err)
	}
	txs := cands[:0]
	for _, x := range cands {
		if len(x.levels) > 0 {
			txs = append(txs, x)
		}
	}
	powerVerts := 0
	if !opts.NoBroadcastAdvantage {
		for _, x := range txs {
			powerVerts += len(x.levels)
		}
	}

	dg := graph.New(total + powerVerts)
	a.G = dg

	// Wait edges.
	for i := 0; i < n; i++ {
		for l := 0; l+1 < len(d.Points[i]); l++ {
			dg.AddEdge(base[i]+l, base[i]+l+1, 0)
		}
	}

	// Transmission edges.
	next := total
	for _, x := range txs {
		if err := tok.Check(); err != nil {
			return nil, fmt.Errorf("auxgraph: transmission edges: %w", err)
		}
		u := base[x.i] + x.l
		if opts.NoBroadcastAdvantage {
			for _, lvl := range x.levels {
				f := d.IndexAtOrAfter(lvl.Node, x.t+tau)
				if f < 0 {
					continue
				}
				v := base[lvl.Node] + f
				dg.AddEdge(u, v, lvl.W)
				a.recordMeta(u, v, TxMeta{x.i, x.t, lvl.W})
			}
			continue
		}
		for k, lvl := range x.levels {
			p := next
			next++
			dg.AddEdge(u, p, lvl.W)
			a.recordMeta(u, p, TxMeta{x.i, x.t, lvl.W})
			// level k covers neighbors 0..k
			for _, cov := range x.levels[:k+1] {
				f := d.IndexAtOrAfter(cov.Node, x.t+tau)
				if f < 0 {
					continue
				}
				dg.AddEdge(p, base[cov.Node]+f, 0)
			}
		}
	}
	st := a.Stats()
	sp.SetInt("vertices", st.Vertices)
	sp.SetInt("edges", st.Edges)
	sp.SetInt("power_vertices", st.PowerVertices)
	return a, nil
}

func (a *Aux) recordMeta(u, v int, m TxMeta) {
	a.meta[edgeID{u, v}] = m
}

// Vertex returns the auxiliary vertex id of u_{i,l}.
func (a *Aux) Vertex(i tvg.NodeID, l int) int { return a.base[i] + l }

// SourceVertex returns the root of the Steiner instance for a broadcast
// from src starting at the DTS window start.
func (a *Aux) SourceVertex(src tvg.NodeID) int { return a.base[src] }

// Terminals returns the Steiner terminal set D = {u_{i,h_i}}: the last
// DTS point of every node. The source's terminal is reachable through
// its own wait edges at zero cost, so including it is harmless.
func (a *Aux) Terminals() []int {
	out := make([]int, a.TV.N())
	for i := range out {
		out[i] = a.base[i] + a.D.Last(tvg.NodeID(i))
	}
	return out
}

// MetaFor returns the transmission behind a paying edge, if any.
func (a *Aux) MetaFor(u, v int) (TxMeta, bool) {
	m, ok := a.meta[edgeID{u, v}]
	return m, ok
}

// ScheduleFromSolution converts a Steiner solution on the auxiliary graph
// back into a broadcast relay schedule. With the broadcast advantage on,
// multiple chosen power levels of the same (relay, time) collapse into
// one transmission at the maximum cost (Property 6.1: the higher level
// covers everything the lower ones did). In unicast (no-advantage) mode
// every paying edge stays its own transmission — that is exactly the
// modeling difference the ablation measures.
func (a *Aux) ScheduleFromSolution(sol steiner.Solution) schedule.Schedule {
	var s schedule.Schedule
	if a.advantage {
		type key struct {
			relay tvg.NodeID
			t     float64
		}
		best := make(map[key]float64)
		for _, e := range sol.Edges() {
			m, ok := a.meta[edgeID{int(e[0]), int(e[1])}]
			if !ok {
				continue
			}
			k := key{m.Relay, m.T}
			if m.W > best[k] {
				best[k] = m.W
			}
		}
		// Emit in sorted key order: the SortByTime below is stable by T
		// only, so equal-time rows would otherwise keep Go's randomized
		// map iteration order and the planned schedule would differ
		// between runs (tmedbvet detrange contract).
		keys := make([]key, 0, len(best))
		for k := range best {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].t != keys[j].t {
				return keys[i].t < keys[j].t
			}
			return keys[i].relay < keys[j].relay
		})
		for _, k := range keys {
			s = append(s, schedule.Transmission{Relay: k.relay, T: k.t, W: best[k]})
		}
	} else {
		for _, e := range sol.Edges() {
			m, ok := a.meta[edgeID{int(e[0]), int(e[1])}]
			if !ok {
				continue
			}
			s = append(s, schedule.Transmission{Relay: m.Relay, T: m.T, W: m.W})
		}
	}
	s.SortByTime()
	return s
}

// Stats summarizes the construction for logging and the complexity
// benchmarks.
type Stats struct {
	Vertices, Edges, PowerVertices int
}

// Stats returns size statistics of the auxiliary graph.
func (a *Aux) Stats() Stats {
	userVerts := 0
	for i := 0; i < a.TV.N(); i++ {
		userVerts += len(a.D.Points[i])
	}
	return Stats{
		Vertices:      a.G.N(),
		Edges:         a.G.M(),
		PowerVertices: a.G.N() - userVerts,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("aux{V=%d E=%d power=%d}", s.Vertices, s.Edges, s.PowerVertices)
}

// Solve runs the level-ℓ recursive greedy Steiner approximation on the
// auxiliary graph for a broadcast from src and maps the result back to a
// schedule. level <= 1 selects the shortest-path-tree heuristic.
func (a *Aux) Solve(src tvg.NodeID, level int) (schedule.Schedule, error) {
	solver := steiner.NewSolver(a.G).SetWorkers(a.workers).SetObs(a.obs).SetCancel(a.cancel)
	root := a.SourceVertex(src)
	terms := a.Terminals()
	var (
		sol steiner.Solution
		err error
	)
	if level <= 1 {
		sol, err = solver.ShortestPathTree(root, terms)
	} else {
		sol, err = solver.RecursiveGreedy(root, terms, level)
	}
	if err != nil {
		return nil, fmt.Errorf("auxgraph: %w", err)
	}
	// ScheduleFromSolution's advantage-mode merge iterates a map, so
	// equal-time transmissions come back in arbitrary order; establish
	// the deterministic causal order every executor and feasibility
	// check expects (τ = 0 non-stop chains share one timestamp).
	return schedule.CausalSort(a.TV, a.ScheduleFromSolution(sol), src, a.D.T0), nil
}

// FeasibleInstance reports whether every node can possibly be informed
// within the window: each terminal must be reachable from the source in
// the auxiliary graph. It returns the unreachable nodes.
func (a *Aux) FeasibleInstance(src tvg.NodeID) (unreachable []tvg.NodeID) {
	reach := a.G.Reachable(a.SourceVertex(src))
	for i := 0; i < a.TV.N(); i++ {
		if !reach[a.base[i]+a.D.Last(tvg.NodeID(i))] {
			unreachable = append(unreachable, tvg.NodeID(i))
		}
	}
	return unreachable
}
