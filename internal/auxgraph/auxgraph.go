// Package auxgraph builds the auxiliary graph of §VI-A that maps TMEDB
// on a discrete time set to a directed Steiner tree / minimum-energy
// multicast tree instance.
//
// Virtual node u_{i,l} represents "node i at the l-th point of its
// discrete time partition". Zero-weight wait edges u_{i,l} → u_{i,l+1}
// express that informed status persists. Transmission edges express
// Proposition 6.1: every useful cost lies in the sender's discrete cost
// set (DCS). To model the wireless broadcast advantage of Property 6.1
// — paying cost w_k once reaches ALL neighbors whose level is <= k — the
// builder inserts one power vertex per (node, time, level): the sender
// pays w_k on the edge into the power vertex, and free edges fan out to
// every covered receiver at time t+τ. An ablation option disables the
// expansion and falls back to independent per-link unicast edges.
//
// The built graph lives in a CSR core (auxCore): flat adjacency arrays,
// a lazily-built cached transpose, and per-edge transmission metadata in
// an index array parallel to the CSR edge array. Cores are immutable and
// shared through a process-wide memo (see memo.go); construction
// temporaries come from the graph package's arena.
package auxgraph

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cancel"
	"repro/internal/dts"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/schedule"
	"repro/internal/steiner"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

// Options tunes the construction.
type Options struct {
	// NoBroadcastAdvantage replaces the power-vertex expansion with
	// independent unicast edges (each receiver paid for separately).
	// Used by the ablation benchmarks.
	NoBroadcastAdvantage bool
	// Workers bounds the worker pool computing the per-(node, DTS-point)
	// discrete cost sets — the ψ-heavy part of the construction. Every
	// (node, point) weight is independent, so the built graph is
	// identical for every value; <= 1 runs serially.
	Workers int
	// Obs receives the "auxgraph" phase span (with a "dcs-construct"
	// child around the ψ-heavy DCS sweep), size attributes, and the DCS
	// pool stats. Nil (the default) records nothing.
	Obs *obs.Recorder
	// Cancel is the cancellation checkpoint token, polled at phase
	// boundaries, through the DCS sweep's worker pool, and per
	// transmission-edge batch. Nil is the zero-overhead uncancellable
	// path; a completed Build is byte-identical for every value.
	Cancel *cancel.Token
	// NoMemo bypasses the process-wide core memo (see memo.go) for this
	// build: the core is always freshly constructed and not cached. The
	// memoized and fresh graphs are identical; the flag exists for
	// benchmarks isolating cold-build cost.
	NoMemo bool
}

// TxMeta describes the transmission a paying auxiliary edge stands for.
type TxMeta struct {
	Relay tvg.NodeID
	T     float64
	W     float64
}

// auxCore is the immutable, shareable part of an auxiliary graph: the
// CSR, its (lazily built) transpose, the vertex layout, and the
// transmission metadata. Everything candidate-independent lives here;
// the Aux wrapper re-binds per-call plumbing (workers, obs, cancel)
// around a core that the memo may hand to many callers concurrently.
type auxCore struct {
	csr  *graph.CSR
	base []int32 // base[i] = vertex id of u_{i,0}
	// metaIdx is parallel to csr.To: metaIdx[e] indexes metas when edge
	// e is a paying transmission edge, -1 otherwise.
	metaIdx   []int32
	metas     []TxMeta
	power     int  // number of power vertices
	advantage bool // built with the power-vertex expansion

	// Candidate table: candOff[i]..candOff[i+1] indexes the contiguous,
	// time-ascending run of node i's candidate slots; candT holds each
	// candidate's transmission time and candLevels its computed discrete
	// cost set (possibly empty — empty means "computed, no reachable
	// neighbor", not "unknown"). An edit patch derives the next version's
	// core by inheriting the levels of every unedited node's exact-time
	// match instead of re-running its ψ-heavy DCS query.
	candOff    []int32
	candT      []float64
	candLevels [][]tveg.CostLevel

	revOnce sync.Once
	rev     *graph.CSR
}

// reverse returns the transpose of the core's CSR, building and caching
// it on first use. The transpose is plain heap memory (never arena-owned)
// because the core may be memoized and outlive any solve.
func (c *auxCore) reverse() *graph.CSR {
	c.revOnce.Do(func() { c.rev = c.csr.Transpose(nil) })
	return c.rev
}

// Aux is the auxiliary graph of one TMEDB instance.
type Aux struct {
	G  *graph.CSR
	D  *dts.DTS
	TV *tveg.Graph

	core    *auxCore
	workers int
	obs     *obs.Recorder
	cancel  *cancel.Token
}

func newAux(c *auxCore, g *tveg.Graph, d *dts.DTS, opts Options) *Aux {
	return &Aux{
		G:       c.csr,
		D:       d,
		TV:      g,
		core:    c,
		workers: opts.Workers,
		obs:     opts.Obs,
		cancel:  opts.Cancel,
	}
}

// Build constructs the auxiliary graph for the TVEG g over the DTS d.
// The core (CSR + transpose + metadata) is served from the process-wide
// memo when the same (graph version, model, params, DTS, advantage)
// instance was built before. The only error Build can return is a
// tripped cancellation checkpoint (cancel.ErrCancelled /
// cancel.ErrBudgetExceeded via opts.Cancel).
func Build(g *tveg.Graph, d *dts.DTS, opts Options) (*Aux, error) {
	sp := opts.Obs.StartPhase("auxgraph")
	defer sp.End()
	advantage := !opts.NoBroadcastAdvantage
	// A DTS with identity 0 was hand-constructed rather than built by
	// dts.Build; it carries no process-unique identity, so caching
	// against it could alias two distinct hand-made instances.
	useMemo := !opts.NoMemo && d.ID() != 0
	var key memoKey
	if useMemo {
		key = keyFor(g, d, advantage)
		if c, ok := memo.Get(key); ok {
			memoHits.Add(1)
			opts.Obs.Counter("auxgraph.memo.hits").Inc()
			annotate(sp, c)
			return newAux(c, g, d, opts), nil
		}
		memoMisses.Add(1)
		opts.Obs.Counter("auxgraph.memo.misses").Inc()
	}
	var parent *auxCore
	var edited []bool
	if useMemo {
		parent, edited = findParentCore(g, d, key)
		if parent != nil {
			patchHits.Add(1)
			opts.Obs.Counter("auxgraph.patch.hits").Inc()
		} else {
			patchMisses.Add(1)
			opts.Obs.Counter("auxgraph.patch.misses").Inc()
		}
	}
	c, err := buildCore(g, d, advantage, opts, parent, edited)
	if err != nil {
		return nil, err
	}
	if useMemo {
		memo.Put(key, c)
	}
	annotate(sp, c)
	return newAux(c, g, d, opts), nil
}

func annotate(sp *obs.Span, c *auxCore) {
	sp.SetInt("vertices", c.csr.N())
	sp.SetInt("edges", c.csr.M())
	sp.SetInt("power_vertices", c.power)
}

// buildCore runs the §VI-A construction: candidate enumeration, the
// parallel DCS sweep, and edge emission into a flat edge list laid out
// as a CSR by one stable counting sort. Temporaries (the per-candidate
// receiver-index buffer, the counting-sort cursors, the payload
// permutation) come from a pooled arena; the core's own arrays are plain
// heap allocations so the memo can share them indefinitely.
func buildCore(g *tveg.Graph, d *dts.DTS, advantage bool, opts Options, parent *auxCore, edited []bool) (*auxCore, error) {
	tok := opts.Cancel
	n := g.N()
	base := make([]int32, n)
	total := 0
	for i := 0; i < n; i++ {
		base[i] = int32(total)
		total += len(d.Points[i])
	}

	// Enumerate the candidate (node, point) slots serially — cheap — and
	// fan the DCS evaluations (each an independent ψ query batch) across
	// the worker pool; slots keep their enumeration order, so the built
	// graph is byte-identical for every worker count.
	type tx struct {
		i      tvg.NodeID
		l      int
		t      float64
		levels []tveg.CostLevel
	}
	var cands []tx
	candOff := make([]int32, n+1)
	tau := g.Tau()
	for i := 0; i < n; i++ {
		candOff[i] = int32(len(cands))
		for l, t := range d.Points[i] {
			//tmedbvet:ignore floateq DTS points and the deadline are exact partition breakpoints, never TimeTol-skewed planner emissions
			if t+tau > d.Deadline {
				continue // transmission would overrun the delay constraint
			}
			cands = append(cands, tx{i: tvg.NodeID(i), l: l, t: t})
		}
	}
	candOff[n] = int32(len(cands))

	// Derive from the parent core, when one was found: a node not
	// incident to any edited pair has an unchanged cost function, so its
	// candidates inherit the parent's computed levels at every exact-time
	// match (a shifted DTS point simply misses and is computed fresh).
	// Only inherited slots are skipped by the sweep below.
	prefilled := 0
	var done []bool
	if parent != nil {
		done = make([]bool, len(cands))
		for k := range cands {
			i := int(cands[k].i)
			if edited[i] {
				continue
			}
			lo, hi := int(parent.candOff[i]), int(parent.candOff[i+1])
			t := cands[k].t
			j := lo + sort.SearchFloat64s(parent.candT[lo:hi], t)
			//tmedbvet:ignore floateq levels reuse requires bitwise-identical candidate times: a tolerant match could inherit a cost set computed at a different point
			if j < hi && parent.candT[j] == t {
				cands[k].levels = parent.candLevels[j]
				done[k] = true
				prefilled++
			}
		}
	}
	dcsSpan := opts.Obs.StartPhase("dcs-construct")
	err := parallel.ForEachPoolCancel(opts.Obs.Pool("auxgraph.dcs"), tok, opts.Workers, len(cands), func(k int) {
		if done != nil && done[k] {
			return
		}
		cands[k].levels = g.DCS(cands[k].i, cands[k].t)
	})
	dcsSpan.SetInt("candidates", len(cands))
	dcsSpan.SetInt("prefilled", prefilled)
	dcsSpan.End()
	if err != nil {
		return nil, fmt.Errorf("auxgraph: dcs sweep: %w", err)
	}

	// Snapshot the candidate table before the in-place filter below
	// scrambles the slot order — it is what the NEXT version's patch
	// inherits from. The levels slices are shared read-only.
	candT := make([]float64, len(cands))
	candLevels := make([][]tveg.CostLevel, len(cands))
	for k, x := range cands {
		candT[k] = x.t
		candLevels[k] = x.levels
	}

	txs := cands[:0]
	maxLevels := 0
	for _, x := range cands {
		if len(x.levels) > 0 {
			txs = append(txs, x)
			if len(x.levels) > maxLevels {
				maxLevels = len(x.levels)
			}
		}
	}
	powerVerts := 0
	edgeCap := total - n // wait edges
	for _, x := range txs {
		L := len(x.levels)
		if advantage {
			powerVerts += L
			edgeCap += L + L*(L+1)/2 // paying edges + coverage fan-out bound
		} else {
			edgeCap += L
		}
	}

	ar := graph.GetArena()
	defer graph.PutArena(ar)
	el := &graph.EdgeList{
		U: make([]int32, 0, edgeCap),
		V: make([]int32, 0, edgeCap),
		W: make([]float64, 0, edgeCap),
	}

	// Wait edges.
	for i := 0; i < n; i++ {
		for l := 0; l+1 < len(d.Points[i]); l++ {
			el.Add(base[i]+int32(l), base[i]+int32(l+1), 0)
		}
	}

	// Transmission edges. payPos remembers which edge-list entries pay
	// (parallel to metas); fs caches each level's receiver index once per
	// candidate — the coverage fan-out reuses it across power levels
	// instead of redoing the partition binary search per (level, covered)
	// pair.
	var (
		payPos []int32
		metas  []TxMeta
	)
	fs := ar.I32(maxLevels)
	next := int32(total)
	for _, x := range txs {
		if err := tok.Check(); err != nil {
			return nil, fmt.Errorf("auxgraph: transmission edges: %w", err)
		}
		u := base[x.i] + int32(x.l)
		for j, lvl := range x.levels {
			fs[j] = int32(d.IndexAtOrAfter(lvl.Node, x.t+tau))
		}
		if !advantage {
			for j, lvl := range x.levels {
				if fs[j] < 0 {
					continue
				}
				el.Add(u, base[lvl.Node]+fs[j], lvl.W)
				payPos = append(payPos, int32(el.Len()-1))
				metas = append(metas, TxMeta{Relay: x.i, T: x.t, W: lvl.W})
			}
			continue
		}
		for k, lvl := range x.levels {
			p := next
			next++
			el.Add(u, p, lvl.W)
			payPos = append(payPos, int32(el.Len()-1))
			metas = append(metas, TxMeta{Relay: x.i, T: x.t, W: lvl.W})
			// level k covers neighbors 0..k
			for j := 0; j <= k; j++ {
				if fs[j] < 0 {
					continue
				}
				el.Add(p, base[x.levels[j].Node]+fs[j], 0)
			}
		}
	}
	ar.PutI32(fs)

	csr, pos := graph.BuildCSR(total+powerVerts, el, ar)
	metaIdx := make([]int32, csr.M())
	for i := range metaIdx {
		metaIdx[i] = -1
	}
	for k, li := range payPos {
		metaIdx[pos[li]] = int32(k)
	}
	ar.PutI32(pos)
	st := ar.Stats()
	opts.Obs.Counter("graph.arena.reuses").Add(st.Reuses)
	opts.Obs.Counter("graph.arena.allocs").Add(st.Allocs)
	return &auxCore{
		csr:        csr,
		base:       base,
		metaIdx:    metaIdx,
		metas:      metas,
		power:      powerVerts,
		advantage:  advantage,
		candOff:    candOff,
		candT:      candT,
		candLevels: candLevels,
	}, nil
}

// Vertex returns the auxiliary vertex id of u_{i,l}.
func (a *Aux) Vertex(i tvg.NodeID, l int) int { return int(a.core.base[i]) + l }

// SourceVertex returns the root of the Steiner instance for a broadcast
// from src starting at the DTS window start.
func (a *Aux) SourceVertex(src tvg.NodeID) int { return int(a.core.base[src]) }

// Reverse returns the memoized transpose of the auxiliary graph,
// building it on first use. Planners inject it into their Steiner
// solvers (steiner.Solver.WithReverse) so repeated solves on a memoized
// core never recompute it.
func (a *Aux) Reverse() *graph.CSR { return a.core.reverse() }

// Terminals returns the Steiner terminal set D = {u_{i,h_i}}: the last
// DTS point of every node. The source's terminal is reachable through
// its own wait edges at zero cost, so including it is harmless.
func (a *Aux) Terminals() []int {
	out := make([]int, a.TV.N())
	for i := range out {
		out[i] = int(a.core.base[i]) + a.D.Last(tvg.NodeID(i))
	}
	return out
}

// MetaFor returns the transmission behind a paying edge, if any. It
// scans u's CSR row — out-degrees are small (wait edge + per-level
// fan-out), so the scan beats a hash lookup on the hot path.
//
//tmedbvet:hotpath
func (a *Aux) MetaFor(u, v int) (TxMeta, bool) {
	c := a.core
	g := c.csr
	for e := g.Off[u]; e < g.Off[u+1]; e++ {
		if int(g.To[e]) == v && c.metaIdx[e] >= 0 {
			return c.metas[c.metaIdx[e]], true
		}
	}
	return TxMeta{}, false
}

// ScheduleFromSolution converts a Steiner solution on the auxiliary graph
// back into a broadcast relay schedule. With the broadcast advantage on,
// multiple chosen power levels of the same (relay, time) collapse into
// one transmission at the maximum cost (Property 6.1: the higher level
// covers everything the lower ones did). In unicast (no-advantage) mode
// every paying edge stays its own transmission — that is exactly the
// modeling difference the ablation measures.
func (a *Aux) ScheduleFromSolution(sol steiner.Solution) schedule.Schedule {
	var s schedule.Schedule
	if a.core.advantage {
		type key struct {
			relay tvg.NodeID
			t     float64
		}
		best := make(map[key]float64)
		for _, e := range sol.Edges() {
			m, ok := a.MetaFor(int(e[0]), int(e[1]))
			if !ok {
				continue
			}
			k := key{m.Relay, m.T}
			if m.W > best[k] {
				best[k] = m.W
			}
		}
		// Emit in sorted key order: the SortByTime below is stable by T
		// only, so equal-time rows would otherwise keep Go's randomized
		// map iteration order and the planned schedule would differ
		// between runs (tmedbvet detrange contract).
		keys := make([]key, 0, len(best))
		for k := range best {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].t != keys[j].t {
				return keys[i].t < keys[j].t
			}
			return keys[i].relay < keys[j].relay
		})
		for _, k := range keys {
			s = append(s, schedule.Transmission{Relay: k.relay, T: k.t, W: best[k]})
		}
	} else {
		for _, e := range sol.Edges() {
			m, ok := a.MetaFor(int(e[0]), int(e[1]))
			if !ok {
				continue
			}
			s = append(s, schedule.Transmission{Relay: m.Relay, T: m.T, W: m.W})
		}
	}
	s.SortByTime()
	return s
}

// Stats summarizes the construction for logging and the complexity
// benchmarks.
type Stats struct {
	Vertices, Edges, PowerVertices int
}

// Stats returns size statistics of the auxiliary graph.
func (a *Aux) Stats() Stats {
	return Stats{
		Vertices:      a.G.N(),
		Edges:         a.G.M(),
		PowerVertices: a.core.power,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("aux{V=%d E=%d power=%d}", s.Vertices, s.Edges, s.PowerVertices)
}

// Solve runs the level-ℓ recursive greedy Steiner approximation on the
// auxiliary graph for a broadcast from src and maps the result back to a
// schedule. level <= 1 selects the shortest-path-tree heuristic.
func (a *Aux) Solve(src tvg.NodeID, level int) (schedule.Schedule, error) {
	solver := steiner.NewSolver(a.G).
		WithReverse(a.Reverse()).
		SetWorkers(a.workers).
		SetObs(a.obs).
		SetCancel(a.cancel)
	defer solver.Release()
	root := a.SourceVertex(src)
	terms := a.Terminals()
	var (
		sol steiner.Solution
		err error
	)
	if level <= 1 {
		sol, err = solver.ShortestPathTree(root, terms)
	} else {
		sol, err = solver.RecursiveGreedy(root, terms, level)
	}
	if err != nil {
		return nil, fmt.Errorf("auxgraph: %w", err)
	}
	// ScheduleFromSolution's advantage-mode merge iterates a map, so
	// equal-time transmissions come back in arbitrary order; establish
	// the deterministic causal order every executor and feasibility
	// check expects (τ = 0 non-stop chains share one timestamp).
	return schedule.CausalSort(a.TV, a.ScheduleFromSolution(sol), src, a.D.T0), nil
}

// FeasibleInstance reports whether every node can possibly be informed
// within the window: each terminal must be reachable from the source in
// the auxiliary graph. It returns the unreachable nodes.
func (a *Aux) FeasibleInstance(src tvg.NodeID) (unreachable []tvg.NodeID) {
	reach := a.G.Reachable(a.SourceVertex(src))
	for i := 0; i < a.TV.N(); i++ {
		if !reach[int(a.core.base[i])+a.D.Last(tvg.NodeID(i))] {
			unreachable = append(unreachable, tvg.NodeID(i))
		}
	}
	return unreachable
}
