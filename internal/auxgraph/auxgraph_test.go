package auxgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dts"
	"repro/internal/interval"
	"repro/internal/schedule"
	"repro/internal/tveg"
	"repro/internal/tvg"
)

func iv(a, b float64) interval.Interval { return interval.Interval{Start: a, End: b} }

// chain builds 0—1—2 with sequential contacts so the broadcast must
// relay through node 1.
func chain() (*tveg.Graph, *dts.DTS) {
	g := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(10, 30), 5)
	g.AddContact(1, 2, iv(20, 50), 8)
	d, _ := dts.Build(g.Graph, 0, 100, dts.Options{})
	return g, d
}

// star builds a hub: 0 adjacent to 1,2,3 simultaneously at increasing
// distances, so the broadcast advantage pays off.
func star() (*tveg.Graph, *dts.DTS) {
	g := tveg.New(4, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(10, 30), 5)
	g.AddContact(0, 2, iv(10, 30), 10)
	g.AddContact(0, 3, iv(10, 30), 15)
	d, _ := dts.Build(g.Graph, 0, 100, dts.Options{})
	return g, d
}

func TestBuildStats(t *testing.T) {
	g, d := chain()
	a, _ := Build(g, d, Options{})
	st := a.Stats()
	if st.Vertices <= 0 || st.Edges <= 0 {
		t.Fatalf("empty aux graph: %v", st)
	}
	if st.PowerVertices <= 0 {
		t.Errorf("expected power vertices, got %v", st)
	}
	// no-advantage variant has no power vertices
	a2, _ := Build(g, d, Options{NoBroadcastAdvantage: true})
	if got := a2.Stats().PowerVertices; got != 0 {
		t.Errorf("NoBroadcastAdvantage power vertices = %d, want 0", got)
	}
}

func TestTerminalsOnePerNode(t *testing.T) {
	g, d := chain()
	a, _ := Build(g, d, Options{})
	terms := a.Terminals()
	if len(terms) != g.N() {
		t.Fatalf("Terminals = %v, want %d entries", terms, g.N())
	}
	seen := map[int]bool{}
	for _, x := range terms {
		if seen[x] {
			t.Error("duplicate terminal vertex")
		}
		seen[x] = true
	}
}

func TestFeasibleInstance(t *testing.T) {
	g, d := chain()
	a, _ := Build(g, d, Options{})
	if un := a.FeasibleInstance(0); len(un) != 0 {
		t.Errorf("chain should be feasible from 0, unreachable: %v", un)
	}
	// From node 2 the reverse direction is infeasible: contact (0,1) at
	// [10,30) ends before... actually 2→1 at [20,50), 1→0 needs [10,30):
	// overlap [20,30) exists, so still feasible. Build a truly infeasible
	// case: isolate node 2 after the fact.
	g2 := tveg.New(3, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g2.AddContact(0, 1, iv(10, 30), 5)
	d2, _ := dts.Build(g2.Graph, 0, 100, dts.Options{})
	a2, _ := Build(g2, d2, Options{})
	un := a2.FeasibleInstance(0)
	if len(un) != 1 || un[0] != 2 {
		t.Errorf("unreachable = %v, want [2]", un)
	}
}

func TestSolveChainProducesFeasibleSchedule(t *testing.T) {
	g, d := chain()
	a, _ := Build(g, d, Options{})
	for _, level := range []int{1, 2} {
		s, err := a.Solve(0, level)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if err := schedule.CheckFeasible(g, s, 0, 100, math.Inf(1)); err != nil {
			t.Errorf("level %d schedule infeasible: %v (schedule %v)", level, err, s)
		}
		// two hops needed
		if len(s) != 2 {
			t.Errorf("level %d schedule %v, want 2 transmissions", level, s)
		}
	}
}

func TestSolveStarUsesBroadcastAdvantage(t *testing.T) {
	g, d := star()
	a, _ := Build(g, d, Options{})
	s, err := a.Solve(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.CheckFeasible(g, s, 0, 100, math.Inf(1)); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	// One transmission at the cost of the farthest neighbor should win:
	// cost = N0γ·15² < sum of three unicasts.
	wantCost := g.Params.NoiseGamma() * 225
	if got := s.TotalCost(); math.Abs(got-wantCost)/wantCost > 1e-9 {
		t.Errorf("cost = %g, want single max-power tx %g (schedule %v)", got, wantCost, s)
	}
	if len(s) != 1 {
		t.Errorf("schedule %v, want a single broadcast transmission", s)
	}
}

func TestNoBroadcastAdvantageCostsMore(t *testing.T) {
	g, d := star()
	withAdv, _ := Build(g, d, Options{})
	noAdv, _ := Build(g, d, Options{NoBroadcastAdvantage: true})
	s1, err1 := withAdv.Solve(0, 2)
	s2, err2 := noAdv.Solve(0, 2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if s1.TotalCost() >= s2.TotalCost() {
		t.Errorf("advantage cost %g should beat unicast cost %g",
			s1.TotalCost(), s2.TotalCost())
	}
}

func TestScheduleCollapsesPowerLevels(t *testing.T) {
	g, d := star()
	a, _ := Build(g, d, Options{})
	s, err := a.Solve(0, 1) // SPT picks each terminal's own path
	if err != nil {
		t.Fatal(err)
	}
	// SPT uses three separate levels of the same (relay, time); they
	// must collapse into one transmission at max cost.
	if len(s) != 1 {
		t.Errorf("schedule %v, want 1 collapsed transmission", s)
	}
	wantCost := g.Params.NoiseGamma() * 225
	if math.Abs(s.TotalCost()-wantCost)/wantCost > 1e-9 {
		t.Errorf("collapsed cost = %g, want %g", s.TotalCost(), wantCost)
	}
}

func TestDeadlineExcludesLateTransmissions(t *testing.T) {
	g := tveg.New(2, iv(0, 100), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(50, 60), 5)
	// window ends before the contact: infeasible
	d, _ := dts.Build(g.Graph, 0, 40, dts.Options{})
	a, _ := Build(g, d, Options{})
	if un := a.FeasibleInstance(0); len(un) != 1 {
		t.Errorf("unreachable = %v, want [1]", un)
	}
	if _, err := a.Solve(0, 2); err == nil {
		t.Error("Solve should fail when a node is unreachable")
	}
}

func TestTauShiftsReception(t *testing.T) {
	g := tveg.New(2, iv(0, 100), 5, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(10, 30), 5)
	d, _ := dts.Build(g.Graph, 0, 100, dts.Options{})
	a, _ := Build(g, d, Options{})
	s, err := a.Solve(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.CheckFeasible(g, s, 0, 100, math.Inf(1)); err != nil {
		t.Errorf("schedule infeasible with τ=5: %v", err)
	}
}

func TestQuickSolvedSchedulesFeasible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(4)
		g := tveg.New(n, iv(0, 300), 0, tveg.DefaultParams(), tveg.Static)
		// random contacts; ensure node 0 can reach everyone by adding a
		// late direct contact to each node
		for c := 0; c < 3*n; c++ {
			i, j := tvg.NodeID(r.Intn(n)), tvg.NodeID(r.Intn(n))
			if i == j {
				continue
			}
			s := r.Float64() * 200
			g.AddContact(i, j, iv(s, s+10+r.Float64()*30), 1+r.Float64()*20)
		}
		for j := 1; j < n; j++ {
			s := 250 + r.Float64()*20
			g.AddContact(0, tvg.NodeID(j), iv(s, s+20), 1+r.Float64()*20)
		}
		d, _ := dts.Build(g.Graph, 0, 300, dts.Options{})
		a, _ := Build(g, d, Options{})
		sch, err := a.Solve(0, 2)
		if err != nil {
			return false
		}
		return schedule.CheckFeasible(g, sch, 0, 300, math.Inf(1)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickAdvantageNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(3)
		g := tveg.New(n, iv(0, 200), 0, tveg.DefaultParams(), tveg.Static)
		for j := 1; j < n; j++ {
			s := r.Float64() * 100
			g.AddContact(0, tvg.NodeID(j), iv(s, s+80), 1+r.Float64()*20)
		}
		d, _ := dts.Build(g.Graph, 0, 200, dts.Options{})
		advA, _ := Build(g, d, Options{})
		uniA, _ := Build(g, d, Options{NoBroadcastAdvantage: true})
		adv, err1 := advA.Solve(0, 2)
		uni, err2 := uniA.Solve(0, 2)
		if err1 != nil || err2 != nil {
			return false
		}
		return adv.TotalCost() <= uni.TotalCost()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
