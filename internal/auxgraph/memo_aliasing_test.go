package auxgraph

import (
	"testing"

	"repro/internal/dts"
)

// TestMemoNoAliasingAcrossIdentityReuse is the regression test for the
// pointer-keyed memo bug: the core memo used to key on the *dts.DTS
// pointer, and in a long-running process a collected DTS's address can
// be recycled for a fresh one, so a lookup for the new DTS silently
// returned a core built over a different time set. The key now carries
// the process-unique monotonic DTS.ID instead.
//
// The test proves the old shape was reachable by forcing exactly the
// collision address recycling used to produce: two distinct DTS values
// over the same graph with identical identity. Under the forced
// collision the memo serves the first DTS's (wrong) core for the second;
// with real IDs it never does.
func TestMemoNoAliasingAcrossIdentityReuse(t *testing.T) {
	PurgeMemo()
	defer PurgeMemo()

	g, d1 := chain()
	// A second DTS over the same graph but a shorter window: fewer
	// discrete points, hence a structurally different auxiliary graph.
	d2, err := dts.Build(g.Graph, 0, 40, dts.Options{})
	if err != nil {
		t.Fatal(err)
	}

	a1, err := Build(g, d1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Build(g, d2, Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Stats() == fresh.Stats() {
		t.Fatal("test setup: the two windows must yield distinguishable cores")
	}

	// 1. The collision the pointer-keyed scheme allowed: recycle d1's
	// identity onto d2. Every other key field (graph ID, version, model,
	// params, advantage) already matches, so the memo serves d1's core
	// for d2 — the exact stale-hit bug.
	d2.SetIDForTest(d1.ID())
	aliased, err := Build(g, d2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if aliased.Stats() != a1.Stats() {
		t.Fatal("forced identity collision did not reproduce the stale-hit shape; the regression test lost its teeth")
	}

	// 2. With its real process-unique identity, the second DTS misses
	// d1's entry and gets its own correct core.
	d3, err := dts.Build(g.Graph, 0, 40, dts.Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	a3, err := Build(g, d3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a3.Stats() != fresh.Stats() {
		t.Fatal("memoized build for the second DTS differs from its fresh build")
	}
}

// TestMemoSkipsHandConstructedDTS pins the id-0 guard: a DTS literal
// that never went through dts.Build has no process-unique identity, so
// Build must not cache against it (two distinct literals would alias).
func TestMemoSkipsHandConstructedDTS(t *testing.T) {
	PurgeMemo()
	defer PurgeMemo()

	g, d := chain()
	handMade := &dts.DTS{T0: d.T0, Deadline: d.Deadline, Points: d.Points}
	if handMade.ID() != 0 {
		t.Fatal("hand-constructed DTS should carry identity 0")
	}
	beforeHit, beforeMiss := MemoStats()
	if _, err := Build(g, handMade, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, handMade, Options{}); err != nil {
		t.Fatal(err)
	}
	hits, misses := MemoStats()
	if hits != beforeHit || misses != beforeMiss {
		t.Fatalf("hand-constructed DTS touched the memo (Δhits=%d Δmisses=%d, want no traffic)", hits-beforeHit, misses-beforeMiss)
	}
}
