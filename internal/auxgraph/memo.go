package auxgraph

import (
	"sync/atomic"

	"repro/internal/dts"
	"repro/internal/lru"
	"repro/internal/tveg"
)

// The auxiliary-graph memo caches built cores — the CSR, its transpose,
// the vertex layout, and the transmission metadata — per (graph identity,
// channel model, physical parameters, DTS identity, advantage flag).
// Everything a core contains is immutable after construction, so a hit
// hands the same *auxCore to every caller; only the thin Aux wrapper
// (per-call workers/obs/cancel plumbing) is rebuilt.
//
// The DCS sweep behind a core is the ψ-heaviest stage of the whole
// pipeline, and planners rebuild the same core constantly: the gap
// certificate's second run, every algorithm of a comparison sweep on the
// same instance, the FR family's repeated static views. The memo turns
// all of those into pointer returns.
//
// Keying on the dts.DTS identity (not its contents) is what the DTS
// memo's identity-stable returns buy: a DTS memo hit is the precondition
// for an auxgraph memo hit. Invalidation is by key — the key carries
// tvg.Graph.Version(), so mutating a graph stops matching old entries,
// which age out of the LRU. Params rides in the key by value (it is a
// comparable struct of scalars), so planner views with different ε or
// cost bounds never collide.
//
// Identities are the process-unique monotonic IDs stamped at
// construction (tvg.Graph.ID, dts.DTS.ID), NOT the pointers. A pointer
// key is unsound in a long-running process: once an entry's graph or DTS
// is garbage-collected, the allocator can recycle its address for a
// fresh instance — also at version 0 — and a lookup for the new instance
// would silently return the dead one's core. IDs are never reused, so
// that collision cannot happen (see
// TestMemoNoAliasingAcrossIdentityReuse for the old shape).
type memoKey struct {
	gid       uint64
	version   uint64
	model     tveg.Model
	params    tveg.Params
	did       uint64
	advantage bool
}

const memoCapacity = 32

var (
	memo                 = lru.New[memoKey, *auxCore](memoCapacity)
	memoHits, memoMisses atomic.Int64
)

func keyFor(g *tveg.Graph, d *dts.DTS, advantage bool) memoKey {
	return memoKey{
		gid:       g.ID(),
		version:   g.Version(),
		model:     g.Model,
		params:    g.Params,
		did:       d.ID(),
		advantage: advantage,
	}
}

// MemoStats returns the process-wide core-memo hit/miss counters.
func MemoStats() (hits, misses int64) {
	return memoHits.Load(), memoMisses.Load()
}

// PurgeMemo empties the process-wide core memo (benchmarks isolating
// cold-build cost call this between runs).
func PurgeMemo() { memo.Purge() }
