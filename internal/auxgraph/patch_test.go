package auxgraph

import (
	"reflect"
	"testing"

	"repro/internal/dts"
	"repro/internal/tveg"
)

// editGraph builds a 5-node graph rich enough that edits leave most
// nodes untouched (so the patch has something to inherit).
func editGraph() *tveg.Graph {
	g := tveg.New(5, iv(0, 200), 0, tveg.DefaultParams(), tveg.Static)
	g.AddContact(0, 1, iv(10, 40), 5)
	g.AddContact(1, 2, iv(30, 70), 8)
	g.AddContact(2, 3, iv(60, 100), 6)
	g.AddContact(3, 4, iv(90, 130), 9)
	g.AddContact(0, 4, iv(20, 50), 12)
	return g
}

// coresEqual compares every array a solve can observe.
func coresEqual(t *testing.T, got, want *auxCore) {
	t.Helper()
	if !reflect.DeepEqual(got.csr.Off, want.csr.Off) ||
		!reflect.DeepEqual(got.csr.To, want.csr.To) ||
		!reflect.DeepEqual(got.csr.W, want.csr.W) {
		t.Fatal("derived core CSR differs from cold build")
	}
	if !reflect.DeepEqual(got.base, want.base) ||
		!reflect.DeepEqual(got.metaIdx, want.metaIdx) ||
		!reflect.DeepEqual(got.metas, want.metas) ||
		got.power != want.power || got.advantage != want.advantage {
		t.Fatal("derived core metadata differs from cold build")
	}
	if !reflect.DeepEqual(got.candOff, want.candOff) ||
		!reflect.DeepEqual(got.candT, want.candT) ||
		!reflect.DeepEqual(got.candLevels, want.candLevels) {
		t.Fatal("derived candidate table differs from cold build")
	}
}

// TestDerivedCoreMatchesColdBuild: after an edit, the memo-derived core
// must be byte-identical to a cold construction on the edited graph.
func TestDerivedCoreMatchesColdBuild(t *testing.T) {
	for _, tc := range []struct {
		name string
		edit func(g *tveg.Graph)
	}{
		{"add-contact", func(g *tveg.Graph) { g.AddContact(1, 3, iv(45, 80), 7) }},
		{"remove-contact", func(g *tveg.Graph) {
			if !g.RemoveContact(2, 3, iv(60, 100)) {
				t.Fatal("test setup: removal must change the graph")
			}
		}},
		{"retime", func(g *tveg.Graph) {
			if _, err := g.RetimeChannel(0, 4, iv(20, 50), iv(120, 150)); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			PurgeMemo()
			dts.PurgeMemo()
			defer PurgeMemo()
			defer dts.PurgeMemo()

			g := editGraph()
			d0, err := dts.Build(g.Graph, 0, 200, dts.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Build(g, d0, Options{}); err != nil {
				t.Fatal(err)
			}

			tc.edit(g)
			d1, err := dts.Build(g.Graph, 0, 200, dts.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, ok := d1.DerivedFrom(); !ok {
				t.Fatal("test setup: edited DTS must be memo-derived for the core patch to engage")
			}
			h0, _ := PatchStats()
			derived, err := Build(g, d1, Options{})
			if err != nil {
				t.Fatal(err)
			}
			h1, _ := PatchStats()
			if h1 != h0+1 {
				t.Fatalf("patch hits went %d -> %d, want the derived path taken", h0, h1)
			}
			cold, err := Build(g, d1, Options{NoMemo: true})
			if err != nil {
				t.Fatal(err)
			}
			coresEqual(t, derived.core, cold.core)

			// The schedules coming off both cores agree too.
			sDerived, err := derived.Solve(0, 2)
			if err != nil {
				t.Fatal(err)
			}
			sCold, err := cold.Solve(0, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sDerived, sCold) {
				t.Fatalf("schedules diverge:\n derived: %v\n cold:    %v", sDerived, sCold)
			}
		})
	}
}

// TestEditedVersionNeverHitsParentCoreEntry is the memo-invalidation
// table at the auxgraph layer: after any edit, Build must construct a
// new core — served the parent's entry would mean serving pre-edit cost
// sets and pre-edit time points.
func TestEditedVersionNeverHitsParentCoreEntry(t *testing.T) {
	cases := []struct {
		name string
		edit func(g *tveg.Graph)
	}{
		{"add", func(g *tveg.Graph) { g.AddContact(1, 4, iv(10, 30), 4) }},
		{"remove", func(g *tveg.Graph) { g.RemoveContact(0, 1, iv(10, 40)) }},
		{"retime", func(g *tveg.Graph) {
			if _, err := g.RetimeChannel(1, 2, iv(30, 70), iv(130, 170)); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			PurgeMemo()
			dts.PurgeMemo()
			defer PurgeMemo()
			defer dts.PurgeMemo()

			g := editGraph()
			d0, err := dts.Build(g.Graph, 0, 200, dts.Options{})
			if err != nil {
				t.Fatal(err)
			}
			parentAux, err := Build(g, d0, Options{})
			if err != nil {
				t.Fatal(err)
			}
			tc.edit(g)
			d1, err := dts.Build(g.Graph, 0, 200, dts.Options{})
			if err != nil {
				t.Fatal(err)
			}
			hitsBefore, _ := MemoStats()
			childAux, err := Build(g, d1, Options{})
			if err != nil {
				t.Fatal(err)
			}
			hitsAfter, _ := MemoStats()
			if childAux.core == parentAux.core {
				t.Fatal("edited graph was served the parent version's core")
			}
			if hitsAfter != hitsBefore {
				t.Fatalf("edited version hit the core memo (%d -> %d)", hitsBefore, hitsAfter)
			}
			// Same instance again: now it hits, and hits its OWN entry.
			again, err := Build(g, d1, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if again.core != childAux.core {
				t.Fatal("rebuild of the same edited instance missed its own entry")
			}
		})
	}
}

// TestNoMemoHoldsOnEditPath pins the opt-outs on the edit path: a NoMemo
// build after an edit neither probes for a parent core nor stores one.
func TestNoMemoHoldsOnEditPath(t *testing.T) {
	PurgeMemo()
	dts.PurgeMemo()
	defer PurgeMemo()
	defer dts.PurgeMemo()

	g := editGraph()
	d0, err := dts.Build(g.Graph, 0, 200, dts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, d0, Options{}); err != nil {
		t.Fatal(err)
	}
	g.AddContact(1, 3, iv(45, 80), 7)
	d1, err := dts.Build(g.Graph, 0, 200, dts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h0, m0 := PatchStats()
	if _, err := Build(g, d1, Options{NoMemo: true}); err != nil {
		t.Fatal(err)
	}
	h1, m1 := PatchStats()
	if h1 != h0 || m1 != m0 {
		t.Fatalf("NoMemo build moved patch stats (%d,%d) -> (%d,%d)", h0, m0, h1, m1)
	}
}

// TestDerivedCoreRespectsStaleLineage: a hand-constructed DTS (no
// lineage) never engages the derivation, even right after an edit.
func TestDerivedCoreRespectsStaleLineage(t *testing.T) {
	PurgeMemo()
	dts.PurgeMemo()
	defer PurgeMemo()
	defer dts.PurgeMemo()

	g := editGraph()
	d0, err := dts.Build(g.Graph, 0, 200, dts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, d0, Options{}); err != nil {
		t.Fatal(err)
	}
	g.AddContact(1, 3, iv(45, 80), 7)
	// Cold-built DTS for the edited graph: correct points, but no
	// lineage, so the core build must go cold rather than guess.
	d1, err := dts.Build(g.Graph, 0, 200, dts.Options{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := d1.DerivedFrom(); ok {
		t.Fatal("test setup: cold DTS must carry no lineage")
	}
	h0, _ := PatchStats()
	if _, err := Build(g, d1, Options{}); err != nil {
		t.Fatal(err)
	}
	h1, _ := PatchStats()
	if h1 != h0 {
		t.Fatal("core derivation engaged without DTS lineage")
	}
}
