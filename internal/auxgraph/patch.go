package auxgraph

import (
	"sync/atomic"

	"repro/internal/dts"
	"repro/internal/tveg"
)

// The edit patch derives an edited graph version's core from the
// memoized core of its ancestor instead of re-running every ψ-heavy DCS
// query. The seam is the DTS lineage: a DTS produced by dts.Build's own
// edit patch records which memoized DTS (and which graph version) it was
// derived from, and the core built against that ancestor DTS — same
// model, params, and advantage flag — is the one whose candidate cost
// sets are still valid for every node not incident to an edited pair.
// The derived core is byte-identical to a cold build: inherited levels
// are the exact values a fresh DCS query would return (a node's cost set
// depends only on its own incident edges), and every structural stage
// (candidate enumeration, edge emission, CSR layout) runs cold.

var patchHits, patchMisses atomic.Int64

// PatchStats returns the process-wide derived-core/cold-core counters
// (memoized builds only: memo hits and NoMemo builds count as neither).
func PatchStats() (hits, misses int64) {
	return patchHits.Load(), patchMisses.Load()
}

// findParentCore looks up the memoized core this build can derive from:
// the core built for d's ancestor DTS at the ancestor's graph version,
// under the same key otherwise. It returns the core plus the per-node
// edited flags, or (nil, nil) when no ancestor is usable — unknown
// lineage, trimmed journal, or the ancestor's core aged out of the memo.
func findParentCore(g *tveg.Graph, d *dts.DTS, key memoKey) (*auxCore, []bool) {
	pid, pver, ok := d.DerivedFrom()
	if !ok {
		return nil, nil
	}
	pairs, ok := g.EditsSince(pver)
	if !ok {
		return nil, nil
	}
	pk := key
	pk.version = pver
	pk.did = pid
	parent, ok := memo.Get(pk)
	if !ok || parent.candOff == nil {
		return nil, nil
	}
	edited := make([]bool, g.N())
	for _, p := range pairs {
		edited[p.A] = true
		edited[p.B] = true
	}
	return parent, edited
}
