package auxgraph

import (
	"testing"

	"repro/internal/dts"
)

// TestDerivedCoreAllocGuard cross-checks hotalloc's static verdict on
// the core-derivation path dynamically: building the auxiliary graph
// of an edited version from a memoized parent core (the CSR prefill —
// untouched nodes' rows copied, only edited endpoints recomputed) must
// stay within a fixed allocation budget. Workers: 1 keeps the count
// deterministic. The ceiling is generous — a derivation legitimately
// allocates the new core's CSR arrays and candidate table — but a
// regression that re-runs the ψ-heavy DCS sweep per node, or leaks
// per-edge scratch, blows through it.
func TestDerivedCoreAllocGuard(t *testing.T) {
	PurgeMemo()
	dts.PurgeMemo()
	defer PurgeMemo()
	defer dts.PurgeMemo()

	g := editGraph()
	opts := Options{Workers: 1}
	d0, err := dts.Build(g.Graph, 0, 200, dts.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, d0, opts); err != nil {
		t.Fatal(err)
	}

	// Alternate add/remove of one contact so every iteration is a real
	// edit and the graph does not grow without bound across runs.
	present := false
	edit := func() {
		if present {
			if !g.RemoveContact(1, 3, iv(45, 80)) {
				t.Fatal("test setup: removal must change the graph")
			}
		} else {
			g.AddContact(1, 3, iv(45, 80), 7)
		}
		present = !present
	}

	hits0, _ := PatchStats()
	avg := testing.AllocsPerRun(20, func() {
		edit()
		d, err := dts.Build(g.Graph, 0, 200, dts.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Build(g, d, opts); err != nil {
			t.Fatal(err)
		}
	})
	hits1, _ := PatchStats()

	if hits1-hits0 < 20 {
		t.Fatalf("core patch hits went %d -> %d; the guard lost its subject (cold cores measured instead)",
			hits0, hits1)
	}
	// The budget covers the derived auxgraph core plus the patched DTS
	// it consumes (both are on the same edit path).
	const ceiling = 1200
	if avg > ceiling {
		t.Errorf("derived-core Build allocates %.0f objects/run, budget %d — the prefill path regressed",
			avg, ceiling)
	}
}
