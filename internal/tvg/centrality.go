package tvg

import "math"

// Temporal centrality metrics. In static graphs, good broadcast relays
// correlate with closeness/betweenness centrality; the temporal
// analogues below use earliest-arrival journeys instead of shortest
// paths. They are analysis tools: the experiments correlate EEDCB's
// relay choices with temporal closeness.

// TemporalCloseness returns, for every node, the closeness centrality
// over the window [t0, tEnd]: the mean of 1/(arrival - t0) across
// reachable other nodes (0 contributes for unreachable ones), times
// 1/(N-1). Higher means the node reaches the network faster.
func (g *Graph) TemporalCloseness(t0, tEnd float64) []float64 {
	out := make([]float64, g.n)
	if g.n < 2 {
		return out
	}
	for i := 0; i < g.n; i++ {
		arr := g.EarliestArrivals(NodeID(i), t0)
		sum := 0.0
		for j, a := range arr {
			if j == i || a > tEnd || math.IsInf(a, 1) {
				continue
			}
			lat := a - t0
			if lat <= 0 {
				lat = math.SmallestNonzeroFloat64
			}
			sum += 1 / lat
		}
		out[i] = sum / float64(g.n-1)
	}
	return out
}

// TemporalEccentricity returns, for every node, the worst-case earliest
// arrival to any other node starting at t0 (+Inf when some node is
// unreachable). The node with minimum eccentricity is the temporal
// center — the best single broadcast source for latency.
func (g *Graph) TemporalEccentricity(t0 float64) []float64 {
	out := make([]float64, g.n)
	for i := 0; i < g.n; i++ {
		arr := g.EarliestArrivals(NodeID(i), t0)
		worst := 0.0
		for j, a := range arr {
			if j == i {
				continue
			}
			if a >= 1e308 { // EarliestArrivals' unreachable sentinel
				worst = math.Inf(1)
				break
			}
			if a > worst {
				worst = a
			}
		}
		out[i] = worst
	}
	return out
}

// TemporalCenter returns the node with the smallest temporal
// eccentricity at t0 and that eccentricity (the minimum achievable
// broadcast completion time over source choices, ignoring energy).
func (g *Graph) TemporalCenter(t0 float64) (NodeID, float64) {
	ecc := g.TemporalEccentricity(t0)
	best := 0
	for i := 1; i < g.n; i++ {
		if ecc[i] < ecc[best] {
			best = i
		}
	}
	return NodeID(best), ecc[best]
}
