package tvg

import (
	"testing"

	"repro/internal/interval"
)

func TestRemoveContactClipsPresence(t *testing.T) {
	g := New(4, interval.Interval{Start: 0, End: 100}, 1)
	g.AddContact(0, 1, interval.Interval{Start: 10, End: 40})
	v := g.Version()

	if !g.RemoveContact(0, 1, interval.Interval{Start: 20, End: 30}) {
		t.Fatal("RemoveContact of a covered interval must report a change")
	}
	if g.Version() != v+1 {
		t.Errorf("version = %d, want %d", g.Version(), v+1)
	}
	want := interval.NewSet(interval.Interval{Start: 10, End: 20}, interval.Interval{Start: 30, End: 40})
	if !g.Presence(0, 1).Equal(want) {
		t.Errorf("presence = %v, want %v", g.Presence(0, 1), want)
	}
	// The pair still shares presence, so the ever-neighbor lists keep it.
	if len(g.EverNeighbors(0)) != 1 || g.EverNeighbors(0)[0] != 1 {
		t.Errorf("EverNeighbors(0) = %v, want [1]", g.EverNeighbors(0))
	}
}

func TestRemoveContactNoOps(t *testing.T) {
	g := New(4, interval.Interval{Start: 0, End: 100}, 1)
	g.AddContact(0, 1, interval.Interval{Start: 10, End: 40})
	v := g.Version()

	cases := []struct {
		name string
		i, j NodeID
		iv   interval.Interval
	}{
		{"absent edge", 2, 3, interval.Interval{Start: 0, End: 50}},
		{"disjoint interval", 0, 1, interval.Interval{Start: 50, End: 60}},
		{"empty interval", 0, 1, interval.Interval{Start: 20, End: 20}},
		{"touching endpoint", 0, 1, interval.Interval{Start: 40, End: 45}},
	}
	for _, c := range cases {
		if g.RemoveContact(c.i, c.j, c.iv) {
			t.Errorf("%s: RemoveContact reported a change", c.name)
		}
		if g.Version() != v {
			t.Errorf("%s: version bumped to %d on a no-op", c.name, g.Version())
		}
	}
}

func TestRemoveContactEmptiesPairDropsNeighbors(t *testing.T) {
	g := New(4, interval.Interval{Start: 0, End: 100}, 1)
	g.AddContact(0, 1, interval.Interval{Start: 10, End: 40})
	g.AddContact(0, 2, interval.Interval{Start: 5, End: 15})

	if !g.RemoveContact(1, 0, interval.Interval{Start: 0, End: 100}) {
		t.Fatal("RemoveContact must report the change")
	}
	if !g.Presence(0, 1).Empty() {
		t.Errorf("presence(0,1) = %v, want empty", g.Presence(0, 1))
	}
	if got := g.EverNeighbors(0); len(got) != 1 || got[0] != 2 {
		t.Errorf("EverNeighbors(0) = %v, want [2]", got)
	}
	if got := g.EverNeighbors(1); len(got) != 0 {
		t.Errorf("EverNeighbors(1) = %v, want []", got)
	}
	// Re-adding resurrects the pair in sorted order.
	g.AddContact(0, 1, interval.Interval{Start: 50, End: 60})
	if got := g.EverNeighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("EverNeighbors(0) after re-add = %v, want [1 2]", got)
	}
}

func TestEditsSinceTracksPairs(t *testing.T) {
	g := New(5, interval.Interval{Start: 0, End: 100}, 1)
	v0 := g.Version()
	g.AddContact(0, 1, interval.Interval{Start: 10, End: 40})
	g.AddContact(2, 3, interval.Interval{Start: 0, End: 20})
	v2 := g.Version()
	g.RemoveContact(0, 1, interval.Interval{Start: 15, End: 20})
	g.AddContact(1, 0, interval.Interval{Start: 70, End: 80})

	pairs, ok := g.EditsSince(v2)
	if !ok {
		t.Fatal("EditsSince(v2) must succeed")
	}
	if len(pairs) != 1 || pairs[0] != (EdgeKey{0, 1}) {
		t.Errorf("EditsSince(v2) = %v, want [{0 1}]", pairs)
	}

	pairs, ok = g.EditsSince(v0)
	if !ok {
		t.Fatal("EditsSince(v0) must succeed")
	}
	if len(pairs) != 2 || pairs[0] != (EdgeKey{0, 1}) || pairs[1] != (EdgeKey{2, 3}) {
		t.Errorf("EditsSince(v0) = %v, want [{0 1} {2 3}]", pairs)
	}

	if pairs, ok := g.EditsSince(g.Version()); !ok || len(pairs) != 0 {
		t.Errorf("EditsSince(current) = %v, %v, want empty, true", pairs, ok)
	}
	if _, ok := g.EditsSince(g.Version() + 1); ok {
		t.Error("EditsSince(future version) must fail")
	}
}

func TestEditsSinceTrimmedHistory(t *testing.T) {
	g := New(3, interval.Interval{Start: 0, End: 1e6}, 1)
	g.AddContact(0, 1, interval.Interval{Start: 0, End: 1})
	v := g.Version()
	// Overflow the journal so version v falls off the retained history.
	for k := 0; k < journalCap+10; k++ {
		g.AddContact(0, 2, interval.Interval{Start: float64(10 + 2*k), End: float64(11 + 2*k)})
	}
	if _, ok := g.EditsSince(v); ok {
		t.Error("EditsSince must fail once the journal trimmed past v")
	}
	// Recent history still resolves.
	recent := g.Version() - 5
	pairs, ok := g.EditsSince(recent)
	if !ok || len(pairs) != 1 || pairs[0] != (EdgeKey{0, 2}) {
		t.Errorf("EditsSince(recent) = %v, %v, want [{0 2}], true", pairs, ok)
	}
}
