// Package tvg implements deterministic time-varying graphs (§III-A):
// G = (V, E, T, ρ, ζ) with a finite node set, edges whose presence
// function ρ: E×T → {0,1} is a set of half-open intervals, and a constant
// latency function ζ(e, t) = τ. It provides the ρ_τ connectivity test of
// §IV, journeys (Definition 3.1) with foremost-arrival search, and the
// per-node adjacent partitions P_i^ad of §V (Eq. 9).
package tvg

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/interval"
	"repro/internal/partition"
)

// NodeID identifies a node; nodes are numbered 0..N-1.
type NodeID int

// EdgeKey identifies an undirected edge; the canonical form has A < B.
type EdgeKey struct {
	A, B NodeID
}

// MakeEdgeKey returns the canonical key for the pair (i, j).
func MakeEdgeKey(i, j NodeID) EdgeKey {
	if i > j {
		i, j = j, i
	}
	return EdgeKey{i, j}
}

// Graph is a deterministic continuous-time TVG. Edges are undirected:
// wireless contacts are symmetric. The zero value is not usable; create
// graphs with New.
type Graph struct {
	n        int
	span     interval.Interval
	tau      float64
	presence map[EdgeKey]interval.Set
	// neighbors[i] lists the nodes that share at least one presence
	// interval with i, kept sorted for determinism.
	neighbors [][]NodeID
	// version counts topology mutations (AddContact calls that change
	// presence). Memo caches downstream (dts, auxgraph) key on the
	// (graph ID, version) pair, so a mutated graph never serves a
	// stale cached artifact.
	version uint64
	// id is the process-unique identity stamped by New. Downstream memo
	// caches key on it instead of the *Graph pointer: in a long-running
	// process a collected graph's address can be recycled for a fresh
	// graph (also at version 0), and a pointer-keyed cache would then
	// silently serve the dead graph's artifacts. IDs are never reused.
	id uint64
	// journal records recent presence mutations (newest last) so
	// downstream caches can derive a patched artifact for the current
	// version from a memoized ancestor instead of rebuilding cold. It is
	// bounded: once trimmed, EditsSince reports the history as lost and
	// callers fall back to a cold build.
	journal []Edit
	// journalBase is the graph version immediately before the oldest
	// retained journal entry; EditsSince(v) for v < journalBase cannot
	// reconstruct the edit set and reports ok = false.
	journalBase uint64
}

// nextGraphID hands out process-unique graph identities; 0 is reserved
// as "no graph" so a zero-value key never matches a real one.
var nextGraphID atomic.Uint64

// New creates a TVG with n nodes over the time span, with uniform edge
// traversal time tau >= 0.
func New(n int, span interval.Interval, tau float64) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("tvg: non-positive node count %d", n))
	}
	if tau < 0 {
		panic(fmt.Sprintf("tvg: negative traversal time %g", tau))
	}
	return &Graph{
		n:         n,
		span:      span,
		tau:       tau,
		presence:  make(map[EdgeKey]interval.Set),
		neighbors: make([][]NodeID, n),
		id:        nextGraphID.Add(1),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// Span returns the time span T of the graph.
func (g *Graph) Span() interval.Interval { return g.span }

// Tau returns the uniform edge traversal time τ.
func (g *Graph) Tau() float64 { return g.tau }

// AddContact records that the edge (i, j) is present during iv, unioning
// with any previously recorded presence.
func (g *Graph) AddContact(i, j NodeID, iv interval.Interval) {
	if i == j {
		panic("tvg: self-loop contact")
	}
	g.checkNode(i)
	g.checkNode(j)
	if iv.Empty() {
		return
	}
	k := MakeEdgeKey(i, j)
	old, existed := g.presence[k]
	g.presence[k] = old.Add(iv)
	g.version++
	g.record(k)
	if !existed {
		g.neighbors[i] = insertSorted(g.neighbors[i], j)
		g.neighbors[j] = insertSorted(g.neighbors[j], i)
	}
}

// Version returns the topology mutation counter: it changes whenever a
// contact is added, and is stable otherwise. Caches keyed on (graph ID,
// version) are invalidated exactly when the topology changes.
func (g *Graph) Version() uint64 { return g.version }

// ID returns the graph's process-unique identity: a monotonic counter
// stamped at construction and never reused, so two distinct graphs never
// share an ID even if one is garbage-collected and the other happens to
// be allocated at the same address. Memo caches key on (ID, Version).
func (g *Graph) ID() uint64 { return g.id }

// SetIDForTest overrides the graph's identity. It exists solely so
// regression tests can force two distinct graphs onto one ID and prove a
// cache keyed on recycled identities serves stale artifacts; production
// code must never call it.
func (g *Graph) SetIDForTest(id uint64) { g.id = id }

func insertSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func (g *Graph) checkNode(i NodeID) {
	if i < 0 || int(i) >= g.n {
		panic(fmt.Sprintf("tvg: node %d out of range [0,%d)", i, g.n))
	}
}

// Presence returns the presence set of the edge (i, j): the times at
// which ρ(e_{i,j}, ·) = 1.
func (g *Graph) Presence(i, j NodeID) interval.Set {
	return g.presence[MakeEdgeKey(i, j)]
}

// Rho evaluates the presence function ρ(e_{i,j}, t).
func (g *Graph) Rho(i, j NodeID, t float64) bool {
	return g.presence[MakeEdgeKey(i, j)].Contains(t)
}

// RhoTau evaluates ρ_τ(e_{i,j}, t): whether i and j stay connected during
// the whole closed window [t, t+τ], the condition for completing one
// transmission started at t (§IV).
func (g *Graph) RhoTau(i, j NodeID, t float64) bool {
	return g.presence[MakeEdgeKey(i, j)].ContainsWindow(t, g.tau)
}

// EverNeighbors returns the nodes that are ever connected to i, sorted.
// The returned slice must not be modified.
func (g *Graph) EverNeighbors(i NodeID) []NodeID {
	g.checkNode(i)
	return g.neighbors[i]
}

// NeighborsAt appends to dst the nodes adjacent to i at time t (in the
// ρ_τ sense) and returns the extended slice, sorted.
func (g *Graph) NeighborsAt(i NodeID, t float64, dst []NodeID) []NodeID {
	g.checkNode(i)
	for _, j := range g.neighbors[i] {
		if g.RhoTau(i, j, t) {
			dst = append(dst, j)
		}
	}
	return dst
}

// DegreeAt returns the number of nodes adjacent to i at time t.
func (g *Graph) DegreeAt(i NodeID, t float64) int {
	g.checkNode(i)
	d := 0
	for _, j := range g.neighbors[i] {
		if g.RhoTau(i, j, t) {
			d++
		}
	}
	return d
}

// AverageDegreeAt returns the mean node degree at time t (Fig. 7 metric).
func (g *Graph) AverageDegreeAt(t float64) float64 {
	total := 0
	for i := 0; i < g.n; i++ {
		total += g.DegreeAt(NodeID(i), t)
	}
	return float64(total) / float64(g.n)
}

// AverageDegreeOver returns the mean node degree over the window
// [start, end), sampled at `samples` evenly spaced times (the Fig. 7
// "average degree every 500 s" metric).
func (g *Graph) AverageDegreeOver(start, end float64, samples int) float64 {
	if samples < 1 {
		samples = 1
	}
	total := 0.0
	for k := 0; k < samples; k++ {
		t := start + (end-start)*(float64(k)+0.5)/float64(samples)
		total += g.AverageDegreeAt(t)
	}
	return total / float64(samples)
}

// PairAdjacentPartition returns P_{i,j}^ad: the partition of the span
// into adjacent and non-adjacent intervals of the pair (i, j), in the
// ρ_τ sense.
func (g *Graph) PairAdjacentPartition(i, j NodeID) partition.Partition {
	eroded := g.presence[MakeEdgeKey(i, j)].Erode(g.tau)
	pts := eroded.Breakpoints(g.span, nil)
	return partition.New(g.span.Start, g.span.End, pts...)
}

// AdjacentPartition returns P_i^ad (Eq. 9): the combination of
// P_{i,j}^ad over all other nodes j. Within each interval of the result,
// the set of nodes adjacent to i is unchanged.
func (g *Graph) AdjacentPartition(i NodeID) partition.Partition {
	g.checkNode(i)
	var pts []float64
	for _, j := range g.neighbors[i] {
		eroded := g.presence[MakeEdgeKey(i, j)].Erode(g.tau)
		pts = eroded.Breakpoints(g.span, pts)
	}
	return partition.New(g.span.Start, g.span.End, pts...)
}

// AdjacentPartitions returns P_V^ad = {P_1^ad, ..., P_N^ad}.
func (g *Graph) AdjacentPartitions() []partition.Partition {
	out := make([]partition.Partition, g.n)
	for i := 0; i < g.n; i++ {
		out[i] = g.AdjacentPartition(NodeID(i))
	}
	return out
}

// earliestTransmissionAfter returns the earliest time t >= t0 at which a
// transmission from i to j can start (ρ_τ(e, t) = 1), or ok = false if no
// such time exists within the span.
func (g *Graph) earliestTransmissionAfter(i, j NodeID, t0 float64) (float64, bool) {
	eroded := g.presence[MakeEdgeKey(i, j)].Erode(g.tau)
	for _, iv := range eroded.Intervals() {
		cand := math.Max(t0, iv.Start)
		// Eroded intervals are half-open: cand must lie strictly before
		// the interval end, and the transmission must finish within the
		// span.
		if cand < iv.End && cand+g.tau <= g.span.End {
			return cand, true
		}
	}
	return 0, false
}

// EarliestArrivals computes, for every node, the foremost journey arrival
// time from src when the packet originates at src at time t0. Nodes that
// are unreachable get +Inf. This is the temporal analogue of Dijkstra:
// nodes are settled in order of earliest arrival, and each settled node
// relaxes its neighbors through the earliest feasible transmission.
func (g *Graph) EarliestArrivals(src NodeID, t0 float64) []float64 {
	g.checkNode(src)
	const inf = 1e308
	arr := make([]float64, g.n)
	done := make([]bool, g.n)
	for i := range arr {
		arr[i] = inf
	}
	arr[src] = t0
	for {
		// pick unsettled node with minimum arrival
		best := -1
		for i := 0; i < g.n; i++ {
			if !done[i] && arr[i] < inf && (best == -1 || arr[i] < arr[best]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		done[best] = true
		for _, j := range g.neighbors[best] {
			if done[j] {
				continue
			}
			t, ok := g.earliestTransmissionAfter(NodeID(best), j, arr[best])
			if ok && t+g.tau < arr[j] {
				arr[j] = t + g.tau
			}
		}
	}
	return arr
}

// Hop is one couple (e, t) of a journey: a traversal of the edge from
// From to To starting at time T.
type Hop struct {
	From, To NodeID
	T        float64
}

// Journey is a sequence of hops (Definition 3.1).
type Journey []Hop

// Departure returns the starting time t_1 of the journey.
func (j Journey) Departure() float64 {
	if len(j) == 0 {
		return 0
	}
	return j[0].T
}

// Arrival returns the ending time t_k + τ of the journey in g.
func (j Journey) Arrival(g *Graph) float64 {
	if len(j) == 0 {
		return 0
	}
	return j[len(j)-1].T + g.tau
}

// Validate checks Definition 3.1: consecutive hops chain head-to-tail,
// every hop's edge is present during its whole traversal window, hops are
// properly ordered (t_{l+1} >= t_l + τ), and no node repeats (the paper
// considers only journeys without circles).
func (j Journey) Validate(g *Graph) error {
	seen := make(map[NodeID]bool, len(j)+1)
	for l, h := range j {
		if h.From == h.To {
			return fmt.Errorf("tvg: hop %d is a self loop", l)
		}
		if !g.RhoTau(h.From, h.To, h.T) {
			return fmt.Errorf("tvg: hop %d edge (%d,%d) not present during [%g,%g]",
				l, h.From, h.To, h.T, h.T+g.tau)
		}
		if l > 0 {
			if j[l-1].To != h.From {
				return fmt.Errorf("tvg: hop %d does not chain from hop %d", l, l-1)
			}
			if h.T < j[l-1].T+g.tau {
				return fmt.Errorf("tvg: hop %d departs at %g before previous arrival %g",
					l, h.T, j[l-1].T+g.tau)
			}
		}
		if seen[h.From] {
			return fmt.Errorf("tvg: node %d repeated (journey has a circle)", h.From)
		}
		seen[h.From] = true
	}
	if len(j) > 0 && seen[j[len(j)-1].To] {
		return fmt.Errorf("tvg: terminal node %d repeated", j[len(j)-1].To)
	}
	return nil
}

// NonStop reports whether the journey is a non-stop journey:
// t_{l+1} = t_l + τ for every consecutive pair.
func (j Journey) NonStop(g *Graph) bool {
	for l := 1; l < len(j); l++ {
		if j[l].T != j[l-1].T+g.tau {
			return false
		}
	}
	return true
}
