package tvg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// hubGraph: node 1 is connected to everyone early; node 3 gets an extra
// late contact. τ = 1 so relaying through the hub costs real time.
func hubGraph() *Graph {
	g := New(4, iv(0, 100), 1)
	g.AddContact(1, 0, iv(5, 20))
	g.AddContact(1, 2, iv(5, 20))
	g.AddContact(1, 3, iv(5, 20))
	g.AddContact(3, 0, iv(80, 90))
	return g
}

func TestTemporalClosenessHubWins(t *testing.T) {
	g := hubGraph()
	c := g.TemporalCloseness(0, 100)
	for i := 0; i < 4; i++ {
		if i == 1 {
			continue
		}
		if c[1] <= c[i] {
			t.Errorf("hub closeness %g not above node %d's %g", c[1], i, c[i])
		}
	}
}

func TestTemporalEccentricityAndCenter(t *testing.T) {
	g := hubGraph()
	ecc := g.TemporalEccentricity(0)
	// hub transmits at 5, everyone receives at 6: eccentricity 6
	if ecc[1] != 6 {
		t.Errorf("hub eccentricity = %g, want 6", ecc[1])
	}
	// spokes need two hops: arrive 6 at the hub, 7 at the others
	if ecc[0] != 7 {
		t.Errorf("spoke eccentricity = %g, want 7", ecc[0])
	}
	center, e := g.TemporalCenter(0)
	if center != 1 || e != 6 {
		t.Errorf("center = %d (ecc %g), want hub 1 (ecc 6)", center, e)
	}
}

func TestTemporalEccentricityUnreachable(t *testing.T) {
	g := New(3, iv(0, 10), 0)
	g.AddContact(0, 1, iv(0, 10))
	ecc := g.TemporalEccentricity(0)
	if !math.IsInf(ecc[0], 1) {
		t.Errorf("node 0 eccentricity = %g, want +Inf (node 2 isolated)", ecc[0])
	}
}

func TestTemporalClosenessSingleNode(t *testing.T) {
	g := New(1, iv(0, 10), 0)
	if c := g.TemporalCloseness(0, 10); c[0] != 0 {
		t.Errorf("singleton closeness = %g, want 0", c[0])
	}
}

func TestQuickClosenessBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 6, 1)
		for _, c := range g.TemporalCloseness(0, 1000) {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickCenterMinimizesEccentricity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 6, 1)
		center, e := g.TemporalCenter(0)
		for _, x := range g.TemporalEccentricity(0) {
			if x < e {
				return false
			}
		}
		_ = center
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
