package tvg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/interval"
)

func iv(a, b float64) interval.Interval { return interval.Interval{Start: a, End: b} }

// lineGraph builds the example of Fig. 1/2 style: a 4-node graph with
// hand-placed contacts over [0, 100], τ = 1.
func lineGraph() *Graph {
	g := New(4, iv(0, 100), 1)
	g.AddContact(0, 1, iv(10, 30))
	g.AddContact(0, 1, iv(60, 70))
	g.AddContact(1, 2, iv(25, 45))
	g.AddContact(2, 3, iv(40, 55))
	g.AddContact(0, 3, iv(80, 90))
	return g
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, iv(0, 1), 0) },
		func() { New(3, iv(0, 1), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAddContactSelfLoopPanics(t *testing.T) {
	g := New(2, iv(0, 10), 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for self loop")
		}
	}()
	g.AddContact(1, 1, iv(0, 5))
}

func TestRho(t *testing.T) {
	g := lineGraph()
	if !g.Rho(0, 1, 15) || !g.Rho(1, 0, 15) {
		t.Error("edge (0,1) present at 15, symmetric")
	}
	if g.Rho(0, 1, 45) {
		t.Error("edge (0,1) absent at 45")
	}
	if g.Rho(0, 2, 15) {
		t.Error("edge (0,2) never present")
	}
}

func TestRhoTau(t *testing.T) {
	g := lineGraph()
	// contact [10,30), τ=1: the window must end strictly before 30
	if !g.RhoTau(0, 1, 28.9) {
		t.Error("ρ_τ at 28.9 should hold ([28.9,29.9] ⊂ [10,30))")
	}
	if g.RhoTau(0, 1, 29) {
		t.Error("ρ_τ at 29 should fail: [29,30] reaches the excluded endpoint")
	}
	if g.RhoTau(0, 1, 29.5) {
		t.Error("ρ_τ at 29.5 should fail ([29.5,30.5] ⊄ [10,30))")
	}
	if !g.RhoTau(0, 1, 10) {
		t.Error("ρ_τ at contact start should hold")
	}
}

func TestNeighborsAt(t *testing.T) {
	g := lineGraph()
	got := g.NeighborsAt(1, 27, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("NeighborsAt(1, 27) = %v, want [0 2]", got)
	}
	got = g.NeighborsAt(1, 50, nil)
	if len(got) != 0 {
		t.Errorf("NeighborsAt(1, 50) = %v, want []", got)
	}
}

func TestDegreeAndAverageDegree(t *testing.T) {
	g := lineGraph()
	if d := g.DegreeAt(1, 27); d != 2 {
		t.Errorf("DegreeAt(1,27) = %d, want 2", d)
	}
	// At t=27: edges (0,1) and (1,2) are up; degrees 1,2,1,0 → avg 1.
	if avg := g.AverageDegreeAt(27); avg != 1 {
		t.Errorf("AverageDegreeAt(27) = %g, want 1", avg)
	}
}

func TestEverNeighbors(t *testing.T) {
	g := lineGraph()
	got := g.EverNeighbors(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("EverNeighbors(0) = %v, want [1 3]", got)
	}
}

func TestPairAdjacentPartition(t *testing.T) {
	g := lineGraph()
	// presence (0,1): [10,30)∪[60,70); eroded by τ=1: [10,29)∪[60,69)
	p := g.PairAdjacentPartition(0, 1)
	want := []float64{0, 10, 29, 60, 69, 100}
	pts := p.Points()
	if len(pts) != len(want) {
		t.Fatalf("partition = %v, want %v", pts, want)
	}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-9 {
			t.Errorf("pts[%d] = %g, want %g", i, pts[i], want[i])
		}
	}
}

func TestAdjacentPartitionCombines(t *testing.T) {
	g := lineGraph()
	p := g.AdjacentPartition(0)
	// breakpoints from (0,1) eroded: 10,29,60,69; from (0,3): 80,89
	want := []float64{0, 10, 29, 60, 69, 80, 89, 100}
	pts := p.Points()
	if len(pts) != len(want) {
		t.Fatalf("partition = %v, want %v", pts, want)
	}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-9 {
			t.Errorf("pts[%d] = %g, want %g", i, pts[i], want[i])
		}
	}
}

func TestAdjacentPartitionsAll(t *testing.T) {
	g := lineGraph()
	all := g.AdjacentPartitions()
	if len(all) != 4 {
		t.Fatalf("got %d partitions, want 4", len(all))
	}
	for i, p := range all {
		s, e := p.Span()
		if s != 0 || e != 100 {
			t.Errorf("partition %d span = (%g,%g), want (0,100)", i, s, e)
		}
	}
}

func TestEarliestArrivals(t *testing.T) {
	g := lineGraph()
	arr := g.EarliestArrivals(0, 0)
	// 0→1 starts at 10, arrives 11
	if arr[1] != 11 {
		t.Errorf("arr[1] = %g, want 11", arr[1])
	}
	// 1→2 contact [25,45): earliest ≥11 is 25, arrival 26
	if arr[2] != 26 {
		t.Errorf("arr[2] = %g, want 26", arr[2])
	}
	// 2→3 contact [40,55): departs 40, arrives 41 — beats 0→3 at 80
	if arr[3] != 41 {
		t.Errorf("arr[3] = %g, want 41", arr[3])
	}
	if arr[0] != 0 {
		t.Errorf("arr[0] = %g, want 0 (source)", arr[0])
	}
}

func TestEarliestArrivalsLateStart(t *testing.T) {
	g := lineGraph()
	arr := g.EarliestArrivals(0, 50)
	// 0→1 contact [60,70): arrives 61; 1→2 gone (ends 45) → 2,3 via 0→3
	if arr[1] != 61 {
		t.Errorf("arr[1] = %g, want 61", arr[1])
	}
	if arr[3] != 81 {
		t.Errorf("arr[3] = %g, want 81", arr[3])
	}
	if !math.IsInf(arr[2], 1) && arr[2] < 1e300 {
		t.Errorf("arr[2] = %g, want unreachable", arr[2])
	}
}

func TestEarliestArrivalsDisconnected(t *testing.T) {
	g := New(3, iv(0, 10), 0)
	g.AddContact(0, 1, iv(0, 10))
	arr := g.EarliestArrivals(0, 0)
	if arr[2] < 1e300 {
		t.Errorf("arr[2] = %g, want unreachable", arr[2])
	}
}

func TestJourneyValidate(t *testing.T) {
	g := lineGraph()
	good := Journey{{0, 1, 10}, {1, 2, 25}, {2, 3, 40}}
	if err := good.Validate(g); err != nil {
		t.Errorf("valid journey rejected: %v", err)
	}
	// hop not chained
	bad := Journey{{0, 1, 10}, {2, 3, 40}}
	if bad.Validate(g) == nil {
		t.Error("unchained journey accepted")
	}
	// departs before previous arrival
	bad = Journey{{0, 1, 25}, {1, 2, 25.5}}
	if bad.Validate(g) == nil {
		t.Error("overlapping hops accepted")
	}
	// edge not present
	bad = Journey{{0, 1, 40}}
	if bad.Validate(g) == nil {
		t.Error("absent-edge hop accepted")
	}
	// circle
	bad = Journey{{0, 1, 10}, {1, 0, 12}}
	if bad.Validate(g) == nil {
		t.Error("journey with circle accepted")
	}
	// self loop hop
	bad = Journey{{1, 1, 10}}
	if bad.Validate(g) == nil {
		t.Error("self-loop hop accepted")
	}
}

func TestJourneyDepartureArrivalNonStop(t *testing.T) {
	g := lineGraph()
	j := Journey{{0, 1, 26}, {1, 2, 27}}
	if j.Departure() != 26 {
		t.Errorf("Departure = %g, want 26", j.Departure())
	}
	if j.Arrival(g) != 28 {
		t.Errorf("Arrival = %g, want 28", j.Arrival(g))
	}
	if !j.NonStop(g) {
		t.Error("back-to-back hops should be non-stop")
	}
	j2 := Journey{{0, 1, 10}, {1, 2, 25}}
	if j2.NonStop(g) {
		t.Error("gapped journey is not non-stop")
	}
	if err := j.Validate(g); err != nil {
		t.Errorf("non-stop journey invalid: %v", err)
	}
}

// randomGraph builds a random TVG for property tests.
func randomGraph(r *rand.Rand, n int, tau float64) *Graph {
	g := New(n, iv(0, 1000), tau)
	contacts := 2 * n
	for c := 0; c < contacts; c++ {
		i := NodeID(r.Intn(n))
		j := NodeID(r.Intn(n))
		if i == j {
			continue
		}
		start := r.Float64() * 900
		g.AddContact(i, j, iv(start, start+10+r.Float64()*80))
	}
	return g
}

func TestQuickEarliestArrivalsMonotoneInStart(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 6, 1)
		a0 := g.EarliestArrivals(0, 0)
		a1 := g.EarliestArrivals(0, 100)
		for i := range a0 {
			if a1[i] < a0[i]-1e-9 {
				return false // starting later can never arrive earlier
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickAdjacencyConstantWithinPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 5, 1)
		for i := 0; i < g.N(); i++ {
			p := g.AdjacentPartition(NodeID(i))
			pts := p.Points()
			for k := 0; k+1 < len(pts); k++ {
				lo, hi := pts[k], pts[k+1]
				// sample two interior points; neighbor sets must match
				t1 := lo + (hi-lo)*0.25
				t2 := lo + (hi-lo)*0.75
				n1 := g.NeighborsAt(NodeID(i), t1, nil)
				n2 := g.NeighborsAt(NodeID(i), t2, nil)
				if len(n1) != len(n2) {
					return false
				}
				for x := range n1 {
					if n1[x] != n2[x] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickEarliestArrivalRespectsTau(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 6, 2)
		arr := g.EarliestArrivals(0, 0)
		for i, a := range arr {
			if i == 0 || a > 1e300 {
				continue
			}
			// any reachable node needed at least one hop of length τ
			if a < g.Tau() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
