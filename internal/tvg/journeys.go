package tvg

import (
	"math"
)

// The three classic journey optimality notions of Bui-Xuan, Ferreira
// and Jarry (cited as [8] by the paper), plus the temporal reachability
// graphs of Whitbeck et al. [10]. These make the TVG substrate a usable
// temporal-graph library on its own, and the fastest/foremost machinery
// doubles as a lower-bound oracle for broadcast latency.

// ForemostJourney returns a journey from src to dst departing no earlier
// than t0 that arrives as early as possible, or nil when dst is
// unreachable. The journey is reconstructed from the earliest-arrival
// relaxation of EarliestArrivals.
func (g *Graph) ForemostJourney(src, dst NodeID, t0 float64) Journey {
	g.checkNode(src)
	g.checkNode(dst)
	if src == dst {
		return Journey{}
	}
	const inf = 1e308
	arr := make([]float64, g.n)
	prevHop := make([]Hop, g.n)
	hasPrev := make([]bool, g.n)
	done := make([]bool, g.n)
	for i := range arr {
		arr[i] = inf
	}
	arr[src] = t0
	for {
		best := -1
		for i := 0; i < g.n; i++ {
			if !done[i] && arr[i] < inf && (best == -1 || arr[i] < arr[best]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		done[best] = true
		if NodeID(best) == dst {
			break
		}
		for _, j := range g.neighbors[best] {
			if done[j] {
				continue
			}
			t, ok := g.earliestTransmissionAfter(NodeID(best), j, arr[best])
			if ok && t+g.tau < arr[j] {
				arr[j] = t + g.tau
				prevHop[j] = Hop{From: NodeID(best), To: j, T: t}
				hasPrev[j] = true
			}
		}
	}
	if arr[dst] >= inf {
		return nil
	}
	var rev []Hop
	for cur := dst; cur != src; {
		if !hasPrev[cur] {
			return nil
		}
		h := prevHop[cur]
		rev = append(rev, h)
		cur = h.From
	}
	out := make(Journey, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// ShortestJourney returns a journey from src to dst departing no earlier
// than t0 with the minimum number of hops (topological length), with
// earliest arrival among journeys of that hop count. nil when
// unreachable. A hop-layered DP computes A[h][v], the earliest arrival
// at v using at most h hops, and the journey is reconstructed by
// recomputing each layer's relaxation backwards.
func (g *Graph) ShortestJourney(src, dst NodeID, t0 float64) Journey {
	g.checkNode(src)
	g.checkNode(dst)
	if src == dst {
		return Journey{}
	}
	const inf = 1e308
	a := make([][]float64, 1, g.n)
	a[0] = make([]float64, g.n)
	for i := range a[0] {
		a[0][i] = inf
	}
	a[0][src] = t0
	hstar := -1
	for h := 1; h < g.n; h++ {
		cur := a[h-1]
		next := append([]float64(nil), cur...)
		improved := false
		for u := 0; u < g.n; u++ {
			if cur[u] >= inf {
				continue
			}
			for _, v := range g.neighbors[u] {
				t, ok := g.earliestTransmissionAfter(NodeID(u), v, cur[u])
				if ok && t+g.tau < next[v] {
					next[v] = t + g.tau
					improved = true
				}
			}
		}
		a = append(a, next)
		if next[dst] < inf {
			hstar = h
			break
		}
		if !improved {
			return nil
		}
	}
	if hstar == -1 {
		return nil
	}
	// Backward reconstruction: at layer h the hop into cur arrives at
	// a[h][cur]; any predecessor u with a feasible transmission achieving
	// exactly that arrival works.
	var rev []Hop
	cur := dst
	for h := hstar; h > 0; h-- {
		if a[h-1][cur] == a[h][cur] {
			continue // cur was already reached with fewer hops
		}
		found := false
		for _, u := range g.neighbors[cur] {
			if a[h-1][u] >= inf {
				continue
			}
			t, ok := g.earliestTransmissionAfter(u, cur, a[h-1][u])
			if ok && t+g.tau == a[h][cur] {
				rev = append(rev, Hop{From: u, To: cur, T: t})
				cur = u
				found = true
				break
			}
		}
		if !found {
			return nil // should not happen: DP and recomputation disagree
		}
	}
	if cur != src {
		return nil
	}
	out := make(Journey, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// FastestJourney returns a journey from src to dst within [t0, tEnd]
// minimizing the duration arrival − departure, or nil when unreachable.
// It scans candidate departure times (the starts of src's transmission
// opportunities) and runs a foremost search from each.
func (g *Graph) FastestJourney(src, dst NodeID, t0, tEnd float64) Journey {
	g.checkNode(src)
	g.checkNode(dst)
	if src == dst {
		return Journey{}
	}
	var best Journey
	bestDur := math.Inf(1)
	for _, dep := range g.departureCandidates(src, t0, tEnd) {
		j := g.ForemostJourney(src, dst, dep)
		if len(j) == 0 {
			continue
		}
		if j.Arrival(g) > tEnd {
			continue
		}
		if dur := j.Arrival(g) - j.Departure(); dur < bestDur {
			bestDur = dur
			best = j
		}
	}
	return best
}

// departureCandidates lists the times at which a fastest journey from
// src could depart: t0 plus the start of every transmission opportunity
// of ANY edge within [t0, tEnd] (Bui-Xuan et al.: an optimal departure
// can always be shifted forward to the next edge-appearance time, so
// appearance times suffice). The downstream edges matter too — the
// fastest journey often departs exactly when a later hop's contact
// opens, eliminating the wait at intermediate nodes.
func (g *Graph) departureCandidates(src NodeID, t0, tEnd float64) []float64 {
	out := []float64{t0}
	for i := 0; i < g.n; i++ {
		for _, j := range g.neighbors[i] {
			if NodeID(i) > j {
				continue // each edge once
			}
			eroded := g.Presence(NodeID(i), j).Erode(g.tau)
			for _, iv := range eroded.Intervals() {
				if iv.Start >= t0 && iv.Start <= tEnd {
					out = append(out, iv.Start)
				}
			}
		}
	}
	return out
}

// Reachability reports, for every node, whether a journey from src
// departing at or after t1 can arrive by t2 — one row of the temporal
// reachability graph of Whitbeck et al.
func (g *Graph) Reachability(src NodeID, t1, t2 float64) []bool {
	arr := g.EarliestArrivals(src, t1)
	out := make([]bool, g.n)
	for i, a := range arr {
		out[i] = a <= t2
	}
	return out
}

// ReachabilityMatrix returns the full temporal reachability graph for
// the window [t1, t2]: m[i][j] is true when i can reach j.
func (g *Graph) ReachabilityMatrix(t1, t2 float64) [][]bool {
	out := make([][]bool, g.n)
	for i := 0; i < g.n; i++ {
		out[i] = g.Reachability(NodeID(i), t1, t2)
	}
	return out
}
