package tvg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// journeyGraph: two routes 0→3: a 3-hop chain available early, and a
// 1-hop direct contact available late.
func journeyGraph() *Graph {
	g := New(4, iv(0, 200), 1)
	g.AddContact(0, 1, iv(10, 20))
	g.AddContact(1, 2, iv(30, 40))
	g.AddContact(2, 3, iv(50, 60))
	g.AddContact(0, 3, iv(100, 120))
	return g
}

func TestForemostJourney(t *testing.T) {
	g := journeyGraph()
	j := g.ForemostJourney(0, 3, 0)
	if err := j.Validate(g); err != nil {
		t.Fatalf("foremost journey invalid: %v (%v)", err, j)
	}
	// chain arrives at 51 (depart 50 on edge 2-3, τ=1); direct at 101
	if got := j.Arrival(g); got != 51 {
		t.Errorf("foremost arrival = %g, want 51", got)
	}
	if len(j) != 3 {
		t.Errorf("foremost journey %v, want 3 hops", j)
	}
}

func TestForemostJourneyLateStart(t *testing.T) {
	g := journeyGraph()
	// starting at 25 the chain's first edge is gone: only direct remains
	j := g.ForemostJourney(0, 3, 25)
	if err := j.Validate(g); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if got := j.Arrival(g); got != 101 {
		t.Errorf("arrival = %g, want 101", got)
	}
	if len(j) != 1 {
		t.Errorf("journey %v, want direct hop", j)
	}
}

func TestForemostJourneyUnreachable(t *testing.T) {
	g := journeyGraph()
	if j := g.ForemostJourney(0, 3, 150); j != nil {
		t.Errorf("journey after all contacts should be nil, got %v", j)
	}
}

func TestForemostJourneySelf(t *testing.T) {
	g := journeyGraph()
	if j := g.ForemostJourney(2, 2, 0); len(j) != 0 {
		t.Errorf("self journey should be empty, got %v", j)
	}
}

func TestShortestJourneyPrefersFewHops(t *testing.T) {
	g := journeyGraph()
	j := g.ShortestJourney(0, 3, 0)
	if err := j.Validate(g); err != nil {
		t.Fatalf("invalid: %v (%v)", err, j)
	}
	// the direct hop (1 hop, arrives 101) beats the chain (3 hops, 51)
	if len(j) != 1 {
		t.Errorf("shortest journey %v, want the 1-hop direct contact", j)
	}
	if got := j.Arrival(g); got != 101 {
		t.Errorf("arrival = %g, want 101", got)
	}
}

func TestShortestJourneyUnreachable(t *testing.T) {
	g := journeyGraph()
	if j := g.ShortestJourney(0, 3, 150); j != nil {
		t.Errorf("want nil, got %v", j)
	}
	g2 := New(3, iv(0, 10), 0)
	g2.AddContact(0, 1, iv(0, 10))
	if j := g2.ShortestJourney(0, 2, 0); j != nil {
		t.Errorf("disconnected node reachable: %v", j)
	}
}

func TestFastestJourneyWaitsForDirectContact(t *testing.T) {
	g := journeyGraph()
	j := g.FastestJourney(0, 3, 0, 200)
	if err := j.Validate(g); err != nil {
		t.Fatalf("invalid: %v (%v)", err, j)
	}
	// departing at 100 on the direct edge: duration 1 (τ). The chain
	// departing at 10 takes 41.
	if dur := j.Arrival(g) - j.Departure(); dur != 1 {
		t.Errorf("fastest duration = %g, want 1", dur)
	}
}

func TestFastestJourneyRespectsWindowEnd(t *testing.T) {
	g := journeyGraph()
	// window ends before the direct contact completes: chain wins
	j := g.FastestJourney(0, 3, 0, 60)
	if err := j.Validate(g); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(j) != 3 {
		t.Errorf("journey %v, want the 3-hop chain", j)
	}
}

func TestReachability(t *testing.T) {
	g := journeyGraph()
	r := g.Reachability(0, 0, 60)
	want := []bool{true, true, true, true} // chain completes by 51
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("Reachability[%d] = %v, want %v", i, r[i], want[i])
		}
	}
	r = g.Reachability(0, 0, 40)
	if r[3] {
		t.Error("node 3 should be unreachable by t=40")
	}
	if !r[2] {
		t.Error("node 2 should be reachable by t=40 (arrives 31)")
	}
}

func TestReachabilityMatrix(t *testing.T) {
	g := journeyGraph()
	m := g.ReachabilityMatrix(0, 200)
	if !m[0][3] {
		t.Error("0 should reach 3 over the full window")
	}
	if !m[3][0] {
		t.Error("3 should reach 0 (direct contact is symmetric)")
	}
	// 3 cannot reach 1: after contact (0,3) at 100-120, edge (0,1) is
	// gone (ended at 20)
	if m[3][1] {
		t.Error("3 should not reach 1")
	}
	for i := range m {
		if !m[i][i] {
			t.Errorf("node %d should reach itself", i)
		}
	}
}

func TestQuickJourneysValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 6, 1)
		for s := 0; s < g.N(); s++ {
			for d := 0; d < g.N(); d++ {
				if s == d {
					continue
				}
				fm := g.ForemostJourney(NodeID(s), NodeID(d), 0)
				if fm != nil && fm.Validate(g) != nil {
					return false
				}
				sh := g.ShortestJourney(NodeID(s), NodeID(d), 0)
				if sh != nil && sh.Validate(g) != nil {
					return false
				}
				// reachability must agree between the two searches
				if (fm == nil) != (sh == nil) {
					return false
				}
				if fm != nil && sh != nil {
					// shortest has no more hops; foremost arrives no later
					if len(sh) > len(fm) {
						return false
					}
					if fm.Arrival(g) > sh.Arrival(g) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickFastestNoLongerThanForemost(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 6, 1)
		for d := 1; d < g.N(); d++ {
			fm := g.ForemostJourney(0, NodeID(d), 0)
			fa := g.FastestJourney(0, NodeID(d), 0, 1000)
			if fm == nil {
				continue
			}
			if fa == nil {
				return false // foremost exists within the span: fastest must too
			}
			if fa.Validate(g) != nil {
				return false
			}
			durFast := fa.Arrival(g) - fa.Departure()
			durFore := fm.Arrival(g) - fm.Departure()
			if durFast > durFore+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickReachabilityMonotoneInWindow(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 6, 1)
		narrow := g.ReachabilityMatrix(100, 500)
		wide := g.ReachabilityMatrix(100, 900)
		for i := range narrow {
			for j := range narrow[i] {
				if narrow[i][j] && !wide[i][j] {
					return false // widening the window cannot lose reachability
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
