package tvg

import (
	"sort"

	"repro/internal/interval"
)

// Edit is one entry of the graph's mutation journal: the canonical edge
// pair whose presence changed, and the version the mutation produced.
type Edit struct {
	Pair    EdgeKey
	Version uint64
}

// journalCap bounds the retained mutation history. A derivation that
// spans more edits than this falls back to a cold build, so the cap
// trades patch reach against the memory pinned per graph.
const journalCap = 128

// record appends a journal entry for the mutation that just bumped
// g.version, trimming the oldest history past journalCap.
func (g *Graph) record(k EdgeKey) {
	g.journal = append(g.journal, Edit{Pair: k, Version: g.version})
	if len(g.journal) > journalCap {
		drop := len(g.journal) - journalCap
		g.journalBase = g.journal[drop-1].Version
		g.journal = append(g.journal[:0], g.journal[drop:]...)
	}
}

// RemoveContact deletes every point of iv from the presence of the edge
// (i, j). It reports whether the presence actually changed; no-op
// removals (absent edge, interval disjoint from all recorded presence)
// leave the version untouched so downstream memo entries stay valid.
// When the last presence interval of a pair disappears the pair also
// leaves both ever-neighbor lists.
func (g *Graph) RemoveContact(i, j NodeID, iv interval.Interval) bool {
	if i == j {
		panic("tvg: self-loop contact")
	}
	g.checkNode(i)
	g.checkNode(j)
	if iv.Empty() {
		return false
	}
	k := MakeEdgeKey(i, j)
	old, existed := g.presence[k]
	if !existed {
		return false
	}
	next := old.Subtract(iv)
	if next.Equal(old) {
		return false
	}
	if next.Empty() {
		delete(g.presence, k)
		g.neighbors[i] = removeSorted(g.neighbors[i], j)
		g.neighbors[j] = removeSorted(g.neighbors[j], i)
	} else {
		g.presence[k] = next
	}
	g.version++
	g.record(k)
	return true
}

func removeSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i >= len(s) || s[i] != v {
		return s
	}
	return append(s[:i], s[i+1:]...)
}

// Journal returns the retained mutation journal entries with
// Version > since, oldest first. The returned slice aliases internal
// state and must not be modified.
func (g *Graph) Journal(since uint64) []Edit {
	i := sort.Search(len(g.journal), func(i int) bool { return g.journal[i].Version > since })
	return g.journal[i:]
}

// EditsSince returns the distinct edge pairs whose presence changed
// between version v and the current version, in first-edit order.
// ok = false means the journal no longer covers that range (v predates
// the retained history, or is not an ancestor version of this graph)
// and the caller must treat every pair as potentially edited.
func (g *Graph) EditsSince(v uint64) ([]EdgeKey, bool) {
	if v > g.version || v < g.journalBase {
		return nil, false
	}
	var out []EdgeKey
	for _, e := range g.Journal(v) {
		dup := false
		for _, p := range out {
			if p == e.Pair {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e.Pair)
		}
	}
	return out, true
}
