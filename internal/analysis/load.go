package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked module package.
type Package struct {
	// Path is the import path ("repro/internal/core").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the checker's expression/object tables.
	Info *types.Info
	// Fset resolves every position in Files.
	Fset *token.FileSet
}

// Loader parses and type-checks packages of the enclosing module. It
// resolves module-internal imports from source and standard-library
// imports through go/importer's source compiler, so it needs neither
// export data nor any tooling beyond the standard library.
//
// A Loader memoizes by import path and is not safe for concurrent use.
type Loader struct {
	// ModuleDir is the absolute module root (directory of go.mod).
	ModuleDir string
	// ModulePath is the module path from go.mod ("repro").
	ModulePath string
	// Fset is shared by every package this loader touches.
	Fset *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// The standard-library source importer re-parses and re-type-checks
// every stdlib package it resolves, which dominates loader start-up
// (~seconds of fmt/sync/net transitive closure). All Loaders in the
// process therefore share one importer bound to one process-global
// FileSet: the first import of "fmt" pays the resolution cost, every
// later Loader — each fixture test builds its own — hits the
// importer's internal cache. The mutex serializes Import because the
// shared importer memoizes into unsynchronized maps.
var (
	sharedFset    = token.NewFileSet()
	sharedStdOnce sync.Once
	sharedStd     types.Importer
)

// stdImporter returns the process-wide cached stdlib importer.
func stdImporter() types.Importer {
	sharedStdOnce.Do(func() {
		sharedStd = &lockedImporter{imp: importer.ForCompiler(sharedFset, "source", nil)}
	})
	return sharedStd
}

// lockedImporter serializes Import calls on the shared importer.
type lockedImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (li *lockedImporter) Import(path string) (*types.Package, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.imp.Import(path)
}

// NewLoader locates the module containing dir (walking up to the
// nearest go.mod) and returns a loader rooted there. Loaders share the
// process-global FileSet and stdlib importer cache.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		Fset:       sharedFset,
		std:        stdImporter(),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", file)
}

// Expand resolves command-line package patterns into module package
// directories. Supported forms: "./..." (every module package under
// the given root), a directory path, or a module import path. Testdata
// trees, hidden directories, and underscore-prefixed directories are
// skipped, matching the go tool's matching rules.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := l.walkPackages(l.ModuleDir)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			walked, err := l.walkPackages(l.dirFor(root))
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		default:
			add(l.dirFor(pat))
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// dirFor maps a pattern (directory or import path) to a directory.
func (l *Loader) dirFor(pat string) string {
	if pat == l.ModulePath {
		return l.ModuleDir
	}
	if rest, ok := strings.CutPrefix(pat, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
	}
	if filepath.IsAbs(pat) {
		return pat
	}
	return filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
}

// walkPackages finds every directory under root holding at least one
// non-test .go file, honoring the go tool's skip rules.
func (l *Loader) walkPackages(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		files, err := goSources(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// goSources lists a directory's non-test .go files, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// LoadDir parses and type-checks the package in dir, memoized by its
// import path. Module-internal imports load recursively from source.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathOf(abs)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

// importPathOf maps a module directory to its import path.
func (l *Loader) importPathOf(absDir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, absDir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", absDir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// load does the parse + typecheck for one package directory.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.Fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, parsed, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, typeErrs[0])
	}

	pkg := &Package{Path: path, Dir: dir, Files: parsed, Types: tpkg, Info: info, Fset: l.Fset}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loadedPackages returns every module package this loader has loaded —
// the requested packages plus their module-internal dependencies, which
// the importer parses and type-checks with full ASTs — sorted by import
// path for deterministic module-wide traversals.
func (l *Loader) loadedPackages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// loaderImporter routes module-internal imports back through the
// loader and everything else to the standard-library source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.load(path, l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
