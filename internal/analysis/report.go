package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonDiagnostic is the machine-readable shape of one finding, the
// contract CI annotations and editor integrations parse. Fields are
// additive-only; never rename or remove one.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// WriteText prints one finding per line as
//
//	file.go:line:col: [check] message
func WriteText(w io.Writer, ds []Diagnostic) error {
	for _, d := range ds {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON prints the findings as an indented JSON array (an empty
// run prints "[]"), newline-terminated. Output is byte-stable for a
// given tree: the driver sorts findings and paths are module-relative.
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(ds))
	for _, d := range ds {
		out = append(out, jsonDiagnostic{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
