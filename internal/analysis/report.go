package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// jsonDiagnostic is the machine-readable shape of one finding, the
// contract CI annotations and editor integrations parse. Fields are
// additive-only; never rename or remove one.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// jsonReport is the -json envelope: the findings array plus the
// summary counters (the suppressed count makes suppression drift as
// visible across PRs as finding drift). Fields are additive-only.
type jsonReport struct {
	Findings []jsonDiagnostic `json:"findings"`
	Summary  jsonSummary      `json:"summary"`
}

type jsonSummary struct {
	Findings   int `json:"findings"`
	Suppressed int `json:"suppressed"`
}

// WriteText prints one finding per line as
//
//	file.go:line:col: [check] message
func WriteText(w io.Writer, ds []Diagnostic) error {
	for _, d := range ds {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON prints the result as an indented JSON object holding the
// findings array (empty run: "findings": []) and a summary with the
// finding and suppressed counts, newline-terminated. Output is
// byte-stable for a given tree: the driver sorts findings and paths
// are module-relative.
func WriteJSON(w io.Writer, res *Result) error {
	out := jsonReport{
		Findings: make([]jsonDiagnostic, 0, len(res.Findings)),
		Summary:  jsonSummary{Findings: len(res.Findings), Suppressed: res.Suppressed},
	}
	for _, d := range res.Findings {
		out.Findings = append(out.Findings, jsonDiagnostic{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteTimings prints the -v per-analyzer wall-time breakdown: the
// parse/type-check cost first, then one line per analyzer in run
// order.
func WriteTimings(w io.Writer, res *Result) error {
	if _, err := fmt.Fprintf(w, "load (parse+typecheck) %12s\n", res.LoadElapsed.Round(timeUnit(res.LoadElapsed))); err != nil {
		return err
	}
	for _, t := range res.Timings {
		if _, err := fmt.Fprintf(w, "%-22s %12s\n", t.Name, t.Elapsed.Round(timeUnit(t.Elapsed))); err != nil {
			return err
		}
	}
	return nil
}

// timeUnit picks a display rounding so timings stay short but never
// collapse to 0.
func timeUnit(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return 10 * time.Millisecond
	case d >= time.Millisecond:
		return 10 * time.Microsecond
	default:
		return 100 * time.Nanosecond
	}
}
