package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// FloatEq flags float comparisons that sidestep the TimeTol contract
// (schedule.TimeTol, DESIGN.md §7). Two shapes are reported:
//
//  1. `==` / `!=` where both operands are floating point and neither
//     is a compile-time constant. The planners emit times up to
//     TimeTol away from nominal arrivals, so exact equality on
//     computed times or energies silently rejects schedules they
//     legitimately produce. Comparisons against literal sentinels
//     (w == 0) stay legal.
//  2. Ordered comparisons (<, <=, >, >=) whose operands include a
//     `x + tau` arrival sum but mention no TimeTol slack anywhere in
//     the expression — the Eq. 16 arrival-rule shape `t_k+tau <= t`
//     that must go through schedule.Informs or carry an explicit
//     `+ TimeTol`.
//
// Comparator closures passed to the sort package are exempt: an exact
// total order inside sort.Slice/SliceStable/Search is deterministic
// and correct.
var FloatEq = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flags exact float equality on computed values and raw tau-arrival " +
		"comparisons lacking TimeTol; use schedule.Informs or an explicit " +
		"TimeTol slack",
	Scope: func(pkgPath string) bool { return underAny(pkgPath, timePkgs) },
	Run:   runFloatEq,
}

func runFloatEq(pass *analysis.Pass) {
	for _, f := range pass.Pkg.Files {
		cmp := sortComparators(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || inRanges(be.Pos(), cmp) {
				return true
			}
			switch be.Op {
			case token.EQL, token.NEQ:
				if isFloat(pass.TypeOf(be.X)) && isFloat(pass.TypeOf(be.Y)) &&
					!isConst(pass, be.X) && !isConst(pass, be.Y) {
					pass.Reportf(be.Pos(),
						"exact float %s on computed values (%s); planners emit times within schedule.TimeTol of nominal, so compare with a TimeTol-based comparator",
						be.Op, types.ExprString(be))
				}
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				if isFloat(pass.TypeOf(be.X)) && isFloat(pass.TypeOf(be.Y)) &&
					(hasTauAddend(be.X) || hasTauAddend(be.Y)) && !mentionsTimeTol(be) {
					pass.Reportf(be.Pos(),
						"raw tau-arrival comparison (%s) without TimeTol slack; use schedule.Informs or add schedule.TimeTol to the arrival side",
						types.ExprString(be))
				}
			}
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a floating-point
// basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConst reports whether the checker folded e to a constant.
func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// hasTauAddend reports whether e is (or contains, through +/- chains)
// an addition with an addend named tau — the arrival-sum shape
// t_k + tau.
func hasTauAddend(e ast.Expr) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if be.Op == token.ADD && (isTauName(be.X) || isTauName(be.Y)) {
		return true
	}
	if be.Op == token.ADD || be.Op == token.SUB {
		return hasTauAddend(be.X) || hasTauAddend(be.Y)
	}
	return false
}

// isTauName matches identifiers and selector fields named tau
// (any case), e.g. tau, Tau, x.Tau, g.Tau().
func isTauName(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return strings.EqualFold(e.Name, "tau")
	case *ast.SelectorExpr:
		return strings.EqualFold(e.Sel.Name, "tau")
	case *ast.CallExpr:
		return isTauName(e.Fun)
	}
	return false
}

// mentionsTimeTol reports whether any identifier named TimeTol appears
// in the expression.
func mentionsTimeTol(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "TimeTol" {
			found = true
		}
		return !found
	})
	return found
}

// posRange is a half-open [start, end) position interval.
type posRange struct{ start, end token.Pos }

func inRanges(p token.Pos, rs []posRange) bool {
	for _, r := range rs {
		if r.start <= p && p < r.end {
			return true
		}
	}
	return false
}

// sortComparators returns the source ranges of function literals
// passed to the sort package (sort.Slice, sort.SliceStable,
// sort.SliceIsSorted, sort.Search), where exact comparisons define the
// total order and are correct.
func sortComparators(pass *analysis.Pass, f *ast.File) []posRange {
	var out []posRange
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(sel.Sel)
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sort" {
			return true
		}
		for _, arg := range call.Args {
			if fl, ok := arg.(*ast.FuncLit); ok {
				out = append(out, posRange{fl.Pos(), fl.End()})
			}
		}
		return true
	})
	return out
}
