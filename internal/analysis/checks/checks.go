// Package checks holds the repo-specific analyzers run by
// cmd/tmedbvet. Each analyzer encodes one contract the solver
// established in PRs 1–4 and DESIGN.md sections 6–9:
//
//   - detrange: map iteration must not reach planner output unsorted
//     (determinism contract, DESIGN.md §6).
//   - nondeterm: no wall clocks, unseeded global RNG, or raw
//     goroutines in solver packages (byte-identical schedules under
//     any worker count; parallel.ForEachPool is the sanctioned
//     pattern).
//   - floateq: no exact float equality on times/energies, and no raw
//     tau-arrival comparisons outside the TimeTol-gated rule
//     (execution semantics, DESIGN.md §7).
//   - cancelthread: looping ScheduleCtx/MulticastCtx/Build entry
//     points must thread cancel checkpoints, and cancellation
//     sentinels must be matched with errors.Is (DESIGN.md §9).
//   - spanpair: every obs phase span that is started must be ended on
//     every path (observability contract, DESIGN.md §8).
//   - logconst: obs.Logger / log/slog messages must be constant
//     strings; variable data rides in key-value attrs (telemetry
//     contract, DESIGN.md §13).
//   - hotalloc: functions reachable from //tmedbvet:hotpath roots must
//     not allocate — arena, pooled scratch, or capacity-guarded
//     buffers only (hot-path allocation contract, DESIGN.md §15).
//   - atomiconly: a word accessed via sync/atomic anywhere must be
//     accessed atomically everywhere, and no-copy sync/atomic values
//     must never be copied (serving-tier contract, DESIGN.md §13).
//   - goexit: go statements in serving/parallel packages need a
//     visible completion path — Done/close/send/receive (DESIGN.md
//     §8/§13).
package checks

import (
	"strings"

	"repro/internal/analysis"
)

// Module-internal package paths the analyzers key their scopes and
// type lookups on.
const (
	modulePath    = "repro"
	cancelPkgPath = modulePath + "/internal/cancel"
	obsPkgPath    = modulePath + "/internal/obs"
)

// plannerPkgs are the packages whose outputs reach planned schedules:
// anything nondeterministic here breaks the byte-identical-schedules
// contract. detrange, nondeterm, and the cancelthread entry-point rule
// are scoped to these.
var plannerPkgs = []string{
	modulePath + "/internal/core",
	modulePath + "/internal/dts",
	modulePath + "/internal/auxgraph",
	modulePath + "/internal/steiner",
	modulePath + "/internal/nlp",
	modulePath + "/internal/schedule",
	modulePath + "/internal/degrade",
}

// timePkgs additionally include the executors and the audit oracle —
// everything that implements the tau-propagation arrival rule and so
// must respect TimeTol. floateq is scoped to these.
var timePkgs = append([]string{
	modulePath + "/internal/sim",
	modulePath + "/internal/des",
	modulePath + "/internal/audit",
}, plannerPkgs...)

// underAny reports whether path is one of roots or nested below one.
func underAny(path string, roots []string) bool {
	for _, r := range roots {
		if path == r || strings.HasPrefix(path, r+"/") {
			return true
		}
	}
	return false
}

// All returns every analyzer cmd/tmedbvet runs, in reporting-name
// order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		AtomicOnly,
		CancelThread,
		DetRange,
		FloatEq,
		GoExit,
		HotAlloc,
		LogConst,
		NonDeterm,
		SpanPair,
	}
}
