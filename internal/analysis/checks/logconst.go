package checks

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis"
)

// LogConst enforces the structured-logging idiom (DESIGN.md
// "Telemetry"): the message argument of every obs.Logger / log/slog
// logging call must be a compile-time string constant. Variable data
// belongs in key-value attributes, never fmt.Sprintf-ed into the
// message — constant messages are what make log streams aggregatable
// (every "solve.done" line is the same event, countable and alertable
// without parsing).
//
// The obs package itself is out of scope: its Logger veneer forwards
// caller-supplied messages to slog by construction.
var LogConst = &analysis.Analyzer{
	Name: "logconst",
	Doc: "log messages must be constant strings (variable data goes in " +
		"key-value attrs, not fmt.Sprintf-ed into the message)",
	Scope: func(pkgPath string) bool { return pkgPath != obsPkgPath },
	Run:   runLogConst,
}

// slogMsgArg maps log/slog call names to the index of their message
// argument (Log/LogAttrs carry ctx and level first).
var slogMsgArg = map[string]int{
	"Debug": 0, "DebugContext": 1,
	"Info": 0, "InfoContext": 1,
	"Warn": 0, "WarnContext": 1,
	"Error": 0, "ErrorContext": 1,
	"Log": 2, "LogAttrs": 2,
}

// obsMsgArg maps obs.Logger method names to their message argument.
var obsMsgArg = map[string]int{"Event": 0, "Error": 0}

func runLogConst(pass *analysis.Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
			if ok && fn.Pkg() != nil {
				if idx, qual, ok := msgArgIndex(fn); ok && idx < len(call.Args) {
					arg := call.Args[idx]
					if !isConstString(pass, arg) {
						pass.Reportf(arg.Pos(),
							"non-constant message in %s.%s: make the message a constant event name and carry variable data in key-value attrs",
							qual, fn.Name())
					}
				}
			}
			return true
		})
	}
}

// msgArgIndex resolves a called function to (message argument index,
// qualifier for the report) when it is a gated logging call.
func msgArgIndex(fn *types.Func) (int, string, bool) {
	switch fn.Pkg().Path() {
	case obsPkgPath:
		if recvNamed(fn) == "Logger" {
			if idx, ok := obsMsgArg[fn.Name()]; ok {
				return idx, "Logger", true
			}
		}
	case "log/slog":
		idx, ok := slogMsgArg[fn.Name()]
		if !ok {
			return 0, "", false
		}
		// Package-level slog.Info(...) or methods on *slog.Logger; both
		// take the message at the same index.
		if fn.Parent() == fn.Pkg().Scope() || recvNamed(fn) == "Logger" {
			return idx, "slog", true
		}
	}
	return 0, "", false
}

// recvNamed returns the name of a method's receiver type ("" for plain
// functions), unwrapping the pointer.
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// isConstString reports whether the checker evaluated e to a string
// constant (literals, named constants, and constant concatenations all
// qualify).
func isConstString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.Kind() == constant.String
}
