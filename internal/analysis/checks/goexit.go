package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// GoExit enforces the goroutine-completion contract of the serving and
// parallel tiers (DESIGN.md §8/§13): every `go` statement must have a
// statically visible completion path — some construct the spawner (or
// a waiter) can observe to know the goroutine is done. Recognized
// signals:
//
//   - a deferred sync.WaitGroup.Done / close / send (covers all paths)
//   - a channel send
//   - a close(ch) call
//   - a channel receive (including every select communication clause);
//     ctx-bound loops qualify through their <-ctx.Done() receive
//
// The analyzer walks the goroutine body path-sensitively: an exit path
// (explicit return or falling off the end) reached without any signal
// is flagged. `go name(...)` resolves through the module call graph;
// spawning a function the graph cannot see (interface method, function
// value, external package) is flagged too, because nothing about its
// completion is verifiable from here. This is what stood between
// tmedb's old `go http.Serve(ln, nil)` — whose error and exit vanished
// — and the current DebugServer shape.
var GoExit = &analysis.Analyzer{
	Name: "goexit",
	Doc: "go statements in serving/parallel packages need a visible completion " +
		"path: WaitGroup.Done, a channel send/close, or a ctx-bound receive loop",
	Scope:     func(path string) bool { return underAny(path, goexitPkgs) },
	RunModule: runGoExit,
}

// goexitPkgs are the packages that own long-lived goroutines: the
// worker pools, the observability servers, the simulator fan-out, and
// the binaries. Solver packages are already covered by nondeterm's
// raw-goroutine ban.
var goexitPkgs = []string{
	modulePath + "/internal/parallel",
	modulePath + "/internal/obs",
	modulePath + "/internal/sim",
	modulePath + "/cmd",
}

func runGoExit(mp *analysis.ModulePass) {
	for _, pkg := range mp.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(mp, pkg.Info, gs)
				return true
			})
		}
	}
}

// checkGoStmt resolves the spawned body and verifies its completion
// signals.
func checkGoStmt(mp *analysis.ModulePass, info *types.Info, gs *ast.GoStmt) {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		callee := analysis.StaticCallee(info, gs.Call)
		if callee == nil {
			mp.Reportf(gs.Pos(), "go statement spawns a dynamic callee whose completion cannot be verified — spawn a literal with a visible Done/close/send, or a module-internal function")
			return
		}
		node, ok := mp.Graph().Funcs[callee]
		if !ok {
			mp.Reportf(gs.Pos(), "go statement spawns external function %s whose completion cannot be verified — wrap it in a literal that signals Done/close/send when it returns", callee.Name())
			return
		}
		info = node.Pkg.Info
		body = node.Decl.Body
	}
	w := &goexitWalker{info: info}
	// A deferred signal runs on every exit path, panic included — the
	// strongest shape and the recommended fix.
	if w.hasDeferredSignal(body) {
		return
	}
	endSig := w.walkStmts(body.List, false)
	if w.badReturn {
		mp.Reportf(gs.Pos(), "goroutine has a return path with no completion signal before it — defer wg.Done()/close, or signal before returning")
		return
	}
	if !endSig {
		mp.Reportf(gs.Pos(), "goroutine body ends without a completion signal (no WaitGroup.Done, send, close, or receive) — nothing can observe it finishing")
	}
}

// goexitWalker is the per-goroutine path walk state.
type goexitWalker struct {
	info *types.Info
	// badReturn records a return statement reached with no signal yet.
	badReturn bool
}

// hasDeferredSignal reports a defer of a signal call anywhere in body.
func (w *goexitWalker) hasDeferredSignal(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && w.isSignalCall(d.Call) {
			found = true
		}
		return !found
	})
	return found
}

// walkStmts walks a statement list with signal-state sig and returns
// the state at normal fall-through. Branch merges are pessimistic: a
// signal only counts after a branch if every path through it signals.
func (w *goexitWalker) walkStmts(stmts []ast.Stmt, sig bool) bool {
	for _, st := range stmts {
		sig = w.walkStmt(st, sig)
	}
	return sig
}

func (w *goexitWalker) walkStmt(st ast.Stmt, sig bool) bool {
	switch st := st.(type) {
	case *ast.SendStmt:
		return true
	case *ast.ExprStmt:
		if w.isSignal(st.X) {
			return true
		}
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			if w.containsReceive(r) {
				return true
			}
		}
	case *ast.SelectStmt:
		// Every communication clause is itself a channel operation; the
		// clause bodies still need their return paths checked, entered
		// with the signal already made.
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, true)
			}
		}
		return true
	case *ast.BlockStmt:
		return w.walkStmts(st.List, sig)
	case *ast.IfStmt:
		thenEnd := w.walkStmts(st.Body.List, sig)
		elseEnd := sig
		if st.Else != nil {
			elseEnd = w.walkStmt(st.Else, sig)
		}
		// Pessimistic merge: the branch may or may not run.
		return thenEnd && elseEnd
	case *ast.ForStmt:
		bodyEnd := w.walkStmts(st.Body.List, sig)
		if st.Cond == nil && !hasLoopBreak(st.Body) {
			// An infinite loop with no break never falls through; its
			// exits are the returns already checked inside.
			return true
		}
		_ = bodyEnd // zero iterations are possible; keep entry state
		return sig
	case *ast.RangeStmt:
		w.walkStmts(st.Body.List, sig)
		// Ranging over a channel IS a receive: the loop ends when the
		// channel closes, which the spawner side observes via the close.
		if _, ok := w.info.TypeOf(st.X).Underlying().(*types.Chan); ok {
			return true
		}
		return sig
	case *ast.SwitchStmt:
		all := true
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				if cc.List == nil {
					hasDefault = true
				}
				all = w.walkStmts(cc.Body, sig) && all
			}
		}
		if all && hasDefault {
			return true
		}
		return sig
	case *ast.ReturnStmt:
		if !sig {
			w.badReturn = true
		}
		return sig
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, sig)
	}
	return sig
}

// isSignal reports whether the expression statement communicates: a
// signal call or a bare receive.
func (w *goexitWalker) isSignal(e ast.Expr) bool {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && w.isSignalCall(call) {
		return true
	}
	return w.containsReceive(e)
}

// isSignalCall recognizes close(ch) and sync.WaitGroup.Done.
func (w *goexitWalker) isSignalCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := w.info.Uses[fun].(*types.Builtin); ok && b.Name() == "close" {
			return true
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name != "Done" {
			return false
		}
		obj := w.info.Uses[fun.Sel]
		if f, ok := obj.(*types.Func); ok {
			sig := f.Type().(*types.Signature)
			if recv := sig.Recv(); recv != nil {
				t := recv.Type()
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if n, ok := t.(*types.Named); ok {
					return n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
				}
			}
		}
	}
	return false
}

// containsReceive reports a <-ch anywhere in e.
func (w *goexitWalker) containsReceive(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if un, ok := n.(*ast.UnaryExpr); ok && un.Op == token.ARROW {
			found = true
		}
		return !found
	})
	return found
}

// hasLoopBreak reports an unlabeled break belonging to this loop
// (breaks inside nested loops, switches, and selects belong to those).
func hasLoopBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false // break inside binds to the inner construct
		case *ast.BranchStmt:
			br := n.(*ast.BranchStmt)
			if br.Tok == token.BREAK && br.Label == nil {
				found = true
			}
		}
		return !found
	}
	ast.Inspect(body, walk)
	return found
}
