// Package legacyrelay is a regression fixture preserving the shape of
// the legacy premature-relay bug fixed in the executor unification: the
// schedule was assembled by ranging over a map and "repaired" with a
// stable by-time sort (which keeps equal-time rows in map order), and
// the arrival gate compared t_k + tau against t_j exactly, so a relay
// informed at the same instant it transmits flickered between runs.
// The detrange and floateq analyzers must both keep flagging it.
package legacyrelay

import "sort"

type tx struct {
	relay int
	t     float64
	w     float64
}

type sched []tx

// SortByTime is the legacy repair: stable, by time only — equal-time
// rows stay in whatever order the map range produced them.
func (s sched) SortByTime() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].t < s[j].t })
}

// BuildLegacy assembles the schedule in map-iteration order.
func BuildLegacy(best map[int]tx) sched {
	var s sched
	for _, x := range best { // want "detrange: map iteration order reaches planner output \\(append"
		s = append(s, x)
	}
	s.SortByTime()
	return s
}

// ExecuteLegacy replays the schedule with the legacy exact arrival
// gate: a relay whose packet arrives at exactly its own transmit time
// is muted or not depending on float rounding.
func ExecuteLegacy(s sched, tau float64, informed map[int]float64) float64 {
	var energy float64
	for _, x := range s {
		at, ok := informed[x.relay]
		if !ok {
			continue
		}
		if at+tau <= x.t { // want "floateq: raw tau-arrival comparison"
			energy += x.w
		}
	}
	return energy
}

// FirstFire returns the first transmission at exactly t — the legacy
// exact-equality probe that made the premature relay intermittent.
func FirstFire(s sched, t float64) (tx, bool) {
	for _, x := range s {
		if x.t == t { // want "floateq: exact float =="
			return x, true
		}
	}
	return tx{}, false
}
