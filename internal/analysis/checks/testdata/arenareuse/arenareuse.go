// Package arenareuse pins the detrange and spanpair contracts on the
// arena-reuse hot-path shape introduced with the CSR flattening:
// pooled buffers change value lifetimes (a slice obtained from the
// arena outlives loop iterations and may be recycled across
// candidates) and phase spans wrap whole build calls with unrelated
// defers (PutArena) in between. Neither twist may confuse the
// analyzers — a deferred PutArena is not an End, and an arena-backed
// output slice is still planner output.
package arenareuse

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/obs"
)

// buildLeaky is the bug shape: the build early-returns with the phase
// span still open (the deferred PutArena must not be mistaken for an
// End), and candidate vertices reach the arena-backed output buffer in
// map order.
func buildLeaky(rec *obs.Recorder, cands map[int]float64) []int32 {
	sp := rec.StartPhase("auxgraph")
	ar := graph.GetArena()
	defer graph.PutArena(ar)
	buf := ar.I32(len(cands))[:0]
	for k := range cands { // want "detrange: map iteration order reaches planner output \\(append"
		buf = append(buf, int32(k))
	}
	if len(buf) == 0 {
		return nil // want "spanpair: return with phase span still open"
	}
	sp.End()
	return buf
}

// buildClean is the sanctioned shape on the same arena idiom: the span
// is deferred alongside the arena return, and map keys are collected
// and totally ordered before they feed the reused buffer.
func buildClean(rec *obs.Recorder, cands map[int]float64) []int32 {
	sp := rec.StartPhase("auxgraph")
	defer sp.End()
	ar := graph.GetArena()
	defer graph.PutArena(ar)
	keys := make([]int, 0, len(cands))
	for k := range cands {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	buf := ar.I32(len(keys))[:0]
	for _, k := range keys {
		buf = append(buf, int32(k))
	}
	return buf
}

// sweepLeaky drops per-candidate scratch back to the arena on the happy
// path but leaks the span when the sweep falls off the end.
func sweepLeaky(rec *obs.Recorder, rounds int) {
	sp := rec.StartPhase("dcs-construct") // want "spanpair: span sp started here is not ended on the fall-through path"
	ar := graph.GetArena()
	defer graph.PutArena(ar)
	for i := 0; i < rounds; i++ {
		fs := ar.I32(8)
		for j := range fs {
			fs[j] = int32(i + j)
		}
		ar.PutI32(fs)
	}
	sp.SetInt("rounds", rounds)
}

// sweepClean recycles the same scratch across rounds — the
// arena-reuse lifetime the differential tests exercise — and closes
// the span on every path.
func sweepClean(rec *obs.Recorder, rounds int) {
	sp := rec.StartPhase("dcs-construct")
	defer sp.End()
	ar := graph.GetArena()
	defer graph.PutArena(ar)
	fs := ar.I32(8)
	defer ar.PutI32(fs)
	for i := 0; i < rounds; i++ {
		for j := range fs {
			fs[j] = int32(i + j)
		}
	}
	sp.SetInt("rounds", rounds)
}
