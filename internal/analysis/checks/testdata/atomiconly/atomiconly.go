// Package atomiconly pins the lock-free serving-tier contract: a word
// touched through sync/atomic anywhere must be touched through
// sync/atomic everywhere, and values containing sync/atomic components
// must never be copied.
package atomiconly

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	hits int64
	cold int64
}

// bump enrolls hits in the atomic-everywhere contract: its address is
// passed to a package-level sync/atomic function.
func bump(c *counter) {
	atomic.AddInt64(&c.hits, 1)
}

func readRacy(c *counter) int64 {
	return c.hits // want "atomiconly: hits is accessed via sync/atomic elsewhere"
}

func readOK(c *counter) int64 {
	return atomic.LoadInt64(&c.hits) // address-taken for sync/atomic: sanctioned
}

func readCold(c *counter) int64 {
	return c.cold // never touched atomically anywhere: plain access is fine
}

// wrapperOK shows methods of the new-style wrapper types do not enroll
// their arguments: the receiver already encapsulates the word, so the
// plain use of n below stays legal.
func wrapperOK(p *atomic.Pointer[int], n int) int {
	p.CompareAndSwap(nil, &n)
	return n
}

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g guarded) peek() int { return g.n }

func take(guarded)     {}
func takePtr(*guarded) {}

func copies(g *guarded, list []guarded) int {
	v := *g // want "atomiconly: assignment copies .*guarded"
	v.n = 1
	take(*g)     // want "atomiconly: call argument copies .*guarded"
	takePtr(g)   // pointers hand over the original: no copy
	_ = g.peek() // want "atomiconly: value-receiver call copies .*guarded"
	total := 0
	for _, it := range list { // want "atomiconly: range value copies .*guarded"
		total += it.n
	}
	return total
}

func ret(g *guarded) guarded {
	return *g // want "atomiconly: return copies .*guarded"
}
