// Package goexit pins the goroutine-completion contract: every go
// statement needs a visible completion path — a deferred or trailing
// WaitGroup.Done, a channel send/close, a receive loop — and callees
// the analyzer cannot see into are flagged.
package goexit

import (
	"runtime"
	"sync"
)

func work() {}

func deferredDone(wg *sync.WaitGroup) {
	go func() { // deferred Done covers every exit path, panic included
		defer wg.Done()
		work()
	}()
}

func trailingDone(wg *sync.WaitGroup) {
	go func() { // trailing Done on the only path
		work()
		wg.Done()
	}()
}

func trailingClose(done chan struct{}) {
	go func() { // close is a completion signal
		work()
		close(done)
	}()
}

func sendSignal(ch chan int) {
	go func() { // a send is a completion signal
		ch <- 1
	}()
}

func selectLoop(ch chan int, quit chan struct{}) {
	go func() { // infinite select loop: exit only via the quit receive
		for {
			select {
			case <-ch:
			case <-quit:
				return
			}
		}
	}()
}

func rangeChan(ch chan int) {
	go func() { // draining a channel is observable: it ends when ch closes
		for range ch {
		}
	}()
}

func worker(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

func namedOK(wg *sync.WaitGroup) {
	go worker(wg) // module-internal callee with a deferred Done
}

func noSignal() {
	go func() { // want "goexit: goroutine body ends without a completion signal"
		work()
	}()
}

func earlyReturn(done chan struct{}, ready bool) {
	go func() { // want "goexit: goroutine has a return path with no completion signal"
		if ready {
			return
		}
		close(done)
	}()
}

func namedBad() {
	go work() // want "goexit: goroutine body ends without a completion signal"
}

func dynamic(f func()) {
	go f() // want "goexit: go statement spawns a dynamic callee"
}

func external() {
	go runtime.Gosched() // want "goexit: go statement spawns external function Gosched"
}
