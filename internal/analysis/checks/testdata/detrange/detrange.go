// Package detrange is the golden fixture for the detrange analyzer:
// map ranges whose iteration order can leak into planner output.
package detrange

import "sort"

type row struct {
	relay int
	t     float64
	w     float64
}

type sched []row

// SortByTime mimics schedule.SortByTime: stable, by time only — NOT a
// total order, so it does not repair map-iteration order for
// equal-time rows.
func (s sched) SortByTime() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].t < s[j].t })
}

// emitUnsorted leaks map order straight into the output slice.
func emitUnsorted(best map[int]float64) []row {
	var out []row
	for k, w := range best { // want "detrange: map iteration order reaches planner output \\(append"
		out = append(out, row{relay: k, w: w})
	}
	return out
}

// emitStableOnly shows the auxgraph bug shape: a stable by-time method
// sort afterwards is not credited, because it leaves equal-time rows
// in map order.
func emitStableOnly(best map[int]float64) sched {
	var s sched
	for k, w := range best { // want "detrange: map iteration order reaches planner output \\(append"
		s = append(s, row{relay: k, w: w})
	}
	s.SortByTime()
	return s
}

// emitChannel sends rows in map order.
func emitChannel(best map[int]float64, ch chan<- row) {
	for k, w := range best { // want "detrange: map iteration order reaches planner output \\(channel send"
		ch <- row{relay: k, w: w}
	}
}

// collectSorted is the sanctioned pattern: collect the keys, impose a
// total order with a sort-package call, then emit.
func collectSorted(best map[int]float64) []row {
	keys := make([]int, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var out []row
	for _, k := range keys {
		out = append(out, row{relay: k, w: best[k]})
	}
	return out
}

// countOnly never emits anything order-dependent.
func countOnly(best map[int]float64) int {
	n := 0
	for range best {
		n++
	}
	return n
}

// suppressed pins the inline suppression syntax.
func suppressed(set map[int]bool) []int {
	var out []int
	//tmedbvet:ignore detrange caller normalizes the order; fixture pins the suppression syntax
	for k := range set {
		out = append(out, k)
	}
	return out
}
