// Package cancelthread is the golden fixture for the cancelthread
// analyzer: looping entry points without cancel checkpoints, and
// cancellation sentinels matched by identity.
package cancelthread

import (
	"context"
	"errors"

	"repro/internal/cancel"
)

// ScheduleCtx loops but never touches the cancel package.
func ScheduleCtx(ctx context.Context, rounds int) int { // want "cancelthread: exported entry point ScheduleCtx loops without threading a cancel checkpoint"
	total := 0
	for i := 0; i < rounds; i++ {
		total += i
	}
	return total
}

type builder struct {
	weights []float64
}

// MulticastCtx is a looping method entry point with the same gap.
func (b *builder) MulticastCtx(ctx context.Context) float64 { // want "cancelthread: exported entry point MulticastCtx loops without threading a cancel checkpoint"
	var sum float64
	for _, w := range b.weights {
		sum += w
	}
	return sum
}

// Build derives a token and polls it at the loop boundary: sanctioned.
func Build(ctx context.Context, rounds int) (int, error) {
	tok := cancel.FromContext(ctx)
	total := 0
	for i := 0; i < rounds; i++ {
		if err := tok.Check(); err != nil {
			return total, err
		}
		total += i
	}
	return total, nil
}

type opts struct {
	Cancel *cancel.Token
}

type threaded struct {
	opts opts
}

// Build threads a checkpoint through an options field typed from the
// cancel package: also sanctioned.
func (t *threaded) Build(rounds int) error {
	for i := 0; i < rounds; i++ {
		if err := t.opts.Cancel.Check(); err != nil {
			return err
		}
	}
	return nil
}

// classify matches sentinels by identity on both ends of the wrap
// chain — exactly what the wrapping layers break.
func classify(err error) string {
	if err == cancel.ErrCancelled { // want "cancelthread: cancellation sentinel cancel.ErrCancelled compared with =="
		return "cancelled"
	}
	if err != context.Canceled { // want "cancelthread: cancellation sentinel context.Canceled compared with !="
		return "other"
	}
	return "ctx"
}

// classifyIs is the sanctioned form.
func classifyIs(err error) string {
	if errors.Is(err, cancel.ErrBudgetExceeded) {
		return "budget"
	}
	return "other"
}

// suppressed pins the inline suppression syntax.
func suppressed(err error) bool {
	//tmedbvet:ignore cancelthread fixture pins the suppression syntax; err is never wrapped here
	return err == cancel.ErrBudgetExceeded
}
