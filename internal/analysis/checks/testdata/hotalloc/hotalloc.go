// Package hotalloc pins the hot-path allocation contract: every
// allocation-inducing construct reachable from a //tmedbvet:hotpath
// root is flagged, the sanctioned cap-guard idiom and inline
// suppressions pass, and unreachable code may allocate freely.
package hotalloc

import "fmt"

type pair struct{ a, b int }

func sinkAny(any)         {}
func sinkVariadic(...any) {}

// hot is the fixture's annotated root: everything below, plus the
// helper it calls, is on the hot path.
//
//tmedbvet:hotpath
func hot(n int, buf []int, s, t string) []int {
	_ = make([]int, n) // want "hotalloc: non-arena make allocates"
	_ = new(pair)      // want "hotalloc: new allocates"
	_ = map[int]int{}  // want "hotalloc: map literal allocates"
	_ = []int{1, 2, 3} // want "hotalloc: slice literal allocates"
	_ = &pair{a: 1}    // want "hotalloc: &composite-literal allocates"
	_ = fmt.Sprint(n)  // want "hotalloc: fmt.Sprint allocates and reflects"
	_ = s + t          // want "hotalloc: string concatenation allocates"
	_ = "lit" + "eral" // constant fold: no runtime concatenation
	sinkAny(n)         // want "hotalloc: interface boxing of n"
	sinkAny(42)        // constants intern, no boxing
	sinkAny(nil)       // nil does not box
	sinkVariadic(n)    // want "hotalloc: interface boxing of n"
	var fwd []any
	sinkVariadic(fwd...) // forwarding the slice: no boxing

	var out []int
	out = append(out, n) // want "hotalloc: append onto a fresh slice allocates per call"
	buf = append(buf, n) // base arrives with capacity: amortized, not flagged

	// The sanctioned grow-once shape: allocation guarded by cap().
	if cap(buf) < n {
		buf = make([]int, 0, n)
	}

	x := n
	f := func() int { return x } // want "hotalloc: closure capturing x allocates per creation"
	_ = f
	g := func(y int) int { return y + 1 } // capture-free: static funcval
	_ = g

	//tmedbvet:ignore hotalloc fixture-sanctioned one-off allocation with an inline justification
	_ = make([]chan int, 1)

	return helper(out)
}

// helper is not annotated, but reachable from hot — its allocations
// are on the contract too.
func helper(xs []int) []int {
	p := &pair{} // want "hotalloc: &composite-literal allocates"
	_ = p
	return xs
}

// cold is unreachable from any hotpath root: it may allocate freely.
func cold(n int) []int {
	m := map[string]int{"k": n}
	return make([]int, m["k"])
}
