// Package logconst is the golden fixture for the logconst analyzer:
// logging messages must be compile-time string constants, with variable
// data in key-value attrs — never fmt.Sprintf-ed into the message.
package logconst

import (
	"context"
	"fmt"
	"log/slog"

	"repro/internal/obs"
)

const solveDone = "solve.done"

// constantMessages is the sanctioned idiom: literal or named-constant
// messages, variable data as attrs.
func constantMessages(lg *obs.Logger, rung string, ms float64) {
	lg.Event("solve.received", obs.Str("rung", rung))
	lg.Event(solveDone, obs.F64("ms", ms))
	lg.Event("solve." + "shed") // constant concatenation is still constant
	lg.Error("solve.failed", nil, obs.Str("kind", "internal"))
}

func sprintfIntoMessage(lg *obs.Logger, rung string) {
	lg.Event(fmt.Sprintf("solve done on rung %s", rung)) // want "logconst: non-constant message in Logger.Event"
}

func variableMessage(lg *obs.Logger, msg string) {
	lg.Error(msg, nil) // want "logconst: non-constant message in Logger.Error"
}

func concatenatedVariable(lg *obs.Logger, rung string) {
	lg.Event("rung: " + rung) // want "logconst: non-constant message in Logger.Event"
}

func slogPackageLevel(err error) {
	slog.Info("cache.hit", "key", 7)
	slog.Error("solve failed: " + err.Error()) // want "logconst: non-constant message in slog.Error"
}

func slogMethods(l *slog.Logger, n int) {
	l.Warn("queue.deep", "depth", n)
	l.Warn(fmt.Sprintf("queue depth %d", n)) // want "logconst: non-constant message in slog.Warn"
	l.Log(context.Background(), slog.LevelInfo, "solve.done")
	l.Log(context.Background(), slog.LevelInfo, fmt.Sprint("solve", n)) // want "logconst: non-constant message in slog.Log"
	l.LogAttrs(context.Background(), slog.LevelInfo, "solve.done", slog.Int("n", n))
}

// suppressed pins the ignore syntax for the rare legitimate forwarder.
func suppressed(lg *obs.Logger, msg string) {
	//tmedbvet:ignore logconst test forwarder relays caller-owned messages
	lg.Event(msg)
}
