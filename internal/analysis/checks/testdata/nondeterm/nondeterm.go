// Package nondeterm is the golden fixture for the nondeterm analyzer:
// wall clocks, the unseeded global math/rand source, and raw
// goroutines.
package nondeterm

import (
	"math/rand"
	"sync"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "nondeterm: time.Now reads the wall clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "nondeterm: time.Since reads the wall clock"
}

func globalDraw() float64 {
	return rand.Float64() // want "nondeterm: rand.Float64 draws from the unseeded global source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "nondeterm: rand.Shuffle draws from the unseeded global source"
}

// seededDraw is the sanctioned pattern: methods on an explicitly
// seeded source are deterministic.
func seededDraw(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// fanOut collects results in goroutine-completion order — the exact
// shape parallel.ForEachPool exists to replace.
func fanOut(xs []float64) float64 {
	var wg sync.WaitGroup
	out := make(chan float64, len(xs))
	for _, x := range xs {
		wg.Add(1)
		go func(v float64) { // want "nondeterm: raw goroutine in a solver package"
			defer wg.Done()
			out <- v * v
		}(x)
	}
	wg.Wait()
	close(out)
	var sum float64
	for v := range out {
		sum += v
	}
	return sum
}

// suppressed pins the inline suppression syntax.
func suppressed() time.Time {
	//tmedbvet:ignore nondeterm fixture pins the suppression syntax; value never reaches solver output
	return time.Now()
}
