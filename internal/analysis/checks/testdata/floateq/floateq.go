// Package floateq is the golden fixture for the floateq analyzer:
// exact float equality on computed values and raw tau-arrival
// comparisons without TimeTol slack.
package floateq

import "sort"

// TimeTol mirrors schedule.TimeTol; the analyzer keys on the
// identifier name appearing in the comparison.
const TimeTol = 1e-9

type tx struct {
	T float64
	W float64
}

// arrivalGate is the Eq. 16 shape t_k + tau <= t_j without slack.
func arrivalGate(tk, tau, tj float64) bool {
	return tk+tau <= tj // want "floateq: raw tau-arrival comparison"
}

// arrivalGateTol carries the TimeTol slack: sanctioned.
func arrivalGateTol(tk, tau, tj float64) bool {
	return tk+tau <= tj+TimeTol
}

// deadlineGate flips the operands; the tau addend is still there.
func deadlineGate(t, tau, deadline float64) bool {
	return deadline < t+tau // want "floateq: raw tau-arrival comparison"
}

func sameTime(a, b tx) bool {
	return a.T == b.T // want "floateq: exact float =="
}

func costChanged(w, prev float64) bool {
	return w != prev // want "floateq: exact float !="
}

// isUnset compares against a literal sentinel: legal.
func isUnset(w float64) bool {
	return w == 0
}

// sortRows: exact comparisons inside a sort-package comparator define
// the total order and are exempt.
func sortRows(rows []tx) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].T != rows[j].T {
			return rows[i].T < rows[j].T
		}
		return rows[i].W < rows[j].W
	})
}

// suppressed pins the inline suppression syntax for the tie-break
// idiom.
func suppressed(a, b tx) bool {
	//tmedbvet:ignore floateq fixture pins the suppression syntax for the same-instant tie-break
	return a.T == b.T
}
