// Package spanpair is the golden fixture for the spanpair analyzer:
// obs phase spans that leak on some path out of the function.
package spanpair

import "repro/internal/obs"

// leakOnReturn ends the span on the happy path but leaks it on the
// early return.
func leakOnReturn(rec *obs.Recorder, n int) int {
	sp := rec.StartPhase("leak.return")
	if n < 0 {
		return 0 // want "spanpair: return with phase span still open"
	}
	sp.End()
	return n
}

// leakOnFallThrough annotates the span but never ends it before the
// function falls off the end.
func leakOnFallThrough(rec *obs.Recorder, xs []float64) {
	sp := rec.StartPhase("leak.fall") // want "spanpair: span sp started here is not ended on the fall-through path"
	var sum float64
	for _, x := range xs {
		sum += x
	}
	sp.SetFloat("sum", sum)
}

// discarded drops the span on the floor at the call site.
func discarded(rec *obs.Recorder) {
	rec.StartPhase("discarded") // want "spanpair: StartPhase result discarded"
}

// deferred is the canonical sanctioned shape.
func deferred(rec *obs.Recorder, n int) int {
	sp := rec.StartPhase("ok.defer")
	defer sp.End()
	if n < 0 {
		return 0
	}
	return n
}

// branchEnds closes the span explicitly on every path.
func branchEnds(rec *obs.Recorder, n int) int {
	sp := rec.StartPhase("ok.branch")
	if n < 0 {
		sp.End()
		return 0
	}
	sp.SetInt("n", n)
	sp.End()
	return n
}

// handOff transfers ownership to a helper; tracking ends at the call.
func handOff(rec *obs.Recorder) {
	sp := rec.StartPhase("ok.handoff")
	finish(sp)
}

func finish(sp *obs.Span) {
	sp.End()
}

// closureEnd defers a closure that ends the span.
func closureEnd(rec *obs.Recorder, n int) int {
	sp := rec.StartPhase("ok.closure")
	defer func() {
		sp.SetInt("n", n)
		sp.End()
	}()
	return n * n
}

// suppressed pins the inline suppression syntax for a deliberately
// unterminated span.
func suppressed(rec *obs.Recorder) {
	//tmedbvet:ignore spanpair fixture pins the suppression syntax; the recorder is snapshotted before this leaks
	rec.StartPhase("suppressed")
}
