package checks

import (
	"go/ast"
	"go/token"
	"sort"

	"repro/internal/analysis"
)

// NonDeterm forbids the three nondeterminism sources that break the
// byte-identical-schedules contract inside planner packages:
//
//   - wall clocks (time.Now / time.Since / time.Until) — solver
//     decisions must depend only on inputs; wall time belongs to the
//     obs layer or an injected clock (degrade.Options.Clock);
//   - the unseeded global math/rand source — randomized planners take
//     an explicit seeded *rand.Rand (rand.New(rand.NewSource(seed)),
//     split per worker with parallel.SplitSeed);
//   - raw `go` statements — goroutine completion order is
//     nondeterministic, so ad-hoc result collection reorders output;
//     parallel.ForEachPool (per-index result slots, atomic hand-out)
//     is the sanctioned fan-out pattern.
var NonDeterm = &analysis.Analyzer{
	Name: "nondeterm",
	Doc: "forbids time.Now, the unseeded global math/rand source, and raw " +
		"goroutines in solver packages; use an injected clock, a seeded " +
		"*rand.Rand, and parallel.ForEachPool",
	Scope: func(pkgPath string) bool { return underAny(pkgPath, plannerPkgs) },
	Run:   runNonDeterm,
}

// wallClockFuncs are the time package's wall-clock reads.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRandFuncs are the math/rand package-level functions backed by
// the process-global, unseeded source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func runNonDeterm(pass *analysis.Pass) {
	// The Uses table is a map; sort the positions so reports are
	// deterministic (the driver re-sorts, but fixtures compare
	// per-package output directly).
	type finding struct {
		pos token.Pos
		msg string
	}
	var found []finding
	for id, obj := range pass.Pkg.Info.Uses {
		if obj == nil || obj.Pkg() == nil {
			continue
		}
		switch obj.Pkg().Path() {
		case "time":
			if wallClockFuncs[obj.Name()] {
				found = append(found, finding{id.Pos(),
					"time." + obj.Name() + " reads the wall clock in a solver package; inject a clock (cf. degrade.Options.Clock) or move timing to the obs layer"})
			}
		case "math/rand", "math/rand/v2":
			// Package-level functions only: methods on a seeded
			// *rand.Rand live in the same package but have no parent
			// scope, and they are exactly the sanctioned alternative.
			if globalRandFuncs[obj.Name()] && obj.Parent() == obj.Pkg().Scope() {
				found = append(found, finding{id.Pos(),
					"rand." + obj.Name() + " draws from the unseeded global source; construct rand.New(rand.NewSource(seed)) and thread it (parallel.SplitSeed per worker)"})
			}
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	for _, f := range found {
		pass.Reportf(f.pos, "%s", f.msg)
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"raw goroutine in a solver package: completion order is nondeterministic; use parallel.ForEachPool (per-index result slots) instead")
			}
			return true
		})
	}
}
