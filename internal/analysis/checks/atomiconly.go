package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// AtomicOnly enforces the serving tier's lock-free access contract
// (DESIGN.md §13/§15): a word that is touched through sync/atomic
// anywhere in the module must be touched through sync/atomic
// everywhere — one plain load or store next to atomic ones is a data
// race the race detector only catches when the interleaving happens.
// The targets this guards: the flight recorder's head cursor and slot
// pointers (obs.Flight), the expvar publish slot, and the memo ID
// counters.
//
// The analyzer also carries the copylocks half of the contract:
// values containing a sync.Mutex/RWMutex/WaitGroup/Once/Cond/Map/Pool
// or an atomic.* type must never be copied — not assigned by value,
// not passed as a value argument, not ranged over by value, not
// returned by value, and not bound to a value receiver. A copied
// mutex guards nothing; a copied atomic splits one word into two.
var AtomicOnly = &analysis.Analyzer{
	Name: "atomiconly",
	Doc: "fields accessed via sync/atomic must be accessed atomically everywhere; " +
		"values containing sync or atomic types must not be copied",
	RunModule: runAtomicOnly,
}

func runAtomicOnly(mp *analysis.ModulePass) {
	// Pass 1 (module-wide, All packages): collect every variable that is
	// passed by address to an old-style sync/atomic function. These are
	// the words under the atomic-everywhere contract.
	atomicVars := make(map[types.Object]bool)
	for _, pkg := range mp.All {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isSyncAtomicCall(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					if obj := rootObject(pkg.Info, un.X); obj != nil {
						atomicVars[obj] = true
					}
				}
				return true
			})
		}
	}

	// Pass 2 (scoped packages): flag non-atomic accesses of those
	// variables, and all copylocks violations.
	for _, pkg := range mp.Packages {
		checkAtomicAccesses(mp, pkg, atomicVars)
		checkCopyLocks(mp, pkg)
	}
}

// isSyncAtomicCall reports a call to one of sync/atomic's package-level
// functions (Add*/Load*/Store*/Swap*/CompareAndSwap*). Methods of the
// new-style atomic.* wrapper types don't count: their receiver already
// encapsulates the word, so &x arguments to them (e.g. the new pointer
// handed to atomic.Pointer.CompareAndSwap) do not place x under the
// atomic-everywhere contract.
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	return f.Type().(*types.Signature).Recv() == nil
}

// rootObject resolves the variable object an lvalue expression
// ultimately denotes: x, x.f, x[i].f peel to the field or variable
// object of the outermost selector/ident.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		// The accessed word is the field itself: same field reached
		// through different receivers is the same contract object.
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		return rootObject(info, e.X)
	case *ast.StarExpr:
		return rootObject(info, e.X)
	}
	return nil
}

// checkAtomicAccesses flags plain (non-atomic, non-&) reads and writes
// of variables in atomicVars.
func checkAtomicAccesses(mp *analysis.ModulePass, pkg *analysis.Package, atomicVars map[types.Object]bool) {
	if len(atomicVars) == 0 {
		return
	}
	info := pkg.Info
	for _, f := range pkg.Files {
		// skip[pos] marks idents that appear inside a sanctioned context:
		// an &x argument to a sync/atomic call, or any & (address-taken
		// uses hand the word to code that is separately checked).
		skip := make(map[token.Pos]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if un, ok := n.(*ast.UnaryExpr); ok && un.Op == token.AND {
				markIdents(un.X, skip)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			var id *ast.Ident
			switch n := n.(type) {
			case *ast.Ident:
				id = n
			case *ast.SelectorExpr:
				id = n.Sel
			default:
				return true
			}
			obj := info.Uses[id]
			if obj == nil || !atomicVars[obj] || skip[id.Pos()] {
				return true
			}
			mp.Reportf(id.Pos(),
				"%s is accessed via sync/atomic elsewhere; this plain access races with those — use atomic.Load/Store (or take its address only to pass to sync/atomic)",
				id.Name)
			return true
		})
	}
}

// markIdents records the positions of every ident under e.
func markIdents(e ast.Expr, into map[token.Pos]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			into[id.Pos()] = true
		}
		return true
	})
}

// checkCopyLocks flags by-value copies of types that contain a no-copy
// component (sync primitives, atomic values).
func checkCopyLocks(mp *analysis.ModulePass, pkg *analysis.Package) {
	info := pkg.Info
	flag := func(pos token.Pos, how string, t types.Type) {
		mp.Reportf(pos, "%s copies %s, which contains a no-copy sync/atomic component — use a pointer", how, t.String())
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					if !copiesValue(rhs) {
						continue
					}
					if t := info.TypeOf(rhs); t != nil && containsNoCopy(t) {
						flag(rhs.Pos(), "assignment", t)
					}
				}
			case *ast.CallExpr:
				// Conversions don't copy, and builtin calls (new(T),
				// make(T, …)) take type arguments, not values — go/types
				// records call-site signatures for builtins, so they must
				// be excluded explicitly.
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
						return true
					}
				}
				if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
					return true
				}
				sig, ok := info.TypeOf(n.Fun).(*types.Signature)
				if !ok {
					return true
				}
				for i, arg := range n.Args {
					if i >= sig.Params().Len() && !sig.Variadic() {
						break
					}
					if !copiesValue(arg) {
						continue
					}
					if t := info.TypeOf(arg); t != nil && containsNoCopy(t) {
						flag(arg.Pos(), "call argument", t)
					}
				}
				// Value-receiver method call on a no-copy type.
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
						if fn, ok := s.Obj().(*types.Func); ok {
							recv := fn.Type().(*types.Signature).Recv()
							if recv != nil {
								if _, isPtr := recv.Type().Underlying().(*types.Pointer); !isPtr && containsNoCopy(recv.Type()) {
									flag(n.Pos(), "value-receiver call", recv.Type())
								}
							}
						}
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				if t := info.TypeOf(n.Value); t != nil && containsNoCopy(t) {
					flag(n.Value.Pos(), "range value", t)
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if !copiesValue(r) {
						continue
					}
					if t := info.TypeOf(r); t != nil && containsNoCopy(t) {
						flag(r.Pos(), "return", t)
					}
				}
			}
			return true
		})
	}
}

// copiesValue reports whether the expression shape actually copies an
// existing value: identifiers, field selections, derefs, and index
// expressions do; composite literals, calls, and & expressions create
// or reference rather than copy.
func copiesValue(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// noCopyNames are the sync and sync/atomic types that must not be
// copied after first use.
var noCopyNames = map[string]map[string]bool{
	"sync": {
		"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
		"Cond": true, "Map": true, "Pool": true,
	},
	"sync/atomic": {
		"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
		"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
	},
}

// containsNoCopy reports whether t (after peeling names and arrays)
// is or embeds a no-copy type. Pointers, slices, and maps reference
// rather than contain, so they pass.
func containsNoCopy(t types.Type) bool {
	return containsNoCopyDepth(t, 0)
}

func containsNoCopyDepth(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil {
			if set, ok := noCopyNames[obj.Pkg().Path()]; ok && set[obj.Name()] {
				return true
			}
		}
		return containsNoCopyDepth(n.Underlying(), depth+1)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsNoCopyDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsNoCopyDepth(u.Elem(), depth+1)
	}
	return false
}
