package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// HotAlloc enforces the hot-path allocation contract (DESIGN.md §15):
// no function statically reachable from a //tmedbvet:hotpath root may
// contain an allocation-inducing construct. The steady-state solve
// loop — DCS sweeps, Steiner level-2/3 scans, the bucket-queue
// Dijkstra, the arena paths — must flatline graph.arena.allocs after
// the first candidate, and this analyzer is what keeps refactors from
// quietly re-introducing per-candidate garbage.
//
// Flagged constructs: non-arena make, new, map/slice literals,
// &struct{} literals, append onto a provably fresh slice (nil
// literal, []T(nil), a slice literal, or a var declared without a
// value in the same function), closures that capture variables,
// interface boxing at call sites, fmt.* calls, and non-constant
// string concatenation.
//
// Sanctioned idioms are recognized rather than suppressed: the arena
// and scratch allocators themselves (graph.Arena methods,
// Get/PutArena, Get/PutScratch), the parallel/obs/cancel primitives
// (each carries its own zero-alloc guarantees and CI gates), and
// capacity-guarded growth (any allocation inside an if whose
// condition tests cap(...) — the prefetched-buffer grow-once shape).
// Everything else needs a reasoned //tmedbvet:ignore hotalloc.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "functions reachable from //tmedbvet:hotpath roots must not allocate: " +
		"no make/new/literals/capturing closures/boxing/fmt on the steady-state " +
		"solve path; use the arena, pooled scratch, or capacity-guarded buffers",
	RunModule: runHotAlloc,
}

// hotStopPkgs are packages whose internals the reachability walk does
// not enter: sanctioned primitives with their own zero-allocation
// contracts and CI gates (obs disabled paths, parallel pools, cancel
// checkpoints). Calls INTO them from hot code are still checked for
// boxing at the call site.
var hotStopPkgs = []string{
	modulePath + "/internal/parallel",
	modulePath + "/internal/obs",
	modulePath + "/internal/cancel",
}

// graphPkgPath hosts the arena allocator the contract sanctions.
const graphPkgPath = modulePath + "/internal/graph"

// sanctionedAllocator reports whether node IS the allocator the
// contract routes hot-path buffers through: graph.Arena methods and
// the package pools' accessors. Their bodies are make-by-design.
func sanctionedAllocator(n *analysis.FuncNode) bool {
	if n.Pkg.Path != graphPkgPath {
		return false
	}
	if recvTypeName(n.Decl) == "Arena" {
		return true
	}
	switch n.Decl.Name.Name {
	case "GetArena", "PutArena", "GetScratch", "PutScratch":
		return true
	}
	return false
}

// recvTypeName returns the receiver's base type name ("Arena" for
// *Arena), or "".
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		if id, ok := ix.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

func runHotAlloc(mp *analysis.ModulePass) {
	g := mp.Graph()
	roots := g.Roots()
	if len(roots) == 0 {
		return
	}
	stop := func(n *analysis.FuncNode) bool {
		return underAny(n.Pkg.Path, hotStopPkgs) || sanctionedAllocator(n)
	}
	for _, r := range g.Reach(roots, stop) {
		scanHotFunc(mp, r)
	}
}

// scanHotFunc reports every allocation-inducing construct in one
// reachable function.
func scanHotFunc(mp *analysis.ModulePass, r analysis.Reached) {
	info := r.Node.Pkg.Info
	body := r.Node.Decl.Body
	chain := r.Chain()
	report := func(pos token.Pos, what string) {
		mp.Reportf(pos, "%s on the hot path (reachable from hotpath root %s); "+
			"use the arena, pooled scratch, or a capacity-guarded buffer", what, chain)
	}

	// capGuarded tracks if-bodies whose condition tests cap(...): the
	// sanctioned grow-once idiom `if cap(s.buf) < n { s.buf = make(...) }`.
	var capGuarded []posSpan
	ast.Inspect(body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok && mentionsCap(ifs.Cond) {
			capGuarded = append(capGuarded, posSpan{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	inGuard := func(pos token.Pos) bool {
		for _, s := range capGuarded {
			if s.start <= pos && pos < s.end {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			scanHotCall(mp, info, n, inGuard, report)
		case *ast.CompositeLit:
			if inGuard(n.Pos()) {
				return true
			}
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && !inGuard(n.Pos()) {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite-literal allocates")
				}
			}
		case *ast.FuncLit:
			if caps := capturedVars(info, n); len(caps) > 0 {
				report(n.Pos(), "closure capturing "+strings.Join(caps, ", ")+" allocates per creation")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !inGuard(n.Pos()) && isNonConstString(info, n) {
				report(n.Pos(), "string concatenation allocates")
			}
		}
		return true
	})
}

// posSpan is a half-open position interval.
type posSpan struct{ start, end token.Pos }

// mentionsCap reports a call to the cap builtin anywhere in e.
func mentionsCap(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "cap" {
				found = true
			}
		}
		return !found
	})
	return found
}

// scanHotCall handles the call-shaped constructs: make/new builtins,
// append onto fresh slices, fmt.*, and interface boxing of arguments.
func scanHotCall(mp *analysis.ModulePass, info *types.Info, call *ast.CallExpr,
	inGuard func(token.Pos) bool, report func(token.Pos, string)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if !inGuard(call.Pos()) {
					report(call.Pos(), "non-arena make allocates")
				}
			case "new":
				if !inGuard(call.Pos()) {
					report(call.Pos(), "new allocates")
				}
			case "append":
				if !inGuard(call.Pos()) && len(call.Args) > 0 && freshSliceBase(info, call.Args[0]) {
					report(call.Pos(), "append onto a fresh slice allocates per call")
				}
			}
			return
		}
	}
	// fmt.* calls.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			report(call.Pos(), "fmt."+sel.Sel.Name+" allocates and reflects")
			return
		}
	}
	// Interface boxing: a concrete-typed argument passed where the
	// parameter is an interface escapes to the heap (unless it is a
	// constant the compiler can intern, or nil).
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... forwards the slice, no boxing
			}
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && (tv.Value != nil || tv.IsNil()) {
			continue // constants and nil do not box per call
		}
		report(arg.Pos(), "interface boxing of "+types.ExprString(arg))
	}
}

// capturedVars lists (sorted, deduplicated) the local variables a
// function literal captures from its enclosing function. A capturing
// closure forces a heap allocation per creation; capture-free literals
// compile to static funcvals and pass.
func capturedVars(info *types.Info, lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level vars are not captured; neither is anything
		// declared inside the literal itself (params, locals).
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			out = append(out, v.Name())
		}
		return true
	})
	sort.Strings(out)
	return out
}

// isNonConstString reports a string-typed + whose value the compiler
// cannot fold to a constant — a runtime concatenation, hence an
// allocation.
func isNonConstString(info *types.Info, bin *ast.BinaryExpr) bool {
	t := info.TypeOf(bin)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsString == 0 {
		return false
	}
	tv, ok := info.Types[bin]
	return !ok || tv.Value == nil
}

// freshSliceBase reports whether the append base provably starts
// empty on every call: a nil literal, a []T(nil) conversion, a slice
// literal, or a local declared `var x []T` with no value.
func freshSliceBase(info *types.Info, base ast.Expr) bool {
	switch e := ast.Unparen(base).(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
		v, ok := info.Uses[e].(*types.Var)
		if !ok {
			return false
		}
		return declaredWithoutValue(info, v)
	case *ast.CompositeLit:
		_, isSlice := info.TypeOf(e).Underlying().(*types.Slice)
		return isSlice
	case *ast.CallExpr:
		// Conversion []T(nil)?
		if len(e.Args) != 1 {
			return false
		}
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			if id, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok && id.Name == "nil" {
				return true
			}
		}
	}
	return false
}

// declaredWithoutValue reports whether v's declaration is a bare
// `var x []T` ValueSpec — the fresh-nil-slice shape whose first append
// must allocate. Parameters, results, and assigned variables do not
// qualify.
func declaredWithoutValue(info *types.Info, v *types.Var) bool {
	if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
		return false
	}
	for id, obj := range info.Defs {
		if obj == v {
			return id.Obj != nil && specWithoutValue(id)
		}
	}
	return false
}

// specWithoutValue checks the defining ident's declaration node.
func specWithoutValue(id *ast.Ident) bool {
	spec, ok := id.Obj.Decl.(*ast.ValueSpec)
	return ok && len(spec.Values) == 0
}
