package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// SpanPair enforces the paired-span half of the observability contract
// (DESIGN.md §8): every obs phase opened with Recorder.StartPhase must
// be closed with Span.End on every path out of the scope that opened
// it — either a `defer sp.End()` right after the start, or explicit
// End calls covering each return and the fall-through.
//
// An unclosed span corrupts the phase tree for the rest of the run:
// every later StartPhase nests under the leaked span, and reported
// durations extend to whenever the recorder is next snapshotted.
//
// The analysis is a per-function, path-sensitive walk over the
// statement list that `sp := X.StartPhase(...)` binds into (so it
// tracks `:=` bindings; spans assigned into pre-declared variables or
// struct fields are out of scope). Passing the span anywhere other
// than as the receiver of a Span method transfers ownership and ends
// tracking.
var SpanPair = &analysis.Analyzer{
	Name: "spanpair",
	Doc: "every obs phase StartPhase must be paired with an End reachable on " +
		"all paths (defer or exhaustive returns)",
	Run: runSpanPair,
}

// spanState is the tracker's path state for one span binding.
type spanState int

const (
	spanOpen spanState = iota // started, not yet ended on this path
	spanEnded
	spanTerminated // path left the function (return/panic)
)

func runSpanPair(pass *analysis.Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				checkSpanBody(pass, body)
			}
			return true
		})
	}
}

// checkSpanBody scans every statement list in one function body for
// StartPhase bindings and runs the tracker over each binding's
// remainder. Nested function literals are handled by their own
// runSpanPair visit, so the scan does not descend into them.
func checkSpanBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var scanList func(stmts []ast.Stmt)
	var scan func(n ast.Node)

	scanList = func(stmts []ast.Stmt) {
		for i, s := range stmts {
			if as, ok := s.(*ast.AssignStmt); ok && as.Tok == token.DEFINE &&
				len(as.Lhs) == 1 && len(as.Rhs) == 1 && isStartPhaseCall(pass, as.Rhs[0]) {
				id, ok := as.Lhs[0].(*ast.Ident)
				if !ok || id.Name == "_" {
					pass.Reportf(as.Pos(), "StartPhase result discarded; the span can never be ended")
					continue
				}
				obj := pass.Pkg.Info.Defs[id]
				if obj == nil {
					continue
				}
				tr := &spanTracker{pass: pass, span: obj}
				st := tr.seq(stmts[i+1:], spanOpen)
				if st == spanOpen && !tr.deferred {
					pass.Reportf(as.Pos(),
						"span %s started here is not ended on the fall-through path; add defer %s.End() or an End before leaving the block",
						id.Name, id.Name)
				}
			}
			scan(s)
		}
	}
	scan = func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // visited independently
			case *ast.BlockStmt:
				scanList(m.List)
				return false
			case *ast.CaseClause:
				scanList(m.Body)
				return false
			case *ast.CommClause:
				scanList(m.Body)
				return false
			case *ast.ExprStmt:
				if isStartPhaseCall(pass, m.X) {
					pass.Reportf(m.Pos(), "StartPhase result discarded; the span can never be ended")
				}
			}
			return true
		})
	}

	// Bare StartPhase expression statements and bindings at any depth.
	scanList(body.List)
}

// spanTracker walks the statements after one StartPhase binding and
// reports paths that leave the function with the span still open.
type spanTracker struct {
	pass     *analysis.Pass
	span     types.Object // the binding's object
	deferred bool         // a defer sp.End() covers everything
}

// seq folds the tracker over a statement sequence.
func (tr *spanTracker) seq(stmts []ast.Stmt, st spanState) spanState {
	for _, s := range stmts {
		st = tr.stmt(s, st)
		if st == spanTerminated || tr.deferred {
			return st
		}
	}
	return st
}

func (tr *spanTracker) stmt(s ast.Stmt, st spanState) spanState {
	switch s := s.(type) {
	case *ast.DeferStmt:
		if tr.endsSpan(s.Call) || deferredLitEnds(tr, s.Call) {
			tr.deferred = true
			return spanEnded
		}
		return tr.scanUse(s, st)
	case *ast.ReturnStmt:
		st = tr.scanUse(s, st) // return f(sp) transfers ownership
		if st == spanOpen {
			tr.pass.Reportf(s.Pos(),
				"return with phase span still open; call End on this path or defer it at the start")
		}
		return spanTerminated
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if tr.endsSpan(call) {
				return spanEnded
			}
			if isPanicCall(tr.pass, call) {
				return spanTerminated
			}
		}
		return tr.scanUse(s, st)
	case *ast.IfStmt:
		thenSt := tr.seq(s.Body.List, st)
		elseSt := st
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseSt = tr.seq(e.List, st)
		case *ast.IfStmt:
			elseSt = tr.stmt(e, st)
		}
		return mergeSpanStates(thenSt, elseSt)
	case *ast.BlockStmt:
		return tr.seq(s.List, st)
	case *ast.ForStmt:
		return tr.loopBody(s.Body, st)
	case *ast.RangeStmt:
		return tr.loopBody(s.Body, st)
	case *ast.SwitchStmt:
		return tr.clauses(s.Body, st, true)
	case *ast.TypeSwitchStmt:
		return tr.clauses(s.Body, st, true)
	case *ast.SelectStmt:
		return tr.clauses(s.Body, st, false)
	case *ast.LabeledStmt:
		return tr.stmt(s.Stmt, st)
	default:
		return tr.scanUse(s, st)
	}
}

// loopBody analyzes a loop body: returns inside the loop with the span
// open are flagged by the inner walk; an End inside the body counts
// optimistically for the post-loop state (zero-iteration leaks are
// beyond this analyzer).
func (tr *spanTracker) loopBody(body *ast.BlockStmt, st spanState) spanState {
	bodySt := tr.seq(body.List, st)
	if st == spanOpen && bodySt == spanEnded {
		return spanEnded
	}
	return st
}

// clauses merges the branches of a switch/select body. For switches,
// a missing default keeps the incoming state as a possible skip path;
// a select always executes some clause.
func (tr *spanTracker) clauses(body *ast.BlockStmt, st spanState, implicitSkip bool) spanState {
	merged := spanTerminated
	sawDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				sawDefault = true
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				sawDefault = true
			}
		}
		merged = mergeSpanStates(merged, tr.seq(stmts, st))
	}
	if implicitSkip && !sawDefault {
		merged = mergeSpanStates(merged, st)
	}
	if len(body.List) == 0 {
		return st
	}
	return merged
}

// mergeSpanStates joins two path states: terminated paths drop out;
// any surviving open path keeps the span open.
func mergeSpanStates(a, b spanState) spanState {
	if a == spanTerminated {
		return b
	}
	if b == spanTerminated {
		return a
	}
	if a == spanOpen || b == spanOpen {
		return spanOpen
	}
	return spanEnded
}

// scanUse applies the escape rule to an arbitrary statement: any use
// of the span other than as the receiver of a Span method transfers
// ownership (stored, passed, captured), which ends local tracking. An
// embedded sp.End() (e.g. in an assignment's RHS) also counts.
func (tr *spanTracker) scanUse(n ast.Node, st spanState) spanState {
	if st != spanOpen {
		return st
	}
	out := st
	ast.Inspect(n, func(m ast.Node) bool {
		if out != spanOpen {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && tr.endsSpan(call) {
			out = spanEnded
			return false
		}
		if sel, ok := m.(*ast.SelectorExpr); ok && tr.isSpanIdent(sel.X) && isSpanMethod(tr.pass, sel.Sel) {
			// Receiver of a Span method: neutral; skip the receiver
			// ident so the escape rule below does not see it.
			return false
		}
		if id, ok := m.(*ast.Ident); ok && tr.isSpanObj(id) {
			out = spanEnded // escape: ownership transferred
			return false
		}
		return true
	})
	return out
}

// endsSpan reports whether call is sp.End() on the tracked span.
func (tr *spanTracker) endsSpan(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" || !tr.isSpanIdent(sel.X) {
		return false
	}
	return isSpanMethod(tr.pass, sel.Sel)
}

// deferredLitEnds reports whether a deferred closure body ends the
// span (defer func() { ...; sp.End() }()).
func deferredLitEnds(tr *spanTracker, call *ast.CallExpr) bool {
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && tr.endsSpan(c) {
			found = true
		}
		return !found
	})
	return found
}

// isSpanIdent reports whether e is an identifier bound to the tracked
// span.
func (tr *spanTracker) isSpanIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && tr.isSpanObj(id)
}

func (tr *spanTracker) isSpanObj(id *ast.Ident) bool {
	return tr.pass.ObjectOf(id) == tr.span
}

// isStartPhaseCall reports whether e calls
// (*obs.Recorder).StartPhase.
func isStartPhaseCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "StartPhase" {
		return false
	}
	obj := pass.ObjectOf(sel.Sel)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == obsPkgPath
}

// isSpanMethod reports whether the selector resolves to a method of
// obs.Span (End, SetInt, SetFloat, SetStr, Duration, …).
func isSpanMethod(pass *analysis.Pass, sel *ast.Ident) bool {
	obj := pass.ObjectOf(sel)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == obsPkgPath
}

// isPanicCall reports whether call is the builtin panic.
func isPanicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "panic"
}
