package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// DetRange flags `range` over a map whose iteration order can reach
// planner output: any map range whose body appends to a slice or sends
// on a channel. Go randomizes map iteration per run, so an append fed
// from one produces a different element order every process — which a
// merely *stable* downstream sort (schedule.SortByTime orders by T
// only) does not repair for equal keys.
//
// The sanctioned pattern is recognized and not flagged: append the
// keys (or rows) to a slice and, later in the same enclosing block,
// pass that slice to a sort-package call (sort.Slice, sort.Sort,
// sort.Ints, …) that imposes a total order. Sorts hidden behind
// helpers or methods (s.SortByTime()) are not credited — if the helper
// really is a total order, say so with a //tmedbvet:ignore reason.
var DetRange = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flags map iteration that feeds appends/sends, where Go's randomized " +
		"iteration order can leak into planner output; iterate sorted keys or " +
		"sort.* the collected slice in the same block",
	Scope: func(pkgPath string) bool { return underAny(pkgPath, plannerPkgs) },
	Run:   runDetRange,
}

func runDetRange(pass *analysis.Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, s := range list {
				if ls, ok := s.(*ast.LabeledStmt); ok {
					s = ls.Stmt
				}
				rs, ok := s.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				sink, targets := orderSinks(pass, rs.Body)
				if sink == "" {
					continue
				}
				if sortedAfter(pass, list[i+1:], targets) {
					continue
				}
				pass.Reportf(rs.Pos(),
					"map iteration order reaches planner output (%s over range of %s); iterate sorted keys or apply a total-order sort afterward",
					sink, types.ExprString(rs.X))
			}
			return true
		})
	}
}

// orderSinks reports the first order-dependent emission in a loop body
// (builtin append or channel send) plus the rendered append targets,
// so the caller can look for a later sanctioned sort over them.
func orderSinks(pass *analysis.Pass, body *ast.BlockStmt) (sink string, targets []string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if sink == "" {
				sink = "channel send"
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for k, rhs := range n.Rhs {
				if isAppendCall(pass, rhs) {
					if sink == "" {
						sink = "append"
					}
					targets = append(targets, types.ExprString(n.Lhs[k]))
				}
			}
		case *ast.CallExpr:
			if sink == "" && isAppendCall(pass, n) {
				sink = "append"
			}
		}
		return true
	})
	return sink, targets
}

// isAppendCall reports whether e is a call to the builtin append.
func isAppendCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether a statement after the loop passes one of
// the append targets to a sort-package call — the sanctioned
// collect-then-sort idiom.
func sortedAfter(pass *analysis.Pass, rest []ast.Stmt, targets []string) bool {
	if len(targets) == 0 {
		return false
	}
	names := make(map[string]bool, len(targets))
	for _, t := range targets {
		names[t] = true
	}
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sort" {
				return true
			}
			for _, arg := range call.Args {
				if names[types.ExprString(arg)] {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
