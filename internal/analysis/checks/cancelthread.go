package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// CancelThread enforces the two halves of the cancellation contract
// (DESIGN.md §9):
//
//  1. Entry points. Every exported ScheduleCtx / MulticastCtx / Build
//     in a planner package that contains a loop must thread a cancel
//     checkpoint — reference cancel.FromContext, a *cancel.Token, or
//     an options field typed from repro/internal/cancel — so a solve
//     can be revoked at loop boundaries instead of running to
//     completion.
//  2. Sentinel matching. cancel.ErrCancelled, cancel.ErrBudgetExceeded,
//     context.Canceled, and context.DeadlineExceeded must be matched
//     with errors.Is, never ==/!=: every layer wraps (%w) the typed
//     error, so identity comparison silently stops matching.
var CancelThread = &analysis.Analyzer{
	Name: "cancelthread",
	Doc: "looping ScheduleCtx/MulticastCtx/Build entry points must thread a " +
		"cancel checkpoint, and cancellation sentinels must be matched with " +
		"errors.Is, never ==",
	// Scope is nil: the sentinel rule applies module-wide. The
	// entry-point rule additionally restricts itself to planner
	// packages inside Run.
	Run: runCancelThread,
}

// entryPointNames are the exported solve entry points the checkpoint
// contract covers.
var entryPointNames = map[string]bool{"ScheduleCtx": true, "MulticastCtx": true, "Build": true}

// sentinelErrs maps package path -> error variable names that must be
// matched with errors.Is.
var sentinelErrs = map[string]map[string]bool{
	cancelPkgPath: {"ErrCancelled": true, "ErrBudgetExceeded": true},
	"context":     {"Canceled": true, "DeadlineExceeded": true},
}

func runCancelThread(pass *analysis.Pass) {
	// The entry-point rule applies to planner packages — and to golden
	// fixtures (testdata packages only ever load under the fixture
	// harness, which bypasses Scope to exercise rules directly).
	inPlanner := underAny(pass.Pkg.Path, plannerPkgs) || strings.Contains(pass.Pkg.Path, "/testdata/")
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if inPlanner && entryPointNames[fd.Name.Name] && ast.IsExported(fd.Name.Name) &&
				hasLoop(fd.Body) && !threadsCancel(pass, fd.Body) {
				pass.Reportf(fd.Name.Pos(),
					"exported entry point %s loops without threading a cancel checkpoint; derive a token (cancel.FromContext) and poll Check at loop boundaries",
					fd.Name.Name)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				if name, pkg := sentinelName(pass, side); name != "" {
					pass.Reportf(be.Pos(),
						"cancellation sentinel %s.%s compared with %s; wrapped errors never match identity — use errors.Is",
						pkg, name, be.Op)
					break
				}
			}
			return true
		})
	}
}

// hasLoop reports whether the body contains any for/range statement.
func hasLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// threadsCancel reports whether the body references the cancel package
// at all: directly (cancel.FromContext, cancel.Token) or through a
// value whose type involves repro/internal/cancel (opts.Cancel,
// solver.SetCancel). Either way the function has its hands on a
// checkpoint.
func threadsCancel(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(id)
		if obj == nil {
			return true
		}
		if obj.Pkg() != nil && obj.Pkg().Path() == cancelPkgPath {
			found = true
			return false
		}
		if t := obj.Type(); t != nil && typeMentions(t, cancelPkgPath) {
			found = true
			return false
		}
		return true
	})
	return found
}

// typeMentions reports whether the fully-qualified rendering of t
// names the given package path.
func typeMentions(t types.Type, path string) bool {
	seen := types.TypeString(t, func(p *types.Package) string { return p.Path() })
	return containsPath(seen, path)
}

// containsPath is a substring check guarded against matching longer
// package paths (…/cancelx): the path must be followed by a
// non-path character.
func containsPath(s, path string) bool {
	for i := 0; i+len(path) <= len(s); i++ {
		if s[i:i+len(path)] != path {
			continue
		}
		j := i + len(path)
		if j == len(s) || s[j] == '.' || s[j] == ')' || s[j] == ']' || s[j] == ',' || s[j] == ' ' {
			return true
		}
	}
	return false
}

// sentinelName resolves e to one of the guarded sentinel error
// variables, returning its name and package ("" when e is something
// else).
func sentinelName(pass *analysis.Pass, e ast.Expr) (name, pkg string) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", ""
	}
	obj := pass.ObjectOf(id)
	if obj == nil || obj.Pkg() == nil {
		return "", ""
	}
	if names, ok := sentinelErrs[obj.Pkg().Path()]; ok && names[obj.Name()] {
		return obj.Name(), obj.Pkg().Name()
	}
	return "", ""
}
