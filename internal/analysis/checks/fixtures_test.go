package checks

import (
	"testing"

	"repro/internal/analysis"
)

// The golden fixtures under testdata/ carry `// want "regex"` comments
// on every line a diagnostic is expected; RunFixture diffs both
// directions (missing and unexpected diagnostics fail the test).

func TestDetRangeFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/detrange", DetRange)
}

func TestNonDetermFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/nondeterm", NonDeterm)
}

func TestFloatEqFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/floateq", FloatEq)
}

func TestCancelThreadFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/cancelthread", CancelThread)
}

func TestSpanPairFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/spanpair", SpanPair)
}

func TestLogConstFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/logconst", LogConst)
}

func TestHotAllocFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/hotalloc", HotAlloc)
}

func TestAtomicOnlyFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/atomiconly", AtomicOnly)
}

func TestGoExitFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/goexit", GoExit)
}

// TestArenaReuseFixture pins the detrange/spanpair contracts on the
// arena-reuse hot path (PR 6): pooled buffers and build-wide spans with
// interleaved PutArena defers must not hide the bug shapes (map-order
// emission into an arena-backed output, spans leaked past an arena
// return) nor flag the sanctioned collect-sort-emit / defer-End idiom.
func TestArenaReuseFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/arenareuse", DetRange, SpanPair)
}

// TestLegacyRelayFixture is the regression gate for the pre-unification
// premature-relay bug shape (PR 2): map-order schedule assembly
// "repaired" by a stable by-time sort plus an exact tau-arrival gate.
// Both analyzers must keep recognizing it.
func TestLegacyRelayFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata/legacyrelay", DetRange, FloatEq)
}
