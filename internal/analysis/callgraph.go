package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathPrefix marks a function declaration as a hot-path root: every
// function statically reachable from it falls under the hotalloc
// allocation contract (DESIGN.md §15). The directive lives in the
// FuncDecl's doc comment:
//
//	//tmedbvet:hotpath
//	func (g *CSR) ShortestPathsInto(...)
const hotpathPrefix = "//tmedbvet:hotpath"

// FuncNode is one function or method declaration in the call graph.
type FuncNode struct {
	// Obj is the declaration's *types.Func object — the graph key.
	Obj types.Object
	// Decl is the syntax, with body.
	Decl *ast.FuncDecl
	// Pkg is the package the declaration lives in.
	Pkg *Package
	// Hot reports a //tmedbvet:hotpath doc-comment annotation.
	Hot bool
	// Callees are the statically resolved call targets in body order
	// (duplicates preserved). Only targets that are themselves nodes of
	// the graph (module-internal declarations) are traversable.
	Callees []types.Object
}

// Name renders the node for diagnostics: "(*CSR).ShortestPathsInto"
// for methods, "PathTo32" for functions.
func (n *FuncNode) Name() string {
	if n.Decl.Recv != nil && len(n.Decl.Recv.List) > 0 {
		return "(" + types.ExprString(n.Decl.Recv.List[0].Type) + ")." + n.Decl.Name.Name
	}
	return n.Decl.Name.Name
}

// CallGraph resolves static callees across the packages of one module
// pass. Dynamic dispatch (interface methods, function values) has no
// edges: reachability-based checks are deliberately bounded to what the
// type checker can prove.
type CallGraph struct {
	// Funcs maps every declared function/method object to its node.
	Funcs map[types.Object]*FuncNode
	// order preserves deterministic (package, file, position) iteration.
	order []*FuncNode
}

// BuildCallGraph indexes every function declaration in pkgs (which must
// be sorted by import path for deterministic traversal) and resolves
// each one's static callees.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Funcs: make(map[types.Object]*FuncNode)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg, Hot: isHotpathDecl(fd)}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if callee := StaticCallee(pkg.Info, call); callee != nil {
							node.Callees = append(node.Callees, callee)
						}
					}
					return true
				})
				g.Funcs[obj] = node
				g.order = append(g.order, node)
			}
		}
	}
	return g
}

// isHotpathDecl reports whether the declaration's doc comment carries
// the hotpath root annotation.
func isHotpathDecl(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathPrefix) {
			return true
		}
	}
	return false
}

// StaticCallee resolves a call expression to the *types.Func it
// statically invokes: direct calls, package-qualified calls, and
// method calls on concrete receivers. Conversions, built-ins, function
// values, and interface dispatch resolve to nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified: pkg.F(...)
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// Roots returns the hotpath-annotated nodes in declaration order.
func (g *CallGraph) Roots() []*FuncNode {
	var out []*FuncNode
	for _, n := range g.order {
		if n.Hot {
			out = append(out, n)
		}
	}
	return out
}

// Reached is one function reachable from a hotpath root, with enough
// of the BFS tree to render a call chain in diagnostics.
type Reached struct {
	Node *FuncNode
	// Root is the hotpath root this node was first reached from.
	Root *FuncNode
	// Via is the BFS parent (nil when Node is a root itself).
	Via *FuncNode
}

// Chain renders "root" or "root → ... → parent" for diagnostics.
func (r Reached) Chain() string {
	if r.Via == nil || r.Via == r.Root {
		return r.Root.Name()
	}
	return r.Root.Name() + " → … → " + r.Via.Name()
}

// Reach walks the graph breadth-first from roots, skipping (not
// entering, not returning) any node for which stop returns true, and
// returns the reached nodes in deterministic BFS order. A nil stop
// traverses everything.
func (g *CallGraph) Reach(roots []*FuncNode, stop func(*FuncNode) bool) []Reached {
	seen := make(map[types.Object]bool)
	var out []Reached
	var queue []Reached
	for _, r := range roots {
		if stop != nil && stop(r) {
			continue
		}
		if !seen[r.Obj] {
			seen[r.Obj] = true
			queue = append(queue, Reached{Node: r, Root: r})
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		for _, callee := range cur.Node.Callees {
			next, ok := g.Funcs[callee]
			if !ok || seen[next.Obj] {
				continue
			}
			if stop != nil && stop(next) {
				continue
			}
			seen[next.Obj] = true
			queue = append(queue, Reached{Node: next, Root: cur.Root, Via: cur.Node})
		}
	}
	return out
}
