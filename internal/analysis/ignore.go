package analysis

import (
	"go/ast"
	"regexp"
	"strings"
)

// ignorePrefix introduces an inline suppression comment:
//
//	//tmedbvet:ignore <check> <reason>
//
// It silences findings of <check> on the comment's own line and on the
// line directly below it (so both trailing comments and stand-alone
// comment lines work). When the covered line starts a multi-line
// statement, findings anywhere inside that statement are silenced too
// — a directive above a wrapped call covers the call's continuation
// lines. The reason is mandatory: suppressions are audit records, and
// a suppression nobody can justify is a finding in its own right.
//
// A directive that silences nothing is itself reported as a stale
// suppression (under the reserved "ignore" check) — except inside
// generated files, whose directives are machine-owned and may
// legitimately cover findings that come and go across regenerations.
const ignorePrefix = "//tmedbvet:ignore"

// ignoreDirective is one parsed suppression.
type ignoreDirective struct {
	file  string
	line  int
	check string
	// used is set when the directive silences at least one finding; an
	// unused directive in a non-generated file is a stale suppression.
	used bool
}

// generatedRE is the standard generated-file marker (golang.org/s/
// generatedcode): a whole-line comment anywhere before or after the
// package clause.
var generatedRE = regexp.MustCompile(`^// Code generated .* DO NOT EDIT\.$`)

// fileFacts holds the per-file suppression context: statement anchors
// for multi-line coverage, the generated-file flag, and which package
// the file belongs to (stale judgment is scope- and match-aware).
type fileFacts struct {
	// anchor maps a line to the starting line of the innermost simple
	// statement spanning it, when that statement covers several lines.
	anchor map[int]int
	// generated reports the DO-NOT-EDIT marker.
	generated bool
	// pkgPath is the owning package's import path.
	pkgPath string
	// matched reports whether the owning package was directly matched
	// by the run's patterns (vs loaded as a dependency).
	matched bool
}

// collectFileFacts builds fileFacts for every file of pkg, keyed by the
// position-resolved (not yet relativized) filename.
func collectFileFacts(pkg *Package, matched bool, into map[string]*fileFacts) {
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if _, ok := into[name]; ok {
			continue
		}
		ff := &fileFacts{anchor: make(map[int]int), generated: isGenerated(f),
			pkgPath: pkg.Path, matched: matched}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(ast.Stmt)
			if !ok {
				return true
			}
			switch st.(type) {
			// Only simple statements anchor: a directive above a block
			// statement (if/for/switch) must not blanket the whole block.
			case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.DeclStmt,
				*ast.GoStmt, *ast.DeferStmt, *ast.SendStmt, *ast.IncDecStmt:
			default:
				return true
			}
			start := pkg.Fset.Position(st.Pos()).Line
			end := pkg.Fset.Position(st.End()).Line
			// Innermost statement wins: later (deeper) visits overwrite.
			for line := start; line <= end; line++ {
				ff.anchor[line] = start
			}
			return true
		})
		into[name] = ff
	}
}

// isGenerated reports whether f carries the standard generated-file
// comment.
func isGenerated(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package && cg.Pos() > f.Name.End() {
			// Markers must precede or immediately follow the package
			// clause; stop scanning once past the header region.
			break
		}
		for _, c := range cg.List {
			if generatedRE.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}

// collectIgnores parses every suppression comment in the package.
// Malformed directives (no check name, or no reason) are reported as
// diagnostics of the reserved check "ignore", which cannot itself be
// suppressed.
func collectIgnores(pkg *Package, report func(Diagnostic)) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(Diagnostic{Pos: pos, Check: "ignore",
						Message: "tmedbvet:ignore needs a check name and a reason: //tmedbvet:ignore <check> <reason>"})
					continue
				}
				if len(fields) < 2 {
					report(Diagnostic{Pos: pos, Check: "ignore",
						Message: "tmedbvet:ignore " + fields[0] + " needs a reason — suppressions must be justified inline"})
					continue
				}
				out = append(out, &ignoreDirective{file: pos.Filename, line: pos.Line, check: fields[0]})
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by one of the directives: a
// matching check on the finding's line, the line above it, or — when
// the finding sits inside a multi-line simple statement — the
// statement's starting line or the line above that. Matching
// directives are marked used.
func suppressed(d Diagnostic, dirs []*ignoreDirective, facts map[string]*fileFacts) bool {
	if d.Check == "ignore" {
		return false
	}
	lines := [4]int{d.Pos.Line, d.Pos.Line - 1, 0, 0}
	if ff, ok := facts[d.Pos.Filename]; ok {
		if a, ok := ff.anchor[d.Pos.Line]; ok && a != d.Pos.Line {
			lines[2], lines[3] = a, a-1
		}
	}
	hit := false
	for _, ig := range dirs {
		if ig.check != d.Check || ig.file != d.Pos.Filename {
			continue
		}
		for _, ln := range lines {
			if ln != 0 && ig.line == ln {
				ig.used = true
				hit = true
				break
			}
		}
	}
	return hit
}
