package analysis

import "strings"

// ignorePrefix introduces an inline suppression comment:
//
//	//tmedbvet:ignore <check> <reason>
//
// It silences findings of <check> on the comment's own line and on the
// line directly below it (so both trailing comments and stand-alone
// comment lines work). The reason is mandatory: suppressions are audit
// records, and a suppression nobody can justify is a finding in its
// own right.
const ignorePrefix = "//tmedbvet:ignore"

// ignoreDirective is one parsed suppression.
type ignoreDirective struct {
	file  string
	line  int
	check string
}

// collectIgnores parses every suppression comment in the package.
// Malformed directives (no check name, or no reason) are reported as
// diagnostics of the reserved check "ignore", which cannot itself be
// suppressed.
func collectIgnores(pkg *Package, report func(Diagnostic)) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(Diagnostic{Pos: pos, Check: "ignore",
						Message: "tmedbvet:ignore needs a check name and a reason: //tmedbvet:ignore <check> <reason>"})
					continue
				}
				if len(fields) < 2 {
					report(Diagnostic{Pos: pos, Check: "ignore",
						Message: "tmedbvet:ignore " + fields[0] + " needs a reason — suppressions must be justified inline"})
					continue
				}
				out = append(out, ignoreDirective{file: pos.Filename, line: pos.Line, check: fields[0]})
			}
		}
	}
	return out
}

// suppressed reports whether d is covered by one of the directives: a
// matching check on the same line or the line directly above.
func suppressed(d Diagnostic, dirs []ignoreDirective) bool {
	if d.Check == "ignore" {
		return false
	}
	for _, ig := range dirs {
		if ig.check != d.Check || ig.file != d.Pos.Filename {
			continue
		}
		if ig.line == d.Pos.Line || ig.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}
