package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// markerAnalyzer reports every call to a function named mark — a toy
// check that makes suppression behavior directly observable.
func markerAnalyzer(scope func(string) bool) *Analyzer {
	return &Analyzer{
		Name:  "marker",
		Doc:   "reports every call to a function named mark",
		Scope: scope,
		Run: func(p *Pass) {
			for _, f := range p.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
						p.Reportf(call.Pos(), "call to mark")
					}
					return true
				})
			}
		},
	}
}

func loadIgnores(t *testing.T) (*Loader, *Package) {
	t.Helper()
	l, err := NewLoader("testdata/ignores")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir("testdata/ignores")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	return l, pkg
}

func TestLoaderModuleDiscovery(t *testing.T) {
	l, pkg := loadIgnores(t)
	if l.ModulePath != "repro" {
		t.Errorf("ModulePath = %q, want %q", l.ModulePath, "repro")
	}
	if _, err := os.Stat(filepath.Join(l.ModuleDir, "go.mod")); err != nil {
		t.Errorf("ModuleDir %s has no go.mod: %v", l.ModuleDir, err)
	}
	if want := "repro/internal/analysis/testdata/ignores"; pkg.Path != want {
		t.Errorf("pkg.Path = %q, want %q", pkg.Path, want)
	}
}

func TestExpandSkipsTestdata(t *testing.T) {
	l, _ := loadIgnores(t)
	dirs, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(dirs) == 0 {
		t.Fatal("Expand(./...) matched no packages")
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Expand(./...) matched testdata directory %s", d)
		}
	}
	// A directory pattern and the equivalent import path resolve to the
	// same package directory and deduplicate.
	dirs, err = l.Expand([]string{"internal/analysis", "repro/internal/analysis"})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(dirs) != 1 {
		t.Errorf("Expand dir+importpath = %v, want one deduplicated entry", dirs)
	}
}

// fixtureLines extracts 1-based line numbers of the ignores fixture
// matching pred, so the test tracks the fixture without hard-coded
// line numbers.
func fixtureLines(t *testing.T, pred func(line string) bool) map[int]bool {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "ignores", "ignores.go"))
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	out := make(map[int]bool)
	for i, line := range strings.Split(string(data), "\n") {
		if pred(line) {
			out[i+1] = true
		}
	}
	return out
}

func TestIgnoreDirectives(t *testing.T) {
	l, pkg := loadIgnores(t)
	ds := l.RunPackage(pkg, []*Analyzer{markerAnalyzer(nil)}, true)
	sortDiagnostics(ds)

	wantMarker := fixtureLines(t, func(s string) bool { return strings.Contains(s, "// hit") })
	wantIgnore := fixtureLines(t, func(s string) bool {
		trimmed := strings.TrimSpace(s)
		return trimmed == "//tmedbvet:ignore" || trimmed == "//tmedbvet:ignore marker"
	})

	gotMarker := make(map[int]bool)
	gotIgnore := make(map[int]bool)
	for _, d := range ds {
		if !strings.HasSuffix(d.Pos.Filename, "testdata/ignores/ignores.go") {
			t.Errorf("diagnostic in unexpected file %s", d.Pos.Filename)
			continue
		}
		switch d.Check {
		case "marker":
			gotMarker[d.Pos.Line] = true
		case "ignore":
			gotIgnore[d.Pos.Line] = true
		default:
			t.Errorf("unexpected check %q at line %d", d.Check, d.Pos.Line)
		}
	}
	if !sameLineSet(gotMarker, wantMarker) {
		t.Errorf("surviving marker lines = %v, want %v", lineList(gotMarker), lineList(wantMarker))
	}
	if !sameLineSet(gotIgnore, wantIgnore) {
		t.Errorf("malformed-directive lines = %v, want %v", lineList(gotIgnore), lineList(wantIgnore))
	}
}

func TestScopeFiltering(t *testing.T) {
	l, pkg := loadIgnores(t)
	outOfScope := markerAnalyzer(func(path string) bool { return false })
	for _, d := range l.RunPackage(pkg, []*Analyzer{outOfScope}, true) {
		if d.Check == "marker" {
			t.Errorf("out-of-scope analyzer still reported at line %d", d.Pos.Line)
		}
	}
	// The fixture harness's scope bypass runs it anyway.
	found := false
	for _, d := range l.RunPackage(pkg, []*Analyzer{outOfScope}, false) {
		if d.Check == "marker" {
			found = true
		}
	}
	if !found {
		t.Error("scope bypass reported no marker diagnostics")
	}
}

func TestWriteReports(t *testing.T) {
	ds := []Diagnostic{
		{Pos: token.Position{Filename: "internal/core/core.go", Line: 3, Column: 7},
			Check: "floateq", Message: `exact float == on computed values (a == b)`},
		{Pos: token.Position{Filename: "internal/sim/sim.go", Line: 11, Column: 2},
			Check: "detrange", Message: "map iteration order reaches planner output (append to out)"},
	}

	var text strings.Builder
	if err := WriteText(&text, ds); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	wantText := "internal/core/core.go:3:7: [floateq] exact float == on computed values (a == b)\n" +
		"internal/sim/sim.go:11:2: [detrange] map iteration order reaches planner output (append to out)\n"
	if text.String() != wantText {
		t.Errorf("WriteText:\n%s\nwant:\n%s", text.String(), wantText)
	}

	var jsonOut strings.Builder
	if err := WriteJSON(&jsonOut, ds); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	wantJSON := `[
  {
    "file": "internal/core/core.go",
    "line": 3,
    "col": 7,
    "check": "floateq",
    "message": "exact float == on computed values (a == b)"
  },
  {
    "file": "internal/sim/sim.go",
    "line": 11,
    "col": 2,
    "check": "detrange",
    "message": "map iteration order reaches planner output (append to out)"
  }
]
`
	if jsonOut.String() != wantJSON {
		t.Errorf("WriteJSON:\n%s\nwant:\n%s", jsonOut.String(), wantJSON)
	}

	var empty strings.Builder
	if err := WriteJSON(&empty, nil); err != nil {
		t.Fatalf("WriteJSON(nil): %v", err)
	}
	if empty.String() != "[]\n" {
		t.Errorf("WriteJSON(nil) = %q, want %q", empty.String(), "[]\n")
	}
}

func TestSortDiagnostics(t *testing.T) {
	ds := []Diagnostic{
		{Pos: token.Position{Filename: "b.go", Line: 1, Column: 1}, Check: "z"},
		{Pos: token.Position{Filename: "a.go", Line: 9, Column: 1}, Check: "z"},
		{Pos: token.Position{Filename: "a.go", Line: 2, Column: 5}, Check: "z"},
		{Pos: token.Position{Filename: "a.go", Line: 2, Column: 5}, Check: "a"},
	}
	sortDiagnostics(ds)
	if !sort.SliceIsSorted(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	}) {
		t.Errorf("sortDiagnostics order wrong: %v", ds)
	}
	if ds[0].Pos.Filename != "a.go" || ds[0].Pos.Line != 2 || ds[0].Check != "a" {
		t.Errorf("first diagnostic = %+v", ds[0])
	}
}

func sameLineSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func lineList(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
